// photon-pingpong is a standalone latency tool, the osu_latency of this
// repository: it boots a 2-rank Photon job over the chosen backend and
// prints a size/latency table for the selected operation.
//
// Usage:
//
//	photon-pingpong                         # PWC over simulated verbs
//	photon-pingpong -op send -backend tcp   # message path over loopback TCP
//	photon-pingpong -min 8 -max 65536 -iters 1000
//	photon-pingpong -latency 2us            # model a 2us wire
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/stats"
)

func main() {
	var (
		op      = flag.String("op", "pwc", "operation: pwc | send | get")
		backend = flag.String("backend", "vsim", "backend: vsim | tcp")
		minSize = flag.Int("min", 8, "smallest message size (power of two)")
		maxSize = flag.Int("max", 64*1024, "largest message size (power of two)")
		iters   = flag.Int("iters", 500, "iterations per size")
		latency = flag.Duration("latency", 0, "modeled one-way wire latency (vsim only)")
	)
	flag.Parse()

	var phs []*core.Photon
	switch *backend {
	case "vsim":
		env, err := bench.NewPhotonOnly(2, fabric.Model{Latency: *latency}, core.Config{})
		if err != nil {
			fatal(err)
		}
		defer env.Close()
		phs = env.Phs
	case "tcp":
		tphs, cleanup, err := bench.NewTCPPhotons(2, core.Config{})
		if err != nil {
			fatal(err)
		}
		defer cleanup()
		phs = tphs
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	descs, err := shareBuffers(phs, *maxSize)
	if err != nil {
		fatal(err)
	}

	table := stats.NewSeries(fmt.Sprintf("photon-pingpong op=%s backend=%s", *op, *backend),
		"size", "latency-us")
	for size := *minSize; size <= *maxSize; size *= 2 {
		var lat time.Duration
		var err error
		switch *op {
		case "pwc":
			lat, err = bench.PingPongPWC(phs, descs, size, *iters)
		case "send":
			lat, err = bench.PingPongSend(phs, size, *iters)
		case "get":
			lat, err = bench.GetLatencyGWC(phs, descs, size, *iters)
		default:
			err = fmt.Errorf("unknown op %q", *op)
		}
		if err != nil {
			fatal(err)
		}
		table.Row(float64(size), float64(lat.Nanoseconds())/1e3)
	}
	fmt.Print(table.Render())
}

// shareBuffers registers one buffer per rank and exchanges descriptors
// collectively.
func shareBuffers(phs []*core.Photon, size int) ([][]mem.RemoteBuffer, error) {
	descs := make([][]mem.RemoteBuffer, len(phs))
	errs := make([]error, len(phs))
	done := make(chan struct{})
	for r := range phs {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, size)
			rb, _, err := phs[r].RegisterBuffer(buf)
			if err != nil {
				errs[r] = err
				return
			}
			descs[r], errs[r] = phs[r].ExchangeBuffers(rb)
		}(r)
	}
	for range phs {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return descs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "photon-pingpong:", err)
	os.Exit(1)
}
