// photon-pingpong is a standalone latency tool, the osu_latency of this
// repository: it boots a 2-rank Photon job over the chosen backend and
// prints a size/latency table for the selected operation.
//
// Usage:
//
//	photon-pingpong                         # PWC over simulated verbs
//	photon-pingpong -op send -backend tcp   # message path over loopback TCP
//	photon-pingpong -min 8 -max 65536 -iters 1000
//	photon-pingpong -latency 2us            # model a 2us wire
//	photon-pingpong -trace out.json -metrics  # op-lifecycle trace + latency snapshot
//	photon-pingpong -debug 127.0.0.1:9090   # live /metrics, /vars, /trace endpoint
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/metrics"
	"photon/internal/stats"
	"photon/internal/trace"
)

func main() {
	var (
		op          = flag.String("op", "pwc", "operation: pwc | send | get")
		backend     = flag.String("backend", "vsim", "backend: vsim | tcp")
		minSize     = flag.Int("min", 8, "smallest message size (power of two)")
		maxSize     = flag.Int("max", 64*1024, "largest message size (power of two)")
		iters       = flag.Int("iters", 500, "iterations per size")
		latency     = flag.Duration("latency", 0, "modeled one-way wire latency (vsim only)")
		traceOut    = flag.String("trace", "", "write op-lifecycle events to this file as Chrome trace-event JSON")
		sampleShift = flag.Int("trace-sample", 0, "observe 1 op in 2^shift (0 = every op)")
		metricsFlag = flag.Bool("metrics", false, "print a latency/gauge snapshot after the run")
		debugAddr   = flag.String("debug", "", "serve /metrics, /vars and /trace on this address during the run")
	)
	flag.Parse()

	// Both ranks run in-process, so they can share one trace ring and
	// one metrics registry; events and observations carry the rank.
	cfg := core.Config{TraceSampleShift: *sampleShift}
	var ring *trace.Ring
	if *traceOut != "" || *debugAddr != "" {
		ring = trace.NewRing(1 << 16)
		ring.Enable(true)
		cfg.Trace = ring
	}
	var reg *metrics.Registry
	if *metricsFlag || *debugAddr != "" {
		reg = metrics.NewRegistry()
		cfg.MetricsTo = reg
	}

	var phs []*core.Photon
	switch *backend {
	case "vsim":
		env, err := bench.NewPhotonOnly(2, fabric.Model{Latency: *latency}, cfg)
		if err != nil {
			fatal(err)
		}
		defer env.Close()
		phs = env.Phs
	case "tcp":
		tphs, cleanup, err := bench.NewTCPPhotons(2, cfg)
		if err != nil {
			fatal(err)
		}
		defer cleanup()
		phs = tphs
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	if *debugAddr != "" {
		srv, err := metrics.Serve(*debugAddr,
			func() *metrics.Snapshot { return phs[0].Metrics() },
			map[string]*trace.Ring{"pingpong": ring})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "photon-pingpong: debug endpoint on http://%s\n", srv.Addr())
	}

	descs, err := shareBuffers(phs, *maxSize)
	if err != nil {
		fatal(err)
	}

	table := stats.NewSeries(fmt.Sprintf("photon-pingpong op=%s backend=%s", *op, *backend),
		"size", "latency-us")
	for size := *minSize; size <= *maxSize; size *= 2 {
		var lat time.Duration
		var err error
		switch *op {
		case "pwc":
			lat, err = bench.PingPongPWC(phs, descs, size, *iters)
		case "send":
			lat, err = bench.PingPongSend(phs, size, *iters)
		case "get":
			lat, err = bench.GetLatencyGWC(phs, descs, size, *iters)
		default:
			err = fmt.Errorf("unknown op %q", *op)
		}
		if err != nil {
			fatal(err)
		}
		table.Row(float64(size), float64(lat.Nanoseconds())/1e3)
	}
	fmt.Print(table.Render())

	if *metricsFlag {
		fmt.Println()
		fmt.Print(phs[0].Metrics().Render())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChromeJSON(f, ring.Snapshot()); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "photon-pingpong: wrote %d trace events to %s\n", ring.Len(), *traceOut)
	}
}

// shareBuffers registers one buffer per rank and exchanges descriptors
// collectively.
func shareBuffers(phs []*core.Photon, size int) ([][]mem.RemoteBuffer, error) {
	descs := make([][]mem.RemoteBuffer, len(phs))
	errs := make([]error, len(phs))
	done := make(chan struct{})
	for r := range phs {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, size)
			rb, _, err := phs[r].RegisterBuffer(buf)
			if err != nil {
				errs[r] = err
				return
			}
			descs[r], errs[r] = phs[r].ExchangeBuffers(rb)
		}(r)
	}
	for range phs {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return descs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "photon-pingpong:", err)
	os.Exit(1)
}
