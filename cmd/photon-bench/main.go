// photon-bench regenerates the reconstructed evaluation: every table
// and figure in EXPERIMENTS.md corresponds to one experiment ID here.
//
// Usage:
//
//	photon-bench                 # run everything at full scale
//	photon-bench -exp E1,E5      # selected experiments
//	photon-bench -scale 0.1      # quick pass (10% of the iterations)
//	photon-bench -list           # print the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/metrics"
	"photon/internal/trace"
)

var descriptions = map[string]string{
	"E1":  "Fig 1: put latency vs message size (PWC / send / two-sided)",
	"E2":  "Fig 2: get latency vs message size (GWC / two-sided pull)",
	"E3":  "Fig 3: streaming bandwidth vs message size",
	"E4":  "Fig 4: 8-byte message rate vs injector threads",
	"E5":  "Fig 5: completion-notification overhead (ledger vs matching)",
	"E6":  "Table 1: eager/rendezvous crossover sweep",
	"E7":  "Table 2: ledger-size sensitivity + credit-policy ablation",
	"E8":  "Fig 6: GUPS scaling (atomics vs request/ack)",
	"E9":  "Fig 7: stencil halo-exchange time per iteration",
	"E10": "Fig 8: BFS TEPS on the parcel runtime",
	"E11": "Table 3 + TCP data-path profile: backend latency, put sweep, pipelined rate/bandwidth",
	"E12": "Fig 9: remote atomics latency and pipelined rate",
	"E13": "fault injection & recovery: link severs, frame loss, heartbeat sweep",
	"E14": "engine-shard scaling at a hot sink + shm backend latency/rate",
	"E15": "cluster observability: tracing overhead, merged cross-peer traces, collector scrape cost",
	"E16": "scalable N-peer collectives: latency/goodput vs blocking seed engine",
	"E17": "failure-aware collectives: kill->abort latency, shrink vs restart goodput",
}

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scaleFlag = flag.Float64("scale", 1.0, "iteration scale factor (0 < s <= 1; smaller = faster)")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
		metricsFlag = flag.Bool("metrics", false, "record op latencies across experiments and print a snapshot at the end")
		debugAddr   = flag.String("debug", "", "serve live /metrics, /vars and /trace on this address while experiments run")
		shardsFlag  = flag.Int("shards", 0, "force this engine shard count on every Photon (0 = per-experiment default); E14 sweeps only this count")
		backendFlag = flag.String("backend", "", "restrict backend-sweep experiments to one transport: vsim, tcp, or shm")
	)
	flag.Parse()
	bench.ShardsOverride = *shardsFlag
	bench.BackendOverride = *backendFlag

	// Every Photon the harness boots records into one shared registry
	// and ring (bench.Obs overlay), so the endpoint and the final
	// snapshot show whichever experiments ran. Sampled 1/64 to keep the
	// instrumentation out of the measured numbers.
	var reg *metrics.Registry
	if *metricsFlag || *debugAddr != "" {
		reg = metrics.NewRegistry()
		ring := trace.NewRing(1 << 16)
		ring.Enable(true)
		bench.Obs = core.Config{MetricsTo: reg, Trace: ring, TraceSampleShift: 6}
		if *debugAddr != "" {
			srv, err := metrics.Serve(*debugAddr,
				func() *metrics.Snapshot { return reg.Snapshot() },
				map[string]*trace.Ring{"bench": ring})
			if err != nil {
				fmt.Fprintln(os.Stderr, "photon-bench:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "photon-bench: debug endpoint on http://%s\n", srv.Addr())
		}
	}

	if *listFlag {
		for _, id := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", id, descriptions[id])
		}
		return
	}

	var ids []string
	if *expFlag == "all" {
		ids = bench.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		rep, err := bench.Run(id, *scaleFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", id, err)
			failed++
			continue
		}
		fmt.Print(rep.Render())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *metricsFlag {
		fmt.Println("# sampled op latencies across all experiments (1/64 ops)")
		fmt.Print(reg.Snapshot().Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
