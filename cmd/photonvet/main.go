// Command photonvet runs Photon's invariant analyzers over the module:
//
//	go run ./cmd/photonvet ./...
//
// It loads and type-checks the packages matched by the argument
// patterns (default ./...), applies the full analyzer suite — or the
// subset named with -run — and prints one line per finding:
//
//	internal/core/ops.go:42:7: [hotpathalloc] make allocates in //photon:hotpath function Send
//
// With -json the findings are emitted instead as a single JSON array
// of {analyzer, file, line, col, message} objects on stdout (an empty
// array when clean), for CI artifact upload and tooling.
//
// The exit status is 0 when the tree is clean, 1 when any diagnostic
// (including a malformed or stale //photon: directive) survives, 2 on
// usage or load errors. See DESIGN.md "Static analysis & invariants"
// for the analyzers and the //photon:hotpath / //photon:allow grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"photon/internal/analysis"
)

// jsonDiag is the -json wire shape of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runNames = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list     = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: photonvet [-run name,name] [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *runNames != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runNames, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "photonvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "photonvet: %v\n", err)
		return 2
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "photonvet: %v\n", err)
		return 2
	}

	diags, err := analysis.Run(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "photonvet: %v\n", err)
		return 2
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := d.Position
		if rel, rerr := filepath.Rel(root, pos.Filename); rerr == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		if *jsonOut {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
			continue
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "photonvet: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "photonvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
