// photon-info prints the library's build configuration: effective
// defaults, ledger geometry, backends, and experiment inventory — the
// photon_info of this repository.
package main

import (
	"flag"
	"fmt"
	goruntime "runtime"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/stats"
)

func main() {
	slots := flag.Int("slots", 0, "ledger slots (0 = default)")
	eager := flag.Int("eager", 0, "eager entry size (0 = default)")
	metricsFlag := flag.Bool("metrics", false, "record op latencies during the warm-up and print the snapshot")
	flag.Parse()

	cfg := core.Config{LedgerSlots: *slots, EagerEntrySize: *eager, Metrics: *metricsFlag}
	env, err := bench.NewPhotonOnly(2, fabric.Model{}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer env.Close()
	eff := env.Phs[0].Config()

	fmt.Println("photon-go: Remote Memory Access middleware (reconstruction)")
	fmt.Printf("  go:                 %s on %s/%s (%d CPUs)\n",
		goruntime.Version(), goruntime.GOOS, goruntime.GOARCH, goruntime.NumCPU())
	fmt.Println("  backends:           vsim (simulated IB verbs), tcp (loopback sockets), shm (intra-host SPSC rings)")
	fmt.Printf("  engine shards:      %d (peers partitioned rank %% shards)\n", eff.EngineShards)
	fmt.Printf("  ledger slots:       %d (pwc/eager), %d (sys)\n", eff.LedgerSlots, eff.SysSlots)
	fmt.Printf("  eager entry:        %d B (packed payload cap %d B)\n",
		eff.EagerEntrySize, env.Phs[0].EagerThreshold())
	fmt.Printf("  eager threshold:    %d B (larger sends rendezvous)\n", eff.EagerThreshold)
	fmt.Printf("  rendezvous slab:    %d B\n", eff.RdzvSlabSize)
	fmt.Printf("  credit batch:       %d entries\n", eff.CreditBatch)
	fmt.Println("  operations:         put/get with completion, packed send, rendezvous send,")
	fmt.Println("                      fetch-add, compare-swap, probe/test/wait, collectives")
	fmt.Println("  experiments:        ", bench.Experiments())

	fmt.Println()
	fmt.Println("hot-path counters (after a short warm-up exchange):")
	fmt.Print(indent(hotPathCounters(env), "  "))

	if *metricsFlag {
		fmt.Println()
		fmt.Println("metrics snapshot (rank 0):")
		fmt.Print(indent(env.Phs[0].Metrics().Render(), "  "))
		fmt.Println()
		fmt.Println("tcp data path (2-rank loopback job, pipelined puts):")
		fmt.Print(indent(tcpDataPath(), "  "))
		fmt.Println()
		fmt.Println("sharded engine + shm transport (2-rank shm job, 2 shards):")
		fmt.Print(indent(shmDataPath(), "  "))
	}
}

// shmDataPath boots a shared-memory job with a sharded engine, streams
// pipelined puts, and reports the per-shard engine gauges plus the
// shm_* ring counters.
func shmDataPath() string {
	phs, cleanup, err := bench.NewShmPhotons(2, core.Config{Metrics: true, EngineShards: 2})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer cleanup()
	_, descs, _, err := bench.ShareBuffers(phs, 1<<20)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	if _, err := bench.StreamBandwidthPWC(phs, descs, 4096, 16, 512); err != nil {
		return fmt.Sprintln("error:", err)
	}
	cs := stats.NewCounterSet()
	// Engine-shard gauges from the initiator rank; shm ring counters
	// summed across both ranks (frames out at one side arrive at the
	// other).
	snap0 := phs[0].Metrics()
	for _, n := range snap0.Gauges.Names() {
		if len(n) >= 12 && n[:12] == "engine_shard" {
			v, _ := snap0.Gauges.Get(n)
			cs.Set(n, v)
		}
	}
	for _, ph := range phs {
		snap := ph.Metrics()
		for _, n := range snap.Gauges.Names() {
			if len(n) >= 4 && n[:4] == "shm_" {
				v, _ := snap.Gauges.Get(n)
				prev, _ := cs.Get(n)
				cs.Set(n, prev+v)
			}
		}
	}
	return cs.Render()
}

// tcpDataPath boots a loopback TCP job, streams pipelined puts, and
// reports the transport's coalescing counters: the tcp_* gauges the
// backend exports through Photon.Metrics plus the derived ratios
// (frames per Write syscall, bytes per syscall, ack piggyback share).
func tcpDataPath() string {
	phs, cleanup, err := bench.NewTCPPhotons(2, core.Config{Metrics: true})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer cleanup()
	_, descs, _, err := bench.ShareBuffers(phs, 1<<20)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	if _, err := bench.StreamBandwidthPWC(phs, descs, 4096, 16, 512); err != nil {
		return fmt.Sprintln("error:", err)
	}
	// Sum both ranks: the ack-emission counters live at whichever side
	// sends the acks (the put target), the flush counters at the
	// initiator.
	cs := stats.NewCounterSet()
	get := func(name string) int64 {
		var total int64
		for _, ph := range phs {
			v, _ := ph.Metrics().Gauges.Get(name)
			total += v
		}
		return total
	}
	for _, n := range phs[0].Metrics().Gauges.Names() {
		if len(n) >= 4 && n[:4] == "tcp_" {
			cs.Set(n, get(n))
		}
	}
	out := cs.Render()
	flushes := get("tcp_flushes")
	frames := get("tcp_frames_out")
	bytesOut := get("tcp_bytes_out")
	piggy := get("tcp_acks_piggybacked")
	solo := get("tcp_acks_standalone")
	if flushes > 0 {
		out += fmt.Sprintf("frames/flush        %.2f\n", float64(frames)/float64(flushes))
		out += fmt.Sprintf("bytes/write-syscall %.0f\n", float64(bytesOut)/float64(flushes))
	}
	if piggy+solo > 0 {
		out += fmt.Sprintf("ack piggyback ratio %.2f\n", float64(piggy)/float64(piggy+solo))
	}
	return out
}

// hotPathCounters drives a few eager puts through rank 0 and reports
// the engine's pool/ring/batch counters.
func hotPathCounters(env *bench.Env) string {
	_, descs, _, err := env.SharedBuffers(1 << 12)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	p0, p1 := env.Phs[0], env.Phs[1]
	payload := []byte("photon-info-warmup")
	for i := 0; i < 32; i++ {
		for {
			err := p0.PutWithCompletion(1, payload, descs[0][1], 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				return fmt.Sprintln("error:", err)
			}
			p0.Progress()
		}
		for {
			if _, ok := p0.Probe(core.ProbeLocal); ok {
				break
			}
		}
		for {
			if _, ok := p1.Probe(core.ProbeRemote); ok {
				break
			}
		}
	}
	// Large puts take the direct-write path, whose write+notify pair
	// goes out as one doorbell batch on batch-capable backends.
	big := make([]byte, 2048)
	for i := 0; i < 8; i++ {
		for {
			err := p0.PutWithCompletion(1, big, descs[0][1], 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				return fmt.Sprintln("error:", err)
			}
			p0.Progress()
		}
		for {
			if _, ok := p0.Probe(core.ProbeLocal); ok {
				break
			}
		}
		for {
			if _, ok := p1.Probe(core.ProbeRemote); ok {
				break
			}
		}
	}
	st := p0.Stats()
	cs := stats.NewCounterSet()
	cs.Set("entry_pool_hits", st.EntryPoolHits)
	cs.Set("entry_pool_misses", st.EntryPoolMisses)
	cs.Set("ring_overflows", st.RingOverflows)
	cs.Set("batch_posts", st.BatchPosts)
	cs.Set("batched_ops", st.BatchedOps)
	cs.Set("deferred_writes", st.DeferredWrites)
	return cs.Render()
}

func indent(s, pad string) string {
	var out string
	for _, line := range splitLines(s) {
		out += pad + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
