// photon-info prints the library's build configuration: effective
// defaults, ledger geometry, backends, and experiment inventory — the
// photon_info of this repository.
package main

import (
	"errors"
	"flag"
	"fmt"
	goruntime "runtime"
	"strings"
	"sync"
	"time"

	"photon/internal/backend/chaos"
	"photon/internal/backend/tcp"
	"photon/internal/backend/vsim"
	"photon/internal/bench"
	"photon/internal/collectives"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/metrics"
	"photon/internal/nicsim"
	"photon/internal/stats"
	"photon/internal/trace"
)

func main() {
	slots := flag.Int("slots", 0, "ledger slots (0 = default)")
	eager := flag.Int("eager", 0, "eager entry size (0 = default)")
	metricsFlag := flag.Bool("metrics", false, "record op latencies during the warm-up and print the snapshot")
	clusterFlag := flag.Bool("cluster", false, "boot a 4-rank job, scrape every rank's registry (in-process + HTTP), print the cluster aggregation")
	flightFlag := flag.Bool("flight", false, "boot a 2-rank TCP job, kill one peer, print the fault flight recorder's JSON dump")
	flag.Parse()

	if *clusterFlag {
		fmt.Print(clusterInfo())
		return
	}
	if *flightFlag {
		fmt.Print(flightInfo())
		return
	}

	cfg := core.Config{LedgerSlots: *slots, EagerEntrySize: *eager, Metrics: *metricsFlag}
	env, err := bench.NewPhotonOnly(2, fabric.Model{}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer env.Close()
	eff := env.Phs[0].Config()

	fmt.Println("photon-go: Remote Memory Access middleware (reconstruction)")
	fmt.Printf("  go:                 %s on %s/%s (%d CPUs)\n",
		goruntime.Version(), goruntime.GOOS, goruntime.GOARCH, goruntime.NumCPU())
	fmt.Println("  backends:           vsim (simulated IB verbs), tcp (loopback sockets), shm (intra-host SPSC rings)")
	fmt.Printf("  engine shards:      %d (peers partitioned rank %% shards)\n", eff.EngineShards)
	fmt.Printf("  ledger slots:       %d (pwc/eager), %d (sys)\n", eff.LedgerSlots, eff.SysSlots)
	fmt.Printf("  eager entry:        %d B (packed payload cap %d B)\n",
		eff.EagerEntrySize, env.Phs[0].EagerThreshold())
	fmt.Printf("  eager threshold:    %d B (larger sends rendezvous)\n", eff.EagerThreshold)
	fmt.Printf("  rendezvous slab:    %d B\n", eff.RdzvSlabSize)
	fmt.Printf("  credit batch:       %d entries\n", eff.CreditBatch)
	fmt.Println("  operations:         put/get with completion, packed send, rendezvous send,")
	fmt.Println("                      fetch-add, compare-swap, probe/test/wait, collectives")
	fmt.Println("  experiments:        ", bench.Experiments())

	fmt.Println()
	fmt.Println("hot-path counters (after a short warm-up exchange):")
	fmt.Print(indent(hotPathCounters(env), "  "))

	if *metricsFlag {
		fmt.Println()
		fmt.Println("metrics snapshot (rank 0):")
		fmt.Print(indent(env.Phs[0].Metrics().Render(), "  "))
		fmt.Println()
		fmt.Println("tcp data path (2-rank loopback job, pipelined puts):")
		fmt.Print(indent(tcpDataPath(), "  "))
		fmt.Println()
		fmt.Println("sharded engine + shm transport (2-rank shm job, 2 shards):")
		fmt.Print(indent(shmDataPath(), "  "))
		fmt.Println()
		fmt.Println("collectives engine (4-rank vsim job: barriers, allreduces, alltoall):")
		fmt.Print(indent(collEngine(), "  "))
		fmt.Println()
		fmt.Println("failure-aware collectives (4-rank chaos job: rank 3 killed mid-barrier, survivors shrink):")
		fmt.Print(indent(collAbortDemo(), "  "))
	}
}

// collEngine boots a 4-rank vsim job, drives each collective a few
// times, and reports what the schedule engine exports through
// Photon.Metrics: per-kind coll_* call counters and algorithm-selection
// gauges plus the whole-collective photon_coll_latency_ns histograms.
func collEngine() string {
	env, err := bench.NewPhotonOnly(4, fabric.Model{}, core.Config{Metrics: true})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer env.Close()
	comms := make([]*collectives.Comm, 4)
	var cwg sync.WaitGroup
	for r := range comms {
		cwg.Add(1)
		go func(r int) {
			defer cwg.Done()
			comms[r] = collectives.New(env.Phs[r], 5*time.Second)
		}(r)
	}
	cwg.Wait()
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for r := range comms {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := comms[r]
			vec := []float64{float64(r), 1, 2, 3}
			for i := 0; i < 8; i++ {
				if err := c.Barrier(); err != nil {
					errs[r] = err
					return
				}
				if err := c.AllreduceInPlace(vec, collectives.OpSum); err != nil {
					errs[r] = err
					return
				}
			}
			blobs := make([][]byte, 4)
			for i := range blobs {
				blobs[i] = []byte{byte(r), byte(i)}
			}
			_, errs[r] = c.Alltoall(blobs)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Sprintln("error:", err)
		}
	}
	snap := env.Phs[0].Metrics()
	var b strings.Builder
	for _, h := range snap.Hists {
		if strings.HasPrefix(h.Name, "coll/") {
			fmt.Fprintf(&b, "%-14s n=%-4d p50=%.1fus p99=%.1fus\n",
				h.Name, h.Hist.N(),
				float64(h.Hist.Quantile(0.5))/1e3, float64(h.Hist.Quantile(0.99))/1e3)
		}
	}
	cs := stats.NewCounterSet()
	for _, n := range snap.Gauges.Names() {
		if strings.HasPrefix(n, "coll_") {
			v, _ := snap.Gauges.Get(n)
			cs.Set(n, v)
		}
	}
	b.WriteString(cs.Render())
	return b.String()
}

// collAbortDemo boots a 4-rank chaos-wrapped vsim job with the failure
// detector and flight recorder armed, kills rank 3 mid-barrier, and
// reports what the failure plane exports: the coll_aborts /
// coll_revokes_sent / coll_shrinks gauges, the coll/abort
// detection->abort latency histogram, and the reason-tagged flight
// capture — then shrinks the survivors and runs one allreduce on the
// 3-rank successor.
func collAbortDemo() string {
	const n, victim = 4, 3
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer cl.Close()
	group := chaos.NewGroup(time.Millisecond)
	bes := make([]*chaos.Backend, n)
	phs := make([]*core.Photon, n)
	comms := make([]*collectives.Comm, n)
	cfg := core.Config{
		Metrics:           true,
		FlightRecords:     16,
		HeartbeatInterval: 2 * time.Millisecond,
		SuspectAfter:      8 * time.Millisecond,
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		bes[r] = chaos.WrapGroup(cl.Backend(r), chaos.Plan{Seed: int64(r)}, group)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if phs[r], errs[r] = core.Init(bes[r], cfg); errs[r] == nil {
				comms[r] = collectives.NewWithConfig(phs[r], collectives.Config{Timeout: 10 * time.Second})
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Sprintln("error:", err)
		}
	}
	defer func() {
		for _, ph := range phs {
			ph.Close()
		}
	}()

	run := func(fn func(r int) error) []error {
		out := make([]error, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) { defer wg.Done(); out[r] = fn(r) }(r)
		}
		wg.Wait()
		return out
	}
	if es := run(func(r int) error { return comms[r].Barrier() }); es[0] != nil {
		return fmt.Sprintln("error:", es[0])
	}
	bes[victim].CrashAfterOps(1)
	aborts := run(func(r int) error { return comms[r].Barrier() })

	var b strings.Builder
	fmt.Fprintf(&b, "rank 0 abort: %v\n", aborts[0])
	ncs := make([]*collectives.Comm, victim)
	serrs := run(func(r int) error {
		if r == victim {
			return nil
		}
		nc, err := comms[r].Shrink()
		ncs[r] = nc
		return err
	})
	for r := 0; r < victim; r++ {
		if serrs[r] != nil {
			return fmt.Sprintln("shrink error:", serrs[r])
		}
	}
	vres := run(func(r int) error {
		if r == victim {
			return nil
		}
		vec := []float64{float64(r + 1)}
		return ncs[r].AllreduceInPlace(vec, collectives.OpSum)
	})
	for r := 0; r < victim; r++ {
		if vres[r] != nil {
			return fmt.Sprintln("shrunken allreduce error:", vres[r])
		}
	}
	fmt.Fprintf(&b, "shrunken comm: size=%d epoch=%d, allreduce ok\n", ncs[0].Size(), ncs[0].Epoch())

	snap := phs[0].Metrics()
	for _, h := range snap.Hists {
		if h.Name == "coll/abort" {
			fmt.Fprintf(&b, "%-14s n=%-4d p50=%.1fus p99=%.1fus\n",
				h.Name, h.Hist.N(),
				float64(h.Hist.Quantile(0.5))/1e3, float64(h.Hist.Quantile(0.99))/1e3)
		}
	}
	cs := stats.NewCounterSet()
	for _, nm := range snap.Gauges.Names() {
		if strings.HasPrefix(nm, "coll_aborts") || strings.HasPrefix(nm, "coll_revokes") || strings.HasPrefix(nm, "coll_shrinks") {
			v, _ := snap.Gauges.Get(nm)
			cs.Set(nm, v)
		}
	}
	b.WriteString(cs.Render())
	if fr := phs[0].FlightRecorder(); fr != nil {
		for _, rec := range fr.Records() {
			if rec.Reason != "" {
				fmt.Fprintf(&b, "flight capture: peer=%d reason=%q\n", rec.Peer, rec.Reason)
				break
			}
		}
	}
	return b.String()
}

// clusterInfo boots a 4-rank simulated job, drives a put ring so every
// rank's registry has observations, then scrapes all four registries
// through a Collector — ranks 0 and 1 through the in-process path,
// ranks 2 and 3 over their debug HTTP /snapshot endpoints — and prints
// the cluster-wide aggregation (exact merged histograms, summed
// gauges, slowest-peer ranking).
func clusterInfo() string {
	env, err := bench.NewPhotonOnly(4, fabric.Model{}, core.Config{Metrics: true})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer env.Close()
	phs := env.Phs
	_, descs, _, err := env.SharedBuffers(1 << 12)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	// Put ring: every rank both initiates and receives, so all four
	// registries carry initiator- and remote-stage distributions.
	payload := []byte("cluster-info")
	for i := 0; i < 64; i++ {
		for src := range phs {
			dst := (src + 1) % len(phs)
			rid := uint64(1 + i)
			if err := phs[src].PutBlocking(dst, payload, descs[src][dst], 0, rid, rid); err != nil {
				return fmt.Sprintln("error:", err)
			}
			if _, err := phs[src].WaitLocal(rid, 5*time.Second); err != nil {
				return fmt.Sprintln("error:", err)
			}
			if _, err := phs[dst].WaitRemote(rid, 5*time.Second); err != nil {
				return fmt.Sprintln("error:", err)
			}
		}
	}

	sources := make([]metrics.PeerSource, len(phs))
	for r := range phs {
		r := r
		if r < 2 {
			sources[r] = metrics.PeerSource{Rank: r, Snap: func() *metrics.Snapshot { return phs[r].Metrics() }}
			continue
		}
		srv, err := metrics.Serve("127.0.0.1:0", func() *metrics.Snapshot { return phs[r].Metrics() }, nil)
		if err != nil {
			return fmt.Sprintln("error:", err)
		}
		defer srv.Close()
		sources[r] = metrics.PeerSource{Rank: r, URL: "http://" + srv.Addr()}
	}
	cs := metrics.NewCollector(sources).Collect()

	var b strings.Builder
	b.WriteString("cluster metrics plane (4-rank vsim job; ranks 0-1 scraped in-process, 2-3 over HTTP /snapshot):\n")
	b.WriteString(indent(cs.Render(), "  "))
	return b.String()
}

// flightInfo boots a 2-rank TCP job with the flight recorder armed,
// streams a little traffic, kills rank 1 outright, waits for rank 0's
// fault plane to latch the peer down, and prints the black box.
func flightInfo() string {
	ring := trace.NewRing(1024)
	ring.Enable(true)
	phs, _, cleanup, err := bench.NewTCPPhotonsFT(2, core.Config{
		OpTimeout:         300 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		Metrics:           true,
		Trace:             ring,
		FlightRecords:     8,
	}, func(c *tcp.Config) {
		c.ReconnectWindow = 300 * time.Millisecond
		c.ReconnectBackoff = 10 * time.Millisecond
	})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer cleanup()
	_, descs, _, err := bench.ShareBuffers(phs, 1<<12)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	for i := uint64(1); i <= 16; i++ {
		if err := phs[0].PutBlocking(1, []byte{byte(i)}, descs[0][1], 0, i, i); err != nil {
			return fmt.Sprintln("error:", err)
		}
		if _, err := phs[0].WaitLocal(i, 5*time.Second); err != nil {
			return fmt.Sprintln("error:", err)
		}
	}
	phs[1].Close() // peer dies for good
	deadline := time.Now().Add(10 * time.Second)
	for phs[0].PeerHealthState(1) != core.PeerDown {
		if time.Now().After(deadline) {
			return fmt.Sprintln("error: peer never latched down")
		}
		phs[0].Progress()
		time.Sleep(time.Millisecond)
	}
	var b strings.Builder
	b.WriteString("fault flight recorder (2-rank TCP job, rank 1 killed; rank 0's black box):\n")
	if err := phs[0].FlightDump(&b); err != nil {
		return fmt.Sprintln("error:", err)
	}
	return b.String()
}

// shmDataPath boots a shared-memory job with a sharded engine, streams
// pipelined puts, and reports the per-shard engine gauges plus the
// shm_* ring counters.
func shmDataPath() string {
	phs, cleanup, err := bench.NewShmPhotons(2, core.Config{Metrics: true, EngineShards: 2})
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer cleanup()
	_, descs, _, err := bench.ShareBuffers(phs, 1<<20)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	if _, err := bench.StreamBandwidthPWC(phs, descs, 4096, 16, 512); err != nil {
		return fmt.Sprintln("error:", err)
	}
	cs := stats.NewCounterSet()
	// Engine-shard gauges from the initiator rank; shm ring counters
	// summed across both ranks (frames out at one side arrive at the
	// other).
	snap0 := phs[0].Metrics()
	for _, n := range snap0.Gauges.Names() {
		if len(n) >= 12 && n[:12] == "engine_shard" {
			v, _ := snap0.Gauges.Get(n)
			cs.Set(n, v)
		}
	}
	for _, ph := range phs {
		snap := ph.Metrics()
		for _, n := range snap.Gauges.Names() {
			if len(n) >= 4 && n[:4] == "shm_" {
				v, _ := snap.Gauges.Get(n)
				prev, _ := cs.Get(n)
				cs.Set(n, prev+v)
			}
		}
	}
	return cs.Render()
}

// tcpDataPath boots a loopback TCP job, streams pipelined puts, and
// reports the transport's coalescing counters: the tcp_* gauges the
// backend exports through Photon.Metrics plus the derived ratios
// (frames per Write syscall, bytes per syscall, ack piggyback share).
func tcpDataPath() string {
	phs, bes, cleanup, err := bench.NewTCPPhotonsFT(2, core.Config{
		Metrics:           true,
		HeartbeatInterval: 20 * time.Millisecond,
	}, nil)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	defer cleanup()
	_, descs, _, err := bench.ShareBuffers(phs, 1<<20)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	if _, err := bench.StreamBandwidthPWC(phs, descs, 4096, 16, 512); err != nil {
		return fmt.Sprintln("error:", err)
	}
	// Sum both ranks: the ack-emission counters live at whichever side
	// sends the acks (the put target), the flush counters at the
	// initiator.
	cs := stats.NewCounterSet()
	get := func(name string) int64 {
		var total int64
		for _, ph := range phs {
			v, _ := ph.Metrics().Gauges.Get(name)
			total += v
		}
		return total
	}
	for _, n := range phs[0].Metrics().Gauges.Names() {
		if len(n) >= 4 && n[:4] == "tcp_" {
			cs.Set(n, get(n))
		}
	}
	out := cs.Render()
	flushes := get("tcp_flushes")
	frames := get("tcp_frames_out")
	bytesOut := get("tcp_bytes_out")
	piggy := get("tcp_acks_piggybacked")
	solo := get("tcp_acks_standalone")
	if flushes > 0 {
		out += fmt.Sprintf("frames/flush        %.2f\n", float64(frames)/float64(flushes))
		out += fmt.Sprintf("bytes/write-syscall %.0f\n", float64(bytesOut)/float64(flushes))
	}
	if piggy+solo > 0 {
		out += fmt.Sprintf("ack piggyback ratio %.2f\n", float64(piggy)/float64(piggy+solo))
	}
	out += healthTable(phs[0], bes[0])
	return out
}

// healthTable renders rank 0's per-peer liveness view: the engine's
// health state, when it last changed, and the transport's recovery
// counters for that connection.
func healthTable(p *core.Photon, be *tcp.Backend) string {
	t := stats.NewTable("peer health (rank 0 view)",
		"peer", "state", "last transition", "reconnects", "retx frames")
	for peer := 0; peer < p.Size(); peer++ {
		if peer == p.Rank() {
			continue
		}
		last := "-"
		if ns := p.PeerLastTransitionNS(peer); ns != 0 {
			last = time.Unix(0, ns).Format("15:04:05.000")
		}
		ps := be.PeerStats(peer)
		t.Row(peer, p.PeerHealthState(peer).String(), last, ps.Reconnects, ps.RetransmitFrames)
	}
	return t.Render()
}

// hotPathCounters drives a few eager puts through rank 0 and reports
// the engine's pool/ring/batch counters.
func hotPathCounters(env *bench.Env) string {
	_, descs, _, err := env.SharedBuffers(1 << 12)
	if err != nil {
		return fmt.Sprintln("error:", err)
	}
	p0, p1 := env.Phs[0], env.Phs[1]
	payload := []byte("photon-info-warmup")
	for i := 0; i < 32; i++ {
		for {
			err := p0.PutWithCompletion(1, payload, descs[0][1], 0, 1, 2)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrWouldBlock) {
				return fmt.Sprintln("error:", err)
			}
			p0.Progress()
		}
		for {
			if _, ok := p0.Probe(core.ProbeLocal); ok {
				break
			}
		}
		for {
			if _, ok := p1.Probe(core.ProbeRemote); ok {
				break
			}
		}
	}
	// Large puts take the direct-write path, whose write+notify pair
	// goes out as one doorbell batch on batch-capable backends.
	big := make([]byte, 2048)
	for i := 0; i < 8; i++ {
		for {
			err := p0.PutWithCompletion(1, big, descs[0][1], 0, 1, 2)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrWouldBlock) {
				return fmt.Sprintln("error:", err)
			}
			p0.Progress()
		}
		for {
			if _, ok := p0.Probe(core.ProbeLocal); ok {
				break
			}
		}
		for {
			if _, ok := p1.Probe(core.ProbeRemote); ok {
				break
			}
		}
	}
	st := p0.Stats()
	cs := stats.NewCounterSet()
	cs.Set("entry_pool_hits", st.EntryPoolHits)
	cs.Set("entry_pool_misses", st.EntryPoolMisses)
	cs.Set("ring_overflows", st.RingOverflows)
	cs.Set("batch_posts", st.BatchPosts)
	cs.Set("batched_ops", st.BatchedOps)
	cs.Set("deferred_writes", st.DeferredWrites)
	return cs.Render()
}

func indent(s, pad string) string {
	var out string
	for _, line := range splitLines(s) {
		out += pad + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
