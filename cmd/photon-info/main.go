// photon-info prints the library's build configuration: effective
// defaults, ledger geometry, backends, and experiment inventory — the
// photon_info of this repository.
package main

import (
	"flag"
	"fmt"
	goruntime "runtime"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
)

func main() {
	slots := flag.Int("slots", 0, "ledger slots (0 = default)")
	eager := flag.Int("eager", 0, "eager entry size (0 = default)")
	flag.Parse()

	cfg := core.Config{LedgerSlots: *slots, EagerEntrySize: *eager}
	env, err := bench.NewPhotonOnly(2, fabric.Model{}, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer env.Close()
	eff := env.Phs[0].Config()

	fmt.Println("photon-go: Remote Memory Access middleware (reconstruction)")
	fmt.Printf("  go:                 %s on %s/%s (%d CPUs)\n",
		goruntime.Version(), goruntime.GOOS, goruntime.GOARCH, goruntime.NumCPU())
	fmt.Println("  backends:           vsim (simulated IB verbs), tcp (loopback sockets)")
	fmt.Printf("  ledger slots:       %d (pwc/eager), %d (sys)\n", eff.LedgerSlots, eff.SysSlots)
	fmt.Printf("  eager entry:        %d B (packed payload cap %d B)\n",
		eff.EagerEntrySize, env.Phs[0].EagerThreshold())
	fmt.Printf("  eager threshold:    %d B (larger sends rendezvous)\n", eff.EagerThreshold)
	fmt.Printf("  rendezvous slab:    %d B\n", eff.RdzvSlabSize)
	fmt.Printf("  credit batch:       %d entries\n", eff.CreditBatch)
	fmt.Println("  operations:         put/get with completion, packed send, rendezvous send,")
	fmt.Println("                      fetch-add, compare-swap, probe/test/wait, collectives")
	fmt.Println("  experiments:        ", bench.Experiments())
}
