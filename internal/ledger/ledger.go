// Package ledger implements Photon's ledgers: RDMA-addressable circular
// buffers of fixed-size entries through which one initiator delivers
// completion events (and eager payloads) directly into a target's
// memory.
//
// A ledger is asymmetric. The *receiver* owns the backing store — a
// registered buffer the remote peer may RDMA-write — and discovers new
// entries by polling local memory, never by taking an interrupt or
// matching a message. The *sender* holds only a descriptor of the
// remote buffer plus a credit count; it reserves the next slot, encodes
// an entry, and RDMA-writes it to the slot's remote address.
//
// Entry validity uses per-slot sequence numbers: the entry written into
// slot i on wrap w carries sequence w+1, so a receiver polling slot i
// accepts it exactly once — stale entries from earlier wraps and the
// zero-initialized first round are never mistaken for new arrivals.
// Because the underlying transport writes each entry with a single
// in-order RDMA write, a matching sequence number implies the whole
// entry is visible.
//
// Flow control is credit-based: the sender starts with one credit per
// slot, spends one per reservation, and regains credits when the
// receiver tells it slots were consumed (Photon returns credits either
// piggybacked on reverse-direction traffic or via explicit writes; that
// policy lives in package core).
package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"photon/internal/mem"
)

// noopLocker is used when the caller provides no read-locker.
type noopLocker struct{}

func (noopLocker) Lock()   {}
func (noopLocker) Unlock() {}

// HeaderSize is the per-entry header: sequence (4 bytes) plus payload
// length (4 bytes).
const HeaderSize = 8

// MinEntrySize is the smallest usable entry (header plus 8 payload
// bytes, enough for a completion RID).
const MinEntrySize = HeaderSize + 8

// Errors returned by ledger operations.
var (
	ErrNoCredit  = errors.New("ledger: no credits (remote ledger full)")
	ErrGeometry  = errors.New("ledger: invalid geometry")
	ErrTooLarge  = errors.New("ledger: payload exceeds entry capacity")
	ErrOvershoot = errors.New("ledger: credit return exceeds outstanding entries")
)

// Entry is one received ledger entry. Payload aliases the ledger's
// backing store and is valid only until the slot is overwritten on the
// next wrap — receivers that retain payloads must copy.
type Entry struct {
	Slot    int
	Seq     uint32
	Payload []byte
}

// Reservation names the remote slot an initiator will write next.
type Reservation struct {
	Slot       int
	Seq        uint32
	RemoteAddr uint64
	RKey       uint32
}

// Encode serializes an entry (sequence + payload) into dst, which must
// be exactly one entry in size. The sequence field is written last in
// the buffer layout sense, but visibility is guaranteed by the
// transport's single-write semantics, not field order.
func Encode(dst []byte, seq uint32, payload []byte) error {
	if len(payload) > len(dst)-HeaderSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), len(dst)-HeaderSize)
	}
	binary.LittleEndian.PutUint32(dst[0:], seq)
	binary.LittleEndian.PutUint32(dst[4:], uint32(len(payload)))
	copy(dst[HeaderSize:], payload)
	return nil
}

// EncodeHeader writes just the entry header (sequence + payload
// length) into dst. Callers that build the payload in place — directly
// in dst[HeaderSize:HeaderSize+payloadLen] — use this to skip the
// intermediate payload buffer Encode requires.
func EncodeHeader(dst []byte, seq uint32, payloadLen int) error {
	if payloadLen > len(dst)-HeaderSize {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, payloadLen, len(dst)-HeaderSize)
	}
	binary.LittleEndian.PutUint32(dst[0:], seq)
	binary.LittleEndian.PutUint32(dst[4:], uint32(payloadLen))
	return nil
}

// ---------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------

// Receiver is the polling half of a ledger, layered over a local
// registered buffer that a single remote sender RDMA-writes.
type Receiver struct {
	//photon:lock recv 20
	mu sync.Mutex
	//photon:lock dma 10
	rlk       sync.Locker // guards reads of buf against remote DMA
	buf       []byte
	entrySize int
	n         int
	head      int
	wrap      uint32
	consumed  int64 // credits not yet taken for return
	total     int64 // lifetime entries consumed
}

// NewReceiver wraps buf (a subslice of registered memory) as a ledger
// of n = len(buf)/entrySize slots. len(buf) must be a positive multiple
// of entrySize and entrySize >= MinEntrySize. rlk, when non-nil, is
// held while Poll reads buf, synchronizing against the transport's
// remote writes (backends supply the registration's read-locker).
func NewReceiver(buf []byte, entrySize int, rlk sync.Locker) (*Receiver, error) {
	if entrySize < MinEntrySize || len(buf) == 0 || len(buf)%entrySize != 0 {
		return nil, fmt.Errorf("%w: buf=%d entry=%d", ErrGeometry, len(buf), entrySize)
	}
	if rlk == nil {
		rlk = noopLocker{}
	}
	return &Receiver{buf: buf, entrySize: entrySize, n: len(buf) / entrySize, rlk: rlk}, nil
}

// Slots returns the slot count.
func (r *Receiver) Slots() int { return r.n }

// EntrySize returns the entry size in bytes.
func (r *Receiver) EntrySize() int { return r.entrySize }

// Buf exposes the backing store (for registration/publication).
func (r *Receiver) Buf() []byte { return r.buf }

// Poll checks the head slot for a newly arrived entry. On success it
// consumes the entry (advancing the head and accruing one returnable
// credit) and returns it; otherwise ok is false.
func (r *Receiver) Poll() (Entry, bool) {
	r.rlk.Lock()
	defer r.rlk.Unlock()
	return r.PollLocked()
}

// ReadyLocked reports whether the head slot holds a new entry without
// taking the receiver's mutex. It is safe only when all consumption is
// serialized externally (the Photon progress engine is), because it
// reads the cursor without synchronization; the caller must hold the
// read-locker.
func (r *Receiver) ReadyLocked() bool {
	off := r.head * r.entrySize
	return binary.LittleEndian.Uint32(r.buf[off:]) == r.wrap+1
}

// DecodeEntry parses one entrySize-byte ledger slot, accepting the
// entry only when its sequence word equals want (the receiver's
// current wrap + 1 — the per-slot validity rule). The returned payload
// aliases slot and is clamped to the slot's capacity even when the
// length word is corrupt, so remote writes can never steer a receiver
// out of its own slot. It is a pure function over the slot bytes (no
// receiver state) so it can be fuzzed directly.
func DecodeEntry(slot []byte, want uint32) (payload []byte, ok bool) {
	if len(slot) < MinEntrySize {
		return nil, false
	}
	if binary.LittleEndian.Uint32(slot) != want {
		return nil, false
	}
	plen := int(binary.LittleEndian.Uint32(slot[4:]))
	if plen > len(slot)-HeaderSize {
		plen = len(slot) - HeaderSize // corrupt length; clamp defensively
	}
	return slot[HeaderSize : HeaderSize+plen], true
}

// PollLocked is Poll for engines that already hold the read-locker
// passed to NewReceiver — a progress loop draining several ledgers of
// one registered arena acquires the arena lock once instead of per
// ledger. Payload aliasing rules are unchanged.
func (r *Receiver) PollLocked() (Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	off := r.head * r.entrySize
	payload, ok := DecodeEntry(r.buf[off:off+r.entrySize], r.wrap+1)
	if !ok {
		return Entry{}, false
	}
	e := Entry{
		Slot:    r.head,
		Seq:     r.wrap + 1,
		Payload: payload,
	}
	r.head++
	if r.head == r.n {
		r.head = 0
		r.wrap++
	}
	r.consumed++
	r.total++
	return e, true
}

// TakeCredits returns and clears the count of entries consumed since
// the last call; the caller forwards this to the sender as credits.
func (r *Receiver) TakeCredits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := int(r.consumed)
	r.consumed = 0
	return c
}

// PendingCredits reports credits accrued but not yet taken.
func (r *Receiver) PendingCredits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.consumed)
}

// Total reports lifetime entries consumed.
func (r *Receiver) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ---------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------

// Sender is the initiating half: it tracks the remote ledger's geometry
// and its own credit balance, handing out slot reservations.
type Sender struct {
	//photon:lock send 30
	mu        sync.Mutex
	remote    mem.RemoteBuffer
	entrySize int
	n         int
	tail      int
	wrap      uint32
	credits   int
	reserved  int64 // lifetime reservations
}

// NewSender builds the sending half for a remote ledger described by
// rb; rb.Len must be a positive multiple of entrySize.
func NewSender(rb mem.RemoteBuffer, entrySize int) (*Sender, error) {
	if entrySize < MinEntrySize || rb.Len == 0 || rb.Len%entrySize != 0 {
		return nil, fmt.Errorf("%w: remote len=%d entry=%d", ErrGeometry, rb.Len, entrySize)
	}
	n := rb.Len / entrySize
	return &Sender{remote: rb, entrySize: entrySize, n: n, credits: n}, nil
}

// Slots returns the remote slot count.
func (s *Sender) Slots() int { return s.n }

// EntrySize returns the entry size in bytes.
func (s *Sender) EntrySize() int { return s.entrySize }

// MaxPayload returns the largest payload one entry can carry.
func (s *Sender) MaxPayload() int { return s.entrySize - HeaderSize }

// Credits returns the current credit balance.
func (s *Sender) Credits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.credits
}

// Reserved reports lifetime reservations.
func (s *Sender) Reserved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reserved
}

// Reserve claims the next remote slot, spending one credit. The caller
// must write an encoded entry (with the returned sequence) to the
// returned remote address, in one RDMA write.
func (s *Sender) Reserve() (Reservation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.credits == 0 {
		return Reservation{}, ErrNoCredit
	}
	s.credits--
	res := Reservation{
		Slot:       s.tail,
		Seq:        s.wrap + 1,
		RemoteAddr: s.remote.Addr + uint64(s.tail*s.entrySize),
		RKey:       s.remote.RKey,
	}
	s.tail++
	if s.tail == s.n {
		s.tail = 0
		s.wrap++
	}
	s.reserved++
	return res, nil
}

// AddCredits returns n consumed slots to the balance. Returning more
// credits than there are outstanding reservations is a protocol error.
func (s *Sender) AddCredits(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: n=%d", ErrOvershoot, n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.credits+n > s.n {
		return fmt.Errorf("%w: %d+%d > %d", ErrOvershoot, s.credits, n, s.n)
	}
	s.credits += n
	return nil
}
