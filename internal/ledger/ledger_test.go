package ledger

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"photon/internal/mem"
)

const entSize = 64 // test entry size

// wirePair couples a Sender and Receiver through a simulated RDMA
// write: writeEntry copies the encoded entry into the receiver's
// backing store at the reserved offset, which is exactly what the NIC
// does in production.
type wirePair struct {
	s *Sender
	r *Receiver
}

func newWirePair(t *testing.T, slots int) *wirePair {
	t.Helper()
	buf := make([]byte, slots*entSize)
	r, err := NewReceiver(buf, entSize, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb := mem.RemoteBuffer{Addr: 0x10000, RKey: 1, Len: len(buf)}
	s, err := NewSender(rb, entSize)
	if err != nil {
		t.Fatal(err)
	}
	return &wirePair{s: s, r: r}
}

// push reserves a slot, encodes payload, and "RDMA-writes" it.
func (w *wirePair) push(t *testing.T, payload []byte) error {
	res, err := w.s.Reserve()
	if err != nil {
		return err
	}
	off := res.Slot * entSize
	if want := uint64(0x10000) + uint64(off); res.RemoteAddr != want {
		t.Fatalf("remote addr = %#x, want %#x", res.RemoteAddr, want)
	}
	ent := make([]byte, entSize)
	if err := Encode(ent, res.Seq, payload); err != nil {
		return err
	}
	copy(w.r.Buf()[off:], ent)
	return nil
}

func TestEncodeLayout(t *testing.T) {
	dst := make([]byte, entSize)
	payload := []byte("ledger entry payload")
	if err := Encode(dst, 5, payload); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(dst[0:]); got != 5 {
		t.Fatalf("seq = %d", got)
	}
	if got := binary.LittleEndian.Uint32(dst[4:]); got != uint32(len(payload)) {
		t.Fatalf("len = %d", got)
	}
	if !bytes.Equal(dst[HeaderSize:HeaderSize+len(payload)], payload) {
		t.Fatal("payload mismatch")
	}
}

func TestEncodeTooLarge(t *testing.T) {
	dst := make([]byte, MinEntrySize)
	if err := Encode(dst, 1, make([]byte, MinEntrySize)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := NewReceiver(make([]byte, 100), 33, nil); !errors.Is(err, ErrGeometry) {
		t.Fatalf("non-multiple geometry: %v", err)
	}
	if _, err := NewReceiver(nil, entSize, nil); !errors.Is(err, ErrGeometry) {
		t.Fatalf("empty buf: %v", err)
	}
	if _, err := NewReceiver(make([]byte, 8), 8, nil); !errors.Is(err, ErrGeometry) {
		t.Fatalf("entry below minimum: %v", err)
	}
	if _, err := NewSender(mem.RemoteBuffer{Len: 100}, 33); !errors.Is(err, ErrGeometry) {
		t.Fatalf("sender non-multiple: %v", err)
	}
}

func TestPollEmpty(t *testing.T) {
	w := newWirePair(t, 4)
	if _, ok := w.r.Poll(); ok {
		t.Fatal("empty ledger polled an entry")
	}
}

func TestSingleRoundTrip(t *testing.T) {
	w := newWirePair(t, 4)
	if err := w.push(t, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	e, ok := w.r.Poll()
	if !ok {
		t.Fatal("entry not visible")
	}
	if e.Slot != 0 || e.Seq != 1 || string(e.Payload) != "hello" {
		t.Fatalf("entry = %+v", e)
	}
	if _, ok := w.r.Poll(); ok {
		t.Fatal("entry delivered twice")
	}
}

func TestFIFOOrder(t *testing.T) {
	w := newWirePair(t, 8)
	for i := 0; i < 8; i++ {
		if err := w.push(t, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		e, ok := w.r.Poll()
		if !ok || e.Payload[0] != byte(i) {
			t.Fatalf("entry %d: ok=%v payload=%v", i, ok, e.Payload)
		}
	}
}

func TestCreditExhaustionAndReturn(t *testing.T) {
	w := newWirePair(t, 2)
	if w.s.Credits() != 2 {
		t.Fatalf("initial credits = %d", w.s.Credits())
	}
	w.push(t, []byte{1})
	w.push(t, []byte{2})
	if err := w.push(t, []byte{3}); !errors.Is(err, ErrNoCredit) {
		t.Fatalf("push without credit: %v", err)
	}
	w.r.Poll()
	if c := w.r.TakeCredits(); c != 1 {
		t.Fatalf("TakeCredits = %d", c)
	}
	if c := w.r.TakeCredits(); c != 0 {
		t.Fatalf("second TakeCredits = %d", c)
	}
	if err := w.s.AddCredits(1); err != nil {
		t.Fatal(err)
	}
	if err := w.push(t, []byte{3}); err != nil {
		t.Fatalf("push after credit return: %v", err)
	}
}

func TestCreditOvershootRejected(t *testing.T) {
	w := newWirePair(t, 2)
	if err := w.s.AddCredits(1); !errors.Is(err, ErrOvershoot) {
		t.Fatalf("overshoot = %v", err)
	}
	if err := w.s.AddCredits(-1); !errors.Is(err, ErrOvershoot) {
		t.Fatalf("negative = %v", err)
	}
}

func TestWrapAroundSequences(t *testing.T) {
	w := newWirePair(t, 2)
	// Three full wraps.
	for round := 0; round < 6; round++ {
		if err := w.push(t, []byte{byte(round)}); err != nil {
			t.Fatal(err)
		}
		e, ok := w.r.Poll()
		if !ok {
			t.Fatalf("round %d: entry not visible", round)
		}
		wantSeq := uint32(round/2 + 1)
		if e.Seq != wantSeq || e.Payload[0] != byte(round) {
			t.Fatalf("round %d: entry = %+v, want seq %d", round, e, wantSeq)
		}
		w.r.TakeCredits()
		w.s.AddCredits(1)
	}
	if w.r.Total() != 6 {
		t.Fatalf("total = %d", w.r.Total())
	}
	if w.s.Reserved() != 6 {
		t.Fatalf("reserved = %d", w.s.Reserved())
	}
}

func TestStaleEntryNotReRead(t *testing.T) {
	w := newWirePair(t, 2)
	w.push(t, []byte{1})
	w.push(t, []byte{2})
	w.r.Poll()
	w.r.Poll()
	// Slot 0 still holds seq=1 from wrap 0, but the receiver now
	// expects seq=2 there: no phantom entry.
	if _, ok := w.r.Poll(); ok {
		t.Fatal("stale entry re-read after wrap")
	}
}

func TestCorruptLengthClamped(t *testing.T) {
	w := newWirePair(t, 2)
	res, _ := w.s.Reserve()
	ent := make([]byte, entSize)
	binary.LittleEndian.PutUint32(ent[0:], res.Seq)
	binary.LittleEndian.PutUint32(ent[4:], 0xFFFFFF) // absurd length
	copy(w.r.Buf()[res.Slot*entSize:], ent)
	e, ok := w.r.Poll()
	if !ok {
		t.Fatal("entry not visible")
	}
	if len(e.Payload) != entSize-HeaderSize {
		t.Fatalf("payload len = %d, want clamp to %d", len(e.Payload), entSize-HeaderSize)
	}
}

func TestMaxPayload(t *testing.T) {
	w := newWirePair(t, 2)
	if w.s.MaxPayload() != entSize-HeaderSize {
		t.Fatalf("MaxPayload = %d", w.s.MaxPayload())
	}
	big := make([]byte, w.s.MaxPayload())
	for i := range big {
		big[i] = byte(i)
	}
	if err := w.push(t, big); err != nil {
		t.Fatal(err)
	}
	e, _ := w.r.Poll()
	if !bytes.Equal(e.Payload, big) {
		t.Fatal("max payload corrupted")
	}
}

func TestAccessors(t *testing.T) {
	w := newWirePair(t, 4)
	if w.r.Slots() != 4 || w.s.Slots() != 4 {
		t.Fatalf("slots = %d/%d", w.r.Slots(), w.s.Slots())
	}
	if w.r.EntrySize() != entSize || w.s.EntrySize() != entSize {
		t.Fatal("entry size accessors wrong")
	}
	w.push(t, []byte{1})
	w.r.Poll()
	if w.r.PendingCredits() != 1 {
		t.Fatalf("pending = %d", w.r.PendingCredits())
	}
}

// Property: for any interleaving of pushes (when credits allow) and
// polls, the receiver observes exactly the pushed payload sequence, in
// order, with conservation of credits.
func TestLedgerFIFOProperty(t *testing.T) {
	f := func(ops []bool, slotSel uint8) bool {
		slots := int(slotSel%7) + 1
		buf := make([]byte, slots*entSize)
		r, err := NewReceiver(buf, entSize, nil)
		if err != nil {
			return false
		}
		s, err := NewSender(mem.RemoteBuffer{Addr: 0, RKey: 0, Len: len(buf)}, entSize)
		if err != nil {
			return false
		}
		var pushed, polled []byte
		var k byte
		for _, doPush := range ops {
			if doPush {
				res, err := s.Reserve()
				if errors.Is(err, ErrNoCredit) {
					continue
				}
				ent := make([]byte, entSize)
				if Encode(ent, res.Seq, []byte{k}) != nil {
					return false
				}
				copy(buf[res.Slot*entSize:], ent)
				pushed = append(pushed, k)
				k++
			} else {
				if e, ok := r.Poll(); ok {
					polled = append(polled, e.Payload[0])
					if s.AddCredits(r.TakeCredits()) != nil {
						return false
					}
				}
			}
			// Conservation: credits + in-flight == slots.
			inFlight := len(pushed) - len(polled) + r.PendingCredits()
			if s.Credits()+inFlight != slots {
				return false
			}
		}
		// Drain.
		for {
			e, ok := r.Poll()
			if !ok {
				break
			}
			polled = append(polled, e.Payload[0])
		}
		return bytes.Equal(pushed, polled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
