package ledger

import (
	"encoding/binary"
	"testing"
)

// FuzzLedgerEntryParse drives DecodeEntry with arbitrary slot bytes and
// sequence expectations. The decoder reads memory a remote peer
// RDMA-writes, so any input must either be rejected or yield a payload
// that stays inside the slot — a corrupt length word must clamp, never
// index out of the slot into a neighbor.
func FuzzLedgerEntryParse(f *testing.F) {
	slot := make([]byte, 64)
	binary.LittleEndian.PutUint32(slot[0:], 1)
	binary.LittleEndian.PutUint32(slot[4:], 9)
	copy(slot[HeaderSize:], "completion")
	f.Add(slot, uint32(1))
	f.Add(slot, uint32(2)) // stale: seq mismatch
	// Lying length word: claims more payload than the slot holds.
	liar := make([]byte, 32)
	binary.LittleEndian.PutUint32(liar[0:], 5)
	binary.LittleEndian.PutUint32(liar[4:], ^uint32(0))
	f.Add(liar, uint32(5))
	f.Add([]byte{}, uint32(0))
	f.Add(make([]byte, MinEntrySize-1), uint32(0))

	f.Fuzz(func(t *testing.T, slot []byte, want uint32) {
		payload, ok := DecodeEntry(slot, want)
		if !ok {
			if payload != nil {
				t.Fatal("rejected entry carried a payload")
			}
			return
		}
		if len(slot) < MinEntrySize {
			t.Fatalf("accepted undersized slot of %d bytes", len(slot))
		}
		if binary.LittleEndian.Uint32(slot) != want {
			t.Fatal("accepted entry with wrong sequence")
		}
		if len(payload) > len(slot)-HeaderSize {
			t.Fatalf("payload of %d bytes exceeds slot capacity %d", len(payload), len(slot)-HeaderSize)
		}
	})
}

// TestDecodeEntryClamp pins the defensive clamp: a hostile length word
// yields exactly the slot's payload capacity.
func TestDecodeEntryClamp(t *testing.T) {
	slot := make([]byte, 32)
	binary.LittleEndian.PutUint32(slot[0:], 3)
	binary.LittleEndian.PutUint32(slot[4:], 1<<30)
	payload, ok := DecodeEntry(slot, 3)
	if !ok {
		t.Fatal("valid sequence rejected")
	}
	if len(payload) != len(slot)-HeaderSize {
		t.Fatalf("clamped payload is %d bytes, want %d", len(payload), len(slot)-HeaderSize)
	}
}
