package stats

import (
	"strings"
	"testing"
)

func TestCounterSetOrderAndValues(t *testing.T) {
	c := NewCounterSet()
	c.Add("entry_pool_hits", 5)
	c.Set("ring_overflows", 2)
	c.Add("entry_pool_hits", 3)
	c.Add("batch_posts", 1)

	if v, ok := c.Get("entry_pool_hits"); !ok || v != 8 {
		t.Fatalf("entry_pool_hits = %d, %v; want 8, true", v, ok)
	}
	if v, ok := c.Get("ring_overflows"); !ok || v != 2 {
		t.Fatalf("ring_overflows = %d, %v; want 2, true", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) reported existence")
	}

	want := []string{"entry_pool_hits", "ring_overflows", "batch_posts"}
	got := c.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q (first-use order)", i, got[i], want[i])
		}
	}
}

func TestCounterSetRender(t *testing.T) {
	c := NewCounterSet()
	c.Set("hits", 12)
	c.Set("a_much_longer_name", 3)
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("Render() has %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "hits") || !strings.HasSuffix(lines[0], "12") {
		t.Fatalf("bad first line: %q", lines[0])
	}
	// Values align: both lines place the number at the same column.
	if strings.Index(lines[0], "12") != strings.Index(lines[1], "3") {
		t.Fatalf("values not aligned:\n%s", out)
	}
}
