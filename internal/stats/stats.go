// Package stats provides measurement primitives shared by the Photon
// benchmark harness: online moment accumulators, fixed-bucket latency
// histograms, and simple table/series printers.
//
// Everything here is allocation-light so that instrumenting a hot path
// (for example a per-message latency sample) does not perturb what is
// being measured.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample accumulates online summary statistics (count, mean, variance,
// min, max) using Welford's algorithm. The zero value is ready to use.
// Sample is not safe for concurrent use; wrap it or use SharedSample.
type Sample struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration observation in nanoseconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(float64(d.Nanoseconds())) }

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 if empty.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Sample) Max() float64 { return s.max }

// Var returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// Merge folds other into s, as if every observation of other had been
// added to s directly.
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Reset clears the accumulator.
func (s *Sample) Reset() { *s = Sample{} }

// String renders a compact one-line summary.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f max=%.2f",
		s.n, s.Mean(), s.Stddev(), s.min, s.max)
}

// SharedSample is a mutex-guarded Sample for concurrent producers.
type SharedSample struct {
	//photon:lock sample 10
	mu sync.Mutex
	s  Sample
}

// Add records one observation.
func (ss *SharedSample) Add(x float64) {
	ss.mu.Lock()
	ss.s.Add(x)
	ss.mu.Unlock()
}

// AddDuration records a duration in nanoseconds.
func (ss *SharedSample) AddDuration(d time.Duration) { ss.Add(float64(d.Nanoseconds())) }

// Snapshot returns a copy of the current accumulator state.
func (ss *SharedSample) Snapshot() Sample {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s
}

// Log-linear bucket layout (HDR-histogram style). Observations below
// linearCutoff nanoseconds get one bucket per nanosecond; above it,
// each power-of-two octave is split into subPerOctave linear
// sub-buckets, so relative bucket width never exceeds 1/subPerOctave
// (12.5%). At the 4 µs range typical of shm puts a bucket is 512 ns
// wide — sub-µs resolution — where the old pure-log2 scheme had 4 µs
// buckets.
const (
	linearCutoff = 32 // identity buckets for ns in [0, 32)
	subBits      = 3
	subPerOctave = 1 << subBits

	// NumBuckets covers int64 nanoseconds: 32 linear buckets plus 8
	// sub-buckets for each octave 2^5..2^62.
	NumBuckets = linearCutoff + (62-5+1)*subPerOctave
)

// Histogram is a log-linear-bucketed latency histogram covering
// 1ns..~292y with <=12.5% bucket width. The zero value is ready to
// use. Concurrent Add calls must be externally synchronized.
type Histogram struct {
	buckets [NumBuckets]int64
	sums    [NumBuckets]float64
	sample  Sample
}

// Bucket returns the bucket index an observation of ns nanoseconds
// falls into (non-positive observations land in bucket 0). Exported so
// external accumulators (the lock-free metrics registry) bucket exactly
// the way Histogram does.
func Bucket(ns int64) int {
	if ns <= 0 {
		return 0
	}
	if ns < linearCutoff {
		return int(ns)
	}
	o := bits.Len64(uint64(ns)) - 1 // octave, >= 5
	sub := int((uint64(ns) >> uint(o-subBits)) & (subPerOctave - 1))
	return linearCutoff + (o-5)*subPerOctave + sub
}

// BucketBounds returns the [lo, hi) nanosecond range of bucket b.
func BucketBounds(b int) (lo, hi int64) {
	if b <= 0 {
		return 0, 1
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	if b < linearCutoff {
		return int64(b), int64(b) + 1
	}
	o := 5 + (b-linearCutoff)/subPerOctave
	sub := (b - linearCutoff) % subPerOctave
	shift := uint(o - subBits)
	lo = int64(subPerOctave+sub) << shift
	width := int64(1) << shift
	if lo > math.MaxInt64-width {
		return lo, math.MaxInt64
	}
	return lo, lo + width
}

func bucketFor(ns int64) int { return Bucket(ns) }

// Add records a nanosecond observation.
func (h *Histogram) Add(ns int64) {
	b := bucketFor(ns)
	h.buckets[b]++
	h.sums[b] += float64(ns)
	h.sample.Add(float64(ns))
}

// AddDuration records a duration observation.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Nanoseconds()) }

// N returns the total number of observations.
func (h *Histogram) N() int64 { return h.sample.N() }

// BucketCount returns the observation count of bucket b
// (0 for out-of-range b), for exporters that re-render the
// distribution in another format.
func (h *Histogram) BucketCount(b int) int64 {
	if b < 0 || b >= len(h.buckets) {
		return 0
	}
	return h.buckets[b]
}

// BucketSum returns the total nanoseconds observed in bucket b, kept
// so cross-peer aggregation (metrics.Collector) can merge histograms
// with an exact mean rather than approximating from bucket bounds.
func (h *Histogram) BucketSum(b int) float64 {
	if b < 0 || b >= len(h.sums) {
		return 0
	}
	return h.sums[b]
}

// Mean returns the mean in nanoseconds.
func (h *Histogram) Mean() float64 { return h.sample.Mean() }

// Quantile returns an approximate q-quantile (0<=q<=1) in nanoseconds.
// Within the bucket containing the q-th observation the estimate
// interpolates linearly by the observation's rank between the bucket
// bounds — with log-linear buckets the bounds are at most 12.5% apart,
// so the interpolation error is bounded by the bucket width rather
// than a full octave (frac = 1 recovers the upper bound, so
// Quantile(1) still dominates the max sample).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.sample.N()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum int64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		if cum > target {
			lo, hi := BucketBounds(i)
			if hi == math.MaxInt64 {
				return math.MaxInt64
			}
			frac := float64(target-(cum-c)+1) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
	}
	return math.MaxInt64
}

// AccumulateBucket folds count pre-bucketed observations, totaling
// sumNS nanoseconds, into bucket b. It exists so externally-aggregated
// shards (the atomic metrics registry) can be merged into a Histogram
// for reporting: counts and the mean stay exact; variance and min/max
// are approximated from the bucket bounds.
func (h *Histogram) AccumulateBucket(b int, count int64, sumNS float64) {
	if count <= 0 {
		return
	}
	if b < 0 {
		b = 0
	}
	if b > NumBuckets-1 {
		b = NumBuckets - 1
	}
	h.buckets[b] += count
	h.sums[b] += sumNS
	lo, hi := BucketBounds(b)
	s := Sample{n: count, mean: sumNS / float64(count), min: float64(lo), max: float64(hi)}
	if s.mean < s.min || s.mean > s.max {
		// Caller-supplied sum disagrees with the bucket; trust the sum
		// for the mean but keep min/max consistent with it.
		s.min, s.max = s.mean, s.mean
	}
	h.sample.Merge(&s)
}

// String renders mean plus p50/p99 in microseconds.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.2fus p50<=%.2fus p99<=%.2fus",
		h.N(), h.Mean()/1e3, float64(h.Quantile(0.50))/1e3, float64(h.Quantile(0.99))/1e3)
}

// Series is a labelled sequence of (x, y...) rows used to print
// figure-style data: one x column and one y column per named line.
type Series struct {
	Title  string
	XLabel string
	Lines  []string // column names for each y value
	rows   []seriesRow
}

type seriesRow struct {
	x  float64
	ys []float64
}

// NewSeries creates a Series with the given title, x-axis label, and
// one named line per y column.
func NewSeries(title, xlabel string, lines ...string) *Series {
	return &Series{Title: title, XLabel: xlabel, Lines: lines}
}

// Row appends one data row; len(ys) must equal len(s.Lines).
func (s *Series) Row(x float64, ys ...float64) {
	if len(ys) != len(s.Lines) {
		panic(fmt.Sprintf("stats: Series %q expects %d y values, got %d", s.Title, len(s.Lines), len(ys)))
	}
	cp := make([]float64, len(ys))
	copy(cp, ys)
	s.rows = append(s.rows, seriesRow{x: x, ys: cp})
}

// NumRows reports how many rows have been added.
func (s *Series) NumRows() int { return len(s.rows) }

// Y returns the y value of the named line at row i.
func (s *Series) Y(i int, line string) (float64, bool) {
	for j, l := range s.Lines {
		if l == line {
			return s.rows[i].ys[j], true
		}
	}
	return 0, false
}

// X returns the x value at row i.
func (s *Series) X(i int) float64 { return s.rows[i].x }

// Render prints the series as an aligned text table, the form the
// harness uses to regenerate each paper figure.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Title)
	cols := append([]string{s.XLabel}, s.Lines...)
	widths := make([]int, len(cols))
	cells := make([][]string, len(s.rows))
	for i, r := range s.rows {
		row := make([]string, len(cols))
		row[0] = formatNum(r.x)
		for j, y := range r.ys {
			row[j+1] = formatNum(y)
		}
		cells[i] = row
	}
	for j, c := range cols {
		widths[j] = len(c)
		for i := range cells {
			if l := len(cells[i][j]); l > widths[j] {
				widths[j] = l
			}
		}
	}
	for j, c := range cols {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[j], c)
	}
	b.WriteByte('\n')
	for i := range cells {
		for j := range cols {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatNum(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3f", x)
}

// Table is a labelled grid of string cells used to print table-style
// experiment output.
type Table struct {
	Title string
	Cols  []string
	rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// Row appends one row of cells, formatting each value with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatNum(v)
		case float32:
			row[i] = formatNum(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the cell at row i, column named col.
func (t *Table) Cell(i int, col string) (string, bool) {
	for j, c := range t.Cols {
		if c == col {
			if j < len(t.rows[i]) {
				return t.rows[i][j], true
			}
			return "", false
		}
	}
	return "", false
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	widths := make([]int, len(t.Cols))
	for j, c := range t.Cols {
		widths[j] = len(c)
	}
	for _, r := range t.rows {
		for j, c := range r {
			if j < len(widths) && len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
	}
	for j, c := range t.Cols {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[j], c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for j, c := range r {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CounterSet is an ordered collection of named int64 counters, used to
// report engine internals (pool hits, ring overflows, batched posts)
// in a stable, diffable layout: names render in first-use order, not
// sorted, so related counters stay grouped.
type CounterSet struct {
	names []string
	idx   map[string]int
	vals  []int64
}

// NewCounterSet creates an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{idx: make(map[string]int)}
}

func (c *CounterSet) slot(name string) int {
	if i, ok := c.idx[name]; ok {
		return i
	}
	i := len(c.names)
	c.idx[name] = i
	c.names = append(c.names, name)
	c.vals = append(c.vals, 0)
	return i
}

// Set assigns a counter, creating it on first use.
func (c *CounterSet) Set(name string, v int64) { c.vals[c.slot(name)] = v }

// Add increments a counter, creating it on first use.
func (c *CounterSet) Add(name string, d int64) { c.vals[c.slot(name)] += d }

// Get returns a counter's value and whether it exists.
func (c *CounterSet) Get(name string) (int64, bool) {
	if i, ok := c.idx[name]; ok {
		return c.vals[i], true
	}
	return 0, false
}

// Names returns the counter names in first-use order.
func (c *CounterSet) Names() []string { return append([]string(nil), c.names...) }

// Render prints one aligned "name value" line per counter, in
// first-use order.
func (c *CounterSet) Render() string {
	w := 0
	for _, n := range c.names {
		if len(n) > w {
			w = len(n)
		}
	}
	var b strings.Builder
	for i, n := range c.names {
		fmt.Fprintf(&b, "%-*s  %d\n", w, n, c.vals[i])
	}
	return b.String()
}

// Rate converts an operation count over a duration into ops/sec.
func Rate(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// BandwidthMBps converts bytes moved over a duration into MiB/s.
func BandwidthMBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / (1 << 20)
}

// Sizes returns the power-of-two sweep [lo, hi] commonly used for
// message-size axes (lo and hi must be powers of two, lo <= hi).
func Sizes(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Percentile computes the p-th percentile (0..100) of xs by sorting a
// copy. Intended for offline reporting, not hot paths.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	idx := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return cp[lo]
	}
	frac := idx - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}
