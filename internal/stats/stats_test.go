package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatalf("zero value not empty: %v", s.String())
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got, want := s.Var(), 2.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, want)
	}
	if got, want := s.Stddev(), math.Sqrt(2.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", got, want)
	}
}

func TestSampleSingleObservationVariance(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.Var() != 0 {
		t.Fatalf("variance of single observation = %v, want 0", s.Var())
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(3 * time.Microsecond)
	if s.Mean() != 3000 {
		t.Fatalf("Mean = %v, want 3000", s.Mean())
	}
}

func TestSampleReset(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Reset()
	if s.N() != 0 {
		t.Fatalf("Reset did not clear sample")
	}
}

func TestSampleMergeMatchesDirect(t *testing.T) {
	f := func(a, b []float64) bool {
		var direct, left, right Sample
		for _, x := range a {
			direct.Add(x)
			left.Add(x)
		}
		for _, x := range b {
			direct.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if direct.N() != left.N() {
			return false
		}
		if direct.N() == 0 {
			return true
		}
		closef := func(x, y float64) bool {
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				return true // degenerate float inputs; skip
			}
			scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
			return math.Abs(x-y) < 1e-6*scale
		}
		return closef(direct.Mean(), left.Mean()) &&
			closef(direct.Var(), left.Var()) &&
			direct.Min() == left.Min() && direct.Max() == left.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMergeEmptyCases(t *testing.T) {
	var a, b Sample
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatal("empty merge changed sample")
	}
	b.Add(7)
	a.Merge(&b) // nonempty into empty
	if a.N() != 1 || a.Mean() != 7 {
		t.Fatalf("merge into empty: %v", a.String())
	}
	var c Sample
	a.Merge(&c) // empty into nonempty
	if a.N() != 1 {
		t.Fatal("merging empty changed count")
	}
}

func TestSharedSampleConcurrent(t *testing.T) {
	var ss SharedSample
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ss.Add(1)
			}
		}()
	}
	wg.Wait()
	snap := ss.Snapshot()
	if snap.N() != workers*per {
		t.Fatalf("N = %d, want %d", snap.N(), workers*per)
	}
	if snap.Mean() != 1 {
		t.Fatalf("Mean = %v, want 1", snap.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 bucket bound = %d, want within [256,1024]", p50)
	}
	p100 := h.Quantile(1.0)
	if p100 < 1000 {
		t.Fatalf("p100 = %d, want >= 1000", p100)
	}
	if h.Quantile(0) == 0 {
		t.Fatal("q0 of nonempty histogram must be positive")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.N() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNonPositive(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(-5)
	if h.N() != 2 {
		t.Fatalf("N = %d, want 2", h.N())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(int64(v) + 1)
		}
		if h.N() == 0 {
			return true
		}
		prev := int64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Fig 1: latency", "size", "photon", "baseline")
	s.Row(8, 1.5, 2.5)
	s.Row(16, 1.6, 2.6)
	out := s.Render()
	for _, want := range []string{"Fig 1: latency", "size", "photon", "baseline", "1.500", "2.600"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if s.NumRows() != 2 {
		t.Fatalf("NumRows = %d", s.NumRows())
	}
	if y, ok := s.Y(1, "baseline"); !ok || y != 2.6 {
		t.Fatalf("Y(1, baseline) = %v %v", y, ok)
	}
	if _, ok := s.Y(0, "nope"); ok {
		t.Fatal("Y of unknown line should report !ok")
	}
	if s.X(0) != 8 {
		t.Fatalf("X(0) = %v", s.X(0))
	}
}

func TestSeriesRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	s := NewSeries("t", "x", "a", "b")
	s.Row(1, 2) // only one y for two lines
}

func TestTableRenderAndCell(t *testing.T) {
	tb := NewTable("Table 1", "size", "winner", "ratio")
	tb.Row(512, "eager", 1.25)
	tb.Row(65536, "rendezvous", 0.8)
	out := tb.Render()
	for _, want := range []string{"Table 1", "eager", "rendezvous", "1.250"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table render missing %q:\n%s", want, out)
		}
	}
	if c, ok := tb.Cell(1, "winner"); !ok || c != "rendezvous" {
		t.Fatalf("Cell = %q %v", c, ok)
	}
	if _, ok := tb.Cell(0, "nope"); ok {
		t.Fatal("unknown column should report !ok")
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestRateAndBandwidth(t *testing.T) {
	if r := Rate(1000, time.Second); r != 1000 {
		t.Fatalf("Rate = %v", r)
	}
	if r := Rate(1000, 0); r != 0 {
		t.Fatalf("Rate with zero duration = %v", r)
	}
	if bw := BandwidthMBps(1<<20, time.Second); bw != 1 {
		t.Fatalf("BandwidthMBps = %v", bw)
	}
	if bw := BandwidthMBps(1, -time.Second); bw != 0 {
		t.Fatalf("negative duration bw = %v", bw)
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(8, 64)
	want := []int{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	if s := Sizes(64, 8); s != nil {
		t.Fatalf("inverted range should be empty, got %v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("interpolated p50 = %v, want 5", p)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.AddDuration(time.Microsecond)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestBucketSubMicrosecondResolution(t *testing.T) {
	// The log-linear scheme must keep relative bucket width <= 12.5%
	// across the latency ranges the backends actually produce: shm puts
	// around 4us sit in 512ns-wide buckets, not a 4us-wide octave.
	for _, ns := range []int64{900, 1500, 4200, 9700, 100000} {
		b := Bucket(ns)
		lo, hi := BucketBounds(b)
		if ns < lo || ns >= hi {
			t.Fatalf("Bucket(%d)=%d bounds [%d,%d) exclude the value", ns, b, lo, hi)
		}
		if width := hi - lo; float64(width) > float64(lo)/8+1 {
			t.Fatalf("bucket %d for %dns is %dns wide (lo=%d): > 12.5%%", b, ns, width, lo)
		}
	}
	if b := Bucket(4200); func() int64 { lo, hi := BucketBounds(b); return hi - lo }() != 512 {
		t.Fatalf("4.2us bucket should be 512ns wide")
	}
	// Identity region: 1ns resolution below the cutoff.
	for ns := int64(1); ns < linearCutoff; ns++ {
		if Bucket(ns) != int(ns) {
			t.Fatalf("Bucket(%d) = %d, want identity", ns, Bucket(ns))
		}
	}
	// Bucket indices are monotone and within range over the full domain.
	prev := -1
	for shift := uint(0); shift < 63; shift++ {
		for _, ns := range []int64{int64(1) << shift, int64(1)<<shift + int64(1)<<shift/2} {
			b := Bucket(ns)
			if b < prev || b >= NumBuckets {
				t.Fatalf("Bucket(%d) = %d out of order/range (prev %d)", ns, b, prev)
			}
			prev = b
		}
	}
}

func TestQuantileInterpolationRegression(t *testing.T) {
	// A tight cluster at 4.2us: every quantile estimate must land
	// within the 512ns-wide bucket, where the old log2 scheme could be
	// off by up to a full octave (4096 -> 8192).
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Add(4200)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < 4096 || v > 4608 {
			t.Fatalf("Quantile(%v) = %d, want within the [4096,4608) bucket", q, v)
		}
	}
	// Uniform 4000..5000ns: p50 must interpolate to ~4500 within one
	// bucket width (512ns), far tighter than the octave bound.
	var u Histogram
	for ns := int64(4000); ns < 5000; ns++ {
		u.Add(ns)
	}
	p50 := u.Quantile(0.5)
	if p50 < 4500-512 || p50 > 4500+512 {
		t.Fatalf("uniform p50 = %d, want 4500 +- 512", p50)
	}
}

func TestHistogramBucketSums(t *testing.T) {
	var h Histogram
	h.Add(4200)
	h.Add(4300)
	b := Bucket(4200)
	if Bucket(4300) != b {
		t.Fatalf("test assumes 4200 and 4300 share a bucket")
	}
	if got := h.BucketSum(b); got != 8500 {
		t.Fatalf("BucketSum = %v, want 8500", got)
	}
	var m Histogram
	m.AccumulateBucket(b, h.BucketCount(b), h.BucketSum(b))
	if m.N() != 2 || m.Mean() != 4250 {
		t.Fatalf("merged n=%d mean=%v, want 2/4250", m.N(), m.Mean())
	}
	if m.BucketSum(b) != 8500 {
		t.Fatalf("merged BucketSum = %v", m.BucketSum(b))
	}
}
