package apps_test

import (
	"math"
	"sync"
	"testing"
	"time"

	"photon/internal/apps"
	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/msg"
	"photon/internal/nicsim"
	"photon/internal/runtime"
)

func photonJob(t *testing.T, n int) []*core.Photon {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), core.Config{})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return phs
}

func msgJob(t *testing.T, n int) *msg.Job {
	t.Helper()
	j, err := msg.NewJob(n, fabric.Model{}, nicsim.Config{}, msg.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Close)
	return j
}

func localities(t *testing.T, n int, reg func(l *runtime.Locality)) []*runtime.Locality {
	t.Helper()
	phs := photonJob(t, n)
	locs := make([]*runtime.Locality, n)
	for r, ph := range phs {
		l := runtime.NewLocality(ph, runtime.Config{Timeout: 20 * time.Second})
		if reg != nil {
			reg(l)
		}
		l.Start()
		locs[r] = l
	}
	t.Cleanup(func() {
		for _, l := range locs {
			l.Shutdown()
		}
	})
	return locs
}

func TestGUPSPhotonChecksum(t *testing.T) {
	phs := photonJob(t, 3)
	cfg := apps.GUPSConfig{TableWordsPerRank: 128, UpdatesPerRank: 500, Seed: 7}
	res, err := apps.RunGUPSPhoton(phs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 1500 {
		t.Fatalf("updates = %d", res.Updates)
	}
	// Every update is a +1 fetch-add, so the table must sum to the
	// update count exactly: atomicity check.
	if res.Checksum != 1500 {
		t.Fatalf("checksum = %d, want 1500 (lost or duplicated updates)", res.Checksum)
	}
	if res.UpdatesPerSec <= 0 {
		t.Fatalf("rate = %v", res.UpdatesPerSec)
	}
}

func TestGUPSBaselineChecksum(t *testing.T) {
	j := msgJob(t, 3)
	cfg := apps.GUPSConfig{TableWordsPerRank: 128, UpdatesPerRank: 300, Seed: 7}
	res, err := apps.RunGUPSBaseline(j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksum != 900 {
		t.Fatalf("checksum = %d, want 900", res.Checksum)
	}
}

func TestGUPSValidation(t *testing.T) {
	phs := photonJob(t, 2)
	if _, err := apps.RunGUPSPhoton(phs, apps.GUPSConfig{TableWordsPerRank: 0}); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestStencilPhotonMatchesBaselineAndSerial(t *testing.T) {
	cfg := apps.StencilConfig{N: 32, Iterations: 10}
	serial, err := apps.RunStencilSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	phs := photonJob(t, 4)
	ph, err := apps.RunStencilPhoton(phs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := msgJob(t, 4)
	base, err := apps.RunStencilBaseline(j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.Checksum-serial.Checksum) > 1e-9*math.Abs(serial.Checksum) {
		t.Fatalf("photon checksum %v != serial %v", ph.Checksum, serial.Checksum)
	}
	if math.Abs(base.Checksum-serial.Checksum) > 1e-9*math.Abs(serial.Checksum) {
		t.Fatalf("baseline checksum %v != serial %v", base.Checksum, serial.Checksum)
	}
	if ph.CellUpdates != int64(cfg.N)*int64(cfg.N)*int64(cfg.Iterations) {
		t.Fatalf("cell updates = %d", ph.CellUpdates)
	}
}

func TestStencilOddIterations(t *testing.T) {
	cfg := apps.StencilConfig{N: 16, Iterations: 7}
	serial, _ := apps.RunStencilSerial(cfg)
	phs := photonJob(t, 2)
	ph, err := apps.RunStencilPhoton(phs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.Checksum-serial.Checksum) > 1e-9*math.Abs(serial.Checksum)+1e-12 {
		t.Fatalf("odd-iteration checksum %v != %v", ph.Checksum, serial.Checksum)
	}
}

func TestStencilSingleRank(t *testing.T) {
	cfg := apps.StencilConfig{N: 8, Iterations: 3}
	serial, _ := apps.RunStencilSerial(cfg)
	phs := photonJob(t, 1)
	ph, err := apps.RunStencilPhoton(phs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Checksum != serial.Checksum {
		t.Fatalf("single rank checksum %v != %v", ph.Checksum, serial.Checksum)
	}
}

func TestStencilValidation(t *testing.T) {
	phs := photonJob(t, 3)
	if _, err := apps.RunStencilPhoton(phs, apps.StencilConfig{N: 32, Iterations: 1}); err == nil {
		t.Fatal("N not divisible by ranks accepted")
	}
}

func TestBFSMatchesSerial(t *testing.T) {
	locs := localities(t, 4, func(l *runtime.Locality) {
		if err := apps.RegisterBFSActions(l); err != nil {
			t.Fatal(err)
		}
	})
	cfg := apps.BFSConfig{Vertices: 256, Degree: 4, Seed: 11, Root: 3}
	res, dist, err := apps.RunBFSParcels(locs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := apps.BFSSerial(apps.GenGraph(cfg.Vertices, cfg.Degree, cfg.Seed), cfg.Root)
	for v := range ref {
		if dist[v] != ref[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], ref[v])
		}
	}
	var wantVisited int64
	for _, d := range ref {
		if d >= 0 {
			wantVisited++
		}
	}
	if res.Visited != wantVisited {
		t.Fatalf("visited = %d, want %d", res.Visited, wantVisited)
	}
	if res.TEPS <= 0 || res.ParcelsSent == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestBFSIsolatedRoot(t *testing.T) {
	// Degree 0: only the root is reached.
	locs := localities(t, 2, func(l *runtime.Locality) {
		apps.RegisterBFSActions(l)
	})
	cfg := apps.BFSConfig{Vertices: 64, Degree: 0, Seed: 1, Root: 9}
	res, dist, err := apps.RunBFSParcels(locs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 1 || dist[9] != 0 {
		t.Fatalf("isolated root: %+v dist[9]=%d", res, dist[9])
	}
}

func TestBFSValidation(t *testing.T) {
	locs := localities(t, 3, func(l *runtime.Locality) { apps.RegisterBFSActions(l) })
	if _, _, err := apps.RunBFSParcels(locs, apps.BFSConfig{Vertices: 64, Degree: 2, Root: 1}); err == nil {
		t.Fatal("indivisible vertex count accepted")
	}
	if _, _, err := apps.RunBFSParcels(locs, apps.BFSConfig{Vertices: 63, Degree: 2, Root: 999}); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestGenGraphDeterministic(t *testing.T) {
	a := apps.GenGraph(100, 3, 42)
	b := apps.GenGraph(100, 3, 42)
	for v := range a {
		if len(a[v]) != len(b[v]) {
			t.Fatal("graph generation not deterministic")
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatal("graph generation not deterministic")
			}
		}
	}
}
