// Package apps contains the distributed workload kernels the
// evaluation uses: GUPS-style random remote updates, a 2-D Jacobi
// stencil with halo exchange, and level-synchronous BFS over parcels.
// Each kernel exists in a Photon (one-sided) variant and, where the
// reconstructed evaluation compares against two-sided messaging, an
// msg-baseline variant, so the benchmark harness can put both on the
// same axis.
//
// Kernels run all ranks of a simulated job inside one process (one
// goroutine per rank), which is how the whole reproduction runs
// multi-node experiments on a single machine.
package apps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	gort "runtime"
	"sync"
	"time"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/msg"
)

// GUPSResult reports one GUPS run.
type GUPSResult struct {
	Updates       int64
	Elapsed       time.Duration
	UpdatesPerSec float64
	// Checksum is the sum of all table words after the run; identical
	// across implementations for identical parameters.
	Checksum uint64
}

// GUPSConfig parameterizes a run.
type GUPSConfig struct {
	// TableWordsPerRank is each rank's share of the global table.
	TableWordsPerRank int
	// UpdatesPerRank is the number of remote fetch-adds per rank.
	UpdatesPerRank int
	// Window bounds outstanding updates per rank (default 64).
	Window int
	// Seed makes target sequences reproducible.
	Seed int64
}

func (c *GUPSConfig) setDefaults() error {
	if c.TableWordsPerRank <= 0 || c.UpdatesPerRank < 0 {
		return fmt.Errorf("apps: bad GUPS geometry %+v", *c)
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return nil
}

// RunGUPSPhoton runs GUPS using Photon remote atomics: every update is
// one NIC-level fetch-add, no target-side software involvement — the
// one-sided case the paper's design exists to enable.
func RunGUPSPhoton(phs []*core.Photon, cfg GUPSConfig) (GUPSResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return GUPSResult{}, err
	}
	n := len(phs)
	tables := make([][]byte, n)
	descs := make([][]mem.RemoteBuffer, n)
	lks := make([]sync.Locker, n)

	// Collective setup: register and exchange table descriptors.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tables[r] = make([]byte, cfg.TableWordsPerRank*8)
			rb, lk, err := phs[r].RegisterBuffer(tables[r])
			if err != nil {
				errs[r] = err
				return
			}
			lks[r] = lk
			descs[r], errs[r] = phs[r].ExchangeBuffers(rb)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return GUPSResult{}, err
		}
	}

	start := time.Now()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(r)))
			ph := phs[r]
			inflight := 0
			next := uint64(1)
			drain := func(target int) error {
				for inflight > target {
					// Batch: one progress round, then pop every
					// available completion before progressing again.
					ph.Progress()
					popped := false
					for {
						c, ok := ph.PopLocal()
						if !ok {
							break
						}
						if c.Err != nil {
							return c.Err
						}
						inflight--
						popped = true
					}
					if !popped {
						gort.Gosched()
					}
				}
				return nil
			}
			for i := 0; i < cfg.UpdatesPerRank; i++ {
				dst := rng.Intn(n)
				word := rng.Intn(cfg.TableWordsPerRank)
				for {
					err := ph.FetchAdd(dst, descs[r][dst], uint64(word*8), 1, next)
					if err == nil {
						break
					}
					if !errors.Is(err, core.ErrWouldBlock) {
						errs[r] = err
						return
					}
					ph.Progress()
				}
				next++
				inflight++
				if inflight >= cfg.Window {
					if err := drain(cfg.Window / 2); err != nil {
						errs[r] = err
						return
					}
				}
			}
			errs[r] = drain(0)
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return GUPSResult{}, err
		}
	}

	var sum uint64
	for r := 0; r < n; r++ {
		lks[r].Lock()
		for w := 0; w < cfg.TableWordsPerRank; w++ {
			sum += binary.LittleEndian.Uint64(tables[r][w*8:])
		}
		lks[r].Unlock()
	}
	total := int64(n * cfg.UpdatesPerRank)
	return GUPSResult{
		Updates:       total,
		Elapsed:       elapsed,
		UpdatesPerSec: float64(total) / elapsed.Seconds(),
		Checksum:      sum,
	}, nil
}

// Baseline GUPS message tags.
const (
	gupsTagUpdate = 1
	gupsTagAck    = 2
	gupsTagStop   = 3
)

// RunGUPSBaseline runs the same workload over the two-sided baseline:
// every update is a request message the owner must receive, match,
// apply, and acknowledge — the software path one-sided RMA removes.
func RunGUPSBaseline(job *msg.Job, cfg GUPSConfig) (GUPSResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return GUPSResult{}, err
	}
	eps := job.Endpoints()
	n := len(eps)
	tables := make([][]uint64, n)
	for r := range tables {
		tables[r] = make([]uint64, cfg.TableWordsPerRank)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2*n)
	start := time.Now()

	// Servers: apply updates, ack, exit after a stop from every rank.
	// Receives are posted per tag — an any-tag receive would steal the
	// acks addressed to this rank's own client goroutine.
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := eps[r]
			updCh, err := ep.Recv(-1, gupsTagUpdate, nil)
			if err != nil {
				errs[r] = err
				return
			}
			stopCh, err := ep.Recv(-1, gupsTagStop, nil)
			if err != nil {
				errs[r] = err
				return
			}
			stops := 0
			deadline := time.Now().Add(60 * time.Second)
			for stops < n {
				ep.Progress()
				select {
				case m, ok := <-updCh:
					if !ok {
						errs[r] = msg.ErrClosed
						return
					}
					word := binary.LittleEndian.Uint64(m.Data)
					tables[r][word]++
					ack := make([]byte, 8)
					binary.LittleEndian.PutUint64(ack, tables[r][word]-1)
					if _, err := ep.Send(m.Src, gupsTagAck, ack); err != nil {
						errs[r] = err
						return
					}
					if updCh, err = ep.Recv(-1, gupsTagUpdate, nil); err != nil {
						errs[r] = err
						return
					}
				case m, ok := <-stopCh:
					if !ok {
						errs[r] = msg.ErrClosed
						return
					}
					_ = m
					stops++
					if stops < n {
						if stopCh, err = ep.Recv(-1, gupsTagStop, nil); err != nil {
							errs[r] = err
							return
						}
					}
				default:
					gort.Gosched()
					if time.Now().After(deadline) {
						errs[r] = fmt.Errorf("server %d: %w", r, msg.ErrTimeout)
						return
					}
				}
			}
		}(r)
	}

	// Clients: issue updates with a window of outstanding acks.
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := eps[r]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(r)))
			inflight := 0
			drain := func(target int) error {
				for inflight > target {
					if _, err := ep.RecvBlocking(-1, gupsTagAck, nil, 30*time.Second); err != nil {
						return err
					}
					inflight--
				}
				return nil
			}
			for i := 0; i < cfg.UpdatesPerRank; i++ {
				dst := rng.Intn(n)
				word := rng.Intn(cfg.TableWordsPerRank)
				req := make([]byte, 8)
				binary.LittleEndian.PutUint64(req, uint64(word))
				if _, err := ep.Send(dst, gupsTagUpdate, req); err != nil {
					errs[n+r] = err
					return
				}
				inflight++
				if inflight >= cfg.Window {
					if err := drain(cfg.Window / 2); err != nil {
						errs[n+r] = err
						return
					}
				}
			}
			if err := drain(0); err != nil {
				errs[n+r] = err
				return
			}
			for dst := 0; dst < n; dst++ {
				if _, err := ep.Send(dst, gupsTagStop, nil); err != nil {
					errs[n+r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return GUPSResult{}, err
		}
	}
	var sum uint64
	for r := range tables {
		for _, w := range tables[r] {
			sum += w
		}
	}
	total := int64(n * cfg.UpdatesPerRank)
	return GUPSResult{
		Updates:       total,
		Elapsed:       elapsed,
		UpdatesPerSec: float64(total) / elapsed.Seconds(),
		Checksum:      sum,
	}, nil
}
