package apps

import (
	"encoding/binary"
	"fmt"
	"math"
	gort "runtime"
	"sync"
	"time"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/msg"
)

// StencilResult reports one Jacobi run.
type StencilResult struct {
	Iterations  int
	Elapsed     time.Duration
	PerIter     time.Duration
	Checksum    float64 // sum of interior cells after the run
	CellUpdates int64
}

// StencilConfig parameterizes a run. The grid is N x N cells
// partitioned into row bands, one band per rank; N must be divisible by
// the rank count.
type StencilConfig struct {
	N          int
	Iterations int
}

func (c *StencilConfig) validate(ranks int) error {
	if c.N <= 0 || c.Iterations < 0 {
		return fmt.Errorf("apps: bad stencil geometry %+v", *c)
	}
	if c.N%ranks != 0 {
		return fmt.Errorf("apps: N=%d not divisible by %d ranks", c.N, ranks)
	}
	if c.N/ranks < 1 {
		return fmt.Errorf("apps: band too thin")
	}
	return nil
}

// stencilBand holds one rank's rows plus two halo rows, stored as
// float64 bits in a registered byte buffer so neighbors can write halos
// one-sidedly. Layout: row 0 = upper halo, rows 1..H = owned, row H+1 =
// lower halo.
type stencilBand struct {
	n, h int
	buf  []byte // (h+2) * n float64s
}

func newBand(n, h int) *stencilBand { return &stencilBand{n: n, h: h, buf: make([]byte, (h+2)*n*8)} }

func (b *stencilBand) at(row, col int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.buf[(row*b.n+col)*8:]))
}

func (b *stencilBand) set(row, col int, v float64) {
	binary.LittleEndian.PutUint64(b.buf[(row*b.n+col)*8:], math.Float64bits(v))
}

func (b *stencilBand) rowBytes(row int) []byte {
	return b.buf[row*b.n*8 : (row+1)*b.n*8]
}

func (b *stencilBand) rowOffset(row int) uint64 { return uint64(row * b.n * 8) }

// initBand seeds deterministic initial conditions: hot left edge, a
// diagonal ripple inside.
func initBand(b *stencilBand, rank int) {
	h := b.h
	for r := 1; r <= h; r++ {
		globalRow := rank*h + (r - 1)
		for c := 0; c < b.n; c++ {
			v := 0.0
			if c == 0 {
				v = 100
			} else if (globalRow+c)%17 == 0 {
				v = 10
			}
			b.set(r, c, v)
		}
	}
}

// jacobiSweep computes one iteration from cur into next, treating halo
// rows and the left/right columns as fixed boundary.
func jacobiSweep(cur, next *stencilBand, topBoundary, bottomBoundary bool) {
	h, n := cur.h, cur.n
	for r := 1; r <= h; r++ {
		// Global boundary rows stay fixed.
		if (topBoundary && r == 1) || (bottomBoundary && r == h) {
			copy(next.rowBytes(r), cur.rowBytes(r))
			continue
		}
		for c := 0; c < n; c++ {
			if c == 0 || c == n-1 {
				next.set(r, c, cur.at(r, c))
				continue
			}
			v := 0.25 * (cur.at(r-1, c) + cur.at(r+1, c) + cur.at(r, c-1) + cur.at(r, c+1))
			next.set(r, c, v)
		}
	}
}

func (b *stencilBand) checksum() float64 {
	var s float64
	for r := 1; r <= b.h; r++ {
		for c := 0; c < b.n; c++ {
			s += b.at(r, c)
		}
	}
	return s
}

// RunStencilPhoton runs the Jacobi stencil with Photon one-sided halo
// exchange: each rank puts its boundary rows directly into its
// neighbors' halo rows, with the remote completion itself serving as
// the arrival notification — no receives, no matching, no barrier.
func RunStencilPhoton(phs []*core.Photon, cfg StencilConfig) (StencilResult, error) {
	n := len(phs)
	if err := cfg.validate(n); err != nil {
		return StencilResult{}, err
	}
	h := cfg.N / n
	cur := make([]*stencilBand, n)
	nxt := make([]*stencilBand, n)
	descsCur := make([][]mem.RemoteBuffer, n)
	descsNxt := make([][]mem.RemoteBuffer, n)
	lksCur := make([]sync.Locker, n)
	lksNxt := make([]sync.Locker, n)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cur[r] = newBand(cfg.N, h)
			nxt[r] = newBand(cfg.N, h)
			initBand(cur[r], r)
			rbC, lkC, err := phs[r].RegisterBuffer(cur[r].buf)
			if err != nil {
				errs[r] = err
				return
			}
			lksCur[r] = lkC
			rbN, lkN, err := phs[r].RegisterBuffer(nxt[r].buf)
			if err != nil {
				errs[r] = err
				return
			}
			lksNxt[r] = lkN
			if descsCur[r], err = phs[r].ExchangeBuffers(rbC); err != nil {
				errs[r] = err
				return
			}
			descsNxt[r], errs[r] = phs[r].ExchangeBuffers(rbN)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return StencilResult{}, err
		}
	}

	start := time.Now()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph := phs[r]
			a, b := cur[r], nxt[r]
			dA, dB := descsCur[r], descsNxt[r]
			lkA, lkB := lksCur[r], lksNxt[r]
			// Neighbors may run one iteration ahead (never more:
			// they block on our put), so their halo arrivals for
			// iteration i+1 can interleave with our wait for
			// iteration i. Completions are matched by the iteration
			// in the RID; early ones are banked for the next round.
			early := 0
			for iter := 0; iter < cfg.Iterations; iter++ {
				// Exchange halos of the current band: my first owned
				// row -> upper neighbor's lower halo; my last owned
				// row -> lower neighbor's upper halo.
				expect := 0
				ridBase := uint64(iter)<<16 | 1
				if r > 0 {
					dst := dA[r-1]
					err := ph.PutBlocking(r-1, a.rowBytes(1), dst, a.rowOffset(h+1), ridBase, ridBase|0x100)
					if err != nil {
						errs[r] = err
						return
					}
					expect++
				}
				if r < n-1 {
					dst := dA[r+1]
					err := ph.PutBlocking(r+1, a.rowBytes(h), dst, a.rowOffset(0), ridBase|1, ridBase|0x101)
					if err != nil {
						errs[r] = err
						return
					}
					expect++
				}
				// Wait for my neighbors' rows to land (remote
				// completions) and my own puts to retire (local).
				gotRemote, gotLocal := early, 0
				early = 0
				for gotRemote < expect || gotLocal < expect {
					c, ok := ph.Probe(core.ProbeAny)
					if !ok {
						gort.Gosched()
						continue
					}
					if c.Err != nil {
						errs[r] = c.Err
						return
					}
					if c.Local {
						gotLocal++
						continue
					}
					switch int(c.RID >> 16) {
					case iter:
						gotRemote++
					case iter + 1:
						early++
					default:
						errs[r] = fmt.Errorf("apps: stencil completion from iteration %d during %d", c.RID>>16, iter)
						return
					}
				}
				// Compute under the registration lock of the band
				// being read: neighbors write its halos one-sidedly.
				lkA.Lock()
				jacobiSweep(a, b, r == 0, r == n-1)
				lkA.Unlock()
				a, b = b, a
				dA, dB = dB, dA
				lkA, lkB = lkB, lkA
			}
			_, _ = dB, lkB
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return StencilResult{}, err
		}
	}

	final, finalLks := cur, lksCur
	if cfg.Iterations%2 == 1 {
		final, finalLks = nxt, lksNxt
	}
	var sum float64
	for r := 0; r < n; r++ {
		finalLks[r].Lock()
		sum += final[r].checksum()
		finalLks[r].Unlock()
	}
	iters := cfg.Iterations
	per := time.Duration(0)
	if iters > 0 {
		per = elapsed / time.Duration(iters)
	}
	return StencilResult{
		Iterations:  iters,
		Elapsed:     elapsed,
		PerIter:     per,
		Checksum:    sum,
		CellUpdates: int64(iters) * int64(cfg.N) * int64(cfg.N),
	}, nil
}

// Stencil baseline tags: tag = iter<<2 | dir (dir 0: from above, 1:
// from below).
func stencilTag(iter, dir int) uint64 { return uint64(iter)<<2 | uint64(dir) }

// RunStencilBaseline is the same computation with two-sided halo
// exchange: boundary rows travel as matched messages into the halo
// rows.
func RunStencilBaseline(job *msg.Job, cfg StencilConfig) (StencilResult, error) {
	eps := job.Endpoints()
	n := len(eps)
	if err := cfg.validate(n); err != nil {
		return StencilResult{}, err
	}
	h := cfg.N / n
	cur := make([]*stencilBand, n)
	nxt := make([]*stencilBand, n)
	for r := 0; r < n; r++ {
		cur[r] = newBand(cfg.N, h)
		nxt[r] = newBand(cfg.N, h)
		initBand(cur[r], r)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	start := time.Now()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := eps[r]
			a, b := cur[r], nxt[r]
			for iter := 0; iter < cfg.Iterations; iter++ {
				var hs []*msg.SendHandle
				if r > 0 {
					hdl, err := ep.Send(r-1, stencilTag(iter, 1), a.rowBytes(1))
					if err != nil {
						errs[r] = err
						return
					}
					hs = append(hs, hdl)
				}
				if r < n-1 {
					hdl, err := ep.Send(r+1, stencilTag(iter, 0), a.rowBytes(h))
					if err != nil {
						errs[r] = err
						return
					}
					hs = append(hs, hdl)
				}
				if r > 0 {
					m, err := ep.RecvBlocking(r-1, stencilTag(iter, 0), a.rowBytes(0), 30*time.Second)
					if err != nil {
						errs[r] = err
						return
					}
					_ = m
				}
				if r < n-1 {
					if _, err := ep.RecvBlocking(r+1, stencilTag(iter, 1), a.rowBytes(h+1), 30*time.Second); err != nil {
						errs[r] = err
						return
					}
				}
				for _, hdl := range hs {
					if err := hdl.Wait(30 * time.Second); err != nil {
						errs[r] = err
						return
					}
				}
				jacobiSweep(a, b, r == 0, r == n-1)
				a, b = b, a
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return StencilResult{}, err
		}
	}
	final := cur
	if cfg.Iterations%2 == 1 {
		final = nxt
	}
	var sum float64
	for r := 0; r < n; r++ {
		sum += final[r].checksum()
	}
	per := time.Duration(0)
	if cfg.Iterations > 0 {
		per = elapsed / time.Duration(cfg.Iterations)
	}
	return StencilResult{
		Iterations:  cfg.Iterations,
		Elapsed:     elapsed,
		PerIter:     per,
		Checksum:    sum,
		CellUpdates: int64(cfg.Iterations) * int64(cfg.N) * int64(cfg.N),
	}, nil
}

// RunStencilSerial computes the same stencil on one goroutine (reference
// for correctness checks).
func RunStencilSerial(cfg StencilConfig) (StencilResult, error) {
	if err := cfg.validate(1); err != nil {
		return StencilResult{}, err
	}
	cur := newBand(cfg.N, cfg.N)
	nxt := newBand(cfg.N, cfg.N)
	initBand(cur, 0)
	start := time.Now()
	for iter := 0; iter < cfg.Iterations; iter++ {
		jacobiSweep(cur, nxt, true, true)
		cur, nxt = nxt, cur
	}
	elapsed := time.Since(start)
	return StencilResult{
		Iterations:  cfg.Iterations,
		Elapsed:     elapsed,
		Checksum:    cur.checksum(),
		CellUpdates: int64(cfg.Iterations) * int64(cfg.N) * int64(cfg.N),
	}, nil
}
