package apps

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"photon/internal/runtime"
)

// BFSResult reports one breadth-first-search run.
type BFSResult struct {
	Vertices    int
	Edges       int64
	Visited     int64
	Depth       int
	Elapsed     time.Duration
	TEPS        float64 // traversed edges per second
	ParcelsSent int64
}

// BFSConfig parameterizes the random graph and the traversal.
type BFSConfig struct {
	// Vertices is the global vertex count (must divide evenly by the
	// rank count).
	Vertices int
	// Degree is the average out-degree of the random graph.
	Degree int
	// Seed fixes the graph.
	Seed int64
	// Root is the starting vertex.
	Root int
	// Batch caps vertices per relaxation parcel (default 64).
	Batch int
}

func (c *BFSConfig) setDefaults(ranks int) error {
	if c.Vertices <= 0 || c.Degree < 0 {
		return fmt.Errorf("apps: bad BFS geometry %+v", *c)
	}
	if c.Vertices%ranks != 0 {
		return fmt.Errorf("apps: %d vertices not divisible by %d ranks", c.Vertices, ranks)
	}
	if c.Root < 0 || c.Root >= c.Vertices {
		return fmt.Errorf("apps: root %d out of range", c.Root)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	return nil
}

// GenGraph deterministically generates the adjacency lists of the whole
// random graph (Erdos-Renyi-ish with fixed per-vertex degree). Both the
// distributed run and the serial reference call it, so they agree
// exactly.
func GenGraph(vertices, degree int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, vertices)
	for v := range adj {
		adj[v] = make([]int32, 0, degree)
		for d := 0; d < degree; d++ {
			w := int32(rng.Intn(vertices))
			adj[v] = append(adj[v], w)
		}
	}
	return adj
}

// BFSSerial computes reference distances.
func BFSSerial(adj [][]int32, root int) []int32 {
	dist := make([]int32, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	frontier := []int32{int32(root)}
	level := int32(0)
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, w := range adj[v] {
				if dist[w] == -1 {
					dist[w] = level + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
		level++
	}
	return dist
}

// bfsRankState is one rank's BFS state, mutated by the visit action.
type bfsRankState struct {
	//photon:lock bfsrank 10
	mu      sync.Mutex
	dist    []int32 // local vertices
	next    []int32 // next frontier (global IDs)
	perRank int
	rank    int
}

// RunBFSParcels runs level-synchronous BFS as a parcel-driven
// computation on the HPX-lite runtime: frontier expansion sends visit
// parcels to vertex owners; level boundaries are runtime barriers plus
// a frontier-count reduction via Call futures. Every rank's locality
// must already be started. Returns each rank's result (identical
// aggregates) plus the distance vector assembled at rank 0.
func RunBFSParcels(locs []*runtime.Locality, cfg BFSConfig) (BFSResult, []int32, error) {
	n := len(locs)
	if err := cfg.setDefaults(n); err != nil {
		return BFSResult{}, nil, err
	}
	perRank := cfg.Vertices / n
	full := GenGraph(cfg.Vertices, cfg.Degree, cfg.Seed)
	var edges int64
	for _, a := range full {
		edges += int64(len(a))
	}

	states := make([]*bfsRankState, n)
	for r := 0; r < n; r++ {
		st := &bfsRankState{dist: make([]int32, perRank), perRank: perRank, rank: r}
		for i := range st.dist {
			st.dist[i] = -1
		}
		states[r] = st
	}

	// The visit action: payload = [level4][count4][vertexIDs...].
	const actVisit = "bfs_visit"
	for r, l := range locs {
		st := states[r]
		if _, err := l.RegisterAction(actVisit, func(ctx *runtime.Context) ([]byte, error) {
			p := ctx.Payload
			if len(p) < 8 {
				return nil, fmt.Errorf("short visit parcel")
			}
			level := int32(binary.LittleEndian.Uint32(p[0:]))
			count := int(binary.LittleEndian.Uint32(p[4:]))
			st.mu.Lock()
			for i := 0; i < count; i++ {
				v := int32(binary.LittleEndian.Uint32(p[8+i*4:]))
				lv := int(v) - st.rank*st.perRank
				if st.dist[lv] == -1 {
					st.dist[lv] = level
					st.next = append(st.next, v)
				}
			}
			st.mu.Unlock()
			return nil, nil
		}); err != nil {
			return BFSResult{}, nil, err
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			l := locs[r]
			st := states[r]
			visitID := runtime.ActionIDFor(actVisit)

			// Seed the root.
			var frontier []int32
			if cfg.Root/perRank == r {
				st.dist[cfg.Root%perRank] = 0
				frontier = []int32{int32(cfg.Root)}
			}
			level := int32(0)
			for {
				// Expand: bucket neighbors by owner, flush batches
				// with Call so we know they executed before the
				// barrier.
				buckets := make([][]int32, n)
				var futs []*runtime.Future
				flush := func(owner int) error {
					b := buckets[owner]
					if len(b) == 0 {
						return nil
					}
					body := make([]byte, 8+4*len(b))
					binary.LittleEndian.PutUint32(body[0:], uint32(level+1))
					binary.LittleEndian.PutUint32(body[4:], uint32(len(b)))
					for i, v := range b {
						binary.LittleEndian.PutUint32(body[8+i*4:], uint32(v))
					}
					f, err := l.Call(owner, visitID, body)
					if err != nil {
						return err
					}
					futs = append(futs, f)
					buckets[owner] = buckets[owner][:0]
					return nil
				}
				for _, v := range frontier {
					for _, w := range full[v] {
						owner := int(w) / perRank
						buckets[owner] = append(buckets[owner], w)
						if len(buckets[owner]) >= cfg.Batch {
							if err := flush(owner); err != nil {
								errs[r] = err
								return
							}
						}
					}
				}
				for owner := range buckets {
					if err := flush(owner); err != nil {
						errs[r] = err
						return
					}
				}
				for _, f := range futs {
					if _, err := f.Wait(30 * time.Second); err != nil {
						errs[r] = err
						return
					}
				}
				if err := l.Barrier(); err != nil {
					errs[r] = err
					return
				}
				// Collect the next local frontier and agree on the
				// global size.
				st.mu.Lock()
				frontier = st.next
				st.next = nil
				st.mu.Unlock()
				total, err := allreduceCount(l, len(frontier))
				if err != nil {
					errs[r] = err
					return
				}
				if total == 0 {
					return
				}
				level++
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return BFSResult{}, nil, err
		}
	}

	// Assemble distances and aggregates.
	dist := make([]int32, cfg.Vertices)
	var visited int64
	depth := int32(0)
	for r := 0; r < n; r++ {
		states[r].mu.Lock()
		copy(dist[r*perRank:], states[r].dist)
		states[r].mu.Unlock()
	}
	var traversed int64
	for v, d := range dist {
		if d >= 0 {
			visited++
			traversed += int64(len(full[v]))
			if d > depth {
				depth = d
			}
		}
	}
	var sent int64
	for _, l := range locs {
		sent += l.Counters().ParcelsSent
	}
	teps := 0.0
	if elapsed > 0 {
		teps = float64(traversed) / elapsed.Seconds()
	}
	return BFSResult{
		Vertices:    cfg.Vertices,
		Edges:       edges,
		Visited:     visited,
		Depth:       int(depth),
		Elapsed:     elapsed,
		TEPS:        teps,
		ParcelsSent: sent,
	}, dist, nil
}

// allreduceCount sums a per-rank count across the job using the
// runtime's call machinery (a tiny tree would be overkill at these rank
// counts; rank 0 accumulates and broadcasts through the barrier-style
// blocking handler registered lazily below).
func allreduceCount(l *runtime.Locality, count int) (int, error) {
	body := make([]byte, 8)
	binary.LittleEndian.PutUint64(body, uint64(count))
	f, err := l.Call(0, runtime.ActionIDFor(actSum), body)
	if err != nil {
		return 0, err
	}
	out, err := f.Wait(30 * time.Second)
	if err != nil {
		return 0, err
	}
	if len(out) < 8 {
		return 0, fmt.Errorf("apps: short sum reply")
	}
	return int(binary.LittleEndian.Uint64(out)), nil
}

const actSum = "bfs_sum"

// sumState implements a reusable blocking sum-reduction at rank 0.
// Generations are implicit in arrival order: every rank calls exactly
// once per level and cannot start the next level until the current sum
// resolves, so arrivals pair up by count.
type sumState struct {
	//photon:lock bfssum 20
	mu       sync.Mutex
	arrivals int
	cur      *sumGen
}

type sumGen struct {
	total uint64
	done  chan struct{}
}

// RegisterBFSActions installs the reduction action; RunBFSParcels
// requires it to have been registered on every locality before Start.
func RegisterBFSActions(l *runtime.Locality) error {
	st := &sumState{}
	size := l.Size()
	_, err := l.RegisterAction(actSum, func(ctx *runtime.Context) ([]byte, error) {
		v := binary.LittleEndian.Uint64(ctx.Payload)
		st.mu.Lock()
		if st.cur == nil {
			st.cur = &sumGen{done: make(chan struct{})}
		}
		g := st.cur
		g.total += v
		st.arrivals++
		if st.arrivals == size {
			st.arrivals = 0
			st.cur = nil
			close(g.done)
		}
		st.mu.Unlock()
		<-g.done
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, g.total)
		return out, nil
	})
	return err
}
