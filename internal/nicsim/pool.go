package nicsim

import "sync"

// Wire-frame and WQE recycling. The simulated NIC used to allocate one
// frame buffer per message on the send side and one wqe per work
// request; at collective scale (hundreds of ranks, log-depth schedules)
// that garbage dominated simulation time. Frames have a strict
// lifecycle — encoded at post, owned by the fabric in flight, and fully
// consumed (payloads copied into posted buffers, MRs, or result
// destinations) by the time onFrame returns — so both sides of the
// exchange can draw from pools.

// frameClasses spans 32 B (class 0) to 1 MiB; larger frames (huge
// rendezvous reads) fall back to the garbage collector.
const (
	frameMinShift  = 5
	frameClasses   = 16
	frameMaxRetain = 256 // per class; bounds idle pool memory
)

// framePool is one size class: a mutex-guarded LIFO freelist (sharded
// pools are overkill here — the lock is held for an append/pop and the
// NICs of a cluster already serialize on the fabric links).
type framePool struct {
	//photon:lock framepool 60
	mu   sync.Mutex
	free [][]byte
}

var framePools [frameClasses]framePool

// frameClassFor returns the size class whose capacity holds n bytes,
// or -1 when n exceeds the largest pooled class.
func frameClassFor(n int) int {
	c := 0
	for n > 1<<(frameMinShift+c) {
		c++
		if c >= frameClasses {
			return -1
		}
	}
	return c
}

// frameGet returns a frame buffer of length n, recycled when a pooled
// class fits.
func frameGet(n int) []byte {
	c := frameClassFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	p := &framePools[c]
	p.mu.Lock()
	if len(p.free) > 0 {
		b := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<(frameMinShift+c))
}

// framePut recycles a frame obtained from frameGet. Safe on any buffer:
// capacities that do not match a pooled class exactly are dropped.
func framePut(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := frameClassFor(cap(b))
	if c < 0 || cap(b) != 1<<(frameMinShift+c) {
		return
	}
	p := &framePools[c]
	p.mu.Lock()
	if len(p.free) < frameMaxRetain {
		p.free = append(p.free, b[:cap(b)])
	}
	p.mu.Unlock()
}

// wqePool recycles send work-queue entries: every wqe path terminates
// in completeSend exactly once (transmit failure, flush, or response
// match), which returns it here.
var wqePool = sync.Pool{New: func() any { return new(wqe) }}

func wqeGet() *wqe {
	return wqePool.Get().(*wqe)
}

func wqePut(w *wqe) {
	*w = wqe{}
	wqePool.Put(w)
}
