package nicsim

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"photon/internal/fabric"
)

// pair wires two NICs on a fresh fabric and returns a connected QP pair
// plus their CQs.
type pair struct {
	fab        *fabric.Fabric
	nicA, nicB *NIC
	qpA, qpB   *QP
	cqA, cqB   *CQ // send CQs
	rcqA, rcqB *CQ // recv CQs
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	fab := fabric.New(2, fabric.Model{})
	t.Cleanup(fab.Close)
	nicA, err := New(fab, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nicB, err := New(fab, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nicA.Close)
	t.Cleanup(nicB.Close)
	cqA, rcqA := NewCQ(256), NewCQ(256)
	cqB, rcqB := NewCQ(256), NewCQ(256)
	qpA, err := nicA.CreateQP(cqA, rcqA)
	if err != nil {
		t.Fatal(err)
	}
	qpB, err := nicB.CreateQP(cqB, rcqB)
	if err != nil {
		t.Fatal(err)
	}
	if err := qpA.Connect(1, qpB.QPN()); err != nil {
		t.Fatal(err)
	}
	if err := qpB.Connect(0, qpA.QPN()); err != nil {
		t.Fatal(err)
	}
	return &pair{fab, nicA, nicB, qpA, qpB, cqA, cqB, rcqA, rcqB}
}

// waitCQE polls a CQ until one entry arrives or the test times out.
func waitCQE(t *testing.T, cq *CQ) CQE {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := cq.Poll(1); len(got) == 1 {
			return got[0]
		}
		time.Sleep(20 * time.Microsecond)
	}
	t.Fatal("timed out waiting for CQE")
	return CQE{}
}

func TestSendRecv(t *testing.T) {
	p := newPair(t, Config{})
	rbuf := make([]byte, 64)
	if err := p.qpB.PostRecv(RecvWR{WRID: 7, Buf: rbuf}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("photon rma middleware")
	if err := p.qpA.PostSend(SendWR{WRID: 1, Op: OpSend, Local: msg, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	rc := waitCQE(t, p.rcqB)
	if rc.WRID != 7 || rc.Status != StatusOK || rc.Op != OpRecv {
		t.Fatalf("recv CQE = %+v", rc)
	}
	if rc.ByteLen != len(msg) || !bytes.Equal(rbuf[:rc.ByteLen], msg) {
		t.Fatalf("payload mismatch: %q", rbuf[:rc.ByteLen])
	}
	if rc.SrcNode != 0 || rc.SrcQPN != p.qpA.QPN() {
		t.Fatalf("source fields wrong: %+v", rc)
	}
	sc := waitCQE(t, p.cqA)
	if sc.WRID != 1 || sc.Status != StatusOK || sc.Op != OpSend {
		t.Fatalf("send CQE = %+v", sc)
	}
}

func TestSendWithImmediate(t *testing.T) {
	p := newPair(t, Config{})
	p.qpB.PostRecv(RecvWR{WRID: 1, Buf: make([]byte, 8)})
	p.qpA.PostSend(SendWR{WRID: 2, Op: OpSend, Local: []byte{1}, Imm: 0xdeadbeef, HasImm: true, Signaled: true})
	rc := waitCQE(t, p.rcqB)
	if !rc.HasImm || rc.Imm != 0xdeadbeef {
		t.Fatalf("immediate not delivered: %+v", rc)
	}
}

func TestSendBeforeRecvIsQueued(t *testing.T) {
	p := newPair(t, Config{})
	msg := []byte("early bird")
	if err := p.qpA.PostSend(SendWR{WRID: 1, Op: OpSend, Local: msg, Signaled: true}); err != nil {
		t.Fatal(err)
	}
	// Give the frame time to arrive with no receive posted.
	time.Sleep(5 * time.Millisecond)
	rbuf := make([]byte, 64)
	if err := p.qpB.PostRecv(RecvWR{WRID: 9, Buf: rbuf}); err != nil {
		t.Fatal(err)
	}
	rc := waitCQE(t, p.rcqB)
	if rc.WRID != 9 || !bytes.Equal(rbuf[:rc.ByteLen], msg) {
		t.Fatalf("queued send not delivered: %+v %q", rc, rbuf[:rc.ByteLen])
	}
	waitCQE(t, p.cqA) // sender completes only after delivery+ack
}

func TestSendTooLargeForRecvBuffer(t *testing.T) {
	p := newPair(t, Config{})
	p.qpB.PostRecv(RecvWR{WRID: 1, Buf: make([]byte, 4)})
	p.qpA.PostSend(SendWR{WRID: 2, Op: OpSend, Local: make([]byte, 100), Signaled: true})
	rc := waitCQE(t, p.rcqB)
	if rc.Status != StatusLengthError {
		t.Fatalf("recv status = %v, want length-error", rc.Status)
	}
	sc := waitCQE(t, p.cqA)
	if sc.Status == StatusOK {
		t.Fatalf("send status = %v, want error", sc.Status)
	}
	if !p.qpA.Errored() {
		t.Fatal("sender QP should be in error state after NAK")
	}
}

func TestRDMAWrite(t *testing.T) {
	p := newPair(t, Config{})
	target := make([]byte, 128)
	mr, err := p.nicB.RegisterMemory(target, AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("one-sided write")
	err = p.qpA.PostSend(SendWR{
		WRID: 3, Op: OpRDMAWrite, Local: payload,
		RemoteAddr: mr.Base() + 16, RKey: mr.RKey(), Signaled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := waitCQE(t, p.cqA)
	if sc.Status != StatusOK {
		t.Fatalf("write CQE = %+v", sc)
	}
	if !bytes.Equal(target[16:16+len(payload)], payload) {
		t.Fatalf("target memory = %q", target[16:16+len(payload)])
	}
	// No receive-side completion for plain RDMA WRITE.
	if p.rcqB.Len() != 0 {
		t.Fatal("plain RDMA write must not consume a receive")
	}
}

func TestRDMAWriteWithImm(t *testing.T) {
	p := newPair(t, Config{})
	target := make([]byte, 64)
	mr, _ := p.nicB.RegisterMemory(target, AccessAll)
	p.qpB.PostRecv(RecvWR{WRID: 11})
	payload := []byte{9, 9, 9}
	p.qpA.PostSend(SendWR{
		WRID: 4, Op: OpRDMAWriteImm, Local: payload,
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Imm: 42, HasImm: true, Signaled: true,
	})
	rc := waitCQE(t, p.rcqB)
	if rc.WRID != 11 || rc.Imm != 42 || !rc.HasImm {
		t.Fatalf("imm notification = %+v", rc)
	}
	if rc.ByteLen != len(payload) {
		t.Fatalf("ByteLen = %d, want %d", rc.ByteLen, len(payload))
	}
	if !bytes.Equal(target[:3], payload) {
		t.Fatalf("payload not placed: %v", target[:6])
	}
	waitCQE(t, p.cqA)
}

func TestRDMARead(t *testing.T) {
	p := newPair(t, Config{})
	src := []byte("remote data to fetch........")
	mr, _ := p.nicB.RegisterMemory(src, AccessAll)
	dst := make([]byte, 11)
	p.qpA.PostSend(SendWR{
		WRID: 5, Op: OpRDMARead, Local: dst,
		RemoteAddr: mr.Base() + 7, RKey: mr.RKey(), Signaled: true,
	})
	sc := waitCQE(t, p.cqA)
	if sc.Status != StatusOK {
		t.Fatalf("read CQE = %+v", sc)
	}
	if !bytes.Equal(dst, src[7:18]) {
		t.Fatalf("read returned %q, want %q", dst, src[7:18])
	}
}

func TestAtomicFetchAdd(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 64)
	binary.LittleEndian.PutUint64(mem[8:], 100)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	res := make([]byte, 8)
	p.qpA.PostSend(SendWR{
		WRID: 6, Op: OpAtomicFetchAdd, Local: res,
		RemoteAddr: mr.Base() + 8, RKey: mr.RKey(), Add: 5, Signaled: true,
	})
	sc := waitCQE(t, p.cqA)
	if sc.Status != StatusOK {
		t.Fatalf("fadd CQE = %+v", sc)
	}
	if got := binary.LittleEndian.Uint64(res); got != 100 {
		t.Fatalf("fetch-add returned %d, want 100", got)
	}
	if got := binary.LittleEndian.Uint64(mem[8:]); got != 105 {
		t.Fatalf("memory = %d, want 105", got)
	}
}

func TestAtomicCompSwap(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 16)
	binary.LittleEndian.PutUint64(mem, 7)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	res := make([]byte, 8)
	// Successful CAS 7 -> 9.
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpAtomicCompSwap, Local: res,
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Compare: 7, Swap: 9, Signaled: true})
	waitCQE(t, p.cqA)
	if got := binary.LittleEndian.Uint64(mem); got != 9 {
		t.Fatalf("CAS did not swap: %d", got)
	}
	if got := binary.LittleEndian.Uint64(res); got != 7 {
		t.Fatalf("CAS returned %d, want 7", got)
	}
	// Failed CAS (compare mismatch) leaves memory alone, returns current.
	p.qpA.PostSend(SendWR{WRID: 2, Op: OpAtomicCompSwap, Local: res,
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Compare: 7, Swap: 1, Signaled: true})
	waitCQE(t, p.cqA)
	if got := binary.LittleEndian.Uint64(mem); got != 9 {
		t.Fatalf("failed CAS mutated memory: %d", got)
	}
	if got := binary.LittleEndian.Uint64(res); got != 9 {
		t.Fatalf("failed CAS returned %d, want 9", got)
	}
}

func TestAtomicAlignmentRejected(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 16)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	err := p.qpA.PostSend(SendWR{WRID: 1, Op: OpAtomicFetchAdd, Local: make([]byte, 8),
		RemoteAddr: mr.Base() + 3, RKey: mr.RKey(), Add: 1, Signaled: true})
	if err == nil {
		t.Fatal("misaligned atomic accepted at post time")
	}
}

func TestBadRKeyNAKs(t *testing.T) {
	p := newPair(t, Config{})
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpRDMAWrite, Local: []byte{1},
		RemoteAddr: 0x1000, RKey: 9999, Signaled: true})
	sc := waitCQE(t, p.cqA)
	if sc.Status != StatusRemoteAccessError {
		t.Fatalf("status = %v, want remote-access-error", sc.Status)
	}
	if !p.qpA.Errored() {
		t.Fatal("QP should be errored after remote access error")
	}
	// Posting after error fails.
	if err := p.qpA.PostSend(SendWR{WRID: 2, Op: OpSend, Local: []byte{1}}); err != ErrQPState {
		t.Fatalf("post after error: %v", err)
	}
}

func TestOutOfBoundsWriteNAKs(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 32)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpRDMAWrite, Local: make([]byte, 64),
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: true})
	sc := waitCQE(t, p.cqA)
	if sc.Status != StatusRemoteAccessError {
		t.Fatalf("status = %v", sc.Status)
	}
	if c := p.nicB.Counters(); c.ProtectionErrs == 0 {
		t.Fatal("protection error not counted")
	}
}

func TestAccessFlagsEnforced(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 32)
	// Register with remote READ only.
	mr, _ := p.nicB.RegisterMemory(mem, AccessRemoteRead)
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpRDMAWrite, Local: []byte{1},
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: true})
	if sc := waitCQE(t, p.cqA); sc.Status != StatusRemoteAccessError {
		t.Fatalf("write into read-only MR: %v", sc.Status)
	}
}

func TestDeregisteredMRRejected(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 32)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	if err := p.nicB.DeregisterMemory(mr); err != nil {
		t.Fatal(err)
	}
	if err := p.nicB.DeregisterMemory(mr); err != ErrUnregistered {
		t.Fatalf("double deregister: %v", err)
	}
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpRDMARead, Local: make([]byte, 4),
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: true})
	if sc := waitCQE(t, p.cqA); sc.Status != StatusRemoteAccessError {
		t.Fatalf("read from deregistered MR: %v", sc.Status)
	}
}

func TestUnsignaledSuppressesCQE(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 32)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpRDMAWrite, Local: []byte{1, 2},
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: false})
	// Signaled marker write afterwards: once it completes, the
	// unsignaled one has too (in-order execution).
	p.qpA.PostSend(SendWR{WRID: 2, Op: OpRDMAWrite, Local: []byte{3},
		RemoteAddr: mr.Base() + 8, RKey: mr.RKey(), Signaled: true})
	sc := waitCQE(t, p.cqA)
	if sc.WRID != 2 {
		t.Fatalf("got CQE for WRID %d, want 2 (unsignaled suppressed)", sc.WRID)
	}
	if p.cqA.Len() != 0 {
		t.Fatal("unexpected extra CQE")
	}
	if mem[0] != 1 || mem[1] != 2 {
		t.Fatal("unsignaled write did not execute")
	}
}

func TestMRBaseAlignmentAndSeparation(t *testing.T) {
	fab := fabric.New(1, fabric.Model{})
	defer fab.Close()
	nic, _ := New(fab, 0, Config{})
	defer nic.Close()
	a, _ := nic.RegisterMemory(make([]byte, 100), AccessAll)
	b, _ := nic.RegisterMemory(make([]byte, 100), AccessAll)
	if a.Base()%0x1000 != 0 || b.Base()%0x1000 != 0 {
		t.Fatalf("bases not page aligned: %#x %#x", a.Base(), b.Base())
	}
	if b.Base() < a.Base()+uint64(a.Len()) {
		t.Fatal("MR address ranges overlap")
	}
	if a.RKey() == b.RKey() {
		t.Fatal("rkeys must be unique")
	}
	if a.Base() == 0 {
		t.Fatal("base address 0 must never be handed out")
	}
}

func TestRegisterEmptyBuffer(t *testing.T) {
	fab := fabric.New(1, fabric.Model{})
	defer fab.Close()
	nic, _ := New(fab, 0, Config{})
	defer nic.Close()
	if _, err := nic.RegisterMemory(nil, AccessAll); err == nil {
		t.Fatal("empty registration accepted")
	}
}

func TestStrictLocalMode(t *testing.T) {
	p := newPair(t, Config{StrictLocal: true})
	reg := make([]byte, 64)
	if _, err := p.nicA.RegisterMemory(reg, AccessAll); err != nil {
		t.Fatal(err)
	}
	unreg := make([]byte, 8)
	err := p.qpA.PostSend(SendWR{WRID: 1, Op: OpSend, Local: unreg, Signaled: true})
	if err != ErrBadMR {
		t.Fatalf("unregistered local buffer: %v, want ErrBadMR", err)
	}
	if err := p.qpA.PostSend(SendWR{WRID: 2, Op: OpSend, Local: reg[8:16], Signaled: true}); err != nil {
		t.Fatalf("registered subslice rejected: %v", err)
	}
}

func TestSQFull(t *testing.T) {
	p := newPair(t, Config{SQDepth: 1})
	// Saturate: the engine drains quickly, so spam until we observe
	// ErrSQFull at least once or give up.
	sawFull := false
	for i := 0; i < 10000 && !sawFull; i++ {
		err := p.qpA.PostSend(SendWR{WRID: uint64(i), Op: OpRDMAWrite, Local: make([]byte, 1),
			RemoteAddr: 0x999999, RKey: 12345}) // will NAK eventually, fine
		if err == ErrSQFull {
			sawFull = true
		} else if err == ErrQPState {
			break // NAK already errored the QP; acceptable
		}
	}
	_ = sawFull // Depth-1 queues may drain faster than we post; nothing to assert strictly.
}

func TestRQFull(t *testing.T) {
	p := newPair(t, Config{RQDepth: 2})
	if err := p.qpB.PostRecv(RecvWR{WRID: 1, Buf: make([]byte, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := p.qpB.PostRecv(RecvWR{WRID: 2, Buf: make([]byte, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := p.qpB.PostRecv(RecvWR{WRID: 3, Buf: make([]byte, 1)}); err != ErrRQFull {
		t.Fatalf("overfull RQ: %v", err)
	}
}

func TestPostBeforeConnect(t *testing.T) {
	fab := fabric.New(1, fabric.Model{})
	defer fab.Close()
	nic, _ := New(fab, 0, Config{})
	defer nic.Close()
	cq := NewCQ(8)
	qp, _ := nic.CreateQP(cq, cq)
	if err := qp.PostSend(SendWR{Op: OpSend, Local: []byte{1}}); err != ErrQPState {
		t.Fatalf("post before connect: %v", err)
	}
	if qp.RemoteNode() != -1 {
		t.Fatalf("RemoteNode before connect = %d", qp.RemoteNode())
	}
}

func TestInvalidWRs(t *testing.T) {
	p := newPair(t, Config{})
	cases := []SendWR{
		{Op: OpInvalid, Local: []byte{1}},
		{Op: OpRDMAWrite, Local: []byte{1}},                                // zero remote addr
		{Op: OpRDMARead, RemoteAddr: 0x1000},                               // no dest
		{Op: OpAtomicFetchAdd, RemoteAddr: 0x1000, Local: []byte{1}},       // short result
		{Op: OpAtomicCompSwap, RemoteAddr: 0x1001, Local: make([]byte, 8)}, // misaligned
	}
	for i, wr := range cases {
		if err := p.qpA.PostSend(wr); err == nil {
			t.Fatalf("case %d accepted invalid WR", i)
		}
	}
}

func TestInOrderManyWrites(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 8)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	const n = 500
	for i := 0; i < n; i++ {
		val := []byte{byte(i)}
		sig := i == n-1
		for {
			err := p.qpA.PostSend(SendWR{WRID: uint64(i), Op: OpRDMAWrite, Local: val,
				RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: sig})
			if err == nil {
				break
			}
			if err != ErrSQFull {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Microsecond)
		}
	}
	waitCQE(t, p.cqA)
	if want := byte((n - 1) % 256); mem[0] != want {
		t.Fatalf("final value = %d, want %d (in-order violated)", mem[0], want)
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	p := newPair(t, Config{})
	mem := make([]byte, 64)
	mr, _ := p.nicB.RegisterMemory(mem, AccessAll)
	p.qpA.PostSend(SendWR{WRID: 1, Op: OpRDMAWrite, Local: make([]byte, 10),
		RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: true})
	waitCQE(t, p.cqA)
	ca, cb := p.nicA.Counters(), p.nicB.Counters()
	if ca.SendsPosted != 1 || ca.WireFrames == 0 || ca.Completions != 1 {
		t.Fatalf("initiator counters = %+v", ca)
	}
	if cb.RemoteWrites != 1 {
		t.Fatalf("target counters = %+v", cb)
	}
}

func TestCQPollSemantics(t *testing.T) {
	cq := NewCQ(4)
	if got := cq.Poll(1); got != nil {
		t.Fatalf("empty poll = %v", got)
	}
	if got := cq.Poll(0); got != nil {
		t.Fatal("poll(0) should return nil")
	}
	for i := 0; i < 4; i++ {
		cq.push(CQE{WRID: uint64(i)})
	}
	cq.push(CQE{WRID: 99}) // overflow
	if cq.Overflows() != 1 {
		t.Fatalf("overflows = %d", cq.Overflows())
	}
	got := cq.Poll(10)
	if len(got) != 4 {
		t.Fatalf("poll = %d entries", len(got))
	}
	for i, e := range got {
		if e.WRID != uint64(i) {
			t.Fatalf("order violated: %+v", got)
		}
	}
}

func TestCQPollInto(t *testing.T) {
	cq := NewCQ(8)
	for i := 0; i < 5; i++ {
		cq.push(CQE{WRID: uint64(i)})
	}
	dst := make([]CQE, 3)
	if n := cq.PollInto(dst); n != 3 || dst[0].WRID != 0 || dst[2].WRID != 2 {
		t.Fatalf("PollInto = %d %+v", n, dst)
	}
	if n := cq.PollInto(dst); n != 2 || dst[0].WRID != 3 {
		t.Fatalf("second PollInto = %d %+v", n, dst[:n])
	}
	if n := cq.PollInto(nil); n != 0 {
		t.Fatalf("PollInto(nil) = %d", n)
	}
}

func TestCQWaitPoll(t *testing.T) {
	cq := NewCQ(4)
	start := time.Now()
	if got := cq.WaitPoll(1, 30*time.Millisecond); got != nil {
		t.Fatalf("WaitPoll on empty = %v", got)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("WaitPoll returned before timeout")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		cq.push(CQE{WRID: 5})
	}()
	got := cq.WaitPoll(1, time.Second)
	if len(got) != 1 || got[0].WRID != 5 {
		t.Fatalf("WaitPoll = %v", got)
	}
}

func TestQPCloseStopsTraffic(t *testing.T) {
	p := newPair(t, Config{})
	p.qpA.Close()
	if err := p.qpA.PostSend(SendWR{Op: OpSend, Local: []byte{1}}); err != ErrQPState {
		t.Fatalf("post on closed QP: %v", err)
	}
	if err := p.qpA.PostRecv(RecvWR{WRID: 1}); err != ErrQPState {
		t.Fatalf("recv on closed QP: %v", err)
	}
}

func TestNICCloseIdempotentAndRejects(t *testing.T) {
	fab := fabric.New(1, fabric.Model{})
	defer fab.Close()
	nic, _ := New(fab, 0, Config{})
	nic.Close()
	nic.Close()
	if _, err := nic.RegisterMemory(make([]byte, 8), AccessAll); err != ErrClosed {
		t.Fatalf("register after close: %v", err)
	}
	if _, err := nic.CreateQP(NewCQ(1), NewCQ(1)); err != ErrClosed {
		t.Fatalf("createQP after close: %v", err)
	}
}

func TestSharedCQAcrossQPs(t *testing.T) {
	fab := fabric.New(2, fabric.Model{})
	defer fab.Close()
	nicA, _ := New(fab, 0, Config{})
	nicB, _ := New(fab, 1, Config{})
	defer nicA.Close()
	defer nicB.Close()
	shared := NewCQ(64)
	rcq := NewCQ(64)
	qp1, _ := nicA.CreateQP(shared, rcq)
	qp2, _ := nicA.CreateQP(shared, rcq)
	rq1, _ := nicB.CreateQP(NewCQ(8), NewCQ(8))
	rq2, _ := nicB.CreateQP(NewCQ(8), NewCQ(8))
	qp1.Connect(1, rq1.QPN())
	rq1.Connect(0, qp1.QPN())
	qp2.Connect(1, rq2.QPN())
	rq2.Connect(0, qp2.QPN())
	mem := make([]byte, 16)
	mr, _ := nicB.RegisterMemory(mem, AccessAll)
	qp1.PostSend(SendWR{WRID: 101, Op: OpRDMAWrite, Local: []byte{1}, RemoteAddr: mr.Base(), RKey: mr.RKey(), Signaled: true})
	qp2.PostSend(SendWR{WRID: 202, Op: OpRDMAWrite, Local: []byte{2}, RemoteAddr: mr.Base() + 8, RKey: mr.RKey(), Signaled: true})
	seen := map[uint64]bool{}
	deadline := time.Now().Add(2 * time.Second)
	for len(seen) < 2 && time.Now().Before(deadline) {
		for _, e := range shared.Poll(4) {
			seen[e.WRID] = true
			if e.Status != StatusOK {
				t.Fatalf("bad completion %+v", e)
			}
		}
		time.Sleep(20 * time.Microsecond)
	}
	if !seen[101] || !seen[202] {
		t.Fatalf("missing completions: %v", seen)
	}
}

func TestOpcodeAndStatusStrings(t *testing.T) {
	if OpRDMAWrite.String() != "rdma-write" || OpRecv.String() != "recv" {
		t.Fatal("opcode names wrong")
	}
	if StatusOK.String() != "ok" || StatusRNRExceeded.String() != "rnr-exceeded" {
		t.Fatal("status names wrong")
	}
	if Opcode(200).String() != "opcode(?)" || Status(200).String() != "status(?)" {
		t.Fatal("unknown enum names wrong")
	}
}

func TestSameBacking(t *testing.T) {
	buf := make([]byte, 100)
	if !sameBacking(buf, buf[10:20]) {
		t.Fatal("subslice not detected")
	}
	other := make([]byte, 10)
	if sameBacking(buf, other) {
		t.Fatal("foreign slice detected as subslice")
	}
	if sameBacking(buf, nil) {
		t.Fatal("nil slice detected")
	}
}
