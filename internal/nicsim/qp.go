package nicsim

import (
	"encoding/binary"
	"fmt"
	"sync"

	"photon/internal/fabric"
)

// SendWR is a send-side work request. The fields used depend on Op:
//
//	OpSend:            Local (payload), Imm/HasImm optional
//	OpRDMAWrite:       Local (payload), RemoteAddr, RKey
//	OpRDMAWriteImm:    as OpRDMAWrite plus Imm (consumes a remote recv)
//	OpRDMARead:        Local (destination), RemoteAddr, RKey
//	OpAtomicFetchAdd:  Local (8-byte result), RemoteAddr, RKey, Add
//	OpAtomicCompSwap:  Local (8-byte result), RemoteAddr, RKey, Compare, Swap
//
// Signaled selects whether a CQE is generated on the send CQ when the
// request completes; errors always generate a CQE.
type SendWR struct {
	WRID       uint64
	Op         Opcode
	Local      []byte
	RemoteAddr uint64
	RKey       uint32
	Imm        uint32
	HasImm     bool
	Signaled   bool
	Add        uint64
	Compare    uint64
	Swap       uint64
}

// RecvWR is a receive-side work request: a buffer for one incoming SEND
// (or the notification slot for one RDMA WRITE WITH IMM).
type RecvWR struct {
	WRID uint64
	Buf  []byte
}

type qpState uint8

const (
	qpReset qpState = iota
	qpRTS
	qpError
	qpClosed
)

// wqe is an in-flight send work request. The wire frame is encoded at
// post time (see PostSend), so payload-carrying requests do not retain
// the caller's Local buffer; byteLen preserves the payload length for
// the CQE after Local is dropped.
type wqe struct {
	wr      SendWR
	psn     uint64
	frame   []byte
	byteLen int
}

// inbound is a SEND or WRITE-WITH-IMM awaiting a posted receive buffer
// (infinite RNR-retry emulation).
type inbound struct {
	h       header
	imm     uint32
	hasImm  bool
	payload []byte // SEND payload; nil for WRITE WITH IMM
	isWrite bool
	written int // bytes the WRITE placed directly into the MR
	srcNode int
}

// QP is a reliable connected queue pair.
type QP struct {
	nic    *NIC
	qpn    uint32
	sendCQ *CQ
	recvCQ *CQ

	sq     chan *wqe
	closed chan struct{}

	//photon:lock qp 40
	mu          sync.Mutex
	state       qpState
	remoteNode  int
	remoteQPN   uint32
	nextPSN     uint64
	pending     map[uint64]*wqe
	rq          []RecvWR
	pendingRecv []inbound
}

// CreateQP creates a queue pair bound to the given completion queues.
// The QP must be connected with Connect before posting sends.
func (n *NIC) CreateQP(sendCQ, recvCQ *CQ) (*QP, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if sendCQ == nil || recvCQ == nil {
		return nil, fmt.Errorf("%w: nil CQ", ErrBadWR)
	}
	n.mu.Lock()
	qpn := n.nextQPN
	n.nextQPN++
	qp := &QP{
		nic:     n,
		qpn:     qpn,
		sendCQ:  sendCQ,
		recvCQ:  recvCQ,
		sq:      make(chan *wqe, n.cfg.SQDepth),
		closed:  make(chan struct{}),
		pending: make(map[uint64]*wqe),
	}
	n.qps[qpn] = qp
	n.mu.Unlock()
	go qp.engine()
	return qp, nil
}

// QPN returns the queue pair number, unique per NIC.
func (qp *QP) QPN() uint32 { return qp.qpn }

// Connect transitions the QP to ready-to-send, bound to the remote
// node's QP. Both sides must connect (to each other) before traffic
// flows; the address exchange itself is out of band, as in verbs.
func (qp *QP) Connect(remoteNode int, remoteQPN uint32) error {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.state == qpClosed || qp.state == qpError {
		return ErrQPState
	}
	qp.remoteNode = remoteNode
	qp.remoteQPN = remoteQPN
	qp.state = qpRTS
	return nil
}

// RemoteNode returns the connected peer node, or -1 if unconnected.
func (qp *QP) RemoteNode() int {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	if qp.state != qpRTS {
		return -1
	}
	return qp.remoteNode
}

// Errored reports whether the QP is in the error state.
func (qp *QP) Errored() bool {
	qp.mu.Lock()
	defer qp.mu.Unlock()
	return qp.state == qpError
}

// PostSend enqueues a send work request. It never blocks: when the send
// queue is full it returns ErrSQFull, and the caller is expected to
// reap completions and retry (Photon's progress engine does exactly
// that under ledger backpressure).
//
// The wire frame — including any payload — is encoded here, before
// PostSend returns, mirroring a real NIC's DMA-at-doorbell model
// closely enough for middleware purposes: the caller may reuse the
// Local buffer of a SEND/WRITE as soon as PostSend returns. READ and
// atomic requests still retain Local (the result destination) until
// completion. The PSN is also assigned here; a request bounced with
// ErrSQFull leaves a PSN hole, which is harmless because responders
// echo the PSN and the initiator matches responses through the pending
// map rather than by sequence.
func (qp *QP) PostSend(wr SendWR) error {
	if err := qp.validateSend(&wr); err != nil {
		return err
	}
	qp.mu.Lock()
	if qp.state != qpRTS {
		qp.mu.Unlock()
		return ErrQPState
	}
	psn := qp.nextPSN
	qp.nextPSN++
	dstQPN := qp.remoteQPN
	qp.mu.Unlock()

	w := wqeGet()
	w.wr = wr
	w.psn = psn
	w.byteLen = len(wr.Local)
	h := header{srcQPN: qp.qpn, dstQPN: dstQPN, psn: psn}
	switch wr.Op {
	case OpSend:
		h.typ = fSend
		w.frame = encodeSend(h, wr.Imm, wr.HasImm, wr.Local)
		w.wr.Local = nil
	case OpRDMAWrite:
		h.typ = fWrite
		w.frame = encodeWrite(h, wr.RemoteAddr, wr.RKey, 0, false, wr.Local)
		w.wr.Local = nil
	case OpRDMAWriteImm:
		h.typ = fWrite
		w.frame = encodeWrite(h, wr.RemoteAddr, wr.RKey, wr.Imm, true, wr.Local)
		w.wr.Local = nil
	case OpRDMARead:
		h.typ = fRead
		w.frame = encodeRead(h, wr.RemoteAddr, wr.RKey, len(wr.Local))
	case OpAtomicFetchAdd:
		h.typ = fAtomic
		w.frame = encodeAtomic(h, atomicFAdd, wr.RemoteAddr, wr.RKey, wr.Add, 0)
	case OpAtomicCompSwap:
		h.typ = fAtomic
		w.frame = encodeAtomic(h, atomicCSwap, wr.RemoteAddr, wr.RKey, wr.Swap, wr.Compare)
	}
	select {
	case qp.sq <- w:
		qp.nic.counters.sendsPosted.Add(1)
		return nil
	default:
		framePut(w.frame)
		wqePut(w)
		return ErrSQFull
	}
}

func (qp *QP) validateSend(wr *SendWR) error {
	switch wr.Op {
	case OpSend:
	case OpRDMAWrite, OpRDMAWriteImm:
		if wr.RemoteAddr == 0 {
			return fmt.Errorf("%w: zero remote address", ErrBadWR)
		}
	case OpRDMARead:
		if wr.RemoteAddr == 0 {
			return fmt.Errorf("%w: zero remote address", ErrBadWR)
		}
		if len(wr.Local) == 0 {
			return fmt.Errorf("%w: read needs a destination buffer", ErrBadWR)
		}
	case OpAtomicFetchAdd, OpAtomicCompSwap:
		if len(wr.Local) < 8 {
			return fmt.Errorf("%w: atomic needs an 8-byte result buffer", ErrBadWR)
		}
		if wr.RemoteAddr%8 != 0 {
			return fmt.Errorf("%w: atomic address must be 8-byte aligned", ErrBadWR)
		}
	default:
		return fmt.Errorf("%w: opcode %v", ErrBadWR, wr.Op)
	}
	if qp.nic.cfg.StrictLocal && len(wr.Local) > 0 && !qp.nic.containsLocal(wr.Local) {
		return ErrBadMR
	}
	return nil
}

// PostRecv posts a receive buffer. Buffers complete in FIFO order as
// SENDs (and WRITE-WITH-IMM notifications) arrive.
func (qp *QP) PostRecv(wr RecvWR) error {
	qp.mu.Lock()
	if qp.state == qpClosed || qp.state == qpError {
		qp.mu.Unlock()
		return ErrQPState
	}
	if len(qp.rq) >= qp.nic.cfg.RQDepth {
		qp.mu.Unlock()
		return ErrRQFull
	}
	var deliver *inbound
	if len(qp.pendingRecv) > 0 {
		ib := qp.pendingRecv[0]
		qp.pendingRecv = qp.pendingRecv[1:]
		deliver = &ib
	} else {
		qp.rq = append(qp.rq, wr)
	}
	qp.mu.Unlock()
	qp.nic.counters.recvsPosted.Add(1)
	if deliver != nil {
		qp.consumeRecv(wr, *deliver)
	}
	return nil
}

// engine executes send work requests in order on the wire.
func (qp *QP) engine() {
	for {
		select {
		case <-qp.closed:
			qp.flushSQ()
			return
		case w := <-qp.sq:
			if !qp.transmit(w) {
				// transmit failed locally; the WQE already
				// completed with an error and moved the QP to
				// the error state. Flush the rest.
				qp.flushSQ()
			}
		}
	}
}

// flushSQ completes every queued WQE with StatusFlushed.
func (qp *QP) flushSQ() {
	for {
		select {
		case w := <-qp.sq:
			qp.completeSend(w, StatusFlushed)
		default:
			return
		}
	}
}

// transmit puts one pre-encoded WQE onto the fabric. Returns false on
// local failure.
func (qp *QP) transmit(w *wqe) bool {
	qp.mu.Lock()
	if qp.state != qpRTS {
		qp.mu.Unlock()
		qp.completeSend(w, StatusFlushed)
		return false
	}
	qp.pending[w.psn] = w
	dstNode := qp.remoteNode
	qp.mu.Unlock()

	frame := w.frame
	w.frame = nil // fabric takes ownership
	qp.nic.counters.wireFrames.Add(1)
	qp.nic.counters.wireBytes.Add(int64(len(frame)))
	if err := qp.nic.fab.Send(qp.nic.node, dstNode, frame); err != nil {
		qp.dropPending(w.psn)
		qp.completeSend(w, StatusLocalError)
		return false
	}
	return true
}

func (qp *QP) dropPending(psn uint64) {
	qp.mu.Lock()
	delete(qp.pending, psn)
	qp.mu.Unlock()
}

// completeSend finishes a WQE: errors always produce a CQE; success
// produces one only when the request was signaled. This is the single
// terminal for every WQE path (response match, transmit failure, SQ
// flush), so the WQE — and a frame never handed to the fabric — return
// to their pools here.
func (qp *QP) completeSend(w *wqe, st Status) {
	if w.frame != nil {
		framePut(w.frame)
		w.frame = nil
	}
	if st == StatusOK && !w.wr.Signaled {
		wqePut(w)
		return
	}
	if st != StatusOK {
		qp.mu.Lock()
		if qp.state == qpRTS {
			qp.state = qpError
		}
		qp.mu.Unlock()
	}
	qp.nic.counters.completions.Add(1)
	cqe := CQE{
		WRID:    w.wr.WRID,
		Status:  st,
		Op:      w.wr.Op,
		ByteLen: w.byteLen,
		QPN:     qp.qpn,
	}
	wqePut(w)
	qp.sendCQ.push(cqe)
}

// close tears the QP down without completing pending requests.
func (qp *QP) close() {
	qp.mu.Lock()
	if qp.state == qpClosed {
		qp.mu.Unlock()
		return
	}
	qp.state = qpClosed
	qp.mu.Unlock()
	close(qp.closed)
}

// Close transitions the QP to the closed state and stops its engine.
func (qp *QP) Close() {
	qp.close()
	qp.nic.mu.Lock()
	delete(qp.nic.qps, qp.qpn)
	qp.nic.mu.Unlock()
}

// ---------------------------------------------------------------------
// Receive-side processing: NIC frame dispatch.
// ---------------------------------------------------------------------

// onFrame is the fabric delivery handler: it executes remote operations
// against local memory and routes responses/ACKs back to initiators.
//
// Delivery is the end of a frame's life: every handler either copies
// payload bytes out (posted receives, MR writes, read/atomic results,
// the pendingRecv staging copy) or finishes with them before returning,
// so the buffer goes back to the frame pool on exit.
func (n *NIC) onFrame(fr fabric.Frame) {
	defer framePut(fr.Data)
	if n.closed.Load() {
		return
	}
	h, body, err := parseHeader(fr.Data)
	if err != nil {
		n.counters.protErrs.Add(1)
		return
	}
	n.mu.Lock()
	qp := n.qps[h.dstQPN]
	n.mu.Unlock()
	if qp == nil {
		n.counters.protErrs.Add(1)
		return
	}
	switch h.typ {
	case fSend:
		imm, hasImm, payload, err := decodeSend(body)
		if err != nil {
			n.counters.protErrs.Add(1)
			return
		}
		qp.handleInbound(inbound{h: h, imm: imm, hasImm: hasImm, payload: payload, srcNode: fr.Src})
	case fWrite:
		qp.handleWrite(h, body, fr.Src)
	case fRead:
		qp.handleRead(h, body, fr.Src)
	case fAtomic:
		qp.handleAtomic(h, body, fr.Src)
	case fAck, fNak:
		st, err := decodeStatus(body)
		if err != nil {
			st = StatusLocalError
		}
		if h.typ == fNak && st == StatusOK {
			st = StatusRemoteAccessError
		}
		qp.handleResponse(h.psn, st, nil)
	case fReadResp:
		qp.handleResponse(h.psn, StatusOK, body)
	case fAtomicResp:
		qp.handleResponse(h.psn, StatusOK, body)
	default:
		n.counters.protErrs.Add(1)
	}
}

// respond sends an ACK/NAK or response frame back to the initiator.
func (qp *QP) respond(to int, frame []byte) {
	qp.nic.counters.wireFrames.Add(1)
	qp.nic.counters.wireBytes.Add(int64(len(frame)))
	_ = qp.nic.fab.Send(qp.nic.node, to, frame)
}

// handleInbound delivers a SEND (or queued WRITE-WITH-IMM notification)
// into a posted receive buffer, queueing it if none is posted yet.
func (qp *QP) handleInbound(ib inbound) {
	qp.mu.Lock()
	if qp.state == qpClosed {
		qp.mu.Unlock()
		return
	}
	if len(qp.rq) == 0 {
		if len(qp.pendingRecv) >= qp.nic.cfg.PendingRecvLimit {
			qp.mu.Unlock()
			// RNR retries exhausted: NAK the sender.
			h := header{typ: fNak, srcQPN: qp.qpn, dstQPN: ib.h.srcQPN, psn: ib.h.psn}
			qp.respond(ib.srcNode, encodeStatus(h, StatusRNRExceeded))
			return
		}
		// Copy the payload: the fabric frame buffer is reused by
		// upper layers' lifetimes, and we must hold it until a
		// receive is posted.
		cp := ib
		cp.payload = append([]byte(nil), ib.payload...)
		qp.pendingRecv = append(qp.pendingRecv, cp)
		qp.mu.Unlock()
		return
	}
	wr := qp.rq[0]
	qp.rq = qp.rq[1:]
	qp.mu.Unlock()
	qp.consumeRecv(wr, ib)
}

// consumeRecv finishes delivery of an inbound SEND / WRITE-WITH-IMM
// into the given receive WR and ACKs the initiator.
func (qp *QP) consumeRecv(wr RecvWR, ib inbound) {
	st := StatusOK
	byteLen := ib.written
	op := OpRecv
	if !ib.isWrite {
		if len(ib.payload) > len(wr.Buf) {
			st = StatusLengthError
		} else {
			copy(wr.Buf, ib.payload)
			byteLen = len(ib.payload)
		}
	}
	qp.nic.counters.recvDelivered.Add(1)
	qp.nic.counters.completions.Add(1)
	qp.recvCQ.push(CQE{
		WRID:    wr.WRID,
		Status:  st,
		Op:      op,
		ByteLen: byteLen,
		Imm:     ib.imm,
		HasImm:  ib.hasImm,
		QPN:     qp.qpn,
		SrcQPN:  ib.h.srcQPN,
		SrcNode: ib.srcNode,
	})
	h := header{srcQPN: qp.qpn, dstQPN: ib.h.srcQPN, psn: ib.h.psn}
	if st == StatusOK {
		h.typ = fAck
		qp.respond(ib.srcNode, encodeStatus(h, StatusOK))
	} else {
		h.typ = fNak
		qp.respond(ib.srcNode, encodeStatus(h, st))
	}
}

// handleWrite executes an RDMA WRITE against local registered memory.
func (qp *QP) handleWrite(h header, body []byte, src int) {
	raddr, rkey, imm, hasImm, payload, err := decodeWrite(body)
	nak := func(st Status) {
		qp.nic.counters.protErrs.Add(1)
		rh := header{typ: fNak, srcQPN: qp.qpn, dstQPN: h.srcQPN, psn: h.psn}
		qp.respond(src, encodeStatus(rh, st))
	}
	if err != nil {
		nak(StatusLocalError)
		return
	}
	mr, err := qp.nic.lookupMR(rkey, raddr, len(payload), AccessRemoteWrite)
	if err != nil {
		nak(StatusRemoteAccessError)
		return
	}
	mr.mu.Lock()
	copy(mr.buf[raddr-mr.base:], payload)
	mr.mu.Unlock()
	mr.writes.Add(1)
	qp.nic.counters.remoteWrites.Add(1)
	qp.nic.kickWriteHook()
	if hasImm {
		// WRITE WITH IMM additionally consumes a receive WR to
		// deliver the immediate; the ACK is sent on delivery.
		qp.handleInbound(inbound{h: h, imm: imm, hasImm: true, isWrite: true, written: len(payload), srcNode: src})
		return
	}
	rh := header{typ: fAck, srcQPN: qp.qpn, dstQPN: h.srcQPN, psn: h.psn}
	qp.respond(src, encodeStatus(rh, StatusOK))
}

// handleRead executes an RDMA READ against local registered memory.
func (qp *QP) handleRead(h header, body []byte, src int) {
	raddr, rkey, length, err := decodeRead(body)
	rh := header{srcQPN: qp.qpn, dstQPN: h.srcQPN, psn: h.psn}
	if err != nil {
		rh.typ = fNak
		qp.respond(src, encodeStatus(rh, StatusLocalError))
		return
	}
	mr, err := qp.nic.lookupMR(rkey, raddr, length, AccessRemoteRead)
	if err != nil {
		qp.nic.counters.protErrs.Add(1)
		rh.typ = fNak
		qp.respond(src, encodeStatus(rh, StatusRemoteAccessError))
		return
	}
	qp.nic.counters.remoteReads.Add(1)
	// Encode the response directly into a pooled frame: the MR bytes
	// are copied exactly once, under the read lock, into the buffer
	// that goes on the wire.
	rh.typ = fReadResp
	resp := frameGet(hdrLen + length)
	putHeader(resp, rh)
	mr.mu.RLock()
	copy(resp[hdrLen:], mr.buf[raddr-mr.base:])
	mr.mu.RUnlock()
	qp.respond(src, resp)
}

// handleAtomic executes a 64-bit remote atomic against local memory.
func (qp *QP) handleAtomic(h header, body []byte, src int) {
	kind, raddr, rkey, operand, compare, err := decodeAtomic(body)
	rh := header{srcQPN: qp.qpn, dstQPN: h.srcQPN, psn: h.psn}
	if err != nil || raddr%8 != 0 {
		rh.typ = fNak
		qp.respond(src, encodeStatus(rh, StatusLocalError))
		return
	}
	mr, err := qp.nic.lookupMR(rkey, raddr, 8, AccessRemoteAtomic)
	if err != nil {
		qp.nic.counters.protErrs.Add(1)
		rh.typ = fNak
		qp.respond(src, encodeStatus(rh, StatusRemoteAccessError))
		return
	}
	off := raddr - mr.base
	qp.nic.atomicMu.Lock()
	mr.mu.Lock()
	orig := binary.LittleEndian.Uint64(mr.buf[off:])
	switch kind {
	case atomicFAdd:
		binary.LittleEndian.PutUint64(mr.buf[off:], orig+operand)
	case atomicCSwap:
		if orig == compare {
			binary.LittleEndian.PutUint64(mr.buf[off:], operand)
		}
	default:
		mr.mu.Unlock()
		qp.nic.atomicMu.Unlock()
		rh.typ = fNak
		qp.respond(src, encodeStatus(rh, StatusLocalError))
		return
	}
	mr.mu.Unlock()
	qp.nic.atomicMu.Unlock()
	mr.writes.Add(1)
	qp.nic.counters.remoteAt.Add(1)
	qp.nic.kickWriteHook()
	rh.typ = fAtomicResp
	qp.respond(src, encodeAtomicResp(rh, orig))
}

// handleResponse matches an ACK/NAK/read/atomic response to its pending
// work request and completes it.
func (qp *QP) handleResponse(psn uint64, st Status, payload []byte) {
	qp.mu.Lock()
	w, ok := qp.pending[psn]
	if ok {
		delete(qp.pending, psn)
	}
	qp.mu.Unlock()
	if !ok {
		qp.nic.counters.protErrs.Add(1)
		return
	}
	if st == StatusOK {
		switch w.wr.Op {
		case OpRDMARead:
			copy(w.wr.Local, payload)
		case OpAtomicFetchAdd, OpAtomicCompSwap:
			if v, err := decodeAtomicResp(payload); err == nil {
				binary.LittleEndian.PutUint64(w.wr.Local, v)
			} else {
				st = StatusLocalError
			}
		}
	}
	qp.completeSend(w, st)
}
