package nicsim

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: every frame encoder/decoder pair round-trips arbitrary
// field values exactly.
func TestWireSendRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, psn uint64, imm uint32, hasImm bool, payload []byte) bool {
		h := header{typ: fSend, srcQPN: src, dstQPN: dst, psn: psn}
		frame := encodeSend(h, imm, hasImm, payload)
		h2, body, err := parseHeader(frame)
		if err != nil || h2 != h {
			return false
		}
		imm2, hasImm2, payload2, err := decodeSend(body)
		if err != nil {
			return false
		}
		if hasImm != hasImm2 {
			return false
		}
		if hasImm && imm != imm2 {
			return false
		}
		return bytes.Equal(payload, payload2) || (len(payload) == 0 && len(payload2) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireWriteRoundTripProperty(t *testing.T) {
	f := func(raddr uint64, rkey, imm uint32, hasImm bool, payload []byte) bool {
		h := header{typ: fWrite, srcQPN: 1, dstQPN: 2, psn: 3}
		frame := encodeWrite(h, raddr, rkey, imm, hasImm, payload)
		_, body, err := parseHeader(frame)
		if err != nil {
			return false
		}
		ra2, rk2, imm2, hasImm2, payload2, err := decodeWrite(body)
		if err != nil || ra2 != raddr || rk2 != rkey || hasImm2 != hasImm {
			return false
		}
		if hasImm && imm2 != imm {
			return false
		}
		return bytes.Equal(payload, payload2) || (len(payload) == 0 && len(payload2) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireReadRoundTripProperty(t *testing.T) {
	f := func(raddr uint64, rkey uint32, length uint16) bool {
		h := header{typ: fRead, srcQPN: 9, dstQPN: 8, psn: 7}
		frame := encodeRead(h, raddr, rkey, int(length))
		_, body, err := parseHeader(frame)
		if err != nil {
			return false
		}
		ra2, rk2, n2, err := decodeRead(body)
		return err == nil && ra2 == raddr && rk2 == rkey && n2 == int(length)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireAtomicRoundTripProperty(t *testing.T) {
	f := func(kind bool, raddr uint64, rkey uint32, operand, compare uint64) bool {
		k := byte(atomicFAdd)
		if kind {
			k = atomicCSwap
		}
		h := header{typ: fAtomic, srcQPN: 4, dstQPN: 5, psn: 6}
		frame := encodeAtomic(h, k, raddr, rkey, operand, compare)
		_, body, err := parseHeader(frame)
		if err != nil {
			return false
		}
		k2, ra2, rk2, op2, cmp2, err := decodeAtomic(body)
		return err == nil && k2 == k && ra2 == raddr && rk2 == rkey && op2 == operand && cmp2 == compare
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWireStatusAndResponses(t *testing.T) {
	h := header{typ: fAck, srcQPN: 1, dstQPN: 2, psn: 42}
	_, body, err := parseHeader(encodeStatus(h, StatusRNRExceeded))
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeStatus(body)
	if err != nil || st != StatusRNRExceeded {
		t.Fatalf("status round trip: %v %v", st, err)
	}

	payload := []byte("read response payload")
	h.typ = fReadResp
	_, body, _ = parseHeader(encodeReadResp(h, payload))
	if !bytes.Equal(body, payload) {
		t.Fatal("read response payload corrupted")
	}

	h.typ = fAtomicResp
	_, body, _ = parseHeader(encodeAtomicResp(h, 0xDEADBEEFCAFE))
	v, err := decodeAtomicResp(body)
	if err != nil || v != 0xDEADBEEFCAFE {
		t.Fatalf("atomic response round trip: %v %v", v, err)
	}
}

func TestWireShortFrames(t *testing.T) {
	if _, _, err := parseHeader([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
	if _, _, _, err := decodeSend(nil); err == nil {
		t.Fatal("short send accepted")
	}
	if _, _, _, _, _, err := decodeWrite(make([]byte, 5)); err == nil {
		t.Fatal("short write accepted")
	}
	if _, _, _, err := decodeRead(make([]byte, 3)); err == nil {
		t.Fatal("short read accepted")
	}
	if _, _, _, _, _, err := decodeAtomic(make([]byte, 10)); err == nil {
		t.Fatal("short atomic accepted")
	}
	if _, err := decodeStatus(nil); err == nil {
		t.Fatal("short status accepted")
	}
	if _, err := decodeAtomicResp(make([]byte, 4)); err == nil {
		t.Fatal("short atomic response accepted")
	}
}
