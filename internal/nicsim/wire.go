package nicsim

import (
	"encoding/binary"
	"fmt"
)

// Wire frame types exchanged between NICs over the fabric. The format
// is a fixed header (type, source QPN, destination QPN, PSN) followed
// by a type-specific body. Responders echo the requester's PSN so the
// initiator can match responses to pending work requests, exactly the
// role the PSN plays in the IB transport.
type frameType uint8

const (
	fInvalid    frameType = iota
	fSend                 // body: flags(1) imm(4) payload
	fWrite                // body: raddr(8) rkey(4) flags(1) imm(4) payload
	fRead                 // body: raddr(8) rkey(4) length(4)
	fAtomic               // body: kind(1) raddr(8) rkey(4) operand(8) compare(8)
	fAck                  // body: status(1)
	fNak                  // body: status(1)
	fReadResp             // body: payload
	fAtomicResp           // body: value(8)
)

const (
	hdrLen      = 1 + 4 + 4 + 8
	flagHasImm  = 1 << 0
	atomicFAdd  = 1
	atomicCSwap = 2
)

// Fixed body lengths shared by the encoders and the decoders' short-
// frame checks.
const (
	readBodyLen   = 8 + 4 + 4         // raddr | rkey | length
	atomicBodyLen = 1 + 8 + 4 + 8 + 8 // kind | raddr | rkey | operand | compare
)

type header struct {
	typ    frameType
	srcQPN uint32
	dstQPN uint32
	psn    uint64
}

func putHeader(b []byte, h header) {
	b[0] = byte(h.typ)
	binary.LittleEndian.PutUint32(b[1:], h.srcQPN)
	binary.LittleEndian.PutUint32(b[5:], h.dstQPN)
	binary.LittleEndian.PutUint64(b[9:], h.psn)
}

func parseHeader(b []byte) (header, []byte, error) {
	if len(b) < hdrLen {
		return header{}, nil, fmt.Errorf("nicsim: short frame (%d bytes)", len(b))
	}
	h := header{
		typ:    frameType(b[0]),
		srcQPN: binary.LittleEndian.Uint32(b[1:]),
		dstQPN: binary.LittleEndian.Uint32(b[5:]),
		psn:    binary.LittleEndian.Uint64(b[9:]),
	}
	return h, b[hdrLen:], nil
}

// The encoders draw frame buffers from the frame pool (pool.go), so
// every body byte must be written explicitly — recycled buffers carry
// stale contents. The receiving NIC returns frames to the pool when
// delivery finishes (see onFrame).

func encodeSend(h header, imm uint32, hasImm bool, payload []byte) []byte {
	b := frameGet(hdrLen + 5 + len(payload))
	putHeader(b, h)
	b[hdrLen] = 0
	if hasImm {
		b[hdrLen] = flagHasImm
	}
	binary.LittleEndian.PutUint32(b[hdrLen+1:], imm)
	copy(b[hdrLen+5:], payload)
	return b
}

func decodeSend(body []byte) (imm uint32, hasImm bool, payload []byte, err error) {
	if len(body) < 5 {
		return 0, false, nil, fmt.Errorf("nicsim: short send body")
	}
	hasImm = body[0]&flagHasImm != 0
	imm = binary.LittleEndian.Uint32(body[1:])
	return imm, hasImm, body[5:], nil
}

func encodeWrite(h header, raddr uint64, rkey uint32, imm uint32, hasImm bool, payload []byte) []byte {
	b := frameGet(hdrLen + 17 + len(payload))
	putHeader(b, h)
	binary.LittleEndian.PutUint64(b[hdrLen:], raddr)
	binary.LittleEndian.PutUint32(b[hdrLen+8:], rkey)
	b[hdrLen+12] = 0
	if hasImm {
		b[hdrLen+12] = flagHasImm
	}
	binary.LittleEndian.PutUint32(b[hdrLen+13:], imm)
	copy(b[hdrLen+17:], payload)
	return b
}

func decodeWrite(body []byte) (raddr uint64, rkey uint32, imm uint32, hasImm bool, payload []byte, err error) {
	if len(body) < 17 {
		return 0, 0, 0, false, nil, fmt.Errorf("nicsim: short write body")
	}
	raddr = binary.LittleEndian.Uint64(body)
	rkey = binary.LittleEndian.Uint32(body[8:])
	hasImm = body[12]&flagHasImm != 0
	imm = binary.LittleEndian.Uint32(body[13:])
	return raddr, rkey, imm, hasImm, body[17:], nil
}

func encodeRead(h header, raddr uint64, rkey uint32, length int) []byte {
	b := frameGet(hdrLen + readBodyLen)
	putHeader(b, h)
	binary.LittleEndian.PutUint64(b[hdrLen:], raddr)
	binary.LittleEndian.PutUint32(b[hdrLen+8:], rkey)
	binary.LittleEndian.PutUint32(b[hdrLen+12:], uint32(length))
	return b
}

func decodeRead(body []byte) (raddr uint64, rkey uint32, length int, err error) {
	if len(body) < readBodyLen {
		return 0, 0, 0, fmt.Errorf("nicsim: short read body")
	}
	raddr = binary.LittleEndian.Uint64(body)
	rkey = binary.LittleEndian.Uint32(body[8:])
	length = int(binary.LittleEndian.Uint32(body[12:]))
	return raddr, rkey, length, nil
}

func encodeAtomic(h header, kind byte, raddr uint64, rkey uint32, operand, compare uint64) []byte {
	b := frameGet(hdrLen + atomicBodyLen)
	putHeader(b, h)
	b[hdrLen] = kind
	binary.LittleEndian.PutUint64(b[hdrLen+1:], raddr)
	binary.LittleEndian.PutUint32(b[hdrLen+9:], rkey)
	binary.LittleEndian.PutUint64(b[hdrLen+13:], operand)
	binary.LittleEndian.PutUint64(b[hdrLen+21:], compare)
	return b
}

func decodeAtomic(body []byte) (kind byte, raddr uint64, rkey uint32, operand, compare uint64, err error) {
	if len(body) < atomicBodyLen {
		return 0, 0, 0, 0, 0, fmt.Errorf("nicsim: short atomic body")
	}
	kind = body[0]
	raddr = binary.LittleEndian.Uint64(body[1:])
	rkey = binary.LittleEndian.Uint32(body[9:])
	operand = binary.LittleEndian.Uint64(body[13:])
	compare = binary.LittleEndian.Uint64(body[21:])
	return kind, raddr, rkey, operand, compare, nil
}

func encodeStatus(h header, st Status) []byte {
	b := frameGet(hdrLen + 1)
	putHeader(b, h)
	b[hdrLen] = byte(st)
	return b
}

func decodeStatus(body []byte) (Status, error) {
	if len(body) < 1 {
		return StatusLocalError, fmt.Errorf("nicsim: short status body")
	}
	return Status(body[0]), nil
}

func encodeReadResp(h header, payload []byte) []byte {
	b := frameGet(hdrLen + len(payload))
	putHeader(b, h)
	copy(b[hdrLen:], payload)
	return b
}

func encodeAtomicResp(h header, value uint64) []byte {
	b := frameGet(hdrLen + 8)
	putHeader(b, h)
	binary.LittleEndian.PutUint64(b[hdrLen:], value)
	return b
}

func decodeAtomicResp(body []byte) (uint64, error) {
	if len(body) < 8 {
		return 0, fmt.Errorf("nicsim: short atomic response")
	}
	return binary.LittleEndian.Uint64(body), nil
}
