package nicsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Opcode identifies the kind of work a completion refers to.
type Opcode uint8

// Work request opcodes.
const (
	OpInvalid Opcode = iota
	OpSend
	OpRDMAWrite
	OpRDMAWriteImm
	OpRDMARead
	OpAtomicFetchAdd
	OpAtomicCompSwap
	OpRecv
)

var opNames = [...]string{"invalid", "send", "rdma-write", "rdma-write-imm", "rdma-read", "fetch-add", "comp-swap", "recv"}

// String returns the lowercase opcode name.
func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "opcode(?)"
}

// Status reports how a work request completed.
type Status uint8

// Completion status values.
const (
	StatusOK Status = iota
	StatusLocalError
	StatusRemoteAccessError
	StatusLengthError
	StatusRNRExceeded
	StatusFlushed
)

var statusNames = [...]string{"ok", "local-error", "remote-access-error", "length-error", "rnr-exceeded", "flushed"}

// String returns the lowercase status name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "status(?)"
}

// CQE is one completion queue entry.
type CQE struct {
	WRID    uint64
	Status  Status
	Op      Opcode
	ByteLen int    // bytes transferred (receives: payload length)
	Imm     uint32 // immediate data, if HasImm
	HasImm  bool
	QPN     uint32 // local QP the completion belongs to
	SrcQPN  uint32 // remote QP (receives only)
	SrcNode int    // remote node (receives only)
}

// CQ is a bounded completion queue. Multiple QPs may share one CQ, as
// in verbs. Overflow is recorded and drops the entry; a correctly
// sized application never overflows (Photon sizes CQs to its ledger
// and request-table bounds).
type CQ struct {
	//photon:lock cq 30
	mu       sync.Mutex
	cond     *sync.Cond
	ring     []CQE
	head, sz int
	overflow int64
	fastLen  atomic.Int32 // lock-free mirror of sz for empty checks

	// wakeHook, when set, is invoked (outside the queue lock) after
	// every push — the simulated analogue of a completion-channel
	// event. Middleware installs its notify kick here so pollers can
	// park instead of spinning.
	wakeHook atomic.Pointer[func()]
}

// NewCQ creates a completion queue with the given capacity (minimum 1).
func NewCQ(capacity int) *CQ {
	if capacity < 1 {
		capacity = 1
	}
	cq := &CQ{ring: make([]CQE, capacity)}
	cq.cond = sync.NewCond(&cq.mu)
	return cq
}

// Cap returns the queue capacity.
func (c *CQ) Cap() int { return len(c.ring) }

// Overflows reports how many completions were dropped due to overflow.
func (c *CQ) Overflows() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overflow
}

func (c *CQ) push(e CQE) {
	c.mu.Lock()
	if c.sz == len(c.ring) {
		c.overflow++
		c.mu.Unlock()
		return
	}
	c.ring[(c.head+c.sz)%len(c.ring)] = e
	c.sz++
	c.fastLen.Store(int32(c.sz))
	c.cond.Signal()
	c.mu.Unlock()
	if f := c.wakeHook.Load(); f != nil {
		(*f)()
	}
}

// SetWakeHook installs fn to run after every completion push (nil
// clears it). fn must be non-blocking and callable from any goroutine;
// it fires outside the queue lock.
func (c *CQ) SetWakeHook(fn func()) {
	if fn == nil {
		c.wakeHook.Store(nil)
		return
	}
	c.wakeHook.Store(&fn)
}

// Poll reaps up to max completions without blocking, returning however
// many are available (possibly zero).
func (c *CQ) Poll(max int) []CQE {
	if max <= 0 {
		return nil
	}
	c.mu.Lock()
	n := c.sz
	if n > max {
		n = max
	}
	if n == 0 {
		c.mu.Unlock()
		return nil
	}
	out := make([]CQE, n)
	for i := 0; i < n; i++ {
		out[i] = c.ring[(c.head+i)%len(c.ring)]
	}
	c.head = (c.head + n) % len(c.ring)
	c.sz -= n
	c.fastLen.Store(int32(c.sz))
	c.mu.Unlock()
	return out
}

// PollInto reaps up to len(dst) completions into dst without
// allocating, returning the count.
func (c *CQ) PollInto(dst []CQE) int {
	if len(dst) == 0 {
		return 0
	}
	c.mu.Lock()
	n := c.sz
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = c.ring[(c.head+i)%len(c.ring)]
	}
	c.head = (c.head + n) % len(c.ring)
	c.sz -= n
	c.fastLen.Store(int32(c.sz))
	c.mu.Unlock()
	return n
}

// WaitPoll blocks until at least one completion is available or the
// timeout expires, then reaps up to max entries. A timeout <= 0 polls
// once without blocking.
func (c *CQ) WaitPoll(max int, timeout time.Duration) []CQE {
	if got := c.Poll(max); len(got) > 0 || timeout <= 0 {
		return got
	}
	deadline := time.Now().Add(timeout)
	c.mu.Lock()
	for c.sz == 0 {
		// sync.Cond has no timed wait; use a waker goroutine per
		// blocking call. WaitPoll is a convenience for tests and
		// bootstrap paths, not the hot path (Photon polls).
		done := make(chan struct{})
		go func() {
			select {
			case <-time.After(time.Until(deadline)):
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			case <-done:
			}
		}()
		c.cond.Wait()
		close(done)
		if c.sz == 0 && !time.Now().Before(deadline) {
			c.mu.Unlock()
			return nil
		}
	}
	c.mu.Unlock()
	return c.Poll(max)
}

// FastLen reports the queue depth without locking: a cheap empty check
// for polling loops (exact at quiescence, advisory under concurrency).
func (c *CQ) FastLen() int { return int(c.fastLen.Load()) }

// Len reports the number of completions currently queued.
func (c *CQ) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sz
}
