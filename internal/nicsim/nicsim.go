// Package nicsim implements a software model of an RDMA-capable NIC
// ("RNIC") faithful enough to host the Photon middleware unchanged.
//
// The model follows the InfiniBand verbs architecture:
//
//   - Memory regions (MR): user buffers registered with the NIC,
//     addressable by a local key (lkey) and, for remote access, a remote
//     key (rkey) plus a NIC-assigned virtual base address. Remote
//     operations are bounds- and access-checked against the MR table,
//     exactly the checks a hardware translation/protection table does.
//   - Queue pairs (QP): reliable connected endpoints. Work requests are
//     posted to a bounded send queue and executed in order by a per-QP
//     engine goroutine; receives are posted to a receive queue consumed
//     by incoming SENDs.
//   - Completion queues (CQ): bounded rings that report work completion.
//     Send-side completions are generated when the responder's ACK (or
//     read/atomic response) arrives, so completion timing includes a
//     full round trip, as on real RC transports.
//
// Supported opcodes: SEND (with optional immediate), RDMA WRITE, RDMA
// WRITE WITH IMM, RDMA READ, and the two masked 64-bit atomics FETCH-ADD
// and COMPARE-SWAP. Unsignaled work requests suppress the sender-side
// CQE (selective signaling), which Photon uses on its ledger writes.
//
// The NIC attaches to a fabric.Fabric node; in-order per-link delivery
// gives the in-order guarantees of an RC queue pair.
package nicsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"photon/internal/fabric"
)

// Access is a bitmask of permissions granted when registering memory.
type Access uint8

// Access flag values, mirroring IBV_ACCESS_*.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
	AccessRemoteAtomic
)

// AccessAll grants every permission; Photon registers its ledgers and
// eager buffers with this.
const AccessAll = AccessLocalWrite | AccessRemoteRead | AccessRemoteWrite | AccessRemoteAtomic

// Errors returned by NIC operations.
var (
	ErrClosed       = errors.New("nicsim: NIC closed")
	ErrSQFull       = errors.New("nicsim: send queue full")
	ErrRQFull       = errors.New("nicsim: receive queue full")
	ErrQPState      = errors.New("nicsim: queue pair not in a usable state")
	ErrBadMR        = errors.New("nicsim: buffer not within a registered memory region")
	ErrBadWR        = errors.New("nicsim: malformed work request")
	ErrUnregistered = errors.New("nicsim: memory region not registered")
)

// MR is a registered memory region.
//
// Remote operations against the region (writes, reads, atomics) are
// serialized with an internal RWMutex; local code that polls memory the
// remote side writes (ledgers, mailboxes) must hold the read lock via
// RLocker while reading. This stands in for the cache-coherent ordered
// visibility real DMA provides.
type MR struct {
	nic *NIC
	//photon:lock mr 20
	mu     sync.RWMutex
	writes atomic.Uint64 // bumped after every remote write/atomic
	buf    []byte
	base   uint64
	lkey   uint32
	rkey   uint32
	access Access
}

// WriteActivity returns a monotonic count of remote writes and atomics
// applied to the region — the software analogue of a DMA event counter.
// Pollers use it to skip sweeping rings when nothing has arrived.
func (m *MR) WriteActivity() uint64 { return m.writes.Load() }

// RLocker returns a read-locker that synchronizes local polling against
// remote DMA into the region.
func (m *MR) RLocker() sync.Locker { return m.mu.RLocker() }

// Base returns the NIC-assigned virtual base address of the region.
// Remote peers address bytes in the region as Base()+offset.
func (m *MR) Base() uint64 { return m.base }

// RKey returns the remote access key.
func (m *MR) RKey() uint32 { return m.rkey }

// LKey returns the local access key.
func (m *MR) LKey() uint32 { return m.lkey }

// Len returns the length of the registered buffer.
func (m *MR) Len() int { return len(m.buf) }

// Bytes returns the underlying registered buffer.
func (m *MR) Bytes() []byte { return m.buf }

// Access returns the permissions granted at registration.
func (m *MR) Access() Access { return m.access }

// Counters aggregates NIC activity, useful for ablation reporting.
type Counters struct {
	SendsPosted    int64
	RecvsPosted    int64
	WireFrames     int64
	WireBytes      int64
	Completions    int64
	RemoteWrites   int64
	RemoteReads    int64
	RemoteAtomics  int64
	RecvDelivered  int64
	ProtectionErrs int64
}

// Config tunes NIC behaviour.
type Config struct {
	// SQDepth bounds outstanding send work requests per QP (default 1024).
	SQDepth int
	// RQDepth bounds posted receive buffers per QP (default 1024).
	RQDepth int
	// CQDepth bounds completion queue capacity (default 4096).
	CQDepth int
	// PendingRecvLimit bounds SENDs queued while no receive buffer is
	// posted (infinite-RNR-retry emulation; default 1024, beyond which
	// the QP moves to the error state).
	PendingRecvLimit int
	// StrictLocal, when true, requires every local buffer in a work
	// request to lie within a registered MR, as real verbs do.
	StrictLocal bool
}

func (c *Config) setDefaults() {
	if c.SQDepth <= 0 {
		c.SQDepth = 1024
	}
	if c.RQDepth <= 0 {
		c.RQDepth = 1024
	}
	if c.CQDepth <= 0 {
		c.CQDepth = 4096
	}
	if c.PendingRecvLimit <= 0 {
		c.PendingRecvLimit = 1024
	}
}

// NIC is one simulated RDMA NIC attached to a fabric node.
type NIC struct {
	node   int
	fab    *fabric.Fabric
	cfg    Config
	closed atomic.Bool

	//photon:lock nic 10
	mu       sync.Mutex
	mrsByKey map[uint32]*MR // rkey -> MR (rkey == lkey in this model)
	nextKey  uint32
	nextBase uint64
	qps      map[uint32]*QP
	nextQPN  uint32

	//photon:lock nicatomic 15
	atomicMu sync.Mutex // serializes remote atomics against this NIC's memory

	// writeHook, when set, runs after every remote write or atomic is
	// applied to this NIC's registered memory (and after loopback
	// LocalWrite) — the simulated analogue of a DMA-completion
	// interrupt. Middleware installs its notify kick here so waiters
	// park instead of polling for ledger arrivals.
	writeHook atomic.Pointer[func()]

	counters struct {
		sendsPosted, recvsPosted            atomic.Int64
		wireFrames, wireBytes               atomic.Int64
		completions                         atomic.Int64
		remoteWrites, remoteReads, remoteAt atomic.Int64
		recvDelivered, protErrs             atomic.Int64
	}
}

// New creates a NIC and attaches it to fabric node `node`.
func New(fab *fabric.Fabric, node int, cfg Config) (*NIC, error) {
	cfg.setDefaults()
	n := &NIC{
		node:     node,
		fab:      fab,
		cfg:      cfg,
		mrsByKey: make(map[uint32]*MR),
		nextKey:  1,
		nextBase: 0x1000, // never hand out address 0
		qps:      make(map[uint32]*QP),
		nextQPN:  1,
	}
	if err := fab.Attach(node, n.onFrame); err != nil {
		return nil, err
	}
	return n, nil
}

// Node returns the fabric node index this NIC is attached to.
func (n *NIC) Node() int { return n.node }

// Counters returns a snapshot of activity counters.
func (n *NIC) Counters() Counters {
	return Counters{
		SendsPosted:    n.counters.sendsPosted.Load(),
		RecvsPosted:    n.counters.recvsPosted.Load(),
		WireFrames:     n.counters.wireFrames.Load(),
		WireBytes:      n.counters.wireBytes.Load(),
		Completions:    n.counters.completions.Load(),
		RemoteWrites:   n.counters.remoteWrites.Load(),
		RemoteReads:    n.counters.remoteReads.Load(),
		RemoteAtomics:  n.counters.remoteAt.Load(),
		RecvDelivered:  n.counters.recvDelivered.Load(),
		ProtectionErrs: n.counters.protErrs.Load(),
	}
}

// RegisterMemory registers buf with the NIC and returns its MR. The
// buffer is pinned for the life of the registration: callers must keep
// it reachable and must not reallocate it.
func (n *NIC) RegisterMemory(buf []byte, access Access) (*MR, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty buffer", ErrBadWR)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	key := n.nextKey
	n.nextKey++
	base := n.nextBase
	// Align bases to 4KiB pages like a real pin would, and keep a
	// guard gap so off-by-one remote addresses never alias regions.
	sz := (uint64(len(buf)) + 0xFFF) &^ uint64(0xFFF)
	n.nextBase += sz + 0x1000
	mr := &MR{nic: n, buf: buf, base: base, lkey: key, rkey: key, access: access}
	n.mrsByKey[key] = mr
	return mr, nil
}

// LocalWrite performs a loopback DMA write: it validates (rkey, addr,
// len) against the MR table exactly as a remote write would and places
// data under the region's DMA lock. Middleware uses it to land payloads
// that arrived packed inside other transfers.
func (n *NIC) LocalWrite(addr uint64, rkey uint32, data []byte) error {
	mr, err := n.lookupMR(rkey, addr, len(data), AccessRemoteWrite)
	if err != nil {
		n.counters.protErrs.Add(1)
		return err
	}
	mr.mu.Lock()
	copy(mr.buf[addr-mr.base:], data)
	mr.mu.Unlock()
	mr.writes.Add(1)
	n.counters.remoteWrites.Add(1)
	n.kickWriteHook()
	return nil
}

// SetWriteHook installs fn to run after every remote write/atomic
// applied to this NIC's memory (nil clears it). fn must be
// non-blocking and callable from any goroutine.
func (n *NIC) SetWriteHook(fn func()) {
	if fn == nil {
		n.writeHook.Store(nil)
		return
	}
	n.writeHook.Store(&fn)
}

func (n *NIC) kickWriteHook() {
	if f := n.writeHook.Load(); f != nil {
		(*f)()
	}
}

// DeregisterMemory removes a registration. In-flight remote operations
// that race the deregistration fail with protection errors, as on real
// hardware.
func (n *NIC) DeregisterMemory(mr *MR) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.mrsByKey[mr.rkey]; !ok {
		return ErrUnregistered
	}
	delete(n.mrsByKey, mr.rkey)
	return nil
}

// lookupMR resolves an rkey, validating [addr, addr+length) is inside
// the region and that the region grants `need`.
func (n *NIC) lookupMR(rkey uint32, addr uint64, length int, need Access) (*MR, error) {
	n.mu.Lock()
	mr, ok := n.mrsByKey[rkey]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: rkey %d", ErrUnregistered, rkey)
	}
	if mr.access&need != need {
		return nil, fmt.Errorf("nicsim: access violation on rkey %d", rkey)
	}
	if addr < mr.base || addr+uint64(length) > mr.base+uint64(len(mr.buf)) || addr+uint64(length) < addr {
		return nil, fmt.Errorf("nicsim: address range [%#x,+%d) outside MR", addr, length)
	}
	return mr, nil
}

// containsLocal reports whether buf lies within some registered MR.
// Only consulted when Config.StrictLocal is set.
func (n *NIC) containsLocal(buf []byte) bool {
	if len(buf) == 0 {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, mr := range n.mrsByKey {
		if len(mr.buf) == 0 {
			continue
		}
		if sameBacking(mr.buf, buf) {
			return true
		}
	}
	return false
}

// sameBacking reports whether sub is a subslice of outer, comparing
// element addresses without unsafe by scanning capacity windows.
func sameBacking(outer, sub []byte) bool {
	// Compare via pointer identity of first elements across the
	// addressable range of outer. &outer[i] == &sub[0] for some i
	// iff sub aliases outer.
	if cap(outer) == 0 || len(sub) == 0 {
		return false
	}
	o := outer[:cap(outer)]
	for i := range o {
		if &o[i] == &sub[0] {
			return i+len(sub) <= len(o)
		}
	}
	return false
}

// Close shuts the NIC down: all QPs move to the error state and their
// engines stop. The fabric itself is left running (it may serve other
// NICs).
func (n *NIC) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.mu.Lock()
	qps := make([]*QP, 0, len(n.qps))
	for _, qp := range n.qps {
		qps = append(qps, qp)
	}
	n.mu.Unlock()
	for _, qp := range qps {
		qp.close()
	}
}
