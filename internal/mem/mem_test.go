package mem

import (
	"testing"
	"testing/quick"

	"photon/internal/fabric"
	"photon/internal/nicsim"
	"photon/internal/verbs"
)

func newDev(t *testing.T) *verbs.Device {
	t.Helper()
	fab := fabric.New(1, fabric.Model{})
	t.Cleanup(fab.Close)
	d, err := verbs.Open(fab, 0, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestPoolGetPut(t *testing.T) {
	d := newDev(t)
	p, err := NewPool(d, 128, 4, verbs.AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cap() != 4 || p.SlotSize() != 128 || p.Available() != 4 {
		t.Fatalf("pool geometry wrong: cap=%d slot=%d avail=%d", p.Cap(), p.SlotSize(), p.Available())
	}
	s0, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if s0.Index != 0 || len(s0.Buf) != 128 {
		t.Fatalf("slot 0 = %+v", s0)
	}
	if s0.RemoteAddr() != p.MR().Base() {
		t.Fatalf("slot 0 remote addr = %#x, want MR base %#x", s0.RemoteAddr(), p.MR().Base())
	}
	s1, _ := p.Get()
	if s1.RemoteAddr() != p.MR().Base()+128 {
		t.Fatalf("slot 1 remote addr = %#x", s1.RemoteAddr())
	}
	if p.Available() != 2 {
		t.Fatalf("available = %d", p.Available())
	}
	if err := p.Put(s0); err != nil {
		t.Fatal(err)
	}
	if p.Available() != 3 {
		t.Fatalf("available after put = %d", p.Available())
	}
}

func TestPoolExhaustion(t *testing.T) {
	d := newDev(t)
	p, _ := NewPool(d, 8, 2, verbs.AccessAll)
	a, _ := p.Get()
	b, _ := p.Get()
	if _, err := p.Get(); err != ErrExhausted {
		t.Fatalf("exhausted pool Get = %v", err)
	}
	p.Put(a)
	p.Put(b)
	if p.Available() != 2 {
		t.Fatalf("available = %d", p.Available())
	}
}

func TestPoolDoubleFreeAndForeign(t *testing.T) {
	d := newDev(t)
	p, _ := NewPool(d, 8, 2, verbs.AccessAll)
	q, _ := NewPool(d, 8, 2, verbs.AccessAll)
	s, _ := p.Get()
	if err := p.Put(s); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(s); err != ErrNotOwned {
		t.Fatalf("double free = %v", err)
	}
	qs, _ := q.Get()
	if err := p.Put(qs); err != ErrNotOwned {
		t.Fatalf("foreign slot = %v", err)
	}
	if err := p.Put(nil); err != ErrNotOwned {
		t.Fatalf("nil slot = %v", err)
	}
}

func TestPoolBadGeometry(t *testing.T) {
	d := newDev(t)
	if _, err := NewPool(d, 0, 4, verbs.AccessAll); err == nil {
		t.Fatal("zero slot size accepted")
	}
	if _, err := NewPool(d, 8, 0, verbs.AccessAll); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestPoolSlotsDistinct(t *testing.T) {
	d := newDev(t)
	p, _ := NewPool(d, 16, 8, verbs.AccessAll)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		s, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.Index] {
			t.Fatalf("slot %d handed out twice", s.Index)
		}
		seen[s.Index] = true
		s.Buf[0] = byte(s.Index) // each slot has its own storage
	}
}

func TestSlabAllocRelease(t *testing.T) {
	d := newDev(t)
	s, err := NewSlab(d, 1024, verbs.AccessAll)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Size() != 128 { // rounded to 64
		t.Fatalf("size = %d, want 128", b1.Size())
	}
	if len(b1.Buf) != 128 {
		t.Fatalf("buf len = %d", len(b1.Buf))
	}
	if b1.RemoteAddr() != s.MR().Base() {
		t.Fatalf("remote addr = %#x", b1.RemoteAddr())
	}
	if s.Used() != 128 {
		t.Fatalf("used = %d", s.Used())
	}
	b2, _ := s.Alloc(64)
	if b2.RemoteAddr() != s.MR().Base()+128 {
		t.Fatalf("second block addr = %#x", b2.RemoteAddr())
	}
	if err := s.Release(b1); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 64 {
		t.Fatalf("used after release = %d", s.Used())
	}
	// First-fit reuses the front hole.
	b3, _ := s.Alloc(64)
	if b3.RemoteAddr() != s.MR().Base() {
		t.Fatalf("first-fit violated: %#x", b3.RemoteAddr())
	}
}

func TestSlabExhaustionAndCoalesce(t *testing.T) {
	d := newDev(t)
	s, _ := NewSlab(d, 256, verbs.AccessAll)
	a, _ := s.Alloc(64)
	b, _ := s.Alloc(64)
	c, _ := s.Alloc(64)
	dd, _ := s.Alloc(64)
	if _, err := s.Alloc(1); err != ErrExhausted {
		t.Fatalf("exhausted slab = %v", err)
	}
	// Release in an order that requires both-side coalescing.
	s.Release(b)
	s.Release(dd)
	if s.NumHoles() != 2 {
		t.Fatalf("holes = %d, want 2", s.NumHoles())
	}
	s.Release(c) // bridges b..d into one hole
	if s.NumHoles() != 1 {
		t.Fatalf("holes after coalesce = %d, want 1", s.NumHoles())
	}
	s.Release(a)
	if s.NumHoles() != 1 || s.Used() != 0 {
		t.Fatalf("full release: holes=%d used=%d", s.NumHoles(), s.Used())
	}
	// Whole arena available again.
	if _, err := s.Alloc(256); err != nil {
		t.Fatalf("arena not fully recovered: %v", err)
	}
}

func TestSlabDoubleFree(t *testing.T) {
	d := newDev(t)
	s, _ := NewSlab(d, 256, verbs.AccessAll)
	b, _ := s.Alloc(64)
	if err := s.Release(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(b); err != ErrNotOwned {
		t.Fatalf("double free = %v", err)
	}
	if err := s.Release(nil); err != ErrNotOwned {
		t.Fatalf("nil release = %v", err)
	}
}

func TestSlabBadSize(t *testing.T) {
	d := newDev(t)
	if _, err := NewSlab(d, 0, verbs.AccessAll); err == nil {
		t.Fatal("zero slab accepted")
	}
	s, _ := NewSlab(d, 256, verbs.AccessAll)
	if _, err := s.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := s.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

// Property: any interleaving of allocs and releases preserves the
// invariant used + sum(holes) == arena size, and releasing everything
// restores a single hole.
func TestSlabInvariantProperty(t *testing.T) {
	d := newDev(t)
	f := func(ops []uint8) bool {
		s, err := NewSlab(d, 4096, verbs.AccessAll)
		if err != nil {
			return false
		}
		var live []*Block
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int(op%63) + 1
				b, err := s.Alloc(n)
				if err == nil {
					live = append(live, b)
				}
			} else {
				i := int(op) % len(live)
				if err := s.Release(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			sum := 0
			for _, b := range live {
				sum += b.Size()
			}
			if s.Used() != sum {
				return false
			}
		}
		for _, b := range live {
			if err := s.Release(b); err != nil {
				return false
			}
		}
		return s.Used() == 0 && s.NumHoles() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectory(t *testing.T) {
	dir := NewDirectory()
	rb := RemoteBuffer{Addr: 0x2000, RKey: 7, Len: 4096}
	dir.Publish(3, BufferID(1), rb)
	got, ok := dir.Lookup(3, BufferID(1))
	if !ok || got != rb {
		t.Fatalf("lookup = %+v %v", got, ok)
	}
	if _, ok := dir.Lookup(3, BufferID(2)); ok {
		t.Fatal("missing id found")
	}
	if _, ok := dir.Lookup(4, BufferID(1)); ok {
		t.Fatal("missing rank found")
	}
	if dir.Len() != 1 {
		t.Fatalf("len = %d", dir.Len())
	}
	if got := dir.MustLookup(3, BufferID(1)); got != rb {
		t.Fatalf("MustLookup = %+v", got)
	}
}

func TestDirectoryMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDirectory().MustLookup(0, 0)
}

func TestRemoteBufferContains(t *testing.T) {
	rb := RemoteBuffer{Addr: 0x1000, RKey: 1, Len: 100}
	if !rb.Contains(0, 100) {
		t.Fatal("full range should fit")
	}
	if rb.Contains(1, 100) {
		t.Fatal("overflow accepted")
	}
	if !rb.Contains(99, 1) {
		t.Fatal("tail byte rejected")
	}
	if rb.Contains(^uint64(0), 2) {
		t.Fatal("wraparound accepted")
	}
}
