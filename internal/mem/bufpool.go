package mem

import (
	"sync"
	"sync/atomic"
)

// BufPool is a free list of fixed-size scratch buffers for hot-path
// staging: ledger entries under construction, packed-message frames,
// atomic result words. Unlike Pool it is plain heap memory (nothing is
// registered) — it exists purely so the per-operation fast path stops
// hitting the allocator and the GC.
//
// Get returns a buffer of exactly the requested length. Requests no
// larger than the pool's buffer size are served from the free list;
// oversize requests fall through to a fresh allocation (and are not
// recycled by Put). The free list is bounded so a burst cannot pin
// memory forever.
type BufPool struct {
	size int // capacity of every pooled buffer
	max  int // free-list bound

	//photon:lock bufpool 10
	mu   sync.Mutex
	free [][]byte

	hits   atomic.Int64
	misses atomic.Int64
}

// NewBufPool builds a pool of size-byte buffers keeping at most max
// buffers on the free list (max <= 0 selects a default of 256).
func NewBufPool(size, max int) *BufPool {
	if size <= 0 {
		size = 64
	}
	if max <= 0 {
		max = 256
	}
	return &BufPool{size: size, max: max}
}

// BufSize reports the capacity of pooled buffers.
func (p *BufPool) BufSize() int { return p.size }

// Get returns a length-n buffer. Pooled buffers keep their full
// capacity, so the caller may re-slice up to BufSize.
func (p *BufPool) Get(n int) []byte {
	if n > p.size {
		p.misses.Add(1)
		return make([]byte, n)
	}
	p.mu.Lock()
	if l := len(p.free); l > 0 {
		b := p.free[l-1]
		p.free[l-1] = nil
		p.free = p.free[:l-1]
		p.mu.Unlock()
		p.hits.Add(1)
		return b[:n]
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return make([]byte, n, p.size)
}

// GetOwned returns a length-n buffer that will never be recycled: use
// it when the buffer's ownership transfers to the caller (for example
// Completion.Data). Pool accounting still records the miss so the
// counters reflect true allocator pressure.
func (p *BufPool) GetOwned(n int) []byte {
	p.misses.Add(1)
	return make([]byte, n)
}

// Put returns a buffer obtained from Get to the free list. Buffers of
// foreign capacity (oversize Get results, or slices from elsewhere) are
// dropped for the GC. Put of nil is a no-op.
func (p *BufPool) Put(b []byte) {
	if cap(b) != p.size {
		return
	}
	b = b[:p.size]
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Counters reports lifetime free-list hits and misses.
func (p *BufPool) Counters() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}
