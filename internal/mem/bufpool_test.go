package mem

import "testing"

func TestBufPoolRecycle(t *testing.T) {
	p := NewBufPool(64, 4)
	b := p.Get(16)
	if len(b) != 16 || cap(b) != 64 {
		t.Fatalf("Get(16) = len %d cap %d, want 16/64", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(32)
	if cap(b2) != 64 {
		t.Fatalf("recycled buffer cap = %d, want 64", cap(b2))
	}
	hits, misses := p.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestBufPoolOversize(t *testing.T) {
	p := NewBufPool(64, 4)
	b := p.Get(128)
	if len(b) != 128 {
		t.Fatalf("oversize Get = len %d, want 128", len(b))
	}
	p.Put(b) // foreign capacity: dropped
	if _, misses := p.Counters(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	// The free list must not have adopted the oversize buffer.
	if got := p.Get(8); cap(got) != 64 {
		t.Fatalf("pool handed back foreign buffer (cap %d)", cap(got))
	}
}

func TestBufPoolBound(t *testing.T) {
	p := NewBufPool(32, 2)
	bufs := [][]byte{p.Get(32), p.Get(32), p.Get(32)}
	for _, b := range bufs {
		p.Put(b)
	}
	if n := len(p.free); n != 2 {
		t.Fatalf("free list holds %d buffers, want bound of 2", n)
	}
}

// TestBufPoolPutForeignCapacity pins Put's guard: only buffers whose
// capacity is exactly BufSize() enter the free list. Anything else — a
// slice from elsewhere, an undersized allocation, a capacity-limited
// three-index reslice, nil — is dropped for the GC, because adopting a
// foreign buffer would hand later Get callers a slice that cannot be
// re-sliced to BufSize (or worse, shares an array with the original
// owner).
func TestBufPoolPutForeignCapacity(t *testing.T) {
	p := NewBufPool(64, 4)
	if got := p.BufSize(); got != 64 {
		t.Fatalf("BufSize = %d, want 64", got)
	}
	foreign := [][]byte{
		nil,
		make([]byte, 16),      // undersized
		make([]byte, 65),      // oversized
		make([]byte, 64, 128), // right length, wrong capacity
		p.Get(64)[:8:8],       // pooled array, but capacity clipped by a 3-index reslice
	}
	for i, b := range foreign {
		p.Put(b)
		if n := len(p.free); n != 0 {
			t.Fatalf("case %d: Put adopted a buffer with cap %d (free list %d), want rejection", i, cap(b), n)
		}
	}
	// A plain reslice keeps the pooled capacity and must be accepted —
	// callers legitimately Put the re-sliced heads they worked with.
	b := p.Get(64)
	p.Put(b[:8])
	if len(p.free) != 1 {
		t.Fatal("Put rejected a full-capacity reslice of a pooled buffer")
	}
	// Recycled buffers come back at full capacity regardless of the
	// length they were returned with.
	if got := p.Get(64); len(got) != 64 || cap(got) != 64 {
		t.Fatalf("recycled Get = len %d cap %d, want 64/64", len(got), cap(got))
	}
}

func TestBufPoolGetOwned(t *testing.T) {
	p := NewBufPool(64, 4)
	b := p.GetOwned(16)
	p.Put(b) // cap 16 != 64: not adopted
	if len(p.free) != 0 {
		t.Fatal("GetOwned buffer must not enter the free list")
	}
}
