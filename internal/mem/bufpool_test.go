package mem

import "testing"

func TestBufPoolRecycle(t *testing.T) {
	p := NewBufPool(64, 4)
	b := p.Get(16)
	if len(b) != 16 || cap(b) != 64 {
		t.Fatalf("Get(16) = len %d cap %d, want 16/64", len(b), cap(b))
	}
	p.Put(b)
	b2 := p.Get(32)
	if cap(b2) != 64 {
		t.Fatalf("recycled buffer cap = %d, want 64", cap(b2))
	}
	hits, misses := p.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters = %d hits %d misses, want 1/1", hits, misses)
	}
}

func TestBufPoolOversize(t *testing.T) {
	p := NewBufPool(64, 4)
	b := p.Get(128)
	if len(b) != 128 {
		t.Fatalf("oversize Get = len %d, want 128", len(b))
	}
	p.Put(b) // foreign capacity: dropped
	if _, misses := p.Counters(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	// The free list must not have adopted the oversize buffer.
	if got := p.Get(8); cap(got) != 64 {
		t.Fatalf("pool handed back foreign buffer (cap %d)", cap(got))
	}
}

func TestBufPoolBound(t *testing.T) {
	p := NewBufPool(32, 2)
	bufs := [][]byte{p.Get(32), p.Get(32), p.Get(32)}
	for _, b := range bufs {
		p.Put(b)
	}
	if n := len(p.free); n != 2 {
		t.Fatalf("free list holds %d buffers, want bound of 2", n)
	}
}

func TestBufPoolGetOwned(t *testing.T) {
	p := NewBufPool(64, 4)
	b := p.GetOwned(16)
	p.Put(b) // cap 16 != 64: not adopted
	if len(p.free) != 0 {
		t.Fatal("GetOwned buffer must not enter the free list")
	}
}
