// Package mem manages registered memory for the Photon middleware.
//
// RDMA transports require every buffer the NIC touches to be registered
// (pinned) ahead of time, and registration is expensive — so middleware
// like Photon registers a few large arenas once and sub-allocates from
// them. This package provides the three pieces Photon needs:
//
//   - Pool: a fixed-slot pool carved from one registration, used for
//     eager bounce buffers and ledger backing stores.
//   - Slab: a first-fit variable-size allocator with coalescing over a
//     registered arena, used for rendezvous staging when the caller's
//     buffer is not registered.
//   - Directory: the rkey directory mapping (rank, buffer id) to the
//     remote base address and rkey, populated during the out-of-band
//     exchange at Photon init time.
package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"photon/internal/verbs"
)

// Errors returned by allocators.
var (
	ErrExhausted = errors.New("mem: allocator exhausted")
	ErrNotOwned  = errors.New("mem: block not owned by this allocator")
	ErrBadSize   = errors.New("mem: invalid size")
)

// RemoteBuffer names a remotely accessible region: what the rkey
// directory stores and what Photon operations target.
type RemoteBuffer struct {
	Addr uint64 // remote virtual base address
	RKey uint32
	Len  int
}

// Contains reports whether [off, off+n) lies within the buffer.
func (rb RemoteBuffer) Contains(off uint64, n int) bool {
	return off+uint64(n) <= uint64(rb.Len) && off+uint64(n) >= off
}

// ---------------------------------------------------------------------
// Pool: fixed-size slots over one registration.
// ---------------------------------------------------------------------

// Slot is one fixed-size buffer handed out by a Pool.
type Slot struct {
	Index int
	Buf   []byte
	pool  *Pool
}

// RemoteAddr returns the NIC virtual address of the slot's first byte.
func (s *Slot) RemoteAddr() uint64 {
	return s.pool.mr.Base() + uint64(s.Index*s.pool.slotSize)
}

// Pool is a fixed-slot registered buffer pool.
type Pool struct {
	mr       *verbs.MR
	arena    []byte
	slotSize int
	//photon:lock mempool 20
	mu   sync.Mutex
	free []int
}

// NewPool registers one arena of count*slotSize bytes on dev and carves
// it into count slots.
func NewPool(dev *verbs.Device, slotSize, count int, access verbs.Access) (*Pool, error) {
	if slotSize <= 0 || count <= 0 {
		return nil, fmt.Errorf("%w: slot=%d count=%d", ErrBadSize, slotSize, count)
	}
	arena := make([]byte, slotSize*count)
	mr, err := dev.RegMR(arena, access)
	if err != nil {
		return nil, err
	}
	p := &Pool{mr: mr, arena: arena, slotSize: slotSize, free: make([]int, count)}
	for i := range p.free {
		p.free[i] = count - 1 - i // pop from the end -> ascending order out
	}
	return p, nil
}

// MR returns the pool's registration (for rkey publication).
func (p *Pool) MR() *verbs.MR { return p.mr }

// SlotSize returns the fixed slot size.
func (p *Pool) SlotSize() int { return p.slotSize }

// Cap returns the total slot count.
func (p *Pool) Cap() int { return len(p.arena) / p.slotSize }

// Available returns the number of free slots.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Get pops a free slot, or returns ErrExhausted.
func (p *Pool) Get() (*Slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return nil, ErrExhausted
	}
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return &Slot{Index: i, Buf: p.arena[i*p.slotSize : (i+1)*p.slotSize], pool: p}, nil
}

// Put returns a slot to the pool. Returning a foreign slot is an error.
func (p *Pool) Put(s *Slot) error {
	if s == nil || s.pool != p {
		return ErrNotOwned
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) >= p.Cap() {
		return ErrNotOwned // double free
	}
	for _, f := range p.free {
		if f == s.Index {
			return ErrNotOwned // double free
		}
	}
	p.free = append(p.free, s.Index)
	return nil
}

// ---------------------------------------------------------------------
// Slab: variable-size first-fit allocator with coalescing.
// ---------------------------------------------------------------------

// Block is a variable-size allocation from a Slab.
type Block struct {
	Buf  []byte
	off  int
	size int
	slab *Slab
}

// RemoteAddr returns the NIC virtual address of the block's first byte.
func (b *Block) RemoteAddr() uint64 { return b.slab.base + uint64(b.off) }

// Size returns the usable size of the block (>= the requested size).
func (b *Block) Size() int { return b.size }

type hole struct{ off, size int }

// Slab allocates variable-size blocks from one registered arena using
// first-fit with free-list coalescing; allocations are rounded up to
// the alignment granule (64 bytes, a cache line).
type Slab struct {
	mr    *verbs.MR // nil when constructed over an externally registered arena
	base  uint64
	arena []byte
	//photon:lock slab 30
	mu    sync.Mutex
	holes []hole // sorted by offset, non-adjacent
	used  int
}

// SlabAlign is the allocation granule.
const SlabAlign = 64

// NewSlab registers an arena of the given size on dev.
func NewSlab(dev *verbs.Device, size int, access verbs.Access) (*Slab, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: size=%d", ErrBadSize, size)
	}
	size = (size + SlabAlign - 1) &^ (SlabAlign - 1)
	arena := make([]byte, size)
	mr, err := dev.RegMR(arena, access)
	if err != nil {
		return nil, err
	}
	s, err := NewSlabOver(arena, mr.Base())
	if err != nil {
		return nil, err
	}
	s.mr = mr
	return s, nil
}

// NewSlabOver builds a slab over an arena that was registered
// externally (for example by a Photon backend); base is the arena's
// remote virtual base address. len(arena) must be a positive multiple
// of SlabAlign.
func NewSlabOver(arena []byte, base uint64) (*Slab, error) {
	if len(arena) == 0 || len(arena)%SlabAlign != 0 {
		return nil, fmt.Errorf("%w: arena=%d", ErrBadSize, len(arena))
	}
	return &Slab{base: base, arena: arena, holes: []hole{{0, len(arena)}}}, nil
}

// MR returns the slab's registration, or nil for slabs built with
// NewSlabOver.
func (s *Slab) MR() *verbs.MR { return s.mr }

// Base returns the arena's remote virtual base address.
func (s *Slab) Base() uint64 { return s.base }

// Used returns the number of bytes currently allocated.
func (s *Slab) Used() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Free bytes remaining (may be fragmented).
func (s *Slab) Free() int { return len(s.arena) - s.Used() }

// Alloc returns a block of at least n bytes, or ErrExhausted when no
// hole fits.
func (s *Slab) Alloc(n int) (*Block, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSize, n)
	}
	n = (n + SlabAlign - 1) &^ (SlabAlign - 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, h := range s.holes {
		if h.size >= n {
			b := &Block{Buf: s.arena[h.off : h.off+n], off: h.off, size: n, slab: s}
			if h.size == n {
				s.holes = append(s.holes[:i], s.holes[i+1:]...)
			} else {
				s.holes[i] = hole{h.off + n, h.size - n}
			}
			s.used += n
			return b, nil
		}
	}
	return nil, ErrExhausted
}

// Release returns a block to the slab, coalescing adjacent holes.
func (s *Slab) Release(b *Block) error {
	if b == nil || b.slab != s {
		return ErrNotOwned
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Find insertion point by offset.
	i := sort.Search(len(s.holes), func(i int) bool { return s.holes[i].off >= b.off })
	// Detect double-free: overlapping an existing hole.
	if i < len(s.holes) && b.off+b.size > s.holes[i].off {
		return ErrNotOwned
	}
	if i > 0 && s.holes[i-1].off+s.holes[i-1].size > b.off {
		return ErrNotOwned
	}
	h := hole{b.off, b.size}
	// Coalesce with successor.
	if i < len(s.holes) && h.off+h.size == s.holes[i].off {
		h.size += s.holes[i].size
		s.holes = append(s.holes[:i], s.holes[i+1:]...)
	}
	// Coalesce with predecessor.
	if i > 0 && s.holes[i-1].off+s.holes[i-1].size == h.off {
		s.holes[i-1].size += h.size
	} else {
		s.holes = append(s.holes, hole{})
		copy(s.holes[i+1:], s.holes[i:])
		s.holes[i] = h
	}
	s.used -= b.size
	b.slab = nil
	return nil
}

// NumHoles reports free-list fragmentation (test/ablation aid).
func (s *Slab) NumHoles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.holes)
}

// ---------------------------------------------------------------------
// Directory: the rkey directory.
// ---------------------------------------------------------------------

// BufferID names one published buffer class at a rank. Photon publishes
// its ledgers and eager buffers under well-known IDs at init.
type BufferID uint32

// Directory maps (rank, id) to remote buffer descriptors. Reads
// dominate after init, so it uses an RWMutex.
type Directory struct {
	//photon:lock dir 40
	mu sync.RWMutex
	m  map[dirKey]RemoteBuffer
}

type dirKey struct {
	rank int
	id   BufferID
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{m: make(map[dirKey]RemoteBuffer)}
}

// Publish records rank's buffer under id.
func (d *Directory) Publish(rank int, id BufferID, rb RemoteBuffer) {
	d.mu.Lock()
	d.m[dirKey{rank, id}] = rb
	d.mu.Unlock()
}

// Lookup resolves rank's buffer id.
func (d *Directory) Lookup(rank int, id BufferID) (RemoteBuffer, bool) {
	d.mu.RLock()
	rb, ok := d.m[dirKey{rank, id}]
	d.mu.RUnlock()
	return rb, ok
}

// MustLookup is Lookup that panics on a missing entry; used after init
// for buffers that are published unconditionally.
func (d *Directory) MustLookup(rank int, id BufferID) RemoteBuffer {
	rb, ok := d.Lookup(rank, id)
	if !ok {
		panic(fmt.Sprintf("mem: no directory entry for rank %d id %d", rank, id))
	}
	return rb
}

// Len returns the number of published entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m)
}
