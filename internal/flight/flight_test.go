package flight

import (
	"strings"
	"testing"
	"time"

	"photon/internal/trace"
)

func mkEvents(n int) []trace.Event {
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = trace.Event{
			Seq:  uint64(i + 1),
			When: time.Unix(0, int64(1000+i)),
			Kind: trace.KindPost,
			Rank: 0,
			Arg:  uint64(i + 1),
			Msg:  "put.direct",
		}
	}
	return evs
}

// TestRecorderBoundsAndSeq checks FIFO eviction at the record cap,
// per-record event-window trimming, and monotonic sequence numbers
// that keep counting across evictions.
func TestRecorderBoundsAndSeq(t *testing.T) {
	r := NewRecorder(3, 4)
	for i := 0; i < 5; i++ {
		r.Add(Record{Peer: i, Events: mkEvents(10)})
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want cap 3", len(recs))
	}
	// Oldest two evicted: peers 2,3,4 remain with seqs 3,4,5.
	for i, rec := range recs {
		if rec.Peer != i+2 || rec.Seq != uint64(i+3) {
			t.Fatalf("record %d: peer=%d seq=%d, want peer=%d seq=%d",
				i, rec.Peer, rec.Seq, i+2, i+3)
		}
		if len(rec.Events) != 4 {
			t.Fatalf("record %d holds %d events, want window 4", i, len(rec.Events))
		}
		// Window keeps the most recent events.
		if rec.Events[3].Seq != 10 {
			t.Fatalf("window kept wrong tail: last seq %d, want 10", rec.Events[3].Seq)
		}
	}
}

// TestRecorderHook checks the auto-dump hook fires per Add with the
// finalized record.
func TestRecorderHook(t *testing.T) {
	r := NewRecorder(8, 2)
	var got []uint64
	r.SetHook(func(rec Record) { got = append(got, rec.Seq) })
	r.Add(Record{})
	r.Add(Record{})
	r.SetHook(nil)
	r.Add(Record{})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("hook fired with seqs %v, want [1 2]", got)
	}
}

// TestWriteJSON checks the dump carries transition metadata, readable
// event kinds, and the summary blocks.
func TestWriteJSON(t *testing.T) {
	r := NewRecorder(4, 8)
	r.Add(Record{
		WhenNS: 12345,
		Rank:   0,
		Peer:   1,
		From:   "healthy",
		To:     "down",
		Events: mkEvents(2),
		Gauges: map[string]int64{"peers_down": 1},
		Hists:  []HistSummary{{Name: "put/initiator", N: 9, MeanNS: 800}},
		Health: []PeerHealthInfo{{Rank: 1, State: "down", LastTransitionNS: 12345}},
	})
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"from": "healthy"`, `"to": "down"`, `"kind": "post"`,
		`"put.direct"`, `"peers_down": 1`, `"put/initiator"`,
		`"state": "down"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
