// Package flight is Photon's fault flight recorder: a bounded
// in-memory black box that captures the engine's state at the moment
// the fault plane sees a peer degrade. Each record snapshots the tail
// of the trace ring (the last W op-lifecycle events — what the engine
// was doing), the metrics registry (latency summaries and gauges —
// how it was doing), and the per-peer health table (who else was
// degraded). Records accumulate FIFO up to a cap, so the black box
// after an incident holds the first transitions, not just the last.
//
// Recording runs on the fault plane — peer-health transitions are
// rare, cold events — so snapshots may allocate freely; nothing here
// is ever on an op hot path. The recorder itself is a plain
// mutex-guarded ring, safe for concurrent Add and Snapshot callers.
package flight

import (
	"encoding/json"
	"io"
	"sync"

	"photon/internal/trace"
)

// HistSummary is one latency histogram reduced to its headline
// numbers (full bucket data stays with the metrics plane; the black
// box wants a compact, human-readable residue).
type HistSummary struct {
	Name   string  `json:"name"`
	N      int64   `json:"n"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// PeerHealthInfo is one row of the health table at snapshot time.
type PeerHealthInfo struct {
	Rank             int    `json:"rank"`
	State            string `json:"state"`
	LastTransitionNS int64  `json:"last_transition_ns,omitempty"` // UnixNano; 0 = never
}

// Record is one flight-recorder entry: the engine state captured at a
// single peer-health transition.
type Record struct {
	Seq    uint64 `json:"seq"`
	WhenNS int64  `json:"when_ns"` // wall clock UnixNano at capture
	Rank   int    `json:"rank"`    // observing rank
	Peer   int    `json:"peer"`    // peer that transitioned
	From   string `json:"from"`
	To     string `json:"to"`
	Reason string `json:"reason,omitempty"` // non-health trigger (e.g. collective abort)

	Events []trace.Event    `json:"-"` // last-W trace events (JSON via eventJSON)
	Gauges map[string]int64 `json:"gauges,omitempty"`
	Hists  []HistSummary    `json:"hists,omitempty"`
	Health []PeerHealthInfo `json:"health,omitempty"`
}

// Recorder is the bounded black box. The zero value is unusable; use
// NewRecorder.
type Recorder struct {
	//photon:lock flight 10
	mu     sync.Mutex
	recs   []Record
	max    int
	window int
	seq    uint64
	hook   func(Record)
}

// NewRecorder builds a recorder holding up to maxRecords records, each
// retaining up to window trace events.
func NewRecorder(maxRecords, window int) *Recorder {
	if maxRecords < 1 {
		maxRecords = 1
	}
	if window < 0 {
		window = 0
	}
	return &Recorder{max: maxRecords, window: window}
}

// Window returns the per-record trace-event retention bound.
func (r *Recorder) Window() int { return r.window }

// SetHook installs fn to run (on the recording goroutine) after every
// Add — the chaos harness hangs its auto-dump here. Pass nil to clear.
func (r *Recorder) SetHook(fn func(Record)) {
	r.mu.Lock()
	r.hook = fn
	r.mu.Unlock()
}

// Add appends one record, trimming its event list to the window,
// assigning its sequence number, and evicting the oldest record past
// the cap. The installed hook, if any, runs before Add returns.
func (r *Recorder) Add(rec Record) {
	if len(rec.Events) > r.window {
		rec.Events = rec.Events[len(rec.Events)-r.window:]
	}
	r.mu.Lock()
	r.seq++
	rec.Seq = r.seq
	r.recs = append(r.recs, rec)
	if len(r.recs) > r.max {
		// Shift rather than reslice so evicted records are released.
		copy(r.recs, r.recs[len(r.recs)-r.max:])
		r.recs = r.recs[:r.max]
	}
	hook := r.hook
	r.mu.Unlock()
	if hook != nil {
		hook(rec)
	}
}

// Len reports the current record count.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Records returns a copy of the stored records, oldest first.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// eventJSON is the readable JSON form of one trace event.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	TNS    int64  `json:"t_ns"` // UnixNano
	Kind   string `json:"kind"`
	Rank   int    `json:"rank"`
	Peer   int    `json:"peer,omitempty"`
	Arg    uint64 `json:"arg"`
	Arg2   uint64 `json:"arg2,omitempty"`
	PeerNS int64  `json:"peer_ns,omitempty"`
	Msg    string `json:"msg"`
}

// recordJSON wraps Record with the converted event list.
type recordJSON struct {
	Record
	Events []eventJSON `json:"events"`
}

// WriteJSON dumps every stored record as indented JSON, oldest first,
// with trace events converted to a readable form (kind names, UnixNano
// timestamps).
func (r *Recorder) WriteJSON(w io.Writer) error {
	recs := r.Records()
	out := struct {
		Records []recordJSON `json:"records"`
	}{Records: make([]recordJSON, 0, len(recs))}
	for i := range recs {
		rj := recordJSON{Record: recs[i]}
		for _, ev := range recs[i].Events {
			rj.Events = append(rj.Events, eventJSON{
				Seq:    ev.Seq,
				TNS:    ev.When.UnixNano(),
				Kind:   ev.Kind.String(),
				Rank:   ev.Rank,
				Peer:   ev.Peer,
				Arg:    ev.Arg,
				Arg2:   ev.Arg2,
				PeerNS: ev.PeerNS,
				Msg:    ev.Msg,
			})
		}
		out.Records = append(out.Records, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
