package runtime_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
	"photon/internal/runtime"
)

const waitT = 10 * time.Second

// job boots n localities, registers actions via reg, and starts them.
func job(t *testing.T, n int, reg func(l *runtime.Locality)) []*runtime.Locality {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	locs := make([]*runtime.Locality, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph, err := core.Init(cl.Backend(r), core.Config{})
			if err != nil {
				errs[r] = err
				return
			}
			l := runtime.NewLocality(ph, runtime.Config{Timeout: waitT})
			if reg != nil {
				reg(l)
			}
			l.Start()
			locs[r] = l
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, l := range locs {
			if l != nil {
				l.Shutdown()
			}
		}
	})
	return locs
}

func TestCallRoundTrip(t *testing.T) {
	locs := job(t, 2, func(l *runtime.Locality) {
		l.RegisterAction("echo", func(ctx *runtime.Context) ([]byte, error) {
			return append([]byte("echo:"), ctx.Payload...), nil
		})
	})
	f, err := locs[0].Call(1, runtime.ActionIDFor("echo"), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Wait(waitT)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hello" {
		t.Fatalf("reply = %q", out)
	}
}

func TestCallCarriesSource(t *testing.T) {
	locs := job(t, 3, func(l *runtime.Locality) {
		l.RegisterAction("who", func(ctx *runtime.Context) ([]byte, error) {
			return []byte{byte(ctx.Src), byte(ctx.Rt.Rank())}, nil
		})
	})
	f, _ := locs[2].Call(1, runtime.ActionIDFor("who"), nil)
	out, err := f.Wait(waitT)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 1 {
		t.Fatalf("src/rank = %v", out)
	}
}

func TestApplyFireAndForget(t *testing.T) {
	var hits sync.Map
	locs := job(t, 2, func(l *runtime.Locality) {
		l.RegisterAction("mark", func(ctx *runtime.Context) ([]byte, error) {
			hits.Store(string(ctx.Payload), true)
			return nil, nil
		})
	})
	if err := locs[0].Apply(1, runtime.ActionIDFor("mark"), []byte("m1")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitT)
	for {
		if _, ok := hits.Load("m1"); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("apply never executed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	locs := job(t, 2, func(l *runtime.Locality) {
		l.RegisterAction("fail", func(ctx *runtime.Context) ([]byte, error) {
			return nil, fmt.Errorf("deliberate failure on %d", ctx.Rt.Rank())
		})
	})
	f, _ := locs[0].Call(1, runtime.ActionIDFor("fail"), nil)
	_, err := f.Wait(waitT)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure on 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownActionError(t *testing.T) {
	locs := job(t, 2, nil)
	f, _ := locs[0].Call(1, runtime.ActionIDFor("nope"), nil)
	_, err := f.Wait(waitT)
	if err == nil || !strings.Contains(err.Error(), "unknown action") {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrier(t *testing.T) {
	locs := job(t, 4, nil)
	var before, after sync.Map
	var wg sync.WaitGroup
	for r, l := range locs {
		wg.Add(1)
		go func(r int, l *runtime.Locality) {
			defer wg.Done()
			before.Store(r, true)
			if err := l.Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
				return
			}
			for k := 0; k < 4; k++ {
				if _, ok := before.Load(k); !ok {
					t.Errorf("rank %d passed before rank %d entered", r, k)
				}
			}
			after.Store(r, true)
			if err := l.Barrier(); err != nil { // reusable
				t.Errorf("rank %d barrier 2: %v", r, err)
			}
		}(r, l)
	}
	wg.Wait()
}

func TestNestedCallsFromHandlers(t *testing.T) {
	// forward: rank1 handler calls rank2, returns its answer.
	locs := job(t, 3, func(l *runtime.Locality) {
		l.RegisterAction("leaf", func(ctx *runtime.Context) ([]byte, error) {
			return []byte{42}, nil
		})
		l.RegisterAction("forward", func(ctx *runtime.Context) ([]byte, error) {
			f, err := ctx.Rt.Call(2, runtime.ActionIDFor("leaf"), nil)
			if err != nil {
				return nil, err
			}
			return f.Wait(waitT)
		})
	})
	f, _ := locs[0].Call(1, runtime.ActionIDFor("forward"), nil)
	out, err := f.Wait(waitT)
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("nested call: %v %v", err, out)
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	locs := job(t, 2, func(l *runtime.Locality) {
		l.RegisterAction("double", func(ctx *runtime.Context) ([]byte, error) {
			v := binary.LittleEndian.Uint64(ctx.Payload)
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, v*2)
			return out, nil
		})
	})
	const n = 200
	futs := make([]*runtime.Future, n)
	for i := 0; i < n; i++ {
		body := make([]byte, 8)
		binary.LittleEndian.PutUint64(body, uint64(i))
		f, err := locs[0].Call(1, runtime.ActionIDFor("double"), body)
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	for i, f := range futs {
		out, err := f.Wait(waitT)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(out); got != uint64(i*2) {
			t.Fatalf("call %d = %d", i, got)
		}
	}
	c := locs[1].Counters()
	if c.ParcelsExecuted < n {
		t.Fatalf("executed = %d", c.ParcelsExecuted)
	}
}

func TestLargeParcelRendezvous(t *testing.T) {
	locs := job(t, 2, func(l *runtime.Locality) {
		l.RegisterAction("sum", func(ctx *runtime.Context) ([]byte, error) {
			var s uint64
			for _, b := range ctx.Payload {
				s += uint64(b)
			}
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, s)
			return out, nil
		})
	})
	big := make([]byte, 128*1024)
	var want uint64
	for i := range big {
		big[i] = byte(i)
		want += uint64(byte(i))
	}
	f, _ := locs[0].Call(1, runtime.ActionIDFor("sum"), big)
	out, err := f.Wait(waitT)
	if err != nil || binary.LittleEndian.Uint64(out) != want {
		t.Fatalf("large parcel: %v sum=%d want=%d", err, binary.LittleEndian.Uint64(out), want)
	}
}

func TestActionNameCollisionDetected(t *testing.T) {
	locs := job(t, 1, nil)
	l := locs[0]
	// Same name re-registration is allowed.
	if _, err := l.RegisterAction("x", func(*runtime.Context) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RegisterAction("x", func(*runtime.Context) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatalf("re-registration rejected: %v", err)
	}
}

func TestShutdownResolvesFutures(t *testing.T) {
	locs := job(t, 2, func(l *runtime.Locality) {
		l.RegisterAction("never", func(ctx *runtime.Context) ([]byte, error) {
			time.Sleep(time.Hour)
			return nil, nil
		})
	})
	// Don't actually dispatch to the sleeping handler (it would leak);
	// call an action that does not exist at a stopped locality instead.
	f, err := locs[0].Call(1, runtime.ActionIDFor("ghost"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// It resolves with unknown-action error; now shut down and verify
	// further sends fail.
	if _, err := f.Wait(waitT); err == nil {
		t.Fatal("expected unknown-action error")
	}
	locs[0].Shutdown()
	if err := locs[0].Apply(1, runtime.ActionIDFor("ghost"), nil); err != runtime.ErrStopped {
		t.Fatalf("apply after shutdown: %v", err)
	}
	locs[0].Shutdown() // idempotent
}

func TestGASPutGet(t *testing.T) {
	locs := job(t, 3, nil)
	gas := make([]*runtime.GlobalArray, 3)
	var wg sync.WaitGroup
	for r, l := range locs {
		wg.Add(1)
		go func(r int, l *runtime.Locality) {
			defer wg.Done()
			g, err := runtime.NewGlobalArray(l, 4096)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			gas[r] = g
		}(r, l)
	}
	wg.Wait()
	g := gas[0]
	if g.TotalBytes() != 3*4096 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes())
	}
	// Put into rank 1's block, read it back from rank 2's perspective.
	payload := []byte("global address space payload")
	idx := uint64(4096 + 128)
	f, err := g.Put(idx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(waitT); err != nil {
		t.Fatal(err)
	}
	f2, err := gas[2].Get(idx, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.Wait(waitT)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("gas get: %v %q", err, got)
	}
	// Owner math.
	rank, off, err := g.Owner(idx)
	if err != nil || rank != 1 || off != 128 {
		t.Fatalf("owner = %d %d %v", rank, off, err)
	}
	if _, _, err := g.Owner(uint64(g.TotalBytes())); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestGASAtomics(t *testing.T) {
	locs := job(t, 2, nil)
	gas := make([]*runtime.GlobalArray, 2)
	var wg sync.WaitGroup
	for r, l := range locs {
		wg.Add(1)
		go func(r int, l *runtime.Locality) {
			defer wg.Done()
			gas[r], _ = runtime.NewGlobalArray(l, 64)
		}(r, l)
	}
	wg.Wait()
	// Both ranks hammer one counter word on rank 1.
	idx := uint64(64 + 8)
	const per = 50
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f, err := gas[r].FetchAdd(idx, 1)
				if err != nil {
					t.Errorf("rank %d fadd: %v", r, err)
					return
				}
				if _, err := f.Value(waitT); err != nil {
					t.Errorf("rank %d fadd wait: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	f, _ := gas[0].FetchAdd(idx, 0)
	v, err := f.Value(waitT)
	if err != nil || v != 2*per {
		t.Fatalf("counter = %d (err %v), want %d", v, err, 2*per)
	}
	// CAS.
	fc, _ := gas[0].CompSwap(idx, 2*per, 7)
	if v, err := fc.Value(waitT); err != nil || v != 2*per {
		t.Fatalf("cas prior = %d %v", v, err)
	}
}

func TestGASValidation(t *testing.T) {
	locs := job(t, 1, nil)
	if _, err := runtime.NewGlobalArray(locs[0], 7); err == nil {
		t.Fatal("misaligned block accepted")
	}
	g, err := runtime.NewGlobalArray(locs[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Put(60, make([]byte, 16)); err == nil {
		t.Fatal("cross-block put accepted")
	}
	if _, err := g.Get(60, 16); err == nil {
		t.Fatal("cross-block get accepted")
	}
	if _, err := g.FetchAdd(4, 1); err == nil {
		t.Fatal("misaligned atomic accepted")
	}
}

func TestActionIDStable(t *testing.T) {
	if runtime.ActionIDFor("foo") != runtime.ActionIDFor("foo") {
		t.Fatal("action IDs not stable")
	}
	if runtime.ActionIDFor("foo") == runtime.ActionIDFor("bar") {
		t.Fatal("suspicious collision")
	}
}
