package runtime

import (
	"errors"
	"fmt"
	"sync"

	"photon/internal/core"
	"photon/internal/mem"
)

// GAS errors.
var (
	ErrOutOfRange = errors.New("runtime: global address out of range")
	ErrGeometry   = errors.New("runtime: invalid global array geometry")
)

// GlobalArray is a block-cyclic-free (plain block) distributed byte
// array: element i lives on rank i/blockBytes at offset i%blockBytes.
// Puts and gets are Photon one-sided operations returning futures;
// 8-byte words additionally support remote atomics. This is the
// network-managed global address space a message-driven runtime layers
// over RMA middleware.
type GlobalArray struct {
	l          *Locality
	blockBytes int
	local      []byte
	//photon:lock gaslocal 40
	localLk sync.Locker
	descs   []mem.RemoteBuffer
}

// NewGlobalArray collectively creates an array of size*blockBytes
// bytes, one block per rank. Every rank must call it with the same
// blockBytes, in the same creation order relative to other collective
// setup.
func NewGlobalArray(l *Locality, blockBytes int) (*GlobalArray, error) {
	if blockBytes <= 0 || blockBytes%8 != 0 {
		return nil, fmt.Errorf("%w: blockBytes=%d (must be positive, 8-aligned)", ErrGeometry, blockBytes)
	}
	local := make([]byte, blockBytes)
	rb, lk, err := l.ph.RegisterBuffer(local)
	if err != nil {
		return nil, err
	}
	descs, err := l.ph.ExchangeBuffers(rb)
	if err != nil {
		return nil, err
	}
	return &GlobalArray{l: l, blockBytes: blockBytes, local: local, localLk: lk, descs: descs}, nil
}

// BlockBytes returns the per-rank block size.
func (g *GlobalArray) BlockBytes() int { return g.blockBytes }

// TotalBytes returns the global array length.
func (g *GlobalArray) TotalBytes() int { return g.blockBytes * g.l.size }

// Owner maps a global byte index to (rank, offset).
func (g *GlobalArray) Owner(index uint64) (int, uint64, error) {
	if index >= uint64(g.TotalBytes()) {
		return 0, 0, fmt.Errorf("%w: %d >= %d", ErrOutOfRange, index, g.TotalBytes())
	}
	return int(index / uint64(g.blockBytes)), index % uint64(g.blockBytes), nil
}

// Local returns this rank's block and the read-locker guarding it
// against remote writes.
func (g *GlobalArray) Local() ([]byte, sync.Locker) { return g.local, g.localLk }

// Put writes data at the global index, resolving the future when the
// local buffer is reusable and the data is ordered toward visibility.
func (g *GlobalArray) Put(index uint64, data []byte) (*Future, error) {
	rank, off, err := g.Owner(index)
	if err != nil {
		return nil, err
	}
	if off+uint64(len(data)) > uint64(g.blockBytes) {
		return nil, fmt.Errorf("%w: put of %d bytes crosses block boundary", ErrOutOfRange, len(data))
	}
	rid, f := g.l.registerFutureForRID(nil)
	for {
		err := g.l.ph.PutWithCompletion(rank, data, g.descs[rank], off, rid, 0)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, core.ErrWouldBlock) {
			g.l.takeFuture(rid &^ bitFuture)
			return nil, err
		}
		g.l.ph.Progress()
	}
}

// Get reads n bytes at the global index into a fresh buffer, resolved
// by the returned future.
func (g *GlobalArray) Get(index uint64, n int) (*Future, error) {
	rank, off, err := g.Owner(index)
	if err != nil {
		return nil, err
	}
	if off+uint64(n) > uint64(g.blockBytes) {
		return nil, fmt.Errorf("%w: get of %d bytes crosses block boundary", ErrOutOfRange, n)
	}
	buf := make([]byte, n)
	rid, f := g.l.registerFutureForRID(buf)
	if err := g.l.ph.GetWithCompletion(rank, buf, g.descs[rank], off, rid, 0); err != nil {
		g.l.takeFuture(rid &^ bitFuture)
		return nil, err
	}
	return f, nil
}

// FetchAdd atomically adds delta to the 8-byte word at the global
// index (which must be 8-aligned); the future's Value is the prior
// word.
func (g *GlobalArray) FetchAdd(index uint64, delta uint64) (*Future, error) {
	rank, off, err := g.Owner(index)
	if err != nil {
		return nil, err
	}
	if off%8 != 0 {
		return nil, fmt.Errorf("%w: misaligned atomic at %d", ErrOutOfRange, index)
	}
	rid, f := g.l.registerFutureForRID(nil)
	if err := g.l.ph.FetchAdd(rank, g.descs[rank], off, delta, rid); err != nil {
		g.l.takeFuture(rid &^ bitFuture)
		return nil, err
	}
	return f, nil
}

// CompSwap atomically compare-and-swaps the 8-byte word at the global
// index; the future's Value is the prior word.
func (g *GlobalArray) CompSwap(index uint64, compare, swap uint64) (*Future, error) {
	rank, off, err := g.Owner(index)
	if err != nil {
		return nil, err
	}
	if off%8 != 0 {
		return nil, fmt.Errorf("%w: misaligned atomic at %d", ErrOutOfRange, index)
	}
	rid, f := g.l.registerFutureForRID(nil)
	if err := g.l.ph.CompSwap(rank, g.descs[rank], off, compare, swap, rid); err != nil {
		g.l.takeFuture(rid &^ bitFuture)
		return nil, err
	}
	return f, nil
}
