// Package runtime is a miniature message-driven runtime system in the
// HPX-5 mold — localities, typed actions, parcels, and futures — built
// directly on Photon's put-with-completion primitive. It reproduces the
// paper's integration story: a parcel transport does not want two-sided
// matching, it wants data delivered one-sidedly with a completion
// identifier the scheduler can dispatch on, which is exactly what the
// PWC ledger provides.
//
// A parcel names an action (a registered handler), carries a payload,
// and optionally a continuation: a future at the sender that the
// handler's return value resolves. Parcels ride Photon Sends whose
// remote RID carries the parcel tag; the locality's dispatcher harvests
// remote completions, decodes parcels, and runs handlers on a bounded
// worker pool. Local completions route back to futures, which is how
// the global-address-space layer (gas.go) turns one-sided puts and gets
// into awaitable operations.
//
// RID space: the runtime claims bits 62 (parcels) and 61 (local future
// routing). Applications sharing a Photon instance with the runtime
// must keep those bits clear in their own RIDs; collectives.Comm claims
// bit 63 and must not share a Photon instance with a running Locality
// (its completions would be consumed by the dispatcher).
package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/core"
)

// RID tag bits claimed by the runtime.
const (
	bitParcel = uint64(1) << 62
	bitFuture = uint64(1) << 61
)

// Errors returned by the runtime. ErrTimeout wraps core.ErrTimeout,
// so errors.Is against either name matches timeouts from this layer.
var (
	ErrStopped        = errors.New("runtime: locality stopped")
	ErrUnknownAction  = errors.New("runtime: unknown action")
	ErrActionConflict = errors.New("runtime: action name hash collision")
	ErrTimeout        = fmt.Errorf("runtime: wait timed out: %w", core.ErrTimeout)
)

// ActionID names a registered handler, stable across ranks (FNV-1a of
// the action name).
type ActionID uint32

// Context is what a handler receives.
type Context struct {
	// Rt is the executing locality.
	Rt *Locality
	// Src is the rank that sent the parcel.
	Src int
	// Payload is the parcel body (owned by the handler).
	Payload []byte
}

// Handler executes one parcel. Its return value resolves the sender's
// continuation future (if the parcel carried one); a returned error
// resolves the future with that error.
type Handler func(ctx *Context) ([]byte, error)

// Config tunes a locality.
type Config struct {
	// Workers bounds concurrently executing handlers (default 64).
	Workers int
	// Timeout bounds internal waits like Barrier (default 30s; <=0
	// waits forever).
	Timeout time.Duration
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
}

// Counters reports locality activity.
type Counters struct {
	ParcelsSent     int64
	ParcelsExecuted int64
	FuturesResolved int64
}

// Future is a single-assignment value produced by a remote action or a
// one-sided operation.
type Future struct {
	ch     chan futResult
	once   sync.Once
	preset []byte // resolution data when the completion carries none
	// (one-sided gets deliver into the caller's buffer)
}

type futResult struct {
	data  []byte
	value uint64
	err   error
}

func newFuture() *Future { return &Future{ch: make(chan futResult, 1)} }

func (f *Future) set(data []byte, value uint64, err error) {
	if data == nil && err == nil {
		data = f.preset
	}
	f.once.Do(func() { f.ch <- futResult{data: data, value: value, err: err} })
}

// Wait blocks until the future resolves; a non-positive timeout waits
// forever.
func (f *Future) Wait(timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		r := <-f.ch
		f.ch <- r // leave resolved for repeat waits
		return r.data, r.err
	}
	select {
	case r := <-f.ch:
		f.ch <- r
		return r.data, r.err
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// Value waits and returns the 64-bit payload of atomic-style futures.
func (f *Future) Value(timeout time.Duration) (uint64, error) {
	if timeout <= 0 {
		r := <-f.ch
		f.ch <- r
		return r.value, r.err
	}
	select {
	case r := <-f.ch:
		f.ch <- r
		return r.value, r.err
	case <-time.After(timeout):
		return 0, ErrTimeout
	}
}

// Locality is one rank's runtime instance.
type Locality struct {
	ph   *core.Photon
	cfg  Config
	rank int
	size int

	//photon:lock act 10
	actMu   sync.RWMutex
	actions map[ActionID]Handler
	names   map[ActionID]string

	//photon:lock fut 20
	futMu   sync.Mutex
	futures map[uint64]*Future
	nextFut uint64

	seq atomic.Uint64

	workers chan struct{}
	stop    chan struct{}
	stopped atomic.Bool
	done    sync.WaitGroup

	// barrier state
	barrierGen atomic.Uint64
	//photon:lock bar 30
	barMu  sync.Mutex
	barGen map[uint64]*barState

	counters struct {
		sent, executed, resolved atomic.Int64
	}
}

type barState struct {
	count   int
	release chan struct{}
}

// Internal action names.
const (
	actReply   = "__runtime_reply"
	actBarrier = "__runtime_barrier"
)

// NewLocality wraps a Photon instance. The caller registers actions,
// then calls Start; Start must be called on every rank before any rank
// sends parcels (a collective Barrier right after Start is idiomatic).
func NewLocality(ph *core.Photon, cfg Config) *Locality {
	cfg.setDefaults()
	l := &Locality{
		ph:      ph,
		cfg:     cfg,
		rank:    ph.Rank(),
		size:    ph.Size(),
		actions: make(map[ActionID]Handler),
		names:   make(map[ActionID]string),
		futures: make(map[uint64]*Future),
		nextFut: 1,
		workers: make(chan struct{}, cfg.Workers),
		stop:    make(chan struct{}),
		barGen:  make(map[uint64]*barState),
	}
	// Internal actions.
	must := func(name string, h Handler) {
		if _, err := l.RegisterAction(name, h); err != nil {
			panic(err)
		}
	}
	must(actReply, l.handleReply)
	must(actBarrier, l.handleBarrier)
	return l
}

// Rank returns the locality's rank.
func (l *Locality) Rank() int { return l.rank }

// Size returns the job size.
func (l *Locality) Size() int { return l.size }

// Photon exposes the underlying middleware (for GAS setup).
func (l *Locality) Photon() *core.Photon { return l.ph }

// Counters returns an activity snapshot.
func (l *Locality) Counters() Counters {
	return Counters{
		ParcelsSent:     l.counters.sent.Load(),
		ParcelsExecuted: l.counters.executed.Load(),
		FuturesResolved: l.counters.resolved.Load(),
	}
}

// ActionIDFor computes the stable ID for an action name.
func ActionIDFor(name string) ActionID {
	h := fnv.New32a()
	h.Write([]byte(name))
	return ActionID(h.Sum32())
}

// RegisterAction installs a handler under the name's stable ID. Every
// rank must register the same actions before Start.
func (l *Locality) RegisterAction(name string, h Handler) (ActionID, error) {
	id := ActionIDFor(name)
	l.actMu.Lock()
	defer l.actMu.Unlock()
	if prev, ok := l.names[id]; ok {
		if prev != name {
			return 0, fmt.Errorf("%w: %q vs %q", ErrActionConflict, prev, name)
		}
		l.actions[id] = h // re-registration replaces
		return id, nil
	}
	l.names[id] = name
	l.actions[id] = h
	return id, nil
}

// Start launches the dispatcher.
func (l *Locality) Start() {
	l.done.Add(1)
	go l.dispatch()
}

// Shutdown stops the dispatcher and waits for it to exit. In-flight
// handlers finish; unresolved futures resolve with ErrStopped.
func (l *Locality) Shutdown() {
	if l.stopped.Swap(true) {
		return
	}
	close(l.stop)
	l.done.Wait()
	l.futMu.Lock()
	for id, f := range l.futures {
		delete(l.futures, id)
		f.set(nil, 0, ErrStopped)
	}
	l.futMu.Unlock()
}

// newFutureID registers a fresh future.
func (l *Locality) newFutureID() (uint64, *Future) {
	f := newFuture()
	l.futMu.Lock()
	id := l.nextFut
	l.nextFut++
	l.futures[id] = f
	l.futMu.Unlock()
	return id, f
}

func (l *Locality) takeFuture(id uint64) (*Future, bool) {
	l.futMu.Lock()
	f, ok := l.futures[id]
	if ok {
		delete(l.futures, id)
	}
	l.futMu.Unlock()
	return f, ok
}

// registerFutureForRID attaches a future to a local-completion RID (GAS
// operations use this). buf, when non-nil, becomes the future's data if
// the completion itself carries none (one-sided gets fill the caller's
// buffer directly).
func (l *Locality) registerFutureForRID(buf []byte) (uint64, *Future) {
	id, f := l.newFutureID()
	f.preset = buf
	return bitFuture | id, f
}

// Parcel wire fixed-part lengths shared by the encoders and the
// decode-side short-frame checks.
const (
	parcelHdrLen   = 4 + 8 // action4 | cont8; payload follows
	replyHdrLen    = 8 + 1 // cont8 | failed1; body follows
	barrierBodyLen = 8     // generation8
)

// parcel wire format: [action4][cont8][payload...]
func encodeParcel(action ActionID, cont uint64, payload []byte) []byte {
	b := make([]byte, parcelHdrLen+len(payload))
	binary.LittleEndian.PutUint32(b[0:], uint32(action))
	binary.LittleEndian.PutUint64(b[4:], cont)
	copy(b[parcelHdrLen:], payload)
	return b
}

// Apply sends a fire-and-forget parcel.
func (l *Locality) Apply(rank int, action ActionID, payload []byte) error {
	return l.send(rank, action, 0, payload)
}

// Call sends a parcel whose handler's return value resolves the
// returned future.
func (l *Locality) Call(rank int, action ActionID, payload []byte) (*Future, error) {
	id, f := l.newFutureID()
	if err := l.send(rank, action, id, payload); err != nil {
		l.takeFuture(id)
		return nil, err
	}
	return f, nil
}

func (l *Locality) send(rank int, action ActionID, cont uint64, payload []byte) error {
	if l.stopped.Load() {
		return ErrStopped
	}
	rid := bitParcel | (l.seq.Add(1) & ((1 << 48) - 1))
	if err := l.ph.SendBlocking(rank, encodeParcel(action, cont, payload), 0, rid); err != nil {
		return err
	}
	l.counters.sent.Add(1)
	return nil
}

// dispatch is the progress/dispatch loop.
func (l *Locality) dispatch() {
	defer l.done.Done()
	idle := 0
	for {
		select {
		case <-l.stop:
			return
		default:
		}
		n := l.ph.Progress()
		for {
			c, ok := l.ph.PopRemote()
			if !ok {
				break
			}
			n++
			if c.RID&bitParcel != 0 {
				l.execParcel(c)
			}
			// Non-parcel remote completions are dropped: under a
			// running locality, all remote traffic is parcels.
		}
		for {
			c, ok := l.ph.PopLocal()
			if !ok {
				break
			}
			n++
			if c.RID&bitFuture != 0 {
				if f, ok := l.takeFuture(c.RID &^ bitFuture); ok {
					f.set(c.Data, c.Value, c.Err)
					l.counters.resolved.Add(1)
				}
			}
		}
		if n == 0 {
			idle++
			gort.Gosched()
			if idle > 256 {
				time.Sleep(5 * time.Microsecond)
			}
		} else {
			idle = 0
		}
	}
}

// execParcel decodes and schedules one parcel on the worker pool.
func (l *Locality) execParcel(c core.Completion) {
	if len(c.Data) < parcelHdrLen {
		return
	}
	action := ActionID(binary.LittleEndian.Uint32(c.Data[0:]))
	cont := binary.LittleEndian.Uint64(c.Data[4:])
	payload := c.Data[parcelHdrLen:]
	l.actMu.RLock()
	h, ok := l.actions[action]
	l.actMu.RUnlock()
	if !ok {
		if cont != 0 {
			l.replyErr(c.Rank, cont, fmt.Sprintf("%v: id %d", ErrUnknownAction, action))
		}
		return
	}
	// Replies run inline on the dispatcher: they only resolve futures
	// and must never be starved by a worker pool full of handlers that
	// are themselves blocked waiting on those futures.
	if action == ActionIDFor(actReply) {
		l.counters.executed.Add(1)
		_, _ = h(&Context{Rt: l, Src: c.Rank, Payload: payload})
		return
	}
	select {
	case l.workers <- struct{}{}:
	case <-l.stop:
		return
	}
	go func() {
		defer func() { <-l.workers }()
		out, err := h(&Context{Rt: l, Src: c.Rank, Payload: payload})
		l.counters.executed.Add(1)
		if cont == 0 {
			return
		}
		if err != nil {
			l.replyErr(c.Rank, cont, err.Error())
			return
		}
		body := make([]byte, replyHdrLen+len(out))
		binary.LittleEndian.PutUint64(body[0:], cont)
		body[8] = 0
		copy(body[replyHdrLen:], out)
		_ = l.send(c.Rank, ActionIDFor(actReply), 0, body)
	}()
}

func (l *Locality) replyErr(rank int, cont uint64, msg string) {
	body := make([]byte, replyHdrLen+len(msg))
	binary.LittleEndian.PutUint64(body[0:], cont)
	body[8] = 1
	copy(body[replyHdrLen:], msg)
	_ = l.send(rank, ActionIDFor(actReply), 0, body)
}

// handleReply resolves a continuation future.
func (l *Locality) handleReply(ctx *Context) ([]byte, error) {
	if len(ctx.Payload) < replyHdrLen {
		return nil, nil
	}
	id := binary.LittleEndian.Uint64(ctx.Payload[0:])
	failed := ctx.Payload[8] == 1
	body := append([]byte(nil), ctx.Payload[replyHdrLen:]...)
	if f, ok := l.takeFuture(id); ok {
		if failed {
			f.set(nil, 0, errors.New(string(body)))
		} else {
			f.set(body, 0, nil)
		}
		l.counters.resolved.Add(1)
	}
	return nil, nil
}

// Barrier blocks until every rank has entered (implemented as parcels
// to rank 0, whose handler holds each caller until the generation
// completes).
func (l *Locality) Barrier() error {
	gen := l.barrierGen.Add(1)
	body := make([]byte, barrierBodyLen)
	binary.LittleEndian.PutUint64(body, gen)
	f, err := l.Call(0, ActionIDFor(actBarrier), body)
	if err != nil {
		return err
	}
	_, err = f.Wait(l.cfg.Timeout)
	return err
}

// handleBarrier runs at rank 0: it blocks the worker until all ranks of
// the generation have arrived, then releases them all at once.
func (l *Locality) handleBarrier(ctx *Context) ([]byte, error) {
	if len(ctx.Payload) < barrierBodyLen {
		return nil, errors.New("runtime: short barrier parcel")
	}
	gen := binary.LittleEndian.Uint64(ctx.Payload)
	l.barMu.Lock()
	st, ok := l.barGen[gen]
	if !ok {
		st = &barState{release: make(chan struct{})}
		l.barGen[gen] = st
	}
	st.count++
	if st.count == l.size {
		close(st.release)
		delete(l.barGen, gen)
	}
	l.barMu.Unlock()
	var expire <-chan time.Time
	if l.cfg.Timeout > 0 {
		t := time.NewTimer(l.cfg.Timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-st.release:
		return nil, nil
	case <-l.stop:
		return nil, ErrStopped
	case <-expire:
		return nil, ErrTimeout
	}
}
