package collectives

// Shrink: the recovery half of the failure-aware collectives. A
// revoked communicator cannot be repaired — its epoch is condemned —
// but its survivors can agree on who is left and continue on a fresh
// communicator with recompiled schedules and a bumped epoch.
//
// Protocol: leader-based two-phase agreement over the engine's
// terminal, eventually-global death latches (a killed rank is latched
// down by every survivor's detector; latches never revert).
//
//	report  every non-leader sends its death bitmap to the lowest comm
//	        rank it believes alive, then waits for that rank's commit,
//	        watching its health. If the believed leader dies, the
//	        survivor re-elects (believed-alive views shrink
//	        monotonically toward the same minimum) and resends.
//	commit  the leader collects reports from every member it believes
//	        alive — re-electing membership as further deaths latch
//	        mid-gather, via the same abort plumbing the collectives
//	        use — then broadcasts the survivor list and new epoch.
//
// The new Comm closes with a fence barrier. Two caveats, documented
// here because they are protocol-inherent rather than bugs: a member
// that dies after the leader committed is a member of the new Comm and
// condemns its first collective (the caller re-Shrinks — epochs are
// cheap); and a leader that dies mid-commit-broadcast can leave the
// survivors split between the new epoch and a re-election that times
// out — callers treating a Shrink error as fatal (restart) stay
// correct. Full consensus would need another round; the paper's
// middleware scope (fail fast, let the runtime above rebuild) does not
// ask for it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"photon/internal/core"
)

// reportRID is the phase-1 RID: src's death-bitmap report.
func (c *Comm) reportRID(src int) uint64 { return rid(c.genBase, kindShrink, 0, 0, src) }

// commitRID is the phase-2 RID: the leader's survivor-list commit.
func (c *Comm) commitRID(leader int) uint64 { return rid(c.genBase, kindShrink, 1, 0, leader) }

// Shrink runs survivor agreement and returns a new communicator over
// the surviving ranks, with schedules recompiled for the new size and
// an epoch bump fencing every stale RID of this communicator. It is
// collective over the survivors: every rank that intends to continue
// must call it (typically after a collective returned ErrCommRevoked;
// calling it on a healthy Comm is legal and shrinks away nothing).
//
// On success the returned Comm is fenced by an internal barrier. When
// Shrink itself fails, the returned Comm may be non-nil alongside the
// error (a member died between agreement and the fence); the caller
// may re-Shrink that Comm or treat the error as fatal.
//
// The parent Comm is unusable afterwards. Shrink may be called at most
// once per Comm (its agreement RIDs are epoch-scoped singletons).
func (c *Comm) Shrink() (*Comm, error) {
	if c.timeout > 0 {
		c.deadline = time.Now().Add(c.timeout)
	} else {
		c.deadline = time.Time{}
	}
	if c.epoch+1 >= maxEpochs {
		return nil, fmt.Errorf("collectives: epoch space exhausted after %d shrinks", c.epoch)
	}

	dead := make([]bool, c.size)
	if d := c.deadRank.Load(); d >= 0 {
		dead[d] = true
	}
	refresh := func() {
		for r := 0; r < c.size; r++ {
			if r != c.rank && !dead[r] && c.ph.PeerHealthState(c.group[r]) == core.PeerDown {
				dead[r] = true
			}
		}
	}
	leaderOf := func() int {
		for r := 0; r < c.size; r++ {
			if r == c.rank || !dead[r] {
				return r
			}
		}
		return c.rank
	}
	// mergeNotice folds a consumed revocation notice into the death
	// view: during Shrink a late notice is information, not a reason
	// to abort the agreement.
	mergeNotice := func(comp core.Completion) {
		if len(comp.Data) >= 2 {
			if d := int(binary.LittleEndian.Uint16(comp.Data)); d < c.size && d != c.rank {
				dead[d] = true
			}
		}
	}

	refresh()
	if leaderOf() == c.rank {
		return c.shrinkLead(dead, refresh, mergeNotice)
	}
	return c.shrinkFollow(dead, refresh, leaderOf, mergeNotice)
}

// deathBitmap encodes dead as the phase-1 report payload.
func (c *Comm) deathBitmap(dead []bool) []byte {
	bm := make([]byte, (c.size+7)/8)
	for r, d := range dead {
		if d {
			bm[r/8] |= 1 << (r % 8)
		}
	}
	return bm
}

// shrinkFollow is the non-leader side: report to the believed leader,
// wait for its commit, re-electing when the believed leader dies.
func (c *Comm) shrinkFollow(dead []bool, refresh func(), leaderOf func() int, mergeNotice func(core.Completion)) (*Comm, error) {
	reported := -1
	for {
		refresh()
		leader := leaderOf()
		if leader == c.rank {
			// Everyone below is dead: this rank leads after all.
			return c.shrinkLead(dead, refresh, mergeNotice)
		}
		if leader != reported {
			err := c.sendNBRaw(leader, c.deathBitmap(dead), 0, c.reportRID(c.rank))
			if err != nil {
				if errors.Is(err, core.ErrPeerDown) {
					dead[leader] = true
					continue
				}
				return nil, err
			}
			c.ph.Flush()
			reported = leader
		}
		c.rid1[0] = c.commitRID(leader)
		c.comp1[0] = core.Completion{}
		err := c.waitAllRaw(c.rid1[:], c.comp1[:], false)
		switch {
		case err == nil:
			return c.applyCommit(c.comp1[0].Data)
		case errors.Is(err, core.ErrWaitAborted):
			mergeNotice(c.spec.Aborted)
			continue
		case errors.Is(err, core.ErrPeerDown):
			if d := c.commRankOf(c.spec.DownRank); d >= 0 {
				dead[d] = true
			}
			continue
		default:
			return nil, err
		}
	}
}

// shrinkLead is the leader side: gather a report from every member
// believed alive (removing members whose death latches mid-gather),
// then broadcast the commit.
func (c *Comm) shrinkLead(dead []bool, refresh func(), mergeNotice func(core.Completion)) (*Comm, error) {
	received := make([]bool, c.size)
	received[c.rank] = true
	for {
		refresh()
		c.rids = c.rids[:0]
		for r := 0; r < c.size; r++ {
			if !dead[r] && !received[r] {
				c.rids = append(c.rids, c.reportRID(r))
			}
		}
		if len(c.rids) == 0 {
			break
		}
		out := c.compsFor(len(c.rids))
		err := c.waitAllRaw(c.rids, out, false)
		// Whatever the outcome, absorb the reports that did arrive.
		for i := range out {
			if out[i].RID == 0 || out[i].Err != nil {
				continue
			}
			src := int(c.rids[i] & (MaxRanks - 1))
			received[src] = true
			for r := 0; r < c.size && r/8 < len(out[i].Data); r++ {
				if r != c.rank && out[i].Data[r/8]&(1<<(r%8)) != 0 {
					dead[r] = true
				}
			}
			out[i] = core.Completion{}
		}
		switch {
		case err == nil:
			continue // re-check: absorbed reports may have named new dead
		case errors.Is(err, core.ErrWaitAborted):
			mergeNotice(c.spec.Aborted)
		case errors.Is(err, core.ErrPeerDown):
			if d := c.commRankOf(c.spec.DownRank); d >= 0 {
				dead[d] = true
			}
		default:
			return nil, err
		}
	}
	// Commit: epoch (8) | count (2) | parent comm ranks (2 each).
	survivors := make([]int, 0, c.size)
	for r := 0; r < c.size; r++ {
		if !dead[r] {
			survivors = append(survivors, r)
		}
	}
	pay := make([]byte, 10+2*len(survivors))
	binary.LittleEndian.PutUint64(pay[0:], c.epoch+1)
	binary.LittleEndian.PutUint16(pay[8:], uint16(len(survivors)))
	for i, r := range survivors {
		binary.LittleEndian.PutUint16(pay[10+2*i:], uint16(r))
	}
	c.lrids = c.lrids[:0]
	for _, r := range survivors {
		if r == c.rank {
			continue
		}
		lrid := uint64(0)
		if c.needFIN(len(pay)) {
			lrid = rid(c.genBase, kindShrink, 2, 0, r)
		}
		err := c.sendNBRaw(r, pay, lrid, c.commitRID(c.rank))
		if err != nil {
			if errors.Is(err, core.ErrPeerDown) {
				// Died after agreeing: still committed — the corpse is a
				// member of the new Comm and will condemn its first
				// collective; survivors re-Shrink from there.
				continue
			}
			return nil, err
		}
		if lrid != 0 {
			c.lrids = append(c.lrids, lrid)
		}
	}
	c.ph.Flush()
	if len(c.lrids) > 0 {
		out := c.compsFor(len(c.lrids))
		err := c.waitAllRaw(c.lrids, out, true)
		c.lrids = c.lrids[:0]
		if err != nil && !errors.Is(err, core.ErrPeerDown) && !errors.Is(err, core.ErrWaitAborted) {
			return nil, err
		}
	}
	return c.buildShrunken(c.epoch+1, survivors)
}

// applyCommit is the follower side of phase 2.
func (c *Comm) applyCommit(pay []byte) (*Comm, error) {
	if len(pay) < 10 {
		return nil, fmt.Errorf("collectives: shrink commit of %d bytes", len(pay))
	}
	epoch := binary.LittleEndian.Uint64(pay[0:])
	n := int(binary.LittleEndian.Uint16(pay[8:]))
	if len(pay) < 10+2*n {
		return nil, fmt.Errorf("collectives: shrink commit names %d survivors in %d bytes", n, len(pay))
	}
	survivors := make([]int, n)
	in := false
	for i := range survivors {
		r := int(binary.LittleEndian.Uint16(pay[10+2*i:]))
		if r >= c.size {
			return nil, fmt.Errorf("collectives: shrink commit names rank %d of %d", r, c.size)
		}
		survivors[i] = r
		in = in || r == c.rank
	}
	if !in {
		return nil, fmt.Errorf("collectives: excluded from shrink commit (presumed dead): %w", ErrCommRevoked)
	}
	return c.buildShrunken(epoch, survivors)
}

// buildShrunken constructs the successor communicator and fences it
// with a barrier so stale-epoch stragglers are behind every member
// before the first real collective.
func (c *Comm) buildShrunken(epoch uint64, survivors []int) (*Comm, error) {
	group := make([]int, len(survivors))
	for i, r := range survivors {
		group[i] = c.group[r]
	}
	nc := newComm(c.ph, c.cfg, group, epoch, c.st)
	c.revoked.Store(true) // parent is retired either way
	if err := nc.Barrier(); err != nil {
		return nc, err
	}
	c.st.shrinks.Add(1)
	return nc, nil
}
