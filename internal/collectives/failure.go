package collectives

// Failure plane: the abort/revoke half of the failure-aware
// collectives (Shrink, the recovery half, lives in shrink.go).
//
// Abort: every wait goes through waitAll, which watches the engine's
// peer-health latches for the ranks it is awaiting and bounds itself
// with the whole-collective deadline; every post-retry loop runs stall
// between attempts. The first observation of a member's death — a
// watched latch, an ErrPeerDown error completion, a fail-fast post, or
// a peer's revocation notice — revokes the communicator.
//
// Revoke: the revoking rank fans a notice out over its dissemination
// out-edges (the barrier schedule's notify set), exactly like a
// barrier notification: a tiny eager send, one per surviving neighbor.
// Every rank that receives a notice is itself revoked and forwards
// once, so the flood covers the communicator in at most
// ceil(log_k N) network latencies — ranks not adjacent to the corpse
// abort in one network latency from their nearest revoked neighbor,
// not after a timeout. Notices are epoch-scoped (RID gen = genBase,
// kindRevoke), so a Shrink successor can never match a predecessor's
// notice.
//
// Revocation is terminal for the epoch: once latched, every collective
// on the Comm — including ones already in flight on other error paths
// — returns an error matching ErrCommRevoked (and core.ErrPeerDown,
// naming the failed rank when known). Recovery is Comm.Shrink.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"photon/internal/core"
	"photon/internal/metrics"
)

// unknownRank is the revocation-notice payload value for "failed rank
// not known" (the notice itself is the only evidence).
const unknownRank = 1<<16 - 1

// enter is the public-entry prologue: a revoked comm fails fast, and
// the whole-collective deadline is armed once — however many rounds
// and waits follow, they all share it.
func (c *Comm) enter() error {
	if c.revoked.Load() {
		return c.revokedErr()
	}
	if c.timeout > 0 {
		c.deadline = time.Now().Add(c.timeout)
	} else {
		c.deadline = time.Time{}
	}
	return nil
}

// Revoked reports whether the communicator has been revoked.
func (c *Comm) Revoked() bool { return c.revoked.Load() }

// compileRevokeEdges derives the revocation flood graph from the
// barrier dissemination schedule: out-edges are the union of every
// round's notify set, in-edges the union of the await sets. Each
// in-edge has one epoch-scoped notice RID this comm's waits watch.
func (c *Comm) compileRevokeEdges() {
	c.barSched = compileBarrier(c.rank, c.size, c.cfg.Radix)
	add := func(set []int, r int) []int {
		for _, x := range set {
			if x == r {
				return set
			}
		}
		return append(set, r)
	}
	for i := range c.barSched.rounds {
		round := &c.barSched.rounds[i]
		for _, to := range round.notify {
			c.revokeOut = add(c.revokeOut, to)
		}
		for _, from := range round.await {
			c.revokeIn = add(c.revokeIn, from)
		}
	}
	for _, from := range c.revokeIn {
		c.revokeRIDs = append(c.revokeRIDs, rid(c.genBase, kindRevoke, 0, 0, from))
	}
}

// stall runs inside the post-retry loops: an arrived revocation
// notice or a downed destination revokes the comm and ends the spin;
// the whole-collective deadline bounds spins no failure explains.
func (c *Comm) stall(dst int) error {
	for _, ar := range c.revokeRIDs {
		if comp, ok := c.ph.TakeRemote(ar); ok {
			return c.revokeFromNotice(comp)
		}
	}
	if c.ph.PeerHealthState(c.group[dst]) == core.PeerDown {
		return c.revoke(dst)
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return fmt.Errorf("collectives: collective deadline exceeded: %w", core.ErrTimeout)
	}
	return nil
}

// stallRaw is stall for Shrink's retry loops: same bounds, no
// revocation side effects, raw sentinels out.
func (c *Comm) stallRaw(dst int) error {
	if c.ph.PeerHealthState(c.group[dst]) == core.PeerDown {
		return fmt.Errorf("collectives: rank %d: %w", dst, core.ErrPeerDown)
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return fmt.Errorf("collectives: shrink deadline exceeded: %w", core.ErrTimeout)
	}
	return nil
}

// sendNBRaw is sendNB for Shrink: backpressure retries bounded by
// stallRaw, errors passed through raw.
func (c *Comm) sendNBRaw(dst int, data []byte, localRID, remoteRID uint64) error {
	for {
		err := c.ph.Send(c.group[dst], data, localRID, remoteRID)
		if err == nil || !errors.Is(err, core.ErrWouldBlock) {
			return err
		}
		if err := c.stallRaw(dst); err != nil {
			return err
		}
		if c.ph.Progress() == 0 {
			c.w.Idle()
		} else {
			c.w.Progressed()
		}
	}
}

// filterPost converts a hard post error: a dead destination revokes
// the comm, everything else passes through.
func (c *Comm) filterPost(err error, dst int) error {
	if errors.Is(err, core.ErrPeerDown) {
		return c.revoke(dst)
	}
	return err
}

// filterWait converts a waitAllRaw error into the comm's failure
// semantics: a watched-rank death or ErrPeerDown completion revokes,
// an arrived notice revokes with the notice's failed rank, timeouts
// and everything else pass through.
func (c *Comm) filterWait(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrWaitAborted):
		return c.revokeFromNotice(c.spec.Aborted)
	case errors.Is(err, core.ErrPeerDown):
		return c.revoke(c.commRankOf(c.spec.DownRank))
	}
	return err
}

// commRankOf translates an engine rank back to a comm rank (-1 when
// the engine rank is not a member). Cold path; linear scan.
func (c *Comm) commRankOf(engineRank int) int {
	for i, er := range c.group {
		if er == engineRank {
			return i
		}
	}
	return -1
}

// revokeFromNotice revokes the comm off a received revocation notice,
// adopting the failed rank its payload names (when known).
func (c *Comm) revokeFromNotice(comp core.Completion) error {
	dead := -1
	if len(comp.Data) >= 2 {
		if d := int(binary.LittleEndian.Uint16(comp.Data)); d < c.size {
			dead = d
		}
	}
	return c.revoke(dead)
}

// revoke latches the communicator revoked (terminal for the epoch),
// records the first known-dead comm rank, fans the revocation notice
// out once, and returns the revocation error every path surfaces.
func (c *Comm) revoke(dead int) error {
	if dead >= 0 && dead < c.size {
		c.deadRank.CompareAndSwap(-1, int64(dead))
	}
	if c.revoked.CompareAndSwap(false, true) {
		c.st.aborts.Add(1)
		c.sendRevokes()
		c.recordAbort()
	}
	return c.revokedErr()
}

// sendRevokes fans the revocation notice out over the surviving
// dissemination out-edges: one 2-byte eager send per neighbor carrying
// the failed comm rank (unknownRank when not known). Bounded
// best-effort — a destination that is down or backpressured past the
// retry budget is skipped; the flood is redundant (every revoked rank
// forwards once) and the deadline still bounds ranks it misses.
func (c *Comm) sendRevokes() {
	var pay [2]byte
	d := c.deadRank.Load()
	if d < 0 {
		d = unknownRank
	}
	binary.LittleEndian.PutUint16(pay[:], uint16(d))
	r := rid(c.genBase, kindRevoke, 0, 0, c.rank)
	for _, dst := range c.revokeOut {
		if dst == int(d) || c.ph.PeerHealthState(c.group[dst]) == core.PeerDown {
			continue
		}
		for tries := 0; tries < 64; tries++ {
			err := c.ph.Send(c.group[dst], pay[:], 0, r)
			if err == nil {
				c.st.revokesSent.Add(1)
				break
			}
			if !errors.Is(err, core.ErrWouldBlock) {
				break
			}
			if c.ph.Progress() == 0 {
				c.w.Idle()
			} else {
				c.w.Progressed()
			}
		}
	}
	c.ph.Flush()
}

// recordAbort feeds the observability plane at the revocation instant:
// the detection→abort latency histogram (time from the engine's
// peer-down latch to this abort) and a reason-tagged flight-recorder
// capture of the failing round.
func (c *Comm) recordAbort() {
	d := c.deadRank.Load()
	if d < 0 {
		return
	}
	er := c.group[d]
	if ns := c.ph.PeerLastTransitionNS(er); ns > 0 {
		if lat := time.Now().UnixNano() - ns; lat >= 0 {
			c.ph.MetricsRegistry().RecordColl(metrics.CollAbort, lat)
		}
	}
	c.ph.CaptureEvent(er, "collective abort")
}

// revokedErr builds the error every operation on a revoked comm
// returns: it matches both ErrCommRevoked and core.ErrPeerDown via
// errors.Is and names the failed rank when known.
func (c *Comm) revokedErr() error {
	if d := c.deadRank.Load(); d >= 0 {
		return fmt.Errorf("collectives: rank %d (engine rank %d) down: %w: %w",
			d, c.group[d], ErrCommRevoked, core.ErrPeerDown)
	}
	return fmt.Errorf("collectives: %w", ErrCommRevoked)
}
