package collectives_test

import (
	"fmt"
	"testing"

	"photon/internal/collectives"
)

// TestManyRankSmoke runs the full collective set at job sizes well past
// anything the unit tests use — 16 and 24 simulated ranks — so the
// schedule compiler, RID space, and credit flow see real fan-out. CI
// runs this under -race.
func TestManyRankSmoke(t *testing.T) {
	for _, tc := range []struct {
		n   int
		cfg collectives.Config
	}{
		{16, collectives.Config{}},
		{24, collectives.Config{Radix: 4}},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d", tc.n), func(t *testing.T) {
			t.Parallel()
			comms := newCommsCfg(t, tc.n, tc.cfg)
			n := tc.n
			runAll(t, comms, func(c *collectives.Comm) error {
				for iter := 0; iter < 3; iter++ {
					if err := c.Barrier(); err != nil {
						return fmt.Errorf("barrier: %w", err)
					}
					sum, err := c.AllreduceScalar(1, collectives.OpSum)
					if err != nil {
						return fmt.Errorf("allreduce: %w", err)
					}
					if sum != float64(n) {
						return fmt.Errorf("allreduce sum = %v, want %d", sum, n)
					}
					// Large vector: ring reduce-scatter + allgather.
					vec := make([]float64, 4*n)
					for i := range vec {
						vec[i] = float64(c.Rank())
					}
					if err := c.AllreduceInPlace(vec, collectives.OpSum); err != nil {
						return fmt.Errorf("ring allreduce: %w", err)
					}
					want := float64(n*(n-1)) / 2
					if vec[0] != want || vec[len(vec)-1] != want {
						return fmt.Errorf("ring allreduce = %v, want %v", vec[0], want)
					}
					blobs := make([][]byte, n)
					for dst := range blobs {
						blobs[dst] = []byte{byte(c.Rank()), byte(dst), byte(iter)}
					}
					out, err := c.Alltoall(blobs)
					if err != nil {
						return fmt.Errorf("alltoall: %w", err)
					}
					for src := range out {
						if out[src][0] != byte(src) || out[src][1] != byte(c.Rank()) {
							return fmt.Errorf("alltoall[%d] = %v", src, out[src])
						}
					}
				}
				return nil
			})
		})
	}
}
