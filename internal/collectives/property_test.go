package collectives_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"photon/internal/backend/vsim"
	"photon/internal/collectives"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
)

// newCommsCfg boots n ranks with a shared communicator config.
func newCommsCfg(t *testing.T, n int, cfg collectives.Config) []*collectives.Comm {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	comms := make([]*collectives.Comm, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph, err := core.Init(cl.Backend(r), core.Config{})
			if err != nil {
				errs[r] = err
				return
			}
			comms[r] = collectives.NewWithConfig(ph, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return comms
}

// approxEq compares reduction results: exact for Min/Max (no rounding),
// relative tolerance for Sum/Prod (combine order differs between the
// schedule-based algorithms and the serial reference).
func approxEq(op collectives.Op, got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	if op == collectives.OpMin || op == collectives.OpMax {
		return got == want
	}
	diff := math.Abs(got - want)
	scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
	return diff <= 1e-9*scale
}

// serialReduce folds the per-rank vectors in rank order — the reference
// every algorithm must match.
func serialReduce(vecs [][]float64, op collectives.Op) []float64 {
	out := append([]float64(nil), vecs[0]...)
	for r := 1; r < len(vecs); r++ {
		for i := range out {
			switch op {
			case collectives.OpSum:
				out[i] += vecs[r][i]
			case collectives.OpMin:
				out[i] = math.Min(out[i], vecs[r][i])
			case collectives.OpMax:
				out[i] = math.Max(out[i], vecs[r][i])
			case collectives.OpProd:
				out[i] *= vecs[r][i]
			}
		}
	}
	return out
}

// TestCollectivesMatchReference drives every collective across job
// sizes 1..17 (non-powers-of-two included), random ops, vector lengths
// spanning all three allreduce algorithms, and random roots, comparing
// each result against a serial in-process reference.
func TestCollectivesMatchReference(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17}
	// Config variants rotate radix, arena ceiling, and forced algorithm
	// so k-nomial trees, the ring, and the tree-compose path all run at
	// sizes where size-based selection alone would not pick them.
	cfgs := []collectives.Config{
		{},
		{Radix: 4, SmallAllreduceMax: 128},
		{Radix: 3, ForceAllreduce: "tree"},
		{SmallAllreduceMax: 64, ForceAllreduce: "ring"},
	}
	ops := []collectives.Op{collectives.OpSum, collectives.OpMin, collectives.OpMax, collectives.OpProd}
	lens := []int{0, 1, 3, 8, 17, 64, 300}
	for si, n := range sizes {
		n := n
		cfg := cfgs[si%len(cfgs)]
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t.Parallel()
			comms := newCommsCfg(t, n, cfg)
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			for trial := 0; trial < 4; trial++ {
				op := ops[rng.Intn(len(ops))]
				L := lens[rng.Intn(len(lens))]
				root := rng.Intn(n)

				// Per-rank vectors. Magnitudes near 1 keep OpProd
				// numerically stable across 17 factors.
				vecs := make([][]float64, n)
				for r := range vecs {
					vecs[r] = make([]float64, L)
					for i := range vecs[r] {
						vecs[r][i] = 0.5 + rng.Float64()
					}
				}
				want := serialReduce(vecs, op)

				// Per-rank blobs for the byte-moving collectives.
				blobs := make([][]byte, n)
				for r := range blobs {
					blobs[r] = make([]byte, rng.Intn(40))
					rng.Read(blobs[r])
				}
				bcastPayload := make([]byte, rng.Intn(500))
				rng.Read(bcastPayload)

				// All-to-all payload matrix: a2a[src][dst].
				a2a := make([][][]byte, n)
				for src := range a2a {
					a2a[src] = make([][]byte, n)
					for dst := range a2a[src] {
						a2a[src][dst] = make([]byte, rng.Intn(30))
						rng.Read(a2a[src][dst])
					}
				}

				runAll(t, comms, func(c *collectives.Comm) error {
					r := c.Rank()
					ar, err := c.Allreduce(vecs[r], op)
					if err != nil {
						return fmt.Errorf("allreduce: %w", err)
					}
					for i := range want {
						if !approxEq(op, ar[i], want[i]) {
							return fmt.Errorf("allreduce[%d] = %v, want %v (op %d, L %d)", i, ar[i], want[i], op, L)
						}
					}
					red, err := c.Reduce(root, vecs[r], op)
					if err != nil {
						return fmt.Errorf("reduce: %w", err)
					}
					if r == root {
						for i := range want {
							if !approxEq(op, red[i], want[i]) {
								return fmt.Errorf("reduce[%d] = %v, want %v", i, red[i], want[i])
							}
						}
					} else if red != nil {
						return fmt.Errorf("non-root reduce result")
					}
					var in []byte
					if r == root {
						in = bcastPayload
					}
					got, err := c.Bcast(root, in)
					if err != nil {
						return fmt.Errorf("bcast: %w", err)
					}
					if !bytes.Equal(got, bcastPayload) {
						return fmt.Errorf("bcast got %d bytes, want %d", len(got), len(bcastPayload))
					}
					ag, err := c.Allgather(blobs[r])
					if err != nil {
						return fmt.Errorf("allgather: %w", err)
					}
					for src := range ag {
						if !bytes.Equal(ag[src], blobs[src]) {
							return fmt.Errorf("allgather[%d] mismatch", src)
						}
					}
					ga, err := c.Gather(root, blobs[r])
					if err != nil {
						return fmt.Errorf("gather: %w", err)
					}
					if r == root {
						for src := range ga {
							if !bytes.Equal(ga[src], blobs[src]) {
								return fmt.Errorf("gather[%d] mismatch", src)
							}
						}
					}
					aa, err := c.Alltoall(a2a[r])
					if err != nil {
						return fmt.Errorf("alltoall: %w", err)
					}
					for src := range aa {
						if !bytes.Equal(aa[src], a2a[src][r]) {
							return fmt.Errorf("alltoall[%d] mismatch", src)
						}
					}
					return c.Barrier()
				})
			}
		})
	}
}

// TestAllreduceInPlaceLarge drives the segmented/pipelined paths with a
// vector large enough to cross multiple ring chunks and bcast segments.
func TestAllreduceInPlaceLarge(t *testing.T) {
	const n, L = 5, 40000 // 320KB encoded: ring path, multi-segment chunks
	comms := newComms(t, n)
	want := make([]float64, L)
	for i := range want {
		for r := 0; r < n; r++ {
			want[i] += float64(r) + float64(i%97)/97
		}
	}
	runAll(t, comms, func(c *collectives.Comm) error {
		vec := make([]float64, L)
		for i := range vec {
			vec[i] = float64(c.Rank()) + float64(i%97)/97
		}
		if err := c.AllreduceInPlace(vec, collectives.OpSum); err != nil {
			return err
		}
		for i := range vec {
			if !approxEq(collectives.OpSum, vec[i], want[i]) {
				return fmt.Errorf("vec[%d] = %v, want %v", i, vec[i], want[i])
			}
		}
		return nil
	})
}

// TestBcastInto exercises the known-length path: no header, deliveries
// posted straight into the caller's buffer, repeated to reuse state.
func TestBcastInto(t *testing.T) {
	const n = 4
	comms := newComms(t, n)
	for _, L := range []int{0, 9, 1000, 100000} {
		payload := make([]byte, L)
		for i := range payload {
			payload[i] = byte(i*13 + L)
		}
		for root := 0; root < n; root += 3 {
			runAll(t, comms, func(c *collectives.Comm) error {
				buf := make([]byte, L)
				if c.Rank() == root {
					copy(buf, payload)
				}
				if err := c.BcastInto(root, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, payload) {
					return fmt.Errorf("rank %d: bcastinto mismatch at L=%d", c.Rank(), L)
				}
				return nil
			})
		}
	}
}
