package collectives_test

import (
	"sync"
	"testing"

	"photon/internal/backend/shm"
	"photon/internal/collectives"
	"photon/internal/core"
)

// TestCollectiveSteadyStateAllocGuard pins the zero-alloc steady state:
// after warmup, a barrier plus a small in-place allreduce allocates
// nothing on any rank. The job runs over the shared-memory backend,
// whose data path is allocation-free, so any allocation measured here
// is the collectives layer's own.
//
// testing.AllocsPerRun counts process-global allocations and runs with
// GOMAXPROCS=1, so the peer ranks iterate in lockstep with the measured
// rank (collectives synchronize them) and their allocations count too —
// the guard covers the whole job, not just rank 0.
func TestCollectiveSteadyStateAllocGuard(t *testing.T) {
	const (
		n      = 4
		warm   = 50
		runs   = 100
		total  = warm + runs + 1 // AllocsPerRun calls f runs+1 times
		vecLen = 8
	)
	cl, err := shm.NewCluster(n, shm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	comms := make([]*collectives.Comm, n)
	var boot sync.WaitGroup
	for r := 0; r < n; r++ {
		boot.Add(1)
		go func(r int) {
			defer boot.Done()
			ph, err := core.Init(cl.Backend(r), core.Config{})
			if err != nil {
				t.Error(err)
				return
			}
			comms[r] = collectives.New(ph, waitT)
		}(r)
	}
	boot.Wait()
	for r := 0; r < n; r++ {
		if comms[r] == nil {
			t.Fatal("boot failed")
		}
	}

	iter := func(c *collectives.Comm, vec []float64) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.AllreduceInPlace(vec, collectives.OpSum)
	}

	// Peer ranks run exactly `total` lockstep iterations; the
	// collectives themselves pace them against the measured rank.
	var wg sync.WaitGroup
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func(c *collectives.Comm) {
			defer wg.Done()
			vec := make([]float64, vecLen)
			for i := 0; i < total; i++ {
				if err := iter(c, vec); err != nil {
					t.Errorf("rank %d iter %d: %v", c.Rank(), i, err)
					return
				}
			}
		}(comms[r])
	}

	vec := make([]float64, vecLen)
	for i := range vec {
		vec[i] = float64(i)
	}
	for i := 0; i < warm; i++ {
		if err := iter(comms[0], vec); err != nil {
			t.Fatalf("warmup iter %d: %v", i, err)
		}
	}
	avg := testing.AllocsPerRun(runs, func() {
		if err := iter(comms[0], vec); err != nil {
			t.Fatal(err)
		}
	})
	wg.Wait()
	if avg != 0 {
		t.Errorf("steady-state barrier+allreduce allocates %.1f times per op, want 0", avg)
	}
}
