package collectives

import (
	"encoding/binary"
	"fmt"

	"photon/internal/core"
)

func imin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------

// barrier runs the radix-k dissemination schedule: each round posts all
// of the round's zero-byte notification sends nonblocking, then reaps
// the awaited set in one wait — one network latency per round. Plain
// sends (not puts) carry the notifications: a nil-payload eager send is
// the cheapest frame both backends can emit, and needs no remote
// buffer or write-path bookkeeping.
func (c *Comm) barrier(gen uint64) error {
	bs := c.barrierSched()
	for r := range bs.rounds {
		round := &bs.rounds[r]
		for _, to := range round.notify {
			if err := c.sendNB(to, nil, 0, rid(gen, kindBarrier, 0, r, c.rank)); err != nil {
				return err
			}
		}
		c.rids = c.rids[:0]
		for _, from := range round.await {
			c.rids = append(c.rids, rid(gen, kindBarrier, 0, r, from))
		}
		out := c.compsFor(len(c.rids))
		if err := c.waitAll(c.rids, out, false); err != nil {
			return err
		}
	}
	// Push any batched credit returns out so a peer that is about to
	// go quiet doesn't strand them.
	c.ph.Flush()
	return nil
}

// ---------------------------------------------------------------------
// Small-vector allreduce: recursive doubling over the registered arena
// ---------------------------------------------------------------------

// allreduceRD reduces vec in place via non-power-of-two recursive
// doubling. Each round is one one-sided put of the current partial
// vector into the partner's (round, bank) arena slot plus one
// completion wait; nothing allocates after the arena is built.
func (c *Comm) allreduceRD(rdgen uint64, vec []float64, op Op) error {
	rd := c.rdSched()
	a, err := c.ensureArena()
	if err != nil {
		return err
	}
	nb := 8 * len(vec)
	bank := int(rdgen & 1)
	buf := c.sendScratch(2 * nb)

	// putSlot encodes the current vector into peer's (round, bank)
	// slot. Puts above the packed-put limit post their scratch half
	// unsnapshotted, so the half is reused only after that transfer's
	// local completion — two alternating halves keep the ACK round
	// trip off the critical path (the wait for a half's previous put
	// overlaps the partner reads in between).
	var pendPut [2]uint64
	seq := 0
	putSlot := func(peer, round int) error {
		half := seq & 1
		seq++
		if pr := pendPut[half]; pr != 0 {
			pendPut[half] = 0
			if _, err := c.wait1(pr, true); err != nil {
				return err
			}
		}
		b := buf[half*nb : half*nb+nb]
		encodeF64Into(b, vec)
		r := rid(rdgen, kindAllreduceRD, 0, round, c.rank)
		if err := c.putNB(peer, b, a.peers[peer], a.off(round, bank), r, r); err != nil {
			return err
		}
		pendPut[half] = r
		return nil
	}
	// drainPuts reaps the outstanding local completions before the
	// call returns (unreaped completions would pile up in the match
	// table, and the scratch halves must be quiescent for the next
	// caller).
	drainPuts := func() error {
		for i, pr := range pendPut {
			if pr != 0 {
				pendPut[i] = 0
				if _, err := c.wait1(pr, true); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// readSlot waits for src's put into this rank's (round, bank) slot
	// and folds (or copies) it into vec under the registration locker.
	readSlot := func(src, round int, combine bool) error {
		if _, err := c.wait1(rid(rdgen, kindAllreduceRD, 0, round, src), false); err != nil {
			return err
		}
		off := a.off(round, bank)
		a.lk.Lock()
		if combine {
			decodeCombineF64(vec, a.buf[off:off+uint64(nb)], op)
		} else {
			decodeF64Into(vec, a.buf[off:off+uint64(nb)])
		}
		a.lk.Unlock()
		return nil
	}

	if rd.foldSender {
		// Fold in: hand the vector to the even partner, then collect
		// the finished result from the fold-out round.
		if err := putSlot(rd.partner, 0); err != nil {
			return err
		}
		if err := readSlot(rd.partner, rd.rounds-1, false); err != nil {
			return err
		}
		return drainPuts()
	}
	if rd.inFold {
		if err := readSlot(rd.partner, 0, true); err != nil {
			return err
		}
	}
	for i, peer := range rd.peers {
		round := 1 + i
		if err := putSlot(peer, round); err != nil {
			return err
		}
		if err := readSlot(peer, round, true); err != nil {
			return err
		}
	}
	if rd.inFold {
		if err := putSlot(rd.partner, rd.rounds-1); err != nil {
			return err
		}
	}
	return drainPuts()
}

// ---------------------------------------------------------------------
// Large-vector allreduce: ring reduce-scatter + allgather
// ---------------------------------------------------------------------

// allreduceRing reduces vec in place with the bandwidth-optimal ring:
// N-1 reduce-scatter steps leave each rank owning one fully reduced
// chunk, N-1 allgather steps circulate the finished chunks. Each rank
// moves 2(N-1)/N of the vector total regardless of N. Sends stage
// through two scratch banks (a bank is reused only after its transfer's
// local completion); receives land in a posted scratch buffer that is
// consumed before the next step posts it again.
func (c *Comm) allreduceRing(gen uint64, vec []float64, op Op) error {
	n := c.size
	right := (c.rank + 1) % n
	left := (c.rank - 1 + n) % n
	L := len(vec)
	bound := func(i int) (int, int) {
		i %= n
		return i * L / n, (i + 1) * L / n
	}
	maxC := 8 * (L/n + 1)
	snd := c.sendScratch(2 * maxC)
	rcv := c.recvScratch(maxC)

	sridAt := func(step int, src int) uint64 { return rid(gen, kindAllreduce, 0, step, src) }
	lridAt := func(step int) uint64 { return rid(gen, kindAllreduce, 1, step, c.rank) }

	// sendChunk stages chunk ci of vec into the step's bank and posts it
	// to the right neighbor; the bank is reclaimed two steps later.
	sendChunk := func(step, ci int) error {
		if step >= 2 {
			if _, err := c.wait1(lridAt(step-2), true); err != nil {
				return err
			}
		}
		slo, shi := bound(ci)
		sb := snd[(step&1)*maxC : (step&1)*maxC+8*(shi-slo)]
		encodeF64Into(sb, vec[slo:shi])
		return c.sendNB(right, sb, lridAt(step), sridAt(step, c.rank))
	}
	// recvChunk posts the step's receive, waits for it, and returns the
	// payload (the posted scratch, or a middleware-owned copy when the
	// left neighbor ran ahead of the posting).
	recvChunk := func(step, ci int) ([]byte, error) {
		rlo, rhi := bound(ci)
		rnb := 8 * (rhi - rlo)
		r := sridAt(step, left)
		_ = c.ph.PostRecv(r, rcv[:rnb])
		comp, err := c.wait1(r, false)
		c.ph.CancelRecv(r)
		if err != nil {
			return nil, err
		}
		if len(comp.Data) != rnb {
			return nil, ErrSizeMismatch
		}
		return comp.Data, nil
	}

	// Reduce-scatter: at step s, send chunk (rank-s) right and fold the
	// incoming chunk (rank-s-1); after n-1 steps this rank owns the
	// fully reduced chunk (rank+1).
	for s := 0; s < n-1; s++ {
		if err := sendChunk(s, c.rank-s+2*n); err != nil {
			return err
		}
		ci := c.rank - s - 1 + 2*n
		data, err := recvChunk(s, ci)
		if err != nil {
			return err
		}
		rlo, rhi := bound(ci)
		decodeCombineF64(vec[rlo:rhi], data, op)
	}
	// Allgather: circulate the finished chunks; incoming chunks are
	// final, so they overwrite rather than fold.
	for s2 := 0; s2 < n-1; s2++ {
		s := n - 1 + s2
		if err := sendChunk(s, c.rank-s2+1+2*n); err != nil {
			return err
		}
		ci := c.rank - s2 + 2*n
		data, err := recvChunk(s, ci)
		if err != nil {
			return err
		}
		rlo, rhi := bound(ci)
		decodeF64Into(vec[rlo:rhi], data)
	}
	// Reclaim the last two in-flight send banks.
	for s := 2*(n-1) - 2; s < 2*(n-1); s++ {
		if s < 0 {
			continue
		}
		if _, err := c.wait1(lridAt(s), true); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Mid-size allreduce: tree reduce + broadcast
// ---------------------------------------------------------------------

// allreduceTree composes a k-nomial reduce to rank 0 with a segmented
// broadcast of the encoded result, sharing one generation across the
// two phases (their RID kinds differ).
func (c *Comm) allreduceTree(gen uint64, vec []float64, op Op) error {
	if err := c.reduceVec(gen, kindReduce, 0, vec, op); err != nil {
		return err
	}
	nb := 8 * len(vec)
	buf := c.sendScratch(nb)
	if c.rank == 0 {
		encodeF64Into(buf, vec)
	}
	if err := c.bcastInto(gen, 0, buf); err != nil {
		return err
	}
	if c.rank != 0 {
		decodeF64Into(vec, buf)
	}
	return nil
}

// ---------------------------------------------------------------------
// Tree reduce
// ---------------------------------------------------------------------

// reduceVec folds the job's vectors into acc along the k-nomial tree:
// child contributions are received into pre-posted scratch (every child
// transfer in flight at once, reaped in one wait), the combined vector
// is forwarded to the parent.
func (c *Comm) reduceVec(gen uint64, kind, root int, acc []float64, op Op) error {
	ts := c.treeSched(root)
	nb := 8 * len(acc)
	if len(ts.children) > 0 {
		rbuf := c.recvScratch(len(ts.children) * nb)
		c.rids = c.rids[:0]
		for i, ch := range ts.children {
			r := rid(gen, kind, 0, 0, ch)
			if nb > 0 {
				_ = c.ph.PostRecv(r, rbuf[i*nb:(i+1)*nb])
			}
			c.rids = append(c.rids, r)
		}
		out := c.compsFor(len(c.rids))
		if err := c.waitAll(c.rids, out, false); err != nil {
			// Withdraw the unconsumed postings so the engine releases
			// its hold on the scratch before the abort unwinds.
			for _, r := range c.rids {
				c.ph.CancelRecv(r)
			}
			return err
		}
		for i := range out {
			c.ph.CancelRecv(c.rids[i])
			if len(out[i].Data) != nb {
				return ErrSizeMismatch
			}
			decodeCombineF64(acc, out[i].Data, op)
			out[i] = core.Completion{}
		}
	}
	if ts.parent >= 0 {
		buf := c.sendScratch(nb)
		encodeF64Into(buf, acc)
		if err := c.trackSend(ts.parent, buf, rid(gen, kind, 1, 0, c.rank), rid(gen, kind, 0, 0, c.rank)); err != nil {
			return err
		}
		return c.drainLocal()
	}
	return nil
}

// ---------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------

// segSize returns the effective pipeline segment size for an L-byte
// payload, scaling up from the configured size if L would otherwise
// exceed the RID layout's segment field.
func (c *Comm) segSize(L int) int {
	seg := c.cfg.SegmentBytes
	for L > 0 && (L+seg-1)/seg > maxSegs-1 {
		seg *= 2
	}
	return seg
}

// fanout forwards one segment to every child of the tree, nonblocking.
// Local RIDs (rendezvous holds) encode the destination in the round
// field so concurrent child transfers of one segment stay distinct.
func (c *Comm) fanout(gen uint64, ts *treeSched, kind, seg int, data []byte) error {
	for _, child := range ts.children {
		if err := c.trackSend(child, data, rid(gen, kind, seg, child, c.rank), rid(gen, kind, seg, 0, c.rank)); err != nil {
			return err
		}
	}
	return nil
}

// bcast is the unknown-length broadcast behind the public Bcast:
// message 0 carries an 8-byte length header plus the first segment, so
// single-segment payloads cost one message and non-roots return the
// delivery buffer itself — no payload copy anywhere but the root's
// header prepend. Larger payloads stream the remaining segments into
// pre-posted receives and forward each as it lands (pipelining: a
// child starts receiving segment s while s+1 is still in transit).
func (c *Comm) bcast(gen uint64, root int, data []byte) ([]byte, error) {
	ts := c.treeSched(root)
	L := len(data)
	seg := c.segSize(L)
	if c.rank == root {
		n0 := imin(seg, L)
		msg0 := c.sendScratch(8 + n0)
		binary.LittleEndian.PutUint64(msg0, uint64(L))
		copy(msg0[8:], data[:n0])
		if err := c.fanout(gen, ts, kindBcast, 0, msg0); err != nil {
			return nil, err
		}
		for s := 1; s*seg < L; s++ {
			hi := imin((s+1)*seg, L)
			if err := c.fanout(gen, ts, kindBcast, s, data[s*seg:hi]); err != nil {
				return nil, err
			}
		}
		if err := c.drainLocal(); err != nil {
			return nil, err
		}
		return data, nil
	}
	comp, err := c.wait1(rid(gen, kindBcast, 0, 0, ts.parent), false)
	if err != nil {
		return nil, err
	}
	if len(comp.Data) < 8 {
		return nil, fmt.Errorf("collectives: bcast header of %d bytes", len(comp.Data))
	}
	L = int(binary.LittleEndian.Uint64(comp.Data))
	if L <= len(comp.Data)-8 {
		// Single segment: forward the message as-is and hand the
		// delivery buffer to the caller.
		if err := c.fanout(gen, ts, kindBcast, 0, comp.Data); err != nil {
			return nil, err
		}
		if err := c.drainLocal(); err != nil {
			return nil, err
		}
		return comp.Data[8 : 8+L], nil
	}
	out := make([]byte, L)
	copy(out, comp.Data[8:])
	for s := 1; s*seg < L; s++ {
		hi := imin((s+1)*seg, L)
		_ = c.ph.PostRecv(rid(gen, kindBcast, s, 0, ts.parent), out[s*seg:hi])
	}
	if err := c.fanout(gen, ts, kindBcast, 0, comp.Data); err != nil {
		return nil, err
	}
	for s := 1; s*seg < L; s++ {
		hi := imin((s+1)*seg, L)
		r := rid(gen, kindBcast, s, 0, ts.parent)
		comp, err := c.wait1(r, false)
		if err != nil {
			// Withdraw the remaining postings before the abort unwinds:
			// out is about to go out of scope and the engine must not
			// keep delivery rights into it.
			for s2 := s; s2*seg < L; s2++ {
				c.ph.CancelRecv(rid(gen, kindBcast, s2, 0, ts.parent))
			}
			return nil, err
		}
		if c.ph.CancelRecv(r) {
			// Arrived before (or larger than) the posting: fold the
			// middleware-owned copy in.
			if len(comp.Data) != hi-s*seg {
				return nil, ErrSizeMismatch
			}
			copy(out[s*seg:hi], comp.Data)
		}
		if err := c.fanout(gen, ts, kindBcast, s, out[s*seg:hi]); err != nil {
			return nil, err
		}
	}
	if err := c.drainLocal(); err != nil {
		return nil, err
	}
	return out, nil
}

// bcastInto is the known-length broadcast: every rank's buf has the
// same length, so there is no header round and every segment receive is
// pre-posted straight into buf. Empty payloads are a no-op.
func (c *Comm) bcastInto(gen uint64, root int, buf []byte) error {
	L := len(buf)
	if L == 0 {
		return nil
	}
	ts := c.treeSched(root)
	seg := c.segSize(L)
	S := (L + seg - 1) / seg
	if c.rank == root {
		for s := 0; s < S; s++ {
			hi := imin((s+1)*seg, L)
			if err := c.fanout(gen, ts, kindBcast, s, buf[s*seg:hi]); err != nil {
				return err
			}
		}
		return c.drainLocal()
	}
	for s := 0; s < S; s++ {
		hi := imin((s+1)*seg, L)
		_ = c.ph.PostRecv(rid(gen, kindBcast, s, 0, ts.parent), buf[s*seg:hi])
	}
	for s := 0; s < S; s++ {
		hi := imin((s+1)*seg, L)
		r := rid(gen, kindBcast, s, 0, ts.parent)
		comp, err := c.wait1(r, false)
		if err != nil {
			// Withdraw the remaining postings into the caller's buf
			// before the abort unwinds.
			for s2 := s; s2 < S; s2++ {
				c.ph.CancelRecv(rid(gen, kindBcast, s2, 0, ts.parent))
			}
			return err
		}
		if c.ph.CancelRecv(r) {
			if len(comp.Data) != hi-s*seg {
				return ErrSizeMismatch
			}
			copy(buf[s*seg:hi], comp.Data)
		}
		if err := c.fanout(gen, ts, kindBcast, s, buf[s*seg:hi]); err != nil {
			return err
		}
	}
	return c.drainLocal()
}

// ---------------------------------------------------------------------
// Gather / Allgather / Alltoall
// ---------------------------------------------------------------------

// gather: non-roots post their blob and drain; the root reaps all N-1
// transfers in one wait and hands each delivery buffer to the caller.
func (c *Comm) gather(gen uint64, root int, data []byte) ([][]byte, error) {
	if c.rank != root {
		if err := c.trackSend(root, data, rid(gen, kindGather, 1, 0, c.rank), rid(gen, kindGather, 0, 0, c.rank)); err != nil {
			return nil, err
		}
		return nil, c.drainLocal()
	}
	out := make([][]byte, c.size)
	out[root] = append([]byte(nil), data...)
	if c.size == 1 {
		return out, nil
	}
	c.rids = c.rids[:0]
	for src := 0; src < c.size; src++ {
		if src != root {
			c.rids = append(c.rids, rid(gen, kindGather, 0, 0, src))
		}
	}
	comps := c.compsFor(len(c.rids))
	if err := c.waitAll(c.rids, comps, false); err != nil {
		return nil, err
	}
	for i := range comps {
		src := int(c.rids[i] & (MaxRanks - 1))
		out[src] = comps[i].Data
		comps[i] = core.Completion{}
	}
	return out, nil
}

// allgather: ring with zero-copy forwarding — each received blob is
// both the result entry and the next step's carry, never re-staged.
func (c *Comm) allgather(gen uint64, data []byte) ([][]byte, error) {
	out := make([][]byte, c.size)
	out[c.rank] = append([]byte(nil), data...)
	if c.size == 1 {
		return out, nil
	}
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	carry := out[c.rank]
	for step := 0; step < c.size-1; step++ {
		if err := c.trackSend(right, carry, rid(gen, kindAllgather, 1, step, c.rank), rid(gen, kindAllgather, 0, step, c.rank)); err != nil {
			return nil, err
		}
		comp, err := c.wait1(rid(gen, kindAllgather, 0, step, left), false)
		if err != nil {
			return nil, err
		}
		// The blob received at step s originated at rank-1-s.
		origin := (c.rank - 1 - step + 2*c.size) % c.size
		out[origin] = comp.Data
		carry = comp.Data
	}
	return out, c.drainLocal()
}

// alltoall: all N-1 sends are posted before any wait, then the N-1
// inbound transfers are reaped together — the exchange runs at link
// rate instead of serializing on per-peer round trips.
func (c *Comm) alltoall(gen uint64, blobs [][]byte) ([][]byte, error) {
	out := make([][]byte, c.size)
	out[c.rank] = append([]byte(nil), blobs[c.rank]...)
	if c.size == 1 {
		return out, nil
	}
	for step := 1; step < c.size; step++ {
		dst := (c.rank + step) % c.size
		if err := c.trackSend(dst, blobs[dst], rid(gen, kindAlltoall, 1, step, c.rank), rid(gen, kindAlltoall, 0, step, c.rank)); err != nil {
			return nil, err
		}
	}
	c.rids = c.rids[:0]
	for step := 1; step < c.size; step++ {
		src := (c.rank - step + c.size) % c.size
		c.rids = append(c.rids, rid(gen, kindAlltoall, 0, step, src))
	}
	comps := c.compsFor(len(c.rids))
	if err := c.waitAll(c.rids, comps, false); err != nil {
		return nil, err
	}
	for i := range comps {
		src := int(c.rids[i] & (MaxRanks - 1))
		out[src] = comps[i].Data
		comps[i] = core.Completion{}
	}
	return out, c.drainLocal()
}
