package collectives

import (
	"encoding/binary"
	"fmt"
	"sync"

	"photon/internal/mem"
)

// collArena is the registered scratch region behind the small-vector
// recursive-doubling allreduce: every rank pins one buffer of
// rounds × 2 banks × slot bytes and exchanges descriptors, after which
// each RD round is a single one-sided put into the partner's slot plus
// a completion wait — no per-call allocation, registration, or staging.
//
// Slot addressing: offset(round, bank) = ((round*2)+bank) * slot, with
// round ∈ [0, rounds) the RD round index (0 = fold-in, 1..logp = the
// exchange rounds, rounds-1 = fold-out) and bank the low bit of the
// dedicated RD call counter (Comm.rdGen).
//
// Two banks are enough because the RD schedule is internally fully
// synchronizing and the bank advances only on RD calls: a partner can
// only write my (round, bank) slot for RD call m+2 after completing RD
// call m+1, which transitively requires my round-sends of call m+1,
// which I post only after entering call m+1 — i.e. after I finished
// reading every slot of same-bank call m. Interleaved non-synchronizing
// collectives (bcast, gather) cannot break this because they do not
// advance rdGen. See DESIGN.md "Collectives" for the full argument.
type collArena struct {
	buf []byte
	// Registration read-locker (the backend MR lock): held while
	// reading slots to synchronize against remote DMA into buf.
	//photon:lock collarena 45
	lk    sync.Locker
	peers []mem.RemoteBuffer // exchanged descriptors, indexed by rank
	slot  int                // slot size in bytes (cfg.SmallAllreduceMax)
}

func (a *collArena) off(round, bank int) uint64 {
	return uint64(((round * 2) + bank) * a.slot)
}

// arenaBlobLen is the wire size of one arena descriptor:
// addr (8) | rkey (4) | len (8), little-endian — the same layout
// core.ExchangeBuffers uses.
const arenaBlobLen = 20

// ensureArena lazily builds the arena on first use. The descriptor
// exchange is collective, but so is the caller: algorithm selection is
// a pure function of (vector length, size, config), so every rank
// reaches its first RD allreduce — and therefore this exchange — on
// the same call. Descriptors ride the Comm's own allgather rather than
// the backend's boot-time Exchange: the backend barrier blocks on
// every engine rank (it would hang forever once a rank has died, and a
// shrunken Comm's membership is a subset anyway), while the allgather
// is failure-aware and scoped to the membership table.
func (c *Comm) ensureArena() (*collArena, error) {
	if c.arena != nil {
		return c.arena, nil
	}
	rounds := c.rdSched().rounds
	a := &collArena{slot: c.cfg.SmallAllreduceMax}
	a.buf = make([]byte, rounds*2*a.slot)
	rb, lk, err := c.ph.RegisterBuffer(a.buf)
	if err != nil {
		return nil, err
	}
	a.lk = lk
	blob := make([]byte, arenaBlobLen)
	binary.LittleEndian.PutUint64(blob[0:], rb.Addr)
	binary.LittleEndian.PutUint32(blob[8:], rb.RKey)
	binary.LittleEndian.PutUint64(blob[12:], uint64(rb.Len))
	all, err := c.allgather(c.cgen(c.gen.Add(1)), blob)
	if err != nil {
		return nil, err
	}
	a.peers = make([]mem.RemoteBuffer, c.size)
	for i, b := range all {
		if len(b) != arenaBlobLen {
			return nil, fmt.Errorf("collectives: arena descriptor of %d bytes from rank %d", len(b), i)
		}
		a.peers[i] = mem.RemoteBuffer{
			Addr: binary.LittleEndian.Uint64(b[0:]),
			RKey: binary.LittleEndian.Uint32(b[8:]),
			Len:  int(binary.LittleEndian.Uint64(b[12:])),
		}
	}
	c.arena = a
	return a, nil
}
