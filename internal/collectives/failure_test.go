package collectives_test

// Chaos-driven failure tests: kill ranks mid-collective at various
// schedule positions and sizes, and assert the failure-aware plane
// delivers its contract — every survivor returns ErrCommRevoked (also
// matching core.ErrPeerDown) promptly instead of hanging, the revoked
// comm fails fast afterwards, and Shrink yields a working communicator
// over the survivors whose reductions match the serial reference.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/chaos"
	"photon/internal/backend/vsim"
	"photon/internal/collectives"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
)

// failT is the whole-collective deadline for failure tests: generous
// enough to never trip on a loaded CI box, far above the prompt-abort
// bound the tests assert.
const failT = 30 * time.Second

// promptT is how fast an abort must land to count as detection-driven
// rather than deadline-driven.
const promptT = 10 * time.Second

type chaosWorld struct {
	comms []*collectives.Comm
	phs   []*core.Photon
	bes   []*chaos.Backend
	group *chaos.Group
}

// newChaosWorld boots n ranks over vsim with a chaos group wrapper and
// an armed failure detector on every rank.
func newChaosWorld(t *testing.T, n int, ccfg collectives.Config, coreCfg core.Config) *chaosWorld {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if ccfg.Timeout == 0 {
		ccfg.Timeout = failT
	}
	if coreCfg.HeartbeatInterval == 0 {
		coreCfg.HeartbeatInterval = 2 * time.Millisecond
	}
	if coreCfg.SuspectAfter == 0 {
		coreCfg.SuspectAfter = 6 * time.Millisecond
	}
	w := &chaosWorld{
		comms: make([]*collectives.Comm, n),
		phs:   make([]*core.Photon, n),
		bes:   make([]*chaos.Backend, n),
		group: chaos.NewGroup(3 * time.Millisecond),
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		w.bes[r] = chaos.WrapGroup(cl.Backend(r), chaos.Plan{Seed: int64(r)}, w.group)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph, err := core.Init(w.bes[r], coreCfg)
			if err != nil {
				errs[r] = err
				return
			}
			w.phs[r] = ph
			w.comms[r] = collectives.NewWithConfig(ph, ccfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: init: %v", r, err)
		}
	}
	return w
}

// leanCfg keeps per-rank engine state small enough for many-rank
// in-process clusters.
func leanCfg() core.Config {
	return core.Config{LedgerSlots: 16, EagerEntrySize: 256, CompQueueDepth: 256, RdzvSlabSize: 64 << 10}
}

// runAllErrs runs fn concurrently on every rank and returns the
// per-rank errors without judging them.
func runAllErrs(comms []*collectives.Comm, fn func(r int, c *collectives.Comm) error) []error {
	errs := make([]error, len(comms))
	var wg sync.WaitGroup
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *collectives.Comm) {
			defer wg.Done()
			errs[i] = fn(i, c)
		}(i, c)
	}
	wg.Wait()
	return errs
}

// wantRevoked asserts every survivor's error is a revocation naming a
// dead peer; the victim's own outcome is not judged.
func wantRevoked(t *testing.T, errs []error, victim int) {
	t.Helper()
	for r, err := range errs {
		if r == victim {
			continue
		}
		if err == nil {
			t.Errorf("rank %d: collective succeeded despite dead rank %d", r, victim)
			continue
		}
		if !errors.Is(err, collectives.ErrCommRevoked) || !errors.Is(err, core.ErrPeerDown) {
			t.Errorf("rank %d: error does not match ErrCommRevoked+ErrPeerDown: %v", r, err)
		}
	}
}

// TestBarrierAbortsOnPeerDeath kills one rank mid-barrier — leaf,
// interior, and rank-0 positions of the dissemination schedule — and
// requires every survivor to abort with a revocation well before the
// whole-collective deadline.
func TestBarrierAbortsOnPeerDeath(t *testing.T) {
	const n = 8
	for _, victim := range []int{7, 2, 0} {
		t.Run(fmt.Sprintf("victim=%d", victim), func(t *testing.T) {
			w := newChaosWorld(t, n, collectives.Config{}, core.Config{})
			if errs := runAllErrs(w.comms, func(r int, c *collectives.Comm) error { return c.Barrier() }); true {
				for r, err := range errs {
					if err != nil {
						t.Fatalf("warmup barrier rank %d: %v", r, err)
					}
				}
			}
			w.bes[victim].CrashAfterOps(1)
			start := time.Now()
			errs := runAllErrs(w.comms, func(r int, c *collectives.Comm) error { return c.Barrier() })
			if el := time.Since(start); el > promptT {
				t.Errorf("abort took %v, want detection-driven (< %v)", el, promptT)
			}
			wantRevoked(t, errs, victim)
		})
	}
}

// TestAllreduceAbortsMidCall kills an interior rank mid-allreduce for
// the tree and ring schedules (recursive doubling is covered by the
// shrink tests below).
func TestAllreduceAbortsMidCall(t *testing.T) {
	for _, tc := range []struct {
		algo   string
		n      int
		victim int
		crash  int
		vec    int
	}{
		// Tree: the victim dies before its reduce contribution leaves,
		// so the root hangs and every rank waiting on the bcast must
		// abort via detection, not completion.
		{"tree", 8, 3, 1, 16},
		{"ring", 6, 2, 2, 64},
	} {
		t.Run(tc.algo, func(t *testing.T) {
			w := newChaosWorld(t, tc.n, collectives.Config{ForceAllreduce: tc.algo}, core.Config{})
			warm := runAllErrs(w.comms, func(r int, c *collectives.Comm) error {
				vec := make([]float64, tc.vec)
				return c.AllreduceInPlace(vec, collectives.OpSum)
			})
			for r, err := range warm {
				if err != nil {
					t.Fatalf("warmup rank %d: %v", r, err)
				}
			}
			w.bes[tc.victim].CrashAfterOps(tc.crash)
			start := time.Now()
			errs := runAllErrs(w.comms, func(r int, c *collectives.Comm) error {
				vec := make([]float64, tc.vec)
				for i := range vec {
					vec[i] = float64(r*tc.vec + i)
				}
				return c.AllreduceInPlace(vec, collectives.OpSum)
			})
			if el := time.Since(start); el > promptT {
				t.Errorf("abort took %v, want detection-driven (< %v)", el, promptT)
			}
			wantRevoked(t, errs, tc.victim)
		})
	}
}

// TestRevokedCommFailsFast: after a revocation, further collectives on
// the same comm return immediately without touching the network.
func TestRevokedCommFailsFast(t *testing.T) {
	const n, victim = 4, 3
	w := newChaosWorld(t, n, collectives.Config{}, core.Config{})
	w.group.Kill(victim)
	runAllErrs(w.comms, func(r int, c *collectives.Comm) error { return c.Barrier() })
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		if !w.comms[r].Revoked() {
			t.Fatalf("rank %d: comm not revoked after peer death", r)
		}
		start := time.Now()
		err := w.comms[r].Barrier()
		if !errors.Is(err, collectives.ErrCommRevoked) {
			t.Fatalf("rank %d: revoked comm returned %v", r, err)
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("rank %d: fast-fail took %v", r, el)
		}
	}
}

// shrinkAndCheck shrinks the survivors' comms concurrently and
// property-tests the shrunken communicator: an allreduce over fresh
// per-rank vectors must match the serial reference, and a barrier must
// synchronize.
func shrinkAndCheck(t *testing.T, w *chaosWorld, victim int) {
	t.Helper()
	n := len(w.comms)
	ncs := make([]*collectives.Comm, 0, n-1)
	idx := make([]int, 0, n-1)
	for r := 0; r < n; r++ {
		if r != victim {
			idx = append(idx, r)
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	serrs := make([]error, len(idx))
	got := make([]*collectives.Comm, len(idx))
	for i, r := range idx {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			nc, err := w.comms[r].Shrink()
			mu.Lock()
			got[i], serrs[i] = nc, err
			mu.Unlock()
		}(i, r)
	}
	wg.Wait()
	for i, err := range serrs {
		if err != nil {
			t.Fatalf("rank %d: Shrink: %v", idx[i], err)
		}
		if got[i].Size() != len(idx) {
			t.Fatalf("rank %d: shrunken size %d, want %d", idx[i], got[i].Size(), len(idx))
		}
		if got[i].Epoch() != w.comms[idx[i]].Epoch()+1 {
			t.Fatalf("rank %d: shrunken epoch %d, want parent+1", idx[i], got[i].Epoch())
		}
		ncs = append(ncs, got[i])
	}

	const vecLen = 16
	vecs := make([][]float64, len(ncs))
	for nr := range vecs {
		vecs[nr] = make([]float64, vecLen)
		for i := range vecs[nr] {
			vecs[nr][i] = float64(nr+1) * float64(i+1)
		}
	}
	want := serialReduce(vecs, collectives.OpSum)
	errs := runAllErrs(ncs, func(nr int, c *collectives.Comm) error {
		vec := append([]float64(nil), vecs[nr]...)
		if err := c.AllreduceInPlace(vec, collectives.OpSum); err != nil {
			return err
		}
		for i := range vec {
			if !approxEq(collectives.OpSum, vec[i], want[i]) {
				return fmt.Errorf("element %d: got %v want %v", i, vec[i], want[i])
			}
		}
		return c.Barrier()
	})
	for nr, err := range errs {
		if err != nil {
			t.Fatalf("shrunken comm rank %d: %v", nr, err)
		}
	}
}

// TestShrinkAfterLeaderDeath kills rank 0 — the would-be agreement
// leader — mid-allreduce, so the survivors must elect the next-lowest
// rank before they can agree.
func TestShrinkAfterLeaderDeath(t *testing.T) {
	const n, victim = 8, 0
	w := newChaosWorld(t, n, collectives.Config{}, core.Config{})
	w.bes[victim].CrashAfterOps(2)
	errs := runAllErrs(w.comms, func(r int, c *collectives.Comm) error {
		vec := make([]float64, 16)
		return c.AllreduceInPlace(vec, collectives.OpSum)
	})
	wantRevoked(t, errs, victim)
	shrinkAndCheck(t, w, victim)
}

// TestShrinkN32MidAllreduce is the acceptance scenario: 32 vsim
// ranks, one killed mid-allreduce. Every survivor must observe the
// revocation promptly (no hang, no wrong result), and the shrunken
// 31-rank communicator must pass the reference property test.
func TestShrinkN32MidAllreduce(t *testing.T) {
	if testing.Short() {
		t.Skip("32-rank cluster in -short mode")
	}
	const n, victim = 32, 13
	w := newChaosWorld(t, n, collectives.Config{}, leanCfg())
	warm := runAllErrs(w.comms, func(r int, c *collectives.Comm) error { return c.Barrier() })
	for r, err := range warm {
		if err != nil {
			t.Fatalf("warmup rank %d: %v", r, err)
		}
	}
	w.bes[victim].CrashAfterOps(3)
	start := time.Now()
	errs := runAllErrs(w.comms, func(r int, c *collectives.Comm) error {
		vec := make([]float64, 32)
		for i := range vec {
			vec[i] = float64(r)
		}
		return c.AllreduceInPlace(vec, collectives.OpSum)
	})
	el := time.Since(start)
	if el > promptT {
		t.Errorf("N=32 abort took %v, want detection-driven (< %v)", el, promptT)
	}
	wantRevoked(t, errs, victim)
	t.Logf("N=32: all %d survivors revoked in %v", n-1, el)
	shrinkAndCheck(t, w, victim)
}

// TestAbortObservability checks the telemetry contract: a collective
// abort bumps the coll_aborts gauge, records an abort-latency sample,
// and arms the flight recorder with a reason-tagged capture.
func TestAbortObservability(t *testing.T) {
	const n, victim = 4, 3
	cfg := core.Config{Metrics: true, FlightRecords: 16}
	w := newChaosWorld(t, n, collectives.Config{}, cfg)
	warm := runAllErrs(w.comms, func(r int, c *collectives.Comm) error { return c.Barrier() })
	for r, err := range warm {
		if err != nil {
			t.Fatalf("warmup rank %d: %v", r, err)
		}
	}
	w.bes[victim].CrashAfterOps(1)
	errs := runAllErrs(w.comms, func(r int, c *collectives.Comm) error { return c.Barrier() })
	wantRevoked(t, errs, victim)

	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		snap := w.phs[r].Metrics()
		if v, ok := snap.Gauges.Get("coll_aborts"); !ok || v < 1 {
			t.Errorf("rank %d: coll_aborts gauge = %d (ok=%v), want >= 1", r, v, ok)
		}
		fr := w.phs[r].FlightRecorder()
		if fr == nil {
			t.Fatalf("rank %d: flight recorder not armed", r)
		}
		found := false
		for _, rec := range fr.Records() {
			if rec.Reason == "collective abort" {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d: no 'collective abort' flight capture", r)
		}
	}
	// At least one survivor observed the revocation via a forwarded
	// notice or sent one — the flood counter must have moved somewhere.
	var revokes int64
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		if v, ok := w.phs[r].Metrics().Gauges.Get("coll_revokes_sent"); ok {
			revokes += v
		}
	}
	if revokes < 1 {
		t.Errorf("no revocation notices sent across survivors")
	}
}
