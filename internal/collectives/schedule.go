package collectives

// This file holds the schedule layer: the collective RID-space layout
// and the compiled, reusable per-Comm schedules (dissemination rounds,
// k-nomial trees, recursive-doubling pairings). Schedules depend only
// on (size, rank, radix, root), so they are compiled once and reused by
// every call — the per-call work is purely posting the schedule's edges
// nonblocking and reaping the round's completions together.

// RID-space layout (64 bits). Collective RIDs live in the reserved
// top-bit space; user RIDs keep the top bit clear (core convention).
//
//	bit  63      ridBase — reserved collective RID space
//	bits 38..62  generation (25 bits; wraps after ~33M calls per kind)
//	bit  37      bank — arena slot parity of the call (debug aid; slot
//	             addressing uses the dedicated RD call counter, §arena)
//	bits 33..36  kind (4 bits)
//	bits 21..32  segment (12 bits → 4095 payload segments)
//	bits 10..20  round (11 bits → 2048 rounds; ring paths use 2(N-1))
//	bits  0..9   source rank (10 bits → MaxRanks)
const (
	ridBase = uint64(1) << 63

	srcBits   = 10
	roundBits = 11
	segBits   = 12
	kindBits  = 4

	srcShift   = 0
	roundShift = srcShift + srcBits
	segShift   = roundShift + roundBits
	kindShift  = segShift + segBits
	bankShift  = kindShift + kindBits
	genShift   = bankShift + 1
	genBits    = 63 - genShift

	maxRounds = 1 << roundBits
	maxSegs   = 1 << segBits
)

// The generation field is further split for epoch fencing: the high
// epochBits carry the Comm's epoch (bumped by Shrink, so stale traffic
// from a revoked predecessor can never match a successor's RIDs) and
// the low callGenBits carry the per-Comm call counter. The bank bit
// still tracks the low call bit (Comm.cgen preserves it).
const (
	epochBits   = 6
	callGenBits = genBits - epochBits
	maxEpochs   = 1 << epochBits
)

// MaxRanks is the largest job size the collective RID layout supports.
const MaxRanks = 1 << srcBits

// Collective kinds (4-bit field).
const (
	kindBarrier = iota + 1
	kindBcast
	kindReduce
	kindAllreduce // ring / composed large-vector allreduce
	kindGather
	kindAllgather
	kindAlltoall
	kindAllreduceRD // recursive-doubling arena path (own gen counter)
	kindRevoke      // revocation notice (epoch-scoped: gen = genBase)
	kindShrink      // survivor agreement: seg 0 = report, 1 = commit
)

// rid assembles a collective completion identifier.
func rid(gen uint64, kind, seg, round, src int) uint64 {
	return ridBase |
		(gen&(1<<genBits-1))<<genShift |
		(gen&1)<<bankShift |
		uint64(kind)<<kindShift |
		uint64(seg)<<segShift |
		uint64(round)<<roundShift |
		uint64(src)
}

// ---------------------------------------------------------------------
// Dissemination barrier schedule
// ---------------------------------------------------------------------

// barrierRound is one dissemination round: peers this rank notifies and
// peers whose notifications end the round. All notifies are posted
// nonblocking, then the awaited set is reaped in one wait — a round
// costs one network latency regardless of radix.
type barrierRound struct {
	notify []int
	await  []int
}

// barrierSched is the radix-k dissemination schedule: ceil(log_k N)
// rounds; in round j (distance k^j) the rank notifies rank+i*k^j and
// awaits rank-i*k^j for i = 1..k-1. After round j every rank has
// transitively heard from all ranks within distance k^(j+1)-1 behind
// it, so after the last round it has heard from everyone.
type barrierSched struct {
	rounds []barrierRound
}

func compileBarrier(rank, size, radix int) *barrierSched {
	bs := &barrierSched{}
	for dist := 1; dist < size; dist *= radix {
		var r barrierRound
		for i := 1; i < radix && i*dist < size; i++ {
			r.notify = append(r.notify, (rank+i*dist)%size)
			r.await = append(r.await, (rank-i*dist%size+size)%size)
		}
		bs.rounds = append(bs.rounds, r)
	}
	return bs
}

// ---------------------------------------------------------------------
// k-nomial tree schedule (bcast, reduce)
// ---------------------------------------------------------------------

// treeSched is one rank's view of the k-nomial tree rooted at root:
// its parent (-1 at the root) and its children, deepest-subtree first
// (those children sit on the critical path, so bcast feeds them first
// and reduce waits for them alongside the shallow ones).
type treeSched struct {
	parent   int
	children []int
}

// compileTree builds the k-nomial tree in root-relative vrank space:
// vrank v's parent clears v's lowest nonzero base-k digit; v's children
// are v + d*k^j for every level k^j below that digit (all levels for
// the root) and d = 1..k-1, bounded by size.
func compileTree(rank, size, root, radix int) *treeSched {
	v := (rank - root + size) % size
	ts := &treeSched{parent: -1}
	// Lowest nonzero base-k digit position of v (the subtree ceiling);
	// the root's ceiling spans the whole job.
	limit := 1
	if v == 0 {
		for limit < size {
			limit *= radix
		}
	} else {
		for v/limit%radix == 0 {
			limit *= radix
		}
		ts.parent = ((v - (v/limit%radix)*limit) + root) % size
	}
	for dist := limit / radix; dist >= 1; dist /= radix {
		for d := 1; d < radix; d++ {
			u := v + d*dist
			if u < size {
				ts.children = append(ts.children, (u+root)%size)
			}
		}
	}
	return ts
}

// ---------------------------------------------------------------------
// Recursive-doubling schedule (small allreduce)
// ---------------------------------------------------------------------

// rdSched is the non-power-of-two recursive-doubling pairing: with
// p2 the largest power of two ≤ N and rem = N − p2, the first 2·rem
// ranks fold pairwise (odd members send their vector to the even
// partner and sit out), the surviving p2 virtual ranks run log2(p2)
// exchange rounds, and the fold partners receive the finished result
// back. vrank → rank: v < rem → 2v, else v + rem.
type rdSched struct {
	p2, rem, logp int
	inFold        bool  // rank < 2*rem
	foldSender    bool  // odd fold member: contributes, then receives the result
	partner       int   // fold partner rank (-1 when not in the fold)
	vrank         int   // virtual rank (-1 for fold senders)
	peers         []int // exchange-round partner ranks, one per RD round
	rounds        int   // slot round space: 1 fold-in + logp + 1 fold-out
}

func compileRD(rank, size int) *rdSched {
	rd := &rdSched{partner: -1, vrank: -1}
	rd.p2 = 1
	for rd.p2*2 <= size {
		rd.p2 *= 2
	}
	rd.rem = size - rd.p2
	for p := rd.p2; p > 1; p /= 2 {
		rd.logp++
	}
	rd.rounds = rd.logp + 2
	if rank < 2*rd.rem {
		rd.inFold = true
		if rank%2 == 1 {
			rd.foldSender = true
			rd.partner = rank - 1
			return rd
		}
		rd.partner = rank + 1
		rd.vrank = rank / 2
	} else {
		rd.vrank = rank - rd.rem
	}
	toRank := func(v int) int {
		if v < rd.rem {
			return 2 * v
		}
		return v + rd.rem
	}
	for i := 0; i < rd.logp; i++ {
		rd.peers = append(rd.peers, toRank(rd.vrank^(1<<i)))
	}
	return rd
}

// ---------------------------------------------------------------------
// Cached accessors
// ---------------------------------------------------------------------

func (c *Comm) barrierSched() *barrierSched {
	if c.barSched == nil {
		c.barSched = compileBarrier(c.rank, c.size, c.cfg.Radix)
	}
	return c.barSched
}

func (c *Comm) treeSched(root int) *treeSched {
	if ts, ok := c.trees[root]; ok {
		return ts
	}
	ts := compileTree(c.rank, c.size, root, c.cfg.Radix)
	c.trees[root] = ts
	return ts
}

func (c *Comm) rdSched() *rdSched {
	if c.rd == nil {
		c.rd = compileRD(c.rank, c.size)
	}
	return c.rd
}
