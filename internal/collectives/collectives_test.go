package collectives_test

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/vsim"
	"photon/internal/collectives"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
)

const waitT = 10 * time.Second

// newComms boots n Photon ranks and a communicator per rank.
func newComms(t *testing.T, n int) []*collectives.Comm {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	comms := make([]*collectives.Comm, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph, err := core.Init(cl.Backend(r), core.Config{})
			if err != nil {
				errs[r] = err
				return
			}
			comms[r] = collectives.New(ph, waitT)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return comms
}

// runAll runs fn concurrently on every rank and fails the test on any
// error.
func runAll(t *testing.T, comms []*collectives.Comm, fn func(c *collectives.Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(comms))
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *collectives.Comm) {
			defer wg.Done()
			errs[i] = fn(c)
		}(i, c)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			comms := newComms(t, n)
			// Phase counter: no rank may observe phase 2 while
			// another is still in phase 0.
			var phase sync.Map
			runAll(t, comms, func(c *collectives.Comm) error {
				phase.Store(c.Rank(), 1)
				if err := c.Barrier(); err != nil {
					return err
				}
				// After the barrier, everyone must be at phase >= 1.
				for r := 0; r < c.Size(); r++ {
					if v, ok := phase.Load(r); !ok || v.(int) < 1 {
						return fmt.Errorf("rank %d passed barrier before rank %d entered", c.Rank(), r)
					}
				}
				return c.Barrier() // barriers are reusable
			})
		})
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	comms := newComms(t, 4)
	for root := 0; root < 4; root++ {
		payload := []byte(fmt.Sprintf("broadcast from %d", root))
		runAll(t, comms, func(c *collectives.Comm) error {
			var in []byte
			if c.Rank() == root {
				in = payload
			}
			out, err := c.Bcast(root, in)
			if err != nil {
				return err
			}
			if !bytes.Equal(out, payload) {
				return fmt.Errorf("rank %d got %q", c.Rank(), out)
			}
			return nil
		})
	}
}

func TestBcastLargePayloadRendezvous(t *testing.T) {
	comms := newComms(t, 3)
	big := make([]byte, 32*1024)
	for i := range big {
		big[i] = byte(i * 31)
	}
	runAll(t, comms, func(c *collectives.Comm) error {
		var in []byte
		if c.Rank() == 0 {
			in = big
		}
		out, err := c.Bcast(0, in)
		if err != nil {
			return err
		}
		if !bytes.Equal(out, big) {
			return fmt.Errorf("rank %d corrupted broadcast", c.Rank())
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			comms := newComms(t, n)
			runAll(t, comms, func(c *collectives.Comm) error {
				vec := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
				out, err := c.Reduce(0, vec, collectives.OpSum)
				if err != nil {
					return err
				}
				if c.Rank() != 0 {
					if out != nil {
						return fmt.Errorf("non-root got a result")
					}
					return nil
				}
				wantA, wantC := 0.0, 0.0
				for r := 0; r < n; r++ {
					wantA += float64(r)
					wantC += float64(r * r)
				}
				if out[0] != wantA || out[1] != float64(n) || out[2] != wantC {
					return fmt.Errorf("reduce = %v", out)
				}
				return nil
			})
		})
	}
}

func TestReduceMinMaxProd(t *testing.T) {
	comms := newComms(t, 4)
	runAll(t, comms, func(c *collectives.Comm) error {
		x := float64(c.Rank() + 1)
		mn, err := c.Allreduce([]float64{x}, collectives.OpMin)
		if err != nil || mn[0] != 1 {
			return fmt.Errorf("min = %v %v", mn, err)
		}
		mx, err := c.Allreduce([]float64{x}, collectives.OpMax)
		if err != nil || mx[0] != 4 {
			return fmt.Errorf("max = %v %v", mx, err)
		}
		pr, err := c.Allreduce([]float64{x}, collectives.OpProd)
		if err != nil || pr[0] != 24 {
			return fmt.Errorf("prod = %v %v", pr, err)
		}
		return nil
	})
}

func TestAllreduceScalar(t *testing.T) {
	comms := newComms(t, 3)
	runAll(t, comms, func(c *collectives.Comm) error {
		got, err := c.AllreduceScalar(float64(c.Rank()), collectives.OpSum)
		if err != nil {
			return err
		}
		if got != 3 { // 0+1+2
			return fmt.Errorf("allreduce scalar = %v", got)
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	comms := newComms(t, 4)
	runAll(t, comms, func(c *collectives.Comm) error {
		blob := []byte{byte(c.Rank()), byte(c.Rank() * 2)}
		out, err := c.Gather(2, blob)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root received gather output")
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != 2 || out[r][0] != byte(r) || out[r][1] != byte(r*2) {
				return fmt.Errorf("gather[%d] = %v", r, out[r])
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			comms := newComms(t, n)
			runAll(t, comms, func(c *collectives.Comm) error {
				blob := []byte(fmt.Sprintf("rank-%d", c.Rank()))
				out, err := c.Allgather(blob)
				if err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					want := fmt.Sprintf("rank-%d", r)
					if string(out[r]) != want {
						return fmt.Errorf("allgather[%d] = %q, want %q", r, out[r], want)
					}
				}
				return nil
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	comms := newComms(t, 4)
	runAll(t, comms, func(c *collectives.Comm) error {
		blobs := make([][]byte, 4)
		for dst := range blobs {
			blobs[dst] = []byte{byte(c.Rank()), byte(dst)}
		}
		out, err := c.Alltoall(blobs)
		if err != nil {
			return err
		}
		for src := 0; src < 4; src++ {
			if out[src][0] != byte(src) || out[src][1] != byte(c.Rank()) {
				return fmt.Errorf("alltoall[%d] = %v", src, out[src])
			}
		}
		return nil
	})
}

func TestAlltoallArityChecked(t *testing.T) {
	comms := newComms(t, 2)
	runAll(t, comms, func(c *collectives.Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Alltoall(make([][]byte, 1)); err == nil {
				return fmt.Errorf("wrong arity accepted")
			}
		}
		return nil
	})
}

func TestBadRoots(t *testing.T) {
	comms := newComms(t, 2)
	c := comms[0]
	if _, err := c.Bcast(9, nil); err == nil {
		t.Fatal("bad bcast root accepted")
	}
	if _, err := c.Reduce(-1, nil, collectives.OpSum); err == nil {
		t.Fatal("bad reduce root accepted")
	}
	if _, err := c.Gather(5, nil); err == nil {
		t.Fatal("bad gather root accepted")
	}
}

func TestRepeatedMixedCollectives(t *testing.T) {
	comms := newComms(t, 3)
	runAll(t, comms, func(c *collectives.Comm) error {
		for iter := 0; iter < 10; iter++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			sum, err := c.AllreduceScalar(1, collectives.OpSum)
			if err != nil || sum != 3 {
				return fmt.Errorf("iter %d: sum=%v err=%v", iter, sum, err)
			}
			all, err := c.Allgather([]byte{byte(iter), byte(c.Rank())})
			if err != nil {
				return err
			}
			for r := 0; r < 3; r++ {
				if all[r][0] != byte(iter) || all[r][1] != byte(r) {
					return fmt.Errorf("iter %d allgather[%d]=%v", iter, r, all[r])
				}
			}
		}
		return nil
	})
}

func TestReduceNaNPropagation(t *testing.T) {
	comms := newComms(t, 2)
	runAll(t, comms, func(c *collectives.Comm) error {
		x := 1.0
		if c.Rank() == 1 {
			x = math.NaN()
		}
		out, err := c.AllreduceScalar(x, collectives.OpSum)
		if err != nil {
			return err
		}
		if !math.IsNaN(out) {
			return fmt.Errorf("NaN lost in reduction: %v", out)
		}
		return nil
	})
}
