// Package collectives provides the group operations runtime systems
// need at startup and synchronization points — barrier, broadcast,
// reduce, allreduce, gather, allgather, and all-to-all — implemented
// purely over Photon's one-sided primitives, the way the original
// middleware layers its collective support over PWC.
//
// Collectives compile into reusable per-Comm schedules (see
// schedule.go): each call posts a round's edges nonblocking and reaps
// the round's completions together, so a round costs one network
// latency regardless of fan-out. Algorithms are selected by vector
// size and job size:
//
//	barrier     radix-k dissemination, ceil(log_k N) rounds
//	bcast       k-nomial tree, segmented and pipelined above SegmentBytes
//	reduce      k-nomial tree combine with pre-posted child receives
//	allreduce   recursive doubling over a registered PWC arena (small),
//	            ring reduce-scatter + allgather (large, bandwidth-
//	            optimal), tree reduce + bcast (in between)
//	gather      flat, all sends in flight at once
//	allgather   ring, zero-copy forwarding
//	alltoall    pairwise, all N-1 sends posted before any wait
//
// Steady state allocates nothing on the barrier and in-place small
// allreduce paths: schedules, wait scratch, and the RD arena are
// per-Comm state, and payloads move through posted receives or the
// registered arena.
//
// Every rank of the job must call each collective, with the same
// arguments where semantics require it, in the same order (MPI-style
// collective semantics). A Comm is not safe for concurrent use by
// multiple goroutines. Completion identifiers used internally live in
// the reserved RID space (top bit set); user RIDs must keep the top
// bit clear.
//
// # Failure awareness
//
// Collectives are failure-aware end to end (see failure.go): every
// wait and post-retry loop observes the engine's peer-health latches,
// a dead member turns the whole collective into a prompt
// ErrCommRevoked on every surviving rank (ULFM-style revocation
// notices flood the dissemination edges so ranks not adjacent to the
// corpse abort in one network latency), and Comm.Shrink rebuilds a
// working communicator over the survivors with a bumped epoch that
// fences stale-generation traffic.
package collectives

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"photon/internal/core"
	"photon/internal/errs"
	"photon/internal/mem"
	"photon/internal/metrics"
)

// ErrSizeMismatch is returned when ranks disagree on vector lengths.
var ErrSizeMismatch = errors.New("collectives: vector length mismatch across ranks")

// ErrCommRevoked is the communicator-revocation sentinel: a member of
// the Comm died (observed directly through the health plane or via a
// peer's revocation notice) and this epoch of the communicator is
// permanently unusable — every collective on it, current and future,
// fails fast with an error matching this sentinel (and ErrPeerDown,
// naming the failed rank when known). Recover with Comm.Shrink.
// Aliases errs.ErrRevoked.
var ErrCommRevoked = errs.ErrRevoked

// Op is a reduction operator over float64.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpProd
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	case OpProd:
		return a * b
	}
	panic(fmt.Sprintf("collectives: unknown op %d", o))
}

// Config tunes a communicator. The zero value of every field selects a
// sensible default.
type Config struct {
	// Timeout bounds each whole collective call with one monotonic
	// deadline armed at entry (<=0 waits forever): however many rounds
	// and internal waits the schedule runs, the call returns ErrTimeout
	// within Timeout of entering. Production runs use a generous bound
	// so a wedged peer surfaces as an error instead of a hang even
	// when the failure detector cannot see it.
	Timeout time.Duration

	// Radix is the tree/dissemination fan-out k (default 2). Higher
	// radix trades more messages per round for fewer rounds — with
	// nonblocking rounds the extra messages overlap, so radix 4 barriers
	// halve the round count at the same per-round latency.
	Radix int

	// SmallAllreduceMax is the largest encoded vector (bytes) served by
	// the recursive-doubling arena path, and the arena slot size.
	// Default 4096.
	SmallAllreduceMax int

	// SegmentBytes is the bcast/ring pipeline segment size (default
	// 32KiB). Payloads larger than one segment are split and streamed so
	// transfer overlaps forwarding down the tree. Segments at or below
	// the eager threshold ride the doorbell-batched eager path;
	// larger segments go rendezvous.
	SegmentBytes int

	// ForceAllreduce pins the allreduce algorithm for benchmarking:
	// "rd", "ring", "tree", or "" for size-based selection. Forced
	// choices that the vector cannot satisfy (rd beyond the arena slot,
	// ring with fewer elements than ranks) fall back to selection.
	ForceAllreduce string
}

func (cfg Config) withDefaults() Config {
	if cfg.Radix < 2 {
		cfg.Radix = 2
	}
	if cfg.Radix > 16 {
		cfg.Radix = 16
	}
	if cfg.SmallAllreduceMax <= 0 {
		cfg.SmallAllreduceMax = 4096
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 32 << 10
	}
	return cfg
}

// numCollKinds sizes the per-kind counters (metrics.CollKind domain).
const numCollKinds = int(metrics.CollAlltoall) + 1

// Allreduce algorithm counters.
const (
	algoRD = iota
	algoRing
	algoTree
	numAlgos
)

var algoNames = [numAlgos]string{"rd", "ring", "tree"}

// commStats is the coll_* counter block. It is shared by a root Comm
// and every communicator Shrink derives from it, so one gauge source
// covers the whole lineage without duplicate registrations.
type commStats struct {
	calls [numCollKinds]atomic.Int64
	algos [numAlgos]atomic.Int64

	aborts      atomic.Int64 // collectives revoked on this lineage
	revokesSent atomic.Int64 // revocation notices fanned out
	shrinks     atomic.Int64 // successful Shrink agreements
}

// gauges contributes coll_* counters to Photon.Metrics snapshots.
func (s *commStats) gauges(set func(name string, v int64)) {
	for k := 0; k < numCollKinds; k++ {
		if n := s.calls[k].Load(); n > 0 {
			set("coll_"+metrics.CollKind(k).String()+"_calls", n)
		}
	}
	for a := 0; a < numAlgos; a++ {
		if n := s.algos[a].Load(); n > 0 {
			set("coll_allreduce_"+algoNames[a], n)
		}
	}
	set("coll_aborts", s.aborts.Load())
	set("coll_revokes_sent", s.revokesSent.Load())
	set("coll_shrinks", s.shrinks.Load())
}

// Comm is a collective communicator bound to one Photon instance. All
// ranks construct their Comm over their own instance; the generation
// counters advance in lockstep because collectives are called
// collectively. Ranks are comm ranks: positions in the membership
// table, equal to engine ranks for a root Comm and remapped by Shrink.
//
// A Comm is not safe for concurrent use: its wait pacer and scratch
// buffers are per-instance state. Create one Comm per calling
// goroutine (they share the Photon instance safely).
type Comm struct {
	ph      *core.Photon
	rank    int // comm rank (index into group)
	size    int
	cfg     Config
	timeout time.Duration

	// Membership and epoch (see failure.go / shrink.go).
	group   []int  // comm rank -> engine rank
	epoch   uint64 // bumped by Shrink; fences stale RIDs via genBase
	genBase uint64 // epoch bits pre-shifted into the RID gen field

	gen   atomic.Uint64 // shared collective generation (RID uniqueness)
	rdGen atomic.Uint64 // RD-allreduce call counter (arena banking)

	w *core.Waiter

	// Failure plane (failure.go): the whole-collective deadline, the
	// revocation latch, and the precomputed revoke flood edges.
	deadline   time.Time
	revoked    atomic.Bool
	deadRank   atomic.Int64 // first known-dead comm rank; -1 unknown
	revokeOut  []int        // dissemination out-neighbors (comm ranks)
	revokeIn   []int        // dissemination in-neighbors (comm ranks)
	revokeRIDs []uint64     // epoch-scoped notice RIDs, one per in-neighbor
	spec       core.WaitSpec
	watch      []int // engine-rank watch scratch, derived per wait

	// Compiled schedules (schedule.go), built on first use.
	barSched *barrierSched
	trees    map[int]*treeSched
	rd       *rdSched
	arena    *collArena

	// Wait scratch, reused across calls.
	rids  []uint64
	lrids []uint64
	comps []core.Completion
	rid1  [1]uint64
	comp1 [1]core.Completion

	// Payload scratch, grown on demand and retained.
	accF []float64
	scrB []byte // send-side staging (encoded vectors, banked ring chunks)
	rcvB []byte // receive-side staging (posted ring/tree buffers)
	vec1 [1]float64

	st *commStats
}

// New creates a communicator with default tuning. timeout bounds each
// whole collective call (<=0 waits forever).
func New(ph *core.Photon, timeout time.Duration) *Comm {
	return NewWithConfig(ph, Config{Timeout: timeout})
}

// NewWithConfig creates a tuned communicator over the whole job. Ranks
// must agree on the algorithm-affecting fields (Radix,
// SmallAllreduceMax, SegmentBytes, ForceAllreduce) — schedules are
// compiled locally and must match. Panics if the job exceeds MaxRanks
// (the collective RID layout).
func NewWithConfig(ph *core.Photon, cfg Config) *Comm {
	if ph.Size() > MaxRanks {
		panic(fmt.Sprintf("collectives: job size %d exceeds MaxRanks %d", ph.Size(), MaxRanks))
	}
	group := make([]int, ph.Size())
	for i := range group {
		group[i] = i
	}
	st := &commStats{}
	c := newComm(ph, cfg, group, 0, st)
	ph.AddGaugeSource(st.gauges)
	return c
}

// newComm builds a communicator over an explicit membership table.
// group maps comm rank to engine rank and must contain ph.Rank().
func newComm(ph *core.Photon, cfg Config, group []int, epoch uint64, st *commStats) *Comm {
	rank := -1
	for i, er := range group {
		if er == ph.Rank() {
			rank = i
			break
		}
	}
	if rank < 0 {
		panic(fmt.Sprintf("collectives: engine rank %d not in membership table", ph.Rank()))
	}
	c := &Comm{
		ph:      ph,
		rank:    rank,
		size:    len(group),
		cfg:     cfg.withDefaults(),
		timeout: cfg.Timeout,
		group:   group,
		epoch:   epoch,
		genBase: (epoch % maxEpochs) << callGenBits,
		w:       core.NewWaiter(ph),
		trees:   make(map[int]*treeSched),
		st:      st,
	}
	c.deadRank.Store(-1)
	c.compileRevokeEdges()
	return c
}

// cgen maps a per-Comm call counter into the RID generation field: the
// high bits carry the epoch (fencing stale-generation traffic across
// Shrink), the low callGenBits the call number. The low bit — which
// drives arena banking — is preserved.
func (c *Comm) cgen(g uint64) uint64 {
	return c.genBase | (g & (1<<callGenBits - 1))
}

// Rank returns the caller's comm rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Epoch returns the membership epoch (0 for a root Comm, bumped by
// every Shrink).
func (c *Comm) Epoch() uint64 { return c.epoch }

// EngineRank translates a comm rank to the underlying engine rank.
func (c *Comm) EngineRank(r int) int { return c.group[r] }

// obsStart opens a latency observation when metrics are on.
func (c *Comm) obsStart(k metrics.CollKind) time.Time {
	c.st.calls[k].Add(1)
	if c.ph.MetricsRegistry().Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// obsEnd records the whole-collective latency opened by obsStart.
func (c *Comm) obsEnd(k metrics.CollKind, t0 time.Time) {
	if !t0.IsZero() {
		c.ph.MetricsRegistry().RecordColl(k, int64(time.Since(t0)))
	}
}

// ---------------------------------------------------------------------
// Nonblocking post + wait helpers
// ---------------------------------------------------------------------

// sendNB posts a message, driving progress through transient
// backpressure (ErrWouldBlock). The retry loop is failure-aware: a
// destination latched down, an arrived revocation notice, or the
// whole-collective deadline ends the spin instead of livelocking
// against a dead peer. dst is a comm rank.
func (c *Comm) sendNB(dst int, data []byte, localRID, remoteRID uint64) error {
	for {
		err := c.ph.Send(c.group[dst], data, localRID, remoteRID)
		if err == nil {
			return nil
		}
		if !errors.Is(err, core.ErrWouldBlock) {
			return c.filterPost(err, dst)
		}
		if err := c.stall(dst); err != nil {
			return err
		}
		if c.ph.Progress() == 0 {
			c.w.Idle()
		} else {
			c.w.Progressed()
		}
	}
}

// putNB posts a one-sided put the same way.
func (c *Comm) putNB(dst int, data []byte, rb mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	for {
		err := c.ph.PutWithCompletion(c.group[dst], data, rb, off, localRID, remoteRID)
		if err == nil {
			return nil
		}
		if !errors.Is(err, core.ErrWouldBlock) {
			return c.filterPost(err, dst)
		}
		if err := c.stall(dst); err != nil {
			return err
		}
		if c.ph.Progress() == 0 {
			c.w.Idle()
		} else {
			c.w.Progressed()
		}
	}
}

// waitAll is the failure-aware batched reap behind every collective
// wait: the engine-rank watch set is derived from the awaited RIDs'
// source fields, the comm's revocation-notice RIDs abort the wait from
// out-of-band, and the whole-collective deadline bounds it. Abort
// conditions are converted into the comm's revocation (filterWait).
func (c *Comm) waitAll(rids []uint64, out []core.Completion, local bool) error {
	return c.filterWait(c.waitAllRaw(rids, out, local))
}

// waitAllRaw is waitAll without the revocation conversion: Shrink's
// agreement rounds use it to observe further failures (raw ErrPeerDown
// with c.spec.DownRank set, or core.ErrWaitAborted with c.spec.Aborted
// carrying the notice) without condemning its own retry loop.
func (c *Comm) waitAllRaw(rids []uint64, out []core.Completion, local bool) error {
	c.watch = c.watch[:0]
	for _, r := range rids {
		if r == 0 {
			continue
		}
		src := int(r & (MaxRanks - 1))
		if src == c.rank || src >= c.size {
			continue
		}
		er := c.group[src]
		dup := false
		for _, w := range c.watch {
			if w == er {
				dup = true
				break
			}
		}
		if !dup {
			c.watch = append(c.watch, er)
		}
	}
	c.spec.Deadline = c.deadline
	c.spec.Watch = c.watch
	c.spec.AbortRIDs = c.revokeRIDs
	if local {
		return c.ph.WaitLocalAllSpec(c.w, rids, out, &c.spec)
	}
	return c.ph.WaitRemoteAllSpec(c.w, rids, out, &c.spec)
}

// wait1 reaps a single completion through the shared waiter scratch.
func (c *Comm) wait1(r uint64, local bool) (core.Completion, error) {
	c.rid1[0] = r
	c.comp1[0] = core.Completion{}
	err := c.waitAll(c.rid1[:], c.comp1[:], local)
	return c.comp1[0], err
}

// compsFor returns the completion scratch sized for n entries.
func (c *Comm) compsFor(n int) []core.Completion {
	if cap(c.comps) < n {
		c.comps = make([]core.Completion, n)
	}
	s := c.comps[:n]
	for i := range s {
		s[i] = core.Completion{}
	}
	return s
}

// needFIN reports whether a send of n bytes goes rendezvous, in which
// case the engine references the buffer until the FIN arrives and the
// sender must carry a local RID and drain it before reusing or
// returning the memory.
func (c *Comm) needFIN(n int) bool { return n > c.ph.EagerThreshold() }

// trackSend posts a send, attaching a local RID (collected for
// drainLocal) only when the payload size requires FIN tracking.
func (c *Comm) trackSend(dst int, data []byte, localRID, remoteRID uint64) error {
	if !c.needFIN(len(data)) {
		localRID = 0
	} else {
		c.lrids = append(c.lrids, localRID)
	}
	return c.sendNB(dst, data, localRID, remoteRID)
}

// drainLocal reaps every local RID collected by trackSend, releasing
// the engine's hold on the corresponding buffers.
func (c *Comm) drainLocal() error {
	if len(c.lrids) == 0 {
		return nil
	}
	out := c.compsFor(len(c.lrids))
	err := c.waitAll(c.lrids, out, true)
	c.lrids = c.lrids[:0]
	for i := range out {
		out[i] = core.Completion{}
	}
	return err
}

// ---------------------------------------------------------------------
// Payload scratch
// ---------------------------------------------------------------------

func (c *Comm) sendScratch(n int) []byte {
	if cap(c.scrB) < n {
		c.scrB = make([]byte, n)
	}
	return c.scrB[:n]
}

func (c *Comm) recvScratch(n int) []byte {
	if cap(c.rcvB) < n {
		c.rcvB = make([]byte, n)
	}
	return c.rcvB[:n]
}

func (c *Comm) accFor(n int) []float64 {
	if cap(c.accF) < n {
		c.accF = make([]float64, n)
	}
	return c.accF[:n]
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

// Barrier blocks until every rank has entered it: radix-k dissemination
// with every round's notifications posted nonblocking and reaped in one
// wait, so the critical path is ceil(log_k N) network latencies.
func (c *Comm) Barrier() error {
	if err := c.enter(); err != nil {
		return err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollBarrier)
	defer c.obsEnd(metrics.CollBarrier, t0)
	if c.size == 1 {
		return nil
	}
	return c.barrier(gen)
}

// Bcast distributes root's data to every rank (k-nomial tree, segmented
// above SegmentBytes) and returns each rank's copy. The root's return
// value is data itself; non-roots receive into buffers the delivery
// lands in directly — no rank copies the payload more than once.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollBcast)
	defer c.obsEnd(metrics.CollBcast, t0)
	if c.size == 1 {
		return data, nil
	}
	return c.bcast(gen, root, data)
}

// BcastInto distributes the root's buf into every rank's buf, which
// must have the same length on all ranks. Unlike Bcast there is no
// length header round and no allocation: deliveries are posted straight
// into buf. The root's buf is the payload; other ranks' contents are
// overwritten.
func (c *Comm) BcastInto(root int, buf []byte) error {
	if root < 0 || root >= c.size {
		return core.ErrBadRank
	}
	if err := c.enter(); err != nil {
		return err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollBcast)
	defer c.obsEnd(metrics.CollBcast, t0)
	if c.size == 1 {
		return nil
	}
	return c.bcastInto(gen, root, buf)
}

// Reduce combines each rank's vector elementwise with op; the result is
// returned at root (nil elsewhere). K-nomial tree combine with child
// contributions received into pre-posted buffers.
func (c *Comm) Reduce(root int, data []float64, op Op) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollReduce)
	defer c.obsEnd(metrics.CollReduce, t0)
	acc := c.accFor(len(data))
	copy(acc, data)
	if c.size > 1 {
		if err := c.reduceVec(gen, kindReduce, root, acc, op); err != nil {
			return nil, err
		}
	}
	if c.rank == root {
		out := make([]float64, len(acc))
		copy(out, acc)
		return out, nil
	}
	return nil, nil
}

// Allreduce combines every rank's vector and distributes the result to
// all ranks, returning a fresh slice. The algorithm is chosen by
// encoded size: recursive doubling over the registered arena below
// SmallAllreduceMax, bandwidth-optimal ring reduce-scatter + allgather
// when the vector has at least one element per rank, tree reduce +
// broadcast in between. Use AllreduceInPlace to avoid the result
// allocation.
func (c *Comm) Allreduce(data []float64, op Op) ([]float64, error) {
	out := make([]float64, len(data))
	copy(out, data)
	if err := c.AllreduceInPlace(out, op); err != nil {
		return nil, err
	}
	return out, nil
}

// AllreduceInPlace is Allreduce overwriting vec with the result. On the
// small-vector path this allocates nothing after warmup.
func (c *Comm) AllreduceInPlace(vec []float64, op Op) error {
	if err := c.enter(); err != nil {
		return err
	}
	t0 := c.obsStart(metrics.CollAllreduce)
	defer c.obsEnd(metrics.CollAllreduce, t0)
	if c.size == 1 {
		c.gen.Add(1)
		return nil
	}
	switch c.pickAllreduce(len(vec)) {
	case algoRD:
		c.st.algos[algoRD].Add(1)
		return c.allreduceRD(c.cgen(c.rdGen.Add(1)), vec, op)
	case algoRing:
		c.st.algos[algoRing].Add(1)
		return c.allreduceRing(c.cgen(c.gen.Add(1)), vec, op)
	default:
		c.st.algos[algoTree].Add(1)
		return c.allreduceTree(c.cgen(c.gen.Add(1)), vec, op)
	}
}

// pickAllreduce selects the allreduce algorithm. Pure in (vector
// length, size, config), so every rank picks the same schedule.
func (c *Comm) pickAllreduce(n int) int {
	fitsRD := 8*n <= c.cfg.SmallAllreduceMax
	fitsRing := n >= c.size
	switch c.cfg.ForceAllreduce {
	case "rd":
		if fitsRD {
			return algoRD
		}
	case "ring":
		if fitsRing {
			return algoRing
		}
	case "tree":
		return algoTree
	}
	if fitsRD {
		return algoRD
	}
	if fitsRing {
		return algoRing
	}
	return algoTree
}

// AllreduceScalar is Allreduce for one value; it allocates nothing
// after warmup.
func (c *Comm) AllreduceScalar(x float64, op Op) (float64, error) {
	c.vec1[0] = x
	if err := c.AllreduceInPlace(c.vec1[:], op); err != nil {
		return 0, err
	}
	return c.vec1[0], nil
}

// Gather collects every rank's blob at root, indexed by rank (nil
// elsewhere). Flat gather with the root reaping all N-1 transfers in
// one wait.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollGather)
	defer c.obsEnd(metrics.CollGather, t0)
	return c.gather(gen, root, data)
}

// Allgather collects every rank's blob at every rank (ring algorithm
// with zero-copy forwarding: each received blob is relayed as-is).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollAllgather)
	defer c.obsEnd(metrics.CollAllgather, t0)
	return c.allgather(gen, data)
}

// Alltoall delivers blobs[i] from each rank to rank i, returning the
// blobs addressed to the caller, indexed by source. All N-1 sends are
// posted before any wait, so the exchange is limited by link bandwidth
// and ledger credits, not round-trip latency.
func (c *Comm) Alltoall(blobs [][]byte) ([][]byte, error) {
	if len(blobs) != c.size {
		return nil, fmt.Errorf("collectives: alltoall needs %d blobs, got %d", c.size, len(blobs))
	}
	if err := c.enter(); err != nil {
		return nil, err
	}
	gen := c.cgen(c.gen.Add(1))
	t0 := c.obsStart(metrics.CollAlltoall)
	defer c.obsEnd(metrics.CollAlltoall, t0)
	return c.alltoall(gen, blobs)
}

// ---------------------------------------------------------------------
// Float encoding
// ---------------------------------------------------------------------

func encodeF64(v []float64) []byte {
	b := make([]byte, 8*len(v))
	encodeF64Into(b, v)
	return b
}

// encodeF64Into writes v into b, which must hold 8*len(v) bytes.
func encodeF64Into(b []byte, v []float64) {
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
}

func decodeF64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("collectives: float vector blob of %d bytes", len(b))
	}
	v := make([]float64, len(b)/8)
	decodeF64Into(v, b)
	return v, nil
}

// decodeF64Into overwrites v from b; len(b) must be 8*len(v).
func decodeF64Into(v []float64, b []byte) {
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// decodeCombineF64 folds the encoded vector in b into v elementwise.
func decodeCombineF64(v []float64, b []byte, op Op) {
	for i := range v {
		x := math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		v[i] = op.apply(v[i], x)
	}
}
