// Package collectives provides the group operations runtime systems
// need at startup and synchronization points — barrier, broadcast,
// reduce, allreduce, gather, allgather, and all-to-all — implemented
// purely over Photon's one-sided message primitive, the way the
// original middleware layers its collective support over PWC.
//
// Algorithms are the standard logarithmic ones: dissemination barrier,
// binomial-tree broadcast/reduce, ring allgather, pairwise all-to-all.
//
// Every rank of the job must call each collective, with the same
// arguments where semantics require it, in the same order (MPI-style
// collective semantics). Completion identifiers used internally live in
// the reserved RID space (top bit set); user RIDs must keep the top bit
// clear.
package collectives

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"photon/internal/core"
)

// ErrSizeMismatch is returned when ranks disagree on vector lengths.
var ErrSizeMismatch = errors.New("collectives: vector length mismatch across ranks")

// Op is a reduction operator over float64.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpProd
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	case OpProd:
		return a * b
	}
	panic(fmt.Sprintf("collectives: unknown op %d", o))
}

// RID space layout: 1<<63 | gen<<20 | kind<<16 | round<<8 | src.
const ridBase = uint64(1) << 63

const (
	kindBarrier = iota + 1
	kindBcast
	kindReduce
	kindGather
	kindAllgather
	kindAlltoall
)

// Comm is a collective communicator bound to one Photon instance. All
// ranks construct their Comm over their own instance; the generation
// counters advance in lockstep because collectives are called
// collectively.
type Comm struct {
	ph      *core.Photon
	rank    int
	size    int
	gen     atomic.Uint64
	timeout time.Duration
}

// New creates a communicator. timeout bounds each internal wait (<=0
// waits forever); production runs use a generous bound so a wedged peer
// surfaces as an error instead of a hang.
func New(ph *core.Photon, timeout time.Duration) *Comm {
	return &Comm{ph: ph, rank: ph.Rank(), size: ph.Size(), timeout: timeout}
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the job size.
func (c *Comm) Size() int { return c.size }

func rid(gen uint64, kind, round, src int) uint64 {
	return ridBase | gen<<20 | uint64(kind)<<16 | uint64(round)<<8 | uint64(src)
}

// send transmits an internal collective message.
func (c *Comm) send(dst int, data []byte, r uint64) error {
	return c.ph.SendBlocking(dst, data, 0, r)
}

// recv waits for an internal collective message.
func (c *Comm) recv(r uint64) ([]byte, error) {
	comp, err := c.ph.WaitRemote(r, c.timeout)
	if err != nil {
		return nil, err
	}
	if comp.Err != nil {
		return nil, comp.Err
	}
	return comp.Data, nil
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2(n)) rounds of pairwise notifications).
func (c *Comm) Barrier() error {
	gen := c.gen.Add(1)
	if c.size == 1 {
		return nil
	}
	for round, dist := 0, 1; dist < c.size; round, dist = round+1, dist*2 {
		to := (c.rank + dist) % c.size
		from := (c.rank - dist + c.size) % c.size
		if err := c.send(to, nil, rid(gen, kindBarrier, round, c.rank)); err != nil {
			return err
		}
		if _, err := c.recv(rid(gen, kindBarrier, round, from)); err != nil {
			return err
		}
	}
	// Push any batched credit returns out so a peer that is about to
	// go quiet doesn't strand them.
	c.ph.Flush()
	return nil
}

// Bcast distributes root's data to every rank (binomial tree) and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	gen := c.gen.Add(1)
	if c.size == 1 {
		return data, nil
	}
	// Work in root-relative rank space.
	vrank := (c.rank - root + c.size) % c.size
	buf := data
	if vrank != 0 {
		// Receive once from the parent.
		got, err := c.recv(rid(gen, kindBcast, 0, 0))
		if err != nil {
			return nil, err
		}
		buf = got
	}
	// Forward to children: vrank + 2^k for each k where 2^k > vrank's
	// low set bits... standard binomial: children are vrank | 2^k for
	// 2^k > vrank, while vrank | 2^k < size.
	for dist := 1; dist < c.size; dist *= 2 {
		if vrank < dist {
			child := vrank + dist
			if child < c.size {
				dst := (child + root) % c.size
				if err := c.send(dst, buf, rid(gen, kindBcast, 0, 0)); err != nil {
					return nil, err
				}
			}
		} else if vrank < dist*2 {
			// This node receives at round log2(dist); handled above
			// by the single receive (parent sends exactly once).
			continue
		}
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	return out, nil
}

// Reduce combines each rank's vector elementwise with op; the result is
// returned at root (nil elsewhere). Binomial-tree combine.
func (c *Comm) Reduce(root int, data []float64, op Op) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	gen := c.gen.Add(1)
	acc := make([]float64, len(data))
	copy(acc, data)
	vrank := (c.rank - root + c.size) % c.size
	for dist := 1; dist < c.size; dist *= 2 {
		if vrank%(dist*2) == 0 {
			peer := vrank + dist
			if peer < c.size {
				src := (peer + root) % c.size
				got, err := c.recv(rid(gen, kindReduce, 0, src))
				if err != nil {
					return nil, err
				}
				vec, err := decodeF64(got)
				if err != nil {
					return nil, err
				}
				if len(vec) != len(acc) {
					return nil, ErrSizeMismatch
				}
				for i := range acc {
					acc[i] = op.apply(acc[i], vec[i])
				}
			}
		} else if vrank%(dist*2) == dist {
			parent := vrank - dist
			dst := (parent + root) % c.size
			if err := c.send(dst, encodeF64(acc), rid(gen, kindReduce, 0, c.rank)); err != nil {
				return nil, err
			}
			break
		}
	}
	if c.rank == root {
		return acc, nil
	}
	return nil, nil
}

// Allreduce combines every rank's vector and distributes the result to
// all ranks (reduce to 0 + broadcast).
func (c *Comm) Allreduce(data []float64, op Op) ([]float64, error) {
	red, err := c.Reduce(0, data, op)
	if err != nil {
		return nil, err
	}
	var blob []byte
	if c.rank == 0 {
		blob = encodeF64(red)
	}
	out, err := c.Bcast(0, blob)
	if err != nil {
		return nil, err
	}
	return decodeF64(out)
}

// AllreduceScalar is Allreduce for one value.
func (c *Comm) AllreduceScalar(x float64, op Op) (float64, error) {
	v, err := c.Allreduce([]float64{x}, op)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

// Gather collects every rank's blob at root, indexed by rank (nil
// elsewhere). Flat gather: fine at the rank counts the simulator runs.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	gen := c.gen.Add(1)
	if c.rank != root {
		if err := c.send(root, data, rid(gen, kindGather, 0, c.rank)); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]byte, c.size)
	out[root] = append([]byte(nil), data...)
	for src := 0; src < c.size; src++ {
		if src == root {
			continue
		}
		got, err := c.recv(rid(gen, kindGather, 0, src))
		if err != nil {
			return nil, err
		}
		out[src] = got
	}
	return out, nil
}

// Allgather collects every rank's blob at every rank (ring algorithm:
// size-1 forwarding steps).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	gen := c.gen.Add(1)
	out := make([][]byte, c.size)
	out[c.rank] = append([]byte(nil), data...)
	if c.size == 1 {
		return out, nil
	}
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	carry := out[c.rank]
	for step := 0; step < c.size-1; step++ {
		if err := c.send(right, carry, rid(gen, kindAllgather, step, c.rank)); err != nil {
			return nil, err
		}
		got, err := c.recv(rid(gen, kindAllgather, step, left))
		if err != nil {
			return nil, err
		}
		// The blob received at step s originated at rank-1-s.
		origin := (c.rank - 1 - step + 2*c.size) % c.size
		out[origin] = got
		carry = got
	}
	return out, nil
}

// Alltoall delivers blobs[i] from each rank to rank i, returning the
// blobs addressed to the caller, indexed by source (pairwise exchange).
func (c *Comm) Alltoall(blobs [][]byte) ([][]byte, error) {
	if len(blobs) != c.size {
		return nil, fmt.Errorf("collectives: alltoall needs %d blobs, got %d", c.size, len(blobs))
	}
	gen := c.gen.Add(1)
	out := make([][]byte, c.size)
	out[c.rank] = append([]byte(nil), blobs[c.rank]...)
	for step := 1; step < c.size; step++ {
		dst := (c.rank + step) % c.size
		src := (c.rank - step + c.size) % c.size
		if err := c.send(dst, blobs[dst], rid(gen, kindAlltoall, step, c.rank)); err != nil {
			return nil, err
		}
		got, err := c.recv(rid(gen, kindAlltoall, step, src))
		if err != nil {
			return nil, err
		}
		out[src] = got
	}
	return out, nil
}

func encodeF64(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

func decodeF64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("collectives: float vector blob of %d bytes", len(b))
	}
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v, nil
}
