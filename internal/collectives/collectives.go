// Package collectives provides the group operations runtime systems
// need at startup and synchronization points — barrier, broadcast,
// reduce, allreduce, gather, allgather, and all-to-all — implemented
// purely over Photon's one-sided primitives, the way the original
// middleware layers its collective support over PWC.
//
// Collectives compile into reusable per-Comm schedules (see
// schedule.go): each call posts a round's edges nonblocking and reaps
// the round's completions together, so a round costs one network
// latency regardless of fan-out. Algorithms are selected by vector
// size and job size:
//
//	barrier     radix-k dissemination, ceil(log_k N) rounds
//	bcast       k-nomial tree, segmented and pipelined above SegmentBytes
//	reduce      k-nomial tree combine with pre-posted child receives
//	allreduce   recursive doubling over a registered PWC arena (small),
//	            ring reduce-scatter + allgather (large, bandwidth-
//	            optimal), tree reduce + bcast (in between)
//	gather      flat, all sends in flight at once
//	allgather   ring, zero-copy forwarding
//	alltoall    pairwise, all N-1 sends posted before any wait
//
// Steady state allocates nothing on the barrier and in-place small
// allreduce paths: schedules, wait scratch, and the RD arena are
// per-Comm state, and payloads move through posted receives or the
// registered arena.
//
// Every rank of the job must call each collective, with the same
// arguments where semantics require it, in the same order (MPI-style
// collective semantics). A Comm is not safe for concurrent use by
// multiple goroutines. Completion identifiers used internally live in
// the reserved RID space (top bit set); user RIDs must keep the top
// bit clear.
package collectives

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/metrics"
)

// ErrSizeMismatch is returned when ranks disagree on vector lengths.
var ErrSizeMismatch = errors.New("collectives: vector length mismatch across ranks")

// Op is a reduction operator over float64.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
	OpProd
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	case OpProd:
		return a * b
	}
	panic(fmt.Sprintf("collectives: unknown op %d", o))
}

// Config tunes a communicator. The zero value of every field selects a
// sensible default.
type Config struct {
	// Timeout bounds each internal wait (<=0 waits forever); production
	// runs use a generous bound so a wedged peer surfaces as an error
	// instead of a hang.
	Timeout time.Duration

	// Radix is the tree/dissemination fan-out k (default 2). Higher
	// radix trades more messages per round for fewer rounds — with
	// nonblocking rounds the extra messages overlap, so radix 4 barriers
	// halve the round count at the same per-round latency.
	Radix int

	// SmallAllreduceMax is the largest encoded vector (bytes) served by
	// the recursive-doubling arena path, and the arena slot size.
	// Default 4096.
	SmallAllreduceMax int

	// SegmentBytes is the bcast/ring pipeline segment size (default
	// 32KiB). Payloads larger than one segment are split and streamed so
	// transfer overlaps forwarding down the tree. Segments at or below
	// the eager threshold ride the doorbell-batched eager path;
	// larger segments go rendezvous.
	SegmentBytes int

	// ForceAllreduce pins the allreduce algorithm for benchmarking:
	// "rd", "ring", "tree", or "" for size-based selection. Forced
	// choices that the vector cannot satisfy (rd beyond the arena slot,
	// ring with fewer elements than ranks) fall back to selection.
	ForceAllreduce string
}

func (cfg Config) withDefaults() Config {
	if cfg.Radix < 2 {
		cfg.Radix = 2
	}
	if cfg.Radix > 16 {
		cfg.Radix = 16
	}
	if cfg.SmallAllreduceMax <= 0 {
		cfg.SmallAllreduceMax = 4096
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 32 << 10
	}
	return cfg
}

// numCollKinds sizes the per-kind counters (metrics.CollKind domain).
const numCollKinds = int(metrics.CollAlltoall) + 1

// Allreduce algorithm counters.
const (
	algoRD = iota
	algoRing
	algoTree
	numAlgos
)

var algoNames = [numAlgos]string{"rd", "ring", "tree"}

// Comm is a collective communicator bound to one Photon instance. All
// ranks construct their Comm over their own instance; the generation
// counters advance in lockstep because collectives are called
// collectively.
//
// A Comm is not safe for concurrent use: its wait pacer and scratch
// buffers are per-instance state. Create one Comm per calling
// goroutine (they share the Photon instance safely).
type Comm struct {
	ph      *core.Photon
	rank    int
	size    int
	cfg     Config
	timeout time.Duration

	gen   atomic.Uint64 // shared collective generation (RID uniqueness)
	rdGen atomic.Uint64 // RD-allreduce call counter (arena banking)

	w *core.Waiter

	// Compiled schedules (schedule.go), built on first use.
	barSched *barrierSched
	trees    map[int]*treeSched
	rd       *rdSched
	arena    *collArena

	// Wait scratch, reused across calls.
	rids  []uint64
	lrids []uint64
	comps []core.Completion
	rid1  [1]uint64
	comp1 [1]core.Completion

	// Payload scratch, grown on demand and retained.
	accF []float64
	scrB []byte // send-side staging (encoded vectors, banked ring chunks)
	rcvB []byte // receive-side staging (posted ring/tree buffers)
	vec1 [1]float64

	calls [numCollKinds]atomic.Int64
	algos [numAlgos]atomic.Int64
}

// New creates a communicator with default tuning. timeout bounds each
// internal wait (<=0 waits forever).
func New(ph *core.Photon, timeout time.Duration) *Comm {
	return NewWithConfig(ph, Config{Timeout: timeout})
}

// NewWithConfig creates a tuned communicator. Ranks must agree on the
// algorithm-affecting fields (Radix, SmallAllreduceMax, SegmentBytes,
// ForceAllreduce) — schedules are compiled locally and must match.
// Panics if the job exceeds MaxRanks (the collective RID layout).
func NewWithConfig(ph *core.Photon, cfg Config) *Comm {
	if ph.Size() > MaxRanks {
		panic(fmt.Sprintf("collectives: job size %d exceeds MaxRanks %d", ph.Size(), MaxRanks))
	}
	c := &Comm{
		ph:      ph,
		rank:    ph.Rank(),
		size:    ph.Size(),
		cfg:     cfg.withDefaults(),
		timeout: cfg.Timeout,
		w:       core.NewWaiter(ph),
		trees:   make(map[int]*treeSched),
	}
	ph.AddGaugeSource(c.gauges)
	return c
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the job size.
func (c *Comm) Size() int { return c.size }

// gauges contributes coll_* counters to Photon.Metrics snapshots.
func (c *Comm) gauges(set func(name string, v int64)) {
	for k := 0; k < numCollKinds; k++ {
		if n := c.calls[k].Load(); n > 0 {
			set("coll_"+metrics.CollKind(k).String()+"_calls", n)
		}
	}
	for a := 0; a < numAlgos; a++ {
		if n := c.algos[a].Load(); n > 0 {
			set("coll_allreduce_"+algoNames[a], n)
		}
	}
}

// obsStart opens a latency observation when metrics are on.
func (c *Comm) obsStart(k metrics.CollKind) time.Time {
	c.calls[k].Add(1)
	if c.ph.MetricsRegistry().Enabled() {
		return time.Now()
	}
	return time.Time{}
}

// obsEnd records the whole-collective latency opened by obsStart.
func (c *Comm) obsEnd(k metrics.CollKind, t0 time.Time) {
	if !t0.IsZero() {
		c.ph.MetricsRegistry().RecordColl(k, int64(time.Since(t0)))
	}
}

// ---------------------------------------------------------------------
// Nonblocking post + wait helpers
// ---------------------------------------------------------------------

// sendNB posts a message, driving progress through transient
// backpressure (ErrWouldBlock) without blocking on the completion.
func (c *Comm) sendNB(dst int, data []byte, localRID, remoteRID uint64) error {
	for {
		err := c.ph.Send(dst, data, localRID, remoteRID)
		if err == nil || !errors.Is(err, core.ErrWouldBlock) {
			return err
		}
		if c.ph.Progress() == 0 {
			c.w.Idle()
		} else {
			c.w.Progressed()
		}
	}
}

// putNB posts a one-sided put the same way.
func (c *Comm) putNB(dst int, data []byte, rb mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	for {
		err := c.ph.PutWithCompletion(dst, data, rb, off, localRID, remoteRID)
		if err == nil || !errors.Is(err, core.ErrWouldBlock) {
			return err
		}
		if c.ph.Progress() == 0 {
			c.w.Idle()
		} else {
			c.w.Progressed()
		}
	}
}

// wait1 reaps a single completion through the shared waiter scratch.
func (c *Comm) wait1(r uint64, local bool) (core.Completion, error) {
	c.rid1[0] = r
	c.comp1[0] = core.Completion{}
	var err error
	if local {
		err = c.ph.WaitLocalAll(c.w, c.rid1[:], c.comp1[:], c.timeout)
	} else {
		err = c.ph.WaitRemoteAll(c.w, c.rid1[:], c.comp1[:], c.timeout)
	}
	return c.comp1[0], err
}

// compsFor returns the completion scratch sized for n entries.
func (c *Comm) compsFor(n int) []core.Completion {
	if cap(c.comps) < n {
		c.comps = make([]core.Completion, n)
	}
	s := c.comps[:n]
	for i := range s {
		s[i] = core.Completion{}
	}
	return s
}

// needFIN reports whether a send of n bytes goes rendezvous, in which
// case the engine references the buffer until the FIN arrives and the
// sender must carry a local RID and drain it before reusing or
// returning the memory.
func (c *Comm) needFIN(n int) bool { return n > c.ph.EagerThreshold() }

// trackSend posts a send, attaching a local RID (collected for
// drainLocal) only when the payload size requires FIN tracking.
func (c *Comm) trackSend(dst int, data []byte, localRID, remoteRID uint64) error {
	if !c.needFIN(len(data)) {
		localRID = 0
	} else {
		c.lrids = append(c.lrids, localRID)
	}
	return c.sendNB(dst, data, localRID, remoteRID)
}

// drainLocal reaps every local RID collected by trackSend, releasing
// the engine's hold on the corresponding buffers.
func (c *Comm) drainLocal() error {
	if len(c.lrids) == 0 {
		return nil
	}
	out := c.compsFor(len(c.lrids))
	err := c.ph.WaitLocalAll(c.w, c.lrids, out, c.timeout)
	c.lrids = c.lrids[:0]
	for i := range out {
		out[i] = core.Completion{}
	}
	return err
}

// ---------------------------------------------------------------------
// Payload scratch
// ---------------------------------------------------------------------

func (c *Comm) sendScratch(n int) []byte {
	if cap(c.scrB) < n {
		c.scrB = make([]byte, n)
	}
	return c.scrB[:n]
}

func (c *Comm) recvScratch(n int) []byte {
	if cap(c.rcvB) < n {
		c.rcvB = make([]byte, n)
	}
	return c.rcvB[:n]
}

func (c *Comm) accFor(n int) []float64 {
	if cap(c.accF) < n {
		c.accF = make([]float64, n)
	}
	return c.accF[:n]
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

// Barrier blocks until every rank has entered it: radix-k dissemination
// with every round's notifications posted nonblocking and reaped in one
// wait, so the critical path is ceil(log_k N) network latencies.
func (c *Comm) Barrier() error {
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollBarrier)
	defer c.obsEnd(metrics.CollBarrier, t0)
	if c.size == 1 {
		return nil
	}
	return c.barrier(gen)
}

// Bcast distributes root's data to every rank (k-nomial tree, segmented
// above SegmentBytes) and returns each rank's copy. The root's return
// value is data itself; non-roots receive into buffers the delivery
// lands in directly — no rank copies the payload more than once.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollBcast)
	defer c.obsEnd(metrics.CollBcast, t0)
	if c.size == 1 {
		return data, nil
	}
	return c.bcast(gen, root, data)
}

// BcastInto distributes the root's buf into every rank's buf, which
// must have the same length on all ranks. Unlike Bcast there is no
// length header round and no allocation: deliveries are posted straight
// into buf. The root's buf is the payload; other ranks' contents are
// overwritten.
func (c *Comm) BcastInto(root int, buf []byte) error {
	if root < 0 || root >= c.size {
		return core.ErrBadRank
	}
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollBcast)
	defer c.obsEnd(metrics.CollBcast, t0)
	if c.size == 1 {
		return nil
	}
	return c.bcastInto(gen, root, buf)
}

// Reduce combines each rank's vector elementwise with op; the result is
// returned at root (nil elsewhere). K-nomial tree combine with child
// contributions received into pre-posted buffers.
func (c *Comm) Reduce(root int, data []float64, op Op) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollReduce)
	defer c.obsEnd(metrics.CollReduce, t0)
	acc := c.accFor(len(data))
	copy(acc, data)
	if c.size > 1 {
		if err := c.reduceVec(gen, kindReduce, root, acc, op); err != nil {
			return nil, err
		}
	}
	if c.rank == root {
		out := make([]float64, len(acc))
		copy(out, acc)
		return out, nil
	}
	return nil, nil
}

// Allreduce combines every rank's vector and distributes the result to
// all ranks, returning a fresh slice. The algorithm is chosen by
// encoded size: recursive doubling over the registered arena below
// SmallAllreduceMax, bandwidth-optimal ring reduce-scatter + allgather
// when the vector has at least one element per rank, tree reduce +
// broadcast in between. Use AllreduceInPlace to avoid the result
// allocation.
func (c *Comm) Allreduce(data []float64, op Op) ([]float64, error) {
	out := make([]float64, len(data))
	copy(out, data)
	if err := c.AllreduceInPlace(out, op); err != nil {
		return nil, err
	}
	return out, nil
}

// AllreduceInPlace is Allreduce overwriting vec with the result. On the
// small-vector path this allocates nothing after warmup.
func (c *Comm) AllreduceInPlace(vec []float64, op Op) error {
	t0 := c.obsStart(metrics.CollAllreduce)
	defer c.obsEnd(metrics.CollAllreduce, t0)
	if c.size == 1 {
		c.gen.Add(1)
		return nil
	}
	switch c.pickAllreduce(len(vec)) {
	case algoRD:
		c.algos[algoRD].Add(1)
		return c.allreduceRD(c.rdGen.Add(1), vec, op)
	case algoRing:
		c.algos[algoRing].Add(1)
		return c.allreduceRing(c.gen.Add(1), vec, op)
	default:
		c.algos[algoTree].Add(1)
		return c.allreduceTree(c.gen.Add(1), vec, op)
	}
}

// pickAllreduce selects the allreduce algorithm. Pure in (vector
// length, size, config), so every rank picks the same schedule.
func (c *Comm) pickAllreduce(n int) int {
	fitsRD := 8*n <= c.cfg.SmallAllreduceMax
	fitsRing := n >= c.size
	switch c.cfg.ForceAllreduce {
	case "rd":
		if fitsRD {
			return algoRD
		}
	case "ring":
		if fitsRing {
			return algoRing
		}
	case "tree":
		return algoTree
	}
	if fitsRD {
		return algoRD
	}
	if fitsRing {
		return algoRing
	}
	return algoTree
}

// AllreduceScalar is Allreduce for one value; it allocates nothing
// after warmup.
func (c *Comm) AllreduceScalar(x float64, op Op) (float64, error) {
	c.vec1[0] = x
	if err := c.AllreduceInPlace(c.vec1[:], op); err != nil {
		return 0, err
	}
	return c.vec1[0], nil
}

// Gather collects every rank's blob at root, indexed by rank (nil
// elsewhere). Flat gather with the root reaping all N-1 transfers in
// one wait.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= c.size {
		return nil, core.ErrBadRank
	}
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollGather)
	defer c.obsEnd(metrics.CollGather, t0)
	return c.gather(gen, root, data)
}

// Allgather collects every rank's blob at every rank (ring algorithm
// with zero-copy forwarding: each received blob is relayed as-is).
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollAllgather)
	defer c.obsEnd(metrics.CollAllgather, t0)
	return c.allgather(gen, data)
}

// Alltoall delivers blobs[i] from each rank to rank i, returning the
// blobs addressed to the caller, indexed by source. All N-1 sends are
// posted before any wait, so the exchange is limited by link bandwidth
// and ledger credits, not round-trip latency.
func (c *Comm) Alltoall(blobs [][]byte) ([][]byte, error) {
	if len(blobs) != c.size {
		return nil, fmt.Errorf("collectives: alltoall needs %d blobs, got %d", c.size, len(blobs))
	}
	gen := c.gen.Add(1)
	t0 := c.obsStart(metrics.CollAlltoall)
	defer c.obsEnd(metrics.CollAlltoall, t0)
	return c.alltoall(gen, blobs)
}

// ---------------------------------------------------------------------
// Float encoding
// ---------------------------------------------------------------------

func encodeF64(v []float64) []byte {
	b := make([]byte, 8*len(v))
	encodeF64Into(b, v)
	return b
}

// encodeF64Into writes v into b, which must hold 8*len(v) bytes.
func encodeF64Into(b []byte, v []float64) {
	for i, x := range v {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
}

func decodeF64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("collectives: float vector blob of %d bytes", len(b))
	}
	v := make([]float64, len(b)/8)
	decodeF64Into(v, b)
	return v, nil
}

// decodeF64Into overwrites v from b; len(b) must be 8*len(v).
func decodeF64Into(v []float64, b []byte) {
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// decodeCombineF64 folds the encoded vector in b into v elementwise.
func decodeCombineF64(v []float64, b []byte, op Op) {
	for i := range v {
		x := math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		v[i] = op.apply(v[i], x)
	}
}
