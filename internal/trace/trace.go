// Package trace provides a low-overhead, fixed-capacity event ring used
// to debug and profile the Photon middleware. Events are recorded into a
// lock-free-ish per-ring slot array guarded by an atomic cursor; readers
// snapshot the ring without stopping writers.
//
// Tracing is off by default; enabling it costs one atomic add plus a few
// stores per event, cheap enough to leave in protocol hot paths during
// ablation runs.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds used by the Photon stack.
const (
	KindNone     Kind = iota
	KindPost          // work request posted to a queue pair
	KindComplete      // completion reaped from a CQ
	KindLedger        // ledger slot written or consumed
	KindProtocol      // protocol state transition (RTS/CTS/FIN)
	KindProgress      // progress-engine iteration
	KindUser          // application-defined
	KindReap          // completion handed to the application (Probe/Test/Wait)
	KindLink          // span link: remote delivery carrying the initiator's context
	KindWire          // transport frame event (apply/tx at the backend layer)
	KindShard         // shard-engine event (enter/park/wake/steal)
)

var kindNames = [...]string{"none", "post", "complete", "ledger", "protocol", "progress", "user", "reap", "link", "wire", "shard"}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	Seq  uint64 // global sequence number, monotonically increasing
	When time.Time
	Kind Kind
	Rank int    // locality the event refers to (-1 if n/a)
	Peer int    // the other side of a cross-peer event: target rank on
	//             a post, origin rank on a delivery (-1 if n/a)
	Arg    uint64 // kind-specific argument (RID, slot index, ...)
	Arg2   uint64 // secondary correlation id (local RID on a post; 0 if n/a)
	PeerNS int64  // initiator's post timestamp in the origin clock, carried
	//              by the wire trace context (0 = no context)
	Msg string // static-ish label; avoid per-event formatting in hot paths
}

// Ring is a bounded trace buffer. The zero value is disabled; create
// with NewRing.
type Ring struct {
	enabled atomic.Bool
	cursor  atomic.Uint64
	slots   []slot
	mask    uint64
}

type slot struct {
	//photon:lock traceslot 10
	mu sync.Mutex
	ev Event
	ok bool
}

// NewRing creates a ring holding capacity events (rounded up to a power
// of two, minimum 16). The ring starts disabled.
func NewRing(capacity int) *Ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Enable turns recording on or off.
func (r *Ring) Enable(on bool) { r.enabled.Store(on) }

// Enabled reports whether the ring is recording.
func (r *Ring) Enabled() bool { return r.enabled.Load() }

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.slots) }

// Record stores one event if the ring is enabled. Safe for concurrent
// use.
func (r *Ring) Record(kind Kind, rank int, arg uint64, msg string) {
	r.RecordFull(kind, rank, -1, arg, 0, 0, msg)
}

// RecordLink stores a cross-peer span-link event: a delivery or apply
// whose initiator is peer, carrying the initiator's post timestamp
// peerNS (0 when the wire frame had no trace context).
func (r *Ring) RecordLink(kind Kind, rank, peer int, arg uint64, peerNS int64, msg string) {
	r.RecordFull(kind, rank, peer, arg, 0, peerNS, msg)
}

// RecordFull is the fully-general entry point; Record and RecordLink
// delegate here. Safe for concurrent use.
func (r *Ring) RecordFull(kind Kind, rank, peer int, arg, arg2 uint64, peerNS int64, msg string) {
	if !r.enabled.Load() {
		return
	}
	seq := r.cursor.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.mu.Lock()
	// Under wrap, a slow writer holding seq can lose the race to a fast
	// writer holding seq+Cap that maps to the same slot. Keep the newest
	// event: overwriting it with the stale one would leave Snapshot with
	// a hole at the head of the retained window.
	if !s.ok || s.ev.Seq <= seq {
		s.ev = Event{Seq: seq, When: time.Now(), Kind: kind, Rank: rank, Peer: peer, Arg: arg, Arg2: arg2, PeerNS: peerNS, Msg: msg}
		s.ok = true
	}
	s.mu.Unlock()
}

// Len returns how many events are currently retained (<= Cap).
func (r *Ring) Len() int {
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Snapshot returns retained events ordered by sequence number.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		if s.ok {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears all retained events and the sequence counter.
func (r *Ring) Reset() {
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		s.ok = false
		s.mu.Unlock()
	}
	r.cursor.Store(0)
}

// Dump renders the snapshot as text, one event per line.
func (r *Ring) Dump() string {
	evs := r.Snapshot()
	var b strings.Builder
	for _, e := range evs {
		if e.Peer >= 0 {
			fmt.Fprintf(&b, "%8d %-9s rank=%-3d arg=%-8d peer=%-3d %s\n", e.Seq, e.Kind, e.Rank, e.Arg, e.Peer, e.Msg)
		} else {
			fmt.Fprintf(&b, "%8d %-9s rank=%-3d arg=%-8d %s\n", e.Seq, e.Kind, e.Rank, e.Arg, e.Msg)
		}
	}
	return b.String()
}

// CountByKind tallies retained events per kind.
func (r *Ring) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range r.Snapshot() {
		m[e.Kind]++
	}
	return m
}

// Global is the process-wide ring used by the middleware when no
// per-instance ring is configured. It starts disabled.
var Global = NewRing(4096)

// Record logs to the global ring.
func Record(kind Kind, rank int, arg uint64, msg string) { Global.Record(kind, rank, arg, msg) }

// RecordLink logs a span-link event to the global ring.
func RecordLink(kind Kind, rank, peer int, arg uint64, peerNS int64, msg string) {
	Global.RecordLink(kind, rank, peer, arg, peerNS, msg)
}
