package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRing(32)
	r.Record(KindPost, 0, 1, "x")
	if r.Len() != 0 {
		t.Fatalf("disabled ring recorded %d events", r.Len())
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := NewRing(64)
	r.Enable(true)
	for i := 0; i < 10; i++ {
		r.Record(KindLedger, 1, uint64(i), "slot")
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Arg != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
		if e.Rank != 1 || e.Kind != KindLedger {
			t.Fatalf("event fields wrong: %+v", e)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16) // exact power of two
	r.Enable(true)
	for i := 0; i < 40; i++ {
		r.Record(KindPost, 0, uint64(i), "")
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	evs := r.Snapshot()
	for _, e := range evs {
		if e.Arg < 24 {
			t.Fatalf("old event survived wrap: %+v", e)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	if c := NewRing(1).Cap(); c != 16 {
		t.Fatalf("min cap = %d, want 16", c)
	}
	if c := NewRing(17).Cap(); c != 32 {
		t.Fatalf("cap = %d, want 32", c)
	}
	if c := NewRing(64).Cap(); c != 64 {
		t.Fatalf("cap = %d, want 64", c)
	}
}

func TestReset(t *testing.T) {
	r := NewRing(16)
	r.Enable(true)
	r.Record(KindUser, 2, 9, "a")
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("reset did not clear ring")
	}
	r.Record(KindUser, 2, 9, "b")
	if evs := r.Snapshot(); len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("post-reset sequence wrong: %+v", evs)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRing(1024)
	r.Enable(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(KindProgress, 0, 0, "tick")
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
	evs := r.Snapshot()
	seen := make(map[uint64]bool)
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDumpAndCounts(t *testing.T) {
	r := NewRing(32)
	r.Enable(true)
	r.Record(KindPost, 0, 1, "put")
	r.Record(KindComplete, 0, 1, "cq")
	r.Record(KindComplete, 1, 2, "cq")
	d := r.Dump()
	if !strings.Contains(d, "post") || !strings.Contains(d, "complete") {
		t.Fatalf("dump missing kinds:\n%s", d)
	}
	counts := r.CountByKind()
	if counts[KindComplete] != 2 || counts[KindPost] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestKindString(t *testing.T) {
	if KindLedger.String() != "ledger" {
		t.Fatalf("KindLedger = %q", KindLedger.String())
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatalf("unknown kind = %q", Kind(99).String())
	}
}

func TestGlobalRingDisabledByDefault(t *testing.T) {
	if Global.Enabled() {
		t.Fatal("global ring must start disabled")
	}
	Record(KindUser, 0, 0, "noop") // must not panic or record
	if Global.Len() != 0 {
		t.Fatal("global ring recorded while disabled")
	}
}
