package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRing(32)
	r.Record(KindPost, 0, 1, "x")
	if r.Len() != 0 {
		t.Fatalf("disabled ring recorded %d events", r.Len())
	}
}

func TestRecordAndSnapshotOrder(t *testing.T) {
	r := NewRing(64)
	r.Enable(true)
	for i := 0; i < 10; i++ {
		r.Record(KindLedger, 1, uint64(i), "slot")
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) || e.Arg != uint64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
		if e.Rank != 1 || e.Kind != KindLedger {
			t.Fatalf("event fields wrong: %+v", e)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(16) // exact power of two
	r.Enable(true)
	for i := 0; i < 40; i++ {
		r.Record(KindPost, 0, uint64(i), "")
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	evs := r.Snapshot()
	for _, e := range evs {
		if e.Arg < 24 {
			t.Fatalf("old event survived wrap: %+v", e)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	if c := NewRing(1).Cap(); c != 16 {
		t.Fatalf("min cap = %d, want 16", c)
	}
	if c := NewRing(17).Cap(); c != 32 {
		t.Fatalf("cap = %d, want 32", c)
	}
	if c := NewRing(64).Cap(); c != 64 {
		t.Fatalf("cap = %d, want 64", c)
	}
}

func TestReset(t *testing.T) {
	r := NewRing(16)
	r.Enable(true)
	r.Record(KindUser, 2, 9, "a")
	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("reset did not clear ring")
	}
	r.Record(KindUser, 2, 9, "b")
	if evs := r.Snapshot(); len(evs) != 1 || evs[0].Seq != 0 {
		t.Fatalf("post-reset sequence wrong: %+v", evs)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRing(1024)
	r.Enable(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(KindProgress, 0, 0, "tick")
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
	evs := r.Snapshot()
	seen := make(map[uint64]bool)
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDumpAndCounts(t *testing.T) {
	r := NewRing(32)
	r.Enable(true)
	r.Record(KindPost, 0, 1, "put")
	r.Record(KindComplete, 0, 1, "cq")
	r.Record(KindComplete, 1, 2, "cq")
	d := r.Dump()
	if !strings.Contains(d, "post") || !strings.Contains(d, "complete") {
		t.Fatalf("dump missing kinds:\n%s", d)
	}
	counts := r.CountByKind()
	if counts[KindComplete] != 2 || counts[KindPost] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestKindString(t *testing.T) {
	if KindLedger.String() != "ledger" {
		t.Fatalf("KindLedger = %q", KindLedger.String())
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatalf("unknown kind = %q", Kind(99).String())
	}
}

func TestGlobalRingDisabledByDefault(t *testing.T) {
	if Global.Enabled() {
		t.Fatal("global ring must start disabled")
	}
	Record(KindUser, 0, 0, "noop") // must not panic or record
	if Global.Len() != 0 {
		t.Fatal("global ring recorded while disabled")
	}
}

// TestConcurrentWrapSnapshot races many wrapping writers against
// repeated Snapshot calls. Invariants while racing: no duplicate
// sequence numbers and snapshots sorted. At quiescence the ring must
// hold exactly the newest Cap() events with no holes (a slow writer
// must never clobber a newer event that wrapped onto its slot).
func TestConcurrentWrapSnapshot(t *testing.T) {
	r := NewRing(64) // small: force many wraps
	r.Enable(true)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(KindPost, w, uint64(i), "wrap")
			}
		}(w)
	}
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Snapshot()
			seen := make(map[uint64]bool, len(evs))
			for i, e := range evs {
				if seen[e.Seq] {
					snapErr = &dupErr{e.Seq}
					return
				}
				seen[e.Seq] = true
				if i > 0 && evs[i-1].Seq > e.Seq {
					snapErr = &orderErr{}
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	// Quiescent: the final snapshot must hold exactly the newest Cap()
	// events, no holes.
	evs := r.Snapshot()
	if len(evs) != r.Cap() {
		t.Fatalf("final snapshot has %d events, want %d", len(evs), r.Cap())
	}
	total := uint64(writers * perWriter)
	for i, e := range evs {
		if want := total - uint64(r.Cap()) + uint64(i); e.Seq != want {
			t.Fatalf("hole in retained window: event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

type dupErr struct{ seq uint64 }

func (e *dupErr) Error() string { return "duplicate seq in snapshot" }

type orderErr struct{}

func (e *orderErr) Error() string { return "snapshot out of order" }

func TestWriteChromeJSON(t *testing.T) {
	base := time.Now()
	at := func(us int) time.Time { return base.Add(time.Duration(us) * time.Microsecond) }
	evs := []Event{
		{Seq: 0, When: at(0), Kind: KindPost, Rank: 0, Arg: 7, Msg: "put.packed"},
		{Seq: 1, When: at(5), Kind: KindLedger, Rank: 1, Arg: 7, Msg: "ledger.put"},
		{Seq: 2, When: at(9), Kind: KindReap, Rank: 1, Arg: 7, Msg: "reap.remote"},
	}
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	var begins, ends, instants int
	for _, e := range out.TraceEvents {
		switch e["ph"] {
		case "b":
			begins++
			if e["id"] != "0x7" {
				t.Fatalf("span id = %v, want 0x7", e["id"])
			}
		case "e":
			ends++
		case "i":
			instants++
		}
	}
	if instants != len(evs) {
		t.Fatalf("instants = %d, want %d", instants, len(evs))
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("span pairs = %d/%d, want 1/1 (post correlated with ledger delivery)", begins, ends)
	}
}

func TestWriteChromeJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Fatal("empty export missing traceEvents key")
	}
}
