package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// PeerDump is one peer's ring snapshot plus the clock offset that maps
// its local timestamps into the merged (reference) clock: OffsetNS is
// added to every nanosecond timestamp this peer recorded. Offsets come
// from heartbeat RTT estimation (Photon.PeerClockOffset) for real
// transports and are zero for co-located in-process peers that share
// one clock.
type PeerDump struct {
	Rank     int
	OffsetNS int64
	Events   []Event
}

// mergedEvent pairs an event with its owning peer and its adjusted
// (offset-corrected) absolute nanosecond timestamp.
type mergedEvent struct {
	ev    Event
	rank  int
	adjNS int64
}

// WriteChromeJSONMerged stitches N peers' ring snapshots into one
// Chrome trace. Each peer renders as a process lane (pid = rank+1).
// Timestamps are corrected by the per-peer clock offset before the
// lanes are merged onto one axis.
//
// Causal links are resolved from the wire trace context: a KindPost
// event on the origin (Arg = wire RID, Arg2 = local RID) is matched to
// the target's KindLink delivery event carrying Peer = origin rank and
// the same Arg, and then back to the origin's KindComplete/KindReap
// event with Arg = the post's local RID. Each resolved chain is
// emitted as a Chrome flow (ph "s" → "t" → "f"), so the put renders as
// one causally-linked lane: post → remote apply → ack/reap.
func WriteChromeJSONMerged(w io.Writer, peers []PeerDump) error {
	var all []mergedEvent
	for _, p := range peers {
		for _, e := range p.Events {
			all = append(all, mergedEvent{ev: e, rank: p.Rank, adjNS: e.When.UnixNano() + p.OffsetNS})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].adjNS != all[j].adjNS {
			return all[i].adjNS < all[j].adjNS
		}
		if all[i].rank != all[j].rank {
			return all[i].rank < all[j].rank
		}
		return all[i].ev.Seq < all[j].ev.Seq
	})

	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	if len(all) == 0 {
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		return enc.Encode(&out)
	}
	t0 := all[0].adjNS
	ts := func(m *mergedEvent) float64 { return float64(m.adjNS-t0) / 1e3 }

	// Process-name metadata, one lane per peer, sorted by rank.
	ranks := append([]PeerDump(nil), peers...)
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].Rank < ranks[j].Rank })
	for _, p := range ranks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   p.Rank + 1,
			Args:  map[string]interface{}{"name": fmt.Sprintf("rank %d", p.Rank)},
		})
	}

	// Pass 1: resolve causal chains. Posts queue FIFO per
	// (origin, wire RID); a link event consumes the oldest matching
	// post; the origin's first later complete/reap with Arg equal to
	// the post's local RID closes the chain.
	type flowKey struct {
		origin int
		rid    uint64
	}
	pending := make(map[flowKey][]int)
	var chains []chain
	for i := range all {
		m := &all[i]
		switch m.ev.Kind {
		case KindPost:
			if m.ev.Arg != 0 {
				pending[flowKey{m.rank, m.ev.Arg}] = append(pending[flowKey{m.rank, m.ev.Arg}], i)
			}
		case KindLink:
			if m.ev.Peer >= 0 {
				k := flowKey{m.ev.Peer, m.ev.Arg}
				if q := pending[k]; len(q) > 0 {
					chains = append(chains, chain{post: q[0], link: i, end: -1})
					pending[k] = q[1:]
				}
			}
		case KindComplete, KindReap:
			// Close the oldest open chain whose post came from this
			// rank with a matching local RID.
			for ci := range chains {
				c := &chains[ci]
				if c.end >= 0 {
					continue
				}
				p := &all[c.post]
				if p.rank == m.rank && p.ev.Arg2 != 0 && p.ev.Arg2 == m.ev.Arg {
					c.end = i
					break
				}
			}
		}
	}

	// Pass 2: instants for every event (annotated with link context),
	// then the resolved flows in deterministic order.
	for i := range all {
		m := &all[i]
		args := map[string]interface{}{"seq": m.ev.Seq, "arg": m.ev.Arg, "rank": m.rank}
		if m.ev.Peer >= 0 {
			args["peer"] = m.ev.Peer
		}
		if m.ev.Arg2 != 0 {
			args["arg2"] = m.ev.Arg2
		}
		if m.ev.Kind == KindLink {
			if ci, ok2 := linkChain(chains, i); ok2 {
				// One-way delay estimate after clock correction.
				args["wire_delay_ns"] = m.adjNS - all[chains[ci].post].adjNS
			}
			if m.ev.PeerNS != 0 {
				args["ctx_post_ns"] = m.ev.PeerNS
			}
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  m.ev.Msg,
			Cat:   m.ev.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    ts(m),
			PID:   m.rank + 1,
			TID:   int(m.ev.Kind),
			Args:  args,
		})
	}
	for ci, c := range chains {
		p, l := &all[c.post], &all[c.link]
		id := fmt.Sprintf("f%d", ci)
		args := map[string]interface{}{"origin": p.rank, "rid": p.ev.Arg}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: p.ev.Msg, Cat: "flow", Phase: "s", TS: ts(p),
			PID: p.rank + 1, TID: int(p.ev.Kind), ID: id, Args: args,
		})
		if c.end >= 0 {
			e := &all[c.end]
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: l.ev.Msg, Cat: "flow", Phase: "t", TS: ts(l),
				PID: l.rank + 1, TID: int(l.ev.Kind), ID: id, Args: args,
			})
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.ev.Msg, Cat: "flow", Phase: "f", BP: "e", TS: ts(e),
				PID: e.rank + 1, TID: int(e.ev.Kind), ID: id, Args: args,
			})
		} else {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: l.ev.Msg, Cat: "flow", Phase: "f", BP: "e", TS: ts(l),
				PID: l.rank + 1, TID: int(l.ev.Kind), ID: id, Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// chain is one resolved causal path: indices into the merged event
// list for the origin post, the remote link delivery, and the origin's
// closing complete/reap (-1 when the op never completed locally).
type chain struct {
	post, link, end int
}

// linkChain finds the chain whose link event index is i.
func linkChain(chains []chain, i int) (int, bool) {
	for ci := range chains {
		if chains[ci].link == i {
			return ci, true
		}
	}
	return -1, false
}
