package trace

import (
	"strings"
	"testing"
	"time"
)

// mergedFixture is a deterministic two-peer put chain: rank 0 posts
// wire RID 7 (local RID 9), rank 1 — whose clock runs 1000ns behind,
// so OffsetNS corrects it forward — records the link delivery, and
// rank 0 closes with complete and reap. Timestamps are synthetic
// (time.Unix(0, n)) so the rendering is fully reproducible.
func mergedFixture() []PeerDump {
	return []PeerDump{
		{Rank: 0, OffsetNS: 0, Events: []Event{
			{Seq: 1, When: time.Unix(0, 1000), Kind: KindPost, Rank: 0, Peer: 1, Arg: 7, Arg2: 9, Msg: "put.packed"},
			{Seq: 2, When: time.Unix(0, 5000), Kind: KindComplete, Rank: 0, Peer: -1, Arg: 9, Msg: "put.done"},
			{Seq: 3, When: time.Unix(0, 6000), Kind: KindReap, Rank: 0, Peer: -1, Arg: 9, Msg: "reap.local"},
		}},
		{Rank: 1, OffsetNS: 1000, Events: []Event{
			{Seq: 1, When: time.Unix(0, 1500), Kind: KindLink, Rank: 1, Peer: 0, Arg: 7, PeerNS: 1000, Msg: "send.deliver"},
		}},
	}
}

// TestWriteChromeJSONMergedGolden pins the merged exporter's exact
// output: process lanes per rank, offset-corrected instants (the link
// lands at adjusted t=2500, i.e. 1.5us past the post), the
// wire_delay_ns annotation computed across the corrected clocks, and
// one resolved flow s -> t -> f spanning both lanes. Args maps marshal
// with sorted keys, so the bytes are stable.
func TestWriteChromeJSONMergedGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeJSONMerged(&b, mergedFixture()); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != mergedGolden {
		t.Fatalf("merged Chrome JSON drifted from golden.\ngot:\n%s\nwant:\n%s", got, mergedGolden)
	}
}

// TestWriteChromeJSONMergedUnresolved checks a chain whose op never
// completed locally still renders: the flow finishes at the link
// event instead of dangling.
func TestWriteChromeJSONMergedUnresolved(t *testing.T) {
	peers := mergedFixture()
	peers[0].Events = peers[0].Events[:1] // drop complete and reap
	var b strings.Builder
	if err := WriteChromeJSONMerged(&b, peers); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"ph": "s"`) {
		t.Fatalf("no flow start:\n%s", out)
	}
	if strings.Contains(out, `"ph": "t"`) {
		t.Fatalf("unresolved chain emitted a flow step:\n%s", out)
	}
	if !strings.Contains(out, `"bp": "e"`) {
		t.Fatalf("no flow finish:\n%s", out)
	}
}

const mergedGolden = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "rank 0"
   }
  },
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 2,
   "tid": 0,
   "args": {
    "name": "rank 1"
   }
  },
  {
   "name": "put.packed",
   "cat": "post",
   "ph": "i",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "s": "t",
   "args": {
    "arg": 7,
    "arg2": 9,
    "peer": 1,
    "rank": 0,
    "seq": 1
   }
  },
  {
   "name": "send.deliver",
   "cat": "link",
   "ph": "i",
   "ts": 1.5,
   "pid": 2,
   "tid": 8,
   "s": "t",
   "args": {
    "arg": 7,
    "ctx_post_ns": 1000,
    "peer": 0,
    "rank": 1,
    "seq": 1,
    "wire_delay_ns": 1500
   }
  },
  {
   "name": "put.done",
   "cat": "complete",
   "ph": "i",
   "ts": 4,
   "pid": 1,
   "tid": 2,
   "s": "t",
   "args": {
    "arg": 9,
    "rank": 0,
    "seq": 2
   }
  },
  {
   "name": "reap.local",
   "cat": "reap",
   "ph": "i",
   "ts": 5,
   "pid": 1,
   "tid": 7,
   "s": "t",
   "args": {
    "arg": 9,
    "rank": 0,
    "seq": 3
   }
  },
  {
   "name": "put.packed",
   "cat": "flow",
   "ph": "s",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "id": "f0",
   "args": {
    "origin": 0,
    "rid": 7
   }
  },
  {
   "name": "send.deliver",
   "cat": "flow",
   "ph": "t",
   "ts": 1.5,
   "pid": 2,
   "tid": 8,
   "id": "f0",
   "args": {
    "origin": 0,
    "rid": 7
   }
  },
  {
   "name": "put.done",
   "cat": "flow",
   "ph": "f",
   "ts": 4,
   "pid": 1,
   "tid": 2,
   "id": "f0",
   "bp": "e",
   "args": {
    "origin": 0,
    "rid": 7
   }
  }
 ],
 "displayTimeUnit": "ns"
}
`
