package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"` // microseconds
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	ID    string                 `json:"id,omitempty"`
	Scope string                 `json:"s,omitempty"`
	BP    string                 `json:"bp,omitempty"` // flow binding point ("e" on finish)
	Args  map[string]interface{} `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON renders trace events as Chrome trace-event JSON so a
// run can be opened in chrome://tracing or Perfetto. Pass the merged
// snapshots of every rank's ring (or the Global ring); events from
// different ranks land in different "processes" (pid = rank).
//
// Every event becomes an instant; in addition, each KindPost event
// whose Arg (the RID) is later matched by a KindLedger, KindComplete,
// or KindReap event with the same Arg produces an async span pair, so
// the initiator's post and the target's ledger delivery show up as one
// correlated slice keyed by the RID.
func WriteChromeJSON(w io.Writer, evs []Event) error {
	evs = append([]Event(nil), evs...)
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].When.Equal(evs[j].When) {
			return evs[i].When.Before(evs[j].When)
		}
		return evs[i].Seq < evs[j].Seq
	})

	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	if len(evs) == 0 {
		return json.NewEncoder(w).Encode(&out)
	}
	t0 := evs[0].When
	ts := func(e *Event) float64 { return float64(e.When.Sub(t0).Nanoseconds()) / 1e3 }
	pid := func(rank int) int {
		if rank < 0 {
			return 0
		}
		return rank + 1 // pid 0 is reserved for rank-less events
	}

	// Open post spans awaiting their delivery event, keyed by RID.
	type open struct {
		ev  Event
		idx int // position of the emitted "b" record, to fix names later
	}
	pending := make(map[uint64][]open)

	for i := range evs {
		e := &evs[i]
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  e.Msg,
			Cat:   e.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    ts(e),
			PID:   pid(e.Rank),
			TID:   int(e.Kind),
			Args:  map[string]interface{}{"seq": e.Seq, "arg": e.Arg, "rank": e.Rank},
		})
		switch e.Kind {
		case KindPost:
			if e.Arg != 0 {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name:  e.Msg,
					Cat:   "rid",
					Phase: "b",
					TS:    ts(e),
					PID:   pid(e.Rank),
					TID:   0,
					ID:    fmt.Sprintf("0x%x", e.Arg),
					Args:  map[string]interface{}{"rid": e.Arg, "initiator": e.Rank},
				})
				pending[e.Arg] = append(pending[e.Arg], open{ev: *e, idx: len(out.TraceEvents) - 1})
			}
		case KindLedger, KindLink, KindComplete, KindReap:
			if q := pending[e.Arg]; len(q) > 0 {
				po := q[0]
				pending[e.Arg] = q[1:]
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name:  po.ev.Msg,
					Cat:   "rid",
					Phase: "e",
					TS:    ts(e),
					PID:   pid(po.ev.Rank),
					TID:   0,
					ID:    fmt.Sprintf("0x%x", e.Arg),
					Args:  map[string]interface{}{"rid": e.Arg, "delivery": e.Msg, "target": e.Rank},
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}
