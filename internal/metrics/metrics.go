// Package metrics is the aggregation half of Photon's observability
// plane. Where internal/trace records individual op-lifecycle events,
// this package accumulates latency distributions and engine gauges:
// post→initiator-completion and post→remote-delivery per op kind,
// progress-engine phase timing, and whatever gauges the engine folds
// into a snapshot.
//
// Recording is designed for protocol hot paths: each observation is
// two atomic adds into a shard chosen from the caller's stack address,
// so concurrent ranks in one process do not bounce a shared cache
// line, and nothing allocates. Reporting merges the shards into
// stats.Histogram values, so quantiles and rendering are shared with
// the benchmark harness.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"unsafe"

	"photon/internal/stats"
)

// OpKind classifies an operation for latency accounting.
type OpKind uint8

// Op kinds tracked by the engine.
const (
	OpPut OpKind = iota
	OpGet
	OpSend
	OpAtomic
	numOps
)

var opNames = [...]string{"put", "get", "send", "atomic"}

// String returns the lowercase op name.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Stage distinguishes the two latency endpoints of one op.
type Stage uint8

// Latency stages: post→initiator completion (the local RID becoming
// reapable) and post→remote delivery (the target's ledger write, as
// observed through the signaled completion that fences it).
const (
	StageInitiator Stage = iota
	StageRemote
	numStages
)

var stageNames = [...]string{"initiator", "remote"}

// String returns the lowercase stage name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// CollKind classifies a collective operation for latency accounting.
type CollKind uint8

// Collective kinds tracked by the collectives layer.
const (
	CollBarrier CollKind = iota
	CollBcast
	CollReduce
	CollAllreduce
	CollGather
	CollAllgather
	CollAlltoall
	// CollAbort is not a collective call kind: its histogram records
	// detection→abort latency (peer-down latch to the survivor's
	// ErrCommRevoked return) when a collective is revoked.
	CollAbort
	numColls
)

var collNames = [...]string{"barrier", "bcast", "reduce", "allreduce", "gather", "allgather", "alltoall", "abort"}

// String returns the lowercase collective name.
func (k CollKind) String() string {
	if int(k) < len(collNames) {
		return collNames[k]
	}
	return fmt.Sprintf("coll(%d)", uint8(k))
}

// Phase classifies time spent inside the progress engine.
type Phase uint8

// Progress-engine phases.
const (
	PhaseReap  Phase = iota // draining backend CQs and resolving tokens
	PhaseSweep              // polling peer ledgers and dispatching entries
	PhaseIdle               // Progress calls that found nothing to do
	numPhases
)

var phaseNames = [...]string{"reap", "sweep", "idle"}

// String returns the lowercase phase name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// latShards is the number of independent accumulators per histogram.
// Power of two; 8 covers typical in-process rank counts without
// noticeable false sharing.
const latShards = 8

// latShard is one lock-free accumulator: per-bucket observation
// counts and nanosecond sums. The bucket layout mirrors
// stats.Histogram's log-linear scheme exactly.
type latShard struct {
	count [stats.NumBuckets]atomic.Int64
	sum   [stats.NumBuckets]atomic.Int64
}

// LatHist is a lock-free log-linear latency histogram. The zero value
// is ready to use. Record never allocates.
type LatHist struct {
	shards [latShards]latShard
}

// Record adds one nanosecond observation.
func (h *LatHist) Record(ns int64) {
	// Shard on the caller's stack address: goroutines get distinct
	// stacks, so concurrent recorders usually hit distinct shards. The
	// pointer never escapes and is only hashed, never dereferenced.
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 10) & (latShards - 1)
	b := stats.Bucket(ns)
	s := &h.shards[i]
	s.count[b].Add(1)
	s.sum[b].Add(ns)
}

// MergeInto folds the shards into a stats.Histogram. Concurrent
// Record calls may or may not be included; each shard bucket is read
// once, so counts and sums stay mutually consistent per bucket.
func (h *LatHist) MergeInto(dst *stats.Histogram) {
	for si := range h.shards {
		s := &h.shards[si]
		for b := 0; b < stats.NumBuckets; b++ {
			c := s.count[b].Load()
			if c == 0 {
				continue
			}
			dst.AccumulateBucket(b, c, float64(s.sum[b].Load()))
		}
	}
}

// N returns the total observation count across shards.
func (h *LatHist) N() int64 {
	var n int64
	for si := range h.shards {
		s := &h.shards[si]
		for b := 0; b < stats.NumBuckets; b++ {
			n += s.count[b].Load()
		}
	}
	return n
}

// Registry is the per-engine (or shared, via Config.MetricsTo) metrics
// sink. All Record methods are safe for concurrent use, never
// allocate, and are no-ops on a nil or disabled registry — callers on
// hot paths gate on Enabled first so the disabled cost is one atomic
// load.
type Registry struct {
	enabled atomic.Bool
	ops     [numOps][numStages]LatHist
	phases  [numPhases]LatHist
	colls   [numColls]LatHist
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.enabled.Store(true)
	return r
}

// Enable turns recording on or off.
func (r *Registry) Enable(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry accepts observations. A nil
// registry reports false.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// RecordOp adds one op-latency observation.
func (r *Registry) RecordOp(k OpKind, st Stage, ns int64) {
	if !r.Enabled() || k >= numOps || st >= numStages {
		return
	}
	r.ops[k][st].Record(ns)
}

// RecordColl adds one whole-collective latency observation.
func (r *Registry) RecordColl(k CollKind, ns int64) {
	if !r.Enabled() || k >= numColls {
		return
	}
	r.colls[k].Record(ns)
}

// RecordPhase adds one progress-phase duration observation.
func (r *Registry) RecordPhase(p Phase, ns int64) {
	if !r.Enabled() || p >= numPhases {
		return
	}
	r.phases[p].Record(ns)
}

// NamedHist pairs a merged histogram with its metric identity.
type NamedHist struct {
	Name   string // e.g. "photon_op_latency_ns{op=put,stage=remote}"
	Metric string // Prometheus metric family, e.g. "photon_op_latency_ns"
	Labels string // rendered label pairs, e.g. `op="put",stage="remote"`
	Hist   stats.Histogram
}

// Snapshot is a point-in-time copy of every non-empty histogram plus
// the gauges the engine attached. Snapshots are plain values: render,
// export, or diff them freely.
type Snapshot struct {
	Hists  []NamedHist
	Gauges *stats.CounterSet
}

// Snapshot merges all shards and returns the current state. Gauges
// start empty; Photon.Metrics attaches engine gauges before returning
// the snapshot to the application.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{Gauges: stats.NewCounterSet()}
	if r == nil {
		return snap
	}
	for k := OpKind(0); k < numOps; k++ {
		for st := Stage(0); st < numStages; st++ {
			var h stats.Histogram
			r.ops[k][st].MergeInto(&h)
			if h.N() == 0 {
				continue
			}
			labels := fmt.Sprintf("op=%q,stage=%q", k.String(), st.String())
			snap.Hists = append(snap.Hists, NamedHist{
				Name:   fmt.Sprintf("%s/%s", k, st),
				Metric: "photon_op_latency_ns",
				Labels: labels,
				Hist:   h,
			})
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		var h stats.Histogram
		r.phases[p].MergeInto(&h)
		if h.N() == 0 {
			continue
		}
		snap.Hists = append(snap.Hists, NamedHist{
			Name:   fmt.Sprintf("progress/%s", p),
			Metric: "photon_progress_phase_ns",
			Labels: fmt.Sprintf("phase=%q", p.String()),
			Hist:   h,
		})
	}
	for k := CollKind(0); k < numColls; k++ {
		var h stats.Histogram
		r.colls[k].MergeInto(&h)
		if h.N() == 0 {
			continue
		}
		snap.Hists = append(snap.Hists, NamedHist{
			Name:   fmt.Sprintf("coll/%s", k),
			Metric: "photon_coll_latency_ns",
			Labels: fmt.Sprintf("kind=%q", k.String()),
			Hist:   h,
		})
	}
	return snap
}

// Render prints the snapshot as aligned text: one histogram line per
// metric (count, mean, p50/p90/p99 in microseconds) followed by the
// gauge block.
func (s *Snapshot) Render() string {
	var b strings.Builder
	if len(s.Hists) > 0 {
		t := stats.NewTable("latency (us)", "metric", "n", "mean", "p50", "p90", "p99", "max")
		for i := range s.Hists {
			h := &s.Hists[i].Hist
			t.Row(s.Hists[i].Name, h.N(),
				h.Mean()/1e3,
				float64(h.Quantile(0.50))/1e3,
				float64(h.Quantile(0.90))/1e3,
				float64(h.Quantile(0.99))/1e3,
				float64(h.Quantile(1))/1e3)
		}
		b.WriteString(t.Render())
	} else {
		b.WriteString("# latency (us)\n(no observations)\n")
	}
	if s.Gauges != nil && len(s.Gauges.Names()) > 0 {
		b.WriteString("# gauges\n")
		b.WriteString(s.Gauges.Render())
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): each histogram as a *_bucket /
// *_sum / *_count family with log-linear `le` bounds, each gauge as
// an untyped sample.
func (s *Snapshot) WritePrometheus(b *strings.Builder) {
	families := map[string]bool{}
	for i := range s.Hists {
		nh := &s.Hists[i]
		if !families[nh.Metric] {
			families[nh.Metric] = true
			fmt.Fprintf(b, "# TYPE %s histogram\n", nh.Metric)
		}
		writePromHist(b, nh)
	}
	if s.Gauges == nil {
		return
	}
	names := s.Gauges.Names()
	sort.Strings(names)
	for _, n := range names {
		v, _ := s.Gauges.Get(n)
		metric := "photon_" + promSanitize(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", metric, metric, v)
	}
}

func writePromHist(b *strings.Builder, nh *NamedHist) {
	h := &nh.Hist
	var cum int64
	var sum float64
	for bk := 0; bk < stats.NumBuckets; bk++ {
		c := h.BucketCount(bk)
		if c == 0 {
			continue
		}
		cum += c
		_, hi := stats.BucketBounds(bk)
		fmt.Fprintf(b, "%s_bucket{%s,le=\"%d\"} %d\n", nh.Metric, nh.Labels, hi, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", nh.Metric, nh.Labels, h.N())
	sum = h.Mean() * float64(h.N())
	fmt.Fprintf(b, "%s_sum{%s} %g\n", nh.Metric, nh.Labels, sum)
	fmt.Fprintf(b, "%s_count{%s} %d\n", nh.Metric, nh.Labels, h.N())
}

func promSanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
