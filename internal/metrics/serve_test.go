package metrics

import (
	"io"
	"net/http"
)

// httpGet fetches a URL body as a string (test helper).
func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
