package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 1000; i++ {
		r.RecordOp(OpPut, StageInitiator, int64(100+i))
		r.RecordOp(OpPut, StageRemote, int64(200+i))
	}
	r.RecordPhase(PhaseReap, 50)
	r.RecordPhase(PhaseSweep, 500)

	snap := r.Snapshot()
	byName := map[string]int64{}
	for i := range snap.Hists {
		byName[snap.Hists[i].Name] = snap.Hists[i].Hist.N()
	}
	if byName["put/initiator"] != 1000 {
		t.Fatalf("put/initiator n = %d, want 1000", byName["put/initiator"])
	}
	if byName["put/remote"] != 1000 {
		t.Fatalf("put/remote n = %d, want 1000", byName["put/remote"])
	}
	if byName["progress/reap"] != 1 || byName["progress/sweep"] != 1 {
		t.Fatalf("phase hists missing: %v", byName)
	}
	// Empty families stay out of the snapshot.
	if _, ok := byName["get/initiator"]; ok {
		t.Fatalf("empty get histogram appeared in snapshot")
	}

	// Mean of put/initiator must be exact (counts and sums are merged
	// exactly; only variance/min/max are bucket-approximated).
	for i := range snap.Hists {
		if snap.Hists[i].Name == "put/initiator" {
			want := 100.0 + 999.0/2
			if got := snap.Hists[i].Hist.Mean(); got < want-0.5 || got > want+0.5 {
				t.Fatalf("put/initiator mean = %v, want ~%v", got, want)
			}
		}
	}
}

func TestRegistryDisabledAndNil(t *testing.T) {
	var nilReg *Registry
	if nilReg.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	nilReg.RecordOp(OpPut, StageInitiator, 1) // must not panic
	nilReg.RecordPhase(PhaseIdle, 1)
	if s := nilReg.Snapshot(); len(s.Hists) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}

	r := NewRegistry()
	r.Enable(false)
	r.RecordOp(OpSend, StageRemote, 42)
	if s := r.Snapshot(); len(s.Hists) != 0 {
		t.Fatal("disabled registry accepted an observation")
	}
}

func TestRegistryConcurrentRecord(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.RecordOp(OpAtomic, StageInitiator, int64(1+w+i))
			}
		}(w)
	}
	wg.Wait()
	if n := r.ops[OpAtomic][StageInitiator].N(); n != workers*per {
		t.Fatalf("lost observations: %d != %d", n, workers*per)
	}
}

func TestSnapshotRenderAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.RecordOp(OpSend, StageRemote, 1500)
	snap := r.Snapshot()
	snap.Gauges.Set("ring_overflows", 3)

	text := snap.Render()
	if !strings.Contains(text, "send/remote") || !strings.Contains(text, "ring_overflows") {
		t.Fatalf("render missing fields:\n%s", text)
	}

	var b strings.Builder
	snap.WritePrometheus(&b)
	prom := b.String()
	for _, want := range []string{
		"# TYPE photon_op_latency_ns histogram",
		`photon_op_latency_ns_bucket{op="send",stage="remote",le="1536"} 1`,
		`photon_op_latency_ns_bucket{op="send",stage="remote",le="+Inf"} 1`,
		`photon_op_latency_ns_count{op="send",stage="remote"} 1`,
		"# TYPE photon_ring_overflows gauge",
		"photon_ring_overflows 3",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.RecordOp(OpPut, StageInitiator, 900)
	srv, err := Serve("127.0.0.1:0", func() *Snapshot { return r.Snapshot() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := httpGet("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	if !strings.Contains(get("/metrics"), "photon_op_latency_ns_count") {
		t.Fatal("/metrics missing histogram")
	}
	if !strings.Contains(get("/vars"), "put/initiator") {
		t.Fatal("/vars missing histogram")
	}
	if !strings.Contains(get("/trace"), "traceEvents") {
		t.Fatal("/trace not chrome-trace shaped")
	}
}
