package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"

	"photon/internal/trace"
)

// Server is the optional debug HTTP endpoint: Prometheus text at
// /metrics, a JSON snapshot at /vars, a bucket-level JSON snapshot at
// /snapshot (the collector's scrape target), Go runtime expvars at
// /debug/vars, a Chrome trace-event dump at /trace, and — once
// SetCollector arms it — the cluster-wide aggregation at /cluster. It
// is meant for benchmark and example binaries behind a -debug flag,
// not for production exposure.
type Server struct {
	ln        net.Listener
	srv       *http.Server
	collector atomic.Pointer[Collector]
}

// SetCollector arms the /cluster endpoint: each request runs one
// Collect round over the collector's peer sources and renders the
// result (text, or JSON with ?format=json).
func (s *Server) SetCollector(c *Collector) { s.collector.Store(c) }

// Serve binds addr (e.g. "127.0.0.1:0") and serves the debug plane in
// a background goroutine. snap is called per request and must be safe
// for concurrent use; rings maps a label (usually "rank0") to a trace
// ring whose merged snapshot backs /trace. Either may be nil/empty.
func Serve(addr string, snap func() *Snapshot, rings map[string]*trace.Ring) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "photon debug endpoint")
		fmt.Fprintln(w, "  /metrics     Prometheus text exposition")
		fmt.Fprintln(w, "  /vars        metrics snapshot as JSON")
		fmt.Fprintln(w, "  /snapshot    bucket-level JSON snapshot (collector scrape target)")
		fmt.Fprintln(w, "  /cluster     cluster-wide aggregation (when a collector is armed)")
		fmt.Fprintln(w, "  /debug/vars  Go runtime expvars")
		fmt.Fprintln(w, "  /trace       Chrome trace-event JSON (open in Perfetto)")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if snap != nil {
			snap().WritePrometheus(&b)
		}
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := map[string]interface{}{}
		if snap != nil {
			s := snap()
			hists := map[string]interface{}{}
			for i := range s.Hists {
				h := &s.Hists[i].Hist
				hists[s.Hists[i].Name] = map[string]interface{}{
					"n":       h.N(),
					"mean_ns": h.Mean(),
					"p50_ns":  h.Quantile(0.50),
					"p99_ns":  h.Quantile(0.99),
					"max_ns":  h.Quantile(1),
				}
			}
			gauges := map[string]int64{}
			if s.Gauges != nil {
				for _, n := range s.Gauges.Names() {
					v, _ := s.Gauges.Get(n)
					gauges[n] = v
				}
			}
			out["hists"] = hists
			out["gauges"] = gauges
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(out)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ws := &WireSnapshot{Gauges: map[string]int64{}}
		if snap != nil {
			ws = snap().Wire()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(ws)
	})
	s := &Server{ln: ln}
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		c := s.collector.Load()
		if c == nil {
			http.Error(w, "no collector armed (Server.SetCollector)", http.StatusNotFound)
			return
		}
		cs := c.Collect()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			cs.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, cs.Render())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var evs []trace.Event
		for _, ring := range rings {
			if ring != nil {
				evs = append(evs, ring.Snapshot()...)
			}
		}
		trace.WriteChromeJSON(w, evs)
	})
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
