package metrics

import (
	"strings"
	"testing"
)

// TestCollectorMergesPeers scrapes one in-process peer and one HTTP
// peer (via the /snapshot endpoint) and checks the merge is exact:
// counts add up, the cluster mean is the observation-weighted mean,
// and per-peer gauges sum.
func TestCollectorMergesPeers(t *testing.T) {
	r0 := NewRegistry()
	for i := 0; i < 100; i++ {
		r0.RecordOp(OpPut, StageInitiator, 1000)
	}
	r1 := NewRegistry()
	for i := 0; i < 300; i++ {
		r1.RecordOp(OpPut, StageInitiator, 5000)
	}

	snap1 := func() *Snapshot {
		s := r1.Snapshot()
		s.Gauges.Set("ring_overflows", 2)
		return s
	}
	srv, err := Serve("127.0.0.1:0", snap1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	col := NewCollector([]PeerSource{
		{Rank: 0, Snap: func() *Snapshot {
			s := r0.Snapshot()
			s.Gauges.Set("ring_overflows", 5)
			return s
		}},
		{Rank: 1, URL: "http://" + srv.Addr()},
		{Rank: 2, URL: "http://127.0.0.1:1"}, // unreachable
	})
	cs := col.Collect()

	if len(cs.Peers) != 3 {
		t.Fatalf("got %d peers, want 3", len(cs.Peers))
	}
	if cs.Peers[2].Err == nil {
		t.Fatal("unreachable peer reported no error")
	}

	var merged *NamedHist
	for i := range cs.Merged.Hists {
		if cs.Merged.Hists[i].Name == "put/initiator" {
			merged = &cs.Merged.Hists[i]
		}
	}
	if merged == nil {
		t.Fatal("merged snapshot missing put/initiator")
	}
	if n := merged.Hist.N(); n != 400 {
		t.Fatalf("merged n = %d, want 400", n)
	}
	// Weighted mean: (100*1000 + 300*5000) / 400 = 4000, exact because
	// the wire format carries per-bucket sums.
	if m := merged.Hist.Mean(); m < 3999 || m > 4001 {
		t.Fatalf("merged mean = %v, want 4000", m)
	}
	if v, _ := cs.Merged.Gauges.Get("ring_overflows"); v != 7 {
		t.Fatalf("summed gauge = %d, want 7", v)
	}

	// Slowest-peer ranking: rank 1's 5µs puts must lead.
	top := cs.TopK("put/initiator", 0.99, 2)
	if len(top) != 2 || top[0].Rank != 1 {
		t.Fatalf("TopK = %+v, want rank 1 first", top)
	}

	text := cs.Render()
	for _, want := range []string{"2/3 peers reachable", "put/initiator", "slowest peers"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

// TestClusterEndpoint arms a server's /cluster endpoint with a
// collector over two in-process sources and checks both renderings.
func TestClusterEndpoint(t *testing.T) {
	r := NewRegistry()
	r.RecordOp(OpSend, StageRemote, 700)
	srv, err := Serve("127.0.0.1:0", func() *Snapshot { return r.Snapshot() }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.SetCollector(NewCollector([]PeerSource{
		{Rank: 0, Snap: func() *Snapshot { return r.Snapshot() }},
		{Rank: 1, URL: "http://" + srv.Addr()},
	}))

	text, err := httpGet("http://" + srv.Addr() + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "2/2 peers reachable") || !strings.Contains(text, "send/remote") {
		t.Fatalf("/cluster text unexpected:\n%s", text)
	}
	js, err := httpGet("http://" + srv.Addr() + "/cluster?format=json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js, `"merged"`) || !strings.Contains(js, "send/remote") {
		t.Fatalf("/cluster json unexpected:\n%s", js)
	}
}

// TestWireRoundTrip checks Snapshot → WireSnapshot → Snapshot
// preserves counts, sums, and gauges exactly.
func TestWireRoundTrip(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.RecordOp(OpGet, StageInitiator, int64(100+i*37))
	}
	s := r.Snapshot()
	s.Gauges.Set("peers_down", 1)
	rt := s.Wire().Snapshot()
	if len(rt.Hists) != len(s.Hists) {
		t.Fatalf("hist count changed: %d != %d", len(rt.Hists), len(s.Hists))
	}
	for i := range s.Hists {
		a, b := &s.Hists[i].Hist, &rt.Hists[i].Hist
		if a.N() != b.N() || a.Mean() != b.Mean() {
			t.Fatalf("%s changed: n %d→%d mean %v→%v",
				s.Hists[i].Name, a.N(), b.N(), a.Mean(), b.Mean())
		}
	}
	if v, ok := rt.Gauges.Get("peers_down"); !ok || v != 1 {
		t.Fatalf("gauge lost in round trip: %d %v", v, ok)
	}
}
