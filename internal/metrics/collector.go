package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"photon/internal/stats"
)

// This file is the cluster half of the metrics plane: a Collector
// pulls every peer's registry snapshot — over the debug HTTP endpoint
// for remote processes, through an in-process function for co-located
// ranks — and folds them into one ClusterSnapshot. Histograms merge
// exactly: the wire format carries per-bucket counts and nanosecond
// sums, so the cluster-level mean and quantiles are computed from the
// union of observations, not from averaged summaries. Collection is
// strictly off the op hot path (it runs on the caller's goroutine and
// whatever HTTP handlers the peers already serve).

// WireBucket is one non-empty histogram bucket on the wire.
type WireBucket struct {
	B   int     `json:"b"`   // bucket index (stats log-linear layout)
	N   int64   `json:"n"`   // observation count
	Sum float64 `json:"sum"` // nanosecond sum
}

// WireHist is the bucket-level JSON form of one named histogram.
type WireHist struct {
	Name    string       `json:"name"`
	Metric  string       `json:"metric"`
	Labels  string       `json:"labels"`
	Buckets []WireBucket `json:"buckets"`
}

// WireSnapshot is the bucket-level JSON form of a Snapshot, served at
// /snapshot and consumed by Collector. Unlike /vars it preserves full
// bucket resolution, which is what makes cross-peer merges exact.
type WireSnapshot struct {
	Hists  []WireHist       `json:"hists"`
	Gauges map[string]int64 `json:"gauges"`
}

// Wire converts a snapshot to its bucket-level wire form.
func (s *Snapshot) Wire() *WireSnapshot {
	w := &WireSnapshot{Gauges: map[string]int64{}}
	for i := range s.Hists {
		nh := &s.Hists[i]
		wh := WireHist{Name: nh.Name, Metric: nh.Metric, Labels: nh.Labels}
		for b := 0; b < stats.NumBuckets; b++ {
			if c := nh.Hist.BucketCount(b); c != 0 {
				wh.Buckets = append(wh.Buckets, WireBucket{B: b, N: c, Sum: nh.Hist.BucketSum(b)})
			}
		}
		w.Hists = append(w.Hists, wh)
	}
	if s.Gauges != nil {
		for _, n := range s.Gauges.Names() {
			v, _ := s.Gauges.Get(n)
			w.Gauges[n] = v
		}
	}
	return w
}

// Snapshot converts a wire snapshot back into the in-memory form.
func (w *WireSnapshot) Snapshot() *Snapshot {
	s := &Snapshot{Gauges: stats.NewCounterSet()}
	for i := range w.Hists {
		wh := &w.Hists[i]
		nh := NamedHist{Name: wh.Name, Metric: wh.Metric, Labels: wh.Labels}
		for _, bk := range wh.Buckets {
			nh.Hist.AccumulateBucket(bk.B, bk.N, bk.Sum)
		}
		s.Hists = append(s.Hists, nh)
	}
	names := make([]string, 0, len(w.Gauges))
	for n := range w.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Gauges.Set(n, w.Gauges[n])
	}
	return s
}

// PeerSource describes where one peer's snapshot comes from: an
// in-process Snap function (co-located ranks — the shm cluster, or the
// local rank itself) or the base URL of the peer's debug endpoint
// (remote processes; the collector GETs URL+"/snapshot"). Snap wins
// when both are set.
type PeerSource struct {
	Rank int
	URL  string
	Snap func() *Snapshot
}

// PeerMetrics is one peer's scrape result.
type PeerMetrics struct {
	Rank int
	Snap *Snapshot // nil when the scrape failed
	Err  error
}

// PeerQuantile ranks one peer by a histogram quantile (TopK output).
type PeerQuantile struct {
	Rank       int
	N          int64
	QuantileNS int64
}

// ClusterSnapshot is one collection round: every peer's snapshot plus
// the exact cross-peer merge.
type ClusterSnapshot struct {
	Peers  []PeerMetrics
	Merged *Snapshot // histograms merged bucket-exact; gauges summed
}

// Collector pulls peer snapshots and aggregates them.
type Collector struct {
	sources []PeerSource
	client  *http.Client
}

// NewCollector builds a collector over the given peer sources.
func NewCollector(sources []PeerSource) *Collector {
	return &Collector{
		sources: append([]PeerSource(nil), sources...),
		client:  &http.Client{Timeout: 5 * time.Second},
	}
}

// Collect scrapes every source in parallel and merges the results.
// Unreachable peers appear in Peers with Err set and are excluded from
// the merge; Collect itself never fails.
func (c *Collector) Collect() *ClusterSnapshot {
	peers := make([]PeerMetrics, len(c.sources))
	var wg sync.WaitGroup
	for i := range c.sources {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peers[i] = c.scrape(&c.sources[i])
		}(i)
	}
	wg.Wait()
	cs := &ClusterSnapshot{Peers: peers}
	cs.merge()
	return cs
}

func (c *Collector) scrape(src *PeerSource) PeerMetrics {
	pm := PeerMetrics{Rank: src.Rank}
	if src.Snap != nil {
		pm.Snap = src.Snap()
		return pm
	}
	if src.URL == "" {
		pm.Err = fmt.Errorf("metrics: peer %d has no source", src.Rank)
		return pm
	}
	resp, err := c.client.Get(strings.TrimRight(src.URL, "/") + "/snapshot")
	if err != nil {
		pm.Err = err
		return pm
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		pm.Err = fmt.Errorf("metrics: peer %d: HTTP %d", src.Rank, resp.StatusCode)
		return pm
	}
	var w WireSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		pm.Err = fmt.Errorf("metrics: peer %d: %w", src.Rank, err)
		return pm
	}
	pm.Snap = w.Snapshot()
	return pm
}

// merge folds every reachable peer into Merged: histograms accumulate
// bucket-by-bucket (counts and sums, so cluster means are exact) and
// gauges sum across peers. Per-peer gauge values stay available in
// Peers for tables that need them unsummed.
func (cs *ClusterSnapshot) merge() {
	merged := &Snapshot{Gauges: stats.NewCounterSet()}
	idx := map[string]int{}
	for _, pm := range cs.Peers {
		if pm.Snap == nil {
			continue
		}
		for i := range pm.Snap.Hists {
			src := &pm.Snap.Hists[i]
			j, ok := idx[src.Name]
			if !ok {
				j = len(merged.Hists)
				idx[src.Name] = j
				merged.Hists = append(merged.Hists, NamedHist{
					Name: src.Name, Metric: src.Metric, Labels: src.Labels,
				})
			}
			dst := &merged.Hists[j].Hist
			for b := 0; b < stats.NumBuckets; b++ {
				if c := src.Hist.BucketCount(b); c != 0 {
					dst.AccumulateBucket(b, c, src.Hist.BucketSum(b))
				}
			}
		}
		if pm.Snap.Gauges != nil {
			for _, n := range pm.Snap.Gauges.Names() {
				v, _ := pm.Snap.Gauges.Get(n)
				merged.Gauges.Add(n, v)
			}
		}
	}
	cs.Merged = merged
}

// TopK ranks the reachable peers by quantile q of the named histogram,
// slowest first, returning at most k entries. Peers without the
// histogram are skipped.
func (cs *ClusterSnapshot) TopK(hist string, q float64, k int) []PeerQuantile {
	var out []PeerQuantile
	for _, pm := range cs.Peers {
		if pm.Snap == nil {
			continue
		}
		for i := range pm.Snap.Hists {
			if nh := &pm.Snap.Hists[i]; nh.Name == hist {
				out = append(out, PeerQuantile{
					Rank:       pm.Rank,
					N:          nh.Hist.N(),
					QuantileNS: nh.Hist.Quantile(q),
				})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QuantileNS != out[j].QuantileNS {
			return out[i].QuantileNS > out[j].QuantileNS
		}
		return out[i].Rank < out[j].Rank
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Render prints the cluster snapshot: a reachability line, the merged
// latency/gauge block, a per-peer gauge table for a few headline
// gauges, and the slowest-peer ranking for every op histogram present.
func (cs *ClusterSnapshot) Render() string {
	var b strings.Builder
	up := 0
	for _, pm := range cs.Peers {
		if pm.Snap != nil {
			up++
		}
	}
	fmt.Fprintf(&b, "# cluster: %d/%d peers reachable\n", up, len(cs.Peers))
	for _, pm := range cs.Peers {
		if pm.Err != nil {
			fmt.Fprintf(&b, "  peer %d unreachable: %v\n", pm.Rank, pm.Err)
		}
	}
	if cs.Merged != nil {
		b.WriteString(cs.Merged.Render())
	}
	// Slowest-peer ranking per op histogram, p99.
	seen := map[string]bool{}
	for _, pm := range cs.Peers {
		if pm.Snap == nil {
			continue
		}
		for i := range pm.Snap.Hists {
			name := pm.Snap.Hists[i].Name
			if seen[name] || !strings.Contains(name, "/") || strings.HasPrefix(name, "progress/") {
				continue
			}
			seen[name] = true
			t := stats.NewTable("slowest peers: "+name+" p99 (us)", "rank", "n", "p99")
			for _, pq := range cs.TopK(name, 0.99, 3) {
				t.Row(pq.Rank, pq.N, float64(pq.QuantileNS)/1e3)
			}
			b.WriteString(t.Render())
		}
	}
	return b.String()
}

// WriteJSON emits the cluster snapshot — per-peer wire snapshots plus
// the merge — as indented JSON.
func (cs *ClusterSnapshot) WriteJSON(w io.Writer) error {
	type peerJSON struct {
		Rank int           `json:"rank"`
		Err  string        `json:"err,omitempty"`
		Snap *WireSnapshot `json:"snap,omitempty"`
	}
	out := struct {
		Peers  []peerJSON    `json:"peers"`
		Merged *WireSnapshot `json:"merged"`
	}{}
	for _, pm := range cs.Peers {
		pj := peerJSON{Rank: pm.Rank}
		if pm.Err != nil {
			pj.Err = pm.Err.Error()
		}
		if pm.Snap != nil {
			pj.Snap = pm.Snap.Wire()
		}
		out.Peers = append(out.Peers, pj)
	}
	if cs.Merged != nil {
		out.Merged = cs.Merged.Wire()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
