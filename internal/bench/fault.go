package bench

import (
	"errors"
	"fmt"
	"time"

	"photon/internal/backend/chaos"
	"photon/internal/backend/tcp"
	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
)

// Measurement routines behind E13 (fault injection & recovery). Two
// regimes are compared:
//
//   - Faults handled BY the transport: the TCP backend's reconnect +
//     retransmit-window machinery recovers severed connections, so a
//     signaled op posted before the sever still completes exactly once.
//     Recovery time and goodput under periodic severs quantify that.
//   - Faults ABOVE the transport: a frame lost at the post boundary
//     (chaos drop) never enters the retransmit window; the receiver's
//     in-order ledger head wedges behind the hole, and only the
//     OpTimeout sweep keeps the initiator from hanging. Goodput
//     collapses — by design, the recoverability contract lives in the
//     transport, not the ledger.

// SeverRecoveryTime severs a live 2-rank TCP link `trials` times and
// measures, per trial, how long a send posted immediately after the
// sever takes to complete: detection (read error) + redial backoff +
// re-handshake + window retransmit. The heartbeat interval arms the
// failure detector exactly as a production config would; for a closed
// socket detection is the read error, so the axis mostly shows that
// recovery is backoff-bound, not heartbeat-bound.
func SeverRecoveryTime(hb time.Duration, trials int) (mean, max time.Duration, err error) {
	phs, bes, cleanup, err := NewTCPPhotonsFT(2, core.Config{HeartbeatInterval: hb},
		func(c *tcp.Config) { c.ReconnectBackoff = time.Millisecond })
	if err != nil {
		return 0, 0, err
	}
	defer cleanup()
	// Warm the link so trial 1 is not also measuring first-use costs.
	if err := phs[0].SendBlocking(1, []byte{0}, 0, 1); err != nil {
		return 0, 0, err
	}
	if _, err := phs[1].WaitRemote(1, 30*time.Second); err != nil {
		return 0, 0, err
	}
	var total time.Duration
	for i := 0; i < trials; i++ {
		rid := uint64(100 + i)
		bes[0].Sever(1)
		start := time.Now()
		// Recovery is over when a message posted after the sever is
		// DELIVERED: detection + redial backoff + re-handshake + window
		// retransmit + the send itself.
		for {
			err := phs[0].Send(1, []byte{byte(i)}, 0, rid)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrWouldBlock) {
				return 0, 0, fmt.Errorf("trial %d: %w", i, err)
			}
			phs[0].Progress()
		}
		if _, err := phs[1].WaitRemote(rid, 30*time.Second); err != nil {
			return 0, 0, fmt.Errorf("trial %d: recovery never completed: %w", i, err)
		}
		el := time.Since(start)
		total += el
		if el > max {
			max = el
		}
	}
	return total / time.Duration(trials), max, nil
}

// GoodputUnderSevers runs the saturated 8-byte send stream while a
// saboteur severs the live connection every `every` (0 = no faults)
// and returns the achieved message rate. Blocking sends ride through
// each reconnect via the retransmit window, so the stream completes —
// the question is only how much rate the faults cost.
func GoodputUnderSevers(iters int, every time.Duration) (float64, error) {
	phs, bes, cleanup, err := NewTCPPhotonsFT(2,
		core.Config{LedgerSlots: 128},
		func(c *tcp.Config) { c.ReconnectBackoff = time.Millisecond })
	if err != nil {
		return 0, err
	}
	defer cleanup()
	stop := make(chan struct{})
	saboteurDone := make(chan struct{})
	if every > 0 {
		go func() {
			defer close(saboteurDone)
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					bes[0].Sever(1)
				}
			}
		}()
	} else {
		close(saboteurDone)
	}
	rate, err := SaturatedSendThroughput(phs, 8, iters)
	close(stop)
	<-saboteurDone
	return rate, err
}

// LossyGoodput fires n sends over vsim with dropProb of posted frames
// silently lost above the transport and returns how many completed OK
// and the achieved OK-rate. With any sustained loss the receiver's
// in-order head wedges behind the first hole, credits stop returning,
// and goodput collapses — the measurement that motivates putting
// recovery in the transport.
func LossyGoodput(n int, dropProb float64) (ok int, rate float64, err error) {
	cl, err := vsim.NewCluster(2, fabric.Model{}, nicsim.Config{})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	cfg := core.Config{LedgerSlots: 64, OpTimeout: 150 * time.Millisecond}
	cb := chaos.Wrap(cl.Backend(0), chaos.Plan{Seed: 1, DropProb: dropProb})
	phs := make([]*core.Photon, 2)
	errs := make([]error, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		phs[1], errs[1] = core.Init(cl.Backend(1), cfg)
	}()
	phs[0], errs[0] = core.Init(cb, cfg)
	<-done
	for _, e := range errs {
		if e != nil {
			return 0, 0, e
		}
	}
	defer phs[0].Close()
	defer phs[1].Close()
	start := time.Now()
	posted := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		deadline := time.Now().Add(400 * time.Millisecond)
		for {
			perr := phs[0].Send(1, []byte{byte(i)}, uint64(i), uint64(i))
			if perr == nil {
				posted[i] = true
				break
			}
			if !errors.Is(perr, core.ErrWouldBlock) || time.Now().After(deadline) {
				break
			}
			phs[0].Progress()
			phs[1].Progress()
		}
		if !posted[i] {
			// Credits stopped returning: the receiver's head is wedged
			// behind a hole and no later send can post. Stop here —
			// spending the deadline on every remaining send would
			// measure this loop's patience, not the system.
			break
		}
	}
	for i := 1; i <= n; i++ {
		if !posted[i] {
			continue
		}
		c, werr := phs[0].WaitLocal(uint64(i), 2*time.Second)
		if werr != nil {
			continue // swept later than our patience; counts as lost
		}
		if c.Err == nil {
			ok++
		}
	}
	elapsed := time.Since(start)
	return ok, float64(ok) / elapsed.Seconds(), nil
}
