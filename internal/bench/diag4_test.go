package bench

import (
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/ledger"
	"photon/internal/mem"
	"testing"
	"time"
)

func TestProgressBreakdown(t *testing.T) {
	const n = 300000
	// Raw ledger Poll cost.
	buf := make([]byte, 64*64)
	r, _ := ledger.NewReceiver(buf, 64, nil)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		r.Poll()
	}
	t.Logf("bare Receiver.Poll (no locker): %v", time.Since(t0)/n)

	e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Poll with the real arena locker.
	_, _, lks, err := e.SharedBuffers(4096)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := ledger.NewReceiver(buf, 64, lks[0])
	t0 = time.Now()
	for i := 0; i < n; i++ {
		r2.Poll()
	}
	t.Logf("Receiver.Poll with RWMutex locker: %v", time.Since(t0)/n)

	var rb mem.RemoteBuffer
	_ = rb
	t0 = time.Now()
	for i := 0; i < n; i++ {
		e.Phs[1].Progress()
	}
	t.Logf("idle Progress: %v", time.Since(t0)/n)
}
