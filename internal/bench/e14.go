package bench

import (
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/stats"
)

// ShardedSinkRate measures aggregate small-message ingest at a single
// sink rank running background progress runners (one per engine
// shard). Every other rank is an initiator posting perSrc 8-byte
// sends toward rank 0; with peers assigned to shards by rank modulo
// shard count, the initiators spread across the sink's shards and the
// runners reap concurrently. Returns messages per second.
func ShardedSinkRate(phs []*core.Photon, perSrc int) (float64, error) {
	sink := phs[0]
	sink.StartProgress()
	nsrc := len(phs) - 1
	total := nsrc * perSrc
	errs := make([]error, nsrc)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < nsrc; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ph := phs[s+1]
			payload := make([]byte, 8)
			for i := 0; i < perSrc; i++ {
				if err := ph.SendBlocking(0, payload, 0, uint64(s*perSrc+i+1)); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	// Harvest on the main goroutine; the shard runners own Progress.
	got := 0
	deadline := time.Now().Add(benchWait)
	for got < total {
		if _, ok := sink.PopRemote(); ok {
			got++
			continue
		}
		gort.Gosched()
		if time.Now().After(deadline) {
			wg.Wait()
			return 0, fmt.Errorf("sharded sink stalled at %d/%d", got, total)
		}
	}
	elapsed := time.Since(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(total) / elapsed.Seconds(), nil
}

// runE14 — cores vs message rate: engine-shard scaling at a hot sink
// rank, and the intra-host shared-memory transport against the
// simulated-verbs and socket backends at the 8-byte point.
func runE14(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))
	perSrc := scaled(1500, scale)
	iters := scaled(200, scale)

	// Leg A: aggregate ingest at one sink vs engine shard count, 4
	// initiator ranks over vsim. The -shards flag narrows the sweep.
	shardCounts := []int{1, 2, 4}
	if ShardsOverride != 0 {
		shardCounts = []int{ShardsOverride}
	}
	sweep := stats.NewSeries("E14a: aggregate 8B send ingest at one sink (Kmsg/s) vs engine shards (vsim, 4 initiator ranks)",
		"shards", "photon-pwc")
	if BackendOverride == "" || BackendOverride == "vsim" {
		for _, shards := range shardCounts {
			e, err := NewPhotonOnly(5, fabric.Model{}, core.Config{LedgerSlots: 512, EngineShards: shards})
			if err != nil {
				return nil, err
			}
			rate, err := ShardedSinkRate(e.Phs, perSrc)
			e.Close()
			if err != nil {
				return nil, fmt.Errorf("E14a shards=%d: %w", shards, err)
			}
			sweep.Row(float64(shards), rate/1e3)
		}
	}

	// Leg B: backend latency at 8 bytes — shm against the established
	// vsim and tcp rows (one-way, same measurement as Table 3).
	lat := stats.NewTable("E14b: 8-byte one-way latency (us) by backend",
		"backend", "send", "put")
	runLeg := func(name string, phs []*core.Photon) error {
		small, err := PingPongSend(phs, 8, iters)
		if err != nil {
			return fmt.Errorf("E14b %s send: %w", name, err)
		}
		_, descs, _, err := ShareBuffers(phs, 1<<16)
		if err != nil {
			return err
		}
		put, err := PingPongPWC(phs, descs, 8, iters)
		if err != nil {
			return fmt.Errorf("E14b %s put: %w", name, err)
		}
		lat.Row(name, us(small), us(put))
		return nil
	}
	want := func(name string) bool { return BackendOverride == "" || BackendOverride == name }
	if want("vsim") {
		e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
		if err != nil {
			return nil, err
		}
		err = runLeg("vsim-verbs", e.Phs)
		e.Close()
		if err != nil {
			return nil, err
		}
	}
	if want("tcp") {
		phs, cleanup, err := NewTCPPhotons(2, core.Config{})
		if err != nil {
			return nil, err
		}
		err = runLeg("tcp-sockets", phs)
		cleanup()
		if err != nil {
			return nil, err
		}
	}
	var shmRate *stats.Series
	if want("shm") {
		phs, cleanup, err := NewShmPhotons(2, core.Config{})
		if err != nil {
			return nil, err
		}
		if err := runLeg("shm-rings", phs); err != nil {
			cleanup()
			return nil, err
		}
		// Pipelined 8B put rate over the rings, the counterpart of the
		// TCP data-path profile in E11.
		_, descs, _, err := ShareBuffers(phs, 1<<20)
		if err != nil {
			cleanup()
			return nil, err
		}
		shmRate = stats.NewSeries("E14c: shm pipelined 8B put rate (Kmsg/s) vs window", "window", "rate")
		for _, w := range []int{1, 8, 32} {
			bw, err := StreamBandwidthPWC(phs, descs, 8, w, scaled(4000, scale))
			if err != nil {
				cleanup()
				return nil, err
			}
			shmRate.Row(float64(w), bw/8/1e3)
		}
		cleanup()
	}

	rep := &Report{ID: "E14", Title: "engine-shard scaling + shm backend",
		Series: []*stats.Series{sweep}, Tables: []*stats.Table{lat}}
	if shmRate != nil {
		rep.Series = append(rep.Series, shmRate)
	}
	return rep, nil
}
