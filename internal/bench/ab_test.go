package bench

import (
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/msg"
	"photon/internal/nicsim"
	gort "runtime"
	"testing"
	"time"
)

// Interleaved A/B latency decomposition: photon packed put vs the
// two-sided baseline's eager send, one-way, alternating batches in one
// process so machine noise hits both equally. Reports post cost,
// discovery time, and spin counts — the decomposition EXPERIMENTS.md
// discusses.
func TestABOneWay(t *testing.T) {
	e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(4096)
	if err != nil {
		t.Fatal(err)
	}
	j, err := msg.NewJob(2, fabric.Model{}, nicsim.Config{}, msg.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	a, b := j.Endpoint(0), j.Endpoint(1)

	// warmup
	for k := uint64(1); k <= 100; k++ {
		e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, 900000+k)
		e.Phs[1].WaitRemote(900000+k, time.Second)
		a.Send(1, k, []byte{1})
		b.RecvBlocking(0, k, nil, time.Second)
	}

	const batches, per = 40, 50
	var pPost, pDisc, mPost, mDisc time.Duration
	var pSpins, mSpins int
	seq := uint64(0)
	for bi := 0; bi < batches; bi++ {
		for i := 0; i < per; i++ {
			seq++
			t0 := time.Now()
			if err := e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, seq); err != nil {
				t.Fatal(err)
			}
			t1 := time.Now()
			for {
				pSpins++
				e.Phs[1].Progress()
				if _, ok := e.Phs[1].PopRemote(); ok {
					break
				}
				gort.Gosched()
			}
			pPost += t1.Sub(t0)
			pDisc += time.Since(t1)
		}
		for i := 0; i < per; i++ {
			seq++
			t0 := time.Now()
			if _, err := a.Send(1, seq, []byte{1}); err != nil {
				t.Fatal(err)
			}
			t1 := time.Now()
			ch, _ := b.Recv(0, seq, nil)
			for {
				mSpins++
				b.Progress()
				select {
				case <-ch:
					goto done
				default:
				}
				gort.Gosched()
			}
		done:
			mPost += t1.Sub(t0)
			mDisc += time.Since(t1)
		}
	}
	n := time.Duration(batches * per)
	t.Logf("photon: post=%v disc=%v spins/op=%.1f", pPost/n, pDisc/n, float64(pSpins)/float64(n))
	t.Logf("msg:    post=%v disc=%v spins/op=%.1f", mPost/n, mDisc/n, float64(mSpins)/float64(n))
}
