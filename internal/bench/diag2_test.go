package bench

import (
	"photon/internal/core"
	"photon/internal/fabric"
	gort "runtime"
	"testing"
	"time"
)

// Segment the one-way packed-put latency: post -> WaitRemote sees it.
func TestSegmentLatency(t *testing.T) {
	e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(4096)
	if err != nil {
		t.Fatal(err)
	}

	// Warm up.
	for k := uint64(1); k <= 100; k++ {
		e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, k)
		e.Phs[1].WaitRemote(k, time.Second)
	}
	// Measure: receiver spins Probe; sender stamps post time.
	const iters = 2000
	var sum time.Duration
	for k := uint64(101); k < 101+iters; k++ {
		t0 := time.Now()
		if err := e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, k); err != nil {
			t.Fatal(err)
		}
		for {
			if c, ok := e.Phs[1].Probe(core.ProbeRemote); ok {
				if c.RID != k {
					t.Fatalf("rid %d want %d", c.RID, k)
				}
				break
			}
			gort.Gosched()
		}
		sum += time.Since(t0)
	}
	t.Logf("post->probe one-way (same goroutine): %v", sum/iters)
}
