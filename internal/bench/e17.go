package bench

import (
	"fmt"
	"sync"
	"time"

	"photon/internal/backend/chaos"
	"photon/internal/backend/vsim"
	"photon/internal/collectives"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
	"photon/internal/stats"
)

// runE17 — failure-aware collectives (no paper figure: the paper's
// middleware stops at point-to-point PWC; this measures the abort,
// revoke, and shrink plane built over it).
//
// Legs:
//
//	a) kill→abort latency of a collective vs rank count, detector
//	   armed (abort driven by the peer-health latch plus the
//	   revocation flood) vs disarmed (the before state: the only
//	   bound is the whole-collective deadline, here 500ms — the seed
//	   engine would have waited its full per-wait timeout the same
//	   way). Reported per run: the worst survivor's latency from the
//	   kill instant to its collective returning an error.
//	b) goodput of shrink-then-continue vs restart-from-scratch: a
//	   fixed allreduce workload with one rank killed halfway. Shrink
//	   pays survivor agreement and finishes the remaining iterations
//	   on n-1 ranks; restart pays a full job re-boot and redoes the
//	   whole workload (the pre-shrink engine's only recovery story).
//
// vsim links use the 2us-latency model; the chaos group wrapper
// delivers kills with a 300us detection delay, so leg a's armed
// column is dominated by detector cadence + flood fan-out, not vsim
// transfer time.
func runE17(scale float64) (*Report, error) {
	warmProcess(scaled(50, scale))

	lean := core.Config{LedgerSlots: 16, EagerEntrySize: 256, CompQueueDepth: 256, RdzvSlabSize: 64 << 10}

	// Leg a: abort latency vs ranks, detector on/off.
	const deadlineOnly = 500 * time.Millisecond
	reps := scaled(5, scale)
	if reps < 3 {
		reps = 3
	}
	abort := stats.NewSeries("E17a: kill->abort latency (ms), worst survivor, allreduce vs ranks (vsim, 300us detect delay, median)",
		"ranks", "deadline-only-ms", "detector-ms")
	for _, n := range []int{4, 8, 16, 32} {
		var off, on []float64
		for rep := 0; rep < reps; rep++ {
			// Detector disarmed: HeartbeatInterval 0 leaves the
			// engine's peer-health plane dark, so the only way out of
			// the collective is the whole-collective deadline.
			ms, err := abortLatency(n, lean, 0, collectives.Config{Timeout: deadlineOnly})
			if err != nil {
				return nil, fmt.Errorf("E17a deadline n=%d: %w", n, err)
			}
			off = append(off, ms)
			ms, err = abortLatency(n, lean, 200*time.Microsecond, collectives.Config{Timeout: benchWait})
			if err != nil {
				return nil, fmt.Errorf("E17a detector n=%d: %w", n, err)
			}
			on = append(on, ms)
		}
		abort.Row(float64(n), medianF(off), medianF(on))
	}

	// Leg b: shrink-then-continue vs restart goodput.
	iters := scaled(400, scale)
	if iters < 40 {
		iters = 40
	}
	const nB, vecLen = 16, 64
	tbl := stats.NewTable(fmt.Sprintf("E17b: %d-rank job, %d x %d-double allreduces, one rank killed halfway (vsim, median-free single runs)", nB, iters, vecLen),
		"strategy", "total-ms", "recovery-ms", "allreduces-done")
	shTotal, shRecover, err := shrinkContinue(nB, lean, vecLen, iters)
	if err != nil {
		return nil, fmt.Errorf("E17b shrink: %w", err)
	}
	tbl.Row("shrink-then-continue", ms(shTotal), ms(shRecover), iters)
	rsTotal, rsRecover, err := restartFromScratch(nB, lean, vecLen, iters)
	if err != nil {
		return nil, fmt.Errorf("E17b restart: %w", err)
	}
	tbl.Row("restart-from-scratch", ms(rsTotal), ms(rsRecover), iters+iters/2)

	return &Report{ID: "E17", Title: "failure-aware collectives: abort latency and shrink goodput",
		Series: []*stats.Series{abort}, Tables: []*stats.Table{tbl}}, nil
}

// chaosEnv is a vsim cluster with every backend wrapped in one chaos
// group, so a kill is observed consistently by all ranks.
type chaosEnv struct {
	cl    *vsim.Cluster
	group *chaos.Group
	bes   []*chaos.Backend
	phs   []*core.Photon
	comms []*collectives.Comm
}

func newChaosEnv(n int, fm fabric.Model, coreCfg core.Config, ccfg collectives.Config) (*chaosEnv, error) {
	cl, err := vsim.NewCluster(n, fm, nicsim.Config{})
	if err != nil {
		return nil, err
	}
	e := &chaosEnv{
		cl:    cl,
		group: chaos.NewGroup(300 * time.Microsecond),
		bes:   make([]*chaos.Backend, n),
		phs:   make([]*core.Photon, n),
		comms: make([]*collectives.Comm, n),
	}
	coreCfg = overlayObs(coreCfg)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		e.bes[r] = chaos.WrapGroup(cl.Backend(r), chaos.Plan{Seed: int64(r)}, e.group)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ph, err := core.Init(e.bes[r], coreCfg)
			if err != nil {
				errs[r] = err
				return
			}
			e.phs[r] = ph
			e.comms[r] = collectives.NewWithConfig(ph, ccfg)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			cl.Close()
			return nil, err
		}
	}
	return e, nil
}

func (e *chaosEnv) Close() {
	for _, ph := range e.phs {
		if ph != nil {
			ph.Close()
		}
	}
	e.cl.Close()
}

// abortLatency runs one kill-mid-allreduce round and returns the worst
// survivor's kill->error latency in milliseconds. hb == 0 leaves the
// failure detector disarmed.
func abortLatency(n int, coreCfg core.Config, hb time.Duration, ccfg collectives.Config) (float64, error) {
	coreCfg.HeartbeatInterval = hb
	if hb > 0 {
		coreCfg.SuspectAfter = 4 * hb
	}
	e, err := newChaosEnv(n, latModel, coreCfg, ccfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()

	// One clean collective to settle arenas and schedules.
	if errs := collectiveAll(e.comms, func(r int, c *collectives.Comm) error { return c.Barrier() }); firstErr(errs) != nil {
		return 0, firstErr(errs)
	}
	victim := n / 2
	e.bes[victim].CrashAfterOps(2)
	done := make([]time.Time, n)
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 16)
	}
	errs := collectiveAll(e.comms, func(r int, c *collectives.Comm) error {
		err := c.AllreduceInPlace(vecs[r], collectives.OpSum)
		done[r] = time.Now()
		return err
	})
	killNS := e.group.KilledAtNS(victim)
	if killNS == 0 {
		return 0, fmt.Errorf("victim %d never crashed", victim)
	}
	var worst float64
	for r := 0; r < n; r++ {
		if r == victim {
			continue
		}
		if errs[r] == nil {
			return 0, fmt.Errorf("rank %d completed despite dead rank %d", r, victim)
		}
		if lat := float64(done[r].UnixNano()-killNS) / 1e6; lat > worst {
			worst = lat
		}
	}
	return worst, nil
}

// collectiveAll runs fn on every rank concurrently.
func collectiveAll(comms []*collectives.Comm, fn func(r int, c *collectives.Comm) error) []error {
	errs := make([]error, len(comms))
	var wg sync.WaitGroup
	for r, c := range comms {
		wg.Add(1)
		go func(r int, c *collectives.Comm) {
			defer wg.Done()
			errs[r] = fn(r, c)
		}(r, c)
	}
	wg.Wait()
	return errs
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// detectorCfg arms the failure detector at benchmark cadence.
func detectorCfg(base core.Config) core.Config {
	base.HeartbeatInterval = 200 * time.Microsecond
	base.SuspectAfter = 800 * time.Microsecond
	return base
}

// shrinkContinue measures the shrink recovery path: iters allreduces
// with a kill halfway, survivors Shrink and finish the remainder on
// n-1 ranks. Returns total wall time and the recovery span (revoked
// collective entered -> shrunken comm ready on all survivors).
func shrinkContinue(n int, coreCfg core.Config, vecLen, iters int) (total, recovery time.Duration, err error) {
	e, err := newChaosEnv(n, latModel, detectorCfg(coreCfg), collectives.Config{Timeout: benchWait})
	if err != nil {
		return 0, 0, err
	}
	defer e.Close()

	victim := n / 2
	half := iters / 2
	start := time.Now()
	var recStart, recEnd time.Time
	var recMu sync.Mutex
	errs := collectiveAll(e.comms, func(r int, c *collectives.Comm) error {
		vec := make([]float64, vecLen)
		for it := 0; it < iters; it++ {
			if r == victim && it == half {
				e.group.Kill(victim)
				return nil
			}
			if err := c.AllreduceInPlace(vec, collectives.OpSum); err != nil {
				if r == victim {
					return nil // the corpse's own view is irrelevant
				}
				recMu.Lock()
				if recStart.IsZero() {
					recStart = time.Now()
				}
				recMu.Unlock()
				nc, serr := c.Shrink()
				if serr != nil {
					return fmt.Errorf("shrink at iter %d: %w", it, serr)
				}
				recMu.Lock()
				recEnd = time.Now()
				recMu.Unlock()
				c = nc
				it-- // the aborted iteration is redone on the new comm
				continue
			}
		}
		return nil
	})
	if err := firstErr(errs); err != nil {
		return 0, 0, err
	}
	return time.Since(start), recEnd.Sub(recStart), nil
}

// restartFromScratch measures the before-state recovery story: the
// same workload, but the failure tears the whole job down and a fresh
// (n-1)-rank job redoes every iteration from zero.
func restartFromScratch(n int, coreCfg core.Config, vecLen, iters int) (total, recovery time.Duration, err error) {
	half := iters / 2
	start := time.Now()

	run := func(nRanks, todo int, kill bool) error {
		e, err := newChaosEnv(nRanks, latModel, detectorCfg(coreCfg), collectives.Config{Timeout: benchWait})
		if err != nil {
			return err
		}
		defer e.Close()
		victim := nRanks / 2
		errs := collectiveAll(e.comms, func(r int, c *collectives.Comm) error {
			vec := make([]float64, vecLen)
			for it := 0; it < todo; it++ {
				if kill && r == victim && it == half {
					e.group.Kill(victim)
					return nil
				}
				if err := c.AllreduceInPlace(vec, collectives.OpSum); err != nil {
					if r == victim || kill {
						return nil // job is dead; everyone exits
					}
					return err
				}
			}
			return nil
		})
		if kill {
			return nil // errors are the expected abort
		}
		return firstErr(errs)
	}

	if err := run(n, iters, true); err != nil {
		return 0, 0, err
	}
	recStart := time.Now()
	if err := run(n-1, iters, false); err != nil {
		return 0, 0, err
	}
	return time.Since(start), time.Since(recStart), nil
}
