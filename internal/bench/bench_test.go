package bench

import (
	"testing"

	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/msg"
)

func newEnv(t *testing.T, n int) *Env {
	t.Helper()
	e, err := NewEnv(n, fabric.Model{}, core.Config{}, msg.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestPingPongRoutinesProduceSaneLatencies(t *testing.T) {
	e := newEnv(t, 2)
	_, descs, _, err := e.SharedBuffers(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 50
	lat, err := PingPongPWC(e.Phs, descs, 8, iters)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("pwc latency = %v", lat)
	}
	lat, err = PingPongSend(e.Phs, 8, iters)
	if err != nil || lat <= 0 {
		t.Fatalf("send latency = %v err %v", lat, err)
	}
	lat, err = PingPongBaseline(e.MsgJob, 8, iters)
	if err != nil || lat <= 0 {
		t.Fatalf("baseline latency = %v err %v", lat, err)
	}
}

func TestGetRoutines(t *testing.T) {
	e := newEnv(t, 2)
	_, descs, _, err := e.SharedBuffers(4096)
	if err != nil {
		t.Fatal(err)
	}
	if lat, err := GetLatencyGWC(e.Phs, descs, 256, 30); err != nil || lat <= 0 {
		t.Fatalf("gwc: %v %v", lat, err)
	}
	if lat, err := GetLatencyBaseline(e.MsgJob, 256, 30); err != nil || lat <= 0 {
		t.Fatalf("baseline get: %v %v", lat, err)
	}
}

func TestBandwidthRoutines(t *testing.T) {
	e := newEnv(t, 2)
	_, descs, _, err := e.SharedBuffers(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := StreamBandwidthPWC(e.Phs, descs, 4096, 8, 100)
	if err != nil || bw <= 0 {
		t.Fatalf("pwc bw: %v %v", bw, err)
	}
	bw, err = StreamBandwidthBaseline(e.MsgJob, 4096, 8, 100)
	if err != nil || bw <= 0 {
		t.Fatalf("baseline bw: %v %v", bw, err)
	}
}

func TestMessageRateRoutines(t *testing.T) {
	e := newEnv(t, 2)
	r, err := MessageRatePWC(e.Phs, 2, 200)
	if err != nil || r <= 0 {
		t.Fatalf("pwc rate: %v %v", r, err)
	}
	r, err = MessageRateBaseline(e.MsgJob, 2, 200)
	if err != nil || r <= 0 {
		t.Fatalf("baseline rate: %v %v", r, err)
	}
}

func TestAtomicRoutines(t *testing.T) {
	e := newEnv(t, 2)
	_, descs, _, err := e.SharedBuffers(64)
	if err != nil {
		t.Fatal(err)
	}
	if lat, err := AtomicLatency(e.Phs, descs, 50); err != nil || lat <= 0 {
		t.Fatalf("atomic latency: %v %v", lat, err)
	}
	if r, err := AtomicRate(e.Phs, descs, 16, 200); err != nil || r <= 0 {
		t.Fatalf("atomic rate: %v %v", r, err)
	}
	if lat, err := AtomicUpdateBaseline(e.MsgJob, 50); err != nil || lat <= 0 {
		t.Fatalf("baseline update: %v %v", lat, err)
	}
}

func TestSaturatedThroughputAndLedgerSweep(t *testing.T) {
	// Small ledger must still complete (flow control, no deadlock).
	e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{LedgerSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	r, err := SaturatedSendThroughput(e.Phs, 8, 500)
	if err != nil || r <= 0 {
		t.Fatalf("throughput: %v %v", r, err)
	}
}

func TestTCPPhotonsHelper(t *testing.T) {
	phs, cleanup, err := NewTCPPhotons(2, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if err := phs[0].Send(1, []byte{1}, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(5, benchWait); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyLatency(t *testing.T) {
	e := newEnv(t, 2)
	_, descs, _, err := e.SharedBuffers(64)
	if err != nil {
		t.Fatal(err)
	}
	if lat, err := NotifyLatencyPWC(e.Phs, descs, 30); err != nil || lat <= 0 {
		t.Fatalf("notify: %v %v", lat, err)
	}
}
