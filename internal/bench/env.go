// Package bench contains the measurement routines behind every table
// and figure of the reconstructed evaluation. cmd/photon-bench and the
// top-level testing.B benchmarks both call into this package so the CLI
// harness and `go test -bench` print the same quantities.
//
// Each routine isolates one comparison the paper's evaluation makes:
// one-sided ledger completion versus two-sided matching at equal
// transport cost (both run over the identical simulated NIC), eager
// versus rendezvous, ledger sizing, injector scaling, backend
// portability, and NIC atomics.
package bench

import (
	"fmt"
	"net"
	"sync"

	"photon/internal/backend/shm"
	"photon/internal/backend/tcp"
	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/msg"
	"photon/internal/nicsim"
)

// Obs, when set, carries observability sinks into every Photon the
// harness boots: experiments construct their own configs deep inside
// Run, so the CLI debug flags publish a shared trace ring / metrics
// registry here instead of threading parameters through every
// experiment signature. Explicit sinks in an experiment's own config
// win over the overlay.
var Obs core.Config

// ShardsOverride, when non-zero, forces EngineShards on every Photon
// the harness boots whose config leaves it defaulted (the CLI -shards
// flag). Experiments that sweep shard counts themselves (E14) instead
// restrict their sweep to this value.
var ShardsOverride int

// BackendOverride, when non-empty, restricts backend-sweep experiments
// to one transport: "vsim", "tcp", or "shm" (the CLI -backend flag).
var BackendOverride string

func overlayObs(cfg core.Config) core.Config {
	if cfg.EngineShards == 0 && ShardsOverride != 0 {
		cfg.EngineShards = ShardsOverride
	}
	if cfg.Trace == nil {
		cfg.Trace = Obs.Trace
	}
	if cfg.MetricsTo == nil {
		cfg.MetricsTo = Obs.MetricsTo
	}
	if Obs.Metrics {
		cfg.Metrics = true
	}
	if cfg.TraceSampleShift == 0 {
		cfg.TraceSampleShift = Obs.TraceSampleShift
	}
	return cfg
}

// Env bundles a Photon job and a two-sided baseline job built over
// identical transports (separate fabrics with the same model so the
// two stacks don't contend).
type Env struct {
	Cluster *vsim.Cluster
	Phs     []*core.Photon
	MsgJob  *msg.Job
}

// NewEnv builds an n-rank environment. fm applies to both stacks.
func NewEnv(n int, fm fabric.Model, coreCfg core.Config, msgCfg msg.Config) (*Env, error) {
	cl, err := vsim.NewCluster(n, fm, nicsim.Config{})
	if err != nil {
		return nil, err
	}
	phs, err := initPhotons(cl, coreCfg)
	if err != nil {
		cl.Close()
		return nil, err
	}
	job, err := msg.NewJob(n, fm, nicsim.Config{}, msgCfg)
	if err != nil {
		cl.Close()
		return nil, err
	}
	return &Env{Cluster: cl, Phs: phs, MsgJob: job}, nil
}

// NewPhotonOnly builds just the Photon side (for experiments without a
// baseline axis).
func NewPhotonOnly(n int, fm fabric.Model, coreCfg core.Config) (*Env, error) {
	cl, err := vsim.NewCluster(n, fm, nicsim.Config{})
	if err != nil {
		return nil, err
	}
	phs, err := initPhotons(cl, coreCfg)
	if err != nil {
		cl.Close()
		return nil, err
	}
	return &Env{Cluster: cl, Phs: phs}, nil
}

func initPhotons(cl *vsim.Cluster, cfg core.Config) ([]*core.Photon, error) {
	cfg = overlayObs(cfg)
	n := len(cl.Backends())
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return phs, nil
}

// Close releases both stacks.
func (e *Env) Close() {
	if e.Phs != nil {
		for _, p := range e.Phs {
			p.Close()
		}
	}
	if e.Cluster != nil {
		e.Cluster.Close()
	}
	if e.MsgJob != nil {
		e.MsgJob.Close()
	}
}

// SharedBuffers registers one buffer of size bytes at every rank and
// exchanges descriptors, returning per-rank views: bufs[r] is rank r's
// local buffer, descs[r][p] is rank p's buffer as seen by rank r.
func (e *Env) SharedBuffers(size int) (bufs [][]byte, descs [][]mem.RemoteBuffer, lks []sync.Locker, err error) {
	return ShareBuffers(e.Phs, size)
}

// ShareBuffers is SharedBuffers for a bare Photon set (any backend —
// the TCP experiments have no Env).
func ShareBuffers(phs []*core.Photon, size int) (bufs [][]byte, descs [][]mem.RemoteBuffer, lks []sync.Locker, err error) {
	n := len(phs)
	bufs = make([][]byte, n)
	descs = make([][]mem.RemoteBuffer, n)
	lks = make([]sync.Locker, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			bufs[r] = make([]byte, size)
			rb, lk, err := phs[r].RegisterBuffer(bufs[r])
			if err != nil {
				errs[r] = err
				return
			}
			lks[r] = lk
			descs[r], errs[r] = phs[r].ExchangeBuffers(rb)
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, nil, nil, e
		}
	}
	return bufs, descs, lks, nil
}

// NewShmPhotons boots an n-rank Photon job over the intra-host
// shared-memory backend (same-process peers over SPSC rings).
func NewShmPhotons(n int, cfg core.Config) ([]*core.Photon, func(), error) {
	cfg = overlayObs(cfg)
	cl, err := shm.NewCluster(n, shm.Config{})
	if err != nil {
		return nil, nil, err
	}
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), cfg)
		}(r)
	}
	wg.Wait()
	cleanup := func() {
		for _, p := range phs {
			if p != nil {
				p.Close()
			}
		}
		cl.Close()
	}
	for r, err := range errs {
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("shm rank %d: %w", r, err)
		}
	}
	return phs, cleanup, nil
}

// NewTCPPhotons boots an n-rank Photon job over the loopback TCP
// backend (for the backend-comparison experiment).
func NewTCPPhotons(n int, cfg core.Config) ([]*core.Photon, func(), error) {
	phs, _, cleanup, err := NewTCPPhotonsFT(n, cfg, nil)
	return phs, cleanup, err
}

// NewTCPPhotonsFT is NewTCPPhotons with the transport's recovery knobs
// exposed: tune edits each rank's tcp.Config before dialing, and the
// returned backends let fault experiments sever live connections.
func NewTCPPhotonsFT(n int, cfg core.Config, tune func(*tcp.Config)) ([]*core.Photon, []*tcp.Backend, func(), error) {
	cfg = overlayObs(cfg)
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	bes := make([]*tcp.Backend, n)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tc := tcp.Config{Rank: r, Addrs: addrs, Listener: lns[r]}
			if tune != nil {
				tune(&tc)
			}
			be, err := tcp.New(tc)
			if err != nil {
				errs[r] = err
				return
			}
			bes[r] = be
			phs[r], errs[r] = core.Init(be, cfg)
		}(r)
	}
	wg.Wait()
	cleanup := func() {
		for _, p := range phs {
			if p != nil {
				p.Close()
			}
		}
	}
	for r, err := range errs {
		if err != nil {
			cleanup()
			return nil, nil, nil, fmt.Errorf("tcp rank %d: %w", r, err)
		}
	}
	return phs, bes, cleanup, nil
}
