package bench

import (
	"fmt"
	"sort"
	"time"

	"photon/internal/apps"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/msg"
	"photon/internal/runtime"
	"photon/internal/stats"
)

// Report is one experiment's regenerated output: the text tables and
// series that correspond to the reconstructed paper artifact.
type Report struct {
	ID     string
	Title  string
	Series []*stats.Series
	Tables []*stats.Table
}

// Render prints the full report as text.
func (r *Report) Render() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, s := range r.Series {
		out += s.Render() + "\n"
	}
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	return out
}

// Experiments lists the runnable experiment IDs in order.
func Experiments() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment. scale (0 < scale <= 1 typical) shrinks
// iteration counts for quick runs; 1.0 is the full reconstruction.
func Run(id string, scale float64) (*Report, error) {
	fn, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, Experiments())
	}
	if scale <= 0 {
		scale = 1
	}
	return fn(scale)
}

var registry = map[string]func(scale float64) (*Report, error){
	"E1":  runE1,
	"E2":  runE2,
	"E3":  runE3,
	"E4":  runE4,
	"E5":  runE5,
	"E6":  runE6,
	"E7":  runE7,
	"E8":  runE8,
	"E9":  runE9,
	"E10": runE10,
	"E11": runE11,
	"E12": runE12,
	"E13": runE13,
	"E14": runE14,
	"E15": runE15,
	"E16": runE16,
	"E17": runE17,
}

// warmProcess runs a short untimed traffic burst on scratch
// environments so the first recorded row of a latency experiment is
// not measuring heap growth and cold stacks.
func warmProcess(iters int) {
	if e, err := NewEnv(2, fabric.Model{}, core.Config{}, msg.Config{}); err == nil {
		if _, descs, _, err := e.SharedBuffers(4096); err == nil {
			_, _ = PingPongPWC(e.Phs, descs, 8, iters)
			_, _ = PingPongBaseline(e.MsgJob, 8, iters)
			_, _ = PingPongSend(e.Phs, 8, iters)
		}
		e.Close()
	}
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 8 {
		n = 8
	}
	return n
}

// latModel is the non-zero delay model used where the experiment wants
// network-like timing rather than raw software overhead.
var latModel = fabric.Model{Latency: 2 * time.Microsecond, GapPerByte: time.Nanosecond / 2}

// runE1 — Fig. 1: put latency vs. message size.
func runE1(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))
	e, err := NewEnv(2, fabric.Model{}, core.Config{}, msg.Config{})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(128 * 1024)
	if err != nil {
		return nil, err
	}
	iters := scaled(400, scale)
	s := stats.NewSeries("Fig 1 (reconstructed): one-way put latency (us) vs size (B)",
		"size", "photon-pwc", "photon-send", "baseline-sendrecv")
	for _, size := range stats.Sizes(8, 64*1024) {
		pwc, err := PingPongPWC(e.Phs, descs, size, iters)
		if err != nil {
			return nil, fmt.Errorf("pwc size %d: %w", size, err)
		}
		snd, err := PingPongSend(e.Phs, size, iters)
		if err != nil {
			return nil, fmt.Errorf("send size %d: %w", size, err)
		}
		base, err := PingPongBaseline(e.MsgJob, size, iters)
		if err != nil {
			return nil, fmt.Errorf("baseline size %d: %w", size, err)
		}
		s.Row(float64(size), us(pwc), us(snd), us(base))
	}
	return &Report{ID: "E1", Title: "put latency vs message size", Series: []*stats.Series{s}}, nil
}

// runE2 — Fig. 2: get latency vs. message size.
func runE2(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))
	e, err := NewEnv(2, fabric.Model{}, core.Config{}, msg.Config{})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(128 * 1024)
	if err != nil {
		return nil, err
	}
	iters := scaled(400, scale)
	s := stats.NewSeries("Fig 2 (reconstructed): get latency (us) vs size (B)",
		"size", "photon-gwc", "baseline-pull")
	for _, size := range stats.Sizes(8, 64*1024) {
		g, err := GetLatencyGWC(e.Phs, descs, size, iters)
		if err != nil {
			return nil, err
		}
		b, err := GetLatencyBaseline(e.MsgJob, size, iters)
		if err != nil {
			return nil, err
		}
		s.Row(float64(size), us(g), us(b))
	}
	return &Report{ID: "E2", Title: "get latency vs message size", Series: []*stats.Series{s}}, nil
}

// runE3 — Fig. 3: streaming bandwidth vs. message size.
func runE3(scale float64) (*Report, error) {
	e, err := NewEnv(2, fabric.Model{}, core.Config{LedgerSlots: 256}, msg.Config{RecvSlots: 256})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(1 << 20)
	if err != nil {
		return nil, err
	}
	iters := scaled(200, scale)
	const window = 16
	s := stats.NewSeries("Fig 3 (reconstructed): streaming bandwidth (MiB/s) vs size (B)",
		"size", "photon-pwc", "baseline-sendrecv")
	for _, size := range stats.Sizes(1024, 1<<20) {
		p, err := StreamBandwidthPWC(e.Phs, descs, size, window, iters)
		if err != nil {
			return nil, err
		}
		b, err := StreamBandwidthBaseline(e.MsgJob, size, window, iters)
		if err != nil {
			return nil, err
		}
		s.Row(float64(size), p/(1<<20), b/(1<<20))
	}
	return &Report{ID: "E3", Title: "streaming bandwidth vs message size", Series: []*stats.Series{s}}, nil
}

// runE4 — Fig. 4: small-message rate vs. injector threads.
func runE4(scale float64) (*Report, error) {
	per := scaled(2000, scale)
	s := stats.NewSeries("Fig 4 (reconstructed): 8-byte message rate (Kmsg/s) vs injector threads",
		"threads", "photon-pwc", "baseline-sendrecv")
	for _, threads := range []int{1, 2, 4, 8} {
		e, err := NewEnv(2, fabric.Model{}, core.Config{LedgerSlots: 512}, msg.Config{RecvSlots: 512})
		if err != nil {
			return nil, err
		}
		p, err := MessageRatePWC(e.Phs, threads, per)
		if err != nil {
			e.Close()
			return nil, err
		}
		b, err := MessageRateBaseline(e.MsgJob, threads, per)
		e.Close()
		if err != nil {
			return nil, err
		}
		s.Row(float64(threads), p/1e3, b/1e3)
	}
	return &Report{ID: "E4", Title: "message rate vs injector threads", Series: []*stats.Series{s}}, nil
}

// runE5 — Fig. 5: completion-notification overhead: Photon's O(1)
// ledger probe against two-sided matching whose cost grows with the
// depth of the posted-receive queue (the asymmetry message-driven
// runtimes care about — they keep many outstanding receives).
func runE5(scale float64) (*Report, error) {
	iters := scaled(400, scale)
	warmProcess(iters / 2)
	t := stats.NewTable("Fig 5 (reconstructed): notification latency (us) vs posted-receive queue depth",
		"posted-receives", "photon-ledger-probe", "baseline-match", "baseline/photon")
	for _, clutter := range []int{0, 64, 256, 1024} {
		e, err := NewEnv(2, fabric.Model{}, core.Config{}, msg.Config{})
		if err != nil {
			return nil, err
		}
		_, descs, _, err := e.SharedBuffers(4096)
		if err != nil {
			e.Close()
			return nil, err
		}
		p, err := NotifyLatencyPWC(e.Phs, descs, iters)
		if err != nil {
			e.Close()
			return nil, err
		}
		b, err := PingPongBaselineCluttered(e.MsgJob, 1, iters, clutter)
		e.Close()
		if err != nil {
			return nil, err
		}
		t.Row(clutter, us(p), us(b), float64(b)/float64(p))
	}
	return &Report{ID: "E5", Title: "completion notification overhead", Tables: []*stats.Table{t}}, nil
}

// runE6 — Table 1: eager/rendezvous crossover.
func runE6(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))
	iters := scaled(300, scale)
	// Eager entries large enough to pack every probed size.
	eagerCfg := core.Config{EagerEntrySize: 64 * 1024, LedgerSlots: 32}
	rdzvCfg := core.Config{ForceRendezvous: true}
	eEager, err := NewPhotonOnly(2, fabric.Model{}, eagerCfg)
	if err != nil {
		return nil, err
	}
	defer eEager.Close()
	eRdzv, err := NewPhotonOnly(2, fabric.Model{}, rdzvCfg)
	if err != nil {
		return nil, err
	}
	defer eRdzv.Close()
	t := stats.NewTable("Table 1 (reconstructed): eager vs rendezvous latency (us) by size",
		"size", "eager-packed", "rendezvous", "winner")
	crossover := -1
	for _, size := range stats.Sizes(64, 32*1024) {
		le, err := PingPongSend(eEager.Phs, size, iters)
		if err != nil {
			return nil, err
		}
		lr, err := PingPongSend(eRdzv.Phs, size, iters)
		if err != nil {
			return nil, err
		}
		winner := "eager"
		if lr < le {
			winner = "rendezvous"
			if crossover < 0 {
				crossover = size
			}
		}
		t.Row(size, us(le), us(lr), winner)
	}
	if crossover > 0 {
		t.Row("crossover", "-", "-", fmt.Sprintf("~%dB", crossover))
	}
	return &Report{ID: "E6", Title: "eager/rendezvous crossover", Tables: []*stats.Table{t}}, nil
}

// runE7 — Table 2: ledger-size sensitivity under saturation, with the
// credit-return policy ablation.
func runE7(scale float64) (*Report, error) {
	iters := scaled(3000, scale)
	s := stats.NewSeries("Table 2 (reconstructed): saturated 8B send throughput (Kmsg/s) vs ledger slots",
		"slots", "batched-credits", "per-entry-credits")
	for _, slots := range []int{2, 4, 8, 16, 32, 64, 128} {
		batched, err := throughputWithConfig(core.Config{LedgerSlots: slots}, iters)
		if err != nil {
			return nil, fmt.Errorf("slots %d: %w", slots, err)
		}
		perEntry, err := throughputWithConfig(core.Config{LedgerSlots: slots, CreditBatch: 1}, iters)
		if err != nil {
			return nil, fmt.Errorf("slots %d batch1: %w", slots, err)
		}
		s.Row(float64(slots), batched/1e3, perEntry/1e3)
	}
	return &Report{ID: "E7", Title: "ledger size sensitivity", Series: []*stats.Series{s}}, nil
}

func throughputWithConfig(cfg core.Config, iters int) (float64, error) {
	e, err := NewPhotonOnly(2, fabric.Model{}, cfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	return SaturatedSendThroughput(e.Phs, 8, iters)
}

// runE8 — Fig. 6: GUPS scaling, photon atomics vs two-sided baseline.
func runE8(scale float64) (*Report, error) {
	updates := scaled(3000, scale)
	s := stats.NewSeries("Fig 6 (reconstructed): GUPS (Kupdates/s) vs ranks",
		"ranks", "photon-atomics", "baseline-reqack")
	for _, n := range []int{2, 4, 8} {
		cfg := apps.GUPSConfig{TableWordsPerRank: 1 << 12, UpdatesPerRank: updates, Seed: 42}
		e, err := NewEnv(n, fabric.Model{}, core.Config{}, msg.Config{})
		if err != nil {
			return nil, err
		}
		pres, err := apps.RunGUPSPhoton(e.Phs, cfg)
		if err != nil {
			e.Close()
			return nil, err
		}
		bres, err := apps.RunGUPSBaseline(e.MsgJob, cfg)
		e.Close()
		if err != nil {
			return nil, err
		}
		if pres.Checksum != bres.Checksum {
			return nil, fmt.Errorf("E8: checksum mismatch %d vs %d", pres.Checksum, bres.Checksum)
		}
		s.Row(float64(n), pres.UpdatesPerSec/1e3, bres.UpdatesPerSec/1e3)
	}
	return &Report{ID: "E8", Title: "GUPS scaling", Series: []*stats.Series{s}}, nil
}

// runE9 — Fig. 7: stencil iteration time vs grid size, 4 ranks.
func runE9(scale float64) (*Report, error) {
	iters := scaled(30, scale)
	s := stats.NewSeries("Fig 7 (reconstructed): stencil time per iteration (us) vs N (grid NxN, 4 ranks)",
		"N", "photon-onesided", "baseline-sendrecv")
	for _, n := range []int{64, 128, 256, 512} {
		cfg := apps.StencilConfig{N: n, Iterations: iters}
		// Both stacks get eager resources that fit one halo row.
		e, err := NewEnv(4, fabric.Model{}, core.Config{EagerEntrySize: 16 * 1024}, msg.Config{EagerLimit: 16 * 1024})
		if err != nil {
			return nil, err
		}
		pres, err := apps.RunStencilPhoton(e.Phs, cfg)
		if err != nil {
			e.Close()
			return nil, err
		}
		bres, err := apps.RunStencilBaseline(e.MsgJob, cfg)
		e.Close()
		if err != nil {
			return nil, err
		}
		if diff := pres.Checksum - bres.Checksum; diff > 1e-6 || diff < -1e-6 {
			return nil, fmt.Errorf("E9: checksum mismatch %v vs %v", pres.Checksum, bres.Checksum)
		}
		s.Row(float64(n), us(pres.PerIter), us(bres.PerIter))
	}
	return &Report{ID: "E9", Title: "stencil halo exchange", Series: []*stats.Series{s}}, nil
}

// runE10 — Fig. 8: BFS TEPS vs ranks on the parcel runtime.
func runE10(scale float64) (*Report, error) {
	vertices := 1 << 12
	if scale < 0.5 {
		vertices = 1 << 10
	}
	s := stats.NewSeries("Fig 8 (reconstructed): BFS MTEPS vs ranks (parcels over PWC)",
		"ranks", "photon-parcels")
	for _, n := range []int{2, 4, 8} {
		e, err := NewPhotonOnly(n, fabric.Model{}, core.Config{})
		if err != nil {
			return nil, err
		}
		locs := make([]*runtime.Locality, n)
		for r, ph := range e.Phs {
			l := runtime.NewLocality(ph, runtime.Config{Timeout: 60 * time.Second})
			if err := apps.RegisterBFSActions(l); err != nil {
				e.Close()
				return nil, err
			}
			l.Start()
			locs[r] = l
		}
		cfg := apps.BFSConfig{Vertices: vertices, Degree: 8, Seed: 13, Root: 0}
		res, dist, err := apps.RunBFSParcels(locs, cfg)
		for _, l := range locs {
			l.Shutdown()
		}
		e.Close()
		if err != nil {
			return nil, err
		}
		// Validate against the serial reference every time.
		ref := apps.BFSSerial(apps.GenGraph(cfg.Vertices, cfg.Degree, cfg.Seed), cfg.Root)
		for v := range ref {
			if dist[v] != ref[v] {
				return nil, fmt.Errorf("E10: dist[%d]=%d want %d", v, dist[v], ref[v])
			}
		}
		s.Row(float64(n), res.TEPS/1e6)
	}
	return &Report{ID: "E10", Title: "BFS over parcels", Series: []*stats.Series{s}}, nil
}

// runE11 — Table 3 plus the TCP data-path profile: backend latency
// comparison, a put-latency sweep over the socket backend, and the
// pipelined message rate / streaming bandwidth the coalescing writer
// and cumulative acks were built for.
func runE11(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))
	iters := scaled(200, scale)
	t := stats.NewTable("Table 3 (reconstructed): one-way send latency (us) by backend",
		"backend", "8B", "64KiB")
	// Simulated verbs.
	{
		e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
		if err != nil {
			return nil, err
		}
		small, err := PingPongSend(e.Phs, 8, iters)
		if err != nil {
			e.Close()
			return nil, err
		}
		big, err := PingPongSend(e.Phs, 64*1024, iters/4+1)
		e.Close()
		if err != nil {
			return nil, err
		}
		t.Row("vsim-verbs", us(small), us(big))
	}
	// TCP loopback: the Table 3 row, then the data-path profile on the
	// same job.
	phs, cleanup, err := NewTCPPhotons(2, core.Config{})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	small, err := PingPongSend(phs, 8, iters)
	if err != nil {
		return nil, err
	}
	big, err := PingPongSend(phs, 64*1024, iters/4+1)
	if err != nil {
		return nil, err
	}
	t.Row("tcp-sockets", us(small), us(big))

	_, descs, _, err := ShareBuffers(phs, 1<<20)
	if err != nil {
		return nil, err
	}
	lat := stats.NewSeries("TCP one-way put latency (us) vs size (B)", "size", "put")
	for size := 8; size <= 64<<10; size <<= 1 {
		n := iters
		if size >= 4<<10 {
			n = iters/4 + 1
		}
		d, err := PingPongPWC(phs, descs, size, n)
		if err != nil {
			return nil, err
		}
		lat.Row(float64(size), us(d))
	}
	rate := stats.NewSeries("TCP pipelined 8B put rate (Kmsg/s) vs window", "window", "rate")
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		bw, err := StreamBandwidthPWC(phs, descs, 8, w, scaled(4000, scale))
		if err != nil {
			return nil, err
		}
		rate.Row(float64(w), bw/8/1e3)
	}
	bwT := stats.NewTable("TCP 64KiB streaming bandwidth (MiB/s) vs window",
		"window", "MiB/s")
	for _, w := range []int{1, 16} {
		bw, err := StreamBandwidthPWC(phs, descs, 64<<10, w, scaled(400, scale))
		if err != nil {
			return nil, err
		}
		bwT.Row(w, bw/(1<<20))
	}
	return &Report{ID: "E11", Title: "backend comparison",
		Tables: []*stats.Table{t, bwT}, Series: []*stats.Series{lat, rate}}, nil
}

// runE12 — Fig. 9: remote atomics vs two-sided emulation.
func runE12(scale float64) (*Report, error) {
	iters := scaled(500, scale)
	e, err := NewEnv(2, fabric.Model{}, core.Config{}, msg.Config{})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(64)
	if err != nil {
		return nil, err
	}
	lat, err := AtomicLatency(e.Phs, descs, iters)
	if err != nil {
		return nil, err
	}
	blat, err := AtomicUpdateBaseline(e.MsgJob, iters)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 9a (reconstructed): remote update latency (us)",
		"method", "latency-us")
	t.Row("photon-fetch-add", us(lat))
	t.Row("baseline-req-ack", us(blat))

	s := stats.NewSeries("Fig 9b (reconstructed): pipelined fetch-add rate (Kops/s) vs window",
		"window", "photon-fetch-add")
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		r, err := AtomicRate(e.Phs, descs, w, iters)
		if err != nil {
			return nil, err
		}
		s.Row(float64(w), r/1e3)
	}
	return &Report{ID: "E12", Title: "remote atomics", Series: []*stats.Series{s}, Tables: []*stats.Table{t}}, nil
}

// runE13 — fault injection & recovery (no paper figure: the paper
// asserts fault tolerance qualitatively; this quantifies the
// reconstruction's machinery). Three measurements: how long a severed
// TCP link takes to carry traffic again as the heartbeat interval
// varies, sustained send goodput while a saboteur severs the link
// periodically, and the contrast case — frames lost above the
// transport, where no retransmit window exists and goodput collapses
// onto the OpTimeout sweep.
func runE13(scale float64) (*Report, error) {
	trials := scaled(8, scale)
	rec := stats.NewTable("E13a: recovery time after link sever vs heartbeat interval (TCP, 1ms backoff)",
		"heartbeat", "mean-recovery-ms", "max-recovery-ms")
	for _, hb := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		mean, max, err := SeverRecoveryTime(hb, trials)
		if err != nil {
			return nil, fmt.Errorf("E13a hb %v: %w", hb, err)
		}
		rec.Row(hb.String(), ms(mean), ms(max))
	}
	iters := scaled(4000, scale)
	good := stats.NewTable("E13b: sustained 8B send goodput (Kmsg/s) under periodic link severs (TCP)",
		"fault-injection", "Kmsg/s")
	for _, every := range []time.Duration{0, 100 * time.Millisecond, 25 * time.Millisecond} {
		rate, err := GoodputUnderSevers(iters, every)
		if err != nil {
			return nil, fmt.Errorf("E13b sever %v: %w", every, err)
		}
		label := "none"
		if every > 0 {
			label = "sever every " + every.String()
		}
		good.Row(label, rate/1e3)
	}
	loss := stats.NewTable("E13c: goodput when frames are lost above the transport (vsim + chaos, OpTimeout 150ms)",
		"drop-rate", "sends-ok", "goodput-Kmsg/s")
	sends := scaled(600, scale)
	for _, p := range []float64{0, 0.01} {
		ok, rate, err := LossyGoodput(sends, p)
		if err != nil {
			return nil, fmt.Errorf("E13c drop %.2f: %w", p, err)
		}
		loss.Row(fmt.Sprintf("%.0f%%", p*100), fmt.Sprintf("%d/%d", ok, sends), rate/1e3)
	}
	return &Report{ID: "E13", Title: "fault injection & recovery",
		Tables: []*stats.Table{rec, good, loss}}, nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
