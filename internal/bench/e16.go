package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"photon/internal/collectives"
	"photon/internal/core"
	"photon/internal/stats"
)

// runE16 — scalable N-peer collectives (no paper figure: the paper's
// middleware stops at point-to-point PWC; this measures the collectives
// engine built over it). The before/after axis compares the current
// schedule-based nonblocking engine against a faithful reimplementation
// of the repo's original blocking collectives (one send, one blocking
// wait per round — see refComm below), which the engine replaced.
//
// Legs:
//
//	a) barrier latency vs job size, to 128 vsim ranks
//	b) small (16-double) allreduce latency vs job size
//	c) allreduce goodput vs vector size at n=8, per algorithm
//	   (recursive doubling / ring / tree), showing the crossover
//	d) all-to-all aggregate message rate at n=16
//	e) shared-memory backend spot check at 12 ranks
//
// All vsim legs run under the 2us-latency delay model so schedule
// structure (how many serialized network latencies per operation)
// dominates, as on a real fabric. Absolute numbers on a single-vCPU CI
// host are inflated by scheduling noise; the blocking-vs-nonblocking
// ratio and the algorithm crossover are the stable signals.
func runE16(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))

	// Lean per-peer resources so a 128-rank mesh fits: ledgers are
	// per-peer-pair, and collectives' log-depth schedules touch only
	// O(log n) peers per rank anyway.
	lean := core.Config{LedgerSlots: 16, EagerEntrySize: 256, CompQueueDepth: 256, RdzvSlabSize: 64 << 10}

	sizes := []int{4, 8, 16, 32, 64, 128}
	iters := scaled(20, scale)
	if iters < 5 {
		iters = 5
	}
	const warm = 3

	// Latency legs run ref and engine interleaved, reps times each,
	// and report medians: a single-vCPU host schedules 128 rank
	// goroutines noisily, and interleaving keeps background drift from
	// biasing one column.
	const reps = 3
	barrier := stats.NewSeries("E16a: barrier latency (us) vs ranks, blocking seed vs nonblocking schedules (vsim, 2us links, median of 3)",
		"ranks", "blocking-us", "nonblocking-us")
	small := stats.NewSeries("E16b: 16-double allreduce latency (us) vs ranks, blocking seed vs nonblocking RD (vsim, 2us links, median of 3)",
		"ranks", "blocking-us", "nonblocking-us")
	for _, n := range sizes {
		var refBars, refArs, newBars, newArs []time.Duration
		for rep := 0; rep < reps; rep++ {
			refBar, refAr, err := refLatencies(n, lean, warm, iters)
			if err != nil {
				return nil, fmt.Errorf("E16ab ref n=%d: %w", n, err)
			}
			newBar, newAr, err := engineLatencies(n, lean, collectives.Config{Timeout: benchWait}, warm, iters)
			if err != nil {
				return nil, fmt.Errorf("E16ab engine n=%d: %w", n, err)
			}
			refBars, refArs = append(refBars, refBar), append(refArs, refAr)
			newBars, newArs = append(newBars, newBar), append(newArs, newAr)
		}
		barrier.Row(float64(n), us(median(refBars)), us(median(newBars)))
		small.Row(float64(n), us(median(refArs)), us(median(newArs)))
	}

	// Leg c: allreduce goodput per algorithm vs vector size at n=8.
	// Each algorithm column forces its schedule (with an arena ceiling
	// high enough that the force is honored); the ref column is the
	// blocking reduce+broadcast. Goodput is vector bytes over op
	// latency; recursive doubling is skipped at 1 MiB (its arena would
	// dwarf the working set, exactly why selection hands large vectors
	// to the ring).
	const bwRanks = 8
	bwLens := []int{256, 2048, 16384, 131072} // doubles: 2KB .. 1MB
	bwIters := scaled(8, scale)
	if bwIters < 3 {
		bwIters = 3
	}
	bw := stats.NewSeries("E16c: allreduce goodput (MB/s) vs vector bytes at n=8, per algorithm (vsim, 2us links, median of 3)",
		"bytes", "rd", "ring", "tree", "blocking-ref")
	algos := []string{"rd", "ring", "tree", "ref"}
	bwSamples := make(map[string][][]float64) // algo -> [len index][rep]
	for _, algo := range algos {
		bwSamples[algo] = make([][]float64, len(bwLens))
	}
	for rep := 0; rep < reps; rep++ {
		for _, algo := range algos {
			cfg := collectives.Config{Timeout: benchWait, ForceAllreduce: algo}
			for li, L := range bwLens {
				var d time.Duration
				var err error
				switch {
				case algo == "ref":
					d, err = refAllreduce(bwRanks, core.Config{}, L, warm, bwIters)
				case algo == "rd" && L == 131072:
					continue // arena would dwarf the working set
				default:
					if algo == "rd" {
						cfg.SmallAllreduceMax = 8 * L
					}
					d, err = engineAllreduce(bwRanks, core.Config{}, cfg, L, warm, bwIters)
				}
				if err != nil {
					return nil, fmt.Errorf("E16c %s L=%d: %w", algo, L, err)
				}
				bwSamples[algo][li] = append(bwSamples[algo][li], mbps(8*L, d))
			}
		}
	}
	for li, L := range bwLens {
		cell := func(algo string) float64 {
			if len(bwSamples[algo][li]) == 0 {
				return 0
			}
			return medianF(bwSamples[algo][li])
		}
		bw.Row(float64(8*L), cell("rd"), cell("ring"), cell("tree"), cell("ref"))
	}

	// Leg d: all-to-all aggregate message rate at n=16. The engine
	// posts all n-1 sends before reaping; the reference interleaves one
	// blocking send and one blocking receive per step.
	const a2aRanks = 16
	a2aIters := scaled(30, scale)
	if a2aIters < 5 {
		a2aIters = 5
	}
	var refRates, newRates []float64
	for rep := 0; rep < reps; rep++ {
		refRate, err := refAlltoallRate(a2aRanks, lean, warm, a2aIters)
		if err != nil {
			return nil, fmt.Errorf("E16d ref: %w", err)
		}
		newRate, err := engineAlltoallRate(a2aRanks, lean, warm, a2aIters)
		if err != nil {
			return nil, fmt.Errorf("E16d engine: %w", err)
		}
		refRates, newRates = append(refRates, refRate), append(newRates, newRate)
	}
	a2a := stats.NewTable("E16d: 32B all-to-all aggregate message rate at n=16 (vsim, 2us links, median of 3)",
		"engine", "Kmsg/s")
	a2a.Row("blocking seed", medianF(refRates)/1e3)
	a2a.Row("nonblocking schedules", medianF(newRates)/1e3)

	// Leg e: shared-memory backend spot check. No simulated link
	// delay here — this is the intra-host data path, where the
	// zero-alloc steady state matters most.
	shmTbl, err := e16Shm(warm, iters)
	if err != nil {
		return nil, fmt.Errorf("E16e: %w", err)
	}

	return &Report{ID: "E16", Title: "scalable N-peer collectives: schedules vs blocking seed",
		Series: []*stats.Series{barrier, small, bw},
		Tables: []*stats.Table{a2a, shmTbl}}, nil
}

func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianF(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// raceRanks runs f concurrently for every rank and returns the first
// error.
func raceRanks(n int, f func(r int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = f(r)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// timedRounds runs warm untimed rounds then iters timed rounds of round
// across all ranks, returning the mean per-round wall time.
func timedRounds(n, warm, iters int, round func(r int) error) (time.Duration, error) {
	if err := raceRanks(n, func(r int) error {
		for i := 0; i < warm; i++ {
			if err := round(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := raceRanks(n, func(r int) error {
		for i := 0; i < iters; i++ {
			if err := round(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	return time.Since(start) / time.Duration(iters), nil
}

func engineComms(phs []*core.Photon, cfg collectives.Config) []*collectives.Comm {
	comms := make([]*collectives.Comm, len(phs))
	var wg sync.WaitGroup
	for r := range phs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r] = collectives.NewWithConfig(phs[r], cfg)
		}(r)
	}
	wg.Wait()
	return comms
}

func engineLatencies(n int, coreCfg core.Config, cfg collectives.Config, warm, iters int) (bar, ar time.Duration, err error) {
	e, err := NewPhotonOnly(n, latModel, coreCfg)
	if err != nil {
		return 0, 0, err
	}
	defer e.Close()
	comms := engineComms(e.Phs, cfg)
	bar, err = timedRounds(n, warm, iters, func(r int) error { return comms[r].Barrier() })
	if err != nil {
		return 0, 0, err
	}
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 16)
	}
	ar, err = timedRounds(n, warm, iters, func(r int) error {
		return comms[r].AllreduceInPlace(vecs[r], collectives.OpSum)
	})
	return bar, ar, err
}

func engineAllreduce(n int, coreCfg core.Config, cfg collectives.Config, vecLen, warm, iters int) (time.Duration, error) {
	e, err := NewPhotonOnly(n, latModel, coreCfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	comms := engineComms(e.Phs, cfg)
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, vecLen)
	}
	return timedRounds(n, warm, iters, func(r int) error {
		return comms[r].AllreduceInPlace(vecs[r], collectives.OpSum)
	})
}

func engineAlltoallRate(n int, coreCfg core.Config, warm, iters int) (float64, error) {
	e, err := NewPhotonOnly(n, latModel, coreCfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	comms := engineComms(e.Phs, collectives.Config{Timeout: benchWait})
	blobs := make([][][]byte, n)
	for r := range blobs {
		blobs[r] = make([][]byte, n)
		for d := range blobs[r] {
			blobs[r][d] = make([]byte, 32)
		}
	}
	per, err := timedRounds(n, warm, iters, func(r int) error {
		_, err := comms[r].Alltoall(blobs[r])
		return err
	})
	if err != nil {
		return 0, err
	}
	return float64(n*(n-1)) / per.Seconds(), nil
}

// ---------------------------------------------------------------------
// refComm: the repo's original blocking collectives, preserved here as
// the before/after baseline. One blocking send and one blocking
// receive per round — every round pays a full serialized network
// latency, and every payload round-trips through fresh allocations.
// ---------------------------------------------------------------------

const refRIDBase = uint64(1) << 62 // distinct from the engine's 1<<63 space

const (
	refKindBarrier = iota + 1
	refKindBcast
	refKindReduce
	refKindAlltoall
)

type refComm struct {
	ph      *core.Photon
	rank    int
	size    int
	gen     uint64
	timeout time.Duration
}

func newRefComms(phs []*core.Photon) []*refComm {
	comms := make([]*refComm, len(phs))
	for r, ph := range phs {
		comms[r] = &refComm{ph: ph, rank: ph.Rank(), size: ph.Size(), timeout: benchWait}
	}
	return comms
}

func refRID(gen uint64, kind, round, src int) uint64 {
	return refRIDBase | gen<<20 | uint64(kind)<<16 | uint64(round)<<8 | uint64(src)
}

func (c *refComm) send(dst int, data []byte, r uint64) error {
	return c.ph.SendBlocking(dst, data, 0, r)
}

func (c *refComm) recv(r uint64) ([]byte, error) {
	comp, err := c.ph.WaitRemote(r, c.timeout)
	if err != nil {
		return nil, err
	}
	if comp.Err != nil {
		return nil, comp.Err
	}
	return comp.Data, nil
}

// barrier is the seed's blocking dissemination barrier.
func (c *refComm) barrier() error {
	c.gen++
	gen := c.gen
	for round, dist := 0, 1; dist < c.size; round, dist = round+1, dist*2 {
		to := (c.rank + dist) % c.size
		from := (c.rank - dist + c.size) % c.size
		if err := c.send(to, nil, refRID(gen, refKindBarrier, round, c.rank)); err != nil {
			return err
		}
		if _, err := c.recv(refRID(gen, refKindBarrier, round, from)); err != nil {
			return err
		}
	}
	c.ph.Flush()
	return nil
}

// allreduce is the seed's composition: blocking binomial reduce to
// rank 0, then blocking binomial broadcast of the encoded result.
func (c *refComm) allreduce(vec []float64) ([]float64, error) {
	c.gen++
	gen := c.gen
	acc := append([]float64(nil), vec...)
	for dist := 1; dist < c.size; dist *= 2 {
		if c.rank%(dist*2) == 0 {
			peer := c.rank + dist
			if peer < c.size {
				got, err := c.recv(refRID(gen, refKindReduce, 0, peer))
				if err != nil {
					return nil, err
				}
				other := refDecodeF64(got)
				for i := range acc {
					acc[i] += other[i]
				}
			}
		} else if c.rank%(dist*2) == dist {
			if err := c.send(c.rank-dist, refEncodeF64(acc), refRID(gen, refKindReduce, 0, c.rank)); err != nil {
				return nil, err
			}
			break
		}
	}
	var blob []byte
	if c.rank == 0 {
		blob = refEncodeF64(acc)
	} else {
		got, err := c.recv(refRID(gen, refKindBcast, 0, 0))
		if err != nil {
			return nil, err
		}
		blob = got
	}
	for dist := 1; dist < c.size; dist *= 2 {
		if c.rank < dist {
			child := c.rank + dist
			if child < c.size {
				if err := c.send(child, blob, refRID(gen, refKindBcast, 0, 0)); err != nil {
					return nil, err
				}
			}
		}
	}
	return refDecodeF64(blob), nil
}

// alltoall is the seed's pairwise exchange: one blocking send then one
// blocking receive per step.
func (c *refComm) alltoall(blobs [][]byte) ([][]byte, error) {
	c.gen++
	gen := c.gen
	out := make([][]byte, c.size)
	out[c.rank] = append([]byte(nil), blobs[c.rank]...)
	for step := 1; step < c.size; step++ {
		dst := (c.rank + step) % c.size
		src := (c.rank - step + c.size) % c.size
		if err := c.send(dst, blobs[dst], refRID(gen, refKindAlltoall, step, c.rank)); err != nil {
			return nil, err
		}
		got, err := c.recv(refRID(gen, refKindAlltoall, step, src))
		if err != nil {
			return nil, err
		}
		out[src] = append([]byte(nil), got...)
	}
	return out, nil
}

func refEncodeF64(vec []float64) []byte {
	b := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func refDecodeF64(b []byte) []float64 {
	vec := make([]float64, len(b)/8)
	for i := range vec {
		vec[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vec
}

func refLatencies(n int, coreCfg core.Config, warm, iters int) (bar, ar time.Duration, err error) {
	e, err := NewPhotonOnly(n, latModel, coreCfg)
	if err != nil {
		return 0, 0, err
	}
	defer e.Close()
	comms := newRefComms(e.Phs)
	bar, err = timedRounds(n, warm, iters, func(r int) error { return comms[r].barrier() })
	if err != nil {
		return 0, 0, err
	}
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 16)
	}
	ar, err = timedRounds(n, warm, iters, func(r int) error {
		_, err := comms[r].allreduce(vecs[r])
		return err
	})
	return bar, ar, err
}

func refAllreduce(n int, coreCfg core.Config, vecLen, warm, iters int) (time.Duration, error) {
	e, err := NewPhotonOnly(n, latModel, coreCfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	comms := newRefComms(e.Phs)
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, vecLen)
	}
	return timedRounds(n, warm, iters, func(r int) error {
		_, err := comms[r].allreduce(vecs[r])
		return err
	})
}

func refAlltoallRate(n int, coreCfg core.Config, warm, iters int) (float64, error) {
	e, err := NewPhotonOnly(n, latModel, coreCfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	comms := newRefComms(e.Phs)
	blobs := make([][][]byte, n)
	for r := range blobs {
		blobs[r] = make([][]byte, n)
		for d := range blobs[r] {
			blobs[r][d] = make([]byte, 32)
		}
	}
	per, err := timedRounds(n, warm, iters, func(r int) error {
		_, err := comms[r].alltoall(blobs[r])
		return err
	})
	if err != nil {
		return 0, err
	}
	return float64(n*(n-1)) / per.Seconds(), nil
}

// e16Shm spot-checks the engine on the shared-memory backend at a
// dozen ranks: barrier and small allreduce latency, blocking vs
// nonblocking.
func e16Shm(warm, iters int) (*stats.Table, error) {
	const n = 12
	refPhs, refCleanup, err := NewShmPhotons(n, core.Config{})
	if err != nil {
		return nil, err
	}
	refs := newRefComms(refPhs)
	refBar, err := timedRounds(n, warm, iters, func(r int) error { return refs[r].barrier() })
	if err != nil {
		refCleanup()
		return nil, err
	}
	refVecs := make([][]float64, n)
	for r := range refVecs {
		refVecs[r] = make([]float64, 16)
	}
	refAr, err := timedRounds(n, warm, iters, func(r int) error {
		_, err := refs[r].allreduce(refVecs[r])
		return err
	})
	refCleanup()
	if err != nil {
		return nil, err
	}

	phs, cleanup, err := NewShmPhotons(n, core.Config{})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	comms := engineComms(phs, collectives.Config{Timeout: benchWait})
	newBar, err := timedRounds(n, warm, iters, func(r int) error { return comms[r].Barrier() })
	if err != nil {
		return nil, err
	}
	vecs := make([][]float64, n)
	for r := range vecs {
		vecs[r] = make([]float64, 16)
	}
	newAr, err := timedRounds(n, warm, iters, func(r int) error {
		return comms[r].AllreduceInPlace(vecs[r], collectives.OpSum)
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("E16e: shm backend, 12 ranks: collective latency (us)",
		"operation", "blocking-us", "nonblocking-us")
	t.Row("barrier", us(refBar), us(newBar))
	t.Row("allreduce-16", us(refAr), us(newAr))
	return t, nil
}
