package bench

import "testing"

func TestRunAllExperimentsQuick(t *testing.T) {
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, 0.05)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(rep.Series)+len(rep.Tables) == 0 {
				t.Fatalf("%s produced no output", id)
			}
			out := rep.Render()
			if len(out) < 40 {
				t.Fatalf("%s render too short: %q", id, out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("E99", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
