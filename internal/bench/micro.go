package bench

import (
	"errors"
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"photon/internal/core"
	"photon/internal/mem"
	"photon/internal/msg"
)

const benchWait = 30 * time.Second

// drainLocal runs one progress round and pops every available local
// completion, decrementing *inflight; it idles if nothing moved.
func drainLocal(ph *core.Photon, inflight *int) error {
	ph.Progress()
	popped := false
	for {
		c, ok := ph.PopLocal()
		if !ok {
			break
		}
		if c.Err != nil {
			return c.Err
		}
		*inflight--
		popped = true
	}
	if !popped {
		idleYield(ph)
	}
	return nil
}

// idleYield parks a dry progress loop on the backend's activity
// channel when the transport supports it (socket backends), falling
// back to a scheduler yield (in-process fabrics). Spinning would
// starve the runtime's network poller on few-core hosts.
func idleYield(ph *core.Photon) {
	if ch := ph.BackendNotify(); ch != nil {
		select {
		case <-ch:
		case <-time.After(time.Millisecond):
		}
		return
	}
	gort.Gosched()
}

// warmupIters picks a short untimed warmup for a latency measurement.
func warmupIters(iters int) int {
	w := iters / 5
	if w > 50 {
		w = 50
	}
	if w < 4 {
		w = 4
	}
	return w
}

// PingPongPWC measures the average one-way latency of a direct
// put-with-completion of `size` bytes between ranks 0 and 1: rank 0
// puts into rank 1's registered buffer with a remote RID, rank 1
// harvests the completion and puts back. Half the round trip is
// reported.
func PingPongPWC(phs []*core.Photon, descs [][]mem.RemoteBuffer, size, iters int) (time.Duration, error) {
	if _, err := pingPongPWCRun(phs, descs, size, warmupIters(iters), 1<<40); err != nil {
		return 0, err
	}
	return pingPongPWCRun(phs, descs, size, iters, 0)
}

func pingPongPWCRun(phs []*core.Photon, descs [][]mem.RemoteBuffer, size, iters int, ridBase uint64) (time.Duration, error) {
	payload0 := make([]byte, size)
	payload1 := make([]byte, size)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	wg.Add(2)
	go func() { // rank 0: initiator
		defer wg.Done()
		ph := phs[0]
		for i := 1; i <= iters; i++ {
			rid := ridBase + uint64(i)
			if err := ph.PutBlocking(1, payload0, descs[0][1], 0, 0, rid); err != nil {
				errs[0] = err
				return
			}
			if _, err := ph.WaitRemote(rid, benchWait); err != nil {
				errs[0] = fmt.Errorf("pong %d: %w", i, err)
				return
			}
		}
	}()
	go func() { // rank 1: responder
		defer wg.Done()
		ph := phs[1]
		for i := 1; i <= iters; i++ {
			rid := ridBase + uint64(i)
			if _, err := ph.WaitRemote(rid, benchWait); err != nil {
				errs[1] = fmt.Errorf("ping %d: %w", i, err)
				return
			}
			if err := ph.PutBlocking(0, payload1, descs[1][0], 0, 0, rid); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed / time.Duration(2*iters), nil
}

// PingPongSend measures the one-way latency of the message path
// (packed eager below the threshold, rendezvous above it).
func PingPongSend(phs []*core.Photon, size, iters int) (time.Duration, error) {
	if _, err := pingPongSendRun(phs, size, warmupIters(iters), 1<<41); err != nil {
		return 0, err
	}
	return pingPongSendRun(phs, size, iters, 0)
}

func pingPongSendRun(phs []*core.Photon, size, iters int, ridBase uint64) (time.Duration, error) {
	payload := make([]byte, size)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		ph := phs[0]
		for i := 1; i <= iters; i++ {
			if err := ph.SendBlocking(1, payload, 0, ridBase+uint64(i)); err != nil {
				errs[0] = err
				return
			}
			if _, err := ph.WaitRemote(ridBase+uint64(i), benchWait); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		ph := phs[1]
		for i := 1; i <= iters; i++ {
			if _, err := ph.WaitRemote(ridBase+uint64(i), benchWait); err != nil {
				errs[1] = err
				return
			}
			if err := ph.SendBlocking(0, payload, 0, ridBase+uint64(i)); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed / time.Duration(2*iters), nil
}

// PingPongBaseline measures the two-sided baseline's one-way latency.
func PingPongBaseline(job *msg.Job, size, iters int) (time.Duration, error) {
	if _, err := pingPongBaselineRun(job, size, warmupIters(iters), 1<<42); err != nil {
		return 0, err
	}
	return pingPongBaselineRun(job, size, iters, 0)
}

func pingPongBaselineRun(job *msg.Job, size, iters int, tagBase uint64) (time.Duration, error) {
	payload := make([]byte, size)
	a, b := job.Endpoint(0), job.Endpoint(1)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := a.Send(1, tagBase+uint64(i), payload); err != nil {
				errs[0] = err
				return
			}
			if _, err := a.RecvBlocking(1, tagBase+uint64(i), nil, benchWait); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := b.RecvBlocking(0, tagBase+uint64(i), nil, benchWait); err != nil {
				errs[1] = err
				return
			}
			if _, err := b.Send(0, tagBase+uint64(i), payload); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed / time.Duration(2*iters), nil
}

// PingPongBaselineCluttered is PingPongBaseline with `clutter`
// never-matching receives pre-posted at each endpoint: every arrival
// must scan past them in the matching engine, reproducing the
// deep-posted-queue behaviour of real two-sided stacks. Photon's
// ledger probe has no analogous cost — that asymmetry is the point of
// the notification-overhead comparison.
func PingPongBaselineCluttered(job *msg.Job, size, iters, clutter int) (time.Duration, error) {
	for _, ep := range []*msg.Endpoint{job.Endpoint(0), job.Endpoint(1)} {
		for i := 0; i < clutter; i++ {
			if _, err := ep.Recv(-1, uint64(1<<40)+uint64(i), nil); err != nil {
				return 0, err
			}
		}
	}
	return PingPongBaseline(job, size, iters)
}

// GetLatencyGWC measures the average latency of a one-sided get of
// `size` bytes (rank 0 reads rank 1's buffer; completion local).
func GetLatencyGWC(phs []*core.Photon, descs [][]mem.RemoteBuffer, size, iters int) (time.Duration, error) {
	dst := make([]byte, size)
	ph := phs[0]
	start := time.Now()
	for i := 1; i <= iters; i++ {
		if err := ph.GetWithCompletion(1, dst, descs[0][1], 0, uint64(i), 0); err != nil {
			return 0, err
		}
		if _, err := ph.WaitLocal(uint64(i), benchWait); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// GetLatencyBaseline measures the two-sided pull: rank 0 sends a
// request, rank 1 replies with the data — the software path a runtime
// without RMA must use to read remote memory.
func GetLatencyBaseline(job *msg.Job, size, iters int) (time.Duration, error) {
	data := make([]byte, size)
	a, b := job.Endpoint(0), job.Endpoint(1)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	const reqTag, repTag = 1 << 20, 1<<20 + 1
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := a.Send(1, reqTag, nil); err != nil {
				errs[0] = err
				return
			}
			if _, err := a.RecvBlocking(1, repTag, nil, benchWait); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := b.RecvBlocking(0, reqTag, nil, benchWait); err != nil {
				errs[1] = err
				return
			}
			if _, err := b.Send(0, repTag, data); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed / time.Duration(iters), nil
}

// StreamBandwidthPWC measures put bandwidth: rank 0 streams `iters`
// puts of `size` bytes with `window` outstanding, rank 1 consumes
// completions. Returns bytes per second.
func StreamBandwidthPWC(phs []*core.Photon, descs [][]mem.RemoteBuffer, size, window, iters int) (float64, error) {
	payload := make([]byte, size)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	wg.Add(2)
	go func() { // initiator with window
		defer wg.Done()
		ph := phs[0]
		inflight := 0
		for i := 1; i <= iters; i++ {
			if err := ph.PutBlocking(1, payload, descs[0][1], 0, uint64(i), uint64(i)); err != nil {
				errs[0] = err
				return
			}
			inflight++
			for inflight >= window {
				if err := drainLocal(ph, &inflight); err != nil {
					errs[0] = err
					return
				}
			}
		}
		for inflight > 0 {
			if err := drainLocal(ph, &inflight); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() { // target drains remote completions
		defer wg.Done()
		ph := phs[1]
		got := 0
		deadline := time.Now().Add(benchWait)
		for got < iters {
			ph.Progress()
			popped := false
			for {
				if _, ok := ph.PopRemote(); !ok {
					break
				}
				got++
				popped = true
			}
			if popped {
				continue
			}
			idleYield(ph)
			if time.Now().After(deadline) {
				errs[1] = fmt.Errorf("bandwidth drain stalled at %d/%d", got, iters)
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(size) * float64(iters) / elapsed.Seconds(), nil
}

// StreamBandwidthBaseline is the two-sided counterpart.
func StreamBandwidthBaseline(job *msg.Job, size, window, iters int) (float64, error) {
	payload := make([]byte, size)
	a, b := job.Endpoint(0), job.Endpoint(1)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		var pending []*msg.SendHandle
		for i := 0; i < iters; i++ {
			h, err := a.Send(1, 1, payload)
			if err != nil {
				errs[0] = err
				return
			}
			pending = append(pending, h)
			if len(pending) >= window {
				if err := pending[0].Wait(benchWait); err != nil {
					errs[0] = err
					return
				}
				pending = pending[1:]
			}
		}
		for _, h := range pending {
			if err := h.Wait(benchWait); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := b.RecvBlocking(0, 1, nil, benchWait); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(size) * float64(iters) / elapsed.Seconds(), nil
}

// MessageRatePWC measures small-message injection rate: `threads`
// goroutines on rank 0 issue 8-byte packed sends to rank 1, which
// drains. Returns messages per second.
func MessageRatePWC(phs []*core.Photon, threads, perThread int) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, threads+1)
	total := threads * perThread
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ph := phs[0]
			payload := make([]byte, 8)
			for i := 0; i < perThread; i++ {
				if err := ph.SendBlocking(1, payload, 0, uint64(t*perThread+i+1)); err != nil {
					errs[t] = err
					return
				}
			}
		}(t)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ph := phs[1]
		got := 0
		deadline := time.Now().Add(benchWait)
		for got < total {
			ph.Progress()
			popped := false
			for {
				if _, ok := ph.PopRemote(); !ok {
					break
				}
				got++
				popped = true
			}
			if popped {
				continue
			}
			gort.Gosched()
			if time.Now().After(deadline) {
				errs[threads] = fmt.Errorf("rate drain stalled at %d/%d", got, total)
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(total) / elapsed.Seconds(), nil
}

// MessageRateBaseline is the two-sided counterpart of MessageRatePWC.
func MessageRateBaseline(job *msg.Job, threads, perThread int) (float64, error) {
	a, b := job.Endpoint(0), job.Endpoint(1)
	var wg sync.WaitGroup
	errs := make([]error, threads+1)
	total := threads * perThread
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			payload := make([]byte, 8)
			for i := 0; i < perThread; i++ {
				if _, err := a.Send(1, 1, payload); err != nil {
					errs[t] = err
					return
				}
				if i%64 == 0 {
					a.Progress()
				}
			}
		}(t)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := b.RecvBlocking(-1, 1, nil, benchWait); err != nil {
				errs[threads] = err
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(total) / elapsed.Seconds(), nil
}

// NotifyLatencyPWC measures pure completion-notification latency: a
// zero-byte put whose only effect is the remote RID, round-tripped.
func NotifyLatencyPWC(phs []*core.Photon, descs [][]mem.RemoteBuffer, iters int) (time.Duration, error) {
	return PingPongPWC(phs, descs, 0, iters)
}

// AtomicLatency measures remote fetch-add round-trip latency.
func AtomicLatency(phs []*core.Photon, descs [][]mem.RemoteBuffer, iters int) (time.Duration, error) {
	ph := phs[0]
	start := time.Now()
	for i := 1; i <= iters; i++ {
		if err := ph.FetchAdd(1, descs[0][1], 0, 1, uint64(i)); err != nil {
			return 0, err
		}
		if _, err := ph.WaitLocal(uint64(i), benchWait); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// AtomicRate measures pipelined fetch-add throughput with a window.
func AtomicRate(phs []*core.Photon, descs [][]mem.RemoteBuffer, window, iters int) (float64, error) {
	ph := phs[0]
	inflight := 0
	start := time.Now()
	for i := 1; i <= iters; i++ {
		for {
			err := ph.FetchAdd(1, descs[0][1], 0, 1, uint64(i))
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrWouldBlock) {
				return 0, err
			}
			ph.Progress()
		}
		inflight++
		for inflight >= window {
			if err := drainLocal(ph, &inflight); err != nil {
				return 0, err
			}
		}
	}
	for inflight > 0 {
		if err := drainLocal(ph, &inflight); err != nil {
			return 0, err
		}
	}
	return float64(iters) / time.Since(start).Seconds(), nil
}

// AtomicUpdateBaseline measures the two-sided emulation of a remote
// fetch-add: request message, owner applies, ack with the old value
// (the GUPS server loop distilled to a single pair).
func AtomicUpdateBaseline(job *msg.Job, iters int) (time.Duration, error) {
	a, b := job.Endpoint(0), job.Endpoint(1)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	const reqTag, ackTag = 1 << 21, 1<<21 + 1
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := a.Send(1, reqTag, make([]byte, 8)); err != nil {
				errs[0] = err
				return
			}
			if _, err := a.RecvBlocking(1, ackTag, nil, benchWait); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		var counter uint64
		for i := 0; i < iters; i++ {
			if _, err := b.RecvBlocking(0, reqTag, nil, benchWait); err != nil {
				errs[1] = err
				return
			}
			counter++
			if _, err := b.Send(0, ackTag, make([]byte, 8)); err != nil {
				errs[1] = err
				return
			}
		}
		_ = counter
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed / time.Duration(iters), nil
}

// SaturatedSendThroughput measures back-to-back packed send throughput
// between ranks 0 and 1 (the quantity the ledger-size sweep plots).
func SaturatedSendThroughput(phs []*core.Photon, size, iters int) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, 2)
	payload := make([]byte, size)
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		ph := phs[0]
		for i := 1; i <= iters; i++ {
			if err := ph.SendBlocking(1, payload, 0, uint64(i)); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		ph := phs[1]
		got := 0
		deadline := time.Now().Add(benchWait)
		for got < iters {
			ph.Progress()
			popped := false
			for {
				if _, ok := ph.PopRemote(); !ok {
					break
				}
				got++
				popped = true
			}
			if popped {
				continue
			}
			gort.Gosched()
			if time.Now().After(deadline) {
				errs[1] = fmt.Errorf("throughput drain stalled at %d/%d", got, iters)
				return
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(iters) / elapsed.Seconds(), nil
}
