package bench

import (
	"fmt"
	"strings"
	"time"

	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/metrics"
	"photon/internal/stats"
	"photon/internal/trace"
)

// runE15 — cluster observability cost and correctness (no paper
// figure: the paper's middleware predates the tracing plane; this
// quantifies the reconstruction's instrumentation). Three legs:
// the fully-observed 8B put path against the dark one on the shm and
// tcp transports (the <5% overhead budget), the merged cross-peer
// trace pipeline exercised over a 4-rank vsim job, and the metrics
// collector's scrape cost as the cluster grows.
func runE15(scale float64) (*Report, error) {
	warmProcess(scaled(100, scale))
	iters := scaled(5000, scale)

	// Leg A: tracing overhead. One-way 8B put latency under three
	// configs: dark (no sinks), sampled (trace ring + metrics with
	// TraceSampleShift 6, the deployment posture — 1 in 64 ops pays
	// for ring writes), and fully observed (every op sampled, the
	// debugging posture). The <5% budget is judged on the sampled
	// column; full sampling buys complete flows at a cost this table
	// reports honestly. Each cell is the median of reps ping-pong
	// runs, so a single noisy run cannot fake (or mask) a regression.
	const reps = 9
	// The three configs run interleaved — boot all of them, then
	// round-robin the reps — so slow drift in the host's background
	// load (the dominant noise source on a shared box) lands on every
	// column instead of biasing whichever config ran last.
	type cell struct {
		cfg   core.Config
		phs   []*core.Photon
		close func()
		descs [][]mem.RemoteBuffer
		ds    []time.Duration
	}
	measure := func(mk func(core.Config) ([]*core.Photon, func(), error), cfgs []core.Config) ([]time.Duration, error) {
		cells := make([]*cell, len(cfgs))
		defer func() {
			for _, c := range cells {
				if c != nil {
					c.close()
				}
			}
		}()
		for i, cfg := range cfgs {
			phs, cleanup, err := mk(cfg)
			if err != nil {
				return nil, err
			}
			cells[i] = &cell{cfg: cfg, phs: phs, close: cleanup}
			_, descs, _, err := ShareBuffers(phs, 1<<16)
			if err != nil {
				return nil, err
			}
			cells[i].descs = descs
			if _, err := PingPongPWC(phs, descs, 8, iters/10); err != nil { // warm
				return nil, err
			}
		}
		for r := 0; r < reps; r++ {
			for _, c := range cells {
				d, err := PingPongPWC(c.phs, c.descs, 8, iters)
				if err != nil {
					return nil, err
				}
				c.ds = append(c.ds, d)
			}
		}
		meds := make([]time.Duration, len(cells))
		for i, c := range cells {
			ds := c.ds
			for a := 1; a < len(ds); a++ {
				for j := a; j > 0 && ds[j] < ds[j-1]; j-- {
					ds[j], ds[j-1] = ds[j-1], ds[j]
				}
			}
			meds[i] = ds[len(ds)/2]
		}
		return meds, nil
	}
	observedCfg := func(shift int) core.Config {
		ring := trace.NewRing(1 << 16)
		ring.Enable(true)
		return core.Config{Trace: ring, Metrics: true, TraceSampleShift: shift}
	}
	overhead := stats.NewTable("E15a: 8B put one-way latency (us), dark vs sampled (1/64) vs fully observed (median of 9 runs)",
		"backend", "dark", "sampled", "sampled-%", "full", "full-%")
	backends := []struct {
		name string
		mk   func(core.Config) ([]*core.Photon, func(), error)
	}{
		{"shm-rings", func(cfg core.Config) ([]*core.Photon, func(), error) { return NewShmPhotons(2, cfg) }},
		{"tcp-sockets", func(cfg core.Config) ([]*core.Photon, func(), error) { return NewTCPPhotons(2, cfg) }},
	}
	for _, b := range backends {
		if BackendOverride != "" && BackendOverride != strings.SplitN(b.name, "-", 2)[0] {
			continue
		}
		meds, err := measure(b.mk, []core.Config{{}, observedCfg(6), observedCfg(0)})
		if err != nil {
			return nil, fmt.Errorf("E15a %s: %w", b.name, err)
		}
		dark, sampled, full := meds[0], meds[1], meds[2]
		pct := func(obs time.Duration) float64 {
			return 100 * (float64(obs) - float64(dark)) / float64(dark)
		}
		overhead.Row(b.name, us(dark), us(sampled), pct(sampled), us(full), pct(full))
	}

	// Leg B: merged cross-peer trace correctness. A 4-rank vsim job
	// records into one ring (every event carries its rank); the
	// snapshot is split into per-rank dumps and stitched. Every put is
	// harvested remote-side first, so each post → link → complete
	// chain resolves into a full flow.
	ring := trace.NewRing(1 << 14)
	ring.Enable(true)
	e, err := NewPhotonOnly(4, fabric.Model{}, core.Config{Trace: ring})
	if err != nil {
		return nil, err
	}
	_, descs, _, err := ShareBuffers(e.Phs, 1<<12)
	if err != nil {
		e.Close()
		return nil, err
	}
	puts := scaled(64, scale)
	for i := 0; i < puts; i++ {
		src := i % 4
		dst := (src + 1) % 4
		rid := uint64(1 + i)
		if err := e.Phs[src].PutWithCompletion(dst, []byte{byte(i)}, descs[src][dst], uint64(i%16), rid, rid+1<<20); err != nil {
			e.Close()
			return nil, fmt.Errorf("E15b put %d: %w", i, err)
		}
		if _, err := e.Phs[dst].WaitRemote(rid+1<<20, benchWait); err != nil {
			e.Close()
			return nil, fmt.Errorf("E15b remote %d: %w", i, err)
		}
		if _, err := e.Phs[src].WaitLocal(rid, benchWait); err != nil {
			e.Close()
			return nil, fmt.Errorf("E15b local %d: %w", i, err)
		}
	}
	snap := ring.Snapshot()
	e.Close()
	byRank := map[int][]trace.Event{}
	for _, ev := range snap {
		byRank[ev.Rank] = append(byRank[ev.Rank], ev)
	}
	var dumps []trace.PeerDump
	for r := 0; r < 4; r++ {
		dumps = append(dumps, trace.PeerDump{Rank: r, OffsetNS: 0, Events: byRank[r]})
	}
	var out strings.Builder
	mergeStart := time.Now()
	if err := trace.WriteChromeJSONMerged(&out, dumps); err != nil {
		return nil, err
	}
	mergeD := time.Since(mergeStart)
	got := out.String()
	begins := strings.Count(got, `"ph": "s"`)
	steps := strings.Count(got, `"ph": "t"`)
	if steps == 0 {
		return nil, fmt.Errorf("E15b: no resolved cross-peer flows in merged trace (%d begins)", begins)
	}
	merged := stats.NewTable("E15b: merged cross-peer trace, 4-rank vsim ring traffic",
		"metric", "value")
	merged.Row("puts traced", puts)
	merged.Row("ring events merged", len(snap))
	merged.Row("flow begins", begins)
	merged.Row("flows fully resolved", steps)
	merged.Row("merge+export (ms)", ms(mergeD))
	merged.Row("json bytes", out.Len())

	// Leg C: collector scrape cost vs cluster size, in-process
	// sources (the HTTP hop is measured by the metrics package's own
	// tests; here the question is how merge cost grows with N).
	scrape := stats.NewSeries("E15c: metrics collector scrape+merge time (us) vs peers",
		"peers", "collect-us")
	for _, n := range []int{2, 4, 8} {
		env, err := NewPhotonOnly(n, fabric.Model{}, core.Config{Metrics: true})
		if err != nil {
			return nil, err
		}
		_, d2, _, err := ShareBuffers(env.Phs, 1<<12)
		if err != nil {
			env.Close()
			return nil, err
		}
		for i := 0; i < scaled(64, scale); i++ {
			src := i % n
			dst := (src + 1) % n
			rid := uint64(1 + i)
			if err := env.Phs[src].PutBlocking(dst, []byte{1}, d2[src][dst], 0, rid, rid+1<<20); err != nil {
				env.Close()
				return nil, err
			}
			if _, err := env.Phs[src].WaitLocal(rid, benchWait); err != nil {
				env.Close()
				return nil, err
			}
		}
		sources := make([]metrics.PeerSource, n)
		for r := 0; r < n; r++ {
			p := env.Phs[r]
			sources[r] = metrics.PeerSource{Rank: r, Snap: func() *metrics.Snapshot { return p.Metrics() }}
		}
		col := metrics.NewCollector(sources)
		col.Collect() // warm
		const collects = 20
		start := time.Now()
		for i := 0; i < collects; i++ {
			cs := col.Collect()
			reachable := 0
			for _, pm := range cs.Peers {
				if pm.Err == nil && pm.Snap != nil {
					reachable++
				}
			}
			if reachable != n {
				env.Close()
				return nil, fmt.Errorf("E15c: %d/%d peers reachable", reachable, n)
			}
		}
		per := time.Since(start) / collects
		env.Close()
		scrape.Row(float64(n), us(per))
	}

	return &Report{ID: "E15", Title: "cluster observability: tracing overhead, merged traces, collector cost",
		Tables: []*stats.Table{overhead, merged}, Series: []*stats.Series{scrape}}, nil
}
