package bench

import (
	"photon/internal/core"
	"photon/internal/fabric"
	gort "runtime"
	"testing"
	"time"
)

func TestSegmentPhases(t *testing.T) {
	e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(4096)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, k)
		e.Phs[1].WaitRemote(k, time.Second)
	}
	const iters = 3000
	var postT, discT time.Duration
	var spins int
	for k := uint64(101); k < 101+iters; k++ {
		t0 := time.Now()
		if err := e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, k); err != nil {
			t.Fatal(err)
		}
		t1 := time.Now()
		for {
			spins++
			e.Phs[1].Progress()
			if c, ok := e.Phs[1].PopRemote(); ok {
				if c.RID != k {
					t.Fatalf("rid")
				}
				break
			}
			gort.Gosched()
		}
		t2 := time.Now()
		postT += t1.Sub(t0)
		discT += t2.Sub(t1)
	}
	t.Logf("post: %v  discover: %v  spins/op: %.1f", postT/iters, discT/iters, float64(spins)/iters)
}
