package bench

import (
	"photon/internal/core"
	"photon/internal/fabric"
	"testing"
	"time"
)

func TestMicroCosts(t *testing.T) {
	e, err := NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, descs, _, err := e.SharedBuffers(4096)
	if err != nil {
		t.Fatal(err)
	}

	// Idle Progress cost.
	const n = 200000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		e.Phs[1].Progress()
	}
	t.Logf("idle Progress: %v", time.Since(t0)/n)

	// PutBlocking post cost (fire many unnotified, unsignaled direct puts).
	t0 = time.Now()
	const m = 20000
	for i := 0; i < m; i++ {
		if err := e.Phs[0].PutBlocking(1, []byte{1}, descs[0][1], 0, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("PutBlocking post (direct, no rids): %v", time.Since(t0)/m)
}
