package bench

import (
	"encoding/binary"
	gort "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/fabric"
	"photon/internal/nicsim"
	"photon/internal/verbs"
)

// Transport-calibration tests: they measure the floor latency of the
// simulated transport itself (no middleware above it), the number every
// higher-level latency in EXPERIMENTS.md should be read against.

var spinCost = 0 // iterations of busy work per spin (set by variants)

// spinSink keeps spinWork's loop from being optimized away; atomic
// because both ping-pong sides spin concurrently.
var spinSink atomic.Int64

// spinWork burns a configurable amount of CPU per spin iteration, used
// to verify that receiver-side spin cost does not distort the floor.

func spinWork(n int) {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	spinSink.Store(int64(s))
}

func TestRawVerbsLatency(t *testing.T) {
	fab := fabric.New(2, fabric.Model{})
	defer fab.Close()
	devA, _ := verbs.Open(fab, 0, nicsim.Config{})
	devB, _ := verbs.Open(fab, 1, nicsim.Config{})
	defer devA.Close()
	defer devB.Close()
	cqA, cqB := devA.CreateCQ(1024), devB.CreateCQ(1024)
	qpA, _ := devA.CreateQP(cqA, devA.CreateCQ(8))
	qpB, _ := devB.CreateQP(cqB, devB.CreateCQ(8))
	verbs.ConnectPair(qpA, qpB, 0, 1)
	bufA := make([]byte, 64)
	bufB := make([]byte, 64)
	mrA, _ := devA.RegMR(bufA, verbs.AccessAll)
	mrB, _ := devB.RegMR(bufB, verbs.AccessAll)

	const iters = 3000
	_ = spinCost
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(2)
	go func() { // A: writes seq i to B, waits for echo
		defer wg.Done()
		lk := mrA.RLocker()
		for i := uint64(1); i <= iters; i++ {
			w := make([]byte, 8)
			binary.LittleEndian.PutUint64(w, i)
			qpA.PostSend(verbs.SendWR{Op: verbs.OpRDMAWrite, Local: w, RemoteAddr: mrB.Base(), RKey: mrB.RKey()})
			for {
				lk.Lock()
				v := binary.LittleEndian.Uint64(bufA)
				lk.Unlock()
				if v == i {
					break
				}
				spinWork(spinCost)
				gort.Gosched()
			}
		}
	}()
	go func() { // B: echoes
		defer wg.Done()
		lk := mrB.RLocker()
		for i := uint64(1); i <= iters; i++ {
			for {
				lk.Lock()
				v := binary.LittleEndian.Uint64(bufB)
				lk.Unlock()
				if v == i {
					break
				}
				spinWork(spinCost)
				gort.Gosched()
			}
			w := make([]byte, 8)
			binary.LittleEndian.PutUint64(w, i)
			qpB.PostSend(verbs.SendWR{Op: verbs.OpRDMAWrite, Local: w, RemoteAddr: mrA.Base(), RKey: mrA.RKey()})
		}
	}()
	wg.Wait()
	t.Logf("raw verbs one-way (spinCost=%d): %v", spinCost, time.Since(start)/(2*iters))
}

func TestRawVerbsLatencySlowSpin(t *testing.T) {
	spinCost = 400 // ~350ns of busy work per spin iteration
	defer func() { spinCost = 0 }()
	TestRawVerbsLatency(t)
}
