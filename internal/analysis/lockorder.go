package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the package's declared mutex acquisition order and
// the no-blocking-under-lock rule, the invariants behind the engine's
// shard0→owner fault-plane locking and every transport's agent/poster
// split. Runtime detection of either bug is miserable: an inverted
// acquisition deadlocks only under the exact interleaving that crosses
// the two paths, and a blocking wait under a lock shows up as tail
// latency, not a failure.
//
// Every sync.Mutex, sync.RWMutex, and sync.Locker declared as a struct
// field or package-level variable must be classified with a
//
//	//photon:lock <name> <rank>
//
// directive on (or immediately above) its declaration line; an
// unclassified declaration is itself reported. The rank declares the
// package's partial acquisition order: a lock may only be acquired
// while holding locks of strictly lower rank. Within each function the
// analyzer tracks the held lock set syntactically — Lock/RLock acquire,
// Unlock/RUnlock release, the `if !mu.TryLock() { return }` and
// `if mu.TryLock() { ... }` guard idioms acquire on the held branch,
// and loop bodies are walked twice so a net acquisition is checked
// against the next iteration's. The held set then propagates through
// the intra-package call graph (see callgraph.go): each function's
// transitive summary records which classes it may acquire and whether
// it may block, and every call made while holding a lock is checked
// against the callee's summary.
//
// Reported while any classified lock is held:
//
//   - acquiring (directly or via a callee) a class of lower rank —
//     the declared order inverted;
//   - acquiring a class of equal rank — same-rank nesting (two shard
//     engines, two peers) is only legal under a documented convention
//     such as ascending-index order, so it must carry an explicit
//     //photon:allow justification;
//   - blocking: channel send/receive, select without a default,
//     sync.WaitGroup.Wait, sync.Cond.Wait, or time.Sleep, directly or
//     via a callee. Wakeups (non-blocking sends in a select with
//     default) pass.
//
// Calls through interfaces and function values are opaque, local
// mutex variables are untracked, and function literal bodies run at
// invocation time, not where they are written — all three are outside
// the summary, by design: photonvet is a vet, and the classified
// struct-field locks are where the cross-subsystem order lives.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforces //photon:lock rank order and no blocking waits under classified locks",
	Run:  runLockOrder,
}

// lockClass is one declared lock class.
type lockClass struct {
	name string
	rank int
}

// heldLock is one acquisition on the walker's held stack.
type heldLock struct {
	cls *lockClass
	pos token.Pos
}

// lockSummary is a function's transitive lock behavior.
type lockSummary struct {
	acquires map[*lockClass]bool
	blocks   bool
}

// lockOrderState carries one package's lockorder run.
type lockOrderState struct {
	pass      *Pass
	graph     *callGraph
	classes   map[string]*lockClass
	byObj     map[types.Object]*lockClass
	summaries map[*types.Func]*lockSummary
	reported  map[token.Pos]map[string]bool
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrderState{
		pass:      pass,
		classes:   map[string]*lockClass{},
		byObj:     map[types.Object]*lockClass{},
		summaries: map[*types.Func]*lockSummary{},
		reported:  map[token.Pos]map[string]bool{},
	}
	lo.collectClasses()
	lo.graph = buildCallGraph(pass)
	lo.buildSummaries()
	for _, node := range lo.graph.nodes {
		w := &lockWalker{lo: lo}
		w.stmts(node.decl.Body.List, nil)
	}
	return nil
}

// report deduplicates (the two-pass loop walk revisits statements) and
// emits one diagnostic.
func (lo *lockOrderState) report(pos token.Pos, format string, args ...any) {
	msg := sprintf(format, args...)
	if lo.reported[pos][msg] {
		return
	}
	if lo.reported[pos] == nil {
		lo.reported[pos] = map[string]bool{}
	}
	lo.reported[pos][msg] = true
	lo.pass.Reportf(pos, "%s", msg)
}

// ---------------------------------------------------------------------
// Class collection
// ---------------------------------------------------------------------

// lockableType reports whether t declares a classifiable lock: a sync
// Mutex/RWMutex/Locker, possibly behind a pointer, slice, or array.
func lockableType(t types.Type) (kind string, ok bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return "sync." + obj.Name(), true
	}
	return "", false
}

// classFor interns the lock class declared by l.
func (lo *lockOrderState) classFor(l *lockDecl) *lockClass {
	if c, ok := lo.classes[l.name]; ok {
		return c
	}
	c := &lockClass{name: l.name, rank: l.rank}
	lo.classes[l.name] = c
	return c
}

// collectClasses maps every classifiable declaration to its
// //photon:lock class, reporting unclassified declarations.
func (lo *lockOrderState) collectClasses() {
	pass := lo.pass
	bind := func(names []*ast.Ident, pos token.Pos, kind string) {
		p := pass.Fset.Position(pos)
		decl := pass.Directives.LockAt(p.Filename, p.Line)
		if decl == nil {
			lo.report(pos, "%s %s is not classified; add //photon:lock <name> <rank> to declare its acquisition rank", kind, names[0].Name)
			return
		}
		cls := lo.classFor(decl)
		for _, name := range names {
			if obj := pass.ObjectOf(name); obj != nil {
				lo.byObj[obj] = cls
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				return false // local mutexes are untracked
			case *ast.StructType:
				for _, field := range n.Fields.List {
					t := pass.TypeOf(field.Type)
					if t == nil || len(field.Names) == 0 {
						continue
					}
					if kind, ok := lockableType(t); ok {
						bind(field.Names, field.Pos(), kind+" field")
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) == 0 {
						continue
					}
					obj := pass.ObjectOf(vs.Names[0])
					if obj == nil || !isPackageLevel(obj) {
						continue
					}
					if kind, ok := lockableType(obj.Type()); ok {
						bind(vs.Names, vs.Pos(), kind+" variable")
					}
				}
			}
			return true
		})
	}
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// ---------------------------------------------------------------------
// Acquisition / release / blocking classification
// ---------------------------------------------------------------------

// lockMethod classifies call as an operation on a classified lock.
// verb is "Lock", "RLock", "TryLock", "TryRLock", "Unlock", or
// "RUnlock"; cls is nil for unclassified (local) locks.
func (lo *lockOrderState) lockMethod(call *ast.CallExpr) (verb string, cls *lockClass) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", nil
	}
	fn := calleeFunc(lo.pass.TypesInfo, call)
	if fn == nil {
		return "", nil
	}
	if !methodOnType(fn, "sync", "Mutex") && !methodOnType(fn, "sync", "RWMutex") &&
		!methodOnType(fn, "sync", "Locker") && !lockerInterfaceMethod(fn) {
		return "", nil
	}
	return sel.Sel.Name, lo.classOfExpr(sel.X)
}

// lockerInterfaceMethod reports whether fn is sync.Locker's Lock or
// Unlock (interface methods have no concrete receiver named type).
func lockerInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Locker" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// classOfExpr resolves the lock class of the receiver expression:
// a classified field (x.mu, x.y.mu, xs[i].mu), slice element
// (mus[i]), or package-level variable.
func (lo *lockOrderState) classOfExpr(e ast.Expr) *lockClass {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := lo.pass.ObjectOf(e); obj != nil {
			return lo.byObj[obj]
		}
	case *ast.SelectorExpr:
		if obj := lo.pass.ObjectOf(e.Sel); obj != nil {
			return lo.byObj[obj]
		}
	case *ast.IndexExpr:
		return lo.classOfExpr(e.X)
	case *ast.StarExpr:
		return lo.classOfExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lo.classOfExpr(e.X)
		}
	}
	return nil
}

// blockingCall classifies call as an always-blocking stdlib wait, or
// returns "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch {
	case fn.Name() == "Wait" && methodOnType(fn, "sync", "WaitGroup"):
		return "sync.WaitGroup.Wait"
	case fn.Name() == "Wait" && methodOnType(fn, "sync", "Cond"):
		return "sync.Cond.Wait"
	case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	}
	return ""
}

// selectHasDefault reports whether sel carries a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Function summaries
// ---------------------------------------------------------------------

// buildSummaries computes each function's direct lock behavior and
// propagates it over the call graph to a fixpoint.
func (lo *lockOrderState) buildSummaries() {
	for fn, node := range lo.graph.nodes {
		lo.summaries[fn] = lo.directSummary(node.decl.Body)
	}
	lo.graph.fixpoint(func(caller, callee *types.Func) bool {
		cs, ce := lo.summaries[caller], lo.summaries[callee]
		changed := false
		for cls := range ce.acquires {
			if !cs.acquires[cls] {
				cs.acquires[cls] = true
				changed = true
			}
		}
		if ce.blocks && !cs.blocks {
			cs.blocks = true
			changed = true
		}
		return changed
	})
}

// directSummary scans one body (skipping goroutines and function
// literals) for its own acquisitions and blocking operations.
func (lo *lockOrderState) directSummary(body ast.Node) *lockSummary {
	s := &lockSummary{acquires: map[*lockClass]bool{}}
	var walk func(n ast.Node, nonBlocking bool)
	walk = func(n ast.Node, nonBlocking bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SelectStmt:
				inner := nonBlocking || selectHasDefault(m)
				if !inner {
					s.blocks = true
				}
				for _, c := range m.Body.List {
					walk(c, inner)
				}
				return false
			case *ast.SendStmt:
				if !nonBlocking {
					s.blocks = true
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !nonBlocking {
					s.blocks = true
				}
			case *ast.CallExpr:
				switch verb, cls := lo.lockMethod(m); verb {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if cls != nil {
						s.acquires[cls] = true
					}
				case "":
					if blockingCall(lo.pass.TypesInfo, m) != "" {
						s.blocks = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return s
}

// ---------------------------------------------------------------------
// Held-set walk
// ---------------------------------------------------------------------

// lockWalker tracks the held lock set through one function body.
type lockWalker struct {
	lo *lockOrderState
}

// stmts folds a statement list through the walker.
func (w *lockWalker) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// copyHeld snapshots the held stack so branch walks cannot alias it.
func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// stmt walks one statement, returning the held set after it.
func (w *lockWalker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		return w.ifStmt(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.scan(s.Cond, held)
		}
		body := func(h []heldLock) []heldLock {
			h = w.stmts(s.Body.List, h)
			if s.Post != nil {
				h = w.stmt(s.Post, h)
			}
			return h
		}
		return w.loop(body, held)
	case *ast.RangeStmt:
		held = w.scan(s.X, held)
		return w.loop(func(h []heldLock) []heldLock { return w.stmts(s.Body.List, h) }, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.scan(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := copyHeld(held)
				for _, e := range cc.List {
					h = w.scan(e, h)
				}
				w.stmts(cc.Body, h)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			w.lo.report(s.Pos(), "blocks on a select with no default while holding %s", describeHeld(held))
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			held = w.scan(a, held)
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — the
		// dominant idiom — so it leaves the tracked set unchanged.
		// Other deferred calls are checked against the current set.
		if verb, _ := w.lo.lockMethod(s.Call); verb == "Unlock" || verb == "RUnlock" {
			return held
		}
		return w.scan(s.Call, held)
	default:
		// Simple statements: assignments, expression statements, sends,
		// declarations, returns, branches.
		return w.scan(s, held)
	}
}

// loop walks a loop body from the current held set, then — when the
// body made a net change to it — walks it once more so an acquisition
// in iteration N is checked against the locks still held entering
// iteration N+1 (the ascending-index multi-lock idiom surfaces here).
func (w *lockWalker) loop(body func([]heldLock) []heldLock, held []heldLock) []heldLock {
	out := body(copyHeld(held))
	if !sameHeld(out, held) {
		body(copyHeld(out))
	}
	return out
}

func sameHeld(a, b []heldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].cls != b[i].cls {
			return false
		}
	}
	return true
}

// ifStmt handles the TryLock guard idioms and plain branches.
func (w *lockWalker) ifStmt(s *ast.IfStmt, held []heldLock) []heldLock {
	if s.Init != nil {
		held = w.stmt(s.Init, held)
	}
	// if mu.TryLock() { ... }: held inside the then-branch only.
	if call, ok := unparen(s.Cond).(*ast.CallExpr); ok {
		if verb, cls := w.lo.lockMethod(call); (verb == "TryLock" || verb == "TryRLock") && cls != nil {
			w.stmts(s.Body.List, w.acquire(cls, call.Pos(), copyHeld(held)))
			if s.Else != nil {
				w.stmt(s.Else, copyHeld(held))
			}
			return held
		}
	}
	// if !mu.TryLock() { return/continue/break }: held afterwards.
	if not, ok := unparen(s.Cond).(*ast.UnaryExpr); ok && not.Op == token.NOT {
		if call, ok := unparen(not.X).(*ast.CallExpr); ok {
			if verb, cls := w.lo.lockMethod(call); (verb == "TryLock" || verb == "TryRLock") && cls != nil {
				w.stmts(s.Body.List, copyHeld(held))
				if s.Else != nil {
					w.stmt(s.Else, copyHeld(held))
				}
				if terminates(s.Body) {
					return w.acquire(cls, call.Pos(), held)
				}
				return held
			}
		}
	}
	held = w.scan(s.Cond, held)
	w.stmts(s.Body.List, copyHeld(held))
	if s.Else != nil {
		w.stmt(s.Else, copyHeld(held))
	}
	// Branch-local lock effects do not survive the if: the analyzer
	// assumes balanced branches (the TryLock idioms above are the
	// deliberate exceptions).
	return held
}

// terminates reports whether block certainly leaves the enclosing
// statement list (return, branch, or panic as its last statement).
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scan walks a simple statement or expression in pre-order, applying
// acquisitions, releases, blocking checks, and callee-summary checks.
func (w *lockWalker) scan(n ast.Node, held []heldLock) []heldLock {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				w.lo.report(m.Pos(), "blocks on a channel send while holding %s", describeHeld(held))
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && len(held) > 0 {
				w.lo.report(m.Pos(), "blocks on a channel receive while holding %s", describeHeld(held))
			}
		case *ast.CallExpr:
			held = w.call(m, held)
			return true
		}
		return true
	})
	return held
}

// call applies one call expression to the held set.
func (w *lockWalker) call(call *ast.CallExpr, held []heldLock) []heldLock {
	verb, cls := w.lo.lockMethod(call)
	switch verb {
	case "Lock", "RLock":
		if cls != nil {
			return w.acquire(cls, call.Pos(), held)
		}
		return held
	case "Unlock", "RUnlock":
		if cls != nil {
			return release(cls, held)
		}
		return held
	case "TryLock", "TryRLock":
		// Outside the if-guard idioms the result is untracked.
		return held
	}
	if name := blockingCall(w.lo.pass.TypesInfo, call); name != "" && len(held) > 0 {
		// Cond.Wait with exactly one lock held is the condition
		// variable's required usage: Wait releases the (held) mutex
		// while parked. With two or more held, the outer locks stay
		// held across the park — that is the hazard.
		if name == "sync.Cond.Wait" && len(held) == 1 {
			return held
		}
		w.lo.report(call.Pos(), "calls %s while holding %s", name, describeHeld(held))
		return held
	}
	callee := calleeFunc(w.lo.pass.TypesInfo, call)
	if callee == nil || len(held) == 0 {
		return held
	}
	summ, ok := w.lo.summaries[callee]
	if !ok {
		return held
	}
	for _, h := range held {
		for acq := range summ.acquires {
			switch {
			case acq.rank < h.cls.rank:
				w.lo.report(call.Pos(), "call to %s may acquire %s (rank %d) while holding %s (rank %d): inverts the declared lock order",
					callee.Name(), acq.name, acq.rank, h.cls.name, h.cls.rank)
			case acq.rank == h.cls.rank:
				w.lo.report(call.Pos(), "call to %s may acquire %s (rank %d) while holding %s (rank %d): same-rank nesting needs its own //photon:allow",
					callee.Name(), acq.name, acq.rank, h.cls.name, h.cls.rank)
			}
		}
	}
	if summ.blocks {
		w.lo.report(call.Pos(), "call to %s may block while holding %s", callee.Name(), describeHeld(held))
	}
	return held
}

// acquire checks one acquisition against every held lock and pushes it.
func (w *lockWalker) acquire(cls *lockClass, pos token.Pos, held []heldLock) []heldLock {
	for _, h := range held {
		switch {
		case cls.rank < h.cls.rank:
			w.lo.report(pos, "acquires %s (rank %d) while holding %s (rank %d): inverts the declared lock order",
				cls.name, cls.rank, h.cls.name, h.cls.rank)
		case cls.rank == h.cls.rank:
			w.lo.report(pos, "acquires %s (rank %d) while already holding %s (rank %d): same-rank nesting needs an explicit //photon:allow",
				cls.name, cls.rank, h.cls.name, h.cls.rank)
		}
	}
	return append(held, heldLock{cls: cls, pos: pos})
}

// release pops the most recent acquisition of cls.
func release(cls *lockClass, held []heldLock) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].cls == cls {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

// describeHeld names the outermost held lock for diagnostics.
func describeHeld(held []heldLock) string {
	if len(held) == 0 {
		return "no lock"
	}
	h := held[len(held)-1]
	return sprintf("%s (rank %d)", h.cls.name, h.cls.rank)
}
