// Command racecheck is the analyzer/runtime agreement fixture: it
// deliberately violates the contracts photonvet's lockorder and
// atomicfield analyzers enforce, in a form the runtime race detector
// also observes. The agreement test runs this program under
// `go run -race` (expecting a DATA RACE report) and the analyzers over
// this package (expecting the same hazards flagged statically) —
// photonvet catches at review time what -race catches at run time,
// plus the lock-order inversion -race cannot see.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type racer struct {
	//photon:lock front 10
	frontMu sync.Mutex
	//photon:lock back 20
	backMu sync.Mutex

	hits uint64 // written via sync/atomic by one goroutine, plainly by the other
}

// atomicSide counts through sync/atomic, lock-free.
func (r *racer) atomicSide(rounds int) {
	for i := 0; i < rounds; i++ {
		atomic.AddUint64(&r.hits, 1)
	}
}

// plainSide mutates hits without sync/atomic under an unrelated lock:
// the data race -race reports and atomicfield flags statically.
func (r *racer) plainSide(rounds int) {
	for i := 0; i < rounds; i++ {
		r.frontMu.Lock()
		r.hits++
		r.frontMu.Unlock()
	}
}

// setup acquires back before front — the inversion lockorder flags.
// It runs single-threaded before the racers start, so the dynamic run
// cannot deadlock on it: this is the hazard class only the static
// analyzer sees.
func (r *racer) setup() {
	r.backMu.Lock()
	r.frontMu.Lock()
	r.frontMu.Unlock()
	r.backMu.Unlock()
}

func main() {
	r := &racer{}
	r.setup()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r.atomicSide(10000) }()
	go func() { defer wg.Done(); r.plainSide(10000) }()
	wg.Wait()
	fmt.Println(atomic.LoadUint64(&r.hits))
}
