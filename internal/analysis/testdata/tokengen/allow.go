package tokengen

// shardOf deliberately extracts only the shard index for metrics
// labelling — the generation is irrelevant to a counter bucket, and
// the suppression documents that.
func shardOf(tok uint64) uint64 {
	return tok & 0xf //photon:allow tokengen -- shard index feeds a metrics label; no liveness decision is made
}

// debugSlot logs the slot half for tracing only.
func debugSlot(tok uint64) uint32 {
	//photon:allow tokengen -- trace output only; the progress engine re-validates the generation
	return uint32(tok)
}
