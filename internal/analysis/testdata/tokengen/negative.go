package tokengen

// take mirrors tokenTable.take: it narrows the token only after
// extracting and checking the generation in the same function — the
// sanctioned idiom.
func take(tok uint64, gens []uint32) (uint32, bool) {
	gen := uint32(tok >> 32)
	slot := uint32(tok)
	if int(slot) >= len(gens) || gens[slot] != gen {
		return 0, false
	}
	return slot, true
}

// genOnly extracts just the generation; a >=32-bit shift keeps the tag.
func genOnly(tok uint64) uint32 {
	return uint32(tok >> 32)
}

// highMask keeps the generation half, which loses nothing that matters.
func highMask(tok uint64) uint64 {
	return tok & 0xffffffff00000000
}

// unrelatedName narrows a uint64 that is not a token; the analyzer is
// name-seeded and stays quiet.
func unrelatedName(seq uint64) uint32 {
	return uint32(seq)
}

// fullWidth passes the token around at full width.
func fullWidth(tok uint64, sink func(uint64)) {
	sink(tok)
}

// wideningInt converts to int/uint, which are 64-bit on every platform
// Photon targets.
func wideningInt(tok uint64) int {
	return int(tok)
}
