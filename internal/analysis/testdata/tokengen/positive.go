// Package tokengen exercises the tokengen analyzer: completion tokens
// narrowed or masked without consulting the generation tag (bits
// 32..63) must be reported.
package tokengen

// narrowed drops the generation by conversion.
func narrowed(tok uint64) uint32 {
	return uint32(tok) // want `token narrowed to uint32 without consulting its generation`
}

// narrowedSmall drops even more bits.
func narrowedSmall(token uint64) uint16 {
	return uint16(token) // want `token narrowed to uint16 without consulting its generation`
}

// masked keeps only the low half with a constant mask.
func masked(tok uint64) uint64 {
	return tok & 0xffffffff // want `token masked to its low 32 bits without consulting its generation`
}

// maskedShard extracts the shard bits without ever checking the
// generation — the recycled-slot confusion bug.
func maskedShard(tok uint64) uint64 {
	const shards = 16
	return tok & (shards - 1) // want `token masked to its low 32 bits without consulting its generation`
}

// aliased narrows through a local alias of the token.
func aliased(token uint64) uint32 {
	t := token
	return uint32(t) // want `token narrowed to uint32 without consulting its generation`
}

type completion struct {
	Token uint64
	N     int
}

// fromField narrows a completion's Token field.
func fromField(c completion) uint32 {
	return uint32(c.Token) // want `token narrowed to uint32 without consulting its generation`
}

// storedNarrow parks the low half in a map key, where stale and live
// completions collide after slot recycling.
func storedNarrow(tok uint64, pending map[uint32]bool) {
	pending[uint32(tok)] = true // want `token narrowed to uint32 without consulting its generation`
}
