package bufretain

import "photon/internal/mem"

type pending struct {
	result []byte
}

var table = map[uint64]*pending{}

// parkedResult retains an atomic-result word in a pending table until
// its completion arrives — the documented intentional retention, so the
// finding is suppressed in place (end-of-line form).
func parkedResult(p *mem.BufPool, tok uint64) {
	b := p.Get(8)
	table[tok] = &pending{result: b} //photon:allow bufretain -- result word parked until completion; completion path returns it to the pool
}

// ownLineForm suppresses via a directive on its own line above the
// finding.
func ownLineForm(p *mem.BufPool, h *holder) {
	b := p.Get(64)
	//photon:allow bufretain -- handed to the holder; release happens in holder teardown
	h.buf = b
}
