package bufretain

import "photon/internal/mem"

type wireOp struct {
	local []byte
	n     int
}

func post(op wireOp) error      { return nil }
func encode(dst, src []byte)    {}
func consume(b []byte)          {}
func postPtr(op *wireOp) error  { return nil }

// straightLine is the canonical scratch lifetime: Get, fill, Put.
func straightLine(p *mem.BufPool) {
	b := p.Get(64)
	b[0] = 1
	p.Put(b)
}

// deferredPut releases on all paths via defer.
func deferredPut(p *mem.BufPool) {
	b := p.Get(64)
	defer p.Put(b)
	b[0] = 1
}

// aliasPut releases through a re-slice alias; cap is preserved so the
// pool accepts it.
func aliasPut(p *mem.BufPool) {
	b := p.Get(64)
	head := b[:8]
	head[0] = 1
	p.Put(head)
}

// handoff transfers the buffer to a callee whose contract covers it.
func handoff(p *mem.BufPool) {
	b := p.Get(64)
	consume(b)
}

// literalHandoff passes a composite literal holding the buffer straight
// into a call — ownership moves to the callee's contract (the postPair
// idiom).
func literalHandoff(p *mem.BufPool) {
	b := p.Get(64)
	_ = post(wireOp{local: b, n: len(b)})
}

// literalPtrHandoff covers the &T{...} argument form.
func literalPtrHandoff(p *mem.BufPool) {
	b := p.Get(64)
	_ = postPtr(&wireOp{local: b})
}

// spreadCopy appends the buffer's bytes, not the buffer itself.
func spreadCopy(p *mem.BufPool, dst []byte) []byte {
	b := p.Get(64)
	dst = append(dst, b...)
	p.Put(b)
	return dst
}

// owned uses GetOwned, whose documented contract transfers ownership
// permanently — bufretain does not track it.
func owned(p *mem.BufPool) []byte {
	b := p.GetOwned(64)
	return b
}

// inlineArg consumes the Get in argument position: an immediate
// hand-off, never bound to a local.
func inlineArg(p *mem.BufPool) {
	consume(p.Get(64))
}

// copyOut copies the bytes somewhere durable and releases the scratch.
func copyOut(p *mem.BufPool, dst []byte) {
	b := p.Get(64)
	encode(b, dst)
	copy(dst, b)
	p.Put(b)
}
