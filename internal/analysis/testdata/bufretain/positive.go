// Package bufretain exercises the bufretain analyzer: pooled buffers
// that escape the borrowing frame or are never released must be
// reported.
package bufretain

import "photon/internal/mem"

type holder struct {
	buf    []byte
	frames [][]byte
}

var global []byte

// fieldStore stashes the pooled buffer in a struct field that outlives
// the call.
func fieldStore(p *mem.BufPool, h *holder) {
	b := p.Get(64)
	h.buf = b // want `pooled buffer b stored into struct field buf`
}

// globalStore parks the buffer in a package-level variable.
func globalStore(p *mem.BufPool) {
	b := p.Get(64)
	global = b // want `pooled buffer b stored into package-level variable global`
}

// returned leaks the buffer to the caller.
func returned(p *mem.BufPool) []byte {
	b := p.Get(64)
	return b // want `pooled buffer b returned to the caller`
}

// resliceReturned leaks through a re-slice alias.
func resliceReturned(p *mem.BufPool) []byte {
	b := p.Get(64)
	head := b[:8]
	return head // want `pooled buffer b returned to the caller`
}

// appended collects the buffer itself as a slice element.
func appended(p *mem.BufPool, h *holder) {
	b := p.Get(64)
	h.frames = append(h.frames, b) // want `pooled buffer b appended as an element into a slice`
}

// sent ships the buffer over a channel.
func sent(p *mem.BufPool, ch chan []byte) {
	b := p.Get(64)
	ch <- b // want `pooled buffer b sent on a channel`
}

// goCapture hands the buffer to a goroutine that may outlive the frame.
func goCapture(p *mem.BufPool, done func([]byte)) {
	b := p.Get(64)
	go func() { // want `pooled buffer b captured by a goroutine closure`
		done(b)
	}()
}

// literalRetained keeps the buffer inside a composite literal that is
// itself stored.
func literalRetained(p *mem.BufPool) holder {
	b := p.Get(64)
	h := holder{buf: b} // want `pooled buffer b retained in a composite literal`
	return h
}

// droppedPut is the acceptance demo: the Put that used to close the
// lifetime was deleted, so the Get is never released by anything.
func droppedPut(p *mem.BufPool) {
	b := p.Get(64) // want `pooled buffer b is never released: no BufPool.Put and no hand-off call`
	b[0] = 1
}

// discarded throws the handle away immediately.
func discarded(p *mem.BufPool) {
	_ = p.Get(64) // want `pooled buffer from BufPool.Get is discarded without release`
}
