package wireproto

// A clean protocol: every opcode is encoded and decoded, values are
// unique, and the length check shares its constant with the encoder.
const (
	mkOpen  = 10
	mkWrite = 11
	mkClose = 12
)

// mkHdrLen is the fixed header the encoder emits and the decoder
// requires: opcode byte plus an 8-byte sequence number.
const mkHdrLen = 9

func encodeOpen(b []byte) {
	b[0] = mkOpen
	_ = b[:mkHdrLen]
}

func encodeWrite(b []byte) {
	b[0] = mkWrite
	_ = b[:mkHdrLen]
}

func encodeClose(b []byte) {
	b[0] = mkClose
	_ = b[:mkHdrLen]
}

func decodeMk(b []byte) int {
	if len(b) < mkHdrLen {
		return -1
	}
	switch b[0] {
	case mkOpen:
		return 0
	case mkWrite:
		return 1
	case mkClose:
		return 2
	}
	return -1
}

// verdict is an in-memory enum: never byte-encoded, so the group is
// not a wire protocol and a handled-by-fall-through member (vSkip) is
// not a finding.
const (
	vKeep = iota
	vDrop
	vSkip
)

func classify(v int) int {
	switch v {
	case vKeep:
		return 1
	case vDrop:
		return 2
	}
	return 0 // vSkip and anything else fall through
}

func produce() []int { return []int{vKeep, vDrop, vSkip} }
