package wireproto

// A one-way channel: akDebug frames are emitted for an external
// consumer and deliberately have no arm in this package's decoder; the
// allow records the contract.
const (
	akHello = 20
	akBye   = 21
	akDebug = 22 //photon:allow wireproto -- debug frames are consumed by the out-of-tree tap, never by this decoder
)

func encodeHello(b []byte) { b[0] = akHello }
func encodeBye(b []byte)   { b[0] = akBye }
func encodeDebug(b []byte) { b[0] = akDebug }

func decodeAk(b []byte) int {
	switch b[0] {
	case akHello:
		return 0
	case akBye:
		return 1
	}
	return -1
}
