// Package wireproto exercises the wireproto analyzer: every encoded
// opcode needs a decoder arm, decoder arms need encoders, values must
// be unique, and frame-length checks must share named constants with
// the encoder.
package wireproto

// Frame opcodes, first byte on the wire.
const (
	opPing = 1
	opPong = 2
	opData = 3 // want `opcode opData is encoded but the decoder switch at wireproto/positive.go:\d+ has no arm for it`
	opDead = 4 // want `opcode opDead has a decoder arm but is never encoded \(dead opcode\)`
	opEcho = 5
	opDupe = 5 // want `opcode opDupe duplicates the value 5 of opEcho; the decoder cannot distinguish them`
)

func encodePing(b []byte) { b[0] = opPing }
func encodePong(b []byte) { b[0] = opPong }
func encodeData(b []byte) { b[0] = opData }
func encodeEcho(b []byte) { b[0] = opEcho }
func encodeDupe(b []byte) { b[0] = opDupe }

// decode is the primary decoder switch for the op group.
func decode(b []byte) int {
	if len(b) < 7 { // want `frame-length literal 7 is not backed by a named constant; encoder and decoder cannot be checked for agreement`
		return -1
	}
	switch b[0] {
	case opPing:
		return 0
	case opPong:
		return 1
	case opDead:
		return 2
	case opEcho:
		return 3
	}
	return -1
}

// decodeDupe peels the duplicate tag by comparison (cmp-style decode).
func decodeDupe(b []byte) bool { return b[0] == opDupe }
