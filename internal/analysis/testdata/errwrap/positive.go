// Package errwrap exercises the errwrap analyzer: sentinel errors must
// be matched with errors.Is and wrapped with %w, never compared by
// identity or stringified into a new error.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrFull and errStale are package-level sentinels (exported and not).
var (
	ErrFull  = errors.New("queue full")
	errStale = errors.New("stale handle")
)

func produce() error { return fmt.Errorf("op: %w", ErrFull) }

// identityEq breaks on wrapped sentinels.
func identityEq(err error) bool {
	return err == ErrFull // want `sentinel ErrFull compared with ==; use errors.Is so wrapped errors still match`
}

// identityNeq is the negated form.
func identityNeq(err error) bool {
	return err != errStale // want `sentinel errStale compared with !=; use errors.Is so wrapped errors still match`
}

// switchIdentity matches by case identity.
func switchIdentity(err error) int {
	switch err {
	case ErrFull: // want `sentinel ErrFull matched by switch case identity; use errors.Is so wrapped errors still match`
		return 1
	case nil:
		return 0
	}
	return -1
}

// stringified cuts the cause out of the chain.
func stringified(err error) error {
	return fmt.Errorf("retry failed: %v", err) // want `fmt.Errorf stringifies an error argument without %w; the cause is cut from the chain and errors.Is cannot match it`
}
