package errwrap

// fastPathCheck compares identity on a hot path where the sentinel is
// guaranteed unwrapped (produced by this package, never decorated);
// the allow records that contract.
func fastPathCheck(err error) bool {
	return err == errStale //photon:allow errwrap -- errStale never crosses a wrapping boundary; identity is exact here and avoids the errors.Is walk on the hot path
}
