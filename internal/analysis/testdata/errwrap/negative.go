package errwrap

import (
	"errors"
	"fmt"
)

// errClosed joins the fixture's sentinel population.
var errClosed = errors.New("closed")

// properIs matches through the chain.
func properIs(err error) bool {
	return errors.Is(err, ErrFull) || errors.Is(err, errClosed)
}

// nilChecks are identity comparisons but not sentinel matches.
func nilChecks(err error) bool {
	return err == nil || err != nil
}

// wrapped preserves the cause with %w.
func wrapped(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// plainErrorf has no error argument to lose.
func plainErrorf(n int) error {
	return fmt.Errorf("bad frame length %d", n)
}

// stringArg stringifies a non-error value, which is fine.
func stringArg(err error) string {
	return fmt.Sprintf("state: %v", err.Error())
}

// localVar is not a package-level sentinel; identity comparison of a
// freshly scoped error is out of the contract's scope.
func localVar(err error) bool {
	target := errors.New("transient")
	return err == target
}
