// Package lockorder exercises the lockorder analyzer: rank-annotated
// mutexes must be acquired in ascending rank order, never held across
// blocking operations, and every shared mutex must carry a
// //photon:lock classification.
package lockorder

import (
	"sync"
	"time"
)

type engine struct {
	//photon:lock outer 10
	outerMu sync.Mutex
	//photon:lock inner 20
	innerMu sync.Mutex
	//photon:lock twin 20
	twinMu sync.Mutex

	naked sync.Mutex // want `sync.Mutex field naked is not classified; add //photon:lock <name> <rank> to declare its acquisition rank`

	ch chan int
	wg sync.WaitGroup
}

// inverted acquires against the declared order: inner (20) is held
// while outer (10) is taken.
func (e *engine) inverted() {
	e.innerMu.Lock()
	e.outerMu.Lock() // want `acquires outer \(rank 10\) while holding inner \(rank 20\): inverts the declared lock order`
	e.outerMu.Unlock()
	e.innerMu.Unlock()
}

// sameRank nests two locks of equal rank, which needs an explicit
// allow to assert a deadlock-free discipline (ascending index, etc.).
func (e *engine) sameRank() {
	e.innerMu.Lock()
	e.twinMu.Lock() // want `acquires twin \(rank 20\) while already holding inner \(rank 20\): same-rank nesting needs an explicit //photon:allow`
	e.twinMu.Unlock()
	e.innerMu.Unlock()
}

// sendWhileHolding parks on a channel with a lock held.
func (e *engine) sendWhileHolding(v int) {
	e.outerMu.Lock()
	e.ch <- v // want `blocks on a channel send while holding outer \(rank 10\)`
	e.outerMu.Unlock()
}

// recvWhileHolding parks on a receive with a lock held.
func (e *engine) recvWhileHolding() int {
	e.outerMu.Lock()
	v := <-e.ch // want `blocks on a channel receive while holding outer \(rank 10\)`
	e.outerMu.Unlock()
	return v
}

// selectWhileHolding parks on a select with no default.
func (e *engine) selectWhileHolding() {
	e.outerMu.Lock()
	select { // want `blocks on a select with no default while holding outer \(rank 10\)`
	case <-e.ch:
	}
	e.outerMu.Unlock()
}

// waitWhileHolding blocks on a WaitGroup with a lock held.
func (e *engine) waitWhileHolding() {
	e.outerMu.Lock()
	e.wg.Wait() // want `calls sync.WaitGroup.Wait while holding outer \(rank 10\)`
	e.outerMu.Unlock()
}

// sleepWhileHolding stalls every other acquirer.
func (e *engine) sleepWhileHolding() {
	e.innerMu.Lock()
	time.Sleep(time.Millisecond) // want `calls time.Sleep while holding inner \(rank 20\)`
	e.innerMu.Unlock()
}

// lockInner is a helper whose lock effect propagates to callers
// through the call-graph summary.
func (e *engine) lockInner() {
	e.innerMu.Lock()
	e.innerMu.Unlock()
}

// lockOuter acquires the outer lock.
func (e *engine) lockOuter() {
	e.outerMu.Lock()
	e.outerMu.Unlock()
}

// transitiveInversion holds inner and calls a function that acquires
// outer: the inversion crosses a function boundary.
func (e *engine) transitiveInversion() {
	e.innerMu.Lock()
	e.lockOuter() // want `call to lockOuter may acquire outer \(rank 10\) while holding inner \(rank 20\): inverts the declared lock order`
	e.innerMu.Unlock()
}

// blockingCallee parks on a channel; callers holding locks inherit the
// hazard.
func (e *engine) blockingCallee() {
	<-e.ch
}

// transitiveBlock holds a lock across a call that blocks.
func (e *engine) transitiveBlock() {
	e.outerMu.Lock()
	e.blockingCallee() // want `call to blockingCallee may block while holding outer \(rank 10\)`
	e.outerMu.Unlock()
}

type twoConds struct {
	//photon:lock condA 10
	a sync.Mutex
	//photon:lock condB 20
	b    sync.Mutex
	cond *sync.Cond
}

// waitWithTwoHeld calls Cond.Wait while a second lock is held: Wait
// releases only its own mutex, so condA stays held across the park.
func (c *twoConds) waitWithTwoHeld() {
	c.a.Lock()
	c.b.Lock()
	c.cond.Wait() // want `calls sync.Cond.Wait while holding condB \(rank 20\)`
	c.b.Unlock()
	c.a.Unlock()
}
