package lockorder

import "sync"

// shardTable mirrors the engine's all-shard quiesce: N same-rank locks
// taken in ascending index order, asserted deadlock-free by the allow.
type shardTable struct {
	shards []*shardSlot
}

type shardSlot struct {
	//photon:lock slot 30
	mu sync.Mutex
}

// quiesce locks every shard in ascending index order. The same-rank
// nesting is intentional and carried by an explicit allow.
func (t *shardTable) quiesce() {
	for _, s := range t.shards {
		s.mu.Lock() //photon:allow lockorder -- ascending index order over the shard table; a single global order, no cycles
	}
	for i := len(t.shards) - 1; i >= 0; i-- {
		t.shards[i].mu.Unlock()
	}
}

type notifySrc struct {
	//photon:lock notify 40
	mu sync.Mutex
	ch chan struct{}
}

// kick performs a send that the surrounding protocol guarantees cannot
// block (capacity-1 channel, single producer); the allow records why.
func (n *notifySrc) kick() {
	n.mu.Lock()
	//photon:allow lockorder -- capacity-1 latch with a single producer; the send can never park
	n.ch <- struct{}{}
	n.mu.Unlock()
}
