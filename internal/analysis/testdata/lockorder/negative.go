package lockorder

import "sync"

type clean struct {
	//photon:lock first 10
	firstMu sync.Mutex
	//photon:lock second 20
	secondMu sync.Mutex
	cond     *sync.Cond
	ch       chan int
}

// ascending acquires in declared order: no finding.
func (c *clean) ascending() {
	c.firstMu.Lock()
	c.secondMu.Lock()
	c.secondMu.Unlock()
	c.firstMu.Unlock()
}

// deferredUnlock keeps the held set correct through defer.
func (c *clean) deferredUnlock() {
	c.firstMu.Lock()
	defer c.firstMu.Unlock()
	c.secondMu.Lock()
	defer c.secondMu.Unlock()
}

// sequential takes the locks one after another, never nested.
func (c *clean) sequential() {
	c.secondMu.Lock()
	c.secondMu.Unlock()
	c.firstMu.Lock()
	c.firstMu.Unlock()
}

// condvar is the canonical condition-variable pattern: Wait releases
// the (single) held mutex while parked, so it is not flagged.
func (c *clean) condvar() {
	c.firstMu.Lock()
	c.cond.Wait()
	c.firstMu.Unlock()
}

// tryGuard only enters the critical section when the try succeeds; the
// held set is tracked through the if-guard idiom.
func (c *clean) tryGuard() {
	if c.firstMu.TryLock() {
		c.secondMu.Lock()
		c.secondMu.Unlock()
		c.firstMu.Unlock()
	}
}

// tryBail holds the lock after a failed-try early return.
func (c *clean) tryBail() {
	if !c.firstMu.TryLock() {
		return
	}
	c.secondMu.Lock()
	c.secondMu.Unlock()
	c.firstMu.Unlock()
}

// selectDefault polls without parking; safe under a lock.
func (c *clean) selectDefault() (v int, ok bool) {
	c.firstMu.Lock()
	defer c.firstMu.Unlock()
	select {
	case v = <-c.ch:
		ok = true
	default:
	}
	return v, ok
}

// localMutex is function-local and exempt from classification.
func localMutex() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// unlockedSend drops the lock before parking.
func (c *clean) unlockedSend(v int) {
	c.firstMu.Lock()
	c.firstMu.Unlock()
	c.ch <- v
}
