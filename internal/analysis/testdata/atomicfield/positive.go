// Package atomicfield exercises the atomicfield analyzer: a field
// accessed through sync/atomic anywhere in the package must never be
// read or written plainly, and the typed atomics must only be used
// through their methods.
package atomicfield

import (
	"sync/atomic"
)

type counters struct {
	hits  uint64
	seq   uint64
	depth atomic.Int64
}

// bump uses the old free-function API on hits and seq.
func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint64(&c.seq, 42)
}

// read races: hits is atomically written elsewhere in the package.
func (c *counters) read() uint64 {
	return c.hits // want `field hits is accessed via sync/atomic elsewhere in this package; plain access races with it`
}

// write races on the same field.
func (c *counters) write(v uint64) {
	c.seq = v // want `field seq is accessed via sync/atomic elsewhere in this package; plain access races with it`
}

// typedCopy copies the atomic by value, forking its state.
func typedCopy(c *counters) {
	d := c.depth // want `atomic.Int64 field depth: value copy bypasses the atomic API`
	_ = d
}

// typedAssign overwrites the whole atomic, bypassing Store.
func typedAssign(c *counters) {
	c.depth = atomic.Int64{} // want `atomic.Int64 field depth: plain assignment bypasses the atomic API`
}

// typedCompare compares atomics structurally instead of via Load.
func typedCompare(a, b *counters) bool {
	return a.depth == b.depth // want `atomic.Int64 field depth: plain comparison bypasses the atomic API` `atomic.Int64 field depth: plain comparison bypasses the atomic API`
}
