package atomicfield

import "sync/atomic"

type gauges struct {
	level   atomic.Uint64
	armed   atomic.Bool
	plainN  int
	ordinal uint64 // never touched by sync/atomic: plain access is fine
}

// methods uses the typed API exclusively.
func (g *gauges) methods() uint64 {
	g.level.Add(1)
	g.armed.Store(true)
	if g.armed.Load() {
		g.level.CompareAndSwap(3, 4)
	}
	return g.level.Load()
}

// address passes the atomic by pointer, which preserves the API.
func (g *gauges) address() *atomic.Uint64 {
	return &g.level
}

// plainFields never meet sync/atomic, so ordinary access is fine.
func (g *gauges) plainFields() int {
	g.plainN++
	g.ordinal = uint64(g.plainN)
	return g.plainN + int(g.ordinal)
}

// localWord applies the old API to a local variable, not a field; the
// analyzer only tracks struct fields.
func localWord() uint64 {
	var w uint64
	atomic.AddUint64(&w, 1)
	return atomic.LoadUint64(&w)
}
