package atomicfield

import "sync/atomic"

type snapshotted struct {
	written uint64
}

// record is the hot-path writer.
func (s *snapshotted) record() {
	atomic.AddUint64(&s.written, 1)
}

// dump reads the counter plainly from a quiesced context; the allow
// records the external synchronization that makes it safe.
func (s *snapshotted) dump() uint64 {
	return s.written //photon:allow atomicfield -- read after Close barriers every writer; no concurrent Add can exist
}
