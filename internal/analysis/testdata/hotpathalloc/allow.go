package hotpathalloc

import "fmt"

// coldError formats an error on the already-failed branch: documented
// as acceptable with an end-of-line allow.
//
//photon:hotpath
func coldError(s *state, n int) error {
	if n > len(s.scratch) {
		return fmt.Errorf("short scratch: need %d", n) //photon:allow hotpathalloc -- cold error path; the op already failed
	}
	return nil
}

// amortizedGrowth documents warm-up growth with the own-line form, and
// shows stacked allows sharing one target line.
//
//photon:hotpath
func amortizedGrowth(s *state, n int) {
	//photon:allow hotpathalloc -- amortized warm-up growth; steady state reuses capacity
	s.peers = append(s.peers, n)
	s.mu.Lock() //photon:allow hotpathalloc -- per-peer lock held for two loads; uncontended by design
	s.mu.Unlock()
}
