// Package hotpathalloc exercises the hotpathalloc analyzer:
// allocations and blocking locks inside //photon:hotpath functions
// must be reported.
package hotpathalloc

import (
	"fmt"
	"sync"
)

type state struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	scratch []byte
	peers   []int
}

// allocEverywhere is the acceptance demo: adding make([]byte, n) (or
// any of its friends) under //photon:hotpath fails the build.
//
//photon:hotpath
func allocEverywhere(s *state, n int) {
	b := make([]byte, n) // want `make allocates in //photon:hotpath function allocEverywhere`
	_ = b
	p := new(state) // want `new allocates in //photon:hotpath function allocEverywhere`
	_ = p
	s.peers = append(s.peers, n) // want `append may grow and allocate in //photon:hotpath function allocEverywhere`
}

//photon:hotpath
func literals(n int) {
	xs := []int{n} // want `slice literal allocates in //photon:hotpath function literals`
	_ = xs
	m := map[int]int{} // want `map literal allocates in //photon:hotpath function literals`
	_ = m
	p := &state{} // want `&composite literal escapes to the heap in //photon:hotpath function literals`
	_ = p
}

//photon:hotpath
func formatting(err error) {
	fmt.Println(err) // want `fmt.Println allocates and boxes its arguments in //photon:hotpath function formatting`
}

//photon:hotpath
func conversions(b []byte, s string, n int) {
	_ = string(b) // want `string conversion copies the slice in //photon:hotpath function conversions`
	_ = []byte(s) // want `\[\]byte conversion copies the string in //photon:hotpath function conversions`
	_ = any(n)    // want `conversion to interface type boxes the value in //photon:hotpath function conversions`
}

//photon:hotpath
func locking(s *state) {
	s.mu.Lock() // want `Lock acquires a blocking mutex in //photon:hotpath function locking`
	s.mu.Unlock()
	s.rw.RLock() // want `RLock acquires a blocking mutex in //photon:hotpath function locking`
	s.rw.RUnlock()
}

//photon:hotpath
func lockerIface(l sync.Locker) {
	l.Lock() // want `Lock acquires a blocking mutex in //photon:hotpath function lockerIface`
	l.Unlock()
}

//photon:hotpath
func spawning(s *state) {
	go func() { // want `go statement spawns a goroutine in //photon:hotpath function spawning` `function literal allocates a closure in //photon:hotpath function spawning`
		s.mu.Lock() // want `Lock acquires a blocking mutex in //photon:hotpath function spawning`
		s.mu.Unlock()
	}()
}
