package hotpathalloc

import "sync"

type entry struct {
	off int
	n   int
}

// coldPath is not annotated: the same constructs draw no diagnostics
// outside //photon:hotpath functions.
func coldPath(s *state, n int) {
	b := make([]byte, n)
	_ = b
	s.mu.Lock()
	s.mu.Unlock()
	s.peers = append(s.peers, n)
}

// warmScratch reuses existing capacity: the x[:0] reset idiom and
// copy() never allocate.
//
//photon:hotpath
func warmScratch(s *state, payload []byte) {
	s.scratch = append(s.scratch[:0], payload...)
	copy(s.scratch, payload)
	_ = len(payload)
}

// stackValues builds struct and array values, which stay on the stack.
//
//photon:hotpath
func stackValues(off, n int) entry {
	e := entry{off: off, n: n}
	var window [4]int
	window[0] = n
	return e
}

// tryLock uses the non-blocking coalescing entry, which is the
// documented progress-engine idiom.
//
//photon:hotpath
func tryLock(mu *sync.Mutex) bool {
	if mu.TryLock() {
		mu.Unlock()
		return true
	}
	return false
}

// widening conversions between numeric types are free.
//
//photon:hotpath
func widening(tok uint64) uint64 {
	return uint64(uint(tok>>32)) + tok
}
