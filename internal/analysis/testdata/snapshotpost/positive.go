// Package snapshotpost exercises the snapshotpost analyzer: PostWrite
// and PostWriteBatch implementations must not retain the caller's
// payload slice past return.
package snapshotpost

// writeReq mirrors core.WriteReq's payload shape.
type writeReq struct {
	Local []byte
	Rkey  uint64
}

type retainingBackend struct {
	held   []byte
	queue  [][]byte
	outbox chan []byte
}

// PostWrite stashes the caller's slice instead of copying it.
func (b *retainingBackend) PostWrite(local []byte, rkey uint64) error {
	b.held = local // want `PostWrite must snapshot the payload before returning: payload stored into struct field held`
	return nil
}

type queueingBackend struct {
	queue [][]byte
}

// PostWrite queues the live slice for a background sender.
func (b *queueingBackend) PostWrite(local []byte) error {
	b.queue = append(b.queue, local) // want `PostWrite must snapshot the payload before returning: payload appended as an element into a slice`
	return nil
}

type batchBackend struct {
	held []byte
}

// PostWriteBatch retains a payload reached through the batch slice.
func (b *batchBackend) PostWriteBatch(reqs []writeReq) error {
	for _, r := range reqs {
		b.held = r.Local // want `PostWriteBatch must snapshot the payload before returning: payload stored into struct field held`
	}
	return nil
}

type indexBackend struct {
	held []byte
}

// PostWriteBatch retains via direct indexing rather than range.
func (b *indexBackend) PostWriteBatch(reqs []writeReq) error {
	if len(reqs) > 0 {
		b.held = reqs[0].Local // want `PostWriteBatch must snapshot the payload before returning: payload stored into struct field held`
	}
	return nil
}

type goBackend struct{}

// PostWrite hands the live payload to a goroutine that sends after
// return.
func (b *goBackend) PostWrite(local []byte, send func([]byte)) error {
	go func() { // want `PostWrite must snapshot the payload before returning: payload captured by a goroutine closure`
		send(local)
	}()
	return nil
}

type chanBackend struct {
	outbox chan []byte
}

// PostWrite ships the live slice through a channel.
func (b *chanBackend) PostWrite(local []byte) error {
	b.outbox <- local // want `PostWrite must snapshot the payload before returning: payload sent on a channel`
	return nil
}
