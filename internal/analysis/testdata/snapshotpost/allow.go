package snapshotpost

type loopbackBackend struct {
	last []byte
}

// PostWrite on a loopback test double completes synchronously before
// returning, so retaining the slice is safe — and documented.
func (b *loopbackBackend) PostWrite(local []byte) error {
	b.last = local //photon:allow snapshotpost -- loopback double completes synchronously; the slice is dead before PostWrite returns
	return nil
}
