package snapshotpost

type sendWR struct {
	Local []byte
	Op    int
}

type qp struct{}

func (q *qp) post(wr sendWR) error { return nil }

type copyingBackend struct {
	frames [][]byte
}

// PostWrite snapshots the payload into a fresh frame at post time —
// the contract implemented by the tcp backend.
func (b *copyingBackend) PostWrite(local []byte, rkey uint64) error {
	frame := make([]byte, 16+len(local))
	copy(frame[16:], local)
	b.frames = append(b.frames, frame)
	return nil
}

type spreadBackend struct {
	wire []byte
}

// PostWrite appends the payload's bytes (spread copies), not the slice
// itself.
func (b *spreadBackend) PostWrite(local []byte) error {
	b.wire = append(b.wire[:0], local...)
	return nil
}

type handoffBackend struct {
	q *qp
}

// PostWrite passes a literal holding the payload straight into the
// next post layer — the vsim idiom: the callee's own snapshot contract
// takes over.
func (b *handoffBackend) PostWrite(local []byte) error {
	return b.q.post(sendWR{Local: local, Op: 1})
}

type batchCopyBackend struct {
	frames [][]byte
}

// PostWriteBatch copies each payload before return.
func (b *batchCopyBackend) PostWriteBatch(reqs []writeReq) error {
	for _, r := range reqs {
		frame := make([]byte, len(r.Local))
		copy(frame, r.Local)
		b.frames = append(b.frames, frame)
	}
	return nil
}

type unrelated struct{}

// PostWrite without a payload parameter is out of scope.
func (u *unrelated) PostWrite(n int) error { return nil }

// postWrite (unexported, not the interface method) is out of scope.
type notBackend struct{ held []byte }

func (n *notBackend) postWrite(local []byte) { n.held = local }
