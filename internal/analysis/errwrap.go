package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the sentinel-error contract unified under
// internal/errs: sentinels travel through layers wrapped, so they must
// be matched with errors.Is and wrapped with %w. An identity comparison
// (err == ErrWouldBlock) is a latent bug, not a style issue — the
// moment any layer in between wraps the error (the chaos backend, a
// transport adding context), the comparison silently stops matching
// and a would-block turns into a hard failure.
//
// A sentinel is a package-level variable of type error whose name
// matches (Err|err)Xxx, whether declared in this package or imported
// (errs.ErrTimeout, core.ErrWouldBlock). Reported:
//
//   - ==/!= between an error and a sentinel (nil comparisons are
//     fine): use errors.Is;
//   - switch err { case ErrX: } — the same identity comparison in
//     switch clothing;
//   - fmt.Errorf with an error-typed argument but no %w verb in its
//     format literal: the cause is stringified and the chain is cut,
//     so errors.Is can never match through it.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors must be matched with errors.Is and wrapped with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				var sentinel types.Object
				var other ast.Expr
				if obj := sentinelOf(pass, n.X); obj != nil {
					sentinel, other = obj, n.Y
				} else if obj := sentinelOf(pass, n.Y); obj != nil {
					sentinel, other = obj, n.X
				}
				if sentinel == nil || isNilExpr(pass, other) {
					return true
				}
				pass.Reportf(n.Pos(), "sentinel %s compared with %s; use errors.Is so wrapped errors still match",
					sentinel.Name(), n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypeOf(n.Tag)) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if obj := sentinelOf(pass, e); obj != nil {
							pass.Reportf(e.Pos(), "sentinel %s matched by switch case identity; use errors.Is so wrapped errors still match",
								obj.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelOf resolves e to a sentinel error variable: package-level,
// error-typed, named (Err|err)Xxx. Works for both local idents and
// imported selectors.
func sentinelOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !isErrorType(obj.Type()) || !sentinelName(obj.Name()) {
		return nil
	}
	return obj
}

func sentinelName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Err")
	if !ok {
		rest, ok = strings.CutPrefix(name, "err")
	}
	return ok && rest != "" && rest[0] >= 'A' && rest[0] <= 'Z'
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.ObjectOf(id).(*types.Nil)
	return isNil
}

// checkErrorf flags fmt.Errorf calls that stringify an error instead
// of wrapping it.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || format.Kind != token.STRING {
		return
	}
	if strings.Contains(format.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypeOf(arg)
		if t == nil {
			continue
		}
		if isErrorType(t) || implementsError(t) {
			pass.Reportf(call.Pos(), "fmt.Errorf stringifies an error argument without %%w; the cause is cut from the chain and errors.Is cannot match it")
			return
		}
	}
}

// implementsError reports whether t (or *t) satisfies the error
// interface — concrete error types passed as causes count too.
func implementsError(t types.Type) bool {
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
