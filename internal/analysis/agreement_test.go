package analysis_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"photon/internal/analysis"
)

// TestAnalyzerRaceAgreement is the analyzer/runtime agreement check:
// the racecheck fixture deliberately violates the locking discipline,
// and both the runtime race detector and photonvet must catch it — the
// analyzers statically, `go run -race` dynamically. The fixture also
// carries a lock-order inversion, the hazard class only the static
// side can see (a potential deadlock is not a data race).
func TestAnalyzerRaceAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the fixture under the race detector")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	// Static side: lockorder flags the inversion, atomicfield the
	// mixed atomic/plain access.
	pkg, err := analysis.LoadDir(root, filepath.Join("testdata", "racecheck"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{analysis.LockOrder, analysis.AtomicField})
	if err != nil {
		t.Fatal(err)
	}
	var sawInversion, sawRace bool
	for _, d := range diags {
		if d.Analyzer == "lockorder" && strings.Contains(d.Message, "inverts the declared lock order") {
			sawInversion = true
		}
		if d.Analyzer == "atomicfield" && strings.Contains(d.Message, "plain access races with it") {
			sawRace = true
		}
	}
	if !sawInversion {
		t.Errorf("lockorder missed the deliberate inversion; diagnostics: %v", diags)
	}
	if !sawRace {
		t.Errorf("atomicfield missed the deliberate mixed access; diagnostics: %v", diags)
	}

	// Dynamic side: the same fixture trips the race detector.
	cmd := exec.Command("go", "run", "-race", "./internal/analysis/testdata/racecheck")
	cmd.Dir = root
	out, _ := cmd.CombinedOutput()
	if !strings.Contains(string(out), "DATA RACE") {
		t.Errorf("go run -race did not report the race photonvet flagged; output:\n%s", out)
	}
}
