// Package analysistest runs photonvet analyzers over fixture packages
// and checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"photon/internal/analysis"
)

// Run loads the fixture package at testdata/<fixture> (relative to the
// calling test's package directory), applies one analyzer, and compares
// the surviving diagnostics against the fixture's expectations.
//
// Expectations use the x/tools analysistest convention: a comment
//
//	// want "regexp" "another regexp"
//
// on a source line demands exactly one diagnostic per quoted pattern on
// that line, each matching its regexp. Lines without a want comment
// must produce no diagnostics. //photon:allow directives in fixtures
// are honored before matching, so the escape hatch is testable: an
// allowed line simply carries no want.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	moduleDir, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(moduleDir, filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkFixture(t, pkg, diags)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkFixture(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		base := filepath.Base(d.Position.Filename)
		found := false
		for _, w := range wants {
			if w.matched || w.file != base || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				base, d.Position.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		tf := pkg.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantArgRe.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{
						file: filepath.Base(tf.Name()),
						line: pos.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}
	return wants
}
