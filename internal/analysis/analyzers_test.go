package analysis_test

import (
	"testing"

	"photon/internal/analysis"
	"photon/internal/analysis/analysistest"
)

func TestAtomicField(t *testing.T)  { analysistest.Run(t, analysis.AtomicField, "atomicfield") }
func TestBufRetain(t *testing.T)    { analysistest.Run(t, analysis.BufRetain, "bufretain") }
func TestErrWrap(t *testing.T)      { analysistest.Run(t, analysis.ErrWrap, "errwrap") }
func TestLockOrder(t *testing.T)    { analysistest.Run(t, analysis.LockOrder, "lockorder") }
func TestWireProto(t *testing.T)    { analysistest.Run(t, analysis.WireProto, "wireproto") }
func TestHotpathAlloc(t *testing.T) { analysistest.Run(t, analysis.HotpathAlloc, "hotpathalloc") }
func TestSnapshotPost(t *testing.T) { analysistest.Run(t, analysis.SnapshotPost, "snapshotpost") }
func TestTokenGen(t *testing.T)     { analysistest.Run(t, analysis.TokenGen, "tokengen") }

// TestSuiteOnTree is the dogfood gate in unit-test form: the full
// analyzer suite must be clean on the module itself, with every
// intentional exception carried by a used //photon:allow.
func TestSuiteOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(root, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
