package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseDirectives(t *testing.T, src string) (*token.FileSet, []*ast.File, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	return fset, files, CollectDirectives(fset, files, KnownNames(All()))
}

func TestHotpathPlacement(t *testing.T) {
	_, files, d := parseDirectives(t, `package p

// hot does things fast.
//
//photon:hotpath
func hot() {}

func cold() {}
`)
	var hot, cold *ast.FuncDecl
	for _, decl := range files[0].Decls {
		fn := decl.(*ast.FuncDecl)
		switch fn.Name.Name {
		case "hot":
			hot = fn
		case "cold":
			cold = fn
		}
	}
	if !d.Hotpath(hot) {
		t.Error("hot not marked hotpath")
	}
	if d.Hotpath(cold) {
		t.Error("cold wrongly marked hotpath")
	}
	if len(d.problems) != 0 {
		t.Errorf("unexpected problems: %v", d.problems)
	}
}

func TestHotpathOutsideDoc(t *testing.T) {
	_, _, d := parseDirectives(t, `package p

func f() {
	//photon:hotpath
	_ = 1
}
`)
	if len(d.problems) != 1 || !strings.Contains(d.problems[0].Message, "doc comment") {
		t.Errorf("want one doc-comment problem, got %v", d.problems)
	}
}

func TestAllowTargets(t *testing.T) {
	_, _, d := parseDirectives(t, `package p

func f() {
	x := 1 //photon:allow bufretain -- end-of-line form
	//photon:allow tokengen -- own-line form
	// an ordinary comment between directive and target
	y := 2
	//photon:allow bufretain,hotpathalloc -- stacked one
	//photon:allow snapshotpost -- stacked two
	z := 3
	_, _, _ = x, y, z
}
`)
	if len(d.problems) != 0 {
		t.Fatalf("unexpected problems: %v", d.problems)
	}
	byTarget := map[int][]string{}
	for _, a := range d.allows {
		for name := range a.analyzers {
			byTarget[a.target] = append(byTarget[a.target], name)
		}
	}
	// Line numbers in the source above: x:=1 is line 4, y:=2 line 7,
	// z:=3 line 10.
	if !d.suppress("bufretain", "dir_test.go", 4) {
		t.Error("end-of-line allow did not suppress on its own line")
	}
	if !d.suppress("tokengen", "dir_test.go", 7) {
		t.Error("own-line allow did not skip the interleaved comment")
	}
	if !d.suppress("bufretain", "dir_test.go", 10) || !d.suppress("snapshotpost", "dir_test.go", 10) {
		t.Errorf("stacked allows did not share the target line (targets: %v)", byTarget)
	}
	if d.suppress("hotpathalloc", "dir_test.go", 4) {
		t.Error("suppressed an analyzer the directive does not name")
	}
}

func TestMalformedAllows(t *testing.T) {
	_, _, d := parseDirectives(t, `package p

func f() {
	//photon:allow bufretain
	x := 1
	//photon:allow nosuchanalyzer -- justification
	y := 2
	//photon:allow -- justification only
	z := 3
	_, _, _ = x, y, z
}
`)
	if len(d.allows) != 0 {
		t.Errorf("malformed allows were accepted: %+v", d.allows)
	}
	var msgs []string
	for _, p := range d.problems {
		msgs = append(msgs, p.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, wanted := range []string{"needs a justification", "unknown analyzer", "lists no analyzers"} {
		if !strings.Contains(joined, wanted) {
			t.Errorf("missing problem %q in:\n%s", wanted, joined)
		}
	}
}

func TestUnusedAllowReported(t *testing.T) {
	fset, files, d := parseDirectives(t, `package p

func f() {
	x := 1 //photon:allow bufretain -- suppresses nothing
	_ = x
}
`)
	unused := d.unusedAllows(fset, files)
	if len(unused) != 1 || !strings.Contains(unused[0].Message, "suppresses nothing") {
		t.Errorf("want one unused-allow diagnostic, got %v", unused)
	}
	// After a matching suppression it is no longer unused.
	d.suppress("bufretain", "dir_test.go", 4)
	if got := d.unusedAllows(fset, files); len(got) != 0 {
		t.Errorf("used allow still reported: %v", got)
	}
}

func TestLockDirectiveTargets(t *testing.T) {
	_, _, d := parseDirectives(t, `package p

import "sync"

type s struct {
	mu sync.Mutex //photon:lock inline 10
	//photon:lock above 20
	other sync.Mutex
}
`)
	if len(d.problems) != 0 {
		t.Fatalf("unexpected problems: %v", d.problems)
	}
	inline := d.LockAt("dir_test.go", 6)
	if inline == nil || inline.name != "inline" || inline.rank != 10 {
		t.Errorf("end-of-line lock = %+v, want inline/10", inline)
	}
	above := d.LockAt("dir_test.go", 8)
	if above == nil || above.name != "above" || above.rank != 20 {
		t.Errorf("own-line lock = %+v, want above/20", above)
	}
}

func TestMalformedLockDirectives(t *testing.T) {
	_, _, d := parseDirectives(t, `package p

import "sync"

type s struct {
	a sync.Mutex //photon:lock onlyname
	b sync.Mutex //photon:lock name rank extra
	c sync.Mutex //photon:lock name notanumber
	d sync.Mutex //photon:lock name -3
	e sync.Mutex //photon:lock 9bad 10
}
`)
	if len(d.locks) != 0 {
		t.Errorf("malformed lock directives were accepted: %+v", d.locks)
	}
	var msgs []string
	for _, p := range d.problems {
		msgs = append(msgs, p.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, wanted := range []string{
		"wants exactly <name> <rank>, got 1 argument(s)",
		"wants exactly <name> <rank>, got 3 argument(s)",
		`rank "notanumber" is not a non-negative integer`,
		`rank "-3" is not a non-negative integer`,
		`name "9bad" is not an identifier`,
	} {
		if !strings.Contains(joined, wanted) {
			t.Errorf("missing problem %q in:\n%s", wanted, joined)
		}
	}
}

func TestConflictingLockRanks(t *testing.T) {
	fset, files, d := parseDirectives(t, `package p

import "sync"

type s struct {
	a sync.Mutex //photon:lock shared 10
	b sync.Mutex //photon:lock shared 20
}
`)
	_ = fset
	_ = files
	var msgs []string
	for _, p := range d.problems {
		msgs = append(msgs, p.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "declared with rank") {
		t.Errorf("conflicting ranks not reported:\n%s", joined)
	}
}
