package analysis

import (
	"fmt"
	"sort"
)

// RunPackage applies analyzers to one loaded package: directives are
// collected, each analyzer runs, allow directives suppress matching
// findings, and directive problems (malformed or unused allows) are
// appended. The returned diagnostics are position-sorted.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := CollectDirectives(pkg.Fset, pkg.Files, KnownNames(analyzers))
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			Directives: dirs,
			diags:      &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		if dirs.suppress(d.Analyzer, d.Position.Filename, d.Position.Line) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, dirs.problems...)
	out = append(out, dirs.unusedAllows(pkg.Fset, pkg.Files)...)
	sortDiagnostics(out)
	return out, nil
}

// Run loads the packages matched by patterns (under dir) and applies
// the analyzers to each.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i].Position, ds[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
