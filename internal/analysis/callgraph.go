package analysis

import (
	"go/ast"
	"go/types"
)

// Intra-package call-graph construction: the cross-function dataflow
// substrate under lockorder (and any future analyzer that needs
// function summaries). photonvet deliberately stops at the package
// boundary — export data carries no bodies, so cross-package effects
// are part of each package's documented contract rather than inferred —
// but inside a package it resolves every static call site and lets an
// analyzer propagate summaries (lock sets, blocking behavior) to a
// fixpoint over the resulting graph, recursion included.
//
// Resolution is static: direct function calls and method calls whose
// callee is a concrete *types.Func declared in this package. Calls
// through interfaces, function values, and closures are not resolved;
// analyzers treat them as opaque (their effects are invisible, the
// usual soundness trade of a vet that must not drown real findings in
// speculation).

// A callSite is one resolved static call to a same-package function.
type callSite struct {
	call   *ast.CallExpr
	callee *types.Func
}

// funcNode is one declared function or method in the package under
// analysis, with its resolved same-package call sites.
type funcNode struct {
	obj  *types.Func
	decl *ast.FuncDecl

	// calls lists resolved same-package call sites in body order.
	// Calls spawned by go statements are excluded: the callee runs on
	// its own stack, so its lock/blocking effects do not occur in the
	// caller's frame. Calls inside function literals are excluded for
	// the same reason — the literal's body runs when the closure is
	// invoked, not where it is written.
	calls []callSite
}

// callGraph is the package's static call graph.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph resolves every function declaration and its
// same-package static call sites.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*funcNode{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			g.nodes[obj] = &funcNode{obj: obj, decl: fn}
		}
	}
	for _, node := range g.nodes {
		node.calls = g.collectCalls(pass, node.decl.Body)
	}
	return g
}

// collectCalls gathers resolved same-package call sites under root,
// skipping go statements and function literal bodies.
func (g *callGraph) collectCalls(pass *Pass, root ast.Node) []callSite {
	var out []callSite
	skip := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			skip[n.Call] = true
			return true
		case *ast.CallExpr:
			if skip[n] {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			if _, ok := g.nodes[callee]; ok {
				out = append(out, callSite{call: n, callee: callee})
			}
		}
		return true
	})
	return out
}

// node returns the graph node for fn, or nil for functions not declared
// in this package.
func (g *callGraph) node(fn *types.Func) *funcNode { return g.nodes[fn] }

// fixpoint propagates per-function summaries over the call graph until
// nothing changes. merge folds a callee's summary into its caller's,
// returning true when the caller's summary grew; it must be monotonic
// (only ever add information) for termination. Recursive and mutually
// recursive functions converge because the summary lattice is finite.
func (g *callGraph) fixpoint(merge func(caller, callee *types.Func) bool) {
	for changed := true; changed; {
		changed = false
		for _, node := range g.nodes {
			for _, cs := range node.calls {
				if merge(node.obj, cs.callee) {
					changed = true
				}
			}
		}
	}
}
