package analysis

import (
	"go/ast"
	"go/types"
)

const memPkgPath = "photon/internal/mem"

// BufRetain enforces the pooled-buffer lifetime invariant: a slice
// obtained from (*mem.BufPool).Get is scratch owned by the calling
// frame and must be either returned to the pool or handed off to a
// callee whose contract covers it — never stashed where it outlives
// the operation that borrowed it. A retained pooled buffer is the
// worst kind of bug: Put recycles it under the holder and two
// operations silently share bytes.
//
// Mechanically, for every `buf := pool.Get(n)` (and every local alias
// or re-slice of buf) the analyzer reports:
//
//   - stores into struct fields, package-level variables, slice/map
//     elements, or through pointers;
//   - retention inside composite literals, except literals passed
//     directly as arguments to non-builtin calls (that is a hand-off:
//     the callee's contract owns the buffer, e.g. wireOp{local: ent}
//     given to postPair);
//   - appending the buffer itself as an element into a slice;
//   - capture by goroutines or escaping closures, and channel sends;
//   - returning the buffer;
//   - a Get whose result is never released at all — passed to no
//     function (not even Put). Any non-builtin call receiving the
//     buffer counts as a hand-off, so this is a backstop against
//     dropped Put calls on straight-line scratch use, not a full
//     leak analysis.
//
// GetOwned is exempt by design: its documented contract transfers
// ownership permanently (Completion.Data). Intentional retentions —
// e.g. an atomic result word parked in the token table until its
// completion — are documented in place with //photon:allow bufretain.
var BufRetain = &Analyzer{
	Name: "bufretain",
	Doc:  "flags pooled BufPool buffers that escape or are never released",
	Run:  runBufRetain,
}

func runBufRetain(pass *Pass) error {
	for _, f := range pass.Files {
		parents := buildParents(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			bufRetainFunc(pass, parents, fn)
		}
	}
	return nil
}

// poolGetRoot describes one pool.Get call bound to a local variable.
type poolGetRoot struct {
	call *ast.CallExpr
	obj  types.Object
}

func bufRetainFunc(pass *Pass, parents parentMap, fn *ast.FuncDecl) {
	var roots []poolGetRoot
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBufPoolGet(pass, call) {
			return true
		}
		// Only track results bound to a variable; a Get consumed
		// inline in argument position is an immediate hand-off.
		assign, ok := parents[call].(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		var lhs ast.Expr
		for i, rhs := range assign.Rhs {
			if rhs == call {
				lhs = assign.Lhs[i]
			}
		}
		if lhs == nil {
			return true
		}
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			pass.Reportf(call.Pos(), "pooled buffer from BufPool.Get is discarded without release")
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		roots = append(roots, poolGetRoot{call: call, obj: obj})
		return true
	})

	for _, root := range roots {
		tr := newBufTracker(pass, parents)
		tr.tainted[root.obj] = true
		tr.propagate(fn.Body)
		tr.analyze(fn.Body)
		for _, e := range tr.escapes {
			pass.Reportf(e.pos, "pooled buffer %s %s; it may be recycled under the holder (copy it, or document the hand-off with //photon:allow bufretain)", root.obj.Name(), e.what)
		}
		if tr.releases == 0 && len(tr.escapes) == 0 {
			pass.Reportf(root.call.Pos(), "pooled buffer %s is never released: no BufPool.Put and no hand-off call", root.obj.Name())
		}
	}
}

// isBufPoolGet matches calls to (*photon/internal/mem.BufPool).Get.
func isBufPoolGet(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "Get" && methodOnType(fn, memPkgPath, "BufPool")
}
