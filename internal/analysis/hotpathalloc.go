package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc enforces the PR-1 fast-path contract on functions whose
// doc comment carries //photon:hotpath: the eager put/send/atomic
// paths and the progress engine run at zero allocations per operation
// and take no blocking locks beyond the ones the design documents.
// The CI allocation guard catches a regression's symptom at runtime;
// this analyzer points at the exact line introducing it.
//
// Inside an annotated function's body it reports:
//
//   - make and new calls;
//   - append, unless the destination is the x[:0] reset-reuse idiom
//     (append(scratch[:0], ...) reuses warm capacity);
//   - slice and map composite literals, and &T{...} literals (struct
//     and array *value* literals live on the stack and pass);
//   - function literals (closure allocation), wherever they appear;
//   - calls into package fmt (formatting allocates, and its
//     interface{} arguments box);
//   - string<->[]byte / []rune conversions (they copy), and explicit
//     conversions of concrete values to interface types (they box);
//   - Lock and RLock on sync.Mutex / sync.RWMutex (TryLock is
//     non-blocking and passes — the progress engine's coalescing
//     entry is TryLock by design);
//   - go statements (goroutine spawn is not a per-op cost).
//
// Amortized warm-up growth, cold error paths, and deliberately-held
// short locks are documented in place with //photon:allow
// hotpathalloc and a justification.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags allocations and lock acquisition in //photon:hotpath functions",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.Directives.Hotpath(fn) {
				continue
			}
			hotpathFunc(pass, fn)
		}
	}
	return nil
}

func hotpathFunc(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, name)
		pass.Reportf(pos, format+" in //photon:hotpath function %s", args...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine")
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			// Struct and array value literals stay on the stack.
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			hotpathCall(pass, n, report)
		}
		return true
	})
}

func hotpathCall(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	// Conversions: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConversion(pass, call, tv.Type, report)
		return
	}
	if isBuiltinCall(pass.TypesInfo, call) {
		id := unparen(call.Fun).(*ast.Ident)
		switch id.Name {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			if len(call.Args) > 0 && isResetReuse(call.Args[0]) {
				return // append(x[:0], ...) reuses warm capacity
			}
			report(call.Pos(), "append may grow and allocate")
		}
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates and boxes its arguments", fn.Name())
		return
	}
	if fn.Name() == "Lock" || fn.Name() == "RLock" {
		if methodOnType(fn, "sync", "Mutex") || methodOnType(fn, "sync", "RWMutex") ||
			methodOnType(fn, "sync", "Locker") {
			report(call.Pos(), "%s acquires a blocking mutex", fn.Name())
		}
	}
}

// checkConversion flags copying string conversions and boxing
// interface conversions.
func checkConversion(pass *Pass, call *ast.CallExpr, target types.Type, report func(token.Pos, string, ...any)) {
	src := pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	if b, ok := su.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return // T(nil) allocates nothing
	}
	if b, ok := tu.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, ok := su.(*types.Slice); ok {
			report(call.Pos(), "string conversion copies the slice")
		}
		return
	}
	if s, ok := tu.(*types.Slice); ok {
		if b, ok := su.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			e, ok := s.Elem().Underlying().(*types.Basic)
			if ok && (e.Kind() == types.Byte || e.Kind() == types.Rune) {
				report(call.Pos(), "[]%s conversion copies the string", e.Name())
			}
		}
		return
	}
	if types.IsInterface(target) && !types.IsInterface(src) {
		report(call.Pos(), "conversion to interface type boxes the value")
	}
}

// isResetReuse matches the x[:0] (or x[0:0]) first argument of an
// append that reuses existing capacity.
func isResetReuse(e ast.Expr) bool {
	se, ok := unparen(e).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	high, ok := unparen(se.High).(*ast.BasicLit)
	if !ok || high.Value != "0" {
		return false
	}
	if se.Low != nil {
		low, ok := unparen(se.Low).(*ast.BasicLit)
		if !ok || low.Value != "0" {
			return false
		}
	}
	return true
}
