// Package analysis is photonvet's analyzer suite: a set of static
// checkers that mechanically enforce the invariants Photon's hot path
// depends on — pooled-buffer lifetimes, the snapshot-at-post backend
// contract, generation-tagged completion tokens, and allocation/lock
// freedom on annotated fast paths. Each invariant was previously
// enforced only by code review and runtime tests; encoding it as an
// analyzer lets the tree be refactored freely without silently
// regressing the performance story.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// Analyzer/Pass shape so the checkers could be ported to a standard
// multichecker verbatim, but it is built entirely on the standard
// library (go/ast, go/types, go/importer): this module carries no
// third-party dependencies, and the vet suite must not be the first.
// Packages are loaded by shelling out to `go list -export -deps` and
// type-checking from source against compiler export data — the same
// strategy x/tools' own minimal drivers use.
//
// Since v2 the suite is call-graph aware: callgraph.go resolves each
// package's static call sites and lets analyzers propagate per-function
// summaries (lock sets, blocking behavior) to a fixpoint, so lockorder
// sees an inversion even when the two acquisitions live three calls
// apart.
//
// Three source annotations steer the suite (see DESIGN.md "Static
// analysis & invariants" for the full grammar):
//
//	//photon:hotpath
//	    Placed in a function's doc comment. Marks the function as part
//	    of the allocation-free fast path; hotpathalloc checks its body.
//
//	//photon:lock <name> <rank>
//	    Placed on (or immediately above) a sync.Mutex/RWMutex/Locker
//	    struct-field or package-var declaration. Classifies the lock
//	    into the named class at the given rank in the package's
//	    acquisition order (lower rank = acquired first); lockorder
//	    enforces the order and reports unclassified declarations.
//
//	//photon:allow <analyzer>[,<analyzer>...] -- <justification>
//	    Suppresses the named analyzers' diagnostics on the same source
//	    line (end-of-line form) or on the next code line (own-line
//	    form; consecutive allow lines stack onto the same target). The
//	    justification is mandatory: every suppression documents why
//	    the invariant is intentionally bent. Unused allows are
//	    themselves reported, so suppressions cannot go stale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //photon:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer and collects its
// diagnostics.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	Directives *Directives

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by ident, consulting both Uses
// and Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String formats the diagnostic the way photonvet prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// All returns the full photonvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField, BufRetain, ErrWrap, HotpathAlloc,
		LockOrder, SnapshotPost, TokenGen, WireProto,
	}
}

// KnownNames returns the set of analyzer names valid in
// //photon:allow directives, including the driver's own directive
// checker.
func KnownNames(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{DirectiveAnalyzerName: true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	return known
}

// parentMap records the enclosing node of every node in a file, letting
// analyzers walk outward from an expression to the statement that
// consumes it (composite-literal handoff detection, goroutine capture).
type parentMap map[ast.Node]ast.Node

func buildParents(root ast.Node) parentMap {
	pm := parentMap{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isBuiltinCall reports whether call invokes a language builtin
// (append, copy, len, ...), which never retains ownership of its
// arguments the way an ordinary function can.
func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// methodOnType reports whether fn is a method whose receiver's named
// type is pkgPath.typeName (pointer receivers included).
func methodOnType(fn *types.Func, pkgPath, typeName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
