package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps` in dir over patterns, returning
// the packages matched by the patterns and an import-path -> export
// file map covering the whole dependency closure. Building export data
// is delegated to the go command, so the loader itself needs nothing
// beyond the standard library.
func goList(dir string, patterns []string) (targets []listPkg, exports map[string]string, err error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports = map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, nil, fmt.Errorf("go list output: %w", derr)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// newImporter builds a gc-export-data importer over the exports map.
func newImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (outside the module's dependency closure)", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

func typecheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", importPath)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Load type-checks the packages matched by patterns (relative to dir,
// which must be inside the module). Test files are not included: the
// invariants photonvet enforces live in shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir type-checks the single package rooted at pkgDir — typically
// an analysistest fixture under testdata, which the go tool itself
// refuses to list. Imports resolve against the export data of
// moduleDir's full package graph, so fixtures may import any module or
// standard-library package the module already depends on.
func LoadDir(moduleDir, pkgDir string) (*Package, error) {
	_, exports, err := goList(moduleDir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	fset := token.NewFileSet()
	imp := newImporter(fset, exports)
	return typecheck(fset, imp, "fixture/"+filepath.Base(pkgDir), pkgDir, goFiles)
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}
