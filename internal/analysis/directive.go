package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// DirectiveAnalyzerName is the pseudo-analyzer under which the driver
// reports malformed or unused //photon: directives. Directive problems
// are not themselves suppressible.
const DirectiveAnalyzerName = "directive"

const (
	hotpathDirective = "photon:hotpath"
	allowDirective   = "photon:allow"
	lockDirective    = "photon:lock"
)

// A lockDecl is one parsed //photon:lock <name> <rank> directive,
// classifying the mutex declared on its target line. name identifies
// the lock class; rank is its position in the package's declared
// acquisition order (lower ranks are acquired first / held outermost).
type lockDecl struct {
	name   string
	rank   int
	file   string
	line   int // source line of the comment itself
	target int // declaration line the classification applies to
	pos    token.Pos
}

// An allow is one parsed //photon:allow directive.
type allow struct {
	file      string
	line      int             // source line of the comment itself
	target    int             // code line the suppression applies to
	analyzers map[string]bool // names listed in the directive
	reason    string
	used      bool
}

// Directives holds one package's parsed //photon: annotations.
type Directives struct {
	hotpath    map[*ast.FuncDecl]bool
	allows     []*allow
	byLine     map[string]map[int][]*allow // file -> target line -> allows
	locks      []*lockDecl
	lockByLine map[string]map[int]*lockDecl // file -> target line -> lock class
	problems   []Diagnostic
}

// Hotpath reports whether fn's doc comment carries //photon:hotpath.
func (d *Directives) Hotpath(fn *ast.FuncDecl) bool { return d.hotpath[fn] }

// LockAt returns the //photon:lock classification targeting the given
// declaration line, or nil.
func (d *Directives) LockAt(file string, line int) *lockDecl { return d.lockByLine[file][line] }

// suppress consumes an allow matching (analyzer, file, line) if one
// exists, marking it used.
func (d *Directives) suppress(analyzer, file string, line int) bool {
	ok := false
	for _, a := range d.byLine[file][line] {
		if a.analyzers[analyzer] {
			a.used = true
			ok = true
		}
	}
	return ok
}

// unusedAllows reports allows that suppressed nothing — stale
// suppressions are bugs in their own right.
func (d *Directives) unusedAllows(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, a := range d.allows {
		if a.used {
			continue
		}
		pos := posForLine(fset, files, a.file, a.line)
		out = append(out, Diagnostic{
			Analyzer: DirectiveAnalyzerName,
			Pos:      pos,
			Position: token.Position{Filename: a.file, Line: a.line},
			Message:  "//photon:allow suppresses nothing (stale directive; remove it or fix the target line)",
		})
	}
	return out
}

// posForLine recovers a token.Pos on (file, line) for diagnostics.
func posForLine(fset *token.FileSet, files []*ast.File, filename string, line int) token.Pos {
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil || tf.Name() != filename {
			continue
		}
		if line <= tf.LineCount() {
			return tf.LineStart(line)
		}
	}
	return token.NoPos
}

// CollectDirectives parses every //photon: comment in files. known is
// the set of analyzer names valid in allow directives; anything else is
// reported as a problem.
func CollectDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) *Directives {
	d := &Directives{
		hotpath:    map[*ast.FuncDecl]bool{},
		byLine:     map[string]map[int][]*allow{},
		lockByLine: map[string]map[int]*lockDecl{},
	}
	for _, f := range files {
		d.collectFile(fset, f, known)
	}
	d.checkLockConsistency()
	return d
}

// checkLockConsistency rejects one lock-class name declared at two
// different ranks: the declared partial order would be ambiguous.
func (d *Directives) checkLockConsistency() {
	rankOf := map[string]*lockDecl{}
	for _, l := range d.locks {
		prev, ok := rankOf[l.name]
		if !ok {
			rankOf[l.name] = l
			continue
		}
		if prev.rank != l.rank {
			d.problems = append(d.problems, Diagnostic{
				Analyzer: DirectiveAnalyzerName,
				Pos:      l.pos,
				Position: token.Position{Filename: l.file, Line: l.line},
				Message: sprintf("//photon:lock %s declared with rank %d here but rank %d elsewhere",
					l.name, l.rank, prev.rank),
			})
		}
	}
}

func (d *Directives) collectFile(fset *token.FileSet, f *ast.File, known map[string]bool) {
	filename := fset.Position(f.Pos()).Filename

	// Lines occupied by code tokens: an allow comment sharing a line
	// with code is end-of-line (targets its own line); one alone on a
	// line targets the next code line below the directive block.
	codeLines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.File); ok {
			return true
		}
		// Doc comments are walked as AST nodes (Field.Doc, GenDecl.Doc,
		// ...) but they are not code: a directive alone on its own line
		// must stay in own-line form even when the parser attaches it to
		// the declaration below as documentation.
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		codeLines[fset.Position(n.End()).Line] = true
		return true
	})
	commentLines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			start := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				if !codeLines[l] {
					commentLines[l] = true
				}
			}
		}
	}

	// Map doc comment groups to their functions for hotpath placement.
	hotpathDocs := map[*ast.CommentGroup]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
			hotpathDocs[fn.Doc] = fn
		}
	}

	problem := func(pos token.Pos, format string, args ...any) {
		d.problems = append(d.problems, Diagnostic{
			Analyzer: DirectiveAnalyzerName,
			Pos:      pos,
			Position: fset.Position(pos),
			Message:  sprintf(format, args...),
		})
	}

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			trimmed := strings.TrimSpace(text)
			switch {
			case trimmed == hotpathDirective:
				if fn, ok := hotpathDocs[cg]; ok {
					d.hotpath[fn] = true
				} else {
					problem(c.Pos(), "//photon:hotpath must appear in a function's doc comment")
				}
			case strings.HasPrefix(trimmed, hotpathDirective):
				problem(c.Pos(), "malformed //photon:hotpath directive (no arguments allowed)")
			case strings.HasPrefix(trimmed, lockDirective):
				l := d.parseLock(c, trimmed, filename, problem)
				if l == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				l.line = line
				if codeLines[line] {
					l.target = line // end-of-line form
				} else {
					t := line + 1
					for commentLines[t] {
						t++
					}
					l.target = t
				}
				if d.lockByLine[filename] == nil {
					d.lockByLine[filename] = map[int]*lockDecl{}
				}
				if prev := d.lockByLine[filename][l.target]; prev != nil {
					problem(c.Pos(), "multiple //photon:lock directives target line %d (already classified as %q)", l.target, prev.name)
					continue
				}
				d.locks = append(d.locks, l)
				d.lockByLine[filename][l.target] = l
			case strings.HasPrefix(trimmed, allowDirective):
				a := d.parseAllow(c, trimmed, filename, fset, known, problem)
				if a == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				a.line = line
				if codeLines[line] {
					a.target = line // end-of-line form
				} else {
					// Own-line form: skip the rest of the comment
					// block (stacked allows, ordinary comments) down
					// to the first code line.
					t := line + 1
					for commentLines[t] {
						t++
					}
					a.target = t
				}
				d.allows = append(d.allows, a)
				if d.byLine[filename] == nil {
					d.byLine[filename] = map[int][]*allow{}
				}
				d.byLine[filename][a.target] = append(d.byLine[filename][a.target], a)
			}
		}
	}
}

// parseLock parses "photon:lock <name> <rank>". name is an identifier
// for the lock class; rank must be a non-negative decimal integer.
func (d *Directives) parseLock(c *ast.Comment, trimmed, filename string, problem func(token.Pos, string, ...any)) *lockDecl {
	rest := strings.TrimSpace(strings.TrimPrefix(trimmed, lockDirective))
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		problem(c.Pos(), "//photon:lock wants exactly <name> <rank>, got %d argument(s)", len(fields))
		return nil
	}
	name := fields[0]
	if !validLockName(name) {
		problem(c.Pos(), "//photon:lock name %q is not an identifier", name)
		return nil
	}
	rank, err := strconv.Atoi(fields[1])
	if err != nil || rank < 0 {
		problem(c.Pos(), "//photon:lock rank %q is not a non-negative integer", fields[1])
		return nil
	}
	return &lockDecl{name: name, rank: rank, file: filename, pos: c.Pos()}
}

// validLockName accepts identifier-shaped lock class names.
func validLockName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9', r == '-', r == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseAllow parses "photon:allow name1,name2 -- justification".
func (d *Directives) parseAllow(c *ast.Comment, trimmed, filename string, fset *token.FileSet, known map[string]bool, problem func(token.Pos, string, ...any)) *allow {
	rest := strings.TrimSpace(strings.TrimPrefix(trimmed, allowDirective))
	names, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		problem(c.Pos(), "//photon:allow needs a justification: //photon:allow <analyzer> -- <why>")
		return nil
	}
	a := &allow{file: filename, analyzers: map[string]bool{}, reason: strings.TrimSpace(reason)}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !known[name] {
			problem(c.Pos(), "//photon:allow names unknown analyzer %q", name)
			return nil
		}
		a.analyzers[name] = true
	}
	if len(a.analyzers) == 0 {
		problem(c.Pos(), "//photon:allow lists no analyzers")
		return nil
	}
	return a
}

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }
