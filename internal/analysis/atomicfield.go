package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField is static race detection for mixed atomic/plain access to
// struct fields — the shm ring head/tail cursors and the shard
// parked/credit mirrors are read by one goroutine while another
// publishes, and a single plain load of such a field is a data race the
// race detector only catches when the schedule cooperates.
//
// Two field populations are checked:
//
//   - Old-API fields: any field whose address is passed to a sync/atomic
//     function (atomic.LoadUint64(&x.f), atomic.AddInt32(&x.f, 1), ...)
//     anywhere in the package is atomic everywhere. Every other plain
//     read or write of that field is reported.
//
//   - Typed fields (atomic.Uint64, atomic.Int32, atomic.Bool,
//     atomic.Pointer, atomic.Value, ...): access must go through the
//     type's methods. Assigning to the field or copying its value out
//     smuggles a plain, unsynchronized memory access past the API (and
//     a copy also forks the variable), so both are reported.
//
// The analysis is package-wide but field-identity based, so accesses
// through any path (x.f, p.s[i].f) to the same field declaration are
// correlated.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

// atomicFuncs is the sync/atomic free-function API operating on plain
// integer/pointer fields via their address.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find old-API atomic fields — fields whose address feeds a
	// sync/atomic call — and remember those sanctioned &x.f sites.
	atomicByAddr := map[*types.Var]token.Pos{} // field -> first atomic-use pos
	sanctioned := map[ast.Expr]bool{}          // the &x.f argument expressions
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldVarOf(pass, sel)
			if fld == nil {
				return true
			}
			if _, seen := atomicByAddr[fld]; !seen {
				atomicByAddr[fld] = call.Pos()
			}
			sanctioned[sel] = true
			return true
		})
	}

	// Pass 2: audit every field selector in the package.
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldVarOf(pass, sel)
			if fld == nil {
				return true
			}
			if _, isAtomic := atomicByAddr[fld]; isAtomic && !sanctioned[sel] {
				pass.Reportf(sel.Pos(), "field %s is accessed via sync/atomic elsewhere in this package; plain access races with it",
					fld.Name())
				return true
			}
			if tname := atomicTypeName(fld.Type()); tname != "" {
				if bad := plainTypedAtomicUse(parents, sel); bad != "" {
					pass.Reportf(sel.Pos(), "%s field %s: %s bypasses the atomic API", tname, fld.Name(), bad)
				}
			}
			return true
		})
	}
	return nil
}

// fieldVarOf resolves sel to the struct field it selects, or nil.
func fieldVarOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// atomicTypeName returns "atomic.Uint64" etc. when t is one of the
// typed sync/atomic wrappers, or "".
func atomicTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		// atomic.Pointer[T] instantiations carry the origin's name.
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return "sync/atomic." + obj.Name()
	}
	return ""
}

// plainTypedAtomicUse classifies how a typed-atomic field selector is
// used; a non-empty return describes a plain (racy) use. Legal uses:
// method calls (x.f.Load()), taking the address (&x.f, pointer
// receivers resolve through this too), and appearing as the operand of
// a further selection (x.f.v never occurs outside sync/atomic itself).
func plainTypedAtomicUse(parents parentMap, sel *ast.SelectorExpr) string {
	parent := parents[sel]
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.f.Load() — the method selection; or a deeper field path
		// where sel is the X (x.f in x.f.y — only methods exist, fine).
		return ""
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return "" // &x.f: address passed on, API preserved
		}
		return "value read"
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if unparen(lhs) == sel {
				return "plain assignment"
			}
		}
		return "value copy"
	case *ast.ValueSpec:
		return "value copy"
	case *ast.CallExpr:
		// Argument position (a method call would have sel under a
		// SelectorExpr, handled above): copies the atomic by value.
		return "value copy"
	case *ast.BinaryExpr:
		return "plain comparison"
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.ReturnStmt:
		return "value copy"
	case *ast.RangeStmt:
		if p.X == sel {
			return "value copy"
		}
	}
	return ""
}
