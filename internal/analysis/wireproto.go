package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// WireProto cross-checks each package's wire protocol: every opcode an
// encoder writes must have a matching arm in the peer's decoder switch,
// every decoder arm must correspond to an opcode somebody encodes, and
// frame-length arithmetic must be spelled with named constants. The
// tree carries three parallel wire formats (tcp v2 frames, shm SPSC
// frames, nicsim fabric frames); a missing arm fails at the peer as a
// protocol error, and a dead arm is untested code that will silently
// rot — neither is caught by the compiler because opcodes are just
// integers.
//
// Protocol groups are discovered, not configured: any switch statement
// whose cases name two or more integer constants from one const block
// seeds a group. The group's full membership is every package constant
// of the same declared type (typed opcode sets like nicsim's
// frameType), or — for untyped blocks — every constant in the block
// sharing the switch members' common name prefix (op*, atomic*), which
// keeps flag and length constants declared alongside the opcodes out
// of the opcode set. The switch covering the most members is the
// group's primary decoder.
//
// Reachability checks apply only to groups that actually cross a byte
// boundary — a member stored into a byte slice (hdr[4] = opWrite) or
// converted to byte, or a shared named type whose underlying type is
// uint8. Plain in-memory enums dispatch through switches too, but
// their "missing arm" is usually an intentional fall-through default,
// not a protocol hole. Exported constants are also exempt from
// reachability: their encoders live in other packages, and photonvet
// loads dependencies from export data, which carries no function
// bodies.
//
// Diagnostics, reported at the constant's declaration:
//
//   - missing arm: the constant is used as a value (encoded into a
//     frame, passed to a writer) but appears in no switch case and no
//     ==/!= comparison anywhere in the package;
//   - dead opcode: the constant has a decoder arm but is never used as
//     a value, so no encoder can ever produce it;
//   - duplicate value: two group members share a constant value, so
//     the decoder cannot distinguish them.
//
// Additionally, in files that declare or decode a protocol group, a
// length comparison against a bare integer literal (len(b) < 17) whose
// value matches no named package constant is reported: encoder and
// decoder can only be proven to agree on body lengths when both sides
// name the same constant.
var WireProto = &Analyzer{
	Name: "wireproto",
	Doc:  "encoder opcodes must have decoder arms, decoder arms must be reachable, frame lengths must be named",
	Run:  runWireProto,
}

// protoConst is one integer constant eligible for opcode grouping.
type protoConst struct {
	obj   *types.Const
	name  string
	val   int64
	pos   token.Pos
	block int // index of the declaring const GenDecl

	caseUse   bool // appears in a switch case
	cmpUse    bool // appears in an ==/!= comparison
	valueUse  bool // any other (encoding) use
	byteUse   bool // stored into a []byte or converted to byte
	caseSites map[*ast.SwitchStmt]bool
}

func runWireProto(pass *Pass) error {
	consts, blocks, declRanges := collectProtoConsts(pass)
	if len(consts) == 0 {
		return nil
	}
	groupFiles := classifyProtoUses(pass, consts, declRanges)

	// Seed groups from switches: (block, key) -> member set.
	type groupKey struct {
		block int
		key   string
	}
	groups := map[groupKey]map[*protoConst]bool{}
	primary := map[groupKey]*ast.SwitchStmt{}
	primaryN := map[groupKey]int{}
	for _, pc := range consts {
		for sw := range pc.caseSites {
			// Members of pc's block named in this switch.
			var members []*protoConst
			for _, other := range blocks[pc.block] {
				if other.caseSites[sw] {
					members = append(members, other)
				}
			}
			if len(members) < 2 {
				continue
			}
			gk := groupKey{block: pc.block, key: groupID(members)}
			set := groups[gk]
			if set == nil {
				set = map[*protoConst]bool{}
				groups[gk] = set
			}
			for _, m := range expandGroup(blocks[pc.block], members) {
				set[m] = true
			}
			if len(members) > primaryN[gk] {
				primaryN[gk] = len(members)
				primary[gk] = sw
			}
		}
	}

	protoFiles := map[string]bool{}
	for gk, set := range groups {
		sw := primary[gk]
		swPos := pass.Fset.Position(sw.Pos())
		wire := isWireGroup(set)
		if wire {
			protoFiles[swPos.Filename] = true
		}
		byVal := map[int64]*protoConst{}
		for pc := range set {
			if wire {
				protoFiles[pass.Fset.Position(pc.pos).Filename] = true
			}
			if dup, ok := byVal[pc.val]; ok {
				first, second := dup, pc
				if second.pos < first.pos {
					first, second = second, first
				}
				pass.Reportf(second.pos, "opcode %s duplicates the value %d of %s; the decoder cannot distinguish them",
					second.name, second.val, first.name)
			} else {
				byVal[pc.val] = pc
			}
			if !wire || pc.obj.Exported() {
				continue
			}
			decoded := pc.caseUse || pc.cmpUse
			switch {
			case pc.valueUse && !decoded:
				pass.Reportf(pc.pos, "opcode %s is encoded but the decoder switch at %s:%d has no arm for it",
					pc.name, shortFile(swPos.Filename), swPos.Line)
			case !pc.valueUse && pc.caseSites[sw]:
				pass.Reportf(pc.pos, "opcode %s has a decoder arm but is never encoded (dead opcode)", pc.name)
			}
		}
	}

	checkLengthLiterals(pass, protoFiles, groupFiles)
	return nil
}

// collectProtoConsts gathers every package-level integer constant
// declared in a const block, indexed by object and by block.
func collectProtoConsts(pass *Pass) (map[types.Object]*protoConst, map[int][]*protoConst, []ast.Node) {
	consts := map[types.Object]*protoConst{}
	blocks := map[int][]*protoConst{}
	var declRanges []ast.Node
	blockID := 0
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			declRanges = append(declRanges, gd)
			id := blockID
			blockID++
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.ObjectOf(name).(*types.Const)
					if !ok || obj.Val().Kind() != constant.Int {
						continue
					}
					v, exact := constant.Int64Val(obj.Val())
					if !exact {
						continue
					}
					pc := &protoConst{
						obj: obj, name: name.Name, val: v,
						pos: name.Pos(), block: id,
						caseSites: map[*ast.SwitchStmt]bool{},
					}
					consts[obj] = pc
					blocks[id] = append(blocks[id], pc)
				}
			}
		}
	}
	return consts, blocks, declRanges
}

// classifyProtoUses walks every use of the collected constants and
// classifies it as case, comparison, or value (encode) use. Uses
// inside const blocks (derived length constants) are declaration
// plumbing, not protocol traffic, and are skipped. Returns the set of
// files containing at least one collected constant use, for the
// length-literal check's file scoping.
func classifyProtoUses(pass *Pass, consts map[types.Object]*protoConst, declRanges []ast.Node) map[string]bool {
	files := map[string]bool{}
	inConstDecl := func(pos token.Pos) bool {
		for _, d := range declRanges {
			if d.Pos() <= pos && pos < d.End() {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		parents := buildParents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			pc := consts[obj]
			if pc == nil || inConstDecl(id.Pos()) {
				return true
			}
			files[pass.Fset.Position(id.Pos()).Filename] = true
			ctx := protoUseContext(pass, parents, id)
			switch ctx.kind {
			case "case":
				pc.caseUse = true
				pc.caseSites[ctx.sw] = true
			case "cmp":
				pc.cmpUse = true
			default:
				pc.valueUse = true
			}
			if ctx.byte {
				pc.byteUse = true
			}
			return true
		})
	}
	return files
}

type protoUse struct {
	kind string // "case", "cmp", or "value"
	sw   *ast.SwitchStmt
	byte bool // the value crosses a byte boundary (wire encoding)
}

// protoUseContext climbs from a constant reference to its use site.
// The climb crosses only wrapper expressions (parens, conversions like
// byte(op), unary ops) so `buf[0] = byte(op)` is a value use while
// `case op:` and `got == op` are decode uses.
func protoUseContext(pass *Pass, parents parentMap, id *ast.Ident) protoUse {
	var n ast.Node = id
	isByte := false
	value := func() protoUse { return protoUse{kind: "value", byte: isByte} }
	for {
		p := parents[n]
		switch p := p.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.CallExpr:
			// A conversion wrapping exactly this operand keeps
			// climbing; anything else (argument passing) is encoding.
			if len(p.Args) == 1 && p.Args[0] == n && p.Fun != n {
				if isUint8(pass.TypeOf(p)) {
					isByte = true
				}
				n = p
				continue
			}
			return value()
		case *ast.UnaryExpr:
			n = p
			continue
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				return protoUse{kind: "cmp", byte: isByte}
			}
			return value()
		case *ast.CaseClause:
			if e, ok := n.(ast.Expr); ok && inCaseList(p, e) {
				if sw, ok := parents[parents[p]].(*ast.SwitchStmt); ok {
					return protoUse{kind: "case", sw: sw, byte: isByte}
				}
				return protoUse{kind: "cmp", byte: isByte} // type-switch/select shapes
			}
			return value()
		case *ast.AssignStmt:
			// hdr[4] = op: a store into a byte slice element is the
			// canonical encode.
			if e, ok := n.(ast.Expr); ok && len(p.Lhs) == len(p.Rhs) {
				for i, rhs := range p.Rhs {
					if rhs != e {
						continue
					}
					if ix, ok := unparen(p.Lhs[i]).(*ast.IndexExpr); ok && isByteSlice(pass.TypeOf(ix.X)) {
						isByte = true
					}
				}
			}
			return value()
		default:
			return value()
		}
	}
}

func isUint8(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// isWireGroup reports whether the group's values cross a byte
// boundary: some member is byte-encoded, or the members share a named
// type whose underlying type is uint8.
func isWireGroup(set map[*protoConst]bool) bool {
	var members []*protoConst
	for pc := range set {
		if pc.byteUse {
			return true
		}
		members = append(members, pc)
	}
	if len(members) == 0 {
		return false
	}
	if sharedNamedType(members) == "" {
		return false
	}
	named := members[0].obj.Type().(*types.Named)
	return isUint8(named)
}

func inCaseList(cc *ast.CaseClause, e ast.Expr) bool {
	for _, le := range cc.List {
		if le == e {
			return true
		}
	}
	return false
}

// groupID keys a seed switch's members: their shared declared named
// type when there is one, else their common name prefix.
func groupID(members []*protoConst) string {
	if t := sharedNamedType(members); t != "" {
		return "type:" + t
	}
	return "prefix:" + commonPrefix(members)
}

func sharedNamedType(members []*protoConst) string {
	var name string
	for _, m := range members {
		named, ok := m.obj.Type().(*types.Named)
		if !ok {
			return ""
		}
		if name == "" {
			name = named.Obj().Name()
		} else if name != named.Obj().Name() {
			return ""
		}
	}
	return name
}

func commonPrefix(members []*protoConst) string {
	p := members[0].name
	for _, m := range members[1:] {
		for !strings.HasPrefix(m.name, p) {
			p = p[:len(p)-1]
			if p == "" {
				return ""
			}
		}
	}
	return p
}

// expandGroup widens the seed members to the full opcode set: all
// same-typed constants package-wide, or all same-prefix constants in
// the seed's block.
func expandGroup(block []*protoConst, seed []*protoConst) []*protoConst {
	key := groupID(seed)
	var out []*protoConst
	for _, pc := range block {
		switch {
		case strings.HasPrefix(key, "type:"):
			if named, ok := pc.obj.Type().(*types.Named); ok && "type:"+named.Obj().Name() == key {
				out = append(out, pc)
			}
		case key == "prefix:":
			// No shared prefix: the group is exactly the seed.
		default:
			if strings.HasPrefix(pc.name, strings.TrimPrefix(key, "prefix:")) {
				out = append(out, pc)
			}
		}
	}
	if len(out) == 0 {
		out = seed
	}
	return out
}

// checkLengthLiterals reports bare integer literals compared against
// len() in protocol files when no named constant carries that value.
func checkLengthLiterals(pass *Pass, protoFiles, constUseFiles map[string]bool) {
	namedVals := map[int64]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Val().Kind() == constant.Int {
			if v, exact := constant.Int64Val(c.Val()); exact {
				namedVals[v] = true
			}
		}
	}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if !protoFiles[fname] && !constUseFiles[fname] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			var lit *ast.BasicLit
			if isLenCall(pass, be.X) {
				lit, _ = unparen(be.Y).(*ast.BasicLit)
			} else if isLenCall(pass, be.Y) {
				lit, _ = unparen(be.X).(*ast.BasicLit)
			}
			if lit == nil || lit.Kind != token.INT {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || tv.Value == nil {
				return true
			}
			v, exact := constant.Int64Val(tv.Value)
			if !exact || v < 4 || namedVals[v] {
				return true
			}
			pass.Reportf(lit.Pos(), "frame-length literal %d is not backed by a named constant; encoder and decoder cannot be checked for agreement", v)
			return true
		})
	}
}

func isLenCall(pass *Pass, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !isBuiltinCall(pass.TypesInfo, call) {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len"
}

// shortFile trims a path to its last two segments for diagnostics.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
