package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// TokenGen enforces the completion-token generation invariant from
// PR 1: a backend completion token packs shard (bits 0..3), slot index
// (4..31), and slot generation (32..63), and the generation is the
// only thing separating a live completion from a stale or duplicated
// one after the slot recycles. Any code that narrows a token to its
// low 32 bits — deriving a slot or shard, converting to a smaller
// integer, masking the high half away — without also consulting the
// generation (tok >> 32) in the same function is comparing or storing
// tokens that can no longer be told apart across recycles.
//
// The analyzer identifies token values by name and type: uint64
// parameters and locals named tok/token (and aliases assigned from
// them), plus selections of a uint64 struct field named Token
// (core.BackendCompletion's shape). Within one function it reports:
//
//   - conversions of a token to an integer type narrower than 64 bits
//     (uint32(tok), int16(tok), ...);
//   - masking a token with a constant whose high 32 bits are zero
//     (tok & 0xffffffff, tok & (shards-1));
//
// unless the function also extracts the generation via a right shift
// of 32 or more (uint32(tok >> 32) is exactly the sanctioned idiom —
// tokenTable.take both indexes and checks the generation, so it
// passes). Name-based identification is a deliberate vet-style
// trade-off: tokens are plain uint64s on the Backend API, so there is
// no distinct type to latch onto without changing that API.
var TokenGen = &Analyzer{
	Name: "tokengen",
	Doc:  "flags completion tokens narrowed or compared without their generation tag",
	Run:  runTokenGen,
}

func runTokenGen(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			tokenGenFunc(pass, fn)
		}
	}
	return nil
}

func tokenGenFunc(pass *Pass, fn *ast.FuncDecl) {
	tainted := map[types.Object]bool{}

	// Seed: uint64 params and locals literally named tok/token.
	seed := func(id *ast.Ident) {
		obj := pass.ObjectOf(id)
		if obj == nil || !isUint64(obj.Type()) {
			return
		}
		if n := id.Name; n == "tok" || n == "token" {
			tainted[obj] = true
		}
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			seed(id)
		}
		return true
	})

	isToken := func(e ast.Expr) bool {
		switch e := unparen(e).(type) {
		case *ast.Ident:
			obj := pass.ObjectOf(e)
			return obj != nil && tainted[obj]
		case *ast.SelectorExpr:
			return e.Sel.Name == "Token" && isUint64(pass.TypeOf(e))
		}
		return false
	}
	// tokenDerived: a token possibly shifted/masked but still carrying
	// token bits (tok >> 4, tok & mask).
	var tokenDerived func(e ast.Expr) bool
	tokenDerived = func(e ast.Expr) bool {
		if isToken(e) {
			return true
		}
		if b, ok := unparen(e).(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.SHR, token.SHL, token.AND, token.OR, token.XOR:
				return tokenDerived(b.X) || tokenDerived(b.Y)
			}
		}
		return false
	}

	// Aliases: t := tok.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isToken(rhs) {
					continue
				}
				id, ok := unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj != nil && !tainted[obj] && isUint64(obj.Type()) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Does this function extract the generation anywhere? A right
	// shift of >= 32 on a token-derived value.
	genExtracted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.SHR || !tokenDerived(b.X) {
			return true
		}
		if c, ok := constValue(pass, b.Y); ok && c >= 32 {
			genExtracted = true
		}
		return true
	})
	if genExtracted {
		return
	}

	// Report narrowing uses.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			tv, ok := pass.TypesInfo.Types[n.Fun]
			if !ok || !tv.IsType() || len(n.Args) != 1 {
				return true
			}
			if !isNarrowInt(tv.Type) || !tokenDerived(n.Args[0]) {
				return true
			}
			pass.Reportf(n.Pos(), "token narrowed to %s without consulting its generation (bits 32..63); stale completions become indistinguishable after the slot recycles", tv.Type.String())
		case *ast.BinaryExpr:
			if n.Op != token.AND {
				return true
			}
			var maskSide ast.Expr
			switch {
			case tokenDerived(n.X):
				maskSide = n.Y
			case tokenDerived(n.Y):
				maskSide = n.X
			default:
				return true
			}
			if c, ok := constValue(pass, maskSide); ok && c < 1<<32 {
				pass.Reportf(n.Pos(), "token masked to its low 32 bits without consulting its generation (bits 32..63); compare the generation too, or extract it with tok >> 32")
			}
		}
		return true
	})
}

func isUint64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// isNarrowInt matches integer types narrower than 64 bits. int/uint
// stay exempt: they are 64-bit on every platform Photon targets, and
// flagging them would punish ordinary indexing.
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Int32,
		types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// constValue evaluates e as a non-negative integer constant.
func constValue(pass *Pass, e ast.Expr) (uint64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	u, ok := constant.Uint64Val(v)
	return u, ok
}
