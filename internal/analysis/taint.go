package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// bufTracker follows one tracked buffer (a pooled scratch slice or a
// backend payload parameter) through a single function body and
// classifies every way it can outlive the function's stack frame. The
// tracking is intentionally syntactic and intraprocedural: photonvet
// is a vet, not an escape analysis — anything it cannot prove local is
// reported, and intentional ownership transfers are documented with
// //photon:allow.
type bufTracker struct {
	pass    *Pass
	parents parentMap

	// tainted holds the buffer and every local alias created from it
	// (y := x, y := x[a:b], y = append(x[:0], ...)).
	tainted map[types.Object]bool

	// payloadField, when non-empty, extends aliasing through struct
	// elements: for a root slice param like []WriteReq, range/index
	// element objects land in structs and <elem>.<payloadField> is
	// treated as the tracked buffer.
	payloadField string
	structs      map[types.Object]bool
	rootSlices   map[types.Object]bool

	// releases counts hand-offs: the buffer passed as an argument to
	// any non-builtin call (BufPool.Put, a backend post, an encoder).
	releases int

	// escapes collects retention findings.
	escapes []escapeFinding
}

type escapeFinding struct {
	pos  token.Pos
	what string
}

func newBufTracker(pass *Pass, parents parentMap) *bufTracker {
	return &bufTracker{
		pass:       pass,
		parents:    parents,
		tainted:    map[types.Object]bool{},
		structs:    map[types.Object]bool{},
		rootSlices: map[types.Object]bool{},
	}
}

// isLocalObj reports whether obj is function-local (including
// parameters); package-level variables are never aliases — storing
// into one is an escape.
func isLocalObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.Parent() == nil {
		return true // struct field / param list var
	}
	scope := v.Parent()
	return scope != v.Pkg().Scope()
}

// isAlias reports whether e evaluates to the tracked buffer (or a
// re-slice of it).
func (tr *bufTracker) isAlias(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := tr.pass.ObjectOf(e)
		return obj != nil && tr.tainted[obj]
	case *ast.SliceExpr:
		return tr.isAlias(e.X)
	case *ast.SelectorExpr:
		if tr.payloadField == "" || e.Sel.Name != tr.payloadField {
			return false
		}
		switch x := unparen(e.X).(type) {
		case *ast.Ident:
			obj := tr.pass.ObjectOf(x)
			return obj != nil && tr.structs[obj]
		case *ast.IndexExpr:
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				obj := tr.pass.ObjectOf(id)
				return obj != nil && tr.rootSlices[obj]
			}
		}
		return false
	case *ast.CallExpr:
		// append(x, ...) and append(x[:0], ...) may return x's array.
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" &&
			isBuiltinCall(tr.pass.TypesInfo, e) && len(e.Args) > 0 {
			return tr.isAlias(e.Args[0])
		}
	}
	return false
}

// containsAlias reports whether any tracked buffer appears anywhere
// inside e.
func (tr *bufTracker) containsAlias(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && tr.isAlias(ex) {
			found = true
			return false
		}
		return true
	})
	return found
}

// propagate runs the alias fixpoint over body: every assignment of an
// alias to a local variable taints that variable too.
func (tr *bufTracker) propagate(body ast.Node) {
	for changed := true; changed; {
		changed = false
		add := func(id *ast.Ident) {
			if id.Name == "_" {
				return
			}
			obj := tr.pass.ObjectOf(id)
			if obj == nil || tr.tainted[obj] || !isLocalObj(obj) {
				return
			}
			tr.tainted[obj] = true
			changed = true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if !tr.isAlias(rhs) {
						continue
					}
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok {
						add(id)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					if tr.isAlias(v) {
						add(n.Names[i])
					}
				}
			case *ast.RangeStmt:
				// for _, r := range rootSlice: r's payload field is
				// the tracked buffer.
				if tr.payloadField == "" || n.Value == nil {
					return true
				}
				id, ok := unparen(n.X).(*ast.Ident)
				if !ok {
					return true
				}
				obj := tr.pass.ObjectOf(id)
				if obj == nil || !tr.rootSlices[obj] {
					return true
				}
				if vid, ok := unparen(n.Value).(*ast.Ident); ok && vid.Name != "_" {
					vobj := tr.pass.ObjectOf(vid)
					if vobj != nil && !tr.structs[vobj] {
						tr.structs[vobj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
}

func (tr *bufTracker) escape(pos token.Pos, what string) {
	tr.escapes = append(tr.escapes, escapeFinding{pos: pos, what: what})
}

// analyze walks body once, classifying stores, captures, sends,
// returns, and hand-offs of the tracked buffer.
func (tr *bufTracker) analyze(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if tr.isAlias(rhs) {
						tr.classifyStore(n.Lhs[i], rhs.Pos())
					}
				}
			}
		case *ast.SendStmt:
			if tr.isAlias(n.Value) {
				tr.escape(n.Value.Pos(), "sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if tr.isAlias(r) {
					tr.escape(r.Pos(), "returned to the caller")
				}
			}
		case *ast.CompositeLit:
			tr.checkCompositeLit(n)
		case *ast.CallExpr:
			tr.checkCall(n)
		case *ast.FuncLit:
			tr.checkFuncLit(n)
		}
		return true
	})
}

// classifyStore reports stores of an alias into anything that outlives
// the statement.
func (tr *bufTracker) classifyStore(lhs ast.Expr, pos token.Pos) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		obj := tr.pass.ObjectOf(lhs)
		if obj != nil && !isLocalObj(obj) {
			tr.escape(pos, "stored into package-level variable "+lhs.Name)
		}
	case *ast.SelectorExpr:
		tr.escape(pos, "stored into struct field "+lhs.Sel.Name)
	case *ast.IndexExpr:
		tr.escape(pos, "stored into a slice or map element")
	case *ast.StarExpr:
		tr.escape(pos, "stored through a pointer")
	}
}

// checkCompositeLit flags composite literals that retain an alias,
// exempting literals handed directly to a non-builtin call (the callee
// inherits the buffer under its own documented contract, e.g.
// SendWR{Local: buf} passed to PostSend).
func (tr *bufTracker) checkCompositeLit(cl *ast.CompositeLit) {
	holds := false
	for _, el := range cl.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if tr.isAlias(v) {
			holds = true
			break
		}
	}
	if !holds {
		return
	}
	// Climb to the node that consumes the literal.
	var node ast.Node = cl
	for {
		parent := tr.parents[node]
		switch p := parent.(type) {
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				node = p
				continue
			}
		case *ast.CompositeLit, *ast.KeyValueExpr, *ast.ParenExpr:
			node = parent
			continue
		case *ast.CallExpr:
			isArg := false
			for _, a := range p.Args {
				if a == node {
					isArg = true
				}
			}
			if isArg && !isBuiltinCall(tr.pass.TypesInfo, p) {
				if _, ok := tr.parents[p].(*ast.GoStmt); ok {
					tr.escape(cl.Pos(), "captured by a goroutine via composite literal")
				}
				return // hand-off to the callee's contract
			}
			tr.escape(cl.Pos(), "retained in a composite literal (builtin call)")
			return
		}
		tr.escape(cl.Pos(), "retained in a composite literal")
		return
	}
}

// checkCall counts hand-offs and flags goroutine arguments and
// retaining appends.
func (tr *bufTracker) checkCall(call *ast.CallExpr) {
	if isBuiltinCall(tr.pass.TypesInfo, call) {
		// append(dst, buf) retains buf when buf is appended as an
		// element (a [][]byte collecting payloads); append(dst,
		// buf...) spreads and copies bytes, which is safe.
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			for i, a := range call.Args {
				if i == 0 || !tr.isAlias(a) {
					continue
				}
				if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
					continue
				}
				tr.escape(a.Pos(), "appended as an element into a slice")
			}
		}
		return
	}
	if _, ok := tr.parents[call].(*ast.GoStmt); ok {
		for _, a := range call.Args {
			if tr.containsAlias(a) {
				tr.escape(a.Pos(), "passed to a goroutine")
			}
		}
		return
	}
	for _, a := range call.Args {
		if tr.containsAlias(a) {
			tr.releases++
			return
		}
	}
}

// checkFuncLit flags closures that capture the buffer and may outlive
// the frame: anything but an immediately-invoked or deferred literal.
func (tr *bufTracker) checkFuncLit(fl *ast.FuncLit) {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := tr.pass.ObjectOf(id)
			if obj != nil && tr.tainted[obj] {
				captures = true
			}
		}
		return true
	})
	if !captures {
		return
	}
	switch p := tr.parents[fl].(type) {
	case *ast.CallExpr:
		if _, ok := tr.parents[p].(*ast.GoStmt); ok {
			tr.escape(fl.Pos(), "captured by a goroutine closure")
			return
		}
		if _, ok := tr.parents[p].(*ast.DeferStmt); ok {
			return
		}
		if p.Fun == fl {
			return // immediately invoked: same frame
		}
		tr.escape(fl.Pos(), "captured by a closure passed to a call")
	default:
		tr.escape(fl.Pos(), "captured by an escaping closure")
	}
}
