package analysis

import (
	"go/ast"
	"go/types"
)

// SnapshotPost enforces the backend snapshot-at-post contract from
// PR 1 (core.Backend): once PostWrite (or PostWriteBatch) returns, the
// caller may immediately reuse or recycle the payload slice — the
// engine recycles pooled ledger-entry scratch at post time, not at
// completion time. A backend that keeps a reference to the caller's
// slice instead of copying or encoding it at post time corrupts
// in-flight data the moment the pool recycles the buffer.
//
// The analyzer inspects every method named PostWrite or PostWriteBatch
// and tracks its payload — []byte parameters, and the Local field of
// elements of a []WriteReq-shaped parameter (any slice of structs with
// a Local []byte field). It reports payload aliases that are:
//
//   - stored into struct fields, package-level variables, slice/map
//     elements, or through pointers;
//   - appended as elements into a slice;
//   - retained in composite literals that are themselves stored
//     (literals passed straight into a non-builtin call are a
//     hand-off to that callee's own snapshot contract, e.g.
//     SendWR{Local: local} given to QP.PostSend);
//   - captured by goroutines or escaping closures;
//   - sent on channels or returned.
//
// Copies are the fix: copy(frame[off:], local), append(dst,
// local...), or encoding into a freshly built frame all pass. PostRead
// and the atomics are exempt by design — their local slice is the
// result destination, owned by the backend until completion.
var SnapshotPost = &Analyzer{
	Name: "snapshotpost",
	Doc:  "flags backend Post* implementations that retain the caller's payload slice",
	Run:  runSnapshotPost,
}

// payloadFieldName is the WriteReq payload field tracked through batch
// parameters.
const payloadFieldName = "Local"

func runSnapshotPost(pass *Pass) error {
	for _, f := range pass.Files {
		parents := buildParents(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil {
				continue
			}
			if fn.Name.Name != "PostWrite" && fn.Name.Name != "PostWriteBatch" {
				continue
			}
			snapshotPostFunc(pass, parents, fn)
		}
	}
	return nil
}

func snapshotPostFunc(pass *Pass, parents parentMap, fn *ast.FuncDecl) {
	tr := newBufTracker(pass, parents)
	tr.payloadField = payloadFieldName
	tracked := false
	for _, field := range fn.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch {
		case isByteSlice(t):
			for _, name := range field.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					tr.tainted[obj] = true
					tracked = true
				}
			}
		case isPayloadStructSlice(t):
			for _, name := range field.Names {
				if obj := pass.ObjectOf(name); obj != nil {
					tr.rootSlices[obj] = true
					tracked = true
				}
			}
		}
	}
	if !tracked {
		return
	}
	tr.propagate(fn.Body)
	tr.analyze(fn.Body)
	for _, e := range tr.escapes {
		pass.Reportf(e.pos, "%s must snapshot the payload before returning: payload %s (copy or encode it at post time)", fn.Name.Name, e.what)
	}
}

// isPayloadStructSlice matches []T where T (or *T) is a struct with a
// Local []byte field — the WriteReq batch shape.
func isPayloadStructSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := s.Elem()
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = p.Elem()
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == payloadFieldName && isByteSlice(f.Type()) {
			return true
		}
	}
	return false
}
