// Package errs holds error sentinels shared across Photon's layers.
//
// The dependency graph forbids a single home higher up: core imports
// verbs, so verbs cannot wrap a sentinel defined in core, yet callers
// want one errors.Is target that matches a timeout no matter which
// layer produced it. The root sentinels therefore live here, below
// everything; core aliases them under its public names (core.ErrTimeout
// is this package's ErrTimeout, the same object) and the other layers
// wrap them with layer-specific messages. errors.Is against the core
// name then matches timeouts from verbs, msg, and runtime alike.
package errs

import "errors"

// ErrTimeout is the root timeout sentinel. core.ErrTimeout aliases it;
// verbs.ErrTimeout, msg.ErrTimeout, and runtime.ErrTimeout wrap it.
var ErrTimeout = errors.New("photon: wait timed out")

// ErrPeerDown is the root dead-peer sentinel: a peer's transport could
// not be recovered within the reconnect budget, or the failure detector
// latched it down (terminal). core.ErrPeerDown aliases it; error
// completions and fail-fast posts toward a down peer wrap it.
var ErrPeerDown = errors.New("photon: peer down")

// ErrRevoked is the root communicator-revocation sentinel: a collective
// observed a member's death (directly or via a revocation notice) and
// the communicator's current epoch is permanently unusable.
// collectives.ErrCommRevoked aliases it; concrete revocations wrap both
// this and ErrPeerDown, naming the failed rank.
var ErrRevoked = errors.New("photon: communicator revoked")
