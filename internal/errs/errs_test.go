package errs_test

import (
	"errors"
	"fmt"
	"testing"

	"photon/internal/core"
	"photon/internal/errs"
	"photon/internal/msg"
	"photon/internal/runtime"
	"photon/internal/verbs"
)

// One errors.Is target must match a timeout no matter which layer
// produced it: core aliases the root, the other layers wrap it.
func TestTimeoutMatchesAcrossLayers(t *testing.T) {
	layered := map[string]error{
		"core":    core.ErrTimeout,
		"verbs":   verbs.ErrTimeout,
		"msg":     msg.ErrTimeout,
		"runtime": runtime.ErrTimeout,
	}
	for layer, err := range layered {
		if !errors.Is(err, core.ErrTimeout) {
			t.Errorf("%s.ErrTimeout does not match core.ErrTimeout", layer)
		}
		if !errors.Is(err, errs.ErrTimeout) {
			t.Errorf("%s.ErrTimeout does not match the root sentinel", layer)
		}
	}
	// Wrapping chains built by callers keep matching.
	wrapped := fmt.Errorf("op 7 on rank 3: %w", verbs.ErrTimeout)
	if !errors.Is(wrapped, core.ErrTimeout) {
		t.Error("wrapped verbs timeout lost the core.ErrTimeout identity")
	}
	// The alias is an identity, not a copy: code that compares directly
	// (err == core.ErrTimeout, as some older call sites do) still works
	// for errors produced against either name.
	if core.ErrTimeout != errs.ErrTimeout {
		t.Error("core.ErrTimeout is not the root sentinel object")
	}
	// Unrelated errors must not match.
	if errors.Is(msg.ErrClosed, core.ErrTimeout) {
		t.Error("ErrClosed matches ErrTimeout")
	}
}
