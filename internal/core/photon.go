// Package core implements Photon, the remote-memory-access middleware:
// one-sided put/get with completion identifiers delivered to both the
// initiator and the target, ledger-based notification without message
// matching, an eager/rendezvous protocol split, and probe-driven
// progress — the feature set a message-driven runtime (HPX-5 in the
// original) needs from its network layer.
//
// # Completion model
//
// Every data-movement call names up to two completion identifiers
// (RIDs): a local RID surfaced to this rank when the operation's
// buffers are reusable, and a remote RID surfaced to the target rank
// when the data is visible there. Remote RIDs travel in ledger entries
// — RDMA writes into per-peer circular buffers the target polls — so
// the target learns of one-sided arrivals without posting or matching
// receives. Completions are harvested with Probe/PopLocal/PopRemote;
// progress happens on the caller's thread (no mandatory progress
// thread), matching task-scheduler runtimes.
//
// # Protocol split
//
// Send packs payloads up to the eager threshold directly into a ledger
// entry (one RDMA write, one copy each side). Larger payloads use a
// receiver-initiated rendezvous: the sender registers its buffer and
// writes an RTS control entry; the target RDMA-reads the data into a
// staging slab and writes back a FIN, which completes the send. Direct
// PutWithCompletion/GetWithCompletion skip all staging when the caller
// already knows the remote buffer (registered and exchanged at setup).
//
// # Flow control
//
// Ledgers are credit-flow-controlled. Consumed-entry counts return to
// the sender through per-peer mailbox words updated with unsignaled
// RDMA writes — cumulative counters, so updates are idempotent and
// never themselves need flow control (this is how the deadlock that
// naive in-band credit returns would cause is avoided).
package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"photon/internal/flight"
	"photon/internal/ledger"
	"photon/internal/mem"
	"photon/internal/metrics"
)

// Completion is one harvested completion event.
type Completion struct {
	// Rank is the peer involved: the target for local completions,
	// the initiator for remote ones.
	Rank int
	// RID is the completion identifier supplied by the initiator.
	RID uint64
	// Data carries the payload for packed/rendezvous message
	// deliveries (remote completions only). Data is caller-owned from
	// the moment the completion is returned by Probe/Pop/Wait: the
	// middleware holds no other reference to it and never recycles it,
	// so the caller may retain or mutate it indefinitely.
	Data []byte
	// Value carries the prior memory value for atomic operations.
	Value uint64
	// Local distinguishes initiator-side from target-side events.
	Local bool
	// Err is non-nil when the underlying operation failed.
	Err error

	// traced marks completions of observed ops — sampled at post time
	// on the initiator, or carrying a wire trace context on the target
	// — so the harvest-side reap events record only for ops that are
	// already in the trace. Unsampled traffic pops with zero ring
	// writes.
	traced bool
}

// ProbeFlags selects which completion stream Probe consults.
type ProbeFlags int

// Probe flag values.
const (
	ProbeLocal ProbeFlags = 1 << iota
	ProbeRemote
	ProbeAny = ProbeLocal | ProbeRemote
)

// Stats counts engine activity (ablation and test aid).
type Stats struct {
	PutsDirect     int64
	PutsPacked     int64
	Gets           int64
	RdzvSends      int64
	RdzvRecvs      int64
	Atomics        int64
	CreditWrites   int64
	ProgressCalls  int64
	DeferredWrites int64

	// Hot-path memory/batching counters.
	EntryPoolHits   int64 // entry scratch served from the free list
	EntryPoolMisses int64 // entry scratch that had to allocate
	RingOverflows   int64 // completions spilled past CompQueueDepth
	BatchPosts      int64 // doorbell batches issued (PostWriteBatch)
	BatchedOps      int64 // writes carried by those batches
}

// opKind classifies a pending backend token.
type opKind uint8

const (
	opPutLocal opKind = iota + 1
	opGetLocal
	opRdzvGet
	opAtomic
)

// pendingOp is the engine-side state for one signaled backend op.
type pendingOp struct {
	kind      opKind
	rank      int
	rid       uint64 // local RID to surface
	remoteRID uint64 // remote RID to notify (GWC), 0 = none
	result    []byte // atomic result buffer
	block     *mem.Block
	size      int
	rdzvID    uint64 // rendezvous transfer id (FIN key)

	// postedBuf, for opRdzvGet, is a caller-posted receive buffer the
	// RDMA read lands in directly (no staging block, no copy-out); nil
	// selects the slab-staging path.
	postedBuf []byte

	// deadlineNS is the nowNanos instant after which the op is swept
	// into an ErrTimeout error completion; 0 = no deadline (OpTimeout
	// disabled).
	deadlineNS int64

	// Observability state (see obs.go). postNS is the obsStamp taken
	// when the op was posted; 0 means the op is not sampled and every
	// lifecycle site skips in one comparison. remoteVis marks ops whose
	// signaled completion fences remote visibility, so the same
	// timestamp closes the post→remote-delivery distribution.
	postNS    int64
	mkind     metrics.OpKind
	remoteVis bool
	// traced marks target-side ops (rendezvous staging reads) whose
	// initiator sampled the op: no local post timestamp exists, but
	// the surfaced delivery should still carry the trace marker.
	traced bool
}

// wireBatchMax caps how many deferred writes one doorbell batch
// carries (and sizes the reusable request scratch).
const wireBatchMax = 16

// wireOp is a fully-specified deferred write (its ledger slot, if any,
// is already reserved) parked because the transport was busy. pooled
// marks local as entry-pool scratch to recycle once posted.
type wireOp struct {
	local    []byte
	raddr    uint64
	rkey     uint32
	token    uint64
	signaled bool
	pooled   bool
}

// entryOp is a ledger entry not yet reserved, parked for credits.
type entryOp struct {
	class   int
	payload []byte
}

// rtsOp is an inbound rendezvous request awaiting slab space or SQ room.
type rtsOp struct {
	rank      int
	rdzvID    uint64
	remoteRID uint64
	size      int
	addr      uint64
	rkey      uint32
	traced    bool // RTS carried a wire trace context (sampled send)
}

// rdzvSend tracks an outstanding rendezvous send awaiting FIN.
type rdzvSend struct {
	rank       int    // target rank (fault sweeps select by peer)
	rid        uint64 // local RID to surface on FIN
	rb         mem.RemoteBuffer
	postNS     int64 // obsStamp at RTS post (0 = unsampled)
	deadlineNS int64 // OpTimeout deadline (0 = none)
}

// peerState holds all per-peer protocol state.
type peerState struct {
	rank int
	recv [numClasses]*ledger.Receiver
	send [numClasses]*ledger.Sender

	// deferred counts parked work items; consumedHint counts ledger
	// entries consumed since the last credit-return pass. Both are
	// cheap fast-path guards so Progress skips idle peers without
	// taking their mutexes.
	deferred     atomic.Int64
	consumedHint atomic.Int64

	// health mirrors the failure detector's view of this peer
	// (PeerHealth values); written by the fault sweep under progMu,
	// read lock-free by the op fast paths. Down is terminal.
	health atomic.Int32

	// lastTransitionNS is the wall-clock UnixNano of the peer's last
	// health transition (0 = never transitioned); written by the fault
	// sweep, read by the health table and the flight recorder.
	lastTransitionNS atomic.Int64

	// consumed counts entries drained from each receive ledger; it is
	// written only by the owning shard's engine (serialized by the
	// shard mutex), so credit maintenance reads it without touching
	// ledger mutexes.
	consumed [numClasses]int64

	// shard is the engine shard that owns this peer (rank %
	// Config.EngineShards), set once at Init.
	shard *engineShard

	//photon:lock peer 40
	mu           sync.Mutex
	lastMail     [numClasses]uint64 // mailbox value already credited
	lastReturned [numClasses]int64  // consumed count already written back
	pendingWire  []wireOp
	pendingEntry []entryOp
	pendingRTS   []rtsOp
	remoteArena  mem.RemoteBuffer // peer's arena descriptor
}

// Photon is one rank's middleware instance.
type Photon struct {
	be   Backend
	bbe  BatchBackend // be's batch extension, nil when unsupported
	cfg  Config
	rank int
	size int

	arena   []byte
	arenaRB mem.RemoteBuffer
	//photon:lock arena 30
	arenaLk  sync.Locker
	activity func() uint64   // arena DMA write counter (nil if unsupported)
	beWake   <-chan struct{} // backend activity channel (nil if unsupported)
	lastAct  uint64          // counter value at last ledger sweep (progMu)
	mailOff  int
	slabOff  int
	slab     *mem.Slab

	peers []*peerState

	// pool recycles fixed-size entry scratch buffers (ledger entries
	// under construction, atomic result words, mailbox words) so the
	// op fast path never hits the allocator.
	pool *mem.BufPool

	// tok maps signaled-post tokens to pending-op state: sharded and
	// generation-tagged (see token.go).
	tok tokenTable

	// recvs is the one-shot posted-receive table (see recv.go): message
	// deliveries whose RID has a posted buffer land there directly.
	recvs recvTab

	//photon:lock rdzv 50
	rdzvMu     sync.Mutex
	rdzvSends  map[uint64]rdzvSend
	nextRdzvID uint64

	// shards are the progress-engine partitions (see shard.go): every
	// peer belongs to exactly one, and each carries its own completion
	// rings, sweep scratch, idle counters, and notify latch.
	shards []*engineShard

	// nfy fans backend activity events out to shard runners and parked
	// waiters (nil when the backend has no NotifyBackend).
	nfy *notifier

	// Background progress mode (StartProgress): one runner per shard.
	runnersOn atomic.Bool
	runWG     sync.WaitGroup

	// popCursor rotates Pop scans across shards so no shard's
	// completion ring is structurally favored.
	popCursor atomic.Uint64

	// reqPool recycles WriteReq slices for op-path doorbell batches
	// (ops run concurrently, so these cannot share the shard scratch).
	reqPool sync.Pool

	closed atomic.Bool

	// Fault-tolerance plane (see fault.go). hbe is the backend's
	// failure detector (nil when unsupported or unconfigured);
	// faultPollNS gates the whole sweep behind one int64 comparison
	// per Progress round when both OpTimeout and liveness are off.
	hbe          HealthBackend
	opTimeoutNS  int64
	faultPollNS  int64
	nextFaultNS  int64       // serialized by shard 0's mutex
	faultScratch []pendingOp // reused by fault sweeps (shard 0 / Close)

	suspectTransitions atomic.Int64
	opsTimedOut        atomic.Int64
	peersDown          atomic.Int64

	// obs is the observability plane: trace ring, metrics registry,
	// sampling state (see obs.go).
	obs obsState

	// flightRec is the fault flight recorder (see flightrec.go); nil
	// unless Config.FlightRecords > 0.
	flightRec *flight.Recorder

	stats struct {
		putsDirect, putsPacked, gets     atomic.Int64
		rdzvSends, rdzvRecvs, atomics    atomic.Int64
		creditWrites, progress, deferred atomic.Int64
		batchPosts, batchedOps           atomic.Int64
	}
}

// Init brings up a Photon instance over the backend: it allocates and
// registers the ledger arena, performs the collective bootstrap
// exchange, and builds per-peer ledger state. Init is collective: all
// ranks of the job must call it with an identical Config.
func Init(be Backend, cfg Config) (*Photon, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	poolBuf := cfg.EagerEntrySize
	if poolBuf < 64 {
		poolBuf = 64
	}
	p := &Photon{
		be:         be,
		cfg:        cfg,
		rank:       be.Rank(),
		size:       be.Size(),
		pool:       mem.NewBufPool(poolBuf, 256),
		rdzvSends:  make(map[uint64]rdzvSend),
		nextRdzvID: 1,
	}
	p.bbe, _ = be.(BatchBackend)
	p.recvs.init()
	p.initObs(&cfg)
	p.reqPool.New = func() any {
		s := make([]WriteReq, 0, wireBatchMax)
		return &s
	}
	if p.size < 1 || p.rank < 0 || p.rank >= p.size {
		return nil, fmt.Errorf("%w: rank %d of %d", ErrBadRank, p.rank, p.size)
	}

	// Arena layout: per-peer receive ledgers, then the credit
	// mailboxes, then the rendezvous staging slab.
	perPeer := cfg.perPeerBytes()
	p.mailOff = perPeer * p.size
	mailBytes := p.size * numClasses * 8
	p.slabOff = p.mailOff + mailBytes
	p.slabOff = (p.slabOff + mem.SlabAlign - 1) &^ (mem.SlabAlign - 1)
	slabBytes := (cfg.RdzvSlabSize + mem.SlabAlign - 1) &^ (mem.SlabAlign - 1)
	p.arena = make([]byte, p.slabOff+slabBytes)

	rb, lk, err := be.Register(p.arena)
	if err != nil {
		return nil, fmt.Errorf("photon: register arena: %w", err)
	}
	p.arenaRB = rb
	p.arenaLk = lk
	if ab, ok := be.(ActivityBackend); ok {
		if fn, ok := ab.WriteActivity(rb); ok {
			p.activity = fn
		}
	}
	if nb, ok := be.(NotifyBackend); ok {
		p.beWake = nb.Notify()
	}
	if hb, ok := be.(HealthBackend); ok && cfg.HeartbeatInterval > 0 {
		hb.ConfigureLiveness(cfg.HeartbeatInterval, cfg.SuspectAfter)
		p.hbe = hb
	}
	p.opTimeoutNS = int64(cfg.OpTimeout)
	p.initFaultPoll()
	if cfg.FlightRecords > 0 {
		p.flightRec = flight.NewRecorder(cfg.FlightRecords, cfg.FlightWindow)
	}

	slab, err := mem.NewSlabOver(p.arena[p.slabOff:], rb.Addr+uint64(p.slabOff))
	if err != nil {
		return nil, err
	}
	p.slab = slab

	// Bootstrap exchange: publish the arena descriptor. Peers derive
	// every ledger and mailbox address from it plus the shared Config.
	blob := make([]byte, 12)
	binary.LittleEndian.PutUint64(blob[0:], rb.Addr)
	binary.LittleEndian.PutUint32(blob[8:], rb.RKey)
	all, err := be.Exchange(blob)
	if err != nil {
		return nil, fmt.Errorf("photon: bootstrap exchange: %w", err)
	}
	if len(all) != p.size {
		return nil, fmt.Errorf("photon: exchange returned %d blobs for %d ranks", len(all), p.size)
	}

	p.peers = make([]*peerState, p.size)
	for peer := 0; peer < p.size; peer++ {
		if len(all[peer]) < 12 {
			return nil, fmt.Errorf("photon: short bootstrap blob from rank %d", peer)
		}
		ps := &peerState{
			rank: peer,
			remoteArena: mem.RemoteBuffer{
				Addr: binary.LittleEndian.Uint64(all[peer][0:]),
				RKey: binary.LittleEndian.Uint32(all[peer][8:]),
				Len:  len(p.arena), // identical config => identical layout
			},
		}
		// My receive ledgers for this peer live in my arena at the
		// peer's slot; the peer's matching send ledgers target them.
		myRegion := peer * perPeer
		for cl := 0; cl < numClasses; cl++ {
			off := myRegion + cfg.classOffset(cl)
			buf := p.arena[off : off+cfg.classBytes(cl)]
			rcv, err := ledger.NewReceiver(buf, cfg.entrySize(cl), lk)
			if err != nil {
				return nil, err
			}
			ps.recv[cl] = rcv
			// Sender half: the peer's arena, my slot within it.
			peerRegion := p.rank * perPeer
			sndRB := mem.RemoteBuffer{
				Addr: ps.remoteArena.Addr + uint64(peerRegion+cfg.classOffset(cl)),
				RKey: ps.remoteArena.RKey,
				Len:  cfg.classBytes(cl),
			}
			snd, err := ledger.NewSender(sndRB, cfg.entrySize(cl))
			if err != nil {
				return nil, err
			}
			ps.send[cl] = snd
		}
		p.peers[peer] = ps
	}
	p.initShards()
	p.initNotifier()
	return p, nil
}

// Rank returns this instance's rank.
func (p *Photon) Rank() int { return p.rank }

// Size returns the job size.
func (p *Photon) Size() int { return p.size }

// Config returns the effective (defaulted) configuration.
func (p *Photon) Config() Config { return p.cfg }

// EagerThreshold reports the largest payload Send packs inline.
func (p *Photon) EagerThreshold() int {
	if p.cfg.ForceRendezvous {
		return 0
	}
	return p.cfg.EagerThreshold
}

// Stats returns an activity snapshot.
func (p *Photon) Stats() Stats {
	hits, misses := p.pool.Counters()
	var overflows int64
	for _, s := range p.shards {
		overflows += s.localCQ.overflowCount() + s.remoteCQ.overflowCount()
	}
	return Stats{
		PutsDirect:     p.stats.putsDirect.Load(),
		PutsPacked:     p.stats.putsPacked.Load(),
		Gets:           p.stats.gets.Load(),
		RdzvSends:      p.stats.rdzvSends.Load(),
		RdzvRecvs:      p.stats.rdzvRecvs.Load(),
		Atomics:        p.stats.atomics.Load(),
		CreditWrites:   p.stats.creditWrites.Load(),
		ProgressCalls:  p.stats.progress.Load(),
		DeferredWrites: p.stats.deferred.Load(),

		EntryPoolHits:   hits,
		EntryPoolMisses: misses,
		RingOverflows:   overflows,
		BatchPosts:      p.stats.batchPosts.Load(),
		BatchedOps:      p.stats.batchedOps.Load(),
	}
}

// RegisterBuffer pins buf for remote access and returns its descriptor
// (to be exchanged with peers) and a read-locker that must be held when
// locally reading bytes that remote peers write into buf.
func (p *Photon) RegisterBuffer(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	if p.closed.Load() {
		return mem.RemoteBuffer{}, nil, ErrClosed
	}
	return p.be.Register(buf)
}

// DeregisterBuffer releases a registration made with RegisterBuffer.
func (p *Photon) DeregisterBuffer(rb mem.RemoteBuffer) error {
	return p.be.Deregister(rb)
}

// bufBlobLen is the wire size of one exchanged buffer descriptor:
// addr8 | rkey4 | len8.
const bufBlobLen = 8 + 4 + 8

// ExchangeBuffers is a collective helper: every rank contributes one
// buffer descriptor and receives all of them indexed by rank. Ranks
// with nothing to share pass the zero RemoteBuffer.
func (p *Photon) ExchangeBuffers(rb mem.RemoteBuffer) ([]mem.RemoteBuffer, error) {
	blob := make([]byte, bufBlobLen)
	binary.LittleEndian.PutUint64(blob[0:], rb.Addr)
	binary.LittleEndian.PutUint32(blob[8:], rb.RKey)
	binary.LittleEndian.PutUint64(blob[12:], uint64(rb.Len))
	all, err := p.be.Exchange(blob)
	if err != nil {
		return nil, err
	}
	out := make([]mem.RemoteBuffer, len(all))
	for i, b := range all {
		if len(b) < bufBlobLen {
			return nil, fmt.Errorf("photon: short buffer blob from rank %d", i)
		}
		out[i] = mem.RemoteBuffer{
			Addr: binary.LittleEndian.Uint64(b[0:]),
			RKey: binary.LittleEndian.Uint32(b[8:]),
			Len:  int(binary.LittleEndian.Uint64(b[12:])),
		}
	}
	return out, nil
}

// Exchange exposes the backend's raw bootstrap allgather for higher
// layers (collectives use it during their own setup).
func (p *Photon) Exchange(local []byte) ([][]byte, error) { return p.be.Exchange(local) }

// Close shuts the instance down deterministically: every in-flight
// operation — pending backend tokens, parked deferred work, open
// rendezvous sends — is failed with an ErrClosed error completion
// before the transport is torn down, so concurrent waiters observe
// either their completion or the error rather than hanging.
func (p *Photon) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	// Stop the notifier relay (if any) and nudge every shard runner so
	// background progress observes closed promptly, then wait the
	// runners out — a runner inside progressShard holds its shard
	// mutex, which the drain below must be able to take.
	if p.nfy != nil {
		close(p.nfy.stop)
	}
	for _, s := range p.shards {
		s.kick()
	}
	p.runWG.Wait()
	// Serialize with the progress engines: with every shard mutex held
	// (ascending index, the fault plane's lock order) the engine is
	// quiescent and every remaining token is ours to sweep.
	for _, s := range p.shards {
		s.mu.Lock() //photon:allow lockorder -- all-shard quiesce: ascending index order, engines already stopped (runWG waited)
	}
	p.failAllInflight()
	for i := len(p.shards) - 1; i >= 0; i-- {
		p.shards[i].mu.Unlock()
	}
	return p.be.Close()
}

// newToken registers a pending op and returns its token, stamping the
// OpTimeout deadline when deadlines are armed (one comparison and a
// monotonic clock read; no allocation).
func (p *Photon) newToken(op pendingOp) uint64 {
	if p.opTimeoutNS != 0 {
		op.deadlineNS = nowNanos() + p.opTimeoutNS
	}
	return p.tok.put(op)
}

// takeToken resolves and removes a pending op. Stale tokens — late or
// duplicated completions whose slot generation has moved on — return
// false and are ignored by the engine.
func (p *Photon) takeToken(tok uint64) (pendingOp, bool) { return p.tok.take(tok) }

// checkRank validates a peer rank.
func (p *Photon) checkRank(rank int) error {
	if rank < 0 || rank >= p.size {
		return fmt.Errorf("%w: %d", ErrBadRank, rank)
	}
	return nil
}

// pushLocal enqueues a local completion on the peer's owning shard.
//
//photon:hotpath
func (p *Photon) pushLocal(c Completion) {
	c.Local = true
	p.peers[c.Rank].shard.localCQ.push(c)
}

// pushRemote enqueues a remote completion on the peer's owning shard.
//
//photon:hotpath
func (p *Photon) pushRemote(c Completion) {
	p.peers[c.Rank].shard.remoteCQ.push(c)
}
