package core_test

import (
	"testing"

	"photon/internal/core"
)

// TestEagerPutAllocGuard pins the zero-allocation property of the
// eager put-with-completion fast path: after warm-up (pools primed,
// token slots and rings grown to steady state), a full put round trip
// — post, progress, harvest both completions — must average at most
// one allocation, and in practice zero. A regression here means a
// pooled buffer, token, or completion started escaping to the heap
// again.
func TestEagerPutAllocGuard(t *testing.T) {
	p, dst := loopEnv(t, core.Config{})
	payload := make([]byte, 8)
	put := func() {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("eager put round trip: %.2f allocs/op", allocs)
	if allocs > 1 {
		t.Fatalf("eager put allocates %.2f times per op, want <= 1", allocs)
	}
}

// TestStaleTokenRejected scripts the backend completion stream to
// deliver late, duplicate, and fabricated completions, and checks the
// generation-tagged token table accepts each token exactly once.
func TestStaleTokenRejected(t *testing.T) {
	lb := newLoopBackend()
	p, err := core.Init(lb, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, 1<<16)
	rb, _, err := p.RegisterBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := p.ExchangeBuffers(rb)
	if err != nil {
		t.Fatal(err)
	}
	dst := descs[0]

	// Intercept signaled tokens: the backend applies writes but the
	// test decides when (and how often) their completions arrive.
	lb.captureTokens = true

	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := p.PutWithCompletion(0, payload, dst, 0, 41, 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.Progress()
	}
	// The packed entry was applied, so the remote-side completion is
	// deliverable; the local completion still waits on the backend.
	if _, ok := p.Probe(core.ProbeRemote); !ok {
		t.Fatal("remote completion not delivered")
	}
	if _, ok := p.Probe(core.ProbeLocal); ok {
		t.Fatal("local completion delivered before backend completion")
	}
	if len(lb.tokens) != 1 {
		t.Fatalf("captured %d signaled tokens, want 1", len(lb.tokens))
	}
	tok := lb.tokens[0]

	// A completion for a token that was never issued (wrong
	// generation) must be dropped, not matched to the pending op.
	lb.inject(core.BackendCompletion{Token: tok + (1 << 32), OK: true})
	p.Progress()
	if _, ok := p.Probe(core.ProbeLocal); ok {
		t.Fatal("fabricated token produced a completion")
	}

	// The real (late) completion lands once.
	lb.inject(core.BackendCompletion{Token: tok, OK: true})
	p.Progress()
	c, ok := p.Probe(core.ProbeLocal)
	if !ok {
		t.Fatal("late completion not delivered")
	}
	if c.Err != nil || c.RID != 41 {
		t.Fatalf("bad completion: %+v", c)
	}

	// A duplicate delivery of the same token hits a recycled slot with
	// a bumped generation and must be rejected.
	lb.inject(core.BackendCompletion{Token: tok, OK: true})
	for i := 0; i < 10; i++ {
		p.Progress()
	}
	if _, ok := p.Probe(core.ProbeAny); ok {
		t.Fatal("duplicate token produced a second completion")
	}

	// The table stays healthy: a fresh op issues, completes, matches.
	lb.captureTokens = false
	lb.tokens = nil
	if err := p.PutWithCompletion(0, payload, dst, 64, 43, 44); err != nil {
		t.Fatal(err)
	}
	drainPair(t, p)
	if got := string(buf[64:72]); got != string(payload) {
		t.Fatalf("payload not applied after recovery: %x", got)
	}
}
