package core

import (
	"fmt"
	"io"
	"time"

	"photon/internal/flight"
	"photon/internal/trace"
)

// Flight-recorder capture (see package flight for the black box
// itself). Armed by Config.FlightRecords; the fault sweep calls
// captureFlight on every healthy→degraded and →down transition.
//
// captureFlight runs inside pollHealth, which holds shard 0's mutex
// (and, for the down case, may go on to take the owning shard's
// mutex). It therefore must NOT call Photon.Metrics() — that locks
// every shard and would self-deadlock — and instead reads only
// lock-free sources: the trace ring snapshot, the metrics registry
// (atomic buckets), per-peer health atomics, and the backend's
// TransportStats (which the StatsBackend contract requires to be safe
// during operation). Allocation here is fine; transitions are rare,
// cold events.

// captureFlight snapshots the engine into the flight recorder at one
// peer-health transition. No-op when the recorder is unarmed.
func (p *Photon) captureFlight(ps *peerState, from, to PeerHealth) {
	p.captureRecord(ps, from, to, "")
}

// CaptureEvent records a reason-tagged flight snapshot outside the
// health state machine — the collectives layer arms it on a collective
// abort so the black box holds the failing round even when the peer's
// own down-transition capture raced past it. peer is the rank the event
// is about; reads only lock-free sources, so it is safe from any
// goroutine, with or without engine locks held. No-op when the recorder
// is unarmed or peer is out of range.
func (p *Photon) CaptureEvent(peer int, reason string) {
	if p.flightRec == nil || peer < 0 || peer >= p.size {
		return
	}
	ps := p.peers[peer]
	st := PeerHealth(ps.health.Load())
	p.captureRecord(ps, st, st, reason)
}

func (p *Photon) captureRecord(ps *peerState, from, to PeerHealth, reason string) {
	fr := p.flightRec
	if fr == nil {
		return
	}
	rec := flight.Record{
		WhenNS: time.Now().UnixNano(),
		Rank:   p.rank,
		Peer:   ps.rank,
		From:   from.String(),
		To:     to.String(),
		Reason: reason,
		Gauges: map[string]int64{
			"peer_suspect_transitions": p.suspectTransitions.Load(),
			"peers_down":               p.peersDown.Load(),
			"ops_timed_out":            p.opsTimedOut.Load(),
			"puts_direct":              p.stats.putsDirect.Load(),
			"puts_packed":              p.stats.putsPacked.Load(),
			"gets":                     p.stats.gets.Load(),
			"rdzv_sends":               p.stats.rdzvSends.Load(),
			"progress_calls":           p.stats.progress.Load(),
		},
	}
	if p.obs.ring != nil {
		rec.Events = p.obs.ring.Snapshot()
	}
	if p.obs.reg != nil {
		snap := p.obs.reg.Snapshot()
		for i := range snap.Hists {
			h := &snap.Hists[i].Hist
			if h.N() == 0 {
				continue
			}
			rec.Hists = append(rec.Hists, flight.HistSummary{
				Name:   snap.Hists[i].Name,
				N:      h.N(),
				MeanNS: h.Mean(),
				P50NS:  h.Quantile(0.50),
				P99NS:  h.Quantile(0.99),
				MaxNS:  h.Quantile(1),
			})
		}
	}
	if sb, ok := p.be.(StatsBackend); ok {
		sb.TransportStats(func(name string, v int64) {
			rec.Gauges[name] = v
		})
	}
	for _, peer := range p.peers {
		if peer.rank == p.rank {
			continue
		}
		st := PeerHealth(peer.health.Load())
		if peer == ps {
			st = to // this transition's store may not have landed yet
		}
		rec.Health = append(rec.Health, flight.PeerHealthInfo{
			Rank:             peer.rank,
			State:            st.String(),
			LastTransitionNS: peer.lastTransitionNS.Load(),
		})
	}
	fr.Add(rec)
	p.traceEv(trace.KindProtocol, uint64(ps.rank), "flight.capture")
}

// FlightRecorder returns the fault flight recorder, or nil when
// Config.FlightRecords is zero. Use it to install an auto-dump hook
// (Recorder.SetHook) or inspect records programmatically.
func (p *Photon) FlightRecorder() *flight.Recorder { return p.flightRec }

// FlightDump writes the flight recorder's contents as indented JSON.
// It is safe to call at any time, including while the engine is live.
func (p *Photon) FlightDump(w io.Writer) error {
	if p.flightRec == nil {
		return fmt.Errorf("photon: flight recorder disabled (Config.FlightRecords == 0)")
	}
	return p.flightRec.WriteJSON(w)
}

// PeerLastTransitionNS returns the wall-clock UnixNano of the peer's
// last health transition, or 0 if it never transitioned.
func (p *Photon) PeerLastTransitionNS(rank int) int64 {
	if rank < 0 || rank >= p.size {
		return 0
	}
	return p.peers[rank].lastTransitionNS.Load()
}
