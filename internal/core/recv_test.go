package core_test

import (
	"bytes"
	"testing"
	"time"

	"photon/internal/core"
)

// TestPostRecvPackedDelivery: a posted receive makes a packed send land
// directly in the caller's buffer (Completion.Data aliases it).
func TestPostRecvPackedDelivery(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	buf := make([]byte, 64)
	if err := phs[1].PostRecv(777, buf); err != nil {
		t.Fatal(err)
	}
	payload := []byte("posted-receive payload")
	if err := phs[0].SendBlocking(1, payload, 0, 777); err != nil {
		t.Fatal(err)
	}
	c, err := phs[1].WaitRemote(777, waitT)
	if err != nil || c.Err != nil {
		t.Fatalf("remote completion: %v %v", err, c.Err)
	}
	if phs[1].CancelRecv(777) {
		t.Fatal("posting went unused: message did not land in the posted buffer")
	}
	if !bytes.Equal(c.Data, payload) {
		t.Fatalf("Data = %q", c.Data)
	}
	if &c.Data[0] != &buf[0] {
		t.Fatal("Data does not alias the posted buffer")
	}
}

// TestPostRecvRendezvousDelivery: large sends RDMA-read straight into
// the posted buffer, skipping the staging slab.
func TestPostRecvRendezvousDelivery(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	const size = 48 << 10 // beyond the eager threshold
	buf := make([]byte, size)
	if err := phs[1].PostRecv(778, buf); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	done := make(chan error, 1)
	go func() { done <- phs[0].SendBlocking(1, payload, 42, 778) }()
	c, err := phs[1].WaitRemote(778, waitT)
	if err != nil || c.Err != nil {
		t.Fatalf("remote completion: %v %v", err, c.Err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if &c.Data[0] != &buf[0] {
		t.Fatal("rendezvous did not land in the posted buffer")
	}
	if !bytes.Equal(c.Data, payload) {
		t.Fatal("payload mismatch")
	}
	if _, err := phs[0].WaitLocal(42, waitT); err != nil {
		t.Fatalf("sender FIN: %v", err)
	}
}

// TestPostRecvLateFallback: a message that arrives before the receive
// is posted is delivered middleware-owned; CancelRecv then reports the
// posting unused so the caller can fold the copy in.
func TestPostRecvLateFallback(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	payload := []byte("early arrival")
	if err := phs[0].SendBlocking(1, payload, 0, 779); err != nil {
		t.Fatal(err)
	}
	// Drive the receiver until the delivery is harvested (not just sent).
	deadline := time.Now().Add(waitT)
	for phs[1].PendingRemote() == 0 {
		phs[1].Progress()
		if time.Now().After(deadline) {
			t.Fatal("delivery never arrived")
		}
	}
	buf := make([]byte, 64)
	if err := phs[1].PostRecv(779, buf); err != nil {
		t.Fatal(err)
	}
	c, err := phs[1].WaitRemote(779, waitT)
	if err != nil || c.Err != nil {
		t.Fatalf("remote completion: %v %v", err, c.Err)
	}
	if !phs[1].CancelRecv(779) {
		t.Fatal("expected the posting to be unused")
	}
	if !bytes.Equal(c.Data, payload) {
		t.Fatalf("Data = %q", c.Data)
	}
	if len(buf) >= len(c.Data) && len(c.Data) > 0 && &c.Data[0] == &buf[0] {
		t.Fatal("late posting must not capture the delivery")
	}
}

// TestPostRecvUndersized: a posting smaller than the payload is ignored
// (middleware-owned delivery) and stays cancelable.
func TestPostRecvUndersized(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	buf := make([]byte, 4)
	if err := phs[1].PostRecv(780, buf); err != nil {
		t.Fatal(err)
	}
	payload := []byte("longer than four bytes")
	if err := phs[0].SendBlocking(1, payload, 0, 780); err != nil {
		t.Fatal(err)
	}
	c, err := phs[1].WaitRemote(780, waitT)
	if err != nil || c.Err != nil {
		t.Fatalf("remote completion: %v %v", err, c.Err)
	}
	if !bytes.Equal(c.Data, payload) {
		t.Fatalf("Data = %q", c.Data)
	}
	if !phs[1].CancelRecv(780) {
		t.Fatal("undersized posting should remain")
	}
}

// TestPostRecvDuplicate: posting the same RID twice is rejected.
func TestPostRecvDuplicate(t *testing.T) {
	phs := newJob(t, 1, core.Config{})
	if err := phs[0].PostRecv(5, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := phs[0].PostRecv(5, make([]byte, 8)); err == nil {
		t.Fatal("duplicate posting accepted")
	}
	if !phs[0].CancelRecv(5) {
		t.Fatal("cancel failed")
	}
}

// TestWaitRemoteAll: many sends toward one rank are reaped in one wait
// regardless of arrival order; zero RIDs are skipped.
func TestWaitRemoteAll(t *testing.T) {
	const n = 5
	phs := newJob(t, n, core.Config{})
	for r := 1; r < n; r++ {
		r := r
		go func() {
			payload := []byte{byte(r)}
			if err := phs[r].SendBlocking(0, payload, 0, uint64(1000+r)); err != nil {
				t.Error(err)
			}
		}()
	}
	w := core.NewWaiter(phs[0])
	defer w.Release()
	rids := []uint64{0, 1001, 1002, 1003, 1004}
	out := make([]core.Completion, len(rids))
	if err := phs[0].WaitRemoteAll(w, rids, out, waitT); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < n; r++ {
		if out[r].Rank != r || len(out[r].Data) != 1 || out[r].Data[0] != byte(r) {
			t.Fatalf("out[%d] = %+v", r, out[r])
		}
	}
	if out[0].Data != nil {
		t.Fatal("skipped slot was written")
	}
}

// TestWaitRemoteAllTimeout: a missing completion times out and leaves
// the arrived ones in out.
func TestWaitRemoteAllTimeout(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	if err := phs[0].SendBlocking(1, []byte("x"), 0, 31); err != nil {
		t.Fatal(err)
	}
	w := core.NewWaiter(phs[1])
	defer w.Release()
	out := make([]core.Completion, 2)
	err := phs[1].WaitRemoteAll(w, []uint64{31, 32}, out, 250*time.Millisecond)
	if err != core.ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if out[0].RID != 31 {
		t.Fatalf("arrived completion missing: %+v", out[0])
	}
}
