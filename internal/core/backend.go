package core

import (
	"errors"
	"sync"
	"time"

	"photon/internal/errs"
	"photon/internal/mem"
)

// Errors shared by Photon and its backends.
var (
	// ErrWouldBlock is returned by non-blocking operations that cannot
	// make progress right now (no ledger credits, transport send queue
	// full). The caller should drive Progress and retry, or use the
	// blocking wrappers.
	ErrWouldBlock = errors.New("photon: operation would block")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("photon: closed")
	// ErrBadRank is returned for out-of-range peer ranks.
	ErrBadRank = errors.New("photon: rank out of range")
	// ErrTooLarge is returned when a payload exceeds a protocol limit.
	ErrTooLarge = errors.New("photon: payload too large")
	// ErrPeerDown is returned (or carried by error completions) when a
	// peer has been declared dead: its transport connection could not
	// be recovered within the reconnect budget, or the failure detector
	// latched it down. Ops toward a down peer fail fast rather than
	// waiting out OpTimeout. Aliases errs.ErrPeerDown so layers below
	// core (backends) and above (collectives) match the same sentinel.
	ErrPeerDown = errs.ErrPeerDown
)

// PeerHealth is the liveness state of one peer as seen by the failure
// detector: healthy → suspect (no traffic for SuspectAfter) → down
// (reconnect budget exhausted; terminal), with recovering covering the
// window where the transport has lost the connection and is actively
// re-establishing it.
type PeerHealth int32

// PeerHealth states.
const (
	PeerHealthy PeerHealth = iota
	PeerSuspect
	PeerRecovering
	PeerDown
)

// String names the health state for logs and gauges.
func (h PeerHealth) String() string {
	switch h {
	case PeerHealthy:
		return "healthy"
	case PeerSuspect:
		return "suspect"
	case PeerRecovering:
		return "recovering"
	case PeerDown:
		return "down"
	}
	return "unknown"
}

// HealthBackend is an optional Backend extension implemented by
// transports with a failure detector. ConfigureLiveness arms it:
// the backend emits heartbeat traffic on links idle longer than the
// heartbeat interval (piggyback-suppressed when data is flowing) and
// reports a peer suspect once nothing has been received from it for
// suspectAfter. PeerHealth must be cheap and callable concurrently:
// the progress engine polls it to drive the core peer state machine.
// Backends without liveness (in-process fabrics) simply omit this;
// the engine then relies on OpTimeout alone.
type HealthBackend interface {
	ConfigureLiveness(heartbeat, suspectAfter time.Duration)
	PeerHealth(rank int) PeerHealth
}

// ActivityBackend is an optional Backend extension: WriteActivity
// returns a loader for a monotonic count of remote writes applied to a
// registration. The progress engine uses it as a DMA event counter —
// ledger rings are swept only when the count has moved, so an idle or
// spinning poller never contends with the transport's memory lock.
type ActivityBackend interface {
	WriteActivity(rb mem.RemoteBuffer) (func() uint64, bool)
}

// BackendCompletion reports one finished backend operation to the
// Photon engine. Token is the value the engine passed when posting.
type BackendCompletion struct {
	Token uint64
	OK    bool
	Err   error
}

// Backend is the transport Photon runs over: one-sided operations plus
// registered memory and an out-of-band bootstrap exchange. Two
// implementations exist: backend/vsim (simulated IB verbs over the
// in-process fabric) and backend/tcp (real sockets, one-sided ops
// emulated by a remote agent) — mirroring the original's verbs / uGNI /
// libfabric / TCP backend set.
//
// Semantics the engine relies on:
//
//   - Operations posted toward one rank execute and become remotely
//     visible in posting order (RC queue-pair ordering).
//   - A signaled operation's completion (reported by Poll with its
//     token) implies every earlier operation toward the same rank has
//     completed too.
//   - Post* never blocks; it returns ErrWouldBlock under transient
//     resource exhaustion.
//   - PostWrite snapshots local before returning (the doorbell-DMA
//     model): once PostWrite returns nil the caller may immediately
//     reuse or recycle local. PostRead and the atomics are the
//     opposite — local is the result destination and stays owned by
//     the backend until the operation's completion is reported.
//     The engine's entry-buffer pool relies on this to recycle
//     scratch buffers at post time rather than completion time.
type Backend interface {
	// Rank and Size identify this process in the job.
	Rank() int
	Size() int

	// Register pins buf for remote access, returning its descriptor
	// and a read-locker that callers must hold while polling bytes
	// that remote peers write into buf.
	Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error)
	// Deregister releases a registration by its descriptor.
	Deregister(rb mem.RemoteBuffer) error

	// PostWrite starts a one-sided write of local into rank's memory
	// at (raddr, rkey). If signaled, Poll later reports token.
	PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error
	// PostRead starts a one-sided read from rank's memory into local;
	// always signaled.
	PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error
	// PostFetchAdd atomically adds add to the 8-byte word at
	// (raddr, rkey) on rank, placing the prior value in result.
	PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error
	// PostCompSwap atomically compare-and-swaps the 8-byte word,
	// placing the prior value in result.
	PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error

	// ApplyLocal performs a loopback DMA write into this rank's own
	// registered memory, with the same rkey/bounds/access validation a
	// remote write gets. The engine uses it to place packed-put
	// payloads that arrived inside ledger entries.
	ApplyLocal(raddr uint64, rkey uint32, data []byte) error

	// Poll reaps pending backend completions into dst, returning the
	// count. It must not block.
	Poll(dst []BackendCompletion) int

	// Exchange is the out-of-band bootstrap allgather: every rank
	// contributes a blob and receives all blobs indexed by rank. It
	// is collective and blocking.
	Exchange(local []byte) ([][]byte, error)

	// Close releases transport resources.
	Close() error
}

// WriteReq is one element of a batched write post (see BatchBackend).
// Fields mirror PostWrite's parameters; the same snapshot-at-post
// buffer contract applies to Local.
type WriteReq struct {
	Local      []byte
	RemoteAddr uint64
	RKey       uint32
	Token      uint64
	Signaled   bool
}

// BatchBackend is an optional Backend extension: PostWriteBatch posts
// a burst of writes toward one rank with a single doorbell-style call,
// saving per-op dispatch overhead. Requests are posted in order; the
// call stops at the first request that cannot be posted and returns
// how many were accepted (the error, if any, describes the first
// failure). A short count with a nil or ErrWouldBlock error means the
// caller should retry the tail later, exactly like a per-op
// ErrWouldBlock. The engine falls back to per-op PostWrite when the
// backend does not implement this interface.
type BatchBackend interface {
	PostWriteBatch(rank int, reqs []WriteReq) (int, error)
}

// NotifyBackend is an optional Backend extension: Notify returns a
// channel (capacity 1, signaled with non-blocking sends) that receives
// a token whenever backend activity may have made engine progress
// possible — a completion was queued for Poll, or remote data landed
// in registered memory. Blocking waiters park on this channel instead
// of sleep-polling Progress: the agent goroutine that produced the
// event wakes them at goroutine-handoff latency, where a timer sleep
// would round the wait up to kernel scheduler-tick granularity (~1ms
// on HZ=1000 hosts). A single token can coalesce many events; waiters
// must re-poll after every wakeup and never rely on one token per
// event. Backends without edge-triggered events (in-process fabrics
// whose delivery is driven by runnable goroutines) simply omit this
// and waiters fall back to yield-then-sleep polling.
type NotifyBackend interface {
	Notify() <-chan struct{}
}

// WakeSinkBackend is an optional refinement of NotifyBackend:
// SetWakeSink redirects the backend's activity events from the Notify
// channel to a direct function call on the event-producing goroutine.
// The engine installs its shard fan-out here so one backend event wakes
// every shard runner and every parked waiter without a relay goroutine
// consuming the Notify channel (which would add a scheduler hop to
// every wakeup). The sink must be treated exactly like a channel kick:
// non-blocking, callable from any goroutine, coalescing. Backends built
// on WakeChan get this for free.
type WakeSinkBackend interface {
	SetWakeSink(fn func())
}

// ClockBackend is an optional Backend extension implemented by
// transports that estimate per-peer clock offsets (the TCP backend
// closes NTP-style exchanges over its heartbeat frames). ClockOffset
// reports the peer's wall clock minus the local one in nanoseconds,
// with the round-trip time of the minimum-RTT sample that produced the
// estimate; ok is false until at least one exchange has completed.
// The merged trace exporter consumes these offsets to place events
// from different processes on one timeline.
type ClockBackend interface {
	ClockOffset(rank int) (offsetNS, rttNS int64, ok bool)
}

// StatsBackend is an optional Backend extension: TransportStats yields
// transport-level data-path counters as named int64 gauges (syscall
// coalescing, ack piggybacking, queue behavior — whatever the
// transport measures about itself). Photon.Metrics merges them into
// its gauge snapshot so transport behavior is observable alongside
// engine counters. Implementations must tolerate concurrent callers
// and must not block.
type StatsBackend interface {
	TransportStats(yield func(name string, value int64))
}
