package core_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
)

// faultJob boots a job and returns the cluster so tests can inject
// fabric faults.
func faultJob(t *testing.T, n int, cfg core.Config) (*vsim.Cluster, []*core.Photon) {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return cl, phs
}

// A silently dropped ledger write must surface as a timeout at the
// receiver, never as a wrong or phantom completion.
func TestDroppedFrameSurfacesAsTimeout(t *testing.T) {
	cl, phs := faultJob(t, 2, core.Config{})
	cl.Fabric().SetFault(func(src, dst int) bool { return src == 0 && dst == 1 })
	if err := phs[0].Send(1, []byte{1}, 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(7, 100*time.Millisecond); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("dropped frame produced %v, want timeout", err)
	}
	// Heal the link: later traffic flows again (the dropped entry's
	// ledger slot is gone — a new send uses the next slot, which the
	// receiver cannot consume until the hole is filled; with sequence
	// validation the receiver simply never sees either, so use a fresh
	// job-level check instead: messages in the other direction work).
	cl.Fabric().SetFault(nil)
	if err := phs[1].Send(0, []byte{2}, 0, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitRemote(8, 5*time.Second); err != nil {
		t.Fatalf("reverse direction broken after fault cleared: %v", err)
	}
}

// A lossy period must never corrupt or reorder what is delivered:
// everything that arrives is a message that was sent, in order.
func TestLossyLinkNeverCorrupts(t *testing.T) {
	cl, phs := faultJob(t, 2, core.Config{LedgerSlots: 16})
	drop := 0
	var mu sync.Mutex
	cl.Fabric().SetFault(func(src, dst int) bool {
		if src != 0 || dst != 1 {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		drop++
		return drop%7 == 0 // drop every 7th frame 0->1
	})
	// Fire-and-forget sends; some vanish. Stop before the ledger's
	// in-order head can wedge behind a dropped slot forever: drop only
	// during the first burst, then heal and flush.
	for i := 1; i <= 10; i++ {
		_ = phs[0].Send(1, []byte{byte(i)}, 0, uint64(i))
		phs[0].Progress()
	}
	cl.Fabric().SetFault(nil)
	// Harvest until drained-quiescent: keep pumping both ranks and exit
	// only after a sustained stretch with no engine work and no new
	// delivery. Unlike a fixed wall-clock window this neither exits
	// before a slow machine finishes delivering nor burns time on a
	// fast one — the flake source was exactly that fixed window.
	last := uint64(0)
	quiet := 0
	for quiet < 50 { // 50 consecutive idle 1ms rounds = drained
		work := phs[0].Progress() + phs[1].Progress()
		if c, ok := phs[1].PopRemote(); ok {
			if c.RID <= last {
				t.Fatalf("reordered or duplicated delivery: %d after %d", c.RID, last)
			}
			if len(c.Data) != 1 || c.Data[0] != byte(c.RID) {
				t.Fatalf("corrupted payload for RID %d: %v", c.RID, c.Data)
			}
			last = c.RID
			quiet = 0
			continue
		}
		if work > 0 {
			quiet = 0
			continue
		}
		quiet++
		time.Sleep(time.Millisecond)
	}
}

// When the transport NAKs (bad rkey), the initiator gets an error
// completion rather than a hang.
func TestRemoteAccessErrorSurfaces(t *testing.T) {
	_, phs := faultJob(t, 2, core.Config{DisablePackedPut: true})
	bogus := coreRemoteBuffer(0x4000, 9999, 4096)
	if err := phs[0].PutWithCompletion(1, []byte{1}, bogus, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		phs[0].Progress()
		if c, ok := phs[0].PopLocal(); ok {
			if c.Err == nil {
				t.Fatalf("bad-rkey put completed OK: %+v", c)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("error completion never surfaced")
		}
	}
}

// coreRemoteBuffer builds a descriptor without importing mem twice.
func coreRemoteBuffer(addr uint64, rkey uint32, n int) (rb mem.RemoteBuffer) {
	rb.Addr, rb.RKey, rb.Len = addr, rkey, n
	return rb
}
