package core_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
)

const waitT = 5 * time.Second

// newJob boots an n-rank Photon job over a fresh simulated cluster.
func newJob(t *testing.T, n int, cfg core.Config) []*core.Photon {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", r, err)
		}
	}
	return phs
}

// registerAndShare registers buf at owner and returns the descriptors
// visible from every rank (collective).
func registerAndShare(t *testing.T, phs []*core.Photon, owner int, buf []byte) ([]mem.RemoteBuffer, sync.Locker) {
	t.Helper()
	var lk sync.Locker
	var rb mem.RemoteBuffer
	if buf != nil {
		var err error
		rb, lk, err = phs[owner].RegisterBuffer(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	descs := make([][]mem.RemoteBuffer, len(phs))
	var wg sync.WaitGroup
	for r := range phs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			contrib := mem.RemoteBuffer{}
			if r == owner {
				contrib = rb
			}
			descs[r], _ = phs[r].ExchangeBuffers(contrib)
		}(r)
	}
	wg.Wait()
	return descs[0], lk
}

func TestInitBasics(t *testing.T) {
	phs := newJob(t, 3, core.Config{})
	for r, p := range phs {
		if p.Rank() != r || p.Size() != 3 {
			t.Fatalf("rank/size = %d/%d", p.Rank(), p.Size())
		}
	}
	cfg := phs[0].Config()
	if cfg.LedgerSlots != 64 || cfg.EagerEntrySize != 1024 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if phs[0].EagerThreshold() != 1024-8-9 {
		t.Fatalf("EagerThreshold = %d", phs[0].EagerThreshold())
	}
}

func TestPutWithCompletionDirect(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	target := make([]byte, 256)
	descs, lk := registerAndShare(t, phs, 1, target)

	payload := []byte("photon put-with-completion")
	err := phs[0].PutWithCompletion(1, payload, descs[1], 32, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := phs[0].WaitLocal(100, waitT)
	if err != nil || lc.Err != nil {
		t.Fatalf("local completion: %v %v", err, lc.Err)
	}
	if lc.Rank != 1 {
		t.Fatalf("local completion rank = %d", lc.Rank)
	}
	rc, err := phs[1].WaitRemote(200, waitT)
	if err != nil || rc.Err != nil {
		t.Fatalf("remote completion: %v %v", err, rc.Err)
	}
	if rc.Rank != 0 {
		t.Fatalf("remote completion rank = %d", rc.Rank)
	}
	lk.Lock()
	got := append([]byte(nil), target[32:32+len(payload)]...)
	lk.Unlock()
	if !bytes.Equal(got, payload) {
		t.Fatalf("target = %q", got)
	}
}

func TestPutLocalOnly(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	target := make([]byte, 64)
	descs, lk := registerAndShare(t, phs, 1, target)
	if err := phs[0].PutWithCompletion(1, []byte{7, 8, 9}, descs[1], 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(5, waitT); err != nil {
		t.Fatal(err)
	}
	lk.Lock()
	ok := target[0] == 7 && target[2] == 9
	lk.Unlock()
	if !ok {
		t.Fatal("data not written")
	}
	// No remote completion should appear.
	phs[1].Progress()
	if phs[1].PendingRemote() != 0 {
		t.Fatal("unexpected remote completion for remoteRID=0")
	}
}

func TestPutRemoteOnly(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	target := make([]byte, 64)
	descs, _ := registerAndShare(t, phs, 1, target)
	if err := phs[0].PutWithCompletion(1, []byte{1}, descs[1], 0, 0, 77); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(77, waitT); err != nil {
		t.Fatal(err)
	}
	phs[0].Progress()
	if phs[0].PendingLocal() != 0 {
		t.Fatal("unexpected local completion for localRID=0")
	}
}

func TestPutBoundsRejected(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	target := make([]byte, 16)
	descs, _ := registerAndShare(t, phs, 1, target)
	if err := phs[0].PutWithCompletion(1, make([]byte, 32), descs[1], 0, 1, 0); err == nil {
		t.Fatal("out-of-bounds put accepted")
	}
	if err := phs[0].PutWithCompletion(5, []byte{1}, descs[1], 0, 1, 0); !errors.Is(err, core.ErrBadRank) {
		t.Fatalf("bad rank: %v", err)
	}
}

func TestGetWithCompletion(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	src := []byte("remote data for one-sided get..")
	descs, _ := registerAndShare(t, phs, 1, src)

	dst := make([]byte, 11)
	if err := phs[0].GetWithCompletion(1, dst, descs[1], 7, 300, 400); err != nil {
		t.Fatal(err)
	}
	lc, err := phs[0].WaitLocal(300, waitT)
	if err != nil || lc.Err != nil {
		t.Fatalf("get local completion: %v %v", err, lc.Err)
	}
	if !bytes.Equal(dst, src[7:18]) {
		t.Fatalf("get returned %q, want %q", dst, src[7:18])
	}
	// The target learns of the get through the remote completion.
	rc, err := phs[1].WaitRemote(400, waitT)
	if err != nil || rc.Rank != 0 {
		t.Fatalf("get remote notify: %v %+v", err, rc)
	}
}

func TestGetValidation(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	src := make([]byte, 8)
	descs, _ := registerAndShare(t, phs, 1, src)
	if err := phs[0].GetWithCompletion(1, nil, descs[1], 0, 1, 0); err == nil {
		t.Fatal("zero-length get accepted")
	}
	if err := phs[0].GetWithCompletion(1, make([]byte, 16), descs[1], 0, 1, 0); err == nil {
		t.Fatal("out-of-bounds get accepted")
	}
}

func TestSendPackedSmall(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	msg := []byte("eager packed message")
	if err := phs[0].Send(1, msg, 11, 22); err != nil {
		t.Fatal(err)
	}
	rc, err := phs[1].WaitRemote(22, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rc.Data, msg) {
		t.Fatalf("delivered %q", rc.Data)
	}
	if _, err := phs[0].WaitLocal(11, waitT); err != nil {
		t.Fatal(err)
	}
	st := phs[0].Stats()
	if st.PutsPacked != 1 || st.RdzvSends != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendEmptyMessage(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	if err := phs[0].Send(1, nil, 0, 33); err != nil {
		t.Fatal(err)
	}
	rc, err := phs[1].WaitRemote(33, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if len(rc.Data) != 0 {
		t.Fatalf("empty send delivered %d bytes", len(rc.Data))
	}
}

func TestSendRendezvousLarge(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	big := make([]byte, 64*1024)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := phs[0].Send(1, big, 44, 55); err != nil {
		t.Fatal(err)
	}
	// Sender's FIN only arrives if the receiver progresses; drive both.
	done := make(chan core.Completion, 1)
	go func() {
		rc, err := phs[1].WaitRemote(55, waitT)
		if err != nil {
			t.Error(err)
		}
		done <- rc
	}()
	if _, err := phs[0].WaitLocal(44, waitT); err != nil {
		t.Fatal(err)
	}
	rc := <-done
	if !bytes.Equal(rc.Data, big) {
		t.Fatal("rendezvous payload corrupted")
	}
	st0, st1 := phs[0].Stats(), phs[1].Stats()
	if st0.RdzvSends != 1 {
		t.Fatalf("sender stats = %+v", st0)
	}
	if st1.RdzvRecvs != 1 {
		t.Fatalf("receiver stats = %+v", st1)
	}
}

func TestForceRendezvousAblation(t *testing.T) {
	phs := newJob(t, 2, core.Config{ForceRendezvous: true})
	if phs[0].EagerThreshold() != 0 {
		t.Fatalf("forced-rdzv threshold = %d", phs[0].EagerThreshold())
	}
	msg := []byte("small but forced through rendezvous")
	if err := phs[0].Send(1, msg, 1, 2); err != nil {
		t.Fatal(err)
	}
	go phs[0].WaitLocal(1, waitT)
	rc, err := phs[1].WaitRemote(2, waitT)
	if err != nil || !bytes.Equal(rc.Data, msg) {
		t.Fatalf("forced rdzv: %v %q", err, rc.Data)
	}
	if st := phs[0].Stats(); st.RdzvSends != 1 || st.PutsPacked != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCreditExhaustionWouldBlock(t *testing.T) {
	phs := newJob(t, 2, core.Config{LedgerSlots: 4})
	// Receiver never progresses: after 4 packed sends the eager
	// ledger is out of credits.
	var err error
	sent := 0
	for i := 0; i < 10; i++ {
		err = phs[0].Send(1, []byte{byte(i)}, 0, uint64(i+1))
		if err != nil {
			break
		}
		sent++
	}
	if !errors.Is(err, core.ErrWouldBlock) {
		t.Fatalf("err = %v after %d sends, want ErrWouldBlock", err, sent)
	}
	if sent != 4 {
		t.Fatalf("sent %d before blocking, want 4", sent)
	}
	// Once the receiver consumes, credits flow back and sending resumes.
	for i := 0; i < sent; i++ {
		if _, err := phs[1].WaitRemote(uint64(i+1), waitT); err != nil {
			t.Fatal(err)
		}
	}
	phs[1].Flush() // push credit returns out eagerly
	deadline := time.Now().Add(waitT)
	for {
		if err = phs[0].Send(1, []byte{99}, 0, 99); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("credits never returned: %v", err)
		}
		phs[0].Progress()
	}
	if _, err := phs[1].WaitRemote(99, waitT); err != nil {
		t.Fatal(err)
	}
}

func TestSendBlockingUnderPressure(t *testing.T) {
	phs := newJob(t, 2, core.Config{LedgerSlots: 4, CreditBatch: 1})
	const n = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := phs[0].SendBlocking(1, []byte{byte(i)}, 0, uint64(i+1)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		rc, err := phs[1].WaitRemote(uint64(i+1), waitT)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if rc.Data[0] != byte(i) {
			t.Fatalf("message %d carried %d", i, rc.Data[0])
		}
	}
	wg.Wait()
}

func TestFetchAddAndCompSwap(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	words := make([]byte, 64)
	binary.LittleEndian.PutUint64(words[8:], 1000)
	descs, lk := registerAndShare(t, phs, 1, words)

	if err := phs[0].FetchAdd(1, descs[1], 8, 42, 70); err != nil {
		t.Fatal(err)
	}
	lc, err := phs[0].WaitLocal(70, waitT)
	if err != nil || lc.Err != nil {
		t.Fatalf("fadd: %v %v", err, lc.Err)
	}
	if lc.Value != 1000 {
		t.Fatalf("fadd prior value = %d", lc.Value)
	}
	lk.Lock()
	now := binary.LittleEndian.Uint64(words[8:])
	lk.Unlock()
	if now != 1042 {
		t.Fatalf("memory after fadd = %d", now)
	}

	if err := phs[0].CompSwap(1, descs[1], 8, 1042, 7, 71); err != nil {
		t.Fatal(err)
	}
	lc, err = phs[0].WaitLocal(71, waitT)
	if err != nil || lc.Value != 1042 {
		t.Fatalf("cas: %v value=%d", err, lc.Value)
	}
	lk.Lock()
	now = binary.LittleEndian.Uint64(words[8:])
	lk.Unlock()
	if now != 7 {
		t.Fatalf("memory after cas = %d", now)
	}
	// Misaligned/out-of-bounds atomics rejected up front.
	if err := phs[0].FetchAdd(1, descs[1], 60, 1, 72); err == nil {
		t.Fatal("out-of-bounds atomic accepted")
	}
}

func TestOrderingDataBeforeNotification(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	target := make([]byte, 4096)
	descs, lk := registerAndShare(t, phs, 1, target)
	// Burst of unnotified puts, then one notified put; when the
	// notification arrives, every prior byte must be visible.
	for i := 0; i < 32; i++ {
		if err := phs[0].PutWithCompletion(1, []byte{byte(i + 1)}, descs[1], uint64(i*8), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := phs[0].PutWithCompletion(1, []byte{0xFF}, descs[1], 4000, 0, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(9, waitT); err != nil {
		t.Fatal(err)
	}
	lk.Lock()
	defer lk.Unlock()
	for i := 0; i < 32; i++ {
		if target[i*8] != byte(i+1) {
			t.Fatalf("byte %d not visible at notification time", i)
		}
	}
	if target[4000] != 0xFF {
		t.Fatal("final put not visible")
	}
}

func TestThreeRankCrossTraffic(t *testing.T) {
	phs := newJob(t, 3, core.Config{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				dst := (r + 1) % 3
				rid := uint64(r*1000 + k + 1)
				if err := phs[r].SendBlocking(dst, []byte{byte(r), byte(k)}, 0, rid); err != nil {
					t.Errorf("rank %d send: %v", r, err)
					return
				}
			}
		}(r)
	}
	// Each rank receives 20 messages from (r+2)%3.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			src := (r + 2) % 3
			for k := 0; k < 20; k++ {
				rid := uint64(src*1000 + k + 1)
				rc, err := phs[r].WaitRemote(rid, waitT)
				if err != nil {
					t.Errorf("rank %d recv %d: %v", r, k, err)
					return
				}
				if rc.Rank != src || rc.Data[0] != byte(src) || rc.Data[1] != byte(k) {
					t.Errorf("rank %d got %+v", r, rc)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestSelfSend(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	if err := phs[0].Send(0, []byte("loopback"), 1, 2); err != nil {
		t.Fatal(err)
	}
	rc, err := phs[0].WaitRemote(2, waitT)
	if err != nil || string(rc.Data) != "loopback" {
		t.Fatalf("self send: %v %q", err, rc.Data)
	}
	if rc.Rank != 0 {
		t.Fatalf("self send rank = %d", rc.Rank)
	}
}

func TestProbeFlags(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	if err := phs[0].Send(1, []byte{1}, 50, 60); err != nil {
		t.Fatal(err)
	}
	// Receiver: remote-only probe must surface it; local-only must not.
	deadline := time.Now().Add(waitT)
	for {
		if _, ok := phs[1].Probe(core.ProbeLocal); ok {
			t.Fatal("ProbeLocal returned a remote completion")
		}
		if c, ok := phs[1].Probe(core.ProbeRemote); ok {
			if c.RID != 60 {
				t.Fatalf("probe RID = %d", c.RID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never saw the message")
		}
	}
	if c, ok := phs[0].Probe(core.ProbeAny); !ok || !c.Local || c.RID != 50 {
		// May need more progress rounds.
		lc, err := phs[0].WaitLocal(50, waitT)
		if err != nil {
			t.Fatalf("local completion: %v (first probe %+v ok=%v)", err, c, ok)
		}
		_ = lc
	}
}

func TestWaitTimeout(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	start := time.Now()
	_, err := phs[0].WaitLocal(999, 50*time.Millisecond)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("returned before deadline")
	}
}

func TestCompletionFIFOPerStream(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	for i := 1; i <= 5; i++ {
		if err := phs[0].Send(1, []byte{byte(i)}, 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		deadline := time.Now().Add(waitT)
		for {
			phs[1].Progress()
			if c, ok := phs[1].PopRemote(); ok {
				if c.RID != uint64(i) {
					t.Fatalf("out of order: got %d want %d", c.RID, i)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("message %d never arrived", i)
			}
		}
	}
}

func TestCloseRejectsOps(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	if err := phs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := phs[0].Send(1, []byte{1}, 0, 1); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, _, err := phs[0].RegisterBuffer(make([]byte, 8)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("register after close: %v", err)
	}
	if err := phs[0].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestManyRendezvousRecycleSlab(t *testing.T) {
	// Slab smaller than total traffic: blocks must recycle.
	phs := newJob(t, 2, core.Config{RdzvSlabSize: 256 * 1024})
	const n = 16
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := phs[0].SendBlocking(1, payload, uint64(1000+i), uint64(i+1)); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if _, err := phs[0].WaitLocal(uint64(1000+i), waitT); err != nil {
				t.Errorf("fin %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		rc, err := phs[1].WaitRemote(uint64(i+1), waitT)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(rc.Data, payload) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
	wg.Wait()
}

func TestStatsProgressCounters(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	phs[0].Progress()
	st := phs[0].Stats()
	if st.ProgressCalls == 0 {
		t.Fatal("progress not counted")
	}
}

func TestPackedPutSingleWireOp(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	target := make([]byte, 256)
	descs, lk := registerAndShare(t, phs, 1, target)
	payload := []byte("packed small put")
	if err := phs[0].PutWithCompletion(1, payload, descs[1], 16, 7, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(8, waitT); err != nil {
		t.Fatal(err)
	}
	lk.Lock()
	ok := bytes.Equal(target[16:16+len(payload)], payload)
	lk.Unlock()
	if !ok {
		t.Fatal("packed put payload not placed")
	}
	if _, err := phs[0].WaitLocal(7, waitT); err != nil {
		t.Fatal(err)
	}
	// The packed path counts as a packed put, not a direct one.
	if st := phs[0].Stats(); st.PutsPacked != 1 || st.PutsDirect != 0 {
		t.Fatalf("stats = %+v, want packed path", st)
	}
}

func TestPackedPutAblationDisables(t *testing.T) {
	phs := newJob(t, 2, core.Config{DisablePackedPut: true})
	target := make([]byte, 64)
	descs, _ := registerAndShare(t, phs, 1, target)
	if err := phs[0].PutWithCompletion(1, []byte{1, 2}, descs[1], 0, 0, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(9, waitT); err != nil {
		t.Fatal(err)
	}
	if st := phs[0].Stats(); st.PutsDirect != 1 || st.PutsPacked != 0 {
		t.Fatalf("stats = %+v, want direct path", st)
	}
}

func TestPackedPutBadAddressSurfacesError(t *testing.T) {
	phs := newJob(t, 2, core.Config{})
	// Descriptor that passes local Contains but points at unregistered
	// remote memory: the target-side placement must fail and surface
	// an error completion there.
	bogus := mem.RemoteBuffer{Addr: 0xDEAD000, RKey: 9999, Len: 1024}
	if err := phs[0].PutWithCompletion(1, []byte{1}, bogus, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitT)
	for {
		phs[1].Progress()
		if c, ok := phs[1].PopRemote(); ok {
			if c.Err == nil {
				t.Fatalf("bogus packed put delivered without error: %+v", c)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("error completion never surfaced")
		}
	}
}
