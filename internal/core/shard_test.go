package core_test

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/core"
	"photon/internal/trace"
)

// TestShardConfigValidation pins the EngineShards range check and the
// shard-count accessor.
func TestShardConfigValidation(t *testing.T) {
	phs := newJob(t, 2, core.Config{EngineShards: 3})
	for _, p := range phs {
		if p.NumShards() != 3 {
			t.Fatalf("NumShards = %d, want 3", p.NumShards())
		}
	}
	lb := newLoopBackend()
	if _, err := core.Init(lb, core.Config{EngineShards: 257}); err == nil {
		t.Fatal("EngineShards=257 accepted")
	}
	if _, err := core.Init(lb, core.Config{EngineShards: -1}); err == nil {
		t.Fatal("EngineShards=-1 accepted")
	}
}

// TestShardedPutGet runs the standard put/get pair with peers spread
// over multiple engine shards (4 ranks, 2 shards → two peers per
// shard at every rank).
func TestShardedPutGet(t *testing.T) {
	phs := newJob(t, 4, core.Config{EngineShards: 2})
	buf := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 3, buf)
	for src := 0; src < 3; src++ {
		payload := []byte{byte(0xA0 + src)}
		rid := uint64(1000 + src)
		if err := phs[src].PutBlocking(3, payload, descs[3], uint64(src), rid, rid+100); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[src].WaitLocal(rid, waitT); err != nil {
			t.Fatalf("src %d local: %v", src, err)
		}
		if _, err := phs[3].WaitRemote(rid+100, waitT); err != nil {
			t.Fatalf("src %d remote: %v", src, err)
		}
	}
	if !bytes.Equal(buf[:3], []byte{0xA0, 0xA1, 0xA2}) {
		t.Fatalf("buf = %x", buf[:3])
	}
}

// TestConcurrentShardProgressRace is the satellite-2 regression: two
// goroutines driving the two shards of one rank concurrently (the
// background-runner topology) while posters on other ranks keep both
// shards' peers busy. Run under -race in CI; the per-shard TryLock
// mutexes and work-stealing backend reap must keep this data-race
// free.
func TestConcurrentShardProgressRace(t *testing.T) {
	phs := newJob(t, 3, core.Config{EngineShards: 2})
	buf := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 0, buf)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for shard := 0; shard < phs[0].NumShards(); shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for !stop.Load() {
				phs[0].ProgressShard(shard)
			}
		}(shard)
	}

	const perSrc = 50
	for src := 1; src <= 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perSrc; i++ {
				rid := uint64(src*1000 + i)
				if err := phs[src].PutBlocking(0, []byte{byte(src)}, descs[0], uint64(src), rid, rid); err != nil {
					t.Error(err)
					return
				}
				if _, err := phs[src].WaitLocal(rid, waitT); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}

	// Harvest the remote completions on rank 0 without driving
	// progress ourselves: the shard goroutines above are the engine.
	got := 0
	deadline := time.Now().Add(waitT)
	for got < 2*perSrc {
		if c, ok := phs[0].PopRemote(); ok {
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d remote completions", got, 2*perSrc)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestBackgroundRunners exercises StartProgress: one pinned runner
// per shard reaps and sweeps with no caller-driven Progress at all.
func TestBackgroundRunners(t *testing.T) {
	phs := newJob(t, 3, core.Config{EngineShards: 2})
	buf := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 0, buf)
	for _, p := range phs {
		p.StartProgress()
	}
	for src := 1; src <= 2; src++ {
		rid := uint64(src * 11)
		if err := phs[src].PutBlocking(0, []byte{byte(src)}, descs[0], uint64(src), rid, rid+1); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[src].WaitLocal(rid, waitT); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[0].WaitRemote(rid+1, waitT); err != nil {
			t.Fatal(err)
		}
	}
	if buf[1] != 1 || buf[2] != 2 {
		t.Fatalf("buf = %x", buf[1:3])
	}
}

// TestConcurrentWaitersNotStarved is the satellite-1 fairness
// regression: multiple goroutines parked in Wait* at once, each
// holding its own notify subscription. With the old single
// engine-level notify channel one waiter could swallow the only wake
// token and leave the others sleeping out their grace timers; with
// per-waiter subscriptions every backend event reaches every parked
// waiter, so all of them must harvest promptly.
func TestConcurrentWaitersNotStarved(t *testing.T) {
	phs := newJob(t, 3, core.Config{EngineShards: 2})
	buf := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 0, buf)

	const waiters = 4
	errCh := make(chan error, waiters)
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := phs[0].WaitRemote(uint64(500+w), waitT)
			errCh <- err
		}(w)
	}
	// Let the waiters park, then satisfy them from two source ranks
	// (peers living on different shards of rank 0).
	time.Sleep(10 * time.Millisecond)
	for w := 0; w < waiters; w++ {
		src := 1 + w%2
		rid := uint64(900 + w)
		if err := phs[src].PutBlocking(0, []byte{byte(w)}, descs[0], uint64(16+w), rid, uint64(500+w)); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[src].WaitLocal(rid, waitT); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("starved waiter: %v", err)
		}
	}
}

// TestShardedPutAllocGuard extends the zero-allocation guard to the
// multi-shard engine: Progress over two shards, the rotating pop
// cursor, and the per-shard completion rings must all stay off the
// heap in steady state.
func TestShardedPutAllocGuard(t *testing.T) {
	p, dst := loopEnv(t, core.Config{EngineShards: 2})
	payload := make([]byte, 8)
	put := func() {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("sharded put round trip: %.2f allocs/op", allocs)
	if allocs > 1 {
		t.Fatalf("sharded put allocates %.2f times per op, want <= 1", allocs)
	}
}

// TestTracedShardedPutAllocGuard is the fully-observed variant of the
// sharded guard: trace ring enabled with every op sampled, so each
// round trip records the full post → link → complete → reap lifecycle
// plus sampled shard.enter events — and must stay at zero allocations.
func TestTracedShardedPutAllocGuard(t *testing.T) {
	ring := trace.NewRing(4096)
	ring.Enable(true)
	p, dst := loopEnv(t, core.Config{EngineShards: 2, Trace: ring})
	payload := make([]byte, 8)
	put := func() {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("traced sharded put round trip: %.2f allocs/op", allocs)
	if allocs > 0 {
		t.Fatalf("traced sharded put allocates %.2f times per op, want 0", allocs)
	}
	if ring.CountByKind()[trace.KindPost] == 0 {
		t.Fatal("trace ring recorded no post events — tracing was not active")
	}
}

// TestShardTraceEvents checks the shard-engine trace kinds land in the
// ring: a ProgressShard entry event, a cross-shard work-steal (shard 1
// reaping a completion for a peer owned by shard 0), and the
// background runner's park/wake cycle.
func TestShardTraceEvents(t *testing.T) {
	ring := trace.NewRing(8192)
	ring.Enable(true)
	phs := newJob(t, 3, core.Config{EngineShards: 2, Trace: ring})
	buf := make([]byte, 256)
	descs, _ := registerAndShare(t, phs, 0, buf)

	hasMsg := func(msg string) bool {
		for _, e := range ring.Snapshot() {
			if e.Kind == trace.KindShard && e.Msg == msg {
				return true
			}
		}
		return false
	}

	phs[0].ProgressShard(0)
	if !hasMsg("shard.enter") {
		t.Fatal("ProgressShard recorded no shard.enter event")
	}

	// Work-steal: rank 1's put toward rank 0 belongs to shard 0
	// (0 % 2), but only shard 1 drives the backend CQ here, so the
	// sampled completion is reaped cross-shard.
	deadline := time.Now().Add(waitT)
	for {
		err := phs[1].PutWithCompletion(0, []byte{7}, descs[0], 0, 41, 42)
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrWouldBlock) || time.Now().After(deadline) {
			t.Fatal(err)
		}
		phs[1].ProgressShard(1)
	}
	for {
		phs[1].ProgressShard(1)
		if _, ok := phs[1].PopLocal(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("put local completion never surfaced via shard 1")
		}
	}
	if !hasMsg("shard.steal") {
		t.Fatal("cross-shard reap recorded no shard.steal event")
	}

	// Park/wake: start rank 0's runners, let them go idle and park,
	// then keep poking traffic at rank 0 until a parked runner records
	// a latch wakeup.
	phs[0].StartProgress()
	time.Sleep(20 * time.Millisecond)
	if !hasMsg("shard.park") {
		t.Fatal("idle background runners recorded no shard.park event")
	}
	for i := uint64(0); !hasMsg("shard.wake"); i++ {
		if time.Now().After(deadline) {
			t.Fatal("no shard.wake event despite traffic at parked runners")
		}
		if err := phs[1].PutBlocking(0, []byte{1}, descs[0], 1, 100+i, 200+i); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[1].WaitLocal(100+i, waitT); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardMetricsExported checks the per-shard gauges surface.
func TestShardMetricsExported(t *testing.T) {
	phs := newJob(t, 2, core.Config{EngineShards: 2, Metrics: true})
	buf := make([]byte, 256)
	descs, _ := registerAndShare(t, phs, 1, buf)
	if err := phs[0].PutBlocking(1, []byte{1}, descs[1], 0, 7, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(7, waitT); err != nil {
		t.Fatal(err)
	}
	snap := phs[0].Metrics()
	if v, ok := snap.Gauges.Get("engine_shards"); !ok || v != 2 {
		t.Fatalf("engine_shards = %d ok=%v", v, ok)
	}
	for _, name := range []string{"engine_shard_reaps", "engine_shard0_sweeps", "engine_shard1_sweeps"} {
		if _, ok := snap.Gauges.Get(name); !ok {
			t.Fatalf("gauge %s missing", name)
		}
	}
}
