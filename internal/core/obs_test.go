package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/trace"
)

// obsConfig wires a private enabled trace ring and metrics into a
// config, so tests observe one instance without touching trace.Global.
func obsConfig() (core.Config, *trace.Ring) {
	ring := trace.NewRing(8192)
	ring.Enable(true)
	return core.Config{Trace: ring, Metrics: true}, ring
}

// drainSelf pumps progress on a single-rank instance until one local
// and one remote completion are harvested.
func drainSelf(t *testing.T, p *core.Photon, wantRemote bool) {
	t.Helper()
	gotL, gotR := false, !wantRemote
	for i := 0; i < 1_000_000 && (!gotL || !gotR); i++ {
		p.Progress()
		if c, ok := p.Probe(core.ProbeAny); ok {
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			if c.Local {
				gotL = true
			} else {
				gotR = true
			}
		}
	}
	if !gotL || !gotR {
		t.Fatalf("completions not harvested: local=%v remote=%v", gotL, gotR)
	}
}

// TestTraceRIDCorrelationLoopback drives one eager put, one rendezvous
// send, and one fetch-add through a single-rank loopback instance and
// asserts every initiator post event in the trace has a matching
// delivery event with the same RID: a ledger event for ops that land a
// ledger entry at the target (eager put, rendezvous RTS), a
// backend-complete event for ops whose result returns to the initiator
// (fetch-add).
func TestTraceRIDCorrelationLoopback(t *testing.T) {
	cfg, ring := obsConfig()
	p, err := core.Init(newLoopBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, 1<<20)
	rb, _, err := p.RegisterBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := p.ExchangeBuffers(rb)
	if err != nil {
		t.Fatal(err)
	}
	dst := descs[0]

	// Eager put.
	if err := p.PutWithCompletion(0, []byte("observable"), dst, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	drainSelf(t, p, true)

	// Rendezvous send (payload above the eager threshold).
	big := make([]byte, p.EagerThreshold()*4)
	for i := range big {
		big[i] = byte(i)
	}
	if err := p.Send(0, big, 3, 4); err != nil {
		t.Fatal(err)
	}
	drainSelf(t, p, true)

	// Fetch-add (local completion only).
	if err := p.FetchAdd(0, dst, 64, 7, 5); err != nil {
		t.Fatal(err)
	}
	drainSelf(t, p, false)

	evs := ring.Snapshot()
	delivered := map[uint64]bool{}
	for _, e := range evs {
		if e.Kind == trace.KindLedger || e.Kind == trace.KindComplete {
			delivered[e.Arg] = true
		}
	}
	posts := 0
	for _, e := range evs {
		if e.Kind != trace.KindPost {
			continue
		}
		posts++
		if !delivered[e.Arg] {
			t.Errorf("post event %q rid=%d has no matching delivery event", e.Msg, e.Arg)
		}
	}
	if posts < 3 {
		t.Fatalf("only %d post events traced, want >= 3 (put, send, atomic)", posts)
	}
	// Reap events close the lifecycle: app-side harvest must be traced.
	if n := ring.CountByKind()[trace.KindReap]; n == 0 {
		t.Fatal("no reap events traced")
	}
}

// assertOpLatencies drives a put, an eager send, and a fetch-add from
// rank 0 to rank 1 and asserts the initiator's metrics snapshot holds
// non-zero post→initiator and post→remote-delivery histograms for all
// three op kinds.
func assertOpLatencies(t *testing.T, phs []*core.Photon) {
	t.Helper()
	target := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 1, target)

	// Eager put.
	if err := phs[0].PutWithCompletion(1, []byte("metered"), descs[1], 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(1, waitT); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(2, waitT); err != nil {
		t.Fatal(err)
	}

	// Eager send.
	msg := []byte("metered send")
	if err := phs[0].Send(1, msg, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(3, waitT); err != nil {
		t.Fatal(err)
	}
	rc, err := phs[1].WaitRemote(4, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rc.Data, msg) {
		t.Fatalf("send delivered %q", rc.Data)
	}

	// Fetch-add.
	if err := phs[0].FetchAdd(1, descs[1], 128, 9, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(5, waitT); err != nil {
		t.Fatal(err)
	}

	snap := phs[0].Metrics()
	byName := map[string]int64{}
	for i := range snap.Hists {
		byName[snap.Hists[i].Name] = snap.Hists[i].Hist.N()
	}
	for _, name := range []string{
		"put/initiator", "put/remote",
		"send/initiator", "send/remote",
		"atomic/initiator", "atomic/remote",
	} {
		if byName[name] == 0 {
			t.Errorf("histogram %q empty, want non-zero (snapshot: %v)", name, byName)
		}
	}
	// Progress-phase timing must have accumulated on the driving rank.
	if byName["progress/reap"] == 0 {
		t.Errorf("progress/reap histogram empty")
	}
	// Engine gauges ride along even without traffic-specific state.
	if _, ok := snap.Gauges.Get("local_cq_highwater"); !ok {
		t.Errorf("local_cq_highwater gauge missing")
	}
	if _, ok := snap.Gauges.Get(fmt.Sprintf("peer%d_entries_consumed", 1)); !ok {
		t.Errorf("per-peer gauge missing")
	}
}

// TestMetricsLatenciesVsim exercises the metrics plane end to end over
// the simulated-verbs backend.
func TestMetricsLatenciesVsim(t *testing.T) {
	phs := newJob(t, 2, core.Config{Metrics: true})
	assertOpLatencies(t, phs)
}

// TestMetricsLatenciesTCP exercises the same path over the real-socket
// TCP backend.
func TestMetricsLatenciesTCP(t *testing.T) {
	phs, cleanup, err := bench.NewTCPPhotons(2, core.Config{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	assertOpLatencies(t, phs)
}

// TestRendezvousSendLatencyClosesAtFIN checks the rendezvous send
// latency distribution is closed by the FIN (both stages) rather than
// by the local RTS write completing.
func TestRendezvousSendLatencyClosesAtFIN(t *testing.T) {
	phs := newJob(t, 2, core.Config{Metrics: true})
	target := make([]byte, 4096)
	registerAndShare(t, phs, 1, target)

	big := make([]byte, 64*1024)
	if err := phs[0].Send(1, big, 1, 2); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := phs[1].WaitRemote(2, waitT); err != nil {
			t.Error(err)
		}
	}()
	if _, err := phs[0].WaitLocal(1, waitT); err != nil {
		t.Fatal(err)
	}
	<-done

	snap := phs[0].Metrics()
	for i := range snap.Hists {
		h := &snap.Hists[i]
		if h.Name == "send/remote" && h.Hist.N() > 0 {
			return
		}
	}
	t.Fatal("rendezvous send did not close a send/remote observation at FIN")
}

// TestObsDisabledAllocGuard pins the "free when off" property: with
// the full observability plane compiled in — a trace ring attached but
// disabled, metrics off — the eager put round trip must stay at zero
// allocations, matching the PR-1 fast-path guarantee.
func TestObsDisabledAllocGuard(t *testing.T) {
	ring := trace.NewRing(1024) // attached, never enabled
	p, dst := loopEnv(t, core.Config{Trace: ring})
	payload := make([]byte, 8)
	put := func() {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("eager put with observability attached but disabled: %.2f allocs/op", allocs)
	if allocs > 0 {
		t.Fatalf("disabled observability allocates %.2f times per op, want 0", allocs)
	}
	if ring.Len() != 0 {
		t.Fatalf("disabled ring recorded %d events", ring.Len())
	}
}

// TestTraceSampling checks TraceSampleShift thins op posts: with a
// shift of 2 only ~1/4 of ops are stamped.
func TestTraceSampling(t *testing.T) {
	ring := trace.NewRing(8192)
	ring.Enable(true)
	p, dst := loopEnv(t, core.Config{Trace: ring, TraceSampleShift: 2})
	payload := make([]byte, 8)
	const ops = 256
	for i := 0; i < ops; i++ {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	posts := ring.CountByKind()[trace.KindPost]
	if posts == 0 || posts > ops/2 {
		t.Fatalf("sampled posts = %d, want ~%d (shift 2 over %d ops)", posts, ops/4, ops)
	}
}
