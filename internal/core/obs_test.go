package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photon/internal/backend/vsim"
	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
	"photon/internal/trace"
)

// obsConfig wires a private enabled trace ring and metrics into a
// config, so tests observe one instance without touching trace.Global.
func obsConfig() (core.Config, *trace.Ring) {
	ring := trace.NewRing(8192)
	ring.Enable(true)
	return core.Config{Trace: ring, Metrics: true}, ring
}

// drainSelf pumps progress on a single-rank instance until one local
// and one remote completion are harvested.
func drainSelf(t *testing.T, p *core.Photon, wantRemote bool) {
	t.Helper()
	gotL, gotR := false, !wantRemote
	for i := 0; i < 1_000_000 && (!gotL || !gotR); i++ {
		p.Progress()
		if c, ok := p.Probe(core.ProbeAny); ok {
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			if c.Local {
				gotL = true
			} else {
				gotR = true
			}
		}
	}
	if !gotL || !gotR {
		t.Fatalf("completions not harvested: local=%v remote=%v", gotL, gotR)
	}
}

// TestTraceRIDCorrelationLoopback drives one eager put, one rendezvous
// send, and one fetch-add through a single-rank loopback instance and
// asserts every initiator post event in the trace has a matching
// delivery event with the same RID: a ledger event for ops that land a
// ledger entry at the target (eager put, rendezvous RTS), a
// backend-complete event for ops whose result returns to the initiator
// (fetch-add).
func TestTraceRIDCorrelationLoopback(t *testing.T) {
	cfg, ring := obsConfig()
	p, err := core.Init(newLoopBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, 1<<20)
	rb, _, err := p.RegisterBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := p.ExchangeBuffers(rb)
	if err != nil {
		t.Fatal(err)
	}
	dst := descs[0]

	// Eager put.
	if err := p.PutWithCompletion(0, []byte("observable"), dst, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	drainSelf(t, p, true)

	// Rendezvous send (payload above the eager threshold).
	big := make([]byte, p.EagerThreshold()*4)
	for i := range big {
		big[i] = byte(i)
	}
	if err := p.Send(0, big, 3, 4); err != nil {
		t.Fatal(err)
	}
	drainSelf(t, p, true)

	// Fetch-add (local completion only).
	if err := p.FetchAdd(0, dst, 64, 7, 5); err != nil {
		t.Fatal(err)
	}
	drainSelf(t, p, false)

	evs := ring.Snapshot()
	delivered := map[uint64]bool{}
	for _, e := range evs {
		if e.Kind == trace.KindLedger || e.Kind == trace.KindLink || e.Kind == trace.KindComplete {
			delivered[e.Arg] = true
		}
	}
	posts := 0
	for _, e := range evs {
		if e.Kind != trace.KindPost {
			continue
		}
		posts++
		if !delivered[e.Arg] {
			t.Errorf("post event %q rid=%d has no matching delivery event", e.Msg, e.Arg)
		}
	}
	if posts < 3 {
		t.Fatalf("only %d post events traced, want >= 3 (put, send, atomic)", posts)
	}
	// Reap events close the lifecycle: app-side harvest must be traced.
	if n := ring.CountByKind()[trace.KindReap]; n == 0 {
		t.Fatal("no reap events traced")
	}
}

// assertOpLatencies drives a put, an eager send, and a fetch-add from
// rank 0 to rank 1 and asserts the initiator's metrics snapshot holds
// non-zero post→initiator and post→remote-delivery histograms for all
// three op kinds.
func assertOpLatencies(t *testing.T, phs []*core.Photon) {
	t.Helper()
	target := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 1, target)

	// Eager put.
	if err := phs[0].PutWithCompletion(1, []byte("metered"), descs[1], 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(1, waitT); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[1].WaitRemote(2, waitT); err != nil {
		t.Fatal(err)
	}

	// Eager send.
	msg := []byte("metered send")
	if err := phs[0].Send(1, msg, 3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(3, waitT); err != nil {
		t.Fatal(err)
	}
	rc, err := phs[1].WaitRemote(4, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rc.Data, msg) {
		t.Fatalf("send delivered %q", rc.Data)
	}

	// Fetch-add.
	if err := phs[0].FetchAdd(1, descs[1], 128, 9, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(5, waitT); err != nil {
		t.Fatal(err)
	}

	snap := phs[0].Metrics()
	byName := map[string]int64{}
	for i := range snap.Hists {
		byName[snap.Hists[i].Name] = snap.Hists[i].Hist.N()
	}
	for _, name := range []string{
		"put/initiator", "put/remote",
		"send/initiator", "send/remote",
		"atomic/initiator", "atomic/remote",
	} {
		if byName[name] == 0 {
			t.Errorf("histogram %q empty, want non-zero (snapshot: %v)", name, byName)
		}
	}
	// Progress-phase timing must accumulate on the driving rank. Phase
	// observations are 1-in-64 round samples, so pump puts until a
	// sampled round coincides with backend work (bounded: ~64 samples'
	// worth of traffic before declaring failure).
	reapSeen := func() bool {
		s := phs[0].Metrics()
		for i := range s.Hists {
			if s.Hists[i].Name == "progress/reap" && s.Hists[i].Hist.N() > 0 {
				return true
			}
		}
		return false
	}
	for i := 0; i < 4096 && !reapSeen(); i++ {
		rid := uint64(100 + 2*i)
		if err := phs[0].PutWithCompletion(1, []byte{1}, descs[1], 0, rid, rid+1); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[0].WaitLocal(rid, waitT); err != nil {
			t.Fatal(err)
		}
		if _, err := phs[1].WaitRemote(rid+1, waitT); err != nil {
			t.Fatal(err)
		}
	}
	if !reapSeen() {
		t.Errorf("progress/reap histogram empty after sustained traffic")
	}
	// Engine gauges ride along even without traffic-specific state.
	if _, ok := snap.Gauges.Get("local_cq_highwater"); !ok {
		t.Errorf("local_cq_highwater gauge missing")
	}
	if _, ok := snap.Gauges.Get(fmt.Sprintf("peer%d_entries_consumed", 1)); !ok {
		t.Errorf("per-peer gauge missing")
	}
}

// TestMetricsLatenciesVsim exercises the metrics plane end to end over
// the simulated-verbs backend.
func TestMetricsLatenciesVsim(t *testing.T) {
	phs := newJob(t, 2, core.Config{Metrics: true})
	assertOpLatencies(t, phs)
}

// TestMetricsLatenciesTCP exercises the same path over the real-socket
// TCP backend.
func TestMetricsLatenciesTCP(t *testing.T) {
	phs, cleanup, err := bench.NewTCPPhotons(2, core.Config{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	assertOpLatencies(t, phs)
}

// TestRendezvousSendLatencyClosesAtFIN checks the rendezvous send
// latency distribution is closed by the FIN (both stages) rather than
// by the local RTS write completing.
func TestRendezvousSendLatencyClosesAtFIN(t *testing.T) {
	phs := newJob(t, 2, core.Config{Metrics: true})
	target := make([]byte, 4096)
	registerAndShare(t, phs, 1, target)

	big := make([]byte, 64*1024)
	if err := phs[0].Send(1, big, 1, 2); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := phs[1].WaitRemote(2, waitT); err != nil {
			t.Error(err)
		}
	}()
	if _, err := phs[0].WaitLocal(1, waitT); err != nil {
		t.Fatal(err)
	}
	<-done

	snap := phs[0].Metrics()
	for i := range snap.Hists {
		h := &snap.Hists[i]
		if h.Name == "send/remote" && h.Hist.N() > 0 {
			return
		}
	}
	t.Fatal("rendezvous send did not close a send/remote observation at FIN")
}

// TestObsDisabledAllocGuard pins the "free when off" property: with
// the full observability plane compiled in — a trace ring attached but
// disabled, metrics off — the eager put round trip must stay at zero
// allocations, matching the PR-1 fast-path guarantee.
func TestObsDisabledAllocGuard(t *testing.T) {
	ring := trace.NewRing(1024) // attached, never enabled
	p, dst := loopEnv(t, core.Config{Trace: ring})
	payload := make([]byte, 8)
	put := func() {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	for i := 0; i < 100; i++ {
		put()
	}
	allocs := testing.AllocsPerRun(200, put)
	t.Logf("eager put with observability attached but disabled: %.2f allocs/op", allocs)
	if allocs > 0 {
		t.Fatalf("disabled observability allocates %.2f times per op, want 0", allocs)
	}
	if ring.Len() != 0 {
		t.Fatalf("disabled ring recorded %d events", ring.Len())
	}
}

// TestMergedTraceAcrossPeers is the cluster-tracing acceptance test: a
// 4-rank vsim job where every rank records into its own private ring,
// one sampled put flows rank 0 → rank 2, and the four rings are
// stitched (with per-peer clock offsets, identically zero under vsim)
// into one merged Chrome trace. The merged timeline must carry the
// causal chain across the two rings: rank 0's post, rank 2's
// wire-context link event naming rank 0 as origin, and the flow
// begin/step/finish events connecting them.
func TestMergedTraceAcrossPeers(t *testing.T) {
	const n = 4
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	rings := make([]*trace.Ring, n)
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		rings[r] = trace.NewRing(4096)
		rings[r].Enable(true)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cl.Backend(r), core.Config{Trace: rings[r]})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", r, err)
		}
	}
	for _, p := range phs {
		defer p.Close()
	}
	buf := make([]byte, 256)
	descs, _ := registerAndShare(t, phs, 2, buf)

	// Post without driving rank 0's progress, harvest the remote side
	// first, then reap locally — so the merged timeline orders
	// post → remote link → local complete and the chain resolves.
	if err := phs[0].PutWithCompletion(2, []byte("traced"), descs[2], 0, 7, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[2].WaitRemote(9, waitT); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitLocal(7, waitT); err != nil {
		t.Fatal(err)
	}

	// The target ring must hold a span-link event naming the true
	// origin (rank 0) with its post timestamp from the wire context.
	linked := false
	for _, ev := range rings[2].Snapshot() {
		if ev.Kind == trace.KindLink && ev.Peer == 0 && ev.PeerNS != 0 {
			linked = true
			break
		}
	}
	if !linked {
		t.Fatal("rank 2 ring has no KindLink event carrying rank 0's wire trace context")
	}

	dumps := make([]trace.PeerDump, n)
	for r := 0; r < n; r++ {
		off, _, ok := phs[0].PeerClockOffset(r)
		if !ok {
			t.Fatalf("no clock offset for rank %d", r)
		}
		dumps[r] = trace.PeerDump{Rank: r, OffsetNS: off, Events: rings[r].Snapshot()}
	}
	var out bytes.Buffer
	if err := trace.WriteChromeJSONMerged(&out, dumps); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		`"ph": "s"`,       // flow begin at rank 0's post
		`"ph": "t"`,       // flow step at rank 2's remote apply
		`"ph": "f"`,       // flow finish back at rank 0's completion
		`"wire_delay_ns"`, // link instant annotated with wire latency
		`"rank 0"`,        // per-rank process naming
		`"rank 2"`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("merged trace missing %s:\n%s", want, got)
		}
	}
}

// TestMetricsConcurrentWithTraffic hammers Metrics() from a dedicated
// goroutine while puts flow into a sharded rank driven by background
// runners. The per-peer gauge section walks shard- and peer-mutex
// state, so a snapshot during live traffic must be race-free (this
// test runs under -race in CI).
func TestMetricsConcurrentWithTraffic(t *testing.T) {
	ring := trace.NewRing(4096)
	ring.Enable(true)
	phs := newJob(t, 3, core.Config{EngineShards: 2, Metrics: true, Trace: ring})
	buf := make([]byte, 4096)
	descs, _ := registerAndShare(t, phs, 0, buf)
	phs[0].StartProgress()

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := phs[0].Metrics()
			if _, ok := snap.Gauges.Get("engine_shards"); !ok {
				t.Error("engine_shards gauge missing from concurrent snapshot")
				return
			}
		}
	}()

	const perSrc = 40
	for src := 1; src <= 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < perSrc; i++ {
				rid := uint64(src*1000 + i)
				if err := phs[src].PutBlocking(0, []byte{byte(src)}, descs[0], uint64(src), rid, rid+500); err != nil {
					t.Error(err)
					return
				}
				if _, err := phs[src].WaitLocal(rid, waitT); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}

	got := 0
	deadline := time.Now().Add(waitT)
	for got < 2*perSrc {
		if c, ok := phs[0].PopRemote(); ok {
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d remote completions", got, 2*perSrc)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestTraceSampling checks TraceSampleShift thins op posts: with a
// shift of 2 only ~1/4 of ops are stamped.
func TestTraceSampling(t *testing.T) {
	ring := trace.NewRing(8192)
	ring.Enable(true)
	p, dst := loopEnv(t, core.Config{Trace: ring, TraceSampleShift: 2})
	payload := make([]byte, 8)
	const ops = 256
	for i := 0; i < ops; i++ {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				t.Fatal(err)
			}
			p.Progress()
		}
		drainPair(t, p)
	}
	posts := ring.CountByKind()[trace.KindPost]
	if posts == 0 || posts > ops/2 {
		t.Fatalf("sampled posts = %d, want ~%d (shift 2 over %d ops)", posts, ops/4, ops)
	}
}
