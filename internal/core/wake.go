package core

import (
	"sync"
	"sync/atomic"
)

// Shared backend wake/completion plumbing. Every transport used to
// hand-roll the same pattern — a mutex-guarded completion slice plus a
// capacity-1 "kick" channel signaled with non-blocking sends — and the
// engine's shard fan-out needs one more consumer of the same event.
// WakeChan and CompQueue centralize it: backends push completions and
// kick; the engine either parks on the channel (NotifyBackend) or
// installs a sink that fans the event out to every shard
// (WakeSinkBackend).

// WakeChan is an edge-triggered event latch: a capacity-1 channel
// signaled with non-blocking sends, with an optionally installed sink
// function that replaces the channel delivery. One token coalesces any
// number of events; consumers must re-poll after every wakeup.
type WakeChan struct {
	ch   chan struct{}
	sink atomic.Pointer[func()]
}

// NewWakeChan creates a ready-to-use wake latch.
func NewWakeChan() *WakeChan {
	return &WakeChan{ch: make(chan struct{}, 1)}
}

// Kick signals the latch: the installed sink if any, else a
// non-blocking token on the channel. Callable from any goroutine;
// never blocks.
//
//photon:hotpath
func (w *WakeChan) Kick() {
	if f := w.sink.Load(); f != nil {
		(*f)()
		return
	}
	select {
	case w.ch <- struct{}{}:
	default:
	}
}

// Chan returns the latch channel for consumers that park on it.
func (w *WakeChan) Chan() <-chan struct{} { return w.ch }

// SetSink redirects subsequent kicks to fn (which must be non-blocking
// and callable from any goroutine); nil restores channel delivery.
// Installing a sink leaves the channel idle — the engine uses this to
// fan one backend event out to every shard without a relay goroutine.
func (w *WakeChan) SetSink(fn func()) {
	if fn == nil {
		w.sink.Store(nil)
		return
	}
	w.sink.Store(&fn)
}

// CompQueue is the shared backend completion queue: agents Push
// finished operations, the engine Drains them from Poll. Push kicks the
// embedded wake latch, so a single CompQueue gives a transport both its
// Poll buffer and its NotifyBackend/WakeSinkBackend implementation.
type CompQueue struct {
	//photon:lock compq 80
	mu    sync.Mutex
	comps []BackendCompletion
	wake  *WakeChan
}

// NewCompQueue creates an empty completion queue.
func NewCompQueue() *CompQueue {
	return &CompQueue{wake: NewWakeChan()}
}

// Push appends one completion and kicks the wake latch.
//
//photon:hotpath
func (q *CompQueue) Push(c BackendCompletion) {
	q.mu.Lock() //photon:allow hotpathalloc -- queue mutex is the completion handoff point; held only for one append
	q.comps = append(q.comps, c) //photon:allow hotpathalloc -- amortized queue growth; the slice is drained to length 0 and its capacity reused
	q.mu.Unlock()
	q.wake.Kick()
}

// Drain moves up to len(dst) completions into dst, returning the count.
// It never blocks.
//
//photon:hotpath
func (q *CompQueue) Drain(dst []BackendCompletion) int {
	q.mu.Lock() //photon:allow hotpathalloc -- queue mutex is the completion handoff point; held only for the copy
	n := copy(dst, q.comps)
	if n > 0 {
		rest := copy(q.comps, q.comps[n:])
		for i := rest; i < len(q.comps); i++ {
			q.comps[i] = BackendCompletion{}
		}
		q.comps = q.comps[:rest]
	}
	q.mu.Unlock()
	return n
}

// Kick signals the wake latch without queueing a completion (remote
// data landed in registered memory, credits may have returned).
//
//photon:hotpath
func (q *CompQueue) Kick() { q.wake.Kick() }

// Wake exposes the embedded latch for Notify/SetWakeSink plumbing.
func (q *CompQueue) Wake() *WakeChan { return q.wake }

// Len reports the queued completion count.
func (q *CompQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.comps)
}
