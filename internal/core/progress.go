package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	gort "runtime"
	"time"

	"photon/internal/errs"
	"photon/internal/ledger"
	"photon/internal/metrics"
	"photon/internal/trace"
)

// ErrTimeout is returned by the Wait helpers when the deadline passes.
// It aliases the shared root sentinel, so errors.Is against it also
// matches timeouts surfaced by the verbs, msg, and runtime layers.
var ErrTimeout = errs.ErrTimeout

// maxInt bounds untrusted 64-bit size words before narrowing to int.
const maxInt = int(^uint(0) >> 1)

// Progress drives the whole engine: every shard reaps backend
// completions, polls its peers' ledgers, retries deferred work, and
// performs credit maintenance. It returns the number of events it
// handled. Progress is safe to call from multiple goroutines;
// concurrent callers coalesce per shard (each shard's engine runs on
// one caller, others skip it), mirroring Photon's caller-driven
// progress model. With EngineShards > 1, concurrent callers (or the
// StartProgress runners) drive distinct shards genuinely in parallel.
//
// When the backend exposes a DMA write-activity counter, the ledger
// sweep is skipped entirely while the counter is unchanged. A fully
// idle round — no ledger activity, no parked work anywhere, no credits
// owed — additionally skips the per-peer loop: a spinning prober then
// costs two atomic loads per shard beyond the backend poll,
// independent of job size.
//
//photon:hotpath
func (p *Photon) Progress() int {
	p.stats.progress.Add(1)
	n := 0
	for _, s := range p.shards {
		n += p.progressShard(s)
	}
	return n
}

// progressShard runs one shard's engine round. Entry is a try-lock:
// the shard is either advanced by this caller or already being
// advanced by another.
//
//photon:hotpath
func (p *Photon) progressShard(s *engineShard) int {
	if !s.mu.TryLock() {
		return 0
	}
	defer s.mu.Unlock()
	// Phase timing: reap is the backend-CQ drain, sweep the per-peer
	// ledger/deferred/credit pass; a round that handled nothing is
	// charged to idle instead. Gated on the registry so the disabled
	// cost is one atomic load. All three phase distributions are
	// 1-in-64 sampled: rounds — idle ones especially — are the
	// engine's innermost loop, and even a clock read per round shows
	// up on a spin-driven caller. An unsampled round costs one atomic
	// add; the sampled 1/64 keeps every distribution's shape.
	var t0, t1 int64
	sample := false
	if p.obs.reg.Enabled() {
		sample = p.obs.idleSeq.Add(1)&63 == 0
		if sample {
			t0 = nowNanos()
		}
	}
	n := 0
	nReap := p.reapBackend(s)
	n += nReap
	if sample {
		t1 = nowNanos()
		if nReap > 0 {
			p.obs.reg.RecordPhase(metrics.PhaseReap, t1-t0)
		}
	}
	// Fault sweep: whole-instance, so it runs on shard 0 only — one
	// int64 comparison when OpTimeout and liveness are both off;
	// otherwise rate-limited inside pollFaults. It must run before the
	// idle early-out — a wedged op toward a dead peer produces no
	// ledger activity and parks nothing.
	if s.idx == 0 && p.faultPollNS != 0 {
		n += p.pollFaults(s) //photon:allow lockorder -- fault sweep runs on shard 0 and takes the other shards' mutexes in ascending index order
	}
	sweep := true
	if p.activity != nil {
		if cur := p.activity(); cur != s.lastAct {
			s.lastAct = cur
		} else {
			sweep = false
		}
	}
	if !sweep && s.parked.Load() == 0 && s.creditHintTotal.Load() == 0 {
		if sample && n == 0 {
			p.obs.reg.RecordPhase(metrics.PhaseIdle, nowNanos()-t0)
		}
		return n
	}
	for _, ps := range s.peers {
		n += p.retryDeferred(s, ps)
		if sweep {
			n += p.pollPeer(s, ps)
		}
		p.returnCredits(ps, false)
	}
	if sample {
		if n == 0 {
			p.obs.reg.RecordPhase(metrics.PhaseIdle, nowNanos()-t0)
		} else {
			p.obs.reg.RecordPhase(metrics.PhaseSweep, nowNanos()-t1)
		}
	}
	if n > 0 {
		s.sweeps.Add(1)
	}
	return n
}

// reapBackend harvests transport completions and resolves their
// tokens. The backend queue is shared: any shard may reap any
// completion (the token table routes it to the right op, and the
// resulting completion is pushed onto its peer's owning shard), so
// reaping is work-stealing rather than partitioned — a busy shard
// never leaves the transport queue to back up.
//
//photon:hotpath
func (p *Photon) reapBackend(s *engineShard) int {
	buf := s.reapScratch[:]
	n := 0
	for {
		k := p.be.Poll(buf)
		for i := 0; i < k; i++ {
			p.handleBackend(s, buf[i])
		}
		n += k
		if k < len(buf) {
			if n > 0 {
				s.reaps.Add(int64(n))
			}
			return n
		}
	}
}

//photon:hotpath
func (p *Photon) handleBackend(s *engineShard, bc BackendCompletion) {
	op, ok := p.takeToken(bc.Token)
	if !ok {
		return // unsignaled op surfaced an error CQE, or stale token
	}
	// Backend-CQ reaping is work-stealing: any shard may drain the
	// transport queue. For sampled ops, record when the reaping shard
	// is not the op's owning shard — the event that makes cross-shard
	// load flow visible in traces.
	if op.postNS != 0 && uint(op.rank) < uint(len(p.peers)) && p.peers[op.rank].shard != s {
		p.traceShard(s.idx, op.rid, false, "shard.steal")
	}
	if !bc.OK {
		err := bc.Err
		if err == nil {
			err = fmt.Errorf("photon: transport error on op kind %d", op.kind) //photon:allow hotpathalloc -- cold error path; transport failures are not per-op cost
		}
		if op.postNS != 0 {
			p.traceEv(trace.KindComplete, op.rid, "backend.err")
		}
		p.pushLocal(Completion{Rank: op.rank, RID: op.rid, Err: err, traced: op.postNS != 0})
		if op.block != nil {
			_ = p.slab.Release(op.block)
		}
		if op.result != nil {
			p.pool.Put(op.result)
		}
		return
	}
	switch op.kind {
	case opPutLocal:
		p.opDone(&op, "put.done")
		if op.rid != 0 {
			p.pushLocal(Completion{Rank: op.rank, RID: op.rid, traced: op.postNS != 0})
		}
	case opGetLocal:
		p.opDone(&op, "get.done")
		if op.rid != 0 {
			p.pushLocal(Completion{Rank: op.rank, RID: op.rid, traced: op.postNS != 0})
		}
		if op.remoteRID != 0 {
			p.notifyRemote(op.rank, op.remoteRID)
		}
	case opRdzvGet:
		// Data staged: copy out, release the block, FIN the sender,
		// surface the delivery. The copy is owned by the caller from
		// here on (Completion.Data contract), so it must not come
		// from the recycling pool. With a posted receive the read
		// already landed in the caller's buffer: no block, no copy.
		data := op.postedBuf
		if data == nil {
			data = p.pool.GetOwned(op.size)
			copy(data, op.block.Buf[:op.size])
			_ = p.slab.Release(op.block)
		}
		p.traceEv(trace.KindProtocol, op.rdzvID, "rdzv.read.done")
		p.sendFIN(op.rank, op.rdzvID)
		p.stats.rdzvRecvs.Add(1)
		p.pushRemote(Completion{Rank: op.rank, RID: op.remoteRID, Data: data, traced: op.traced})
	case opAtomic:
		p.opDone(&op, "atomic.done")
		if op.rid != 0 {
			p.pushLocal(Completion{
				Rank:   op.rank,
				RID:    op.rid,
				Value:  binary.LittleEndian.Uint64(op.result),
				traced: op.postNS != 0,
			})
		}
		// The backend wrote the result before reporting the
		// completion; the scratch word can be recycled now.
		p.pool.Put(op.result)
	}
}

// notifyRemote writes a bare completion entry (tCompletion) into the
// peer's PWC ledger, deferring on credit exhaustion.
//
//photon:hotpath
func (p *Photon) notifyRemote(rank int, rid uint64) {
	var payload [9]byte
	payload[0] = tCompletion
	binary.LittleEndian.PutUint64(payload[1:], rid)
	p.postEntryOrDefer(p.peers[rank], classPWC, payload[:])
}

// sendFIN writes a rendezvous-complete entry into the peer's sys ledger.
//
//photon:hotpath
func (p *Photon) sendFIN(rank int, rdzvID uint64) {
	var payload [9]byte
	payload[0] = tFIN
	binary.LittleEndian.PutUint64(payload[1:], rdzvID)
	p.postEntryOrDefer(p.peers[rank], classSys, payload[:])
}

// postEntryOrDefer reserves a slot in the peer's class ledger and posts
// the entry, parking it for Progress when out of credits. payload is
// copied before this function returns (both paths), so callers may
// pass stack-backed scratch.
//
//photon:hotpath
func (p *Photon) postEntryOrDefer(ps *peerState, class int, payload []byte) {
	res, err := p.reserve(ps, class)
	if err != nil {
		ps.mu.Lock() //photon:allow hotpathalloc -- credit-exhaustion slow path; the fast path never takes this branch
		//photon:allow hotpathalloc -- credit-exhaustion slow path: the deferred copy and FIFO growth happen only under backpressure
		ps.pendingEntry = append(ps.pendingEntry, entryOp{class: class, payload: append([]byte(nil), payload...)})
		ps.mu.Unlock()
		ps.deferred.Add(1)
		ps.shard.parked.Add(1)
		p.stats.deferred.Add(1)
		return
	}
	ent := p.pool.Get(ledger.HeaderSize + len(payload))
	copy(ent[ledger.HeaderSize:], payload)
	if err := ledger.EncodeHeader(ent, res.Seq, len(payload)); err != nil {
		// Payload exceeds entry capacity: engine bug; surface loudly.
		panic(err)
	}
	p.postOrPark(ps, ps.rank, ent, res.RemoteAddr, res.RKey, 0, false, true)
}

// retryDeferred drains a peer's parked work in dependency-safe order:
// first fully-specified wire writes (FIFO; slots already reserved),
// then unreserved ledger entries, then queued inbound rendezvous.
// Wire writes drain in doorbell batches when the backend supports it.
func (p *Photon) retryDeferred(s *engineShard, ps *peerState) int {
	if ps.deferred.Load() == 0 {
		return 0
	}
	n := 0
	// Wire writes. Snapshot a batch under the lock, post it outside,
	// then pop what was accepted. Only this peer's owning shard engine
	// (serialized by its mutex, which the fault plane also takes before
	// dropping these queues) removes from pendingWire, and producers
	// append at the tail, so the snapshot stays valid.
	for {
		ps.mu.Lock()
		k := len(ps.pendingWire)
		if k == 0 {
			ps.mu.Unlock()
			break
		}
		if k > wireBatchMax {
			k = wireBatchMax
		}
		batch := append(s.wireScratch[:0], ps.pendingWire[:k]...)
		ps.mu.Unlock()

		posted := 0
		var perr error
		if p.bbe != nil && k > 1 {
			reqs := s.reqScratch[:0]
			for _, w := range batch {
				reqs = append(reqs, WriteReq{Local: w.local, RemoteAddr: w.raddr, RKey: w.rkey, Token: w.token, Signaled: w.signaled})
			}
			posted, perr = p.bbe.PostWriteBatch(ps.rank, reqs)
			for i := range reqs {
				reqs[i] = WriteReq{}
			}
			if posted > 0 {
				p.stats.batchPosts.Add(1)
				p.stats.batchedOps.Add(int64(posted))
			}
		} else {
			for _, w := range batch {
				if perr = p.be.PostWrite(ps.rank, w.local, w.raddr, w.rkey, w.token, w.signaled); perr != nil {
					break
				}
				posted++
			}
		}
		if posted > 0 {
			ps.mu.Lock()
			ps.pendingWire = ps.pendingWire[posted:]
			ps.mu.Unlock()
			for i := 0; i < posted; i++ {
				if batch[i].pooled {
					p.pool.Put(batch[i].local)
				}
			}
			ps.deferred.Add(-int64(posted))
			s.parked.Add(-int64(posted))
			n += posted
		}
		if perr != nil && !errors.Is(perr, ErrWouldBlock) {
			// Hard rejection (peer down, transport closed): every
			// remaining parked write toward this peer would fail the
			// same way, so fail them now instead of wedging the FIFO.
			n += p.failDeferredWire(ps, perr)
			break
		}
		if posted < k {
			break // transport still busy; keep FIFO order
		}
	}
	// Ledger entries awaiting credits.
	for {
		ps.mu.Lock()
		if len(ps.pendingEntry) == 0 {
			ps.mu.Unlock()
			break
		}
		e := ps.pendingEntry[0]
		ps.mu.Unlock()
		res, err := p.reserve(ps, e.class)
		if err != nil {
			break
		}
		ent := p.pool.Get(ledger.HeaderSize + len(e.payload))
		copy(ent[ledger.HeaderSize:], e.payload)
		if err := ledger.EncodeHeader(ent, res.Seq, len(e.payload)); err != nil {
			panic(err)
		}
		p.postOrPark(ps, ps.rank, ent, res.RemoteAddr, res.RKey, 0, false, true)
		ps.mu.Lock()
		ps.pendingEntry = ps.pendingEntry[1:]
		ps.mu.Unlock()
		ps.deferred.Add(-1)
		s.parked.Add(-1)
		n++
	}
	// Inbound rendezvous awaiting slab space.
	for {
		ps.mu.Lock()
		if len(ps.pendingRTS) == 0 {
			ps.mu.Unlock()
			break
		}
		r := ps.pendingRTS[0]
		ps.mu.Unlock()
		if !p.startRdzvGet(r) {
			break
		}
		ps.mu.Lock()
		ps.pendingRTS = ps.pendingRTS[1:]
		ps.mu.Unlock()
		ps.deferred.Add(-1)
		s.parked.Add(-1)
		n++
	}
	return n
}

// polledEvent is one parsed ledger arrival, collected under the arena
// read-lock and dispatched after it is released (dispatch may need to
// re-acquire arena-guarded state, and RWMutex read locks must not
// nest).
type polledEvent struct {
	kind   uint8 // reuses the entry type tags (traced variants normalized)
	rid    uint64
	raddr  uint64
	rkey   uint32
	err    error
	data   []byte // copied out of the ledger slot
	pooled bool   // data is pool scratch to recycle after dispatch
	rts    rtsOp
	hasCtx bool  // entry carried a wire trace context
	origin int   // initiator rank from the context
	ctxNS  int64 // initiator post timestamp from the context
}

// pollPeer drains this peer's three receive ledgers: one arena lock
// acquisition for the whole batch, then dispatch outside the lock.
//
//photon:hotpath
func (p *Photon) pollPeer(s *engineShard, ps *peerState) int {
	s.pollScratch = s.pollScratch[:0]
	n := 0
	p.arenaLk.Lock() //photon:allow hotpathalloc -- one arena lock per sweep batch covers every ledger poll; taking it once here is the optimization
	if !ps.recv[classSys].ReadyLocked() &&
		!ps.recv[classPWC].ReadyLocked() &&
		!ps.recv[classEager].ReadyLocked() {
		p.arenaLk.Unlock()
		return 0
	}
	for {
		e, ok := ps.recv[classSys].PollLocked()
		if !ok {
			break
		}
		ps.consumed[classSys]++
		n++
		if ev, ok := parseSys(e); ok {
			ev.rts.rank = ps.rank
			s.pollScratch = append(s.pollScratch, ev) //photon:allow hotpathalloc -- amortized scratch growth; reset to length 0 each sweep, capacity is reused
		}
	}
	for {
		e, ok := ps.recv[classPWC].PollLocked()
		if !ok {
			break
		}
		ps.consumed[classPWC]++
		n++
		if len(e.Payload) >= 9 && (e.Payload[0] == tCompletion || e.Payload[0] == tCompletionT) {
			pe := polledEvent{
				kind: tCompletion,
				rid:  binary.LittleEndian.Uint64(e.Payload[1:]),
			}
			if e.Payload[0] == tCompletionT && len(e.Payload) >= 9+traceCtxSize {
				parseTraceCtx(&pe, e.Payload[9:])
			}
			//photon:allow hotpathalloc -- amortized scratch growth; reset to length 0 each sweep, capacity is reused
			s.pollScratch = append(s.pollScratch, pe)
		}
	}
	for {
		e, ok := ps.recv[classEager].PollLocked()
		if !ok {
			break
		}
		ps.consumed[classEager]++
		n++
		switch {
		case len(e.Payload) >= packedHdrSize && (e.Payload[0] == tPacked || e.Payload[0] == tPackedT):
			dlen := len(e.Payload) - packedHdrSize
			pe := polledEvent{
				kind: tPacked,
				rid:  binary.LittleEndian.Uint64(e.Payload[1:]),
			}
			if e.Payload[0] == tPackedT && dlen >= traceCtxSize {
				dlen -= traceCtxSize
				parseTraceCtx(&pe, e.Payload[packedHdrSize+dlen:])
			}
			// The payload copy becomes Completion.Data, owned by the
			// caller forever — never pool scratch. A posted receive
			// supplies the destination instead (one atomic load when
			// none are posted; recvtab rank 35 nests above arena 30).
			data, posted := p.recvs.take(pe.rid, dlen)
			if !posted {
				data = p.pool.GetOwned(dlen)
			}
			copy(data, e.Payload[packedHdrSize:packedHdrSize+dlen])
			pe.data = data
			//photon:allow hotpathalloc -- amortized scratch growth; reset to length 0 each sweep, capacity is reused
			s.pollScratch = append(s.pollScratch, pe)
		case len(e.Payload) >= packedPutHdrSize && (e.Payload[0] == tPackedPut || e.Payload[0] == tPackedPutT):
			dlen := len(e.Payload) - packedPutHdrSize
			pe := polledEvent{
				kind:   tPackedPut,
				rid:    binary.LittleEndian.Uint64(e.Payload[1:]),
				raddr:  binary.LittleEndian.Uint64(e.Payload[9:]),
				rkey:   binary.LittleEndian.Uint32(e.Payload[17:]),
				pooled: true,
			}
			if e.Payload[0] == tPackedPutT && dlen >= traceCtxSize {
				dlen -= traceCtxSize
				parseTraceCtx(&pe, e.Payload[packedPutHdrSize+dlen:])
			}
			// Copy the payload out and place it after the arena lock
			// is released: ApplyLocal takes registration locks that
			// may be the very lock guarding this sweep (the TCP
			// backend uses one table-wide RWMutex), so it must never
			// run under it. This copy only lives until ApplyLocal
			// places it, so it can come from the recycling pool.
			data := p.pool.Get(dlen)
			copy(data, e.Payload[packedPutHdrSize:packedPutHdrSize+dlen])
			//photon:allow bufretain -- parked in pollScratch only until dispatch below; ApplyLocal consumes it and Put recycles it in the same sweep
			pe.data = data
			//photon:allow hotpathalloc -- amortized scratch growth; reset to length 0 each sweep, capacity is reused
			s.pollScratch = append(s.pollScratch, pe)
		}
	}
	p.arenaLk.Unlock()

	for i := range s.pollScratch {
		ev := &s.pollScratch[i]
		// Ledger-delivery trace events carry the RID the initiator
		// posted (its remote RID), correlating both sides of the op.
		// Sampling is the initiator's choice, carried by the wire trace
		// context: entries with a context become span-link events
		// holding the initiator's rank and post timestamp; the rest
		// record plain ledger events. A disabled ring keeps the cost to
		// one atomic load per entry either way.
		switch ev.kind {
		case tCompletion:
			p.traceDelivery(ps.rank, ev, ev.rid, "ledger.pwc")
			p.pushRemote(Completion{Rank: ps.rank, RID: ev.rid, Err: ev.err, traced: ev.hasCtx})
		case tPacked:
			p.traceDelivery(ps.rank, ev, ev.rid, "ledger.eager")
			p.pushRemote(Completion{Rank: ps.rank, RID: ev.rid, Data: ev.data, traced: ev.hasCtx})
		case tPackedPut:
			p.traceDelivery(ps.rank, ev, ev.rid, "ledger.put")
			err := p.be.ApplyLocal(ev.raddr, ev.rkey, ev.data)
			if ev.rid != 0 || err != nil {
				p.pushRemote(Completion{Rank: ps.rank, RID: ev.rid, Err: err, traced: ev.hasCtx})
			}
		case tRTS:
			p.traceDelivery(ps.rank, ev, ev.rts.remoteRID, "ledger.rts")
			ev.rts.traced = ev.hasCtx
			if !p.startRdzvGet(ev.rts) {
				ps.mu.Lock()                                  //photon:allow hotpathalloc -- staging-exhaustion slow path; only reached when the slab is full
				ps.pendingRTS = append(ps.pendingRTS, ev.rts) //photon:allow hotpathalloc -- backpressure FIFO growth; drains to zero in steady state
				ps.mu.Unlock()
				ps.deferred.Add(1)
				s.parked.Add(1)
			}
		case tFIN:
			p.traceEv(trace.KindProtocol, ev.rid, "fin.rx")
			p.handleFIN(ps, ev.rid)
		}
		if ev.pooled {
			p.pool.Put(ev.data)
		}
		ev.data = nil // release payload reference for GC
	}
	if n > 0 {
		ps.consumedHint.Add(int64(n))
		s.creditHintTotal.Add(int64(n))
	}
	return n
}

// parseSys decodes a sys-ledger control entry into a polled event.
func parseSys(e ledger.Entry) (polledEvent, bool) {
	if len(e.Payload) < sysMinLen {
		return polledEvent{}, false
	}
	switch e.Payload[0] {
	case tRTS, tRTST:
		if len(e.Payload) < rtsEntryLen {
			return polledEvent{}, false
		}
		// A corrupt or hostile size word must not wrap negative when
		// narrowed to int (slab.Alloc and block.Buf[:size] would panic);
		// oversize values are rejected here and the entry dropped.
		size := binary.LittleEndian.Uint64(e.Payload[17:])
		if size > uint64(maxInt) {
			return polledEvent{}, false
		}
		pe := polledEvent{
			kind: tRTS,
			rts: rtsOp{
				rdzvID:    binary.LittleEndian.Uint64(e.Payload[1:]),
				remoteRID: binary.LittleEndian.Uint64(e.Payload[9:]),
				size:      int(size),
				addr:      binary.LittleEndian.Uint64(e.Payload[25:]),
				rkey:      binary.LittleEndian.Uint32(e.Payload[33:]),
			},
		}
		if e.Payload[0] == tRTST && len(e.Payload) >= rtsEntryLen+traceCtxSize {
			parseTraceCtx(&pe, e.Payload[rtsEntryLen:])
		}
		return pe, true
	case tFIN:
		return polledEvent{kind: tFIN, rid: binary.LittleEndian.Uint64(e.Payload[1:])}, true
	}
	return polledEvent{}, false
}

// handleFIN completes an outstanding rendezvous send.
func (p *Photon) handleFIN(ps *peerState, id uint64) {
	p.rdzvMu.Lock()
	rs, ok := p.rdzvSends[id]
	if ok {
		delete(p.rdzvSends, id)
	}
	p.rdzvMu.Unlock()
	if ok {
		_ = p.be.Deregister(rs.rb)
		if rs.postNS != 0 {
			// FIN closes the rendezvous: the target has staged the data
			// and surfaced its delivery, so one latency closes both the
			// initiator and the remote-delivery distributions.
			lat := nowNanos() - rs.postNS
			p.traceEv(trace.KindComplete, rs.rid, "send.rdzv.done")
			if r := p.obs.reg; r.Enabled() {
				r.RecordOp(metrics.OpSend, metrics.StageInitiator, lat)
				r.RecordOp(metrics.OpSend, metrics.StageRemote, lat)
			}
		}
		if rs.rid != 0 {
			p.pushLocal(Completion{Rank: ps.rank, RID: rs.rid, traced: rs.postNS != 0})
		}
	}
}

// startRdzvGet allocates staging space and posts the rendezvous read.
// Returns false when it must be retried later (no slab space / SQ full).
// When the delivery RID has a posted receive, the read lands in the
// posted buffer directly — no slab block, no copy-out at completion.
func (p *Photon) startRdzvGet(r rtsOp) bool {
	if buf, ok := p.recvs.take(r.remoteRID, r.size); ok {
		tok := p.newToken(pendingOp{
			kind: opRdzvGet, rank: r.rank, remoteRID: r.remoteRID,
			postedBuf: buf, size: r.size, rdzvID: r.rdzvID, traced: r.traced,
		})
		if err := p.be.PostRead(r.rank, buf, r.addr, r.rkey, tok); err != nil {
			p.takeToken(tok)
			p.recvs.restore(r.remoteRID, buf)
			return false
		}
		return true
	}
	block, err := p.slab.Alloc(r.size)
	if err != nil {
		return false
	}
	tok := p.newToken(pendingOp{
		kind: opRdzvGet, rank: r.rank, remoteRID: r.remoteRID,
		block: block, size: r.size, rdzvID: r.rdzvID, traced: r.traced,
	})
	if err := p.be.PostRead(r.rank, block.Buf[:r.size], r.addr, r.rkey, tok); err != nil {
		p.takeToken(tok)
		_ = p.slab.Release(block)
		return false
	}
	return true
}

// returnCredits publishes consumed-entry counts to the peer's mailbox
// when the batch threshold is reached (or force is set). The write is a
// cumulative counter, so it is idempotent and needs no flow control.
func (p *Photon) returnCredits(ps *peerState, force bool) {
	h := ps.consumedHint.Swap(0)
	if h != 0 {
		ps.shard.creditHintTotal.Add(-h)
	} else if !force {
		return
	}
	for cl := 0; cl < numClasses; cl++ {
		total := ps.consumed[cl] // owning-shard-engine-owned; no ledger locks
		ps.mu.Lock()
		due := total-ps.lastReturned[cl] >= int64(p.cfg.CreditBatch) || (force && total > ps.lastReturned[cl])
		if due {
			ps.lastReturned[cl] = total
		}
		ps.mu.Unlock()
		if !due {
			continue
		}
		word := p.pool.Get(8)
		binary.LittleEndian.PutUint64(word, uint64(total))
		raddr := ps.remoteArena.Addr + uint64(p.mailSlotOffset(p.rank, cl))
		p.postOrPark(ps, ps.rank, word, raddr, ps.remoteArena.RKey, 0, false, true)
		p.stats.creditWrites.Add(1)
	}
}

// mailSlotOffset is the arena offset of the mailbox word that `peer`
// writes about ledger class cl it consumes from me. In my arena the
// word for (peer, cl) lives at mailOff + (peer*numClasses+cl)*8; in the
// peer's arena, my word lives at the same formula with my rank.
func (p *Photon) mailSlotOffset(rank, class int) int {
	return p.mailOff + (rank*numClasses+class)*8
}

// refreshCredits folds the local mailbox word for (peer, class) into
// the sender's credit balance.
func (p *Photon) refreshCredits(ps *peerState, class int) {
	off := p.mailSlotOffset(ps.rank, class)
	p.arenaLk.Lock()
	val := binary.LittleEndian.Uint64(p.arena[off : off+8])
	p.arenaLk.Unlock()
	ps.mu.Lock()
	delta := int64(val) - int64(ps.lastMail[class])
	if delta > 0 {
		ps.lastMail[class] = val
	}
	ps.mu.Unlock()
	if delta > 0 {
		_ = ps.send[class].AddCredits(int(delta))
	}
}

// ---------------------------------------------------------------------
// Completion harvesting
// ---------------------------------------------------------------------

// Probe drives one round of progress and pops a completion from the
// selected stream(s), local first. ok is false when nothing is pending.
func (p *Photon) Probe(flags ProbeFlags) (Completion, bool) {
	p.Progress()
	if flags&ProbeLocal != 0 {
		if c, ok := p.PopLocal(); ok {
			return c, true
		}
	}
	if flags&ProbeRemote != 0 {
		if c, ok := p.PopRemote(); ok {
			return c, true
		}
	}
	return Completion{}, false
}

// PopLocal pops the oldest harvested local completion without driving
// progress. With multiple shards the scan starts at a rotating cursor,
// so no shard's ring is structurally favored.
func (p *Photon) PopLocal() (Completion, bool) {
	return p.popRing(true)
}

// PopRemote pops the oldest harvested remote completion.
func (p *Photon) PopRemote() (Completion, bool) {
	return p.popRing(false)
}

//photon:hotpath
func (p *Photon) popRing(local bool) (Completion, bool) {
	if len(p.shards) == 1 {
		s := p.shards[0]
		r := s.remoteCQ
		if local {
			r = s.localCQ
		}
		c, ok := r.pop()
		if ok && c.traced {
			p.traceEv(trace.KindReap, c.RID, "reap.pop")
		}
		return c, ok
	}
	start := int(p.popCursor.Add(1))
	for i := 0; i < len(p.shards); i++ {
		s := p.shards[(start+i)%len(p.shards)]
		r := s.remoteCQ
		if local {
			r = s.localCQ
		}
		if c, ok := r.pop(); ok {
			if c.traced {
				p.traceEv(trace.KindReap, c.RID, "reap.pop")
			}
			return c, true
		}
	}
	return Completion{}, false
}

// takeMatchAny removes the completion with the given RID from whichever
// shard ring holds it.
func (p *Photon) takeMatchAny(rid uint64, local bool) (Completion, bool) {
	for _, s := range p.shards {
		r := s.remoteCQ
		if local {
			r = s.localCQ
		}
		if c, ok := r.takeMatch(rid); ok {
			return c, true
		}
	}
	return Completion{}, false
}

// WaitLocal spins (driving progress) until the local completion with
// the given RID arrives, removing it from the stream; other completions
// are left queued. A non-positive timeout waits forever.
func (p *Photon) WaitLocal(rid uint64, timeout time.Duration) (Completion, error) {
	return p.waitMatch(rid, timeout, true)
}

// WaitRemote spins until the remote completion with the given RID
// arrives.
func (p *Photon) WaitRemote(rid uint64, timeout time.Duration) (Completion, error) {
	return p.waitMatch(rid, timeout, false)
}

// parkGrace caps how long an idle waiter stays parked on its notify
// channel before re-polling. It bounds the staleness of the timeout
// and Close checks, and backstops the (already lossless) notification
// protocol; the common wakeup path is the channel send, which arrives
// at goroutine-handoff latency.
const parkGrace = time.Millisecond

// idleWaiter paces the dry rounds of a blocking wait loop. With a
// NotifyBackend it subscribes a private capacity-1 channel to the
// engine's notifier fan-out and parks on it: the agent that queues the
// next completion (or applies the next remote write) wakes every
// parked waiter directly, so the wait resolves at goroutine-handoff
// latency and one waiter consuming a wake can never starve another
// (each waiter holds its own latch — the fairness fix over a single
// shared notify channel). This matters doubly on few-core hosts — a
// parked waiter frees the processor for the runtime's network poller,
// where a spinning one starves it, and a timer sleep would round every
// blocking latency up to kernel scheduler-tick granularity (~1ms on
// HZ=1000 hosts). Without a NotifyBackend it falls back to yield-then-
// sleep polling, which suits in-process fabrics whose delivery runs on
// goroutines a yield schedules.
type idleWaiter struct {
	p    *Photon
	idle int           // consecutive dry rounds (fallback pacing)
	park *time.Timer   // lazily created, reused across parks
	ch   chan struct{} // private notifier subscription (recycled)
}

// wait blocks until backend activity suggests progress is possible (or
// a grace period elapses). Callers must re-poll after every return:
// one wake token can coalesce many events, and timer wakeups carry no
// information at all.
func (w *idleWaiter) wait() {
	if w.ch == nil && w.p.nfy != nil {
		// First dry round: subscribe, then re-poll immediately — an
		// event delivered before the subscription existed was never
		// routed to this channel, so parking now could stall a wait
		// by a full parkGrace.
		w.ch = w.p.nfy.subscribe()
		return
	}
	if w.ch != nil {
		if w.park == nil {
			w.park = time.NewTimer(parkGrace)
		} else {
			w.park.Reset(parkGrace)
		}
		select {
		case <-w.ch:
			if !w.park.Stop() {
				<-w.park.C
			}
		case <-w.park.C:
		}
		return
	}
	// Fallback: yield so transport goroutines can run; after a long
	// dry stretch, sleep briefly so the processor can go idle and the
	// runtime polls the network (a spinning waiter otherwise starves
	// socket backends of netpoll service on single-core hosts).
	w.idle++
	if w.idle > 64 {
		time.Sleep(5 * time.Microsecond)
	} else {
		gort.Gosched()
	}
}

// progressed resets the dry-round pacing after a productive round.
func (w *idleWaiter) progressed() { w.idle = 0 }

// stop releases the park timer and retires the notifier subscription.
func (w *idleWaiter) stop() {
	if w.ch != nil {
		w.p.nfy.unsubscribe(w.ch)
		w.ch = nil
	}
	if w.park != nil {
		w.park.Stop()
	}
}

// BackendNotify exposes an engine-maintained activity latch when the
// backend implements NotifyBackend (nil otherwise). External progress
// loops — benchmark harnesses, application-level pollers — should park
// on it between dry Progress rounds instead of yield-spinning; see
// idleWaiter for why spinning is actively harmful on few-core hosts.
// The latch is fanned out alongside (not instead of) the engine's own
// shard and waiter wakeups, so parking on it cannot starve them.
func (p *Photon) BackendNotify() <-chan struct{} {
	if p.nfy != nil {
		return p.nfy.extern
	}
	return nil
}

func (p *Photon) waitMatch(rid uint64, timeout time.Duration, local bool) (Completion, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	} else if p.opTimeoutNS > 0 {
		// With op deadlines armed, even "wait forever" calls are
		// bounded: an in-flight op surfaces its error completion within
		// ~OpTimeout plus one sweep period, so 2×OpTimeout covers every
		// waiter — including ones waiting on a remote RID that no local
		// op ever carried (e.g. the peer died before posting).
		deadline = time.Now().Add(2 * time.Duration(p.opTimeoutNS))
	}
	w := idleWaiter{p: p}
	defer w.stop()
	for {
		n := p.Progress()
		if c, ok := p.takeMatchAny(rid, local); ok {
			if c.traced {
				p.traceEv(trace.KindReap, c.RID, "reap.wait")
			}
			return c, nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Completion{}, ErrTimeout
		}
		if p.closed.Load() {
			return Completion{}, ErrClosed
		}
		if n == 0 {
			w.wait()
		} else {
			w.progressed()
		}
	}
}

// Flush forces pending credit returns out (used before quiescing, e.g.
// by barriers, so peers are never left starved of credits). Shards
// already being driven elsewhere are skipped, like Progress.
func (p *Photon) Flush() {
	for _, s := range p.shards {
		if !s.mu.TryLock() {
			continue
		}
		for _, ps := range s.peers {
			p.retryDeferred(s, ps)
			p.returnCredits(ps, true)
		}
		s.mu.Unlock()
	}
}

// PendingLocal and PendingRemote report queue depths (test aid).
func (p *Photon) PendingLocal() int {
	n := 0
	for _, s := range p.shards {
		n += s.localCQ.length()
	}
	return n
}

// PendingRemote reports the remote completion queue depth.
func (p *Photon) PendingRemote() int {
	n := 0
	for _, s := range p.shards {
		n += s.remoteCQ.length()
	}
	return n
}
