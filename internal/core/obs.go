package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/metrics"
	"photon/internal/trace"
)

// obsState is the engine's observability plumbing: the trace ring that
// receives op-lifecycle events, the metrics registry that accumulates
// latency distributions, and the sampling state. Both sinks are
// independently optional; every hot-path probe below collapses to one
// or two atomic loads when they are off.
type obsState struct {
	ring *trace.Ring       // never nil after Init (falls back to trace.Global)
	reg  *metrics.Registry // nil unless Config.Metrics/MetricsTo
	mask uint64            // 2^TraceSampleShift - 1; 0 = sample every op
	seq  atomic.Uint64     // post counter driving the sampling decision

	// idleSeq drives the 1-in-64 sampling of idle progress-round
	// phase observations (see progressShard): its own stream, so a
	// storm of empty polls never perturbs the op sampling draw.
	idleSeq atomic.Uint64

	// delSeq drives the sampling of untraced ledger deliveries
	// (traceDelivery). Deliveries interleave 1:1 with posts on a
	// loopback or ping-pong path; a shared counter would phase-lock
	// the two draws and could starve one stream entirely.
	delSeq atomic.Uint64

	// gauge sources registered by layers above the engine (collectives):
	// each is invoked at Metrics snapshot time with a setter into the
	// snapshot's gauge set.
	//photon:lock obsgauge 85
	gaugeMu   sync.Mutex
	gaugeSrcs []func(set func(name string, v int64))
}

// obsEpoch anchors observability timestamps: time.Since against a
// fixed epoch compiles to one monotonic clock read and never
// allocates, and int64 nanoseconds ride inside pendingOp for free.
var obsEpoch = time.Now()

// nowNanos returns monotonic nanoseconds since process start.
func nowNanos() int64 { return int64(time.Since(obsEpoch)) }

// initObs wires the observability plane from the effective config.
func (p *Photon) initObs(cfg *Config) {
	p.obs.ring = cfg.Trace
	if p.obs.ring == nil {
		p.obs.ring = trace.Global
	}
	switch {
	case cfg.MetricsTo != nil:
		p.obs.reg = cfg.MetricsTo
	case cfg.Metrics:
		p.obs.reg = metrics.NewRegistry()
	}
	if cfg.TraceSampleShift > 0 {
		p.obs.mask = 1<<uint(cfg.TraceSampleShift) - 1
	}
}

// obsStamp is the per-op sampling gate, called once at post time. It
// returns 0 when the op should not be observed — both sinks off, or
// the op lost the sampling draw — and a nowNanos timestamp otherwise.
// The timestamp doubles as the "this op is sampled" flag carried in
// pendingOp.postNS, so every later lifecycle site is one int64
// comparison. Disabled cost: one or two atomic loads, no allocation.
func (p *Photon) obsStamp() int64 {
	o := &p.obs
	if !o.ring.Enabled() && !o.reg.Enabled() {
		return 0
	}
	if o.mask != 0 && o.seq.Add(1)&o.mask != 0 {
		return 0
	}
	return nowNanos()
}

// traceEv records one event against this rank into the instance ring.
// The ring itself gates on Enabled (one atomic load when off).
func (p *Photon) traceEv(kind trace.Kind, arg uint64, msg string) {
	p.obs.ring.Record(kind, p.rank, arg, msg)
}

// tracePost records a sampled post event. Arg is the wire-correlated
// RID — the one the target's delivery event will carry — and Arg2 the
// local RID the initiator's completion/reap events will carry, so the
// merged exporter can stitch post → remote apply → ack/reap into one
// flow. Peer names the target rank.
//
//photon:hotpath
func (p *Photon) tracePost(peer int, arg, arg2 uint64, msg string) {
	p.obs.ring.RecordFull(trace.KindPost, p.rank, peer, arg, arg2, 0, msg)
}

// traceDelivery records a ledger-delivery event. Entries that carried
// a wire trace context become span-link events (KindLink) holding the
// initiator's rank and post timestamp — the initiator already paid the
// sampling draw, so these always land. Untraced entries record a plain
// KindLedger event that still names the sender, subject to this rank's
// own sampling stream: a sampled cluster stays sampled on the receive
// side even when senders run dark.
//
//photon:hotpath
func (p *Photon) traceDelivery(sender int, ev *polledEvent, arg uint64, msg string) {
	if ev.hasCtx {
		p.obs.ring.RecordLink(trace.KindLink, p.rank, ev.origin, arg, ev.ctxNS, msg)
		return
	}
	o := &p.obs
	if !o.ring.Enabled() {
		return
	}
	if o.mask != 0 && o.delSeq.Add(1)&o.mask != 0 {
		return
	}
	o.ring.RecordLink(trace.KindLedger, p.rank, sender, arg, 0, msg)
}

// traceShard records a shard-engine event (KindShard, Peer = shard
// index). Entry events share the op-post sampling stream
// (TraceSampleShift) so a hot caller-driven progress loop does not
// flood the ring; pass sampled=false for rare events (park/wake,
// steals of already-sampled ops) that should always land.
//
//photon:hotpath
func (p *Photon) traceShard(shard int, arg uint64, sampled bool, msg string) {
	o := &p.obs
	if !o.ring.Enabled() {
		return
	}
	if sampled && o.mask != 0 && o.seq.Add(1)&o.mask != 0 {
		return
	}
	o.ring.RecordFull(trace.KindShard, p.rank, shard, arg, 0, 0, msg)
}

// putTraceCtx writes the wire trace context — this rank and the op's
// sampled post timestamp — at b[off:off+traceCtxSize].
//
//photon:hotpath
func (p *Photon) putTraceCtx(b []byte, off int, ts int64) {
	binary.LittleEndian.PutUint32(b[off:], uint32(p.rank))
	binary.LittleEndian.PutUint64(b[off+4:], uint64(ts))
}

// parseTraceCtx decodes a wire trace context into the polled event.
func parseTraceCtx(ev *polledEvent, ctx []byte) {
	ev.hasCtx = true
	ev.origin = int(binary.LittleEndian.Uint32(ctx))
	ev.ctxNS = int64(binary.LittleEndian.Uint64(ctx[4:]))
}

// opDone records the initiator-side end of a sampled op: the
// backend-complete trace event plus the post→completion latencies.
// remoteVis marks ops whose signaled completion also fences remote
// visibility (the ledger write orders behind the data on an RC
// channel), closing the post→remote-delivery distribution too.
func (p *Photon) opDone(op *pendingOp, msg string) {
	if op.postNS == 0 {
		return
	}
	lat := nowNanos() - op.postNS
	p.traceEv(trace.KindComplete, op.rid, msg)
	if r := p.obs.reg; r.Enabled() {
		r.RecordOp(op.mkind, metrics.StageInitiator, lat)
		if op.remoteVis {
			r.RecordOp(op.mkind, metrics.StageRemote, lat)
		}
	}
}

// TraceRing returns the ring receiving this instance's events (the
// configured ring or trace.Global). Enable it to start recording.
func (p *Photon) TraceRing() *trace.Ring { return p.obs.ring }

// MetricsRegistry returns the registry this instance records into, or
// nil when metrics are disabled.
func (p *Photon) MetricsRegistry() *metrics.Registry { return p.obs.reg }

// PeerClockOffset reports the transport's estimate of rank's wall
// clock minus this process's, in nanoseconds, with the RTT of the
// sample behind it (see ClockBackend). The self rank is trivially
// synchronized; backends without clock estimation report ok=false and
// callers should fall back to offset 0 (co-located processes) or an
// external source. Feed the result into trace.PeerDump.OffsetNS when
// stitching per-rank rings into one merged timeline.
func (p *Photon) PeerClockOffset(rank int) (offsetNS, rttNS int64, ok bool) {
	if rank == p.rank {
		return 0, 0, true
	}
	if cb, isCB := p.be.(ClockBackend); isCB {
		return cb.ClockOffset(rank)
	}
	return 0, 0, false
}

// Metrics snapshots the latency registry and attaches engine gauges:
// completion-ring depth high-water marks and overflow counts, parked
// deferred work, and per-peer credit/deferred gauges. Callable with
// metrics disabled (the snapshot then carries gauges only).
func (p *Photon) Metrics() *metrics.Snapshot {
	snap := p.obs.reg.Snapshot()
	g := snap.Gauges
	var localHW, remoteHW, overflows, parked, hints, reaps int64
	for _, s := range p.shards {
		if hw := s.localCQ.highWater(); hw > localHW {
			localHW = hw
		}
		if hw := s.remoteCQ.highWater(); hw > remoteHW {
			remoteHW = hw
		}
		overflows += s.localCQ.overflowCount() + s.remoteCQ.overflowCount()
		parked += s.parked.Load()
		hints += s.creditHintTotal.Load()
		reaps += s.reaps.Load()
	}
	g.Set("local_cq_highwater", localHW)
	g.Set("remote_cq_highwater", remoteHW)
	g.Set("ring_overflows", overflows)
	g.Set("deferred_parked", parked)
	g.Set("credit_hint_pending", hints)

	// Shard gauges: the aggregate reap count plus per-shard activity,
	// so load imbalance across shards is directly observable.
	g.Set("engine_shards", int64(len(p.shards)))
	g.Set("engine_shard_reaps", reaps)
	for _, s := range p.shards {
		prefix := fmt.Sprintf("engine_shard%d_", s.idx)
		g.Set(prefix+"reaps", s.reaps.Load())
		g.Set(prefix+"sweeps", s.sweeps.Load())
	}

	// Failure-path gauges: always exported (0 when the fault plane is
	// disarmed) so dashboards and smoke tests can rely on the names.
	g.Set("ops_timed_out", p.opsTimedOut.Load())
	g.Set("peer_suspect_transitions", p.suspectTransitions.Load())
	g.Set("peers_down", p.peersDown.Load())

	// Per-peer gauges. consumed/lastReturned are owning-shard-engine
	// and peer-mutex state respectively; take the same locks the
	// engine does so a snapshot during live traffic stays race-free.
	for _, s := range p.shards {
		s.mu.Lock()
		for _, ps := range s.peers {
			if ps.rank == p.rank {
				continue
			}
			var consumed, unreturned int64
			ps.mu.Lock()
			for cl := 0; cl < numClasses; cl++ {
				consumed += ps.consumed[cl]
				unreturned += ps.consumed[cl] - ps.lastReturned[cl]
			}
			ps.mu.Unlock()
			prefix := fmt.Sprintf("peer%d_", ps.rank)
			g.Set(prefix+"deferred", ps.deferred.Load())
			g.Set(prefix+"entries_consumed", consumed)
			g.Set(prefix+"credits_unreturned", unreturned)
		}
		s.mu.Unlock()
	}

	// Transport-level gauges, when the backend measures itself (the
	// TCP backend exports its data-path coalescing counters here).
	if sb, ok := p.be.(StatsBackend); ok {
		sb.TransportStats(func(name string, v int64) { g.Set(name, v) })
	}

	// Layered gauge sources (collectives counters and the like).
	p.obs.gaugeMu.Lock()
	var srcs []func(set func(name string, v int64))
	srcs = append(srcs, p.obs.gaugeSrcs...)
	p.obs.gaugeMu.Unlock()
	for _, fn := range srcs {
		fn(func(name string, v int64) { g.Set(name, v) })
	}
	return snap
}

// AddGaugeSource registers fn to contribute gauges to every Metrics
// snapshot. Layers above the engine (collectives) use it to surface
// their counters through the same snapshot without the engine knowing
// their names. fn must be safe for concurrent use.
func (p *Photon) AddGaugeSource(fn func(set func(name string, v int64))) {
	p.obs.gaugeMu.Lock()
	p.obs.gaugeSrcs = append(p.obs.gaugeSrcs, fn)
	p.obs.gaugeMu.Unlock()
}
