package core

import (
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Engine sharding. Peers are partitioned across engine shards
// (rank % Config.EngineShards); each shard owns the progress-engine
// state for its peers — completion rings, deferred/credit counters,
// reusable sweep scratch — behind its own try-lock mutex, so shards
// progress concurrently on multicore hosts. The fault-tolerance plane
// stays whole-instance and runs on shard 0 (a fault sweep is never
// per-op cost; see fault.go for the cross-shard locking it does).
//
// Ordering: sharding preserves every per-peer guarantee — one peer is
// owned by exactly one shard, so its ledger sweep, deferred FIFO, and
// credit maintenance stay serialized. What sharding relaxes is
// cross-peer completion interleaving: completions for peers on
// different shards are harvested independently, and backend-CQ reaping
// is work-stealing (any shard may drain the transport queue), so two
// local completions toward different peers may surface in either
// order. Completions are keyed by RID, never by position, so callers
// are insensitive to this by construction.
type engineShard struct {
	idx   int
	peers []*peerState // the peers this shard owns (rank % shards == idx)

	//photon:lock shard 20
	mu sync.Mutex // serializes this shard's engine (try-lock entry)

	// Harvested completions for this shard's peers, split so producers
	// and consumers do not share a lock (see ring.go).
	localCQ  *compRing
	remoteCQ *compRing

	// parked mirrors the sum of the owned peers' deferred counts and
	// creditHintTotal the sum of their consumedHint counters, so a
	// fully idle shard round returns after two atomic loads without
	// touching any per-peer state.
	parked          atomic.Int64
	creditHintTotal atomic.Int64

	lastAct uint64 // arena activity counter at last ledger sweep (shard mu)

	// wake parks this shard's background runner; fanned out by the
	// notifier on every backend event (capacity 1, non-blocking sends).
	wake chan struct{}

	// Reusable sweep scratch, serialized by the shard mutex.
	pollScratch []polledEvent
	reapScratch [64]BackendCompletion
	wireScratch []wireOp
	reqScratch  []WriteReq

	// Per-shard activity gauges (engine_shard{i}_reaps/_sweeps).
	reaps  atomic.Int64 // backend completions handled by this shard
	sweeps atomic.Int64 // productive progress rounds on this shard
}

// kick nudges the shard's runner latch (non-blocking, coalescing).
//
//photon:hotpath
func (s *engineShard) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// initShards builds the shard set and assigns peers. Called by Init
// after the peer table exists.
func (p *Photon) initShards() {
	n := p.cfg.EngineShards
	p.shards = make([]*engineShard, n)
	for i := 0; i < n; i++ {
		p.shards[i] = &engineShard{
			idx:         i,
			localCQ:     newCompRing(p.cfg.CompQueueDepth),
			remoteCQ:    newCompRing(p.cfg.CompQueueDepth),
			wake:        make(chan struct{}, 1),
			wireScratch: make([]wireOp, 0, wireBatchMax),
			reqScratch:  make([]WriteReq, 0, wireBatchMax),
		}
	}
	for _, ps := range p.peers {
		s := p.shards[ps.rank%n]
		ps.shard = s
		s.peers = append(s.peers, ps)
	}
}

// NumShards reports the engine shard count (Config.EngineShards).
func (p *Photon) NumShards() int { return len(p.shards) }

// ProgressShard drives one engine shard: it reaps backend completions,
// polls the owned peers' ledgers, retries their deferred work, and
// performs credit maintenance, returning the number of events handled.
// Distinct shards progress concurrently; concurrent callers of the
// same shard coalesce (one runs, others return 0 immediately). Shard 0
// additionally runs the fault sweep. Out-of-range indices return 0.
//
//photon:hotpath
func (p *Photon) ProgressShard(i int) int {
	if i < 0 || i >= len(p.shards) {
		return 0
	}
	p.stats.progress.Add(1)
	p.traceShard(i, 0, true, "shard.enter")
	return p.progressShard(p.shards[i])
}

// ProgressAll drives every shard once from the calling goroutine; it
// is Progress under a name that reads naturally next to ProgressShard.
//
//photon:hotpath
func (p *Photon) ProgressAll() int { return p.Progress() }

// StartProgress launches the background progress mode: one runner
// goroutine per shard, each driving its shard and parking on the
// shard's notify latch between dry rounds. Idempotent; the runners
// stop when the instance is closed. With runners active the caller
// may still drive Progress explicitly — callers coalesce per shard.
func (p *Photon) StartProgress() {
	if p.closed.Load() || p.runnersOn.Swap(true) {
		return
	}
	for _, s := range p.shards {
		p.runWG.Add(1)
		go p.runShard(s)
	}
}

// runShard is one shard's background runner loop. Pacing mirrors
// idleWaiter: park on the shard latch when the backend pushes events
// (goroutine-handoff wakeups, parkGrace-bounded), yield-then-sleep
// otherwise.
func (p *Photon) runShard(s *engineShard) {
	defer p.runWG.Done()
	var park *time.Timer
	idle := 0
	for !p.closed.Load() {
		p.stats.progress.Add(1)
		if p.progressShard(s) > 0 {
			idle = 0
			continue
		}
		idle++
		if p.nfy != nil {
			if park == nil {
				park = time.NewTimer(parkGrace)
			} else {
				park.Reset(parkGrace)
			}
			p.traceShard(s.idx, uint64(idle), false, "shard.park")
			select {
			case <-s.wake:
				if !park.Stop() {
					<-park.C
				}
				p.traceShard(s.idx, 0, false, "shard.wake")
			case <-park.C:
			}
			continue
		}
		if idle > 64 {
			time.Sleep(5 * time.Microsecond)
		} else {
			gort.Gosched()
		}
	}
	if park != nil {
		park.Stop()
	}
}

// notifier fans one backend activity event out to every consumer: each
// shard's runner latch, the BackendNotify compatibility latch, and
// every subscribed blocking waiter. Each waiter owns a private
// capacity-1 channel for the duration of its wait, so a kick consumed
// by one waiter can never starve another — the fairness hole of a
// single shared notify channel. Channels are recycled through a free
// list, keeping steady-state blocking waits allocation-free.
type notifier struct {
	p      *Photon
	extern chan struct{} // BackendNotify consumers (capacity 1)
	stop   chan struct{} // closed by Close; stops the relay fallback

	//photon:lock notifier 90
	mu    sync.Mutex
	subs  []chan struct{}
	free  []chan struct{}
	nSubs atomic.Int32
}

// fanout delivers one activity event to every consumer. It runs on the
// backend's event-producing goroutine (WakeSinkBackend) or the relay
// goroutine, so it must stay non-blocking.
//
//photon:hotpath
func (nf *notifier) fanout() {
	for _, s := range nf.p.shards {
		s.kick()
	}
	select {
	case nf.extern <- struct{}{}:
	default:
	}
	if nf.nSubs.Load() == 0 {
		return
	}
	nf.mu.Lock() //photon:allow hotpathalloc -- subscriber list lock; only taken when a blocking waiter is actually parked
	for _, ch := range nf.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	nf.mu.Unlock()
}

// subscribe hands out a private wake channel, registered for fanout.
func (nf *notifier) subscribe() chan struct{} {
	nf.mu.Lock()
	var ch chan struct{}
	if n := len(nf.free); n > 0 {
		ch = nf.free[n-1]
		nf.free[n-1] = nil
		nf.free = nf.free[:n-1]
	} else {
		ch = make(chan struct{}, 1)
	}
	nf.subs = append(nf.subs, ch)
	nf.mu.Unlock()
	nf.nSubs.Add(1)
	return ch
}

// unsubscribe retires a wake channel back to the free list, draining
// any stale token so the next subscriber starts clean.
func (nf *notifier) unsubscribe(ch chan struct{}) {
	nf.mu.Lock()
	for i, c := range nf.subs {
		if c == ch {
			last := len(nf.subs) - 1
			nf.subs[i] = nf.subs[last]
			nf.subs[last] = nil
			nf.subs = nf.subs[:last]
			break
		}
	}
	select {
	case <-ch:
	default:
	}
	nf.free = append(nf.free, ch)
	nf.mu.Unlock()
	nf.nSubs.Add(-1)
}

// relay is the fallback for NotifyBackend transports that do not
// implement WakeSinkBackend: it converts channel tokens into fanouts
// at the cost of one extra scheduler hop per event.
func (nf *notifier) relay(src <-chan struct{}) {
	for {
		select {
		case <-nf.stop:
			return
		case <-src:
			nf.fanout()
		}
	}
}

// initNotifier wires backend activity events to the shard fan-out.
// Without a NotifyBackend the notifier stays nil and all waiters use
// yield-then-sleep pacing, as before.
func (p *Photon) initNotifier() {
	if p.beWake == nil {
		return
	}
	p.nfy = &notifier{
		p:      p,
		extern: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	if ws, ok := p.be.(WakeSinkBackend); ok {
		ws.SetWakeSink(p.nfy.fanout)
		return
	}
	go p.nfy.relay(p.beWake)
}
