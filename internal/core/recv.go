package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/trace"
)

// recvTab is the one-shot posted-receive table: buffers registered by
// RID that inbound message deliveries (packed and rendezvous) land in
// directly, skipping the middleware's own allocation and staging copy.
// It exists for schedule-driven layers (collectives) that know exactly
// which RIDs will arrive and want arrivals delivered into caller-owned
// memory once.
type recvTab struct {
	// count gates the poll-path lookup: when no receives are posted,
	// consulting the table costs one atomic load and no lock.
	count atomic.Int64

	//photon:lock recvtab 35
	mu   sync.Mutex
	bufs map[uint64][]byte
}

func (t *recvTab) init() { t.bufs = make(map[uint64][]byte) }

// post registers buf for rid. The rid must not already be posted.
func (t *recvTab) post(rid uint64, buf []byte) error {
	t.mu.Lock()
	if _, dup := t.bufs[rid]; dup {
		t.mu.Unlock()
		return fmt.Errorf("photon: receive already posted for rid %#x", rid)
	}
	t.bufs[rid] = buf
	t.mu.Unlock()
	t.count.Add(1)
	return nil
}

// take removes and returns the posted buffer for rid if one exists and
// is large enough for need bytes. Undersized postings are left in
// place (the arrival falls back to middleware-owned delivery and the
// caller reclaims the posting with cancel). Called from the poll path,
// but the count load gates the mutex: with nothing posted the cost is
// one atomic load.
func (t *recvTab) take(rid uint64, need int) ([]byte, bool) {
	if t.count.Load() == 0 {
		return nil, false
	}
	t.mu.Lock()
	b, ok := t.bufs[rid]
	if !ok || len(b) < need {
		t.mu.Unlock()
		return nil, false
	}
	delete(t.bufs, rid)
	t.mu.Unlock()
	t.count.Add(-1)
	return b[:need], true
}

// restore re-registers a buffer taken by take when the posted delivery
// could not be started (transport busy); the next attempt finds it
// again.
func (t *recvTab) restore(rid uint64, buf []byte) {
	t.mu.Lock()
	t.bufs[rid] = buf
	t.mu.Unlock()
	t.count.Add(1)
}

// cancel removes a posting that was never consumed.
func (t *recvTab) cancel(rid uint64) bool {
	if t.count.Load() == 0 {
		return false
	}
	t.mu.Lock()
	_, ok := t.bufs[rid]
	if ok {
		delete(t.bufs, rid)
	}
	t.mu.Unlock()
	if ok {
		t.count.Add(-1)
	}
	return ok
}

// PostRecv registers a one-shot posted receive: when a message delivery
// (packed eager or rendezvous) arrives carrying rid, its payload is
// placed directly into buf — no middleware allocation, no staging copy
// — and the harvested remote completion's Data aliases buf.
//
// The posting is consumed by the first matching arrival whose payload
// fits in buf (rendezvous reads land buf[:size]; packed deliveries
// surface Data = buf[:payloadLen]). An arrival larger than buf ignores
// the posting and is delivered middleware-owned as usual. A message
// that arrives before PostRecv is likewise delivered middleware-owned:
// callers that cannot order the post before the arrival check
// CancelRecv after harvesting — if it returns true the posting went
// unused and the completion's Data is a middleware-owned copy to fold
// into buf.
//
// buf is owned by the engine until the posting is consumed or
// canceled.
func (p *Photon) PostRecv(rid uint64, buf []byte) error {
	if rid == 0 {
		return fmt.Errorf("photon: posted receive needs a non-zero rid")
	}
	if p.closed.Load() {
		return ErrClosed
	}
	return p.recvs.post(rid, buf)
}

// CancelRecv withdraws a posted receive, reporting whether the posting
// was still unconsumed (true: the engine no longer references buf;
// false: an arrival already consumed it).
func (p *Photon) CancelRecv(rid uint64) bool {
	return p.recvs.cancel(rid)
}

// Waiter paces blocking wait loops across calls: it keeps the notifier
// subscription and park timer of the engine's internal idle waiter
// alive between waits, so schedule-driven callers (collectives) running
// thousands of rounds do not re-subscribe per round. The zero value is
// not usable; obtain one from NewWaiter and Release it when done.
//
// A Waiter is not safe for concurrent use.
type Waiter struct {
	w    idleWaiter
	pend []int // WaitAll index scratch, reused across calls
}

// NewWaiter creates a reusable wait pacer bound to this instance.
func NewWaiter(p *Photon) *Waiter {
	return &Waiter{w: idleWaiter{p: p}}
}

// Idle parks the caller until backend activity suggests progress is
// possible (or a grace period passes). Call it after a Progress round
// that handled nothing; re-poll after every return.
func (w *Waiter) Idle() { w.w.wait() }

// Progressed resets the idle pacing after a productive round.
func (w *Waiter) Progressed() { w.w.progressed() }

// Release retires the waiter's notifier subscription and timer. The
// waiter may be reused afterwards (the next Idle resubscribes).
func (w *Waiter) Release() { w.w.stop() }

// WaitRemoteAll drives progress until every listed remote completion
// has arrived, removing each from its stream; out[i] receives the
// completion for rids[i]. A zero rid is skipped (its out slot is left
// untouched) — schedules with no-op edges pass holes rather than
// compacting. Unlike len(rids) separate WaitRemote calls, one call
// reaps arrivals in whatever order the network delivers them, so a
// round of r messages costs one network latency, not r.
//
// A non-positive timeout waits forever (bounded by 2×OpTimeout when op
// deadlines are armed). On timeout the already-arrived completions are
// in out and ErrTimeout is returned. When every completion arrived,
// the first non-nil Completion.Err (in rids order) is returned, so
// callers checking only the error still observe per-op failures.
func (p *Photon) WaitRemoteAll(w *Waiter, rids []uint64, out []Completion, timeout time.Duration) error {
	return p.waitAllMatched(w, rids, out, timeout, false)
}

// WaitLocalAll is WaitRemoteAll for local completions.
func (p *Photon) WaitLocalAll(w *Waiter, rids []uint64, out []Completion, timeout time.Duration) error {
	return p.waitAllMatched(w, rids, out, timeout, true)
}

func (p *Photon) waitAllMatched(w *Waiter, rids []uint64, out []Completion, timeout time.Duration, local bool) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	} else if p.opTimeoutNS > 0 {
		// Same bound as waitMatch: with op deadlines armed, every
		// in-flight op surfaces an error completion within ~2×OpTimeout.
		deadline = time.Now().Add(2 * time.Duration(p.opTimeoutNS))
	}
	return p.waitAll(w, rids, out, deadline, nil, local)
}

// TakeRemote non-blockingly removes and returns the remote completion
// for rid if it has already arrived. It does not drive Progress; pair
// it with a caller-driven progress loop. The collectives layer uses it
// to poll for revocation notices inside post-retry spins.
func (p *Photon) TakeRemote(rid uint64) (Completion, bool) {
	return p.takeMatchAny(rid, false)
}

// ErrWaitAborted is returned by the spec-carrying waits when one of the
// spec's AbortRIDs arrived: the wait was cut short not because an
// awaited completion failed but because an out-of-band abort message
// (a collective revocation notice) landed. The consumed completion is
// in WaitSpec.Aborted.
var ErrWaitAborted = errors.New("photon: wait aborted")

// WaitSpec parameterizes a failure-aware batched wait. Unlike the plain
// WaitRemoteAll/WaitLocalAll — which only give up on a wall-clock bound
// and surface per-op errors after every completion arrived — a wait
// carrying a spec returns as soon as anything proves the batch cannot
// or should not complete:
//
//   - a reaped completion carries a non-nil Err (returned immediately;
//     remaining completions are abandoned);
//   - a rank in Watch latches PeerDown (a wrapped ErrPeerDown naming
//     the rank is returned, DownRank set);
//   - a remote completion for one of AbortRIDs arrives (ErrWaitAborted
//     is returned; Aborted/AbortIdx carry the consumed notice);
//   - Deadline passes (ErrTimeout). A zero Deadline falls back to
//     2×OpTimeout when op deadlines are armed, else waits forever.
//
// The spec is caller-owned and reusable; the output fields (DownRank,
// AbortIdx, Aborted) are overwritten by each wait that returns an
// abort-flavored error.
type WaitSpec struct {
	Deadline  time.Time
	Watch     []int    // peer ranks whose PeerDown latch aborts the wait
	AbortRIDs []uint64 // remote RIDs whose arrival aborts the wait

	DownRank int        // set on ErrPeerDown: the rank that latched down
	AbortIdx int        // set on ErrWaitAborted: index into AbortRIDs
	Aborted  Completion // set on ErrWaitAborted: the consumed notice
}

// WaitRemoteAllSpec is WaitRemoteAll plus the spec's abort conditions.
func (p *Photon) WaitRemoteAllSpec(w *Waiter, rids []uint64, out []Completion, spec *WaitSpec) error {
	return p.waitAll(w, rids, out, specDeadline(p, spec), spec, false)
}

// WaitLocalAllSpec is WaitLocalAll plus the spec's abort conditions.
// AbortRIDs are always matched against the remote stream (abort notices
// arrive from peers) even though the awaited completions are local.
func (p *Photon) WaitLocalAllSpec(w *Waiter, rids []uint64, out []Completion, spec *WaitSpec) error {
	return p.waitAll(w, rids, out, specDeadline(p, spec), spec, true)
}

func specDeadline(p *Photon, spec *WaitSpec) time.Time {
	if spec != nil && !spec.Deadline.IsZero() {
		return spec.Deadline
	}
	if p.opTimeoutNS > 0 {
		return time.Now().Add(2 * time.Duration(p.opTimeoutNS))
	}
	return time.Time{}
}

// checkSpec evaluates the spec's out-of-band abort conditions: an
// arrived abort RID, then a watched rank latched down. Returns nil when
// the wait should keep going.
func (p *Photon) checkSpec(spec *WaitSpec) error {
	for i, ar := range spec.AbortRIDs {
		if ar == 0 {
			continue
		}
		if c, ok := p.takeMatchAny(ar, false); ok {
			spec.AbortIdx = i
			spec.Aborted = c
			return ErrWaitAborted
		}
	}
	for _, r := range spec.Watch {
		if p.PeerHealthState(r) == PeerDown {
			spec.DownRank = r
			return fmt.Errorf("photon: rank %d: %w", r, ErrPeerDown)
		}
	}
	return nil
}

func (p *Photon) waitAll(w *Waiter, rids []uint64, out []Completion, deadline time.Time, spec *WaitSpec, local bool) error {
	if len(out) < len(rids) {
		return fmt.Errorf("photon: wait-all out slice too short: %d for %d rids", len(out), len(rids))
	}
	pend := w.pend[:0]
	for i, rid := range rids {
		if rid != 0 {
			pend = append(pend, i)
		}
	}
	for len(pend) > 0 {
		n := p.Progress()
		took := false
		for j := 0; j < len(pend); {
			i := pend[j]
			if c, ok := p.takeMatchAny(rids[i], local); ok {
				if c.traced {
					p.traceEv(trace.KindReap, c.RID, "reap.waitall")
				}
				out[i] = c
				pend[j] = pend[len(pend)-1]
				pend = pend[:len(pend)-1]
				took = true
				if spec != nil && c.Err != nil {
					// Fail fast: one failed op condemns the batch; the
					// abandoned completions belong to a collective that
					// is about to be revoked anyway.
					w.pend = pend[:0]
					spec.DownRank = c.Rank
					return c.Err
				}
				continue
			}
			j++
		}
		if len(pend) == 0 {
			break
		}
		if spec != nil {
			if err := p.checkSpec(spec); err != nil {
				w.pend = pend[:0]
				return err
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			w.pend = pend[:0]
			return ErrTimeout
		}
		if p.closed.Load() {
			w.pend = pend[:0]
			return ErrClosed
		}
		if n == 0 && !took {
			w.Idle()
		} else {
			w.Progressed()
		}
	}
	w.pend = pend[:0]
	for i, rid := range rids {
		if rid != 0 && out[i].Err != nil {
			if spec != nil {
				spec.DownRank = out[i].Rank
			}
			return out[i].Err
		}
	}
	return nil
}
