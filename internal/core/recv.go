package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/trace"
)

// recvTab is the one-shot posted-receive table: buffers registered by
// RID that inbound message deliveries (packed and rendezvous) land in
// directly, skipping the middleware's own allocation and staging copy.
// It exists for schedule-driven layers (collectives) that know exactly
// which RIDs will arrive and want arrivals delivered into caller-owned
// memory once.
type recvTab struct {
	// count gates the poll-path lookup: when no receives are posted,
	// consulting the table costs one atomic load and no lock.
	count atomic.Int64

	//photon:lock recvtab 35
	mu   sync.Mutex
	bufs map[uint64][]byte
}

func (t *recvTab) init() { t.bufs = make(map[uint64][]byte) }

// post registers buf for rid. The rid must not already be posted.
func (t *recvTab) post(rid uint64, buf []byte) error {
	t.mu.Lock()
	if _, dup := t.bufs[rid]; dup {
		t.mu.Unlock()
		return fmt.Errorf("photon: receive already posted for rid %#x", rid)
	}
	t.bufs[rid] = buf
	t.mu.Unlock()
	t.count.Add(1)
	return nil
}

// take removes and returns the posted buffer for rid if one exists and
// is large enough for need bytes. Undersized postings are left in
// place (the arrival falls back to middleware-owned delivery and the
// caller reclaims the posting with cancel). Called from the poll path,
// but the count load gates the mutex: with nothing posted the cost is
// one atomic load.
func (t *recvTab) take(rid uint64, need int) ([]byte, bool) {
	if t.count.Load() == 0 {
		return nil, false
	}
	t.mu.Lock()
	b, ok := t.bufs[rid]
	if !ok || len(b) < need {
		t.mu.Unlock()
		return nil, false
	}
	delete(t.bufs, rid)
	t.mu.Unlock()
	t.count.Add(-1)
	return b[:need], true
}

// restore re-registers a buffer taken by take when the posted delivery
// could not be started (transport busy); the next attempt finds it
// again.
func (t *recvTab) restore(rid uint64, buf []byte) {
	t.mu.Lock()
	t.bufs[rid] = buf
	t.mu.Unlock()
	t.count.Add(1)
}

// cancel removes a posting that was never consumed.
func (t *recvTab) cancel(rid uint64) bool {
	if t.count.Load() == 0 {
		return false
	}
	t.mu.Lock()
	_, ok := t.bufs[rid]
	if ok {
		delete(t.bufs, rid)
	}
	t.mu.Unlock()
	if ok {
		t.count.Add(-1)
	}
	return ok
}

// PostRecv registers a one-shot posted receive: when a message delivery
// (packed eager or rendezvous) arrives carrying rid, its payload is
// placed directly into buf — no middleware allocation, no staging copy
// — and the harvested remote completion's Data aliases buf.
//
// The posting is consumed by the first matching arrival whose payload
// fits in buf (rendezvous reads land buf[:size]; packed deliveries
// surface Data = buf[:payloadLen]). An arrival larger than buf ignores
// the posting and is delivered middleware-owned as usual. A message
// that arrives before PostRecv is likewise delivered middleware-owned:
// callers that cannot order the post before the arrival check
// CancelRecv after harvesting — if it returns true the posting went
// unused and the completion's Data is a middleware-owned copy to fold
// into buf.
//
// buf is owned by the engine until the posting is consumed or
// canceled.
func (p *Photon) PostRecv(rid uint64, buf []byte) error {
	if rid == 0 {
		return fmt.Errorf("photon: posted receive needs a non-zero rid")
	}
	if p.closed.Load() {
		return ErrClosed
	}
	return p.recvs.post(rid, buf)
}

// CancelRecv withdraws a posted receive, reporting whether the posting
// was still unconsumed (true: the engine no longer references buf;
// false: an arrival already consumed it).
func (p *Photon) CancelRecv(rid uint64) bool {
	return p.recvs.cancel(rid)
}

// Waiter paces blocking wait loops across calls: it keeps the notifier
// subscription and park timer of the engine's internal idle waiter
// alive between waits, so schedule-driven callers (collectives) running
// thousands of rounds do not re-subscribe per round. The zero value is
// not usable; obtain one from NewWaiter and Release it when done.
//
// A Waiter is not safe for concurrent use.
type Waiter struct {
	w    idleWaiter
	pend []int // WaitAll index scratch, reused across calls
}

// NewWaiter creates a reusable wait pacer bound to this instance.
func NewWaiter(p *Photon) *Waiter {
	return &Waiter{w: idleWaiter{p: p}}
}

// Idle parks the caller until backend activity suggests progress is
// possible (or a grace period passes). Call it after a Progress round
// that handled nothing; re-poll after every return.
func (w *Waiter) Idle() { w.w.wait() }

// Progressed resets the idle pacing after a productive round.
func (w *Waiter) Progressed() { w.w.progressed() }

// Release retires the waiter's notifier subscription and timer. The
// waiter may be reused afterwards (the next Idle resubscribes).
func (w *Waiter) Release() { w.w.stop() }

// WaitRemoteAll drives progress until every listed remote completion
// has arrived, removing each from its stream; out[i] receives the
// completion for rids[i]. A zero rid is skipped (its out slot is left
// untouched) — schedules with no-op edges pass holes rather than
// compacting. Unlike len(rids) separate WaitRemote calls, one call
// reaps arrivals in whatever order the network delivers them, so a
// round of r messages costs one network latency, not r.
//
// A non-positive timeout waits forever (bounded by 2×OpTimeout when op
// deadlines are armed). On timeout the already-arrived completions are
// in out and ErrTimeout is returned. When every completion arrived,
// the first non-nil Completion.Err (in rids order) is returned, so
// callers checking only the error still observe per-op failures.
func (p *Photon) WaitRemoteAll(w *Waiter, rids []uint64, out []Completion, timeout time.Duration) error {
	return p.waitAllMatched(w, rids, out, timeout, false)
}

// WaitLocalAll is WaitRemoteAll for local completions.
func (p *Photon) WaitLocalAll(w *Waiter, rids []uint64, out []Completion, timeout time.Duration) error {
	return p.waitAllMatched(w, rids, out, timeout, true)
}

func (p *Photon) waitAllMatched(w *Waiter, rids []uint64, out []Completion, timeout time.Duration, local bool) error {
	if len(out) < len(rids) {
		return fmt.Errorf("photon: wait-all out slice too short: %d for %d rids", len(out), len(rids))
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	} else if p.opTimeoutNS > 0 {
		// Same bound as waitMatch: with op deadlines armed, every
		// in-flight op surfaces an error completion within ~2×OpTimeout.
		deadline = time.Now().Add(2 * time.Duration(p.opTimeoutNS))
	}
	pend := w.pend[:0]
	for i, rid := range rids {
		if rid != 0 {
			pend = append(pend, i)
		}
	}
	for len(pend) > 0 {
		n := p.Progress()
		took := false
		for j := 0; j < len(pend); {
			i := pend[j]
			if c, ok := p.takeMatchAny(rids[i], local); ok {
				if c.traced {
					p.traceEv(trace.KindReap, c.RID, "reap.waitall")
				}
				out[i] = c
				pend[j] = pend[len(pend)-1]
				pend = pend[:len(pend)-1]
				took = true
				continue
			}
			j++
		}
		if len(pend) == 0 {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			w.pend = pend[:0]
			return ErrTimeout
		}
		if p.closed.Load() {
			w.pend = pend[:0]
			return ErrClosed
		}
		if n == 0 && !took {
			w.Idle()
		} else {
			w.Progressed()
		}
	}
	w.pend = pend[:0]
	for i, rid := range rids {
		if rid != 0 && out[i].Err != nil {
			return out[i].Err
		}
	}
	return nil
}
