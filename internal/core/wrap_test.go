package core_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
)

// flakyBackend decorates a real backend, failing the first N armed
// PostWrites with a *wrapped* ErrWouldBlock — the shape any decorating
// transport (chaos injection, tracing shims) produces when it annotates
// backend errors with %w. The engine must treat a wrapped would-block
// exactly like the bare sentinel: park and retry, never fail the op.
//
// Regression guard for the identity-comparison bug photonvet's errwrap
// analyzer surfaced: `err != ErrWouldBlock` in the post/retry paths
// turned any wrapped would-block into a hard transport failure.
type flakyBackend struct {
	core.Backend
	armed atomic.Bool
	left  atomic.Int64 // armed PostWrite failures remaining
	fails atomic.Int64 // failures actually injected
}

func (f *flakyBackend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	if f.armed.Load() && f.left.Add(-1) >= 0 {
		f.fails.Add(1)
		return fmt.Errorf("flaky transport: %w", core.ErrWouldBlock)
	}
	return f.Backend.PostWrite(rank, local, raddr, rkey, token, signaled)
}

func TestWrappedWouldBlockRetries(t *testing.T) {
	cl, err := vsim.NewCluster(2, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	flaky := &flakyBackend{Backend: cl.Backend(0)}
	flaky.left.Store(3)
	backends := []core.Backend{flaky, cl.Backend(1)}
	phs := make([]*core.Photon, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(backends[r], core.Config{})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d init: %v", r, err)
		}
	}
	defer phs[0].Close()
	defer phs[1].Close()

	// Rank 1 exports a target buffer; both ranks join the exchange.
	target := make([]byte, 4096)
	rb, _, err := phs[1].RegisterBuffer(target)
	if err != nil {
		t.Fatal(err)
	}
	descs := make([][]mem.RemoteBuffer, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			contrib := mem.RemoteBuffer{}
			if r == 1 {
				contrib = rb
			}
			descs[r], _ = phs[r].ExchangeBuffers(contrib)
		}(r)
	}
	wg.Wait()

	// Arm the fault and drive a put large enough for the direct-write
	// path (one PostWrite per attempt) from rank 0 into rank 1.
	flaky.armed.Store(true)
	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := phs[0].PutBlocking(1, payload, descs[0][1], 0, 7, 0); err != nil {
		t.Fatalf("PutBlocking with wrapped would-block: %v", err)
	}
	lc, err := phs[0].WaitLocal(7, waitT)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Err != nil {
		t.Fatalf("completion carries error %v; a wrapped ErrWouldBlock must park and retry, not fail the op", lc.Err)
	}
	if flaky.fails.Load() == 0 {
		t.Fatal("fault was never injected; test exercised nothing")
	}
	flaky.armed.Store(false)
}
