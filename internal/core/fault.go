package core

import (
	"fmt"
	"time"

	"photon/internal/trace"
)

// Fault-tolerance plane: the peer health state machine driven by the
// backend's failure detector, the OpTimeout deadline sweep, and the
// shared op-failure plumbing used by peer-down, Close, and hard post
// errors.
//
// Everything here is cold: Progress gates the whole plane behind one
// int64 comparison (faultPollNS == 0 when neither OpTimeout nor
// liveness is configured), and an armed sweep runs at most every
// faultPollNS nanoseconds. Allocation on these paths is acceptable —
// a fault is never per-op cost.
//
// Buffer ownership during sweeps follows the Backend contract: a
// swept read/atomic's result buffer (and a rendezvous get's slab
// block) may still be written by the transport if the op completes
// late, so the sweep must LEAK them rather than recycle — the token
// generation bump guarantees the late completion is dropped, but not
// that the DMA into the buffer never happens. Deferred wire ops are
// the opposite: they never reached the backend, so their pooled
// scratch is recycled immediately.

// errOpTimeout is the error carried by deadline-swept completions.
var errOpTimeout = fmt.Errorf("photon: operation exceeded OpTimeout: %w", ErrTimeout)

// initFaultPoll derives the sweep cadence from the armed features:
// OpTimeout sweeps want ~4 checks per timeout, health polls ~4 per
// suspect window. Zero leaves the plane disabled.
func (p *Photon) initFaultPoll() {
	poll := int64(0)
	if p.opTimeoutNS > 0 {
		poll = p.opTimeoutNS / 4
	}
	if p.hbe != nil {
		if h := int64(p.cfg.SuspectAfter) / 4; poll == 0 || (h > 0 && h < poll) {
			poll = h
		}
	}
	if poll < 1 && (p.opTimeoutNS > 0 || p.hbe != nil) {
		poll = 1
	}
	p.faultPollNS = poll
}

// pollFaults is the Progress-driven fault sweep: peer health
// transitions first (a down peer fails everything toward it at
// once), then op deadlines. It is whole-instance work serialized by
// shard 0's mutex (the caller); sweeping a peer owned by another
// shard additionally takes that shard's mutex — lock order is always
// shard 0 first, then the owning shard, so it can never deadlock
// against the owning shard's engine (which takes only its own mutex)
// or Close (which locks shards in ascending index order).
func (p *Photon) pollFaults(s0 *engineShard) int {
	now := nowNanos()
	if now < p.nextFaultNS {
		return 0
	}
	p.nextFaultNS = now + p.faultPollNS
	n := 0
	if p.hbe != nil {
		n += p.pollHealth(s0)
	}
	if p.opTimeoutNS > 0 {
		n += p.sweepDeadlines(now)
	}
	return n
}

// pollHealth advances the per-peer state machine
// (healthy → suspect → down, with recovering while the transport
// redials) from the backend's failure detector. Down is terminal:
// once latched, the engine never resurrects the peer even if the
// detector later reports it healthy.
func (p *Photon) pollHealth(s0 *engineShard) int {
	n := 0
	for _, ps := range p.peers {
		if ps.rank == p.rank {
			continue
		}
		cur := PeerHealth(ps.health.Load())
		if cur == PeerDown {
			continue
		}
		got := p.hbe.PeerHealth(ps.rank)
		if got == cur {
			continue
		}
		ps.health.Store(int32(got))
		ps.lastTransitionNS.Store(time.Now().UnixNano())
		if cur == PeerHealthy && got != PeerHealthy {
			p.suspectTransitions.Add(1)
		}
		// Black-box capture at degradation onset and at the terminal
		// down latch — before failPeer sweeps the in-flight state away,
		// so the record shows the engine as it was at detection time.
		if (cur == PeerHealthy && got != PeerHealthy) || got == PeerDown {
			p.captureFlight(ps, cur, got)
		}
		switch got {
		case PeerSuspect:
			p.traceEv(trace.KindProtocol, uint64(ps.rank), "peer.suspect")
		case PeerRecovering:
			p.traceEv(trace.KindProtocol, uint64(ps.rank), "peer.recovering")
		case PeerHealthy:
			p.traceEv(trace.KindProtocol, uint64(ps.rank), "peer.healthy")
		case PeerDown:
			p.traceEv(trace.KindProtocol, uint64(ps.rank), "peer.down")
			p.peersDown.Add(1)
			// Quiesce the peer's owning shard before dropping its
			// deferred queues: retryDeferred snapshots and pops
			// pendingWire around a post, and that window must not race
			// the nil-out in failDeferred.
			if ps.shard != s0 {
				ps.shard.mu.Lock()
				n += p.failPeer(ps)
				ps.shard.mu.Unlock()
			} else {
				n += p.failPeer(ps)
			}
		}
		n++
	}
	return n
}

// sweepDeadlines converts ops past their deadline into ErrTimeout
// error completions: pending backend tokens first, then open
// rendezvous sends (which have no backend token of their own — they
// wait on the target's FIN).
func (p *Photon) sweepDeadlines(now int64) int {
	p.faultScratch = p.tok.sweepExpired(now, p.faultScratch[:0])
	n := len(p.faultScratch)
	for i := range p.faultScratch {
		p.completeFailed(&p.faultScratch[i], errOpTimeout)
		p.opsTimedOut.Add(1)
		p.faultScratch[i] = pendingOp{}
	}
	n += p.sweepRdzvSends(now, -1, errOpTimeout)
	return n
}

// sweepRdzvSends fails open rendezvous sends selected by deadline
// (now > 0) and/or peer (rank >= 0; -1 = all). The sender-side buffer
// registration is released: the target can no longer be allowed to
// read it once the send has been reported failed.
func (p *Photon) sweepRdzvSends(now int64, rank int, err error) int {
	type failed struct {
		id uint64
		rs rdzvSend
	}
	var fails []failed
	p.rdzvMu.Lock()
	for id, rs := range p.rdzvSends {
		if rank >= 0 && rs.rank != rank {
			continue
		}
		if rank < 0 && (rs.deadlineNS == 0 || rs.deadlineNS > now) {
			continue
		}
		fails = append(fails, failed{id, rs})
		delete(p.rdzvSends, id)
	}
	p.rdzvMu.Unlock()
	for _, f := range fails {
		_ = p.be.Deregister(f.rs.rb)
		if rank < 0 {
			p.opsTimedOut.Add(1)
		}
		p.traceEv(trace.KindComplete, f.rs.rid, "rdzv.fail")
		p.pushLocal(Completion{Rank: f.rs.rank, RID: f.rs.rid, Err: err, traced: f.rs.postNS != 0})
	}
	return len(fails)
}

// failPeer fails everything in flight toward a peer that has been
// declared down: pending backend tokens, the parked deferred queues,
// and open rendezvous sends.
func (p *Photon) failPeer(ps *peerState) int {
	err := fmt.Errorf("photon: rank %d: %w", ps.rank, ErrPeerDown)
	p.faultScratch = p.tok.sweepRank(ps.rank, p.faultScratch[:0])
	n := len(p.faultScratch)
	for i := range p.faultScratch {
		p.completeFailed(&p.faultScratch[i], err)
		p.faultScratch[i] = pendingOp{}
	}
	n += p.failDeferred(ps, err)
	n += p.sweepRdzvSends(0, ps.rank, err)
	return n
}

// failAllInflight is the Close drain: every pending token, every
// peer's deferred queues, and every open rendezvous send completes
// with ErrClosed. Caller holds every shard mutex with p.closed already
// set, so no new work can be posted concurrently and the engine is
// quiescent.
func (p *Photon) failAllInflight() {
	err := fmt.Errorf("photon: instance closed: %w", ErrClosed)
	p.faultScratch = p.tok.sweepAll(p.faultScratch[:0])
	for i := range p.faultScratch {
		p.completeFailed(&p.faultScratch[i], err)
		p.faultScratch[i] = pendingOp{}
	}
	for _, ps := range p.peers {
		p.failDeferred(ps, err)
	}
	p.sweepRdzvSends(0, -1, err)
}

// failDeferred drops a peer's parked queues, failing the signaled
// wire ops among them. Parked writes never reached the backend, so
// their pooled scratch is recycled here (unlike token-swept ops).
func (p *Photon) failDeferred(ps *peerState, err error) int {
	ps.mu.Lock()
	wire := ps.pendingWire
	ps.pendingWire = nil
	entries := len(ps.pendingEntry)
	ps.pendingEntry = nil
	rts := len(ps.pendingRTS)
	ps.pendingRTS = nil
	ps.mu.Unlock()
	dropped := int64(len(wire) + entries + rts)
	if dropped == 0 {
		return 0
	}
	ps.deferred.Add(-dropped)
	ps.shard.parked.Add(-dropped)
	for i := range wire {
		p.failWire(&wire[i], err)
	}
	return int(dropped)
}

// failDeferredWire drops only the parked wire queue (retryDeferred's
// hard-error path; entry/RTS queues stay parked — they are retried via
// reserve, which fails soft).
func (p *Photon) failDeferredWire(ps *peerState, err error) int {
	ps.mu.Lock()
	wire := ps.pendingWire
	ps.pendingWire = nil
	ps.mu.Unlock()
	if len(wire) == 0 {
		return 0
	}
	ps.deferred.Add(-int64(len(wire)))
	ps.shard.parked.Add(-int64(len(wire)))
	for i := range wire {
		p.failWire(&wire[i], err)
	}
	return len(wire)
}

// failWire fails one wire op that never reached the transport.
func (p *Photon) failWire(w *wireOp, err error) {
	if w.signaled {
		if op, ok := p.takeToken(w.token); ok {
			p.completeFailed(&op, err)
		}
	}
	if w.pooled {
		p.pool.Put(w.local)
	}
	w.local = nil
}

// completeFailed surfaces one failed op as an error completion. Result
// buffers and slab blocks are intentionally leaked (see the ownership
// note at the top of this file).
func (p *Photon) completeFailed(op *pendingOp, err error) {
	if op.postNS != 0 {
		p.traceEv(trace.KindComplete, op.rid, "fault.fail")
	}
	if op.kind == opRdzvGet {
		// Target-side staging read: the waiter is whoever waits for
		// the message delivery, keyed by the initiator's remote RID.
		p.pushRemote(Completion{Rank: op.rank, RID: op.remoteRID, Err: err, traced: op.traced})
		return
	}
	p.pushLocal(Completion{Rank: op.rank, RID: op.rid, Err: err, traced: op.postNS != 0})
}

// peerDown reports whether the engine has latched a peer down; op
// fast paths fail fast on it (one atomic load).
//
//photon:hotpath
func (p *Photon) peerDown(rank int) bool {
	return PeerHealth(p.peers[rank].health.Load()) == PeerDown
}

// PeerHealthState returns the engine's view of a peer's liveness. It
// is PeerHealthy for backends without a failure detector (or when
// Config.HeartbeatInterval is zero) unless the peer was latched down.
func (p *Photon) PeerHealthState(rank int) PeerHealth {
	if rank < 0 || rank >= p.size {
		return PeerDown
	}
	return PeerHealth(p.peers[rank].health.Load())
}
