package core

import (
	"fmt"
	"time"

	"photon/internal/ledger"
	"photon/internal/metrics"
	"photon/internal/trace"
)

// Ledger classes. Every peer pair maintains one ledger per class in
// each direction.
const (
	classPWC   = iota // completion identifiers (direct PWC/GWC notify)
	classEager        // packed small messages (RID + payload inline)
	classSys          // middleware control: RTS / FIN for rendezvous
	numClasses
)

// Entry type tags carried in the first payload byte of a ledger entry.
const (
	tCompletion = 1 // pwc: [type][rid8]
	tPacked     = 2 // eager: [type][rid8][data...]
	tRTS        = 3 // sys: [type][lrid8][rrid8][size8][addr8][rkey4]
	tFIN        = 4 // sys: [type][lrid8]
	tPackedPut  = 5 // eager: [type][rid8][raddr8][rkey4][data...] — a
	// small direct put folded into one ledger write; the target's
	// middleware places the payload (Photon's small-PWC optimization)

	// Traced variants: the same layouts with a trace context —
	// [origin rank u32][post timestamp i64] — appended to the payload.
	// Posted only for sampled ops (TraceSampleShift gate), so the
	// target's delivery event carries the initiator's identity and post
	// time and the merged Chrome exporter can stitch both rings into
	// one causal lane. The context rides in existing entry headroom
	// (pwc entries use 21 of 24 payload bytes, sys 49 of 56); eager
	// entries whose payload would no longer fit fall back to the
	// untraced tag.
	tCompletionT = 6
	tPackedT     = 7
	tPackedPutT  = 8
	tRTST        = 9
)

// traceCtxSize is the wire size of the sampled trace context appended
// to traced ledger entries.
const traceCtxSize = 4 + 8

// Fixed entry sizes for the non-eager classes.
const (
	pwcEntrySize = 32 // 8 header + 1 type + 8 rid (+ pad)
	sysEntrySize = 64 // 8 header + rtsEntryLen worst case (+ pad)
)

// Sys-entry payload lengths shared by the rendezvous encoder and
// parseSys's short-entry checks.
const (
	sysMinLen   = 1 + 8                 // [type][lrid8] — a FIN is exactly this
	rtsEntryLen = 1 + 8 + 8 + 8 + 8 + 4 // [type][lrid8][rrid8][size8][addr8][rkey4]
)

// Config tunes the Photon engine. The zero value selects defaults.
type Config struct {
	// LedgerSlots is the slot count of the PWC and eager ledgers per
	// peer (default 64).
	LedgerSlots int
	// SysSlots is the slot count of the sys ledger per peer (default
	// LedgerSlots).
	SysSlots int
	// EagerEntrySize is the full eager entry size in bytes, including
	// the 8-byte ledger header and 9-byte packed header (default
	// 1024). Packed payload capacity is EagerEntrySize-17.
	EagerEntrySize int
	// EagerThreshold caps the payload size Send packs inline; larger
	// sends use the rendezvous protocol (default: the packed
	// capacity). Lowering it below capacity is an ablation knob.
	EagerThreshold int
	// RdzvSlabSize is the registered staging arena for inbound
	// rendezvous transfers (default 4 MiB).
	RdzvSlabSize int
	// CreditBatch delays credit-return writes until this many entries
	// of a ledger have been consumed (default LedgerSlots/4, min 1).
	// 1 returns every credit immediately (ablation: explicit
	// per-entry credit traffic).
	CreditBatch int
	// ForceRendezvous disables the packed eager path in Send
	// (ablation knob for the E6 crossover study).
	ForceRendezvous bool
	// DisablePackedPut forces PutWithCompletion to always issue the
	// two-write direct protocol (data write + ledger entry) even for
	// small payloads (ablation knob: the packed small-put fold is one
	// of Photon's headline optimizations).
	DisablePackedPut bool
	// HeartbeatInterval arms the transport's failure detector (on
	// backends implementing HealthBackend): links idle longer than the
	// interval carry a heartbeat frame, suppressed while data flows.
	// Zero (the default) disables liveness tracking entirely — no
	// heartbeat traffic, no peer state machine, no per-frame clock
	// reads.
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a peer may stay silent before the
	// detector reports it suspect (default 4×HeartbeatInterval). It
	// must be at least HeartbeatInterval, or every gap between
	// heartbeats would trip the detector.
	SuspectAfter time.Duration
	// OpTimeout bounds every signaled operation: ops still in flight
	// after it are swept by Progress into error completions carrying
	// ErrTimeout, so waiters never wedge on a dead rank. Zero (the
	// default) disables the sweep. When set, blocking waits without an
	// explicit timeout are implicitly bounded by 2×OpTimeout.
	OpTimeout time.Duration
	// CompQueueDepth is the fixed capacity of each harvested-completion
	// ring (local and remote), rounded up to a power of two (default
	// 1024). Overflow spills to an unbounded list — nothing is dropped
	// — but spilling re-introduces allocation, so size this above the
	// workload's harvest lag (Stats.RingOverflows counts spills).
	CompQueueDepth int
	// EngineShards partitions peers across independent progress-engine
	// shards (rank % EngineShards), each with its own completion rings,
	// sweep state, and notify latch, so progress scales with cores
	// under heavy multi-peer traffic (default 1: the classic single
	// engine). Drive shards together with Progress/ProgressAll, singly
	// with ProgressShard, or pin one background goroutine per shard
	// with StartProgress. Per-peer ordering is unaffected; completions
	// for peers on different shards may interleave arbitrarily.
	EngineShards int

	// Trace, when non-nil, receives this instance's op-lifecycle events
	// instead of the process-wide trace.Global ring. The ring must also
	// be Enabled: a disabled ring keeps every record site at one atomic
	// load and zero allocations.
	Trace *trace.Ring
	// TraceSampleShift samples 1 in 2^shift posted ops into the trace
	// ring and latency histograms (0 = every op). Sampling is decided
	// at post time, so a sampled op contributes its whole initiator
	// lifecycle; target-side ledger/reap events are not sampled (the
	// target cannot know what the initiator chose).
	TraceSampleShift int
	// Metrics enables the per-instance latency/gauge registry, exposed
	// by Photon.Metrics. Off by default: recording costs two atomic
	// adds per op phase (still allocation-free).
	Metrics bool
	// MetricsTo, when non-nil, aggregates this instance's observations
	// into a caller-owned shared registry (job-wide dashboards across
	// in-process ranks); it implies Metrics.
	MetricsTo *metrics.Registry
	// FlightRecords arms the fault flight recorder: every
	// healthy→suspect and →down peer transition snapshots the last
	// FlightWindow trace events, the metrics registry, and the per-peer
	// health counters into a bounded in-memory black box holding up to
	// FlightRecords records (Photon.FlightRecorder / FlightDump). Zero
	// (the default) disables recording. Snapshots run on the fault
	// plane, never on the op hot path.
	FlightRecords int
	// FlightWindow is how many of the most recent trace-ring events
	// each flight record retains (default 256).
	FlightWindow int
}

func (c *Config) setDefaults() error {
	if c.LedgerSlots == 0 {
		c.LedgerSlots = 64
	}
	if c.SysSlots == 0 {
		c.SysSlots = c.LedgerSlots
	}
	if c.EagerEntrySize == 0 {
		c.EagerEntrySize = 1024
	}
	if c.LedgerSlots < 1 || c.SysSlots < 1 {
		return fmt.Errorf("photon: ledger slots must be positive")
	}
	if c.EagerEntrySize < ledger.HeaderSize+packedHdrSize+1 {
		return fmt.Errorf("photon: eager entry size %d too small", c.EagerEntrySize)
	}
	maxData := c.EagerEntrySize - ledger.HeaderSize - packedHdrSize
	if c.EagerThreshold == 0 || c.EagerThreshold > maxData {
		c.EagerThreshold = maxData
	}
	if c.RdzvSlabSize == 0 {
		c.RdzvSlabSize = 4 << 20
	}
	if c.CreditBatch == 0 {
		c.CreditBatch = c.LedgerSlots / 4
		if c.CreditBatch < 1 {
			c.CreditBatch = 1
		}
	}
	if c.CompQueueDepth == 0 {
		c.CompQueueDepth = 1024
	}
	if c.CompQueueDepth < 1 {
		return fmt.Errorf("photon: completion queue depth must be positive")
	}
	if c.EngineShards == 0 {
		c.EngineShards = 1
	}
	if c.EngineShards < 1 || c.EngineShards > 256 {
		return fmt.Errorf("photon: engine shard count %d out of range [1, 256]", c.EngineShards)
	}
	if c.TraceSampleShift < 0 || c.TraceSampleShift > 62 {
		return fmt.Errorf("photon: trace sample shift %d out of range [0, 62]", c.TraceSampleShift)
	}
	if c.HeartbeatInterval < 0 || c.SuspectAfter < 0 || c.OpTimeout < 0 {
		return fmt.Errorf("photon: fault-tolerance intervals must be non-negative")
	}
	if c.HeartbeatInterval > 0 && c.SuspectAfter == 0 {
		c.SuspectAfter = 4 * c.HeartbeatInterval
	}
	if c.HeartbeatInterval > 0 && c.SuspectAfter < c.HeartbeatInterval {
		return fmt.Errorf("photon: SuspectAfter %v shorter than HeartbeatInterval %v", c.SuspectAfter, c.HeartbeatInterval)
	}
	if c.FlightRecords < 0 || c.FlightWindow < 0 {
		return fmt.Errorf("photon: flight-recorder bounds must be non-negative")
	}
	if c.FlightRecords > 0 && c.FlightWindow == 0 {
		c.FlightWindow = 256
	}
	return nil
}

// packedHdrSize is the in-payload header of a packed eager entry:
// type byte plus the remote RID.
const packedHdrSize = 1 + 8

// packedPutHdrSize is the in-payload header of a packed put entry:
// type, remote RID, destination address, destination rkey.
const packedPutHdrSize = 1 + 8 + 8 + 4

// entrySize returns the wire entry size for a ledger class.
func (c *Config) entrySize(class int) int {
	switch class {
	case classPWC:
		return pwcEntrySize
	case classEager:
		return c.EagerEntrySize
	case classSys:
		return sysEntrySize
	}
	panic("photon: bad ledger class")
}

// slots returns the slot count for a ledger class.
func (c *Config) slots(class int) int {
	if class == classSys {
		return c.SysSlots
	}
	return c.LedgerSlots
}

// classBytes returns the backing-store size of one ledger of the class.
func (c *Config) classBytes(class int) int {
	return c.entrySize(class) * c.slots(class)
}

// perPeerBytes is the arena footprint of all receive ledgers for one
// peer.
func (c *Config) perPeerBytes() int {
	total := 0
	for cl := 0; cl < numClasses; cl++ {
		total += c.classBytes(cl)
	}
	return total
}

// classOffset returns the offset of a class's ledger within the
// per-peer region.
func (c *Config) classOffset(class int) int {
	off := 0
	for cl := 0; cl < class; cl++ {
		off += c.classBytes(cl)
	}
	return off
}
