package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"photon/internal/ledger"
	"photon/internal/mem"
	"photon/internal/metrics"
	"photon/internal/trace"
)

// PutWithCompletion performs Photon's signature operation: a one-sided
// write of local into rank's memory at dst+off, with a local completion
// (localRID) surfaced here when the transfer is done and, when
// remoteRID is non-zero, a remote completion (remoteRID) surfaced at
// the target once the data is visible there. Either RID may be zero to
// suppress that side's event.
//
// The caller must not modify local until the local completion arrives
// (or, with localRID == 0, until a later completion on the same rank).
// Returns ErrWouldBlock when the target's completion ledger is out of
// credits; drive Progress and retry, or use PutBlocking.
//
//photon:hotpath
func (p *Photon) PutWithCompletion(rank int, local []byte, dst mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if !dst.Contains(off, len(local)) {
		return fmt.Errorf("%w: put of %d bytes at offset %d into buffer of %d", ErrTooLarge, len(local), off, dst.Len) //photon:allow hotpathalloc -- cold error path; the op was rejected before any work
	}
	if p.peerDown(rank) {
		return ErrPeerDown
	}
	ps := p.peers[rank]
	ts := p.obsStamp()

	// A zero-byte put is a pure completion notification: one entry in
	// the target's PWC ledger, no data movement at all.
	if len(local) == 0 {
		if remoteRID == 0 {
			if localRID != 0 {
				p.pushLocal(Completion{Rank: rank, RID: localRID, traced: ts != 0})
			}
			return nil
		}
		res, err := p.reserve(ps, classPWC)
		if err != nil {
			return err
		}
		plen := 9
		if ts != 0 {
			plen += traceCtxSize
		}
		ent := p.pool.Get(ledger.HeaderSize + plen)
		ent[ledger.HeaderSize] = tCompletion
		binary.LittleEndian.PutUint64(ent[ledger.HeaderSize+1:], remoteRID)
		if ts != 0 {
			ent[ledger.HeaderSize] = tCompletionT
			p.putTraceCtx(ent, ledger.HeaderSize+9, ts)
		}
		if err := ledger.EncodeHeader(ent, res.Seq, plen); err != nil {
			p.pool.Put(ent)
			return err
		}
		// A sampled op is posted signaled even when the caller suppressed
		// the local completion: the backend completion closes the latency
		// measurement and is dropped before delivery (rid 0). This is the
		// plane's only observer effect; TraceSampleShift bounds it.
		signaled := localRID != 0 || ts != 0
		var tok uint64
		if signaled {
			tok = p.newToken(pendingOp{
				kind: opPutLocal, rank: rank, rid: localRID,
				postNS: ts, mkind: metrics.OpPut, remoteVis: true,
			})
		}
		if ts != 0 {
			p.tracePost(rank, remoteRID, localRID, "put.notify")
		}
		p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, signaled, true)
		p.stats.putsDirect.Add(1)
		return nil
	}

	// Small puts that carry a remote completion fold payload,
	// destination, and completion identifier into a single ledger
	// write; the target's middleware places the payload while probing
	// (Photon's packed small-put optimization) — one wire operation
	// instead of two. Puts without a remote RID stay strictly
	// one-sided (placement must not depend on target progress), so
	// they always use the direct write.
	if remoteRID != 0 && !p.cfg.DisablePackedPut &&
		len(local) <= p.cfg.EagerEntrySize-ledger.HeaderSize-packedPutHdrSize {
		return p.putPacked(ps, rank, local, dst.Addr+off, dst.RKey, localRID, remoteRID, ts)
	}

	if remoteRID == 0 {
		// Lone data write, signaled to surface the local completion.
		tok := p.newToken(pendingOp{
			kind: opPutLocal, rank: rank, rid: localRID,
			postNS: ts, mkind: metrics.OpPut,
		})
		if ts != 0 {
			p.tracePost(rank, localRID, localRID, "put.direct")
		}
		p.postOrPark(ps, rank, local, dst.Addr+off, dst.RKey, tok, true, false)
		p.stats.putsDirect.Add(1)
		return nil
	}

	res, err := p.reserve(ps, classPWC)
	if err != nil {
		return err
	}
	plen := 9
	if ts != 0 {
		plen += traceCtxSize
	}
	ent := p.pool.Get(ledger.HeaderSize + plen)
	ent[ledger.HeaderSize] = tCompletion
	binary.LittleEndian.PutUint64(ent[ledger.HeaderSize+1:], remoteRID)
	if ts != 0 {
		ent[ledger.HeaderSize] = tCompletionT
		p.putTraceCtx(ent, ledger.HeaderSize+9, ts)
	}
	if err := ledger.EncodeHeader(ent, res.Seq, plen); err != nil {
		p.pool.Put(ent)
		return err
	}
	tok := p.newToken(pendingOp{
		kind: opPutLocal, rank: rank, rid: localRID,
		postNS: ts, mkind: metrics.OpPut, remoteVis: true,
	})
	if ts != 0 {
		p.tracePost(rank, remoteRID, localRID, "put.direct")
	}
	// Data write first, then the notification entry: RC ordering makes
	// the entry's arrival imply the data is visible. Both writes leave
	// in one doorbell batch when the backend supports it.
	p.postPair(ps, rank,
		wireOp{local: local, raddr: dst.Addr + off, rkey: dst.RKey},
		wireOp{local: ent, raddr: res.RemoteAddr, rkey: res.RKey, token: tok, signaled: true, pooled: true})
	p.stats.putsDirect.Add(1)
	return nil
}

// GetWithCompletion performs a one-sided read of len(local) bytes from
// rank's memory at src+off into local. localRID is surfaced here when
// the data has landed; when remoteRID is non-zero the target is
// additionally notified (its completion carries remoteRID) after the
// read completes — Photon's "get with remote completion".
//
//photon:hotpath
func (p *Photon) GetWithCompletion(rank int, local []byte, src mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if len(local) == 0 {
		return fmt.Errorf("%w: zero-length get", ErrTooLarge) //photon:allow hotpathalloc -- cold error path; the op was rejected before any work
	}
	if !src.Contains(off, len(local)) {
		return fmt.Errorf("%w: get of %d bytes at offset %d from buffer of %d", ErrTooLarge, len(local), off, src.Len) //photon:allow hotpathalloc -- cold error path; the op was rejected before any work
	}
	if p.peerDown(rank) {
		return ErrPeerDown
	}
	ts := p.obsStamp()
	tok := p.newToken(pendingOp{
		kind: opGetLocal, rank: rank, rid: localRID, remoteRID: remoteRID,
		postNS: ts, mkind: metrics.OpGet,
	})
	if ts != 0 {
		p.tracePost(rank, localRID, localRID, "get")
	}
	if err := p.be.PostRead(rank, local, src.Addr+off, src.RKey, tok); err != nil {
		p.takeToken(tok)
		return err
	}
	p.stats.gets.Add(1)
	return nil
}

// Send delivers data to rank as a message: the target harvests a remote
// completion carrying remoteRID and the payload. Payloads up to
// EagerThreshold are packed into a single ledger write; larger ones use
// the rendezvous protocol (sender-side registration, target-side RDMA
// read, FIN). localRID, when non-zero, is surfaced here once data is
// safely out of the caller's buffer (packed: immediately on transport
// completion; rendezvous: on FIN).
//
//photon:hotpath
func (p *Photon) Send(rank int, data []byte, localRID, remoteRID uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if p.peerDown(rank) {
		return ErrPeerDown
	}
	ps := p.peers[rank]
	ts := p.obsStamp()
	if len(data) <= p.cfg.EagerThreshold && !p.cfg.ForceRendezvous {
		return p.sendPacked(ps, rank, data, localRID, remoteRID, ts)
	}
	return p.sendRendezvous(ps, rank, data, localRID, remoteRID, ts)
}

// putPacked folds a small put into one eager-ledger write:
// [tPackedPut][remoteRID][raddr][rkey][data]. The target validates and
// places the payload before surfacing the remote completion, so the
// "remote RID implies data visible" invariant holds unchanged.
//
//photon:hotpath
func (p *Photon) putPacked(ps *peerState, rank int, local []byte, raddr uint64, rkey uint32, localRID, remoteRID uint64, ts int64) error {
	res, err := p.reserve(ps, classEager)
	if err != nil {
		return err
	}
	// Traced entries append the wire trace context when the eager entry
	// still has room for it; max-payload puts fall back to untraced.
	plen := packedPutHdrSize + len(local)
	traced := ts != 0 && ledger.HeaderSize+plen+traceCtxSize <= p.cfg.EagerEntrySize
	if traced {
		plen += traceCtxSize
	}
	ent := p.pool.Get(ledger.HeaderSize + plen)
	b := ent[ledger.HeaderSize:]
	b[0] = tPackedPut
	binary.LittleEndian.PutUint64(b[1:], remoteRID)
	binary.LittleEndian.PutUint64(b[9:], raddr)
	binary.LittleEndian.PutUint32(b[17:], rkey)
	copy(b[packedPutHdrSize:], local)
	if traced {
		b[0] = tPackedPutT
		p.putTraceCtx(b, packedPutHdrSize+len(local), ts)
	}
	if err := ledger.EncodeHeader(ent, res.Seq, plen); err != nil {
		p.pool.Put(ent)
		return err
	}
	// Sampled ops post signaled even with localRID 0 (see the
	// zero-length put path) so the latency measurement closes.
	signaled := localRID != 0 || ts != 0
	var tok uint64
	if signaled {
		tok = p.newToken(pendingOp{
			kind: opPutLocal, rank: rank, rid: localRID,
			postNS: ts, mkind: metrics.OpPut, remoteVis: true,
		})
	}
	if ts != 0 {
		p.tracePost(rank, remoteRID, localRID, "put.packed")
	}
	p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, signaled, true)
	p.stats.putsPacked.Add(1)
	return nil
}

// sendPacked copies data into an eager ledger entry: one RDMA write.
//
//photon:hotpath
func (p *Photon) sendPacked(ps *peerState, rank int, data []byte, localRID, remoteRID uint64, ts int64) error {
	res, err := p.reserve(ps, classEager)
	if err != nil {
		return err
	}
	// Only the used prefix of the slot travels on the wire; the
	// receiver reads the payload length from the entry header.
	plen := packedHdrSize + len(data)
	traced := ts != 0 && ledger.HeaderSize+plen+traceCtxSize <= p.cfg.EagerEntrySize
	if traced {
		plen += traceCtxSize
	}
	ent := p.pool.Get(ledger.HeaderSize + plen)
	b := ent[ledger.HeaderSize:]
	b[0] = tPacked
	binary.LittleEndian.PutUint64(b[1:], remoteRID)
	copy(b[packedHdrSize:], data)
	if traced {
		b[0] = tPackedT
		p.putTraceCtx(b, packedHdrSize+len(data), ts)
	}
	if err := ledger.EncodeHeader(ent, res.Seq, plen); err != nil {
		p.pool.Put(ent)
		return err
	}
	// Sampled ops post signaled even with localRID 0 (see the
	// zero-length put path) so the latency measurement closes.
	signaled := localRID != 0 || ts != 0
	var tok uint64
	if signaled {
		tok = p.newToken(pendingOp{
			kind: opPutLocal, rank: rank, rid: localRID,
			postNS: ts, mkind: metrics.OpSend, remoteVis: true,
		})
	}
	if ts != 0 {
		p.tracePost(rank, remoteRID, localRID, "send.eager")
	}
	p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, signaled, true)
	p.stats.putsPacked.Add(1)
	return nil
}

// sendRendezvous registers data and writes an RTS control entry; the
// target pulls the payload with an RDMA read and FINs back.
func (p *Photon) sendRendezvous(ps *peerState, rank int, data []byte, localRID, remoteRID uint64, ts int64) error {
	if len(data) == 0 {
		// Rendezvous of nothing degenerates to a packed send.
		return p.sendPacked(ps, rank, data, localRID, remoteRID, ts)
	}
	res, err := p.reserve(ps, classSys)
	if err != nil {
		return err
	}
	rb, _, err := p.be.Register(data)
	if err != nil {
		return err
	}
	var deadline int64
	if p.opTimeoutNS != 0 {
		deadline = nowNanos() + p.opTimeoutNS
	}
	p.rdzvMu.Lock()
	id := p.nextRdzvID
	p.nextRdzvID++
	p.rdzvSends[id] = rdzvSend{rank: rank, rid: localRID, rb: rb, postNS: ts, deadlineNS: deadline}
	p.rdzvMu.Unlock()
	if ts != 0 {
		p.tracePost(rank, remoteRID, localRID, "send.rdzv")
		p.traceEv(trace.KindProtocol, id, "rts.tx")
	}

	const rtsLen = rtsEntryLen
	plen := rtsLen
	if ts != 0 {
		plen += traceCtxSize
	}
	ent := p.pool.Get(ledger.HeaderSize + plen)
	b := ent[ledger.HeaderSize:]
	b[0] = tRTS
	binary.LittleEndian.PutUint64(b[1:], id)
	binary.LittleEndian.PutUint64(b[9:], remoteRID)
	binary.LittleEndian.PutUint64(b[17:], uint64(len(data)))
	binary.LittleEndian.PutUint64(b[25:], rb.Addr)
	binary.LittleEndian.PutUint32(b[33:], rb.RKey)
	if ts != 0 {
		b[0] = tRTST
		p.putTraceCtx(b, rtsLen, ts)
	}
	if err := ledger.EncodeHeader(ent, res.Seq, plen); err != nil {
		p.pool.Put(ent)
		return err
	}
	p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, 0, false, true)
	p.stats.rdzvSends.Add(1)
	return nil
}

// Atomic opcodes for the shared post path. Passing the opcode and its
// operands directly (rather than a per-call closure) keeps FetchAdd and
// CompSwap allocation-free.
const (
	atomicFetchAdd = iota
	atomicCompSwap
)

// FetchAdd atomically adds `add` to the 8-byte word at dst+off on rank.
// The prior value is surfaced in the local completion's Value field
// under localRID.
//
//photon:hotpath
func (p *Photon) FetchAdd(rank int, dst mem.RemoteBuffer, off uint64, add uint64, localRID uint64) error {
	return p.atomic(rank, dst, off, localRID, atomicFetchAdd, add, 0)
}

// CompSwap atomically compare-and-swaps the 8-byte word at dst+off on
// rank (swap stored iff current == compare). The prior value is
// surfaced in the local completion's Value field under localRID.
//
//photon:hotpath
func (p *Photon) CompSwap(rank int, dst mem.RemoteBuffer, off uint64, compare, swap uint64, localRID uint64) error {
	return p.atomic(rank, dst, off, localRID, atomicCompSwap, compare, swap)
}

//photon:hotpath
func (p *Photon) atomic(rank int, dst mem.RemoteBuffer, off uint64, localRID uint64, op int, arg0, arg1 uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if !dst.Contains(off, 8) {
		return fmt.Errorf("%w: atomic at offset %d of buffer len %d", ErrTooLarge, off, dst.Len) //photon:allow hotpathalloc -- cold error path; the op was rejected before any work
	}
	if p.peerDown(rank) {
		return ErrPeerDown
	}
	// The result word is pool scratch; the backend owns it until the
	// completion is reaped, where handleBackend recycles it.
	result := p.pool.Get(8)
	ts := p.obsStamp()
	// An atomic's signaled completion implies the remote word was
	// updated, so one timestamp closes both latency stages.
	tok := p.newToken(pendingOp{
		kind: opAtomic, rank: rank, rid: localRID, result: result,
		postNS: ts, mkind: metrics.OpAtomic, remoteVis: true,
	})
	if ts != 0 {
		p.tracePost(rank, localRID, localRID, "atomic")
	}
	var err error
	if op == atomicFetchAdd {
		err = p.be.PostFetchAdd(rank, result, dst.Addr+off, dst.RKey, arg0, tok)
	} else {
		err = p.be.PostCompSwap(rank, result, dst.Addr+off, dst.RKey, arg0, arg1, tok)
	}
	if err != nil {
		p.takeToken(tok)
		p.pool.Put(result)
		return err
	}
	p.stats.atomics.Add(1)
	return nil
}

// reserve claims a ledger slot toward a peer, refreshing credits from
// the mailbox once before giving up with ErrWouldBlock.
//
//photon:hotpath
func (p *Photon) reserve(ps *peerState, class int) (ledger.Reservation, error) {
	res, err := ps.send[class].Reserve()
	if err == nil {
		return res, nil
	}
	p.refreshCredits(ps, class)
	res, err = ps.send[class].Reserve()
	if err != nil {
		return ledger.Reservation{}, ErrWouldBlock
	}
	return res, nil
}

// postOrPark posts a one-sided write, parking it on the peer's deferred
// queue if the transport is busy. Parked writes are retried in FIFO
// order by Progress, preserving the data-before-notification order
// within each operation. Pooled entry scratch is recycled as soon as
// the write is accepted (the Backend contract guarantees PostWrite has
// snapshotted it by then). Hard transport errors — anything other
// than ErrWouldBlock, e.g. ErrPeerDown or ErrClosed — fail the op
// immediately instead of parking it: a write the transport has
// rejected outright would otherwise wedge the deferred FIFO forever.
//
//photon:hotpath
func (p *Photon) postOrPark(ps *peerState, rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled, pooled bool) {
	ps.mu.Lock() //photon:allow hotpathalloc -- per-peer lock held for one length check; uncontended on the single-threaded fast path
	parked := len(ps.pendingWire) > 0
	ps.mu.Unlock()
	if !parked {
		err := p.be.PostWrite(rank, local, raddr, rkey, token, signaled)
		if err == nil {
			if pooled {
				p.pool.Put(local)
			}
			return
		}
		if !errors.Is(err, ErrWouldBlock) {
			w := wireOp{local: local, token: token, signaled: signaled, pooled: pooled}
			p.failWire(&w, err)
			return
		}
	}
	p.parkWire(ps, wireOp{local: local, raddr: raddr, rkey: rkey, token: token, signaled: signaled, pooled: pooled})
}

// parkWire appends one write to the peer's deferred FIFO.
//
//photon:hotpath
func (p *Photon) parkWire(ps *peerState, w wireOp) {
	ps.mu.Lock()                               //photon:allow hotpathalloc -- per-peer lock guarding the deferred FIFO; only taken once the transport pushed back
	ps.pendingWire = append(ps.pendingWire, w) //photon:allow hotpathalloc -- backpressure slow path; growth is amortized and the FIFO shrinks to zero in steady state
	ps.mu.Unlock()
	ps.deferred.Add(1)
	ps.shard.parked.Add(1)
	p.stats.deferred.Add(1)
}

// postPair posts two ordered writes toward one rank — the direct-put
// data+notification pair — as a single doorbell batch when the backend
// supports batching, falling back to sequential posts otherwise. FIFO
// with already-parked work is preserved: if the peer has a deferred
// backlog both writes join its tail.
//
//photon:hotpath
func (p *Photon) postPair(ps *peerState, rank int, a, b wireOp) {
	ps.mu.Lock() //photon:allow hotpathalloc -- per-peer lock held for one length check; uncontended on the single-threaded fast path
	parked := len(ps.pendingWire) > 0
	ps.mu.Unlock()
	if parked {
		p.parkWire(ps, a)
		p.parkWire(ps, b)
		return
	}
	if p.bbe == nil {
		p.postOrPark(ps, rank, a.local, a.raddr, a.rkey, a.token, a.signaled, a.pooled)
		p.postOrPark(ps, rank, b.local, b.raddr, b.rkey, b.token, b.signaled, b.pooled)
		return
	}
	rp := p.reqPool.Get().(*[]WriteReq)
	reqs := append((*rp)[:0],
		WriteReq{Local: a.local, RemoteAddr: a.raddr, RKey: a.rkey, Token: a.token, Signaled: a.signaled},
		WriteReq{Local: b.local, RemoteAddr: b.raddr, RKey: b.rkey, Token: b.token, Signaled: b.signaled})
	n, err := p.bbe.PostWriteBatch(rank, reqs)
	reqs[0], reqs[1] = WriteReq{}, WriteReq{}
	*rp = reqs[:0]
	p.reqPool.Put(rp)
	if n > 0 {
		p.stats.batchPosts.Add(1)
		p.stats.batchedOps.Add(int64(n))
	}
	ops := [2]wireOp{a, b}
	for i := 0; i < n; i++ {
		if ops[i].pooled {
			p.pool.Put(ops[i].local)
		}
	}
	for i := n; i < 2; i++ {
		if err != nil && !errors.Is(err, ErrWouldBlock) {
			// Hard rejection (peer down, closed): fail instead of
			// parking a write that can never be retried successfully.
			p.failWire(&ops[i], err)
			continue
		}
		p.parkWire(ps, ops[i])
	}
}

// PutBlocking wraps PutWithCompletion, driving Progress until the
// operation can be posted.
func (p *Photon) PutBlocking(rank int, local []byte, dst mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	w := idleWaiter{p: p}
	defer w.stop()
	for {
		err := p.PutWithCompletion(rank, local, dst, off, localRID, remoteRID)
		if err == nil || !errors.Is(err, ErrWouldBlock) {
			return err
		}
		if p.Progress() == 0 {
			w.wait()
		} else {
			w.progressed()
		}
	}
}

// SendBlocking wraps Send, driving Progress until it can be posted.
func (p *Photon) SendBlocking(rank int, data []byte, localRID, remoteRID uint64) error {
	w := idleWaiter{p: p}
	defer w.stop()
	for {
		err := p.Send(rank, data, localRID, remoteRID)
		if err == nil || !errors.Is(err, ErrWouldBlock) {
			return err
		}
		if p.Progress() == 0 {
			w.wait()
		} else {
			w.progressed()
		}
	}
}
