package core

import (
	"encoding/binary"
	"fmt"
	gort "runtime"

	"photon/internal/ledger"
	"photon/internal/mem"
)

// PutWithCompletion performs Photon's signature operation: a one-sided
// write of local into rank's memory at dst+off, with a local completion
// (localRID) surfaced here when the transfer is done and, when
// remoteRID is non-zero, a remote completion (remoteRID) surfaced at
// the target once the data is visible there. Either RID may be zero to
// suppress that side's event.
//
// The caller must not modify local until the local completion arrives
// (or, with localRID == 0, until a later completion on the same rank).
// Returns ErrWouldBlock when the target's completion ledger is out of
// credits; drive Progress and retry, or use PutBlocking.
func (p *Photon) PutWithCompletion(rank int, local []byte, dst mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if !dst.Contains(off, len(local)) {
		return fmt.Errorf("%w: put of %d bytes at offset %d into buffer of %d", ErrTooLarge, len(local), off, dst.Len)
	}
	ps := p.peers[rank]

	// A zero-byte put is a pure completion notification: one entry in
	// the target's PWC ledger, no data movement at all.
	if len(local) == 0 {
		if remoteRID == 0 {
			if localRID != 0 {
				p.pushLocal(Completion{Rank: rank, RID: localRID})
			}
			return nil
		}
		res, err := p.reserve(ps, classPWC)
		if err != nil {
			return err
		}
		payload := make([]byte, 9)
		payload[0] = tCompletion
		binary.LittleEndian.PutUint64(payload[1:], remoteRID)
		ent := make([]byte, ledger.HeaderSize+len(payload))
		if err := ledger.Encode(ent, res.Seq, payload); err != nil {
			return err
		}
		signaled := localRID != 0
		var tok uint64
		if signaled {
			tok = p.newToken(pendingOp{kind: opPutLocal, rank: rank, rid: localRID})
		}
		p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, signaled)
		p.stats.putsDirect.Add(1)
		return nil
	}

	// Small puts that carry a remote completion fold payload,
	// destination, and completion identifier into a single ledger
	// write; the target's middleware places the payload while probing
	// (Photon's packed small-put optimization) — one wire operation
	// instead of two. Puts without a remote RID stay strictly
	// one-sided (placement must not depend on target progress), so
	// they always use the direct write.
	if remoteRID != 0 && !p.cfg.DisablePackedPut &&
		len(local) <= p.cfg.EagerEntrySize-ledger.HeaderSize-packedPutHdrSize {
		return p.putPacked(ps, rank, local, dst.Addr+off, dst.RKey, localRID, remoteRID)
	}

	var res ledger.Reservation
	if remoteRID != 0 {
		var err error
		res, err = p.reserve(ps, classPWC)
		if err != nil {
			return err
		}
	}

	// Data write: signaled only when it is the last op of the pair.
	dataSignaled := remoteRID == 0
	var dataTok uint64
	if dataSignaled {
		dataTok = p.newToken(pendingOp{kind: opPutLocal, rank: rank, rid: localRID})
	}
	p.postOrPark(ps, rank, local, dst.Addr+off, dst.RKey, dataTok, dataSignaled)

	if remoteRID != 0 {
		payload := make([]byte, 9)
		ent := make([]byte, ledger.HeaderSize+len(payload))
		payload[0] = tCompletion
		binary.LittleEndian.PutUint64(payload[1:], remoteRID)
		if err := ledger.Encode(ent, res.Seq, payload); err != nil {
			return err
		}
		tok := p.newToken(pendingOp{kind: opPutLocal, rank: rank, rid: localRID})
		p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, true)
	}
	p.stats.putsDirect.Add(1)
	return nil
}

// GetWithCompletion performs a one-sided read of len(local) bytes from
// rank's memory at src+off into local. localRID is surfaced here when
// the data has landed; when remoteRID is non-zero the target is
// additionally notified (its completion carries remoteRID) after the
// read completes — Photon's "get with remote completion".
func (p *Photon) GetWithCompletion(rank int, local []byte, src mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if len(local) == 0 {
		return fmt.Errorf("%w: zero-length get", ErrTooLarge)
	}
	if !src.Contains(off, len(local)) {
		return fmt.Errorf("%w: get of %d bytes at offset %d from buffer of %d", ErrTooLarge, len(local), off, src.Len)
	}
	tok := p.newToken(pendingOp{kind: opGetLocal, rank: rank, rid: localRID, remoteRID: remoteRID})
	if err := p.be.PostRead(rank, local, src.Addr+off, src.RKey, tok); err != nil {
		p.takeToken(tok)
		return err
	}
	p.stats.gets.Add(1)
	return nil
}

// Send delivers data to rank as a message: the target harvests a remote
// completion carrying remoteRID and the payload. Payloads up to
// EagerThreshold are packed into a single ledger write; larger ones use
// the rendezvous protocol (sender-side registration, target-side RDMA
// read, FIN). localRID, when non-zero, is surfaced here once data is
// safely out of the caller's buffer (packed: immediately on transport
// completion; rendezvous: on FIN).
func (p *Photon) Send(rank int, data []byte, localRID, remoteRID uint64) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	ps := p.peers[rank]
	if len(data) <= p.cfg.EagerThreshold && !p.cfg.ForceRendezvous {
		return p.sendPacked(ps, rank, data, localRID, remoteRID)
	}
	return p.sendRendezvous(ps, rank, data, localRID, remoteRID)
}

// putPacked folds a small put into one eager-ledger write:
// [tPackedPut][remoteRID][raddr][rkey][data]. The target validates and
// places the payload before surfacing the remote completion, so the
// "remote RID implies data visible" invariant holds unchanged.
func (p *Photon) putPacked(ps *peerState, rank int, local []byte, raddr uint64, rkey uint32, localRID, remoteRID uint64) error {
	res, err := p.reserve(ps, classEager)
	if err != nil {
		return err
	}
	ent := make([]byte, ledger.HeaderSize+packedPutHdrSize+len(local))
	payload := make([]byte, packedPutHdrSize+len(local))
	payload[0] = tPackedPut
	binary.LittleEndian.PutUint64(payload[1:], remoteRID)
	binary.LittleEndian.PutUint64(payload[9:], raddr)
	binary.LittleEndian.PutUint32(payload[17:], rkey)
	copy(payload[packedPutHdrSize:], local)
	if err := ledger.Encode(ent, res.Seq, payload); err != nil {
		return err
	}
	signaled := localRID != 0
	var tok uint64
	if signaled {
		tok = p.newToken(pendingOp{kind: opPutLocal, rank: rank, rid: localRID})
	}
	p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, signaled)
	p.stats.putsPacked.Add(1)
	return nil
}

// sendPacked copies data into an eager ledger entry: one RDMA write.
func (p *Photon) sendPacked(ps *peerState, rank int, data []byte, localRID, remoteRID uint64) error {
	res, err := p.reserve(ps, classEager)
	if err != nil {
		return err
	}
	// Only the used prefix of the slot travels on the wire; the
	// receiver reads the payload length from the entry header.
	ent := make([]byte, ledger.HeaderSize+packedHdrSize+len(data))
	payload := make([]byte, packedHdrSize+len(data))
	payload[0] = tPacked
	binary.LittleEndian.PutUint64(payload[1:], remoteRID)
	copy(payload[packedHdrSize:], data)
	if err := ledger.Encode(ent, res.Seq, payload); err != nil {
		return err
	}
	signaled := localRID != 0
	var tok uint64
	if signaled {
		tok = p.newToken(pendingOp{kind: opPutLocal, rank: rank, rid: localRID})
	}
	p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, tok, signaled)
	p.stats.putsPacked.Add(1)
	return nil
}

// sendRendezvous registers data and writes an RTS control entry; the
// target pulls the payload with an RDMA read and FINs back.
func (p *Photon) sendRendezvous(ps *peerState, rank int, data []byte, localRID, remoteRID uint64) error {
	if len(data) == 0 {
		// Rendezvous of nothing degenerates to a packed send.
		return p.sendPacked(ps, rank, data, localRID, remoteRID)
	}
	res, err := p.reserve(ps, classSys)
	if err != nil {
		return err
	}
	rb, _, err := p.be.Register(data)
	if err != nil {
		return err
	}
	p.rdzvMu.Lock()
	id := p.nextRdzvID
	p.nextRdzvID++
	p.rdzvSends[id] = rdzvSend{rid: localRID, rb: rb}
	p.rdzvMu.Unlock()

	payload := make([]byte, 1+8+8+8+8+4)
	ent := make([]byte, ledger.HeaderSize+len(payload))
	payload[0] = tRTS
	binary.LittleEndian.PutUint64(payload[1:], id)
	binary.LittleEndian.PutUint64(payload[9:], remoteRID)
	binary.LittleEndian.PutUint64(payload[17:], uint64(len(data)))
	binary.LittleEndian.PutUint64(payload[25:], rb.Addr)
	binary.LittleEndian.PutUint32(payload[33:], rb.RKey)
	if err := ledger.Encode(ent, res.Seq, payload); err != nil {
		return err
	}
	p.postOrPark(ps, rank, ent, res.RemoteAddr, res.RKey, 0, false)
	p.stats.rdzvSends.Add(1)
	return nil
}

// FetchAdd atomically adds `add` to the 8-byte word at dst+off on rank.
// The prior value is surfaced in the local completion's Value field
// under localRID.
func (p *Photon) FetchAdd(rank int, dst mem.RemoteBuffer, off uint64, add uint64, localRID uint64) error {
	return p.atomic(rank, dst, off, localRID, func(result []byte, raddr uint64, tok uint64) error {
		return p.be.PostFetchAdd(rank, result, raddr, dst.RKey, add, tok)
	})
}

// CompSwap atomically compare-and-swaps the 8-byte word at dst+off on
// rank (swap stored iff current == compare). The prior value is
// surfaced in the local completion's Value field under localRID.
func (p *Photon) CompSwap(rank int, dst mem.RemoteBuffer, off uint64, compare, swap uint64, localRID uint64) error {
	return p.atomic(rank, dst, off, localRID, func(result []byte, raddr uint64, tok uint64) error {
		return p.be.PostCompSwap(rank, result, raddr, dst.RKey, compare, swap, tok)
	})
}

func (p *Photon) atomic(rank int, dst mem.RemoteBuffer, off uint64, localRID uint64, post func(result []byte, raddr uint64, tok uint64) error) error {
	if err := p.checkRank(rank); err != nil {
		return err
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if !dst.Contains(off, 8) {
		return fmt.Errorf("%w: atomic at offset %d of buffer len %d", ErrTooLarge, off, dst.Len)
	}
	result := make([]byte, 8)
	tok := p.newToken(pendingOp{kind: opAtomic, rank: rank, rid: localRID, result: result})
	if err := post(result, dst.Addr+off, tok); err != nil {
		p.takeToken(tok)
		return err
	}
	p.stats.atomics.Add(1)
	return nil
}

// reserve claims a ledger slot toward a peer, refreshing credits from
// the mailbox once before giving up with ErrWouldBlock.
func (p *Photon) reserve(ps *peerState, class int) (ledger.Reservation, error) {
	res, err := ps.send[class].Reserve()
	if err == nil {
		return res, nil
	}
	p.refreshCredits(ps, class)
	res, err = ps.send[class].Reserve()
	if err != nil {
		return ledger.Reservation{}, ErrWouldBlock
	}
	return res, nil
}

// postOrPark posts a one-sided write, parking it on the peer's deferred
// queue if the transport is busy. Parked writes are retried in FIFO
// order by Progress, preserving the data-before-notification order
// within each operation.
func (p *Photon) postOrPark(ps *peerState, rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) {
	ps.mu.Lock()
	parked := len(ps.pendingWire) > 0
	ps.mu.Unlock()
	if !parked {
		err := p.be.PostWrite(rank, local, raddr, rkey, token, signaled)
		if err == nil {
			return
		}
	}
	ps.mu.Lock()
	ps.pendingWire = append(ps.pendingWire, wireOp{local: local, raddr: raddr, rkey: rkey, token: token, signaled: signaled})
	ps.mu.Unlock()
	ps.deferred.Add(1)
	p.stats.deferred.Add(1)
}

// PutBlocking wraps PutWithCompletion, driving Progress until the
// operation can be posted.
func (p *Photon) PutBlocking(rank int, local []byte, dst mem.RemoteBuffer, off uint64, localRID, remoteRID uint64) error {
	for {
		err := p.PutWithCompletion(rank, local, dst, off, localRID, remoteRID)
		if err != ErrWouldBlock {
			return err
		}
		if p.Progress() == 0 {
			gort.Gosched()
		}
	}
}

// SendBlocking wraps Send, driving Progress until it can be posted.
func (p *Photon) SendBlocking(rank int, data []byte, localRID, remoteRID uint64) error {
	for {
		err := p.Send(rank, data, localRID, remoteRID)
		if err != ErrWouldBlock {
			return err
		}
		if p.Progress() == 0 {
			gort.Gosched()
		}
	}
}
