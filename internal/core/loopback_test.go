package core_test

import (
	"sync"

	"photon/internal/core"
	"photon/internal/mem"
)

// loopBackend is a zero-cost single-rank backend: every one-sided
// operation applies synchronously against the local registration table
// and completes immediately. It removes all transport cost so tests and
// benchmarks can observe the middleware's own software overhead
// (allocations, locking) in isolation, and it lets tests script the
// completion stream exactly (duplicate/late completion injection).
type loopBackend struct {
	mu       sync.Mutex
	regs     map[uint32]*loopReg
	nextRKey uint32
	nextBase uint64

	// comps is a fixed ring of pending completions (no allocation on
	// the post path).
	comps      [4096]core.BackendCompletion
	head, tail int

	// captureTokens, when set, records signaled tokens instead of
	// completing them (the test injects completions itself).
	captureTokens bool
	tokens        []uint64
}

type loopReg struct {
	buf  []byte
	base uint64
}

func newLoopBackend() *loopBackend {
	return &loopBackend{regs: make(map[uint32]*loopReg), nextRKey: 1, nextBase: 0x1000}
}

func (l *loopBackend) Rank() int { return 0 }
func (l *loopBackend) Size() int { return 1 }

func (l *loopBackend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rkey := l.nextRKey
	l.nextRKey++
	base := l.nextBase
	l.nextBase += (uint64(len(buf)) + 0xFFF) &^ uint64(0xFFF)
	l.nextBase += 0x1000
	l.regs[rkey] = &loopReg{buf: buf, base: base}
	return mem.RemoteBuffer{Addr: base, RKey: rkey, Len: len(buf)}, noLock{}, nil
}

type noLock struct{}

func (noLock) Lock()   {}
func (noLock) Unlock() {}

func (l *loopBackend) Deregister(rb mem.RemoteBuffer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.regs, rb.RKey)
	return nil
}

func (l *loopBackend) apply(raddr uint64, rkey uint32, data []byte) error {
	r, ok := l.regs[rkey]
	if !ok || raddr < r.base || raddr+uint64(len(data)) > r.base+uint64(len(r.buf)) {
		return core.ErrTooLarge
	}
	copy(r.buf[raddr-r.base:], data)
	return nil
}

// pushLocked queues one completion; the ring is sized far beyond any
// test's in-flight window.
func (l *loopBackend) pushLocked(c core.BackendCompletion) {
	l.comps[l.tail%len(l.comps)] = c
	l.tail++
}

func (l *loopBackend) complete(token uint64, signaled bool, err error) {
	if !signaled && err == nil {
		return
	}
	if l.captureTokens {
		l.tokens = append(l.tokens, token)
		return
	}
	l.pushLocked(core.BackendCompletion{Token: token, OK: err == nil, Err: err})
}

// inject queues a scripted completion (late/duplicate delivery tests).
func (l *loopBackend) inject(c core.BackendCompletion) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pushLocked(c)
}

func (l *loopBackend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.apply(raddr, rkey, local)
	l.complete(token, signaled, err)
	return nil
}

// PostWriteBatch implements core.BatchBackend so tests and benchmarks
// drive the same doorbell path the real backends take.
func (l *loopBackend) PostWriteBatch(rank int, reqs []core.WriteReq) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range reqs {
		err := l.apply(r.RemoteAddr, r.RKey, r.Local)
		l.complete(r.Token, r.Signaled, err)
	}
	return len(reqs), nil
}

func (l *loopBackend) PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.regs[rkey]
	var err error
	if !ok || raddr < r.base || raddr+uint64(len(local)) > r.base+uint64(len(r.buf)) {
		err = core.ErrTooLarge
	} else {
		copy(local, r.buf[raddr-r.base:])
	}
	l.complete(token, true, err)
	return nil
}

func (l *loopBackend) PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.regs[rkey]
	var err error
	if !ok || raddr < r.base || raddr+8 > r.base+uint64(len(r.buf)) {
		err = core.ErrTooLarge
	} else {
		off := raddr - r.base
		orig := leUint64(r.buf[off:])
		putLeUint64(result, orig)
		putLeUint64(r.buf[off:], orig+add)
	}
	l.complete(token, true, err)
	return nil
}

func (l *loopBackend) PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.regs[rkey]
	var err error
	if !ok || raddr < r.base || raddr+8 > r.base+uint64(len(r.buf)) {
		err = core.ErrTooLarge
	} else {
		off := raddr - r.base
		orig := leUint64(r.buf[off:])
		putLeUint64(result, orig)
		if orig == compare {
			putLeUint64(r.buf[off:], swap)
		}
	}
	l.complete(token, true, err)
	return nil
}

func (l *loopBackend) ApplyLocal(raddr uint64, rkey uint32, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.apply(raddr, rkey, data)
}

func (l *loopBackend) Poll(dst []core.BackendCompletion) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for l.head < l.tail && n < len(dst) {
		dst[n] = l.comps[l.head%len(l.comps)]
		l.head++
		n++
	}
	return n
}

func (l *loopBackend) Exchange(local []byte) ([][]byte, error) {
	return [][]byte{append([]byte(nil), local...)}, nil
}

func (l *loopBackend) Close() error { return nil }

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
