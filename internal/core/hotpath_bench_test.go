package core_test

import (
	"testing"

	"photon/internal/bench"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/trace"
)

// loopEnv builds a single-rank Photon over the zero-cost loopback
// backend plus one exchanged 1 MiB target buffer: the configuration
// that exposes the middleware's own hot-path overhead.
func loopEnv(tb testing.TB, cfg core.Config) (*core.Photon, mem.RemoteBuffer) {
	tb.Helper()
	p, err := core.Init(newLoopBackend(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { p.Close() })
	buf := make([]byte, 1<<20)
	rb, _, err := p.RegisterBuffer(buf)
	if err != nil {
		tb.Fatal(err)
	}
	descs, err := p.ExchangeBuffers(rb)
	if err != nil {
		tb.Fatal(err)
	}
	return p, descs[0]
}

// drainPair harvests exactly one local and one remote completion.
func drainPair(tb testing.TB, p *core.Photon) {
	gotL, gotR := false, false
	for !gotL || !gotR {
		c, ok := p.Probe(core.ProbeAny)
		if !ok {
			continue
		}
		if c.Err != nil {
			tb.Fatal(c.Err)
		}
		if c.Local {
			gotL = true
		} else {
			gotR = true
		}
	}
}

// BenchmarkPutEager measures the eager (packed) put-with-completion
// fast path over the zero-cost loopback backend: pure middleware
// software overhead, the quantity the zero-allocation work targets.
func BenchmarkPutEager(b *testing.B) {
	p, dst := loopEnv(b, core.Config{})
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				b.Fatal(err)
			}
			p.Progress()
		}
		drainPair(b, p)
	}
}

// BenchmarkPutEagerObserved is BenchmarkPutEager with the full
// observability plane on — enabled trace ring, metrics registry, no
// sampling — so the delta against BenchmarkPutEager is the per-op
// instrumentation cost at its worst case.
func BenchmarkPutEagerObserved(b *testing.B) {
	ring := trace.NewRing(4096)
	ring.Enable(true)
	p, dst := loopEnv(b, core.Config{Trace: ring, Metrics: true})
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := p.PutWithCompletion(0, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				b.Fatal(err)
			}
			p.Progress()
		}
		drainPair(b, p)
	}
}

// BenchmarkSendEager measures the packed send fast path (payload
// folded into one ledger entry) over the loopback backend.
func BenchmarkSendEager(b *testing.B) {
	p, _ := loopEnv(b, core.Config{})
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := p.Send(0, payload, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				b.Fatal(err)
			}
			p.Progress()
		}
		drainPair(b, p)
	}
}

// BenchmarkFetchAdd measures the remote fetch-add fast path over the
// loopback backend.
func BenchmarkFetchAdd(b *testing.B) {
	p, dst := loopEnv(b, core.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := p.FetchAdd(0, dst, 0, 1, 7)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				b.Fatal(err)
			}
			p.Progress()
		}
		for {
			if c, ok := p.Probe(core.ProbeLocal); ok {
				if c.Err != nil {
					b.Fatal(c.Err)
				}
				break
			}
		}
	}
}

// BenchmarkPutEagerVsim measures the same eager put end to end over
// the simulated-verbs transport (2 ranks, zero-delay fabric): ns/op
// includes the simulated NIC, so only the delta between runs matters.
func BenchmarkPutEagerVsim(b *testing.B) {
	env, err := bench.NewPhotonOnly(2, fabric.Model{}, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	_, descs, _, err := env.SharedBuffers(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	dst := descs[0][1] // rank 1's buffer as seen by rank 0

	stop := make(chan struct{})
	consumed := make(chan struct{}, 1<<16)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok := env.Phs[1].Probe(core.ProbeRemote); ok {
				consumed <- struct{}{}
			}
		}
	}()
	defer close(stop)

	p0 := env.Phs[0]
	payload := make([]byte, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := p0.PutWithCompletion(1, payload, dst, 0, 1, 2)
			if err == nil {
				break
			}
			if err != core.ErrWouldBlock {
				b.Fatal(err)
			}
			p0.Progress()
		}
		for {
			if _, ok := p0.Probe(core.ProbeLocal); ok {
				break
			}
		}
		<-consumed
	}
}
