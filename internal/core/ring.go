package core

import (
	"sync"
	"sync/atomic"
)

// compRing is a fixed-capacity completion ring with an unbounded
// overflow spill list. It replaces the append-slice completion queues
// so producers (the progress engine, op fast paths) and consumers
// (PopLocal/PopRemote) no longer serialize on one mutex: pushes take
// only prodMu, pops take only consMu, and the two sides communicate
// through atomic head/tail indices (release on the index store
// publishes the slot write).
//
// Overflow semantics: when the ring is full — or the spill list is
// already non-empty — pushes go to the spill list, preserving global
// FIFO order. The consumer migrates spilled completions back into the
// ring once it drains; no completion is ever dropped. Spills are
// counted (Stats.RingOverflows) since they indicate CompQueueDepth is
// undersized for the workload's harvest lag.
type compRing struct {
	slots []Completion
	mask  uint64

	//photon:lock ringprod 75
	prodMu sync.Mutex // guards tail advance + spill append
	tail   atomic.Uint64
	spill  []Completion
	spillN atomic.Int64

	//photon:lock ringcons 70
	consMu sync.Mutex // guards head advance + spill migration
	head   atomic.Uint64

	overflows atomic.Int64
	hw        atomic.Int64 // deepest ring+spill occupancy observed
}

// newCompRing builds a ring with at least the requested depth (rounded
// up to a power of two).
func newCompRing(depth int) *compRing {
	n := 1
	for n < depth {
		n <<= 1
	}
	return &compRing{slots: make([]Completion, n), mask: uint64(n - 1)}
}

// push appends one completion in FIFO order.
func (r *compRing) push(c Completion) {
	r.prodMu.Lock()
	t := r.tail.Load()
	if len(r.spill) == 0 && t-r.head.Load() < uint64(len(r.slots)) {
		r.slots[t&r.mask] = c
		r.tail.Store(t + 1)
	} else {
		r.spill = append(r.spill, c)
		r.spillN.Add(1)
		r.overflows.Add(1)
	}
	// High-water mark; prodMu is held, so only pops race the depth
	// read and the mark can only under-count, never over-count.
	if d := int64(r.tail.Load()-r.head.Load()) + r.spillN.Load(); d > r.hw.Load() {
		r.hw.Store(d)
	}
	r.prodMu.Unlock()
}

// pop removes the oldest completion. The common case touches only
// consMu and the atomic indices; prodMu is taken only when the ring
// looks empty and spilled completions may need migrating.
func (r *compRing) pop() (Completion, bool) {
	r.consMu.Lock()
	h := r.head.Load()
	if h != r.tail.Load() {
		c := r.slots[h&r.mask]
		r.slots[h&r.mask] = Completion{}
		r.head.Store(h + 1)
		r.consMu.Unlock()
		return c, true
	}
	if r.spillN.Load() == 0 {
		r.consMu.Unlock()
		return Completion{}, false
	}
	// Ring drained with spill pending: migrate under both locks.
	// Producers never take consMu, so consMu→prodMu cannot deadlock.
	r.prodMu.Lock()
	t := r.tail.Load()
	if h != t {
		// A producer slipped a push into the ring after our first
		// check; that entry is older than anything in the spill list.
		c := r.slots[h&r.mask]
		r.slots[h&r.mask] = Completion{}
		r.head.Store(h + 1)
		r.prodMu.Unlock()
		r.consMu.Unlock()
		return c, true
	}
	if len(r.spill) == 0 {
		r.prodMu.Unlock()
		r.consMu.Unlock()
		return Completion{}, false
	}
	c := r.spill[0]
	rest := r.spill[1:]
	n := 0
	for n < len(rest) && uint64(n) < uint64(len(r.slots)) {
		r.slots[(t+uint64(n))&r.mask] = rest[n]
		n++
	}
	r.tail.Store(t + uint64(n))
	m := copy(r.spill, rest[n:])
	for i := m; i < len(r.spill); i++ {
		r.spill[i] = Completion{}
	}
	r.spill = r.spill[:m]
	r.spillN.Store(int64(m))
	r.prodMu.Unlock()
	r.consMu.Unlock()
	return c, true
}

// takeMatch removes and returns the completion with the given RID,
// wherever it sits in the queue, preserving the order of the others.
// Used by WaitLocal/WaitRemote; takes both locks for full exclusion.
func (r *compRing) takeMatch(rid uint64) (Completion, bool) {
	r.consMu.Lock()
	r.prodMu.Lock()
	defer r.prodMu.Unlock()
	defer r.consMu.Unlock()
	h, t := r.head.Load(), r.tail.Load()
	for i := h; i != t; i++ {
		if r.slots[i&r.mask].RID == rid {
			c := r.slots[i&r.mask]
			for j := i; j != h; j-- {
				r.slots[j&r.mask] = r.slots[(j-1)&r.mask]
			}
			r.slots[h&r.mask] = Completion{}
			r.head.Store(h + 1)
			return c, true
		}
	}
	for i := range r.spill {
		if r.spill[i].RID == rid {
			c := r.spill[i]
			copy(r.spill[i:], r.spill[i+1:])
			r.spill[len(r.spill)-1] = Completion{}
			r.spill = r.spill[:len(r.spill)-1]
			r.spillN.Add(-1)
			return c, true
		}
	}
	return Completion{}, false
}

// length reports the queue depth (ring plus spill). Approximate under
// concurrency; exact when quiescent (it exists as a test aid).
func (r *compRing) length() int {
	t := r.tail.Load()
	h := r.head.Load()
	return int(t-h) + int(r.spillN.Load())
}

// overflowCount reports lifetime spill pushes.
func (r *compRing) overflowCount() int64 { return r.overflows.Load() }

// highWater reports the deepest occupancy (ring plus spill) seen.
func (r *compRing) highWater() int64 { return r.hw.Load() }
