package core

import (
	"sync"
	"sync/atomic"
)

// tokenTable maps backend completion tokens to pending-op state. It
// replaces a single map[uint64]pendingOp behind one mutex with a
// sharded, index-recycling slot array: concurrent initiators take
// different shard locks, slot storage is reused (no per-op map churn),
// and lookups are O(1) array indexing.
//
// Token layout (64 bits):
//
//	bits  0..3   shard index
//	bits  4..31  slot index within the shard
//	bits 32..63  slot generation
//
// The generation is bumped every time a slot is released and starts at
// 1, so a token is never zero and a late or duplicated backend
// completion — carrying the generation under which it was issued —
// can no longer resolve once the slot has been recycled: stale tokens
// are rejected rather than completing an unrelated newer op.
type tokenTable struct {
	shards [tokShards]tokShard
	next   atomic.Uint64 // round-robin shard selector
}

const (
	tokShardBits = 4
	tokShards    = 1 << tokShardBits
	tokIdxBits   = 28
	tokIdxMask   = (1 << tokIdxBits) - 1
)

type tokSlot struct {
	op   pendingOp
	gen  uint32
	live bool
}

type tokShard struct {
	//photon:lock token 60
	mu    sync.Mutex
	slots []tokSlot
	free  []uint32
}

// put registers a pending op and returns its (non-zero) token.
func (t *tokenTable) put(op pendingOp) uint64 {
	si := t.next.Add(1) & (tokShards - 1)
	sh := &t.shards[si]
	sh.mu.Lock()
	var idx uint32
	if n := len(sh.free); n > 0 {
		idx = sh.free[n-1]
		sh.free = sh.free[:n-1]
	} else {
		idx = uint32(len(sh.slots))
		sh.slots = append(sh.slots, tokSlot{gen: 1})
	}
	s := &sh.slots[idx]
	s.op = op
	s.live = true
	tok := uint64(s.gen)<<32 | uint64(idx)<<tokShardBits | si
	sh.mu.Unlock()
	return tok
}

// take resolves and releases a token. It returns false for tokens that
// are unknown, already taken, or stale (generation mismatch after the
// slot was recycled).
func (t *tokenTable) take(tok uint64) (pendingOp, bool) {
	sh := &t.shards[tok&(tokShards-1)]
	idx := (tok >> tokShardBits) & tokIdxMask
	gen := uint32(tok >> 32)
	sh.mu.Lock()
	if idx >= uint64(len(sh.slots)) {
		sh.mu.Unlock()
		return pendingOp{}, false
	}
	s := &sh.slots[idx]
	if !s.live || s.gen != gen {
		sh.mu.Unlock()
		return pendingOp{}, false
	}
	op := s.op
	s.op = pendingOp{} // release buffer references
	s.live = false
	s.gen++
	if s.gen == 0 {
		s.gen = 1
	}
	sh.free = append(sh.free, uint32(idx))
	sh.mu.Unlock()
	return op, true
}

// sweep removes every live op for which keep returns false, appending
// the removed ops to dst. Each removed slot's generation is bumped, so
// a backend completion for a swept op arrives stale and is rejected —
// the op cannot complete twice (once via the sweep, once via the
// transport). Cold path: fault sweeps, peer-down fail-fast, Close.
func (t *tokenTable) sweep(keep func(*pendingOp) bool, dst []pendingOp) []pendingOp {
	for si := range t.shards {
		sh := &t.shards[si]
		sh.mu.Lock()
		for i := range sh.slots {
			s := &sh.slots[i]
			if !s.live || keep(&s.op) {
				continue
			}
			dst = append(dst, s.op)
			s.op = pendingOp{}
			s.live = false
			s.gen++
			if s.gen == 0 {
				s.gen = 1
			}
			sh.free = append(sh.free, uint32(i))
		}
		sh.mu.Unlock()
	}
	return dst
}

// sweepExpired removes ops whose deadline has passed.
func (t *tokenTable) sweepExpired(now int64, dst []pendingOp) []pendingOp {
	return t.sweep(func(op *pendingOp) bool {
		return op.deadlineNS == 0 || op.deadlineNS > now
	}, dst)
}

// sweepRank removes every op toward one peer.
func (t *tokenTable) sweepRank(rank int, dst []pendingOp) []pendingOp {
	return t.sweep(func(op *pendingOp) bool { return op.rank != rank }, dst)
}

// sweepAll removes every live op (Close).
func (t *tokenTable) sweepAll(dst []pendingOp) []pendingOp {
	return t.sweep(func(*pendingOp) bool { return false }, dst)
}
