// Package vsim is Photon's simulated-verbs backend: it implements the
// core.Backend transport contract over the software RNIC (nicsim) and
// the in-process fabric, standing in for the IB-verbs backend of the
// original system.
//
// A Cluster owns the fabric and one backend per rank, wiring a full
// mesh of reliable-connected queue pairs (rank i's QP toward rank j is
// connected to rank j's QP toward rank i, including the self pair) and
// providing the collective bootstrap Exchange that Photon uses to
// publish ledger arenas.
package vsim

import (
	"errors"
	"fmt"
	"sync"

	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
	"photon/internal/trace"
	"photon/internal/verbs"
)

// Cluster is a set of vsim backends sharing one fabric, one per rank.
type Cluster struct {
	fab      *fabric.Fabric
	ownsFab  bool
	backends []*Backend

	//photon:lock vsimcluster 10
	mu      sync.Mutex
	cond    *sync.Cond
	gen     int
	arrived int
	blobs   [][]byte
	outs    map[int][][]byte
	readers map[int]int
}

// NewCluster creates n ranks over a fresh fabric with the given delay
// model and NIC configuration.
func NewCluster(n int, fm fabric.Model, nc nicsim.Config) (*Cluster, error) {
	fab := fabric.New(n, fm)
	c, err := NewClusterOver(fab, nc)
	if err != nil {
		fab.Close()
		return nil, err
	}
	c.ownsFab = true
	return c, nil
}

// NewClusterOver creates one rank per fabric node on an existing
// fabric (which the caller continues to own).
func NewClusterOver(fab *fabric.Fabric, nc nicsim.Config) (*Cluster, error) {
	n := fab.NumNodes()
	c := &Cluster{
		fab:     fab,
		blobs:   make([][]byte, n),
		outs:    make(map[int][][]byte),
		readers: make(map[int]int),
	}
	c.cond = sync.NewCond(&c.mu)
	c.backends = make([]*Backend, n)
	for r := 0; r < n; r++ {
		dev, err := verbs.Open(fab, r, nc)
		if err != nil {
			c.Close()
			return nil, err
		}
		b := &Backend{
			cluster: c,
			rank:    r,
			dev:     dev,
			cq:      dev.CreateCQ(8192),
			qps:     make([]*verbs.QP, n),
			mrs:     make(map[uint64]*verbs.MR),
			wake:    core.NewWakeChan(),
		}
		// Latch both event sources: local completions (CQ push) and
		// remote data landing in this rank's memory (NIC write hook),
		// so parked progress runners wake for either.
		b.cq.SetWakeHook(b.wake.Kick)
		dev.NIC().SetWriteHook(b.wake.Kick)
		c.backends[r] = b
	}
	// Full QP mesh: one QP at each rank toward every rank (self
	// included), cross-connected.
	for i := 0; i < n; i++ {
		bi := c.backends[i]
		for j := 0; j < n; j++ {
			qp, err := bi.dev.CreateQP(bi.cq, bi.dev.CreateCQ(16))
			if err != nil {
				c.Close()
				return nil, err
			}
			bi.qps[j] = qp
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if err := c.backends[i].qps[j].Connect(j, c.backends[j].qps[i].QPN()); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// Backends returns the per-rank backends, indexed by rank.
func (c *Cluster) Backends() []*Backend { return c.backends }

// Backend returns the backend for one rank.
func (c *Cluster) Backend(rank int) *Backend { return c.backends[rank] }

// Fabric returns the underlying fabric (for stats and fault injection).
func (c *Cluster) Fabric() *fabric.Fabric { return c.fab }

// Close shuts down every backend and, if the cluster created it, the
// fabric.
func (c *Cluster) Close() {
	for _, b := range c.backends {
		if b != nil {
			b.closeLocal()
		}
	}
	if c.ownsFab {
		c.fab.Close()
	}
}

// exchange implements the collective allgather barrier.
func (c *Cluster) exchange(rank int, blob []byte) ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gen
	c.blobs[rank] = append([]byte(nil), blob...)
	c.arrived++
	n := len(c.backends)
	if c.arrived == n {
		out := make([][]byte, n)
		copy(out, c.blobs)
		c.outs[gen] = out
		c.readers[gen] = n
		c.blobs = make([][]byte, n)
		c.arrived = 0
		c.gen++
		c.cond.Broadcast()
	} else {
		for c.gen == gen {
			c.cond.Wait()
		}
	}
	out := c.outs[gen]
	c.readers[gen]--
	if c.readers[gen] == 0 {
		delete(c.outs, gen)
		delete(c.readers, gen)
	}
	return out, nil
}

// Backend is one rank's transport endpoint.
type Backend struct {
	cluster *Cluster
	rank    int
	dev     *verbs.Device
	cq      *verbs.CQ
	qps     []*verbs.QP

	//photon:lock vsimmr 20
	mrMu sync.Mutex
	mrs  map[uint64]*verbs.MR // keyed by base address

	//photon:lock vsimpoll 30
	pollMu      sync.Mutex
	pollScratch []verbs.CQE // reused across Poll calls (no per-call alloc)

	// wake latches backend activity for NotifyBackend/WakeSinkBackend:
	// kicked by the simulated NIC after every completion push and every
	// remote write applied to this rank's memory, so engine waiters
	// park instead of yield-spinning.
	wake *core.WakeChan
}

var (
	_ core.Backend         = (*Backend)(nil)
	_ core.BatchBackend    = (*Backend)(nil)
	_ core.NotifyBackend   = (*Backend)(nil)
	_ core.WakeSinkBackend = (*Backend)(nil)
)

// Notify implements core.NotifyBackend: the returned channel receives
// a token whenever a completion is queued or remote data lands in
// registered memory.
func (b *Backend) Notify() <-chan struct{} { return b.wake.Chan() }

// SetWakeSink implements core.WakeSinkBackend: redirect activity
// events to fn instead of the Notify channel.
func (b *Backend) SetWakeSink(fn func()) { b.wake.SetSink(fn) }

// Rank returns this backend's rank.
func (b *Backend) Rank() int { return b.rank }

// Size returns the job size.
func (b *Backend) Size() int { return len(b.qps) }

// Device exposes the verbs device (counters, ablation).
func (b *Backend) Device() *verbs.Device { return b.dev }

// Register pins buf with the NIC.
func (b *Backend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	mr, err := b.dev.RegMR(buf, verbs.AccessAll)
	if err != nil {
		return mem.RemoteBuffer{}, nil, err
	}
	rb := mem.RemoteBuffer{Addr: mr.Base(), RKey: mr.RKey(), Len: mr.Len()}
	b.mrMu.Lock()
	b.mrs[rb.Addr] = mr
	b.mrMu.Unlock()
	return rb, mr.RLocker(), nil
}

// Deregister releases a registration by descriptor.
func (b *Backend) Deregister(rb mem.RemoteBuffer) error {
	b.mrMu.Lock()
	mr, ok := b.mrs[rb.Addr]
	if ok {
		delete(b.mrs, rb.Addr)
	}
	b.mrMu.Unlock()
	if !ok {
		return fmt.Errorf("vsim: no registration at %#x", rb.Addr)
	}
	return b.dev.DeregMR(mr)
}

// translate maps transport errors to the core sentinel space.
func translate(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, nicsim.ErrSQFull):
		return core.ErrWouldBlock
	case errors.Is(err, nicsim.ErrClosed):
		return core.ErrClosed
	default:
		return err
	}
}

// PostWrite starts a one-sided RDMA write toward rank.
func (b *Backend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	if rank < 0 || rank >= len(b.qps) {
		return core.ErrBadRank
	}
	err := translate(b.qps[rank].PostSend(verbs.SendWR{
		WRID: token, Op: verbs.OpRDMAWrite, Local: local,
		RemoteAddr: raddr, RKey: rkey, Signaled: signaled,
	}))
	if err == nil {
		trace.RecordLink(trace.KindWire, b.rank, rank, token, 0, "vsim.write")
	}
	return err
}

// PostWriteBatch posts a burst of writes toward rank with one call
// (core.BatchBackend). Requests go to the same QP in order; posting
// stops at the first rejection and the accepted count is returned —
// the QP's post path snapshots each payload, so this behaves exactly
// like a doorbell covering the whole chain.
func (b *Backend) PostWriteBatch(rank int, reqs []core.WriteReq) (int, error) {
	if rank < 0 || rank >= len(b.qps) {
		return 0, core.ErrBadRank
	}
	qp := b.qps[rank]
	for i, r := range reqs {
		err := qp.PostSend(verbs.SendWR{
			WRID: r.Token, Op: verbs.OpRDMAWrite, Local: r.Local,
			RemoteAddr: r.RemoteAddr, RKey: r.RKey, Signaled: r.Signaled,
		})
		if err != nil {
			return i, translate(err)
		}
	}
	return len(reqs), nil
}

// PostRead starts a one-sided RDMA read from rank.
func (b *Backend) PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error {
	if rank < 0 || rank >= len(b.qps) {
		return core.ErrBadRank
	}
	return translate(b.qps[rank].PostSend(verbs.SendWR{
		WRID: token, Op: verbs.OpRDMARead, Local: local,
		RemoteAddr: raddr, RKey: rkey, Signaled: true,
	}))
}

// PostFetchAdd starts a remote fetch-and-add on rank.
func (b *Backend) PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error {
	if rank < 0 || rank >= len(b.qps) {
		return core.ErrBadRank
	}
	return translate(b.qps[rank].PostSend(verbs.SendWR{
		WRID: token, Op: verbs.OpAtomicFetchAdd, Local: result,
		RemoteAddr: raddr, RKey: rkey, Add: add, Signaled: true,
	}))
}

// PostCompSwap starts a remote compare-and-swap on rank.
func (b *Backend) PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error {
	if rank < 0 || rank >= len(b.qps) {
		return core.ErrBadRank
	}
	return translate(b.qps[rank].PostSend(verbs.SendWR{
		WRID: token, Op: verbs.OpAtomicCompSwap, Local: result,
		RemoteAddr: raddr, RKey: rkey, Compare: compare, Swap: swap, Signaled: true,
	}))
}

// ApplyLocal places data into this rank's own registered memory with
// full protection checks (loopback DMA for packed-put payloads).
func (b *Backend) ApplyLocal(raddr uint64, rkey uint32, data []byte) error {
	return b.dev.NIC().LocalWrite(raddr, rkey, data)
}

// WriteActivity exposes the registration's DMA write counter
// (core.ActivityBackend).
func (b *Backend) WriteActivity(rb mem.RemoteBuffer) (func() uint64, bool) {
	b.mrMu.Lock()
	mr, ok := b.mrs[rb.Addr]
	b.mrMu.Unlock()
	if !ok {
		return nil, false
	}
	return mr.WriteActivity, true
}

// Poll reaps transport completions.
func (b *Backend) Poll(dst []core.BackendCompletion) int {
	if len(dst) == 0 || b.cq.FastLen() == 0 {
		return 0
	}
	b.pollMu.Lock()
	defer b.pollMu.Unlock()
	if cap(b.pollScratch) < len(dst) {
		b.pollScratch = make([]verbs.CQE, len(dst))
	}
	tmp := b.pollScratch[:len(dst)]
	n := b.cq.PollInto(tmp)
	for i := 0; i < n; i++ {
		dst[i] = core.BackendCompletion{
			Token: tmp[i].WRID,
			OK:    tmp[i].Status == verbs.StatusOK,
		}
		if tmp[i].Status != verbs.StatusOK {
			dst[i].Err = fmt.Errorf("vsim: completion status %v", tmp[i].Status)
		}
		trace.Record(trace.KindWire, b.rank, tmp[i].WRID, "vsim.cqe")
	}
	return n
}

// ClockOffset implements core.ClockBackend: every rank lives in one
// process, so all clocks are identical by construction.
func (b *Backend) ClockOffset(rank int) (offsetNS, rttNS int64, ok bool) {
	return 0, 0, rank >= 0 && rank < len(b.qps)
}

// Exchange performs the collective bootstrap allgather.
func (b *Backend) Exchange(local []byte) ([][]byte, error) {
	return b.cluster.exchange(b.rank, local)
}

// closeLocal tears down this rank's device without touching the
// cluster.
func (b *Backend) closeLocal() {
	if b.dev != nil {
		b.dev.Close()
	}
}

// Close releases this rank's transport resources.
func (b *Backend) Close() error {
	b.closeLocal()
	return nil
}
