package vsim_test

import (
	"sync"
	"testing"

	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/nicsim"
)

func newCluster(t *testing.T, n int) *vsim.Cluster {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestBackendIdentity(t *testing.T) {
	cl := newCluster(t, 3)
	for r, b := range cl.Backends() {
		if b.Rank() != r || b.Size() != 3 {
			t.Fatalf("backend %d: rank=%d size=%d", r, b.Rank(), b.Size())
		}
		if b.Device() == nil {
			t.Fatal("nil device")
		}
	}
	if cl.Fabric().NumNodes() != 3 {
		t.Fatal("fabric size wrong")
	}
}

func TestRegisterDeregister(t *testing.T) {
	cl := newCluster(t, 2)
	b := cl.Backend(0)
	buf := make([]byte, 128)
	rb, lk, err := b.Register(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Len != 128 || rb.Addr == 0 || lk == nil {
		t.Fatalf("descriptor = %+v", rb)
	}
	if fn, ok := b.WriteActivity(rb); !ok || fn == nil {
		t.Fatal("WriteActivity missing for live registration")
	}
	if err := b.Deregister(rb); err != nil {
		t.Fatal(err)
	}
	if err := b.Deregister(rb); err == nil {
		t.Fatal("double deregister accepted")
	}
	if _, ok := b.WriteActivity(rb); ok {
		t.Fatal("WriteActivity should fail after deregister")
	}
}

func TestApplyLocalValidates(t *testing.T) {
	cl := newCluster(t, 1)
	b := cl.Backend(0)
	buf := make([]byte, 64)
	rb, _, _ := b.Register(buf)
	if err := b.ApplyLocal(rb.Addr, rb.RKey, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatal("ApplyLocal did not place data")
	}
	if err := b.ApplyLocal(rb.Addr, 9999, []byte{1}); err == nil {
		t.Fatal("bad rkey accepted")
	}
	if err := b.ApplyLocal(rb.Addr+100, rb.RKey, []byte{1}); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
}

func TestWriteActivityCounts(t *testing.T) {
	cl := newCluster(t, 2)
	target := make([]byte, 64)
	rb, _, _ := cl.Backend(1).Register(target)
	act, ok := cl.Backend(1).WriteActivity(rb)
	if !ok {
		t.Fatal("no activity counter")
	}
	before := act()
	if err := cl.Backend(0).PostWrite(1, []byte{7}, rb.Addr, rb.RKey, 1, true); err != nil {
		t.Fatal(err)
	}
	var comps [4]core.BackendCompletion
	for {
		if n := cl.Backend(0).Poll(comps[:]); n > 0 {
			if !comps[0].OK {
				t.Fatalf("write failed: %v", comps[0].Err)
			}
			break
		}
	}
	if act() != before+1 {
		t.Fatalf("activity = %d, want %d", act(), before+1)
	}
}

func TestExchangeRepeatedGenerations(t *testing.T) {
	cl := newCluster(t, 3)
	for gen := 0; gen < 5; gen++ {
		var wg sync.WaitGroup
		outs := make([][][]byte, 3)
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				outs[r], _ = cl.Backend(r).Exchange([]byte{byte(gen), byte(r)})
			}(r)
		}
		wg.Wait()
		for r := 0; r < 3; r++ {
			for src := 0; src < 3; src++ {
				if outs[r][src][0] != byte(gen) || outs[r][src][1] != byte(src) {
					t.Fatalf("gen %d rank %d blob[%d] = %v", gen, r, src, outs[r][src])
				}
			}
		}
	}
}

func TestPostToBadRank(t *testing.T) {
	cl := newCluster(t, 2)
	b := cl.Backend(0)
	if err := b.PostWrite(5, []byte{1}, 0x1000, 1, 0, false); err != core.ErrBadRank {
		t.Fatalf("PostWrite bad rank: %v", err)
	}
	if err := b.PostRead(-1, []byte{1}, 0x1000, 1, 0); err != core.ErrBadRank {
		t.Fatalf("PostRead bad rank: %v", err)
	}
	if err := b.PostFetchAdd(9, make([]byte, 8), 0x1000, 1, 1, 0); err != core.ErrBadRank {
		t.Fatalf("PostFetchAdd bad rank: %v", err)
	}
	if err := b.PostCompSwap(9, make([]byte, 8), 0x1000, 1, 0, 1, 0); err != core.ErrBadRank {
		t.Fatalf("PostCompSwap bad rank: %v", err)
	}
}

func TestSQFullTranslatesToWouldBlock(t *testing.T) {
	cl, err := vsim.NewCluster(2, fabric.Model{Latency: 2_000_000}, nicsim.Config{SQDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	target := make([]byte, 64)
	rb, _, _ := cl.Backend(1).Register(target)
	sawBlock := false
	for i := 0; i < 64 && !sawBlock; i++ {
		err := cl.Backend(0).PostWrite(1, []byte{1}, rb.Addr, rb.RKey, 0, false)
		if err == core.ErrWouldBlock {
			sawBlock = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawBlock {
		t.Fatal("SQ never filled despite 2ms wire latency and depth 1")
	}
}
