// Package chaos wraps any core.Backend with deterministic fault
// injection: seeded drop / delay / duplicate decisions on the write
// path, plus rank-level partition and crash-peer switches. It exists
// to drive the engine's fault plane from tests — every hang-avoidance
// claim (OpTimeout sweeps, ErrPeerDown fail-fast, token-generation
// rejection of late or duplicated completions) is exercised by
// wrapping a real transport and letting the plan lose, stall, or
// replay traffic.
//
// Determinism: all probabilistic decisions come from one rand.Rand
// seeded by Plan.Seed, consumed in op-posting order. The same seed
// over the same op sequence injects the same faults, so a failing
// chaos run replays exactly under `-race` or a debugger.
//
// Fault semantics (all at the post boundary, transport-agnostic):
//
//   - drop: the post claims success but never reaches the inner
//     backend. A signaled op then never completes — surfacing it is
//     the engine's job (Config.OpTimeout).
//   - delay: the op is held for DelayPolls calls to Poll, then
//     forwarded. The payload is copied (snapshot-at-post holds for
//     the caller), and release order follows posting order among
//     delayed ops, but a delayed op is overtaken by later undelayed
//     ones — deliberately violating RC ordering the way a faulty
//     link would, to prove the receiver never corrupts.
//   - duplicate: the op is forwarded twice; the second signaled
//     completion must be rejected by the engine's token generation.
//   - partition: every op toward the rank is silently dropped.
//   - crash: every op toward the rank fails fast with
//     core.ErrPeerDown and PeerHealth reports core.PeerDown.
package chaos

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"photon/internal/core"
	"photon/internal/flight"
	"photon/internal/mem"
)

// Plan is the seeded injection policy. Probabilities are evaluated
// per posted write, in order: drop, then delay, then duplicate.
type Plan struct {
	Seed       int64
	DropProb   float64 // silently discard a posted write
	DelayProb  float64 // hold a write for DelayPolls Poll calls
	DelayPolls int     // hold duration in Poll calls (default 4)
	DupProb    float64 // forward a write twice
}

// Stats counts injected faults.
type Stats struct {
	Dropped    int64
	Delayed    int64
	Duplicated int64
}

// delayedOp is one held write; local is a private copy.
type delayedOp struct {
	rank     int
	local    []byte
	raddr    uint64
	rkey     uint32
	token    uint64
	signaled bool
	hold     int
}

// Backend wraps an inner core.Backend with the plan's faults. It
// deliberately does not forward the batch-post extension, so every
// write funnels through PostWrite and sees the same injection point.
type Backend struct {
	inner core.Backend
	plan  Plan
	group *Group // shared whole-job fault state; nil for Wrap

	// Armed op-count triggers (see group.go). Atomics: engine shards
	// post concurrently and the trigger must fire exactly once.
	crashIn  atomic.Int64
	partIn   atomic.Int64
	partPeer atomic.Int64

	//photon:lock chaos 10
	mu          sync.Mutex
	rng         *rand.Rand
	delayed     []delayedOp
	partitioned map[int]bool
	crashed     map[int]bool
	stats       Stats
}

var (
	_ core.Backend       = (*Backend)(nil)
	_ core.HealthBackend = (*Backend)(nil)
	_ core.StatsBackend  = (*Backend)(nil)
)

// Wrap builds a chaos backend over inner.
func Wrap(inner core.Backend, plan Plan) *Backend {
	if plan.DelayPolls <= 0 {
		plan.DelayPolls = 4
	}
	return &Backend{
		inner:       inner,
		plan:        plan,
		rng:         rand.New(rand.NewSource(plan.Seed)),
		partitioned: make(map[int]bool),
		crashed:     make(map[int]bool),
	}
}

// WrapGroup builds a chaos backend over inner that shares g's global
// fault state: Group.Kill (or this rank's CrashAfterOps trigger) is
// observed consistently by every member's backend, giving the
// whole-process-death semantics a single-sided CrashPeer cannot.
func WrapGroup(inner core.Backend, plan Plan, g *Group) *Backend {
	b := Wrap(inner, plan)
	b.group = g
	return b
}

// Partition silently blackholes (on=true) or heals (on=false) all
// traffic from this side toward rank.
func (b *Backend) Partition(rank int, on bool) {
	b.mu.Lock()
	b.partitioned[rank] = on
	b.mu.Unlock()
}

// CrashPeer latches rank as dead from this side: every later post
// toward it fails with core.ErrPeerDown and PeerHealth reports
// core.PeerDown. Terminal, matching the engine's state machine.
func (b *Backend) CrashPeer(rank int) {
	b.mu.Lock()
	b.crashed[rank] = true
	b.mu.Unlock()
}

// Stats snapshots the injected-fault counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Rank, Size, Register, Deregister, ApplyLocal, Exchange, Close:
// transparent forwarding.
func (b *Backend) Rank() int { return b.inner.Rank() }
func (b *Backend) Size() int { return b.inner.Size() }

func (b *Backend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	return b.inner.Register(buf)
}

func (b *Backend) Deregister(rb mem.RemoteBuffer) error { return b.inner.Deregister(rb) }

func (b *Backend) ApplyLocal(raddr uint64, rkey uint32, data []byte) error {
	return b.inner.ApplyLocal(raddr, rkey, data)
}

func (b *Backend) Exchange(local []byte) ([][]byte, error) { return b.inner.Exchange(local) }

func (b *Backend) Close() error { return b.inner.Close() }

// verdict is one injection decision.
type verdict int

const (
	vForward verdict = iota
	vDrop
	vDelay
	vDup
)

// decide rolls the plan for one write toward rank. Self-rank traffic
// is never faulted (loopback cannot be lost).
func (b *Backend) decide(rank int) (verdict, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crashed[rank] {
		return vForward, core.ErrPeerDown
	}
	if rank == b.inner.Rank() {
		return vForward, nil
	}
	if b.partitioned[rank] {
		b.stats.Dropped++
		return vDrop, nil
	}
	switch r := b.rng.Float64(); {
	case r < b.plan.DropProb:
		b.stats.Dropped++
		return vDrop, nil
	case r < b.plan.DropProb+b.plan.DelayProb:
		b.stats.Delayed++
		return vDelay, nil
	case r < b.plan.DropProb+b.plan.DelayProb+b.plan.DupProb:
		b.stats.Duplicated++
		return vDup, nil
	}
	return vForward, nil
}

// gate is the crash/partition check for non-write ops (reads,
// atomics): crashed fails fast, partitioned blackholes.
func (b *Backend) gate(rank int) (forward bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crashed[rank] {
		return false, core.ErrPeerDown
	}
	if b.partitioned[rank] && rank != b.inner.Rank() {
		b.stats.Dropped++
		return false, nil
	}
	return true, nil
}

// PostWrite applies the plan to one write. The group gate and the
// armed op-count triggers run first, so the very post that crosses a
// CrashAfterOps threshold is already posted by a dead rank.
func (b *Backend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	b.tick()
	if drop, err := b.groupGate(rank); err != nil {
		return err
	} else if drop {
		return nil // claimed posted, never delivered
	}
	v, err := b.decide(rank)
	if err != nil {
		return err
	}
	switch v {
	case vDrop:
		return nil // claimed posted, never delivered
	case vDelay:
		cp := append([]byte(nil), local...) // snapshot-at-post for the caller
		b.mu.Lock()
		b.delayed = append(b.delayed, delayedOp{
			rank: rank, local: cp, raddr: raddr, rkey: rkey,
			token: token, signaled: signaled, hold: b.plan.DelayPolls,
		})
		b.mu.Unlock()
		return nil
	case vDup:
		if err := b.inner.PostWrite(rank, local, raddr, rkey, token, signaled); err != nil {
			return err
		}
		// Best-effort replay; the duplicate completion must be
		// rejected by the engine's token generation.
		_ = b.inner.PostWrite(rank, local, raddr, rkey, token, signaled)
		return nil
	}
	return b.inner.PostWrite(rank, local, raddr, rkey, token, signaled)
}

// PostRead forwards unless the rank is crashed, partitioned, or dead
// in the group.
func (b *Backend) PostRead(rank int, local []byte, raddr uint64, rkey uint32, token uint64) error {
	if drop, err := b.groupGate(rank); err != nil || drop {
		return err
	}
	fwd, err := b.gate(rank)
	if err != nil || !fwd {
		return err
	}
	return b.inner.PostRead(rank, local, raddr, rkey, token)
}

// PostFetchAdd forwards unless the rank is crashed or partitioned.
func (b *Backend) PostFetchAdd(rank int, result []byte, raddr uint64, rkey uint32, add uint64, token uint64) error {
	if drop, err := b.groupGate(rank); err != nil || drop {
		return err
	}
	fwd, err := b.gate(rank)
	if err != nil || !fwd {
		return err
	}
	return b.inner.PostFetchAdd(rank, result, raddr, rkey, add, token)
}

// PostCompSwap forwards unless the rank is crashed or partitioned.
func (b *Backend) PostCompSwap(rank int, result []byte, raddr uint64, rkey uint32, compare, swap uint64, token uint64) error {
	if drop, err := b.groupGate(rank); err != nil || drop {
		return err
	}
	fwd, err := b.gate(rank)
	if err != nil || !fwd {
		return err
	}
	return b.inner.PostCompSwap(rank, result, raddr, rkey, compare, swap, token)
}

// Poll advances delayed ops by one tick, forwards the ones that came
// due, and reaps the inner backend. Progress drives Poll continually,
// so DelayPolls measures delay in progress rounds — deterministic
// under -race, unlike wall-clock holds.
func (b *Backend) Poll(dst []core.BackendCompletion) int {
	b.mu.Lock()
	var due []delayedOp
	if len(b.delayed) > 0 {
		keep := b.delayed[:0]
		for i := range b.delayed {
			d := b.delayed[i]
			d.hold--
			if d.hold <= 0 {
				due = append(due, d)
			} else {
				keep = append(keep, d)
			}
		}
		b.delayed = keep
	}
	b.mu.Unlock()
	for _, d := range due {
		if err := b.inner.PostWrite(d.rank, d.local, d.raddr, d.rkey, d.token, d.signaled); err != nil {
			// Transient refusal: try again next tick.
			d.hold = 1
			b.mu.Lock()
			b.delayed = append(b.delayed, d)
			b.mu.Unlock()
		}
	}
	return b.inner.Poll(dst)
}

// TransportStats forwards the inner transport's counters (nothing when
// the inner backend exports none) and appends the injected-fault
// counts, so a chaos-wrapped job still shows its transport gauges in
// Photon.Metrics() plus what the plan did to it.
func (b *Backend) TransportStats(yield func(name string, value int64)) {
	if sb, ok := b.inner.(core.StatsBackend); ok {
		sb.TransportStats(yield)
	}
	s := b.Stats()
	yield("chaos_dropped", s.Dropped)
	yield("chaos_delayed", s.Delayed)
	yield("chaos_duplicated", s.Duplicated)
}

// ConfigureLiveness forwards to the inner transport's detector when it
// has one (core.HealthBackend).
func (b *Backend) ConfigureLiveness(heartbeat, suspectAfter time.Duration) {
	if hb, ok := b.inner.(core.HealthBackend); ok {
		hb.ConfigureLiveness(heartbeat, suspectAfter)
	}
}

// PeerHealth overlays group kills and crash latches on the inner
// detector's view. A killed self sees every peer down immediately (the
// corpse's own waits abort rather than spin); a killed peer is
// reported down once the group's detection delay elapses.
func (b *Backend) PeerHealth(rank int) core.PeerHealth {
	if b.group != nil && rank != b.inner.Rank() {
		if b.group.Killed(b.inner.Rank()) {
			return core.PeerDown
		}
		if _, detected := b.group.status(rank); detected {
			return core.PeerDown
		}
	}
	b.mu.Lock()
	crashed := b.crashed[rank]
	b.mu.Unlock()
	if crashed {
		return core.PeerDown
	}
	if hb, ok := b.inner.(core.HealthBackend); ok {
		return hb.PeerHealth(rank)
	}
	return core.PeerHealthy
}

// ArmFlightDump installs an auto-dump hook on the instance's fault
// flight recorder: every captured record (peer suspect/down) triggers
// a full JSON dump to w, so a chaos run that kills a peer leaves its
// black box on disk even if the test or job then dies. Dumps are
// serialized; w needs no locking of its own. Returns false when the
// instance was built without Config.FlightRecords.
func ArmFlightDump(p *core.Photon, w io.Writer) bool {
	fr := p.FlightRecorder()
	if fr == nil {
		return false
	}
	var mu sync.Mutex
	fr.SetHook(func(flight.Record) {
		mu.Lock()
		defer mu.Unlock()
		_ = p.FlightDump(w)
	})
	return true
}
