package chaos_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"photon/internal/backend/chaos"
	"photon/internal/backend/vsim"
	"photon/internal/core"
	"photon/internal/fabric"
	"photon/internal/mem"
	"photon/internal/nicsim"
)

// fakeBackend records forwarded posts so injection decisions can be
// observed directly, without a transport or engine in the way.
type fakeBackend struct {
	mu     sync.Mutex
	writes [][]byte
	comps  []core.BackendCompletion
}

func (f *fakeBackend) Rank() int { return 0 }
func (f *fakeBackend) Size() int { return 2 }
func (f *fakeBackend) Register(buf []byte) (mem.RemoteBuffer, sync.Locker, error) {
	return mem.RemoteBuffer{}, nil, nil
}
func (f *fakeBackend) Deregister(mem.RemoteBuffer) error            { return nil }
func (f *fakeBackend) ApplyLocal(uint64, uint32, []byte) error      { return nil }
func (f *fakeBackend) Exchange(local []byte) ([][]byte, error)      { return [][]byte{local}, nil }
func (f *fakeBackend) Close() error                                 { return nil }
func (f *fakeBackend) PostRead(int, []byte, uint64, uint32, uint64) error { return nil }
func (f *fakeBackend) PostFetchAdd(int, []byte, uint64, uint32, uint64, uint64) error {
	return nil
}
func (f *fakeBackend) PostCompSwap(int, []byte, uint64, uint32, uint64, uint64, uint64) error {
	return nil
}

func (f *fakeBackend) PostWrite(rank int, local []byte, raddr uint64, rkey uint32, token uint64, signaled bool) error {
	f.mu.Lock()
	f.writes = append(f.writes, append([]byte(nil), local...))
	f.mu.Unlock()
	return nil
}

func (f *fakeBackend) Poll(dst []core.BackendCompletion) int {
	f.mu.Lock()
	n := copy(dst, f.comps)
	f.comps = f.comps[n:]
	f.mu.Unlock()
	return n
}

func (f *fakeBackend) writeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.writes)
}

// Identical seeds over identical op sequences must inject identical
// faults — the property that makes a failing chaos run replayable.
func TestChaosDeterministic(t *testing.T) {
	run := func() (chaos.Stats, int) {
		fake := &fakeBackend{}
		b := chaos.Wrap(fake, chaos.Plan{Seed: 99, DropProb: 0.2, DelayProb: 0.2, DupProb: 0.2, DelayPolls: 2})
		buf := []byte{0}
		for i := 0; i < 500; i++ {
			buf[0] = byte(i)
			if err := b.PostWrite(1, buf, uint64(i), 7, uint64(i), true); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			b.Poll(nil)
		}
		return b.Stats(), fake.writeCount()
	}
	s1, w1 := run()
	s2, w2 := run()
	if s1 != s2 || w1 != w2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, w1, s2, w2)
	}
	if s1.Dropped == 0 || s1.Delayed == 0 || s1.Duplicated == 0 {
		t.Fatalf("plan injected nothing: %+v", s1)
	}
}

// A delayed write must carry a private copy of the payload: the
// caller is free to recycle its buffer the moment PostWrite returns.
func TestChaosDelaySnapshotsPayload(t *testing.T) {
	fake := &fakeBackend{}
	b := chaos.Wrap(fake, chaos.Plan{Seed: 1, DelayProb: 1.0, DelayPolls: 3})
	buf := []byte{42}
	if err := b.PostWrite(1, buf, 0, 0, 1, true); err != nil {
		t.Fatal(err)
	}
	buf[0] = 0xFF // caller recycles the buffer while the op is held
	if got := fake.writeCount(); got != 0 {
		t.Fatalf("delayed op forwarded immediately (%d writes)", got)
	}
	b.Poll(nil)
	b.Poll(nil)
	b.Poll(nil) // third tick releases it
	if got := fake.writeCount(); got != 1 {
		t.Fatalf("delayed op not released after DelayPolls ticks: %d writes", got)
	}
	if fake.writes[0][0] != 42 {
		t.Fatalf("delayed op delivered recycled payload %#x, want snapshot 42", fake.writes[0][0])
	}
}

// chaosJob boots a vsim job with every rank's backend wrapped by the
// plan (per-rank seed offsets keep the streams independent).
func chaosJob(t *testing.T, n int, cfg core.Config, plan chaos.Plan) ([]*chaos.Backend, []*core.Photon) {
	t.Helper()
	cl, err := vsim.NewCluster(n, fabric.Model{}, nicsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	cbs := make([]*chaos.Backend, n)
	for r := 0; r < n; r++ {
		p := plan
		p.Seed = plan.Seed + int64(r)*1000003
		cbs[r] = chaos.Wrap(cl.Backend(r), p)
	}
	phs := make([]*core.Photon, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			phs[r], errs[r] = core.Init(cbs[r], cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return cbs, phs
}

// Under random frame loss every signaled send must still resolve —
// delivered or swept into ErrTimeout — and whatever the receiver
// harvests must be intact and in order. This is the OpTimeout sweep
// and receiver in-order ledger head under fire.
func TestChaosDropsResolveEveryWaiter(t *testing.T) {
	cbs, phs := chaosJob(t, 2,
		core.Config{LedgerSlots: 64, OpTimeout: 150 * time.Millisecond},
		chaos.Plan{Seed: 7, DropProb: 0.3})
	const n = 20
	for i := 1; i <= n; i++ {
		_ = phs[0].Send(1, []byte{byte(i)}, uint64(i), uint64(i))
		phs[0].Progress()
		phs[1].Progress()
	}
	delivered, timedOut := 0, 0
	for i := 1; i <= n; i++ {
		c, err := phs[0].WaitLocal(uint64(i), 3*time.Second)
		if err != nil {
			t.Fatalf("send %d: waiter wedged: %v", i, err)
		}
		if c.Err == nil {
			delivered++
		} else if errors.Is(c.Err, core.ErrTimeout) || errors.Is(c.Err, core.ErrPeerDown) {
			timedOut++
		} else {
			t.Fatalf("send %d: unexpected completion error %v", i, c.Err)
		}
	}
	if cbs[0].Stats().Dropped == 0 {
		t.Fatal("plan dropped nothing; test proved nothing")
	}
	if timedOut == 0 {
		t.Logf("note: %d delivered, no drops hit signaled frames this seed", delivered)
	}
	// Whatever arrived must be uncorrupted and strictly ordered.
	last := uint64(0)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		phs[0].Progress()
		phs[1].Progress()
		c, ok := phs[1].PopRemote()
		if !ok {
			continue
		}
		if c.RID <= last {
			t.Fatalf("reordered or duplicated delivery: %d after %d", c.RID, last)
		}
		if len(c.Data) != 1 || c.Data[0] != byte(c.RID) {
			t.Fatalf("corrupted payload for RID %d: %v", c.RID, c.Data)
		}
		last = c.RID
	}
}

// Pure delay loses nothing: every send completes OK and arrives
// intact, even though held frames are overtaken in flight.
func TestChaosDelayedDeliveryCompletes(t *testing.T) {
	_, phs := chaosJob(t, 2,
		core.Config{LedgerSlots: 64},
		chaos.Plan{Seed: 11, DelayProb: 0.5, DelayPolls: 8})
	const n = 16
	for i := 1; i <= n; i++ {
		if err := phs[0].Send(1, []byte{byte(i)}, uint64(i), uint64(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	got, last := 0, uint64(0)
	deadline := time.Now().Add(5 * time.Second)
	for got < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d deliveries; delayed frames lost", got, n)
		}
		phs[0].Progress() // releases held frames
		phs[1].Progress()
		if c, ok := phs[1].PopRemote(); ok {
			if c.RID <= last || c.Data[0] != byte(c.RID) {
				t.Fatalf("bad delivery RID %d (last %d) data %v", c.RID, last, c.Data)
			}
			last = c.RID
			got++
		}
	}
	for i := 1; i <= n; i++ {
		if c, err := phs[0].WaitLocal(uint64(i), 3*time.Second); err != nil || c.Err != nil {
			t.Fatalf("send %d local completion: %v / %v", i, err, c.Err)
		}
	}
}

// Duplicated frames must be invisible: one completion per RID at the
// sender (token generations reject the replay) and one delivery per
// RID at the receiver.
func TestChaosDuplicatesRejected(t *testing.T) {
	cbs, phs := chaosJob(t, 2,
		core.Config{LedgerSlots: 64},
		chaos.Plan{Seed: 13, DupProb: 1.0})
	const n = 12
	for i := 1; i <= n; i++ {
		if err := phs[0].Send(1, []byte{byte(i)}, uint64(i), uint64(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	seen := make(map[uint64]int)
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < n && time.Now().Before(deadline) {
		phs[0].Progress()
		phs[1].Progress()
		if c, ok := phs[1].PopRemote(); ok {
			seen[c.RID]++
			if c.Data[0] != byte(c.RID) {
				t.Fatalf("corrupted payload for RID %d: %v", c.RID, c.Data)
			}
		}
	}
	for rid, count := range seen {
		if count != 1 {
			t.Fatalf("RID %d delivered %d times", rid, count)
		}
	}
	if len(seen) != n {
		t.Fatalf("only %d/%d RIDs delivered", len(seen), n)
	}
	locals := make(map[uint64]int)
	for i := 1; i <= n; i++ {
		c, err := phs[0].WaitLocal(uint64(i), 3*time.Second)
		if err != nil || c.Err != nil {
			t.Fatalf("send %d local completion: %v / %v", i, err, c.Err)
		}
		locals[c.RID]++
	}
	// Drain: any surviving duplicate completion would surface now.
	for i := 0; i < 50; i++ {
		phs[0].Progress()
		if c, ok := phs[0].PopLocal(); ok {
			locals[c.RID]++
		}
	}
	for rid, count := range locals {
		if count != 1 {
			t.Fatalf("RID %d completed locally %d times (duplicate leaked past token generation)", rid, count)
		}
	}
	if cbs[0].Stats().Duplicated == 0 {
		t.Fatal("plan duplicated nothing; test proved nothing")
	}
}

// A crashed peer fails fast: in-flight ops resolve within the sweep
// bound, fresh posts surface ErrPeerDown, and the engine's health
// view latches PeerDown.
func TestChaosCrashPeerFailsFast(t *testing.T) {
	cbs, phs := chaosJob(t, 2,
		core.Config{
			OpTimeout:         100 * time.Millisecond,
			HeartbeatInterval: 5 * time.Millisecond,
			SuspectAfter:      20 * time.Millisecond,
			FlightRecords:     4,
		},
		chaos.Plan{Seed: 17})
	var blackBox strings.Builder
	if !chaos.ArmFlightDump(phs[0], &blackBox) {
		t.Fatal("flight recorder not armed despite FlightRecords > 0")
	}
	for i := 1; i <= 3; i++ {
		_ = phs[0].Send(1, []byte{byte(i)}, uint64(i), uint64(i))
	}
	cbs[0].CrashPeer(1)
	start := time.Now()
	for i := 1; i <= 3; i++ {
		c, err := phs[0].WaitLocal(uint64(i), 2*time.Second)
		if err != nil {
			t.Fatalf("send %d: waiter wedged after crash: %v", i, err)
		}
		if c.Err != nil && !errors.Is(c.Err, core.ErrTimeout) && !errors.Is(c.Err, core.ErrPeerDown) {
			t.Fatalf("send %d: unexpected error %v", i, c.Err)
		}
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("in-flight ops took %v to resolve, want well under 2×OpTimeout-ish bound", el)
	}
	// Fresh post: ErrPeerDown at post time or via error completion.
	if err := phs[0].Send(1, []byte{9}, 9, 9); err != nil {
		if !errors.Is(err, core.ErrPeerDown) {
			t.Fatalf("post after crash: %v, want ErrPeerDown", err)
		}
	} else {
		c, werr := phs[0].WaitLocal(9, 2*time.Second)
		if werr != nil {
			t.Fatalf("post-crash send never resolved: %v", werr)
		}
		if c.Err == nil {
			t.Fatal("send to crashed peer completed OK")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for phs[0].PeerHealthState(1) != core.PeerDown {
		if time.Now().After(deadline) {
			t.Fatalf("health never latched PeerDown: %v", phs[0].PeerHealthState(1))
		}
		phs[0].Progress()
		time.Sleep(time.Millisecond)
	}
	// The crash must have auto-dumped a non-empty black box.
	dump := blackBox.String()
	if !strings.Contains(dump, `"to": "down"`) {
		t.Fatalf("chaos crash left no →down flight record:\n%s", dump)
	}
	if !strings.Contains(dump, "chaos_dropped") {
		t.Fatalf("flight record missing chaos transport gauges:\n%s", dump)
	}
}

// A one-way partition blackholes silently: the sender's ops time out
// (posts "succeed" but vanish), while the reverse direction still
// flows.
func TestChaosPartitionTimesOut(t *testing.T) {
	cbs, phs := chaosJob(t, 2,
		core.Config{OpTimeout: 80 * time.Millisecond},
		chaos.Plan{Seed: 23})
	cbs[0].Partition(1, true)
	if err := phs[0].Send(1, []byte{1}, 1, 1); err != nil {
		t.Fatal(err)
	}
	c, err := phs[0].WaitLocal(1, 2*time.Second)
	if err != nil {
		t.Fatalf("partitioned send never resolved: %v", err)
	}
	if !errors.Is(c.Err, core.ErrTimeout) {
		t.Fatalf("partitioned send completed with %v, want ErrTimeout", c.Err)
	}
	if err := phs[1].Send(0, []byte{2}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := phs[0].WaitRemote(2, 5*time.Second); err != nil {
		t.Fatalf("reverse direction broken by one-way partition: %v", err)
	}
}
